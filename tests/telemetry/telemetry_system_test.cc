/** @file
 * End-to-end telemetry tests against a real System run.
 *
 * The load-bearing property is non-perturbation: attaching a
 * RunTelemetry bundle must not change a single simulated number.
 * RunResult has no operator==, so the twin runs are compared
 * field-by-field. The remaining tests pin the observation contract:
 * timeline rows sample the run on the requested grid, and the resize
 * event stream agrees with the controller's own level trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system.hh"
#include "telemetry/run_telemetry.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

constexpr std::uint64_t kInsts = 100000;
constexpr std::uint64_t kTimelineInterval = 5000;

SystemConfig dynConfig()
{
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    return cfg;
}

ResizeSetup dynSetup()
{
    DynamicParams dyn;
    dyn.intervalAccesses = 1024;
    dyn.missBound = 32;
    return ResizeSetup{Strategy::Dynamic, 0, dyn};
}

/** Run the reference workload, optionally observed. */
RunResult runOnce(RunTelemetry *telemetry)
{
    SyntheticWorkload wl(profileByName("gcc"));
    System sys(dynConfig());
    return sys.run(wl, kInsts, {}, dynSetup(), {}, telemetry);
}

} // namespace

TEST(TelemetrySystemTest, AttachedBundleDoesNotPerturbTheRun)
{
    RunTelemetry telem;
    telem.timelineInterval = kTimelineInterval;
    telem.resizeEvents = true;
    ASSERT_TRUE(telem.enabled());

    const RunResult off = runOnce(nullptr);
    const RunResult on = runOnce(&telem);

    EXPECT_EQ(on.workload, off.workload);
    EXPECT_EQ(on.insts, off.insts);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_DOUBLE_EQ(on.energy.total(), off.energy.total());
    EXPECT_DOUBLE_EQ(on.avgIl1Bytes, off.avgIl1Bytes);
    EXPECT_DOUBLE_EQ(on.avgDl1Bytes, off.avgDl1Bytes);
    EXPECT_DOUBLE_EQ(on.il1MissRatio, off.il1MissRatio);
    EXPECT_DOUBLE_EQ(on.dl1MissRatio, off.dl1MissRatio);
    EXPECT_DOUBLE_EQ(on.l2MissRatio, off.l2MissRatio);
    EXPECT_EQ(on.il1Resizes, off.il1Resizes);
    EXPECT_EQ(on.dl1Resizes, off.dl1Resizes);
    EXPECT_EQ(on.il1LevelTrace, off.il1LevelTrace);
    EXPECT_EQ(on.dl1LevelTrace, off.dl1LevelTrace);

    // ...and it did observe something.
    EXPECT_FALSE(telem.timeline.empty());
    EXPECT_FALSE(telem.events.empty());
}

TEST(TelemetrySystemTest, TimelineSamplesTheRequestedGrid)
{
    RunTelemetry telem;
    telem.timelineInterval = kTimelineInterval;
    runOnce(&telem);

    const auto &rows = telem.timeline;
    ASSERT_EQ(rows.size(), kInsts / kTimelineInterval);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const TimelineRow &row = rows[i];
        EXPECT_EQ(row.core, 0u);
        EXPECT_EQ(row.seq, i);
        EXPECT_EQ(row.phase, "detail");
        // Full detail: samples land exactly on the interval grid.
        EXPECT_EQ(row.insts, (i + 1) * kTimelineInterval);
        EXPECT_GT(row.ipc, 0.0);
        EXPECT_GT(row.energy, 0.0);
        // The i-cache never resizes in this setup.
        EXPECT_EQ(row.il1Bytes, 32 * 1024u);
        EXPECT_EQ(row.dl1Bytes,
                  static_cast<std::uint64_t>(row.dl1Sets) *
                      row.dl1Ways * 32u);
        if (i > 0) {
            EXPECT_GT(row.insts, rows[i - 1].insts);
            EXPECT_GT(row.cycles, rows[i - 1].cycles);
        }
    }
    EXPECT_EQ(rows.back().insts, kInsts);
}

TEST(TelemetrySystemTest, EventsAgreeWithTheControllerLevelTrace)
{
    RunTelemetry telem;
    telem.resizeEvents = true;
    const RunResult res = runOnce(&telem);

    const auto &events = telem.events.events();
    // One event per interval boundary, same boundaries the level
    // trace records.
    ASSERT_EQ(events.size(), res.dl1LevelTrace.size());
    ASSERT_FALSE(events.empty());

    std::uint64_t resizes = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const ResizeEvent &ev = events[i];
        EXPECT_EQ(ev.core, 0u);
        EXPECT_EQ(ev.cache, "dl1");
        EXPECT_EQ(ev.interval, i + 1);
        EXPECT_EQ(ev.toLevel, res.dl1LevelTrace[i]);
        EXPECT_EQ(ev.resized(), ev.reason == ResizeReason::grow ||
                                    ev.reason == ResizeReason::shrink);
        if (ev.resized())
            ++resizes;
        // A decision never moves more than one level.
        EXPECT_LE(ev.fromLevel > ev.toLevel ? ev.fromLevel - ev.toLevel
                                            : ev.toLevel - ev.fromLevel,
                  1u);
        EXPECT_EQ(ev.fromLevel == ev.toLevel, ev.fromBytes == ev.toBytes);
        // Flush costs only appear on actual transitions.
        if (!ev.resized()) {
            EXPECT_EQ(ev.flushInvalidated, 0u);
            EXPECT_EQ(ev.flushWritebacks, 0u);
            EXPECT_EQ(ev.transitionCycles, 0u);
        }
    }
    EXPECT_EQ(resizes, res.dl1Resizes);
}

TEST(TelemetrySystemTest, JsonlWritersAreDeterministicAndLabeled)
{
    RunTelemetry telem;
    telem.timelineInterval = kTimelineInterval;
    telem.resizeEvents = true;
    runOnce(&telem);

    std::ostringstream a, b;
    writeTimelineJsonl(a, telem.timeline, "gcc/point");
    writeTimelineJsonl(b, telem.timeline, "gcc/point");
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("\"job\":\"gcc/point\""), std::string::npos);

    std::ostringstream unlabeled;
    writeTimelineJsonl(unlabeled, telem.timeline);
    EXPECT_EQ(unlabeled.str().find("\"job\""), std::string::npos);

    std::ostringstream ev1, ev2;
    writeResizeEventsJsonl(ev1, telem.events.events(), "gcc/point");
    writeResizeEventsJsonl(ev2, telem.events.events(), "gcc/point");
    EXPECT_EQ(ev1.str(), ev2.str());
    EXPECT_NE(ev1.str().find("\"job\":\"gcc/point\""),
              std::string::npos);
    EXPECT_NE(ev1.str().find("\"cache\":\"dl1\""), std::string::npos);
}

TEST(TelemetrySystemTest, DisabledBundleRecordsNothing)
{
    RunTelemetry telem; // both layers off
    EXPECT_FALSE(telem.enabled());
    runOnce(&telem);
    EXPECT_TRUE(telem.timeline.empty());
    EXPECT_TRUE(telem.events.empty());
}

} // namespace rcache
