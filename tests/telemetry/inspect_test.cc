/** @file
 * Tests for the offline telemetry summarizer behind `rcache-sim
 * inspect`: the strict flat-JSON line parser and the timeline/event
 * reductions, including the oscillation detector.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/inspect.hh"

namespace rcache
{

namespace
{

using Obj = std::map<std::string, std::string>;

/** One synthetic resize-event line with the fields inspect reads. */
std::string eventLine(unsigned core, std::uint64_t interval,
                      unsigned from_level, unsigned to_level,
                      const std::string &reason,
                      std::uint64_t from_bytes = 32768,
                      std::uint64_t writebacks = 0,
                      std::uint64_t transition_cycles = 0)
{
    std::ostringstream os;
    os << "{\"core\":" << core << ",\"cache\":\"dl1\",\"interval\":"
       << interval << ",\"reason\":\"" << reason
       << "\",\"from_level\":" << from_level << ",\"to_level\":"
       << to_level << ",\"from_bytes\":" << from_bytes
       << ",\"flush_writebacks\":" << writebacks
       << ",\"transition_cycles\":" << transition_cycles << "}";
    return os.str();
}

std::string timelineLine(unsigned core, std::uint64_t insts,
                         std::uint64_t cycles, double ipc,
                         std::uint64_t dl1_bytes,
                         const std::string &phase = "detail")
{
    std::ostringstream os;
    os << "{\"core\":" << core << ",\"phase\":\"" << phase
       << "\",\"insts\":" << insts << ",\"cycles\":" << cycles
       << ",\"ipc\":" << ipc << ",\"dl1_bytes\":" << dl1_bytes << "}";
    return os.str();
}

} // namespace

TEST(InspectParseTest, ParsesFlatObjects)
{
    Obj obj;
    std::string err;
    ASSERT_TRUE(parseJsonFlatObject(
        "{\"name\":\"gcc\",\"insts\":5000,\"ipc\":0.25,"
        "\"sampled\":false}",
        obj, &err))
        << err;
    EXPECT_EQ(obj.size(), 4u);
    EXPECT_EQ(obj["name"], "gcc");
    EXPECT_EQ(obj["insts"], "5000");
    EXPECT_EQ(obj["ipc"], "0.25");
    EXPECT_EQ(obj["sampled"], "false");

    ASSERT_TRUE(parseJsonFlatObject("{}", obj, &err)) << err;
    EXPECT_TRUE(obj.empty());

    ASSERT_TRUE(parseJsonFlatObject("  { \"a\" : 1 }  ", obj, &err))
        << err;
    EXPECT_EQ(obj["a"], "1");
}

TEST(InspectParseTest, UnescapesStringValues)
{
    Obj obj;
    std::string err;
    ASSERT_TRUE(parseJsonFlatObject(
        "{\"job\":\"a\\\"b\\\\c\\nd\\te\\u0007f\"}", obj, &err))
        << err;
    EXPECT_EQ(obj["job"], "a\"b\\c\nd\te\af");
}

TEST(InspectParseTest, RejectsMalformedLines)
{
    const char *bad[] = {
        "",
        "not json",
        "[1,2]",
        "{\"a\":1",                       // unterminated object
        "{\"a\" 1}",                      // missing colon
        "{\"a\":}",                       // missing value
        "{\"a\":1,}",                     // trailing comma
        "{a:1}",                          // unquoted key
        "{\"a\":\"unterminated}",         // unterminated string
        "{\"a\":\"bad\\q\"}",             // unknown escape
        "{\"a\":\"\\u00zz\"}",            // bad \u escape
        "{\"a\":\"\\u00e9\"}",            // non-ASCII \u escape
        "{\"a\":{\"nested\":1}}",         // nested object
        "{\"a\":[1]}",                    // nested array
        "{\"a\":1} trailing",             // trailing garbage
        "{\"a\":1}{\"b\":2}",             // two objects
    };
    for (const char *line : bad) {
        Obj obj;
        std::string err;
        EXPECT_FALSE(parseJsonFlatObject(line, obj, &err))
            << "accepted: " << line;
        EXPECT_FALSE(err.empty()) << "no diagnostic for: " << line;
    }
}

TEST(InspectTimelineTest, SummarizesRowsAndResidency)
{
    std::stringstream in;
    in << timelineLine(0, 5000, 1000, 0.5, 32768) << "\n"
       << timelineLine(0, 10000, 3000, 0.4, 16384) << "\n"
       << timelineLine(1, 5000, 2000, 0.3, 32768) << "\n"
       << timelineLine(1, 8000, 0, 0.0, 32768, "warmup") << "\n"
       << "\n"; // blank lines are skipped

    const TimelineSummary s = summarizeTimeline(in);
    EXPECT_EQ(s.rows, 4u);
    EXPECT_EQ(s.warmupRows, 1u);
    EXPECT_EQ(s.cores, 2u);
    EXPECT_EQ(s.maxInsts, 10000u);
    EXPECT_EQ(s.maxCycles, 3000u);
    EXPECT_DOUBLE_EQ(s.meanIpc, (0.5 + 0.4 + 0.3) / 3.0);
    // Core 0: 1000 cycles at 32768, then 2000 more at 16384; core 1:
    // 2000 at 32768 (the warmup row adds no cycles).
    ASSERT_EQ(s.dl1SizeCycles.size(), 2u);
    EXPECT_EQ(s.dl1SizeCycles.at(32768), 3000u);
    EXPECT_EQ(s.dl1SizeCycles.at(16384), 2000u);
}

TEST(InspectTimelineTest, ThrowsOnMalformedLineWithItsNumber)
{
    std::stringstream in;
    in << timelineLine(0, 5000, 1000, 0.5, 32768) << "\n"
       << "{\"core\":0, broken\n";
    try {
        summarizeTimeline(in);
        FAIL() << "malformed line accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(InspectTimelineTest, ThrowsOnMissingField)
{
    std::stringstream in;
    in << "{\"core\":0,\"phase\":\"detail\",\"insts\":1}\n";
    EXPECT_THROW(summarizeTimeline(in), std::runtime_error);
}

TEST(InspectEventsTest, CountsReasonsAndCosts)
{
    std::stringstream in;
    in << eventLine(0, 1, 0, 0, "grow-at-max") << "\n"
       << eventLine(0, 2, 1, 0, "grow", 16384, 3, 30) << "\n"
       << eventLine(0, 3, 0, 0, "hold") << "\n"
       << eventLine(1, 1, 0, 1, "shrink", 32768, 5, 50) << "\n";

    const EventsSummary s = summarizeEvents(in);
    EXPECT_EQ(s.events, 4u);
    EXPECT_EQ(s.byReason.at("grow-at-max"), 1u);
    EXPECT_EQ(s.byReason.at("grow"), 1u);
    EXPECT_EQ(s.byReason.at("hold"), 1u);
    EXPECT_EQ(s.byReason.at("shrink"), 1u);
    EXPECT_EQ(s.totalFlushWritebacks, 8u);
    EXPECT_EQ(s.totalTransitionCycles, 80u);
    EXPECT_EQ(s.sizeIntervals.at(32768), 3u);
    EXPECT_EQ(s.sizeIntervals.at(16384), 1u);
    // One grow and one shrink, but on different cores: no thrash.
    EXPECT_EQ(s.oscillations, 0u);
}

TEST(InspectEventsTest, DetectsOscillationsWithinTheWindow)
{
    // grow@1, shrink@3 (gap 2), grow@10 (gap 7): only the first
    // reversal is within the default window of 3.
    std::stringstream in;
    in << eventLine(0, 1, 1, 0, "grow") << "\n"
       << eventLine(0, 3, 0, 1, "shrink") << "\n"
       << eventLine(0, 10, 1, 0, "grow") << "\n";
    EXPECT_EQ(summarizeEvents(in).oscillations, 1u);

    // A wider window catches the second reversal too.
    std::stringstream wide;
    wide << eventLine(0, 1, 1, 0, "grow") << "\n"
         << eventLine(0, 3, 0, 1, "shrink") << "\n"
         << eventLine(0, 10, 1, 0, "grow") << "\n";
    EXPECT_EQ(summarizeEvents(wide, 7).oscillations, 2u);

    // Same-direction moves never count.
    std::stringstream same;
    same << eventLine(0, 1, 1, 0, "grow") << "\n"
         << eventLine(0, 2, 2, 1, "grow") << "\n";
    EXPECT_EQ(summarizeEvents(same).oscillations, 0u);
}

TEST(InspectEventsTest, PrintersEmitTheInspectHeadings)
{
    std::stringstream in;
    in << eventLine(0, 1, 1, 0, "grow") << "\n";
    const EventsSummary es = summarizeEvents(in);
    std::ostringstream eout;
    printEventsSummary(eout, es);
    EXPECT_NE(eout.str().find("resize events: 1"), std::string::npos);
    EXPECT_NE(eout.str().find("decisions by reason:"),
              std::string::npos);
    EXPECT_NE(eout.str().find("grow: 1"), std::string::npos);

    std::stringstream tin;
    tin << timelineLine(0, 5000, 1000, 0.5, 32768) << "\n";
    const TimelineSummary ts = summarizeTimeline(tin);
    std::ostringstream tout;
    printTimelineSummary(tout, ts);
    EXPECT_NE(tout.str().find("timeline: 1 rows (0 warmup)"),
              std::string::npos);
    EXPECT_NE(tout.str().find("mean interval ipc: 0.5"),
              std::string::npos);
}

} // namespace rcache
