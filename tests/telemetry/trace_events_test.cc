/** @file
 * TraceEventRecorder tests. Timestamps are wall clock, so everything
 * here is structural: the Chrome object form, span/instant phases,
 * stable small-integer thread ids, and JSON string escaping. (The
 * inspect-side parseJsonFlatObject cannot validate full event lines —
 * it rejects the nested "args" object by design — hence the plain
 * substring checks.)
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "telemetry/trace_events.hh"

namespace rcache
{

namespace
{

std::string dump(const TraceEventRecorder &rec)
{
    std::ostringstream os;
    rec.write(os);
    return os.str();
}

} // namespace

TEST(TraceEventsTest, EmptyRecorderWritesAnEmptyObject)
{
    TraceEventRecorder rec;
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(dump(rec), "{\"traceEvents\":[\n]}\n");
}

TEST(TraceEventsTest, SpansAndInstantsHaveTheChromeShape)
{
    TraceEventRecorder rec;
    const auto begin = rec.now();
    rec.completeSpan("cell", begin, rec.now(),
                     {{"point", "cell=0;app=gcc"}, {"jobs", "3"}});
    rec.instant("chunk-flush", {{"cells", "1"}});
    EXPECT_EQ(rec.size(), 2u);

    const std::string out = dump(rec);
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("{\"name\":\"cell\",\"ph\":\"X\",\"ts\":"),
              std::string::npos);
    EXPECT_NE(out.find("\"dur\":"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"point\":\"cell=0;app=gcc\","
                       "\"jobs\":\"3\"}"),
              std::string::npos);
    EXPECT_NE(out.find("{\"name\":\"chunk-flush\",\"ph\":\"i\",\"ts\":"),
              std::string::npos);
    // Instants need a scope for the viewers to render them.
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"pid\":0,\"tid\":0"), std::string::npos);
    EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

TEST(TraceEventsTest, SpanDurationsAreNonNegativeAndOrdered)
{
    TraceEventRecorder rec;
    const auto begin = rec.now();
    rec.completeSpan("a", begin, rec.now());
    const std::string out = dump(rec);
    // ts is relative to recorder creation, so both fields are plain
    // non-negative integers (no leading '-').
    EXPECT_EQ(out.find("\"ts\":-"), std::string::npos);
    EXPECT_EQ(out.find("\"dur\":-"), std::string::npos);
}

TEST(TraceEventsTest, EscapesQuotesBackslashesAndControlChars)
{
    TraceEventRecorder rec;
    rec.instant("quo\"te\\path\nline\ttab\x01"
                "bell");
    const std::string out = dump(rec);
    EXPECT_NE(out.find("\"name\":\"quo\\\"te\\\\path\\nline\\ttab"
                       "\\u0001bell\""),
              std::string::npos);
    // The raw control characters must not leak into the JSON: the
    // writer's own newlines separate events, so the name's must be
    // gone entirely.
    EXPECT_EQ(out.find("line\t"), std::string::npos);
    EXPECT_EQ(out.find('\x01'), std::string::npos);
}

TEST(TraceEventsTest, ThreadsGetSmallStableTids)
{
    TraceEventRecorder rec;
    rec.instant("main-1");
    std::thread([&] { rec.instant("worker"); }).join();
    rec.instant("main-2");

    const std::string out = dump(rec);
    // First-appearance order: the main thread is tid 0 both times,
    // the worker is tid 1.
    EXPECT_NE(out.find("{\"name\":\"main-1\",\"ph\":\"i\",\"ts\":"),
              std::string::npos);
    const auto worker = out.find("\"name\":\"worker\"");
    ASSERT_NE(worker, std::string::npos);
    EXPECT_NE(out.find("\"tid\":1", worker), std::string::npos);
    const auto main2 = out.find("\"name\":\"main-2\"");
    ASSERT_NE(main2, std::string::npos);
    EXPECT_NE(out.find("\"tid\":0", main2), std::string::npos);
    EXPECT_EQ(rec.size(), 3u);
}

TEST(TraceEventsTest, ConcurrentRecordingIsSafeAndComplete)
{
    TraceEventRecorder rec;
    constexpr int kThreads = 4;
    constexpr int kEach = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rec, t] {
            for (int i = 0; i < kEach; ++i) {
                const auto b = rec.now();
                rec.completeSpan("t" + std::to_string(t), b, rec.now());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(rec.size(),
              static_cast<std::size_t>(kThreads) * kEach);
    // All tids are in [0, kThreads).
    const std::string out = dump(rec);
    EXPECT_EQ(out.find("\"tid\":" + std::to_string(kThreads)),
              std::string::npos);
}

} // namespace rcache
