/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "util/random.hh"

namespace rcache
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, NextDoubleRoughlyUniform)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RngTest, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricBounds)
{
    Rng r(19);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextGeometric(0.25, 16);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 16u);
    }
}

TEST(RngTest, GeometricMeanApproximatelyInverseP)
{
    Rng r(23);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(0.2, 1000));
    // Mean of a geometric with p = 0.2 is 5.
    EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, StreamHasNoShortCycle)
{
    Rng r(29);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, ChanceThresholdMatchesChanceExactly)
{
    // The workload generator replaces chance(p) with one integer
    // compare against chanceThreshold(p) on its hot path; the two
    // must agree draw for draw, for awkward p values included, or
    // generated streams fork.
    const double ps[] = {
        0.0,  -0.25, 1.0,  1.5,  0.5,   0.25,  0.3,
        0.15, 0.35,  0.85, 0.98, 0.05,  1e-12, 1.0 - 1e-12,
        0.1,  0.7,   0.6,  0.9,  1e-300};
    for (double p : ps) {
        const std::uint64_t thr = Rng::chanceThreshold(p);
        Rng a(101), b(101);
        for (int i = 0; i < 20000; ++i) {
            ASSERT_EQ(a.chance(p), b.chanceThr(thr))
                << "p=" << p << " draw " << i;
        }
    }
}

TEST(RngTest, ChanceThresholdMatchesOnRandomProbabilities)
{
    Rng pgen(555);
    for (int k = 0; k < 200; ++k) {
        const double p = pgen.nextDouble();
        const std::uint64_t thr = Rng::chanceThreshold(p);
        Rng a(k), b(k);
        for (int i = 0; i < 2000; ++i) {
            ASSERT_EQ(a.chance(p), b.chanceThr(thr))
                << "p=" << p << " draw " << i;
        }
    }
}

TEST(RngTest, GeometricThresholdMatchesGeometric)
{
    const double ps[] = {0.15, 0.35, 0.5, 0.05, 0.98};
    for (double p : ps) {
        const std::uint64_t thr = Rng::chanceThreshold(p);
        Rng a(77), b(77);
        for (int i = 0; i < 20000; ++i) {
            ASSERT_EQ(a.nextGeometric(p, 32),
                      b.nextGeometricThr(thr, 32))
                << "p=" << p << " draw " << i;
        }
    }
}

} // namespace rcache
