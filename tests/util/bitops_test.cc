/** @file Unit tests for util/bitops. */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace rcache
{

TEST(BitopsTest, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(BitopsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(BitopsTest, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitopsTest, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
}

TEST(BitopsTest, BitSlice)
{
    EXPECT_EQ(bitSlice(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bitSlice(0xff, 0, 4), 0xfu);
    EXPECT_EQ(bitSlice(0, 10, 10), 0u);
}

TEST(BitopsTest, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

TEST(BitopsTest, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t{0}), 64u);
}

} // namespace rcache
