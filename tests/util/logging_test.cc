/** @file Unit tests for logging helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace rcache
{

/** Restores the entry threshold so level tests can't leak state. */
class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(logLevel()) {}
    ~LogLevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST(LoggingTest, VerboseToggle)
{
    LogLevelGuard guard;
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
}

TEST(LoggingTest, LevelThresholdGatesEachSeverity)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::error);
    EXPECT_TRUE(logEnabled(LogLevel::error));
    EXPECT_FALSE(logEnabled(LogLevel::warn));
    EXPECT_FALSE(logEnabled(LogLevel::info));
    EXPECT_FALSE(logEnabled(LogLevel::debug));

    setLogLevel(LogLevel::warn);
    EXPECT_TRUE(logEnabled(LogLevel::warn));
    EXPECT_FALSE(logEnabled(LogLevel::info));

    setLogLevel(LogLevel::debug);
    EXPECT_TRUE(logEnabled(LogLevel::error));
    EXPECT_TRUE(logEnabled(LogLevel::debug));
}

TEST(LoggingTest, VerboseMapsOntoLevels)
{
    LogLevelGuard guard;
    setVerbose(false);
    EXPECT_EQ(logLevel(), LogLevel::warn);
    EXPECT_TRUE(logEnabled(LogLevel::warn));
    EXPECT_FALSE(logEnabled(LogLevel::info));
    setVerbose(true);
    EXPECT_EQ(logLevel(), LogLevel::info);
    EXPECT_TRUE(verbose());
}

TEST(LoggingTest, LevelNamesRoundTrip)
{
    for (LogLevel l : {LogLevel::error, LogLevel::warn, LogLevel::info,
                       LogLevel::debug}) {
        LogLevel parsed = LogLevel::error;
        EXPECT_TRUE(parseLogLevel(logLevelName(l), parsed));
        EXPECT_EQ(parsed, l);
    }
    LogLevel out = LogLevel::info;
    EXPECT_FALSE(parseLogLevel("loud", out));
    EXPECT_EQ(out, LogLevel::info) << "failed parse must not write";
    EXPECT_FALSE(parseLogLevel("", out));
}

TEST(LoggingTest, RcLogMacroRespectsThreshold)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::warn);
    // The message expression must not be evaluated when disabled.
    bool touched = false;
    const auto make = [&] {
        touched = true;
        return std::string("dbg");
    };
    RC_LOG(debug, make());
    EXPECT_FALSE(touched);
    testing::internal::CaptureStderr();
    RC_LOG(warn, "visible");
    RC_LOG(info, "hidden");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: visible"), std::string::npos);
    EXPECT_EQ(err.find("hidden"), std::string::npos);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(rc_panic("boom"), "panic: boom");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(rc_fatal("bad config"),
                testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(rc_assert(1 == 2), "assertion failed");
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    rc_assert(1 == 1); // must not abort
    SUCCEED();
}

} // namespace rcache
