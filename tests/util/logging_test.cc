/** @file Unit tests for logging helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace rcache
{

TEST(LoggingTest, VerboseToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(rc_panic("boom"), "panic: boom");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(rc_fatal("bad config"),
                testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(rc_assert(1 == 2), "assertion failed");
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    rc_assert(1 == 1); // must not abort
    SUCCEED();
}

} // namespace rcache
