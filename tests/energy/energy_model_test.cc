/** @file Unit tests for the processor-wide energy model. */

#include <gtest/gtest.h>

#include <sstream>

#include "energy/energy_model.hh"

namespace rcache
{

namespace
{

CoreActivity
sampleActivity()
{
    CoreActivity a;
    a.insts = 1000;
    a.cycles = 800;
    a.intOps = 500;
    a.fpOps = 100;
    a.loads = 250;
    a.stores = 100;
    a.branches = 150;
    return a;
}

const CacheGeometry l1g{32 * 1024, 2, 32, 1024};
const CacheGeometry l2g{512 * 1024, 4, 32, 8192};

} // namespace

TEST(EnergyModelTest, BreakdownTotalIsSumOfParts)
{
    ProcessorEnergyModel m(EnergyParams{});
    Cache il1("il1", l1g), dl1("dl1", l1g), l2("l2", l2g);
    EnergyBreakdown b =
        m.compute(sampleActivity(), il1, 0, dl1, 0, l2, 5);
    EXPECT_DOUBLE_EQ(b.total(), b.icache + b.dcache + b.l2 +
                                    b.memory + b.core + b.clock);
}

TEST(EnergyModelTest, MemoryEnergyScalesWithAccesses)
{
    EnergyParams p;
    ProcessorEnergyModel m(p);
    Cache il1("il1", l1g), dl1("dl1", l1g), l2("l2", l2g);
    auto act = sampleActivity();
    EnergyBreakdown b1 = m.compute(act, il1, 0, dl1, 0, l2, 1);
    EnergyBreakdown b2 = m.compute(act, il1, 0, dl1, 0, l2, 11);
    EXPECT_DOUBLE_EQ(b2.memory - b1.memory, 10 * p.memPerAccess);
}

TEST(EnergyModelTest, ClockScalesWithCycles)
{
    EnergyParams p;
    ProcessorEnergyModel m(p);
    Cache il1("il1", l1g), dl1("dl1", l1g), l2("l2", l2g);
    auto act = sampleActivity();
    EnergyBreakdown b1 = m.compute(act, il1, 0, dl1, 0, l2, 0);
    act.cycles += 100;
    EnergyBreakdown b2 = m.compute(act, il1, 0, dl1, 0, l2, 0);
    EXPECT_NEAR(b2.clock - b1.clock, 100 * p.clockPerCycle, 1e-9);
}

TEST(EnergyModelTest, InOrderCoreDissipatesLessPerInst)
{
    ProcessorEnergyModel m(EnergyParams{});
    Cache il1("il1", l1g), dl1("dl1", l1g), l2("l2", l2g);
    auto ooo = sampleActivity();
    auto inord = ooo;
    inord.outOfOrder = false;
    EnergyBreakdown bo = m.compute(ooo, il1, 0, dl1, 0, l2, 0);
    EnergyBreakdown bi = m.compute(inord, il1, 0, dl1, 0, l2, 0);
    EXPECT_LT(bi.core, bo.core);
    // Cache terms are unchanged.
    EXPECT_DOUBLE_EQ(bi.icache, bo.icache);
    EXPECT_DOUBLE_EQ(bi.dcache, bo.dcache);
}

TEST(EnergyModelTest, ExtraTagBitsOnlyAffectTheirCache)
{
    ProcessorEnergyModel m(EnergyParams{});
    Cache il1("il1", l1g), dl1("dl1", l1g), l2("l2", l2g);
    dl1.access(0, false);
    auto act = sampleActivity();
    EnergyBreakdown b0 = m.compute(act, il1, 0, dl1, 0, l2, 0);
    EnergyBreakdown b4 = m.compute(act, il1, 0, dl1, 4, l2, 0);
    EXPECT_GT(b4.dcache, b0.dcache);
    EXPECT_DOUBLE_EQ(b4.icache, b0.icache);
}

TEST(EnergyModelTest, StreamOperatorPrintsAllRows)
{
    EnergyBreakdown b;
    b.icache = 1;
    b.dcache = 2;
    b.l2 = 3;
    b.memory = 4;
    b.core = 5;
    b.clock = 6;
    std::ostringstream os;
    os << b;
    for (const char *k :
         {"icache", "dcache", "l2", "memory", "core", "clock",
          "total"})
        EXPECT_NE(os.str().find(k), std::string::npos) << k;
}

TEST(EnergyModelTest, IpcHelper)
{
    CoreActivity a;
    a.insts = 400;
    a.cycles = 200;
    EXPECT_DOUBLE_EQ(a.ipc(), 2.0);
    a.cycles = 0;
    EXPECT_DOUBLE_EQ(a.ipc(), 0.0);
}

} // namespace rcache
