/** @file Unit tests for the cache energy model. */

#include <gtest/gtest.h>

#include "core/resizable_cache.hh"
#include "energy/cache_energy.hh"

namespace rcache
{

namespace
{
const CacheGeometry g{32 * 1024, 2, 32, 1024}; // 32 subarrays
} // namespace

TEST(CacheEnergyTest, PerAccessEnergyAtFullSize)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache c("c", g);
    // 32 subarrays * 1.0 + 2 ways * 1.0 + 4.5 decode = 38.5.
    EXPECT_DOUBLE_EQ(m.l1EnergyPerAccessNow(c, 0), 38.5);
}

TEST(CacheEnergyTest, PerAccessEnergyShrinksWithSize)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache c("c", g);
    const double full = m.l1EnergyPerAccessNow(c, 0);
    c.resizeTo(256, 2); // 16K: 16 subarrays
    const double half = m.l1EnergyPerAccessNow(c, 0);
    EXPECT_DOUBLE_EQ(half, 16.0 + 2.0 + 4.5);
    EXPECT_LT(half, full);
}

TEST(CacheEnergyTest, ResizingTagBitsCostEnergy)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache c("c", g);
    const double without = m.l1EnergyPerAccessNow(c, 0);
    const double with = m.l1EnergyPerAccessNow(c, 4);
    // 4 bits * 0.05 per way read * 2 ways = 0.4.
    EXPECT_NEAR(with - without, 0.4, 1e-9);
}

TEST(CacheEnergyTest, AccessEnergyMatchesEventCounters)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache c("c", g);
    for (int i = 0; i < 10; ++i)
        c.access(static_cast<Addr>(i) * 32, false);
    // 10 accesses at full size, uniform per-access cost of 38.5.
    EXPECT_DOUBLE_EQ(m.l1AccessEnergy(c, 0), 385.0);
}

TEST(CacheEnergyTest, ByteCycleTermScalesWithTime)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache c("c", g);
    c.accumulateEnabledTime(1000);
    const double expected = 32768.0 * 1000 * p.l1PerByteCycle;
    EXPECT_DOUBLE_EQ(m.l1Energy(c, 0), expected);
}

TEST(CacheEnergyTest, DownsizedCacheLeaksLess)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache a("a", g), b("b", g);
    b.resizeTo(256, 2); // 16K
    a.accumulateEnabledTime(1000);
    b.accumulateEnabledTime(1000);
    EXPECT_DOUBLE_EQ(m.l1Energy(b, 0), m.l1Energy(a, 0) / 2);
}

TEST(CacheEnergyTest, L2EnergyPerAccessPlusStandby)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    Cache l2("l2", CacheGeometry{512 * 1024, 4, 32, 8192});
    l2.access(0, false);
    l2.access(0, false);
    const double expected =
        2 * p.l2PerAccess + 512.0 * 1024 * 100 * p.l2PerByteCycle;
    EXPECT_DOUBLE_EQ(m.l2Energy(l2, 100), expected);
}

/**
 * Property (the paper's energy argument): the precharge term — the
 * enabled subarray count — is monotonically non-increasing as a
 * resizable cache downsizes, for every organization. Full per-access
 * energy is monotone for the pure organizations only: a hybrid step
 * like 12K@3-way -> 8K@4-way precharges fewer subarrays but senses
 * one more way.
 */
class EnergyMonotoneTest
    : public testing::TestWithParam<Organization>
{
};

TEST_P(EnergyMonotoneTest, PerAccessEnergyMonotoneInLevel)
{
    EnergyParams p;
    CacheEnergyModel m(p);
    ResizableCache c("c", CacheGeometry{32 * 1024, 4, 32, 1024},
                     GetParam());
    double prev_energy = 1e100;
    unsigned prev_subarrays = ~0u;
    for (unsigned lvl = 0; lvl < c.levels(); ++lvl) {
        c.setLevel(lvl);
        EXPECT_LE(c.cache().enabledSubarrays(), prev_subarrays)
            << "level " << lvl;
        prev_subarrays = c.cache().enabledSubarrays();
        if (GetParam() != Organization::Hybrid) {
            const double e =
                m.l1EnergyPerAccessNow(c.cache(), c.extraTagBits());
            EXPECT_LE(e, prev_energy) << "level " << lvl;
            prev_energy = e;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Orgs, EnergyMonotoneTest,
                         testing::Values(Organization::SelectiveWays,
                                         Organization::SelectiveSets,
                                         Organization::Hybrid));

} // namespace rcache
