/**
 * @file
 * The analytic engine's acceptance gate (ISSUE 7): on a fig4-shaped
 * size x assoc grid, the single-pass analytic engine must produce L1
 * access and miss counts *exactly equal* to the detailed timing
 * model's for every static LRU geometry, the best-size selection must
 * agree, and analytic sweeps must stay byte-identical across worker
 * counts and shard partitions (the same determinism contract the
 * detailed engine honors).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analytic/analytic_engine.hh"
#include "core/size_schedule.hh"
#include "scenario/scenario_sweep.hh"
#include "sim/experiment.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

constexpr std::uint64_t kInsts = 60000;

/**
 * The fig4-shaped micro grid: the full-size baseline plus every level
 * of the d-cache schedule, at two associativities, for one app.
 */
std::vector<RunJob>
microGrid(const std::string &app, Organization org)
{
    std::vector<RunJob> jobs;
    for (unsigned assoc : {2u, 8u}) {
        SystemConfig cfg = SystemConfig::base();
        cfg.il1.assoc = assoc;
        cfg.dl1.assoc = assoc;
        cfg.dl1Org = org;
        RunJob base;
        base.label = app + "/a" + std::to_string(assoc) + "/full";
        base.profile = profileByName(app);
        base.cfg = cfg;
        base.insts = kInsts;
        jobs.push_back(base);
        const auto sched = buildSchedule(cfg.dl1Org, cfg.dl1);
        for (unsigned lvl = 0; lvl < sched.size(); ++lvl) {
            RunJob j = base;
            j.label = app + "/a" + std::to_string(assoc) + "/L" +
                      std::to_string(lvl);
            j.dl1.strategy = Strategy::Static;
            j.dl1.staticLevel = lvl;
            jobs.push_back(j);
        }
    }
    return jobs;
}

} // namespace

TEST(AnalyticExactnessTest, LruMissCountsMatchDetailedPerGeometry)
{
    for (const Organization org :
         {Organization::SelectiveWays, Organization::SelectiveSets}) {
        for (const char *app : {"ammp", "gcc"}) {
            const auto jobs = microGrid(app, org);

            // One shared pass prices the whole grid...
            AnalyticPass pass(profileByName(app), kInsts);
            for (const RunJob &j : jobs)
                pass.addConfig(j.cfg);
            pass.run();

            for (const RunJob &job : jobs) {
                // ...against one detailed timing run per geometry.
                const RunResult detailed = executeRunJob(job);
                RunJob a = job;
                a.engine = EngineSpec::makeAnalytic();
                const RunResult analytic = priceAnalyticJob(a, pass);

                EXPECT_EQ(analytic.engine, EngineMode::Analytic);
                EXPECT_EQ(analytic.measuredInsts, 0u);
                EXPECT_EQ(analytic.insts, detailed.insts);
                EXPECT_EQ(analytic.il1Accesses, detailed.il1Accesses)
                    << job.label;
                EXPECT_EQ(analytic.il1Misses, detailed.il1Misses)
                    << job.label;
                EXPECT_EQ(analytic.dl1Accesses, detailed.dl1Accesses)
                    << job.label;
                EXPECT_EQ(analytic.dl1Misses, detailed.dl1Misses)
                    << job.label;
                // The instruction mix the energy model charges is the
                // same stream, so it must agree too.
                EXPECT_EQ(analytic.activity.loads,
                          detailed.activity.loads);
                EXPECT_EQ(analytic.activity.stores,
                          detailed.activity.stores);
                EXPECT_EQ(analytic.activity.branches,
                          detailed.activity.branches);
                EXPECT_EQ(analytic.activity.mispredicts,
                          detailed.activity.mispredicts);
            }
        }
    }
}

TEST(AnalyticExactnessTest, SingleJobDispatchMatchesSharedPass)
{
    // executeRunJob's analytic dispatch (a private single-job pass)
    // and the sweep's shared pass must price identically.
    const auto jobs = microGrid("vpr", Organization::SelectiveWays);
    AnalyticPass pass(profileByName("vpr"), kInsts);
    for (const RunJob &j : jobs)
        pass.addConfig(j.cfg);
    pass.run();

    for (const RunJob &job : jobs) {
        RunJob a = job;
        a.engine = EngineSpec::makeAnalytic();
        const RunResult shared = priceAnalyticJob(a, pass);
        const RunResult solo = executeRunJob(a);
        EXPECT_EQ(solo.il1Misses, shared.il1Misses) << job.label;
        EXPECT_EQ(solo.dl1Misses, shared.dl1Misses) << job.label;
        EXPECT_EQ(solo.cycles, shared.cycles) << job.label;
        EXPECT_DOUBLE_EQ(solo.energy.total(), shared.energy.total())
            << job.label;
    }
}

TEST(AnalyticExactnessTest, BestSizeSelectionAgreesWithDetailed)
{
    // The decision the engine exists to accelerate: which static
    // level minimizes E.D. Both engines must pick the same one.
    for (const char *app : {"ammp", "gcc", "swim"}) {
        Experiment detailed(SystemConfig::base(), kInsts);
        Experiment analytic(SystemConfig::base(), kInsts);
        analytic.setEngine(EngineSpec::makeAnalytic());

        const SearchOutcome d = detailed.staticSearch(
            profileByName(app), CacheSide::DCache,
            Organization::SelectiveSets);
        const SearchOutcome a = analytic.staticSearch(
            profileByName(app), CacheSide::DCache,
            Organization::SelectiveSets);
        EXPECT_EQ(a.bestLevel, d.bestLevel) << app;
    }
}

TEST(AnalyticSweepTest, ByteIdenticalAcrossJobsAndShards)
{
    std::string err;
    auto spec = ScenarioSpec::parseText(R"([scenario]
name = analytic-micro
insts = 40000

[engine]
mode = analytic

[workloads]
apps = ammp,gcc

[axes]
assoc = 2,8
org = ways,sets

[search]
strategy = static
side = dcache
)",
                                        "analytic-micro.scn", &err);
    ASSERT_TRUE(spec) << err;

    auto pathIn = [](const std::string &name) {
        return testing::TempDir() + "/" + name;
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    auto sweep = [&](const std::string &name, unsigned jobs) {
        SweepOptions o;
        o.outPath = pathIn(name);
        o.quiet = true;
        o.jobs = jobs;
        EXPECT_EQ(runScenarioSweep(*spec, o), 0);
        return slurp(pathIn(name));
    };

    const std::string serial = sweep("an-j1.csv", 1);
    const std::string parallel = sweep("an-j4.csv", 4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find(",analytic,lru\n"), std::string::npos);
    EXPECT_NE(serial.find(",engine,policy\n"), std::string::npos);

    // Shard union: re-interleave the two shard CSVs by row order and
    // compare against the unsharded run line by line.
    auto shardSweep = [&](const std::string &name, unsigned i,
                          unsigned n) {
        SweepOptions o;
        o.outPath = pathIn(name);
        o.quiet = true;
        std::string serr;
        auto shard = ShardSpec::parse(std::to_string(i) + "/" +
                                          std::to_string(n),
                                      &serr);
        EXPECT_TRUE(shard) << serr;
        o.shard = *shard;
        EXPECT_EQ(runScenarioSweep(*spec, o), 0);
        return slurp(pathIn(name));
    };
    std::istringstream f(serial);
    std::istringstream s0(shardSweep("an-s0.csv", 0, 2));
    std::istringstream s1(shardSweep("an-s1.csv", 1, 2));
    std::string full_line, shard_line;
    ASSERT_TRUE(std::getline(f, full_line)); // header
    ASSERT_TRUE(std::getline(s0, shard_line));
    EXPECT_EQ(full_line, shard_line);
    ASSERT_TRUE(std::getline(s1, shard_line));
    EXPECT_EQ(full_line, shard_line);
    std::size_t cell = 0;
    while (std::getline(f, full_line)) {
        std::istream &shard_is = (cell % 2 == 0)
                                     ? static_cast<std::istream &>(s0)
                                     : s1;
        ASSERT_TRUE(std::getline(shard_is, shard_line));
        EXPECT_EQ(full_line, shard_line) << "cell " << cell;
        ++cell;
    }
    EXPECT_EQ(cell, 8u); // 2 apps x 2 assoc values x 2 orgs
}

} // namespace rcache
