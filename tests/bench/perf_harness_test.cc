/**
 * @file
 * Perf-harness contract tests: the registry is populated, every
 * benchmark runs at tiny sizes and yields sane numbers, and the
 * BENCH_*.json serialization is well-formed (CI fails the perf smoke
 * job on malformed output, so the shape is load-bearing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/harness/perf_harness.hh"

namespace rcache::bench
{

namespace
{

BenchOptions
tinyOptions()
{
    BenchOptions opts;
    opts.items = 3000;
    opts.repetitions = 1;
    return opts;
}

} // namespace

TEST(PerfHarnessTest, RegistryCoversTheHotPaths)
{
    std::vector<std::string> names;
    for (const BenchSpec &spec : perfBenches()) {
        names.push_back(spec.name);
        EXPECT_FALSE(spec.description.empty()) << spec.name;
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "detailed_ooo"),
              names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "detailed_inorder"),
        names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "workload_batch"),
        names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "cache_access_stream"),
              names.end());
}

TEST(PerfHarnessTest, EveryBenchmarkProducesSaneNumbers)
{
    const BenchOptions opts = tinyOptions();
    for (const BenchSpec &spec : perfBenches()) {
        const BenchResult r = spec.run(opts);
        EXPECT_EQ(r.name, spec.name);
        EXPECT_GT(r.throughput, 0.0) << spec.name;
        EXPECT_GT(r.wallSeconds, 0.0) << spec.name;
        EXPECT_EQ(r.items, opts.items) << spec.name;
        EXPECT_EQ(r.repetitions, opts.repetitions) << spec.name;
        EXPECT_FALSE(r.unit.empty()) << spec.name;
    }
}

TEST(PerfHarnessTest, JsonSerializationIsWellFormed)
{
    BenchResult r;
    r.name = "detailed_ooo";
    r.unit = "Minst/s";
    r.throughput = 12.5;
    r.wallSeconds = 0.08;
    r.items = 1000000;
    r.repetitions = 3;
    r.config = {{"app", "compress"}, {"mode", "detailed"}};

    const std::string json = benchJson(r);
    // Structural checks a JSON parser would enforce: balanced braces,
    // required keys, no trailing comma before a closing brace.
    EXPECT_NE(json.find("\"name\": \"detailed_ooo\""),
              std::string::npos);
    EXPECT_NE(json.find("\"unit\": \"Minst/s\""), std::string::npos);
    EXPECT_NE(json.find("\"throughput\": 12.5"), std::string::npos);
    EXPECT_NE(json.find("\"items\": 1000000"), std::string::npos);
    EXPECT_NE(json.find("\"repetitions\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"app\": \"compress\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json.find(",}"), std::string::npos);
    EXPECT_EQ(json.find(", }"), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(PerfHarnessTest, WriteBenchJsonRoundTrips)
{
    BenchResult r;
    r.name = "unit_test";
    r.unit = "Mops/s";
    r.throughput = 1.25;
    r.wallSeconds = 0.5;
    r.items = 100;
    r.repetitions = 2;

    std::string err;
    ASSERT_TRUE(writeBenchJson(r, ::testing::TempDir(), &err)) << err;
    const std::string path =
        ::testing::TempDir() + "/BENCH_unit_test.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), benchJson(r));
    std::remove(path.c_str());
}

TEST(PerfHarnessTest, WriteBenchJsonReportsUnwritableDir)
{
    BenchResult r;
    r.name = "nope";
    std::string err;
    EXPECT_FALSE(
        writeBenchJson(r, "/nonexistent-dir-for-rcache-test", &err));
    EXPECT_NE(err.find("cannot write"), std::string::npos);
}

} // namespace rcache::bench
