/** @file Tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "runner/thread_pool.hh"

namespace rcache
{

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SingleThreadStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
    EXPECT_EQ(pool.numThreads(), ThreadPool::hardwareThreads());
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.waitIdle(); // must not hang
    SUCCEED();
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), (batch + 1) * 50);
    }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &count] {
            for (int j = 0; j < 10; ++j)
                pool.submit([&count] { ++count; });
        });
    }
    // waitIdle covers the recursively submitted tasks too: pending
    // only reaches zero once the whole tree has run.
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { ++count; });
        // No waitIdle: the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WorkIsSpreadAcrossThreads)
{
    // Not a strict guarantee of stealing, but with blocking tasks
    // and as many tasks as threads, every worker must pick one up.
    constexpr unsigned kThreads = 4;
    ThreadPool pool(kThreads);
    std::mutex mtx;
    std::set<std::thread::id> seen;
    std::atomic<unsigned> arrived{0};
    for (unsigned i = 0; i < kThreads; ++i) {
        pool.submit([&] {
            {
                std::lock_guard<std::mutex> lk(mtx);
                seen.insert(std::this_thread::get_id());
            }
            ++arrived;
            // Hold until every thread has arrived, so one worker
            // cannot run all the tasks itself.
            while (arrived.load() < kThreads)
                std::this_thread::yield();
        });
    }
    pool.waitIdle();
    EXPECT_EQ(seen.size(), kThreads);
}

} // namespace rcache
