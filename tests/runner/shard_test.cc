/** @file Tests for ShardSpec parsing and partitioning. */

#include <gtest/gtest.h>

#include "runner/shard.hh"

namespace rcache
{

TEST(ShardTest, ParsesValidSpecs)
{
    std::string err;
    auto s = ShardSpec::parse("0/1", &err);
    ASSERT_TRUE(s) << err;
    EXPECT_EQ(s->index, 0u);
    EXPECT_EQ(s->count, 1u);
    EXPECT_FALSE(s->sharded());

    s = ShardSpec::parse("3/8", &err);
    ASSERT_TRUE(s) << err;
    EXPECT_EQ(s->index, 3u);
    EXPECT_EQ(s->count, 8u);
    EXPECT_TRUE(s->sharded());
    EXPECT_EQ(s->str(), "3/8");
}

TEST(ShardTest, RejectsMalformedSpecs)
{
    std::string err;
    for (const char *bad : {"", "1", "1/", "/2", "2/2", "5/2", "a/2",
                            "1/b", "-1/2", "1/0", "1/2/3"}) {
        EXPECT_FALSE(ShardSpec::parse(bad, &err)) << bad;
        EXPECT_NE(err.find("shard wants i/N"), std::string::npos);
    }
}

TEST(ShardTest, ShardsPartitionTheIndexSpace)
{
    // Every cell belongs to exactly one shard, for several N.
    for (std::size_t n : {1u, 2u, 3u, 7u}) {
        for (std::size_t cell = 0; cell < 100; ++cell) {
            std::size_t owners = 0;
            for (std::size_t i = 0; i < n; ++i)
                owners += ShardSpec{i, n}.owns(cell) ? 1 : 0;
            EXPECT_EQ(owners, 1u) << cell << " of " << n;
        }
    }
}

} // namespace rcache
