/** @file Tests for the sweep runner: ordering, determinism,
 *  progress, cancellation, and parity with serial Experiment use. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "runner/sweep_runner.hh"
#include "sim/experiment.hh"

namespace rcache
{

namespace
{

constexpr std::uint64_t kInsts = 60000;

/** Bit-identical comparison of everything a run reports. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.avgIl1Bytes, b.avgIl1Bytes);
    EXPECT_EQ(a.avgDl1Bytes, b.avgDl1Bytes);
    EXPECT_EQ(a.il1MissRatio, b.il1MissRatio);
    EXPECT_EQ(a.dl1MissRatio, b.dl1MissRatio);
    EXPECT_EQ(a.l2MissRatio, b.l2MissRatio);
    EXPECT_EQ(a.il1Resizes, b.il1Resizes);
    EXPECT_EQ(a.dl1Resizes, b.dl1Resizes);
    EXPECT_EQ(a.il1LevelTrace, b.il1LevelTrace);
    EXPECT_EQ(a.dl1LevelTrace, b.dl1LevelTrace);
}

/** A mixed batch: static levels of two apps plus a few dynamic
 *  points, all through the public job enumeration. */
std::vector<RunJob>
mixedBatch(const Experiment &exp)
{
    std::vector<RunJob> jobs;
    for (const char *name : {"ammp", "gcc"}) {
        auto s = exp.staticSearchJobs(profileByName(name),
                                      CacheSide::DCache,
                                      Organization::SelectiveSets);
        jobs.insert(jobs.end(), s.begin(), s.end());
    }
    auto d = exp.dynamicSearchJobs(profileByName("swim"),
                                   CacheSide::DCache,
                                   Organization::SelectiveSets);
    jobs.insert(jobs.end(), d.begin(), d.begin() + 6);
    return jobs;
}

} // namespace

TEST(SweepRunnerTest, ParallelResultsBitIdenticalToSerial)
{
    Experiment exp(SystemConfig::base(), kInsts);
    const auto jobs = mixedBatch(exp);

    const auto serial = SweepRunner::runSerial(jobs);
    SweepRunner parallel(4);
    const auto par = parallel.run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(serial[i], par[i]);
}

TEST(SweepRunnerTest, ResultsAreInJobOrder)
{
    Experiment exp(SystemConfig::base(), kInsts);
    std::vector<RunJob> jobs;
    for (const char *name : {"ammp", "gcc", "swim", "vpr"})
        jobs.push_back(exp.baselineJob(profileByName(name)));

    SweepRunner runner(4);
    const auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].workload, jobs[i].profile.name);
}

TEST(SweepRunnerTest, ProgressReachesTotalExactlyOnce)
{
    Experiment exp(SystemConfig::base(), kInsts);
    std::vector<RunJob> jobs;
    for (const char *name : {"ammp", "gcc", "swim"})
        jobs.push_back(exp.baselineJob(profileByName(name)));

    SweepRunner runner(2);
    std::vector<std::size_t> seen;
    std::size_t total_seen = 0;
    runner.setProgress([&](std::size_t done, std::size_t total,
                           const RunJob &) {
        seen.push_back(done);
        total_seen = total;
    });
    runner.run(jobs);
    EXPECT_EQ(seen.size(), jobs.size());
    EXPECT_EQ(total_seen, jobs.size());
    // Every count 1..N reported exactly once (order may vary).
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
}

TEST(SweepRunnerTest, CancelSkipsUnstartedJobs)
{
    Experiment exp(SystemConfig::base(), kInsts);
    std::vector<RunJob> jobs;
    for (const char *name : {"ammp", "gcc"})
        jobs.push_back(exp.baselineJob(profileByName(name)));

    SweepRunner runner(1);
    runner.requestCancel();
    const auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (const auto &r : results)
        EXPECT_EQ(r.insts, 0u) << "job ran despite cancellation";

    runner.resetCancel();
    const auto rerun = runner.run(jobs);
    EXPECT_GT(rerun[0].insts, 0u);
}

TEST(SweepRunnerTest, ExperimentSearchesIdenticalWithAndWithoutRunner)
{
    const auto p = profileByName("ammp");

    Experiment serial(SystemConfig::base(), kInsts);
    const auto s_static = serial.staticSearch(
        p, CacheSide::DCache, Organization::SelectiveSets);
    const auto s_both =
        serial.staticSearchBoth(p, Organization::SelectiveSets);

    Experiment threaded(SystemConfig::base(), kInsts);
    SweepRunner runner(4);
    threaded.setRunner(&runner);
    const auto t_static = threaded.staticSearch(
        p, CacheSide::DCache, Organization::SelectiveSets);
    const auto t_both =
        threaded.staticSearchBoth(p, Organization::SelectiveSets);

    EXPECT_EQ(s_static.bestLevel, t_static.bestLevel);
    expectIdentical(s_static.baseline, t_static.baseline);
    expectIdentical(s_static.best, t_static.best);
    EXPECT_EQ(s_both.bestLevel, t_both.bestLevel);
    expectIdentical(s_both.best, t_both.best);
}

TEST(SweepRunnerTest, DynamicSearchIdenticalWithAndWithoutRunner)
{
    const auto p = profileByName("swim");

    Experiment serial(SystemConfig::base(), kInsts);
    const auto s = serial.dynamicSearch(
        p, CacheSide::DCache, Organization::SelectiveSets);

    Experiment threaded(SystemConfig::base(), kInsts);
    SweepRunner runner(3);
    threaded.setRunner(&runner);
    const auto t = threaded.dynamicSearch(
        p, CacheSide::DCache, Organization::SelectiveSets);

    expectIdentical(s.best, t.best);
    EXPECT_EQ(s.bestParams.intervalAccesses,
              t.bestParams.intervalAccesses);
    EXPECT_EQ(s.bestParams.missBound, t.bestParams.missBound);
    EXPECT_EQ(s.bestParams.sizeBoundBytes,
              t.bestParams.sizeBoundBytes);
}

TEST(SweepRunnerTest, ExecuteRunJobIsPure)
{
    Experiment exp(SystemConfig::base(), kInsts);
    const RunJob job = exp.baselineJob(profileByName("gcc"));
    expectIdentical(executeRunJob(job), executeRunJob(job));
}

TEST(SweepRunnerTest, BaselineMemoSafeUnderConcurrentUse)
{
    // Hammer the memoized baseline from many threads; TSan-clean and
    // every thread must observe the same result.
    Experiment exp(SystemConfig::base(), kInsts);
    const auto p = profileByName("ammp");
    const RunResult ref = exp.baseline(p);

    ThreadPool pool(4);
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            RunResult r = exp.baseline(p);
            if (r.cycles != ref.cycles ||
                r.energy.total() != ref.energy.total())
                ++mismatches;
        });
    }
    pool.waitIdle();
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace rcache
