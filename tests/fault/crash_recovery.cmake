# Crash-recovery invariant suite, run as a ctest against the real
# binary:
#
#   cmake -DRCACHE_SIM=<rcache-sim> -DFAULT_DIR=<tests/fault>
#         -DGOLDEN_DIR=<tests/golden> -DWORK_DIR=<scratch>
#         -P crash_recovery.cmake
#
# For EVERY site in `rcache-sim list-failpoints` the suite injects a
# deterministic fault (crash / torn / io_error via the RC_FAILPOINT
# environment variable), asserts the documented exit code and
# one-line diagnostic, then recovers — single-process --resume, or a
# second claim worker taking over the crashed one's lease — and
# byte-compares the final outputs against an undisturbed run. The
# suite enumerates the registry at the end and fails if any site has
# no flow, so adding a failpoint without a recovery proof is itself
# a test failure.

cmake_policy(SET CMP0057 NEW) # IN_LIST

foreach(var RCACHE_SIM FAULT_DIR GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "crash_recovery.cmake needs -D${var}=...")
  endif()
endforeach()

set(SWEEP_SCN ${FAULT_DIR}/chaos_sweep.scn)
set(TUNE_SCN ${FAULT_DIR}/chaos_tune.scn)
set(TELEM_SCN ${GOLDEN_DIR}/telemetry_micro.scn)
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(covered "")

# Run rcache-sim with an optional injected failpoint spec and assert
# the exit code. Usage:
#   sim(<expected-rc> <failpoint-spec-or-"none"> <stderr-regex-or-"">
#       <args...>)
# The matched stderr is exported as last_stderr for follow-up checks.
function(sim expect_rc failpoints expect_err)
  if(failpoints STREQUAL "none")
    set(launcher)
  else()
    set(launcher ${CMAKE_COMMAND} -E env "RC_FAILPOINT=${failpoints}")
  endif()
  execute_process(COMMAND ${launcher} ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
            "expected exit ${expect_rc}, got ${rc} from: rcache-sim "
            "${ARGN} (RC_FAILPOINT=${failpoints}) — stderr: ${err}")
  endif()
  if(NOT expect_err STREQUAL ""
     AND NOT "${out}${err}" MATCHES "${expect_err}")
    message(FATAL_ERROR
            "output missing '${expect_err}' from: rcache-sim ${ARGN} "
            "(RC_FAILPOINT=${failpoints}) — stdout: ${out} — "
            "stderr: ${err}")
  endif()
endfunction()

function(same a b why)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "${why}: ${a} differs from ${b} — recovery must "
            "reproduce the undisturbed bytes exactly.")
  endif()
endfunction()

macro(nap)
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 2)
endmacro()

# ---- undisturbed references
sim(0 none "" sweep --scenario ${SWEEP_SCN} --jobs 2
    --out ${WORK_DIR}/sweep_ref.csv)
sim(0 none "" tune --scenario ${TUNE_SCN}
    --out ${WORK_DIR}/tune_ref.csv --log ${WORK_DIR}/tune_ref.log)

# =====================================================================
# Flow A — csv.chunk.flush: crash/tear/starve the chunked CSV commit
# mid-sweep, then --resume into the byte-identical report. crash@1
# dies before any row lands, crash@2 between the two chunks, torn@2
# leaves half a chunk (resume drops the torn tail), io_error@1 takes
# the documented exit-3 full-disk path.
# =====================================================================
foreach(variant "crash@1;137" "crash@2;137" "torn@2;137"
                "io_error@1;3")
  list(GET variant 0 action)
  list(GET variant 1 rc)
  set(out ${WORK_DIR}/sweep_A.csv)
  file(REMOVE ${out})
  sim(${rc} "csv.chunk.flush=${action}"
      "failpoint 'csv.chunk.flush' fired"
      sweep --scenario ${SWEEP_SCN} --jobs 2 --out ${out})
  sim(0 none "" sweep --scenario ${SWEEP_SCN} --jobs 2
      --resume ${out})
  same(${out} ${WORK_DIR}/sweep_ref.csv
       "flow A (csv.chunk.flush=${action}) resume")
endforeach()
list(APPEND covered csv.chunk.flush)

# The io_error diagnostic is the documented one-liner.
sim(3 "csv.chunk.flush=io_error@1" "disk full or device error"
    sweep --scenario ${SWEEP_SCN} --jobs 2
    --out ${WORK_DIR}/sweep_A_diag.csv)

# =====================================================================
# Flow B — the claim protocol: worker 1 crashes at each lease-lifecycle
# site, worker 2 (after the 1 s lease timeout) takes over and drains
# the manifest; doctor must call the directory consistent and the
# merged report must match the unsharded reference.
# =====================================================================
foreach(site claim.manifest.scn.after claim.manifest.meta.write
             claim.lease.after_create claim.heartbeat
             claim.unit.publish claim.done.before)
  string(REPLACE "." "_" tag ${site})
  set(dir ${WORK_DIR}/claim_${tag})
  sim(137 "${site}=crash@1" "failpoint '${site}' fired: crash"
      sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
      --shards 2 --lease-timeout 1)
  nap()
  sim(0 none "" sweep --scenario ${SWEEP_SCN} --jobs 2
      --claim ${dir} --shards 2 --lease-timeout 1)
  sim(0 none "" doctor --lease-timeout 1 ${dir})
  sim(0 none "" merge --out ${WORK_DIR}/claim_${tag}_merged.csv
      ${dir})
  same(${WORK_DIR}/claim_${tag}_merged.csv
       ${WORK_DIR}/sweep_ref.csv
       "flow B (${site}=crash@1) takeover+merge")
  list(APPEND covered ${site})
endforeach()

# claim.manifest.meta.write, torn variant: the crash leaves a
# *partial* meta — doctor reports the damage (exit 2), the next
# worker quarantines it aside and re-creates, and the drained
# directory merges identically.
set(dir ${WORK_DIR}/claim_meta_torn)
sim(137 "claim.manifest.meta.write=torn@1"
    "failpoint 'claim.manifest.meta.write' fired: torn"
    sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
    --shards 2 --lease-timeout 1)
sim(2 none "INCONSISTENT" doctor --lease-timeout 1 ${dir})
sim(0 none "moved aside" sweep --scenario ${SWEEP_SCN} --jobs 2
    --claim ${dir} --shards 2 --lease-timeout 1)
sim(0 none "" doctor --lease-timeout 1 ${dir})
sim(0 none "" merge --out ${WORK_DIR}/claim_meta_torn_merged.csv
    ${dir})
same(${WORK_DIR}/claim_meta_torn_merged.csv ${WORK_DIR}/sweep_ref.csv
     "flow B (claim.manifest.meta.write=torn@1) quarantine+merge")

# claim.takeover.aside: crash *during* a takeover — after the stale
# lease is renamed aside, before the fresh claim. A third worker must
# still drain the directory (the aside already freed the unit).
set(dir ${WORK_DIR}/claim_takeover_aside)
sim(137 "claim.lease.after_create=crash@1" ""
    sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
    --shards 2 --lease-timeout 1)
nap()
sim(137 "claim.takeover.aside=crash@1"
    "failpoint 'claim.takeover.aside' fired: crash"
    sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
    --shards 2 --lease-timeout 1)
sim(0 none "" sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
    --shards 2 --lease-timeout 1)
sim(0 none "" doctor --lease-timeout 1 ${dir})
sim(0 none "" merge --out ${WORK_DIR}/claim_aside_merged.csv ${dir})
same(${WORK_DIR}/claim_aside_merged.csv ${WORK_DIR}/sweep_ref.csv
     "flow B (claim.takeover.aside=crash@1) third-worker merge")
list(APPEND covered claim.takeover.aside)

# claim.heartbeat, io_error variant: a failed mtime bump is degraded
# operation, not death — the worker warns and finishes; its output is
# untouched.
set(dir ${WORK_DIR}/claim_hb_degraded)
sim(0 "claim.heartbeat=io_error@1" "heartbeat failed"
    sweep --scenario ${SWEEP_SCN} --jobs 2 --claim ${dir}
    --shards 2 --lease-timeout 300)
sim(0 none "" merge --out ${WORK_DIR}/claim_hb_merged.csv ${dir})
same(${WORK_DIR}/claim_hb_merged.csv ${WORK_DIR}/sweep_ref.csv
     "flow B (claim.heartbeat=io_error) degraded-worker merge")

# =====================================================================
# Flow C — the tune decision log and winner CSV: crash mid-log (in
# round 0 and round 1), tear a record, starve an append, kill the
# winner write; every --resume reproduces the reference log and
# winner byte for byte.
# =====================================================================
foreach(variant "log.append=crash@3;137" "log.append=torn@5;137"
                "log.append=io_error@2;3"
                "tune.winner.write=crash@1;137"
                "tune.winner.write=io_error@1;3")
  list(GET variant 0 spec)
  list(GET variant 1 rc)
  string(REGEX REPLACE "=.*" "" site ${spec})
  set(log ${WORK_DIR}/tune_C.log)
  set(out ${WORK_DIR}/tune_C.csv)
  file(REMOVE ${log} ${out})
  sim(${rc} ${spec} "failpoint '${site}' fired"
      tune --scenario ${TUNE_SCN} --out ${out} --log ${log})
  sim(0 none "" tune --scenario ${TUNE_SCN} --resume ${log}
      --log ${log} --out ${out})
  same(${log} ${WORK_DIR}/tune_ref.log "flow C (${spec}) log")
  same(${out} ${WORK_DIR}/tune_ref.csv "flow C (${spec}) winner")
  list(APPEND covered ${site})
endforeach()

# =====================================================================
# Flow D — atomic.publish in a two-worker claim tune: hit 1 is the
# manifest scenario text, hit 2 the first tune unit's CSV publish —
# worker 1 dies mid-rename, worker 2 takes over the round and both
# the log and the winner match the local reference.
# =====================================================================
set(dir ${WORK_DIR}/claim_tune)
sim(137 "atomic.publish=crash@2"
    "failpoint 'atomic.publish' fired: crash"
    tune --scenario ${TUNE_SCN} --claim ${dir} --shards 2
    --lease-timeout 1 --log ${WORK_DIR}/tune_D_w1.log
    --out ${WORK_DIR}/tune_D_w1.csv)
nap()
sim(0 none "" tune --scenario ${TUNE_SCN} --claim ${dir} --shards 2
    --lease-timeout 1 --log ${WORK_DIR}/tune_D_w2.log
    --out ${WORK_DIR}/tune_D_w2.csv)
sim(0 none "" doctor --lease-timeout 1 ${dir})
same(${WORK_DIR}/tune_D_w2.log ${WORK_DIR}/tune_ref.log
     "flow D (atomic.publish=crash@2) takeover log")
same(${WORK_DIR}/tune_D_w2.csv ${WORK_DIR}/tune_ref.csv
     "flow D (atomic.publish=crash@2) takeover winner")
list(APPEND covered atomic.publish)

# =====================================================================
# Flow E — telemetry sidecars and the merge report. Telemetry is
# observability, so the recovery proof is non-perturbation: after a
# sidecar crash, a clean rerun's sweep CSV still matches the
# no-telemetry reference. io_error takes the exit-3 path. The merged
# report is a durability seam like any other: its final flush can
# fail (exit 3) or crash, and a rerun must commit identical bytes.
# =====================================================================
sim(0 none "" sweep --scenario ${TELEM_SCN} --jobs 2
    --out ${WORK_DIR}/telem_ref.csv)
foreach(site telemetry.timeline.append telemetry.events.append
             telemetry.trace.write)
  string(REPLACE "." "_" tag ${site})
  set(sidecars --timeline ${WORK_DIR}/E_${tag}.tl.jsonl
      --events ${WORK_DIR}/E_${tag}.ev.jsonl
      --trace-events ${WORK_DIR}/E_${tag}.tr.json)
  sim(137 "${site}=crash@1" "failpoint '${site}' fired: crash"
      sweep --scenario ${TELEM_SCN} --jobs 2
      --out ${WORK_DIR}/E_${tag}.csv ${sidecars})
  sim(3 "${site}=io_error@1" "disk full or device error"
      sweep --scenario ${TELEM_SCN} --jobs 2
      --out ${WORK_DIR}/E_${tag}.csv ${sidecars})
  sim(0 none "" sweep --scenario ${TELEM_SCN} --jobs 2
      --out ${WORK_DIR}/E_${tag}.csv ${sidecars})
  same(${WORK_DIR}/E_${tag}.csv ${WORK_DIR}/telem_ref.csv
       "flow E (${site}) telemetry non-perturbation")
  list(APPEND covered ${site})
endforeach()

set(dir ${WORK_DIR}/claim_hb_degraded) # drained sweep dir from B
sim(3 "merge.out.flush=io_error@1" "disk full or device error"
    merge --out ${WORK_DIR}/merged_io.csv ${dir})
sim(137 "merge.out.flush=crash@1"
    "failpoint 'merge.out.flush' fired: crash"
    merge --out ${WORK_DIR}/merged_crash.csv ${dir})
sim(0 none "" merge --out ${WORK_DIR}/merged_clean.csv ${dir})
same(${WORK_DIR}/merged_clean.csv ${WORK_DIR}/sweep_ref.csv
     "flow E (merge.out.flush) rerun merge")
list(APPEND covered merge.out.flush)

# =====================================================================
# Coverage cross-check: every registered failpoint site must have
# appeared in a flow above. A new site without a recovery proof fails
# here, by name.
# =====================================================================
execute_process(COMMAND ${RCACHE_SIM} list-failpoints
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE registry)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "list-failpoints failed (exit ${rc})")
endif()
string(REGEX MATCHALL "[^\n]+" lines "${registry}")
set(all_sites "")
foreach(line ${lines})
  string(REGEX MATCH "^[a-z0-9_.]+" site "${line}")
  if(site)
    list(APPEND all_sites ${site})
  endif()
endforeach()
list(LENGTH all_sites nsites)
if(nsites LESS 15)
  message(FATAL_ERROR
          "list-failpoints reported only ${nsites} site(s): "
          "${registry}")
endif()
foreach(site ${all_sites})
  if(NOT site IN_LIST covered)
    message(FATAL_ERROR
            "failpoint site '${site}' is registered but no "
            "crash-recovery flow in crash_recovery.cmake covers it — "
            "every durability seam needs a recovery proof.")
  endif()
endforeach()
message(STATUS
        "crash-recovery: all ${nsites} failpoint sites covered")
