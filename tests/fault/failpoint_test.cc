/** @file
 * Tests for the deterministic failpoint registry: spec parsing, hit
 * counting with @N indices, the torn/delay/io_error actions, env
 * arming, disarm semantics, and the closed-registry guarantee the
 * crash-recovery suite's coverage cross-check relies on.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <set>
#include <string>

#include "fault/failpoint.hh"

namespace rcache::fault
{

namespace
{

/** Every test leaves the process disarmed — failpoints are global
 *  state and the rest of the suite must stay on the fast path. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarmFailpoints(); }
    void TearDown() override { disarmFailpoints(); }
};

} // namespace

TEST_F(FailpointTest, RegistryIsClosedUniqueAndDescribed)
{
    const auto &sites = knownFailpoints();
    ASSERT_GE(sites.size(), 15u);
    std::set<std::string> names;
    for (const SiteInfo &s : sites) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate site " << s.name;
        EXPECT_NE(std::string(s.description), "")
            << s.name << " needs a description";
    }
    // The sites the hardening threads through the durability seams.
    for (const char *must :
         {"claim.lease.after_create", "claim.heartbeat",
          "claim.manifest.meta.write", "atomic.publish",
          "csv.chunk.flush", "log.append", "tune.winner.write",
          "merge.out.flush"})
        EXPECT_TRUE(names.count(must)) << must;
}

TEST_F(FailpointTest, BadSpecsArmNothing)
{
    const auto rejects = [](const std::string &spec,
                            const std::string &needle) {
        std::string err;
        EXPECT_FALSE(armFailpoints(spec, &err)) << spec;
        EXPECT_NE(err.find(needle), std::string::npos)
            << spec << " -> " << err;
    };
    rejects("nosuch.site=crash", "unknown site 'nosuch.site'");
    rejects("nosuch.site=crash", "list-failpoints");
    rejects("csv.chunk.flush", "SITE=ACTION");
    rejects("=crash", "SITE=ACTION");
    rejects("csv.chunk.flush=frob", "unknown action 'frob'");
    rejects("csv.chunk.flush=crash@0", "positive hit index");
    rejects("csv.chunk.flush=crash@x", "positive hit index");
    rejects("csv.chunk.flush=crash:5", "only delay takes");
    rejects("csv.chunk.flush=delay:abc", "millisecond count");
    rejects("", "empty entry");
    rejects("csv.chunk.flush=crash,,log.append=torn", "empty entry");
    // A rejected spec must leave the fast path untouched.
    EXPECT_FALSE(anyFailpointArmed());
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::None);
}

TEST_F(FailpointTest, FiresExactlyOnTheNthHit)
{
    std::string err;
    ASSERT_TRUE(armFailpoints("csv.chunk.flush=io_error@3", &err))
        << err;
    EXPECT_TRUE(anyFailpointArmed());
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::None);
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::None);
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::IoError);
    // Exactly once: the 4th hit passes clean again.
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::None);
    EXPECT_EQ(failpointHits("csv.chunk.flush"), 4u);
    // Unarmed sites never count.
    EXPECT_EQ(RC_FAILPOINT("log.append"), Fire::None);
    EXPECT_EQ(failpointHits("log.append"), 0u);
}

TEST_F(FailpointTest, MultiSiteSpecAndTornAction)
{
    std::string err;
    ASSERT_TRUE(armFailpoints(
                    "log.append=torn,claim.heartbeat=delay:1", &err))
        << err;
    EXPECT_EQ(RC_FAILPOINT("log.append"), Fire::Torn);
    // delay sleeps and passes through as None.
    EXPECT_EQ(RC_FAILPOINT("claim.heartbeat"), Fire::None);
    EXPECT_EQ(failpointHits("claim.heartbeat"), 1u);
}

TEST_F(FailpointTest, ArmingIsCumulativeUntilDisarm)
{
    std::string err;
    ASSERT_TRUE(armFailpoints("log.append=io_error@2", &err)) << err;
    ASSERT_TRUE(armFailpoints("merge.out.flush=io_error", &err))
        << err;
    EXPECT_EQ(RC_FAILPOINT("merge.out.flush"), Fire::IoError);
    EXPECT_EQ(RC_FAILPOINT("log.append"), Fire::None);
    EXPECT_EQ(RC_FAILPOINT("log.append"), Fire::IoError);

    disarmFailpoints();
    EXPECT_FALSE(anyFailpointArmed());
    EXPECT_EQ(failpointHits("log.append"), 0u);
    EXPECT_EQ(RC_FAILPOINT("log.append"), Fire::None);
}

TEST_F(FailpointTest, EnvArming)
{
    // Unset or empty RC_FAILPOINT arms nothing and succeeds.
    ::unsetenv("RC_FAILPOINT");
    std::string err;
    EXPECT_TRUE(armFailpointsFromEnv(&err)) << err;
    EXPECT_FALSE(anyFailpointArmed());
    ::setenv("RC_FAILPOINT", "", 1);
    EXPECT_TRUE(armFailpointsFromEnv(&err)) << err;
    EXPECT_FALSE(anyFailpointArmed());

    ::setenv("RC_FAILPOINT", "csv.chunk.flush=io_error", 1);
    EXPECT_TRUE(armFailpointsFromEnv(&err)) << err;
    EXPECT_EQ(RC_FAILPOINT("csv.chunk.flush"), Fire::IoError);

    ::setenv("RC_FAILPOINT", "bogus=crash", 1);
    disarmFailpoints();
    EXPECT_FALSE(armFailpointsFromEnv(&err));
    EXPECT_NE(err.find("unknown site 'bogus'"), std::string::npos);
    ::unsetenv("RC_FAILPOINT");
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, CrashActionExits137WithoutFlushing)
{
    EXPECT_EXIT(
        {
            std::string err;
            if (!armFailpoints("atomic.publish=crash", &err))
                ::_exit(99);
            (void)RC_FAILPOINT("atomic.publish");
            ::_exit(0); // unreachable: the macro must not return
        },
        ::testing::ExitedWithCode(137),
        "failpoint 'atomic.publish' fired: crash");
}

} // namespace rcache::fault
