/** @file
 * Malformed-durability corpus: every torn, truncated, or garbage
 * on-disk artifact a crash can leave behind must be *detected*,
 * reported in one line, quarantined aside (never destroyed), and
 * recovered from — with the recovered output byte-identical to an
 * undisturbed run. Covers manifests, leases, sweep-CSV resume tails
 * torn at every byte offset, and decision-log mid-record tails.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/claim.hh"
#include "scenario/scenario_sweep.hh"
#include "search/adaptive_search.hh"

namespace rcache
{

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
pathIn(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spill(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
    ASSERT_TRUE(os) << path;
}

/** Files in @p dir whose name contains @p needle. */
std::size_t
countContaining(const std::string &dir, const std::string &needle)
{
    std::size_t n = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().find(needle) !=
            std::string::npos)
            ++n;
    return n;
}

/** Tiny analytic sweep: cheap enough to rerun per torn byte. */
ScenarioSpec
analyticSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = fault-corpus
insts = 20000

[workloads]
apps = ammp,gcc

[axes]
assoc = 2,4
org = ways,sets

[engine]
mode = analytic

[search]
strategy = static
side = dcache
)",
                                              "fault-corpus.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

ScenarioSpec
tuneSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = fault-tune
insts = 30000

[workloads]
apps = gcc,m88ksim

[axes]
assoc = 2,4
org = ways,sets

[search]
strategy = static
side = dcache
mode = adaptive
ladder = analytic,full
promote = 0.5
min-survivors = 2
)",
                                              "fault-tune.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

} // namespace

TEST(MalformedDurabilityTest, ManifestDamageCorpus)
{
    // Every damaged-meta shape is detected, flagged corrupt (unlike
    // a merely absent manifest), and diagnosed in one line.
    const struct
    {
        const char *what;
        const char *meta;
        const char *needle;
    } corpus[] = {
        {"binary garbage", "\x7f\x45\x4c\x46\x01\x01", "malformed"},
        {"torn mid-value", "mode = swe", "unknown manifest mode"},
        {"torn mid-key", "mod", "malformed line"},
        {"unknown key", "mode = sweep\nfrobs = 2\n",
         "unknown manifest key 'frobs'"},
        {"zero shards", "mode = sweep\nshards = 0\n",
         "shards wants 1..4096"},
        {"junk shards", "mode = sweep\nshards = lots\n",
         "shards wants 1..4096"},
        {"missing shard count", "mode = sweep\n",
         "missing a shard count"},
    };
    for (const auto &c : corpus) {
        const std::string dir =
            freshDir(std::string("mf_corpus_") +
                     std::to_string(&c - corpus));
        std::filesystem::create_directories(dir);
        spill(dir + "/MANIFEST.scn", "[scenario]\nname = x\n");
        spill(dir + "/MANIFEST.meta", c.meta);
        std::string err;
        bool corrupt = false;
        EXPECT_FALSE(readManifest(dir, &err, &corrupt)) << c.what;
        EXPECT_TRUE(corrupt) << c.what << ": " << err;
        EXPECT_NE(err.find(c.needle), std::string::npos)
            << c.what << ": " << err;
        EXPECT_EQ(err.find('\n'), std::string::npos)
            << c.what << " diagnostic must be one line: " << err;
    }

    // Meta intact but the scenario text gone: also corrupt.
    const std::string noscn = freshDir("mf_noscn");
    std::filesystem::create_directories(noscn);
    spill(noscn + "/MANIFEST.meta", "mode = sweep\nshards = 2\n");
    std::string err;
    bool corrupt = false;
    EXPECT_FALSE(readManifest(noscn, &err, &corrupt));
    EXPECT_TRUE(corrupt);
    EXPECT_NE(err.find("MANIFEST.scn"), std::string::npos) << err;

    // An absent manifest is NOT corrupt — there is nothing to
    // quarantine, only something to create.
    EXPECT_FALSE(readManifest(freshDir("mf_absent"), &err, &corrupt));
    EXPECT_FALSE(corrupt);
}

TEST(MalformedDurabilityTest, QuarantineKeepsEvidenceAndUnblocks)
{
    const std::string dir = freshDir("mf_quarantine");
    std::filesystem::create_directories(dir);
    spill(dir + "/MANIFEST.scn", "[scenario]\nname = x\n");
    spill(dir + "/MANIFEST.meta", "garbage!");

    std::string err;
    ASSERT_TRUE(quarantineManifest(dir, &err)) << err;
    // The damaged bytes survive under .corrupt.<ts>; the slot is
    // free for a fresh manifest.
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/MANIFEST.meta"));
    EXPECT_EQ(countContaining(dir, "MANIFEST.meta.corrupt."), 1u);

    ManifestInfo info;
    info.mode = "sweep";
    info.shards = 2;
    info.scenarioText = "[scenario]\nname = x\n";
    ASSERT_TRUE(writeManifest(dir, info, &err)) << err;
    bool corrupt = true;
    const auto back = readManifest(dir, &err, &corrupt);
    ASSERT_TRUE(back) << err;
    EXPECT_FALSE(corrupt);
    EXPECT_EQ(back->shards, 2u);
}

TEST(MalformedDurabilityTest, GarbageLeaseNeverWronglyReleased)
{
    const std::string dir = freshDir("mf_lease");
    std::filesystem::create_directories(dir);
    const ClaimDir claims(dir, 300);

    // A fresh lease with garbage (or truncated) content still
    // excludes claimants — content is only consulted on release.
    spill(dir + "/u0.lease", "\xff\xfenot a pid");
    EXPECT_FALSE(claims.tryClaim("u0"));
    // release() must refuse a lease that does not carry our pid: a
    // takeover may own the name now.
    EXPECT_FALSE(claims.release("u0"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/u0.lease"));

    // Aged past the timeout it is taken over like any stale lease,
    // with the damaged bytes renamed aside as evidence.
    std::filesystem::last_write_time(
        dir + "/u0.lease",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(2));
    EXPECT_TRUE(claims.tryClaim("u0"));
    EXPECT_EQ(countContaining(dir, "u0.lease.stale."), 1u);

    // Our own (well-formed) lease releases cleanly.
    EXPECT_TRUE(claims.release("u0"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/u0.lease"));
}

TEST(MalformedDurabilityTest, CsvFinalLineTornAtEveryByteOffset)
{
    const ScenarioSpec spec = analyticSpec();

    SweepOptions ref_opt;
    ref_opt.quiet = true;
    ref_opt.outPath = pathIn("mf_csv_ref.csv");
    ASSERT_EQ(runScenarioSweep(spec, ref_opt), 0);
    const std::string ref = slurp(ref_opt.outPath);
    ASSERT_FALSE(ref.empty());
    ASSERT_EQ(ref.back(), '\n');

    // Last committed line (there are >= header + 2 rows).
    const std::size_t last_nl = ref.rfind('\n', ref.size() - 2);
    ASSERT_NE(last_nl, std::string::npos);
    const std::size_t row_start = last_nl + 1;

    // Tear the final row at every byte offset — from "row entirely
    // missing" through "all but the trailing newline present". Every
    // prefix must resume to the byte-identical CSV: complete lines
    // adopted, the torn tail silently dropped and recomputed.
    for (std::size_t cut = row_start; cut < ref.size(); ++cut) {
        const std::string torn_path = pathIn("mf_csv_torn.csv");
        spill(torn_path, ref.substr(0, cut));
        SweepOptions opt;
        opt.quiet = true;
        opt.resumePath = torn_path;
        ASSERT_EQ(runScenarioSweep(spec, opt), 0)
            << "torn at byte " << cut;
        EXPECT_EQ(slurp(torn_path), ref) << "torn at byte " << cut;
    }
}

TEST(MalformedDurabilityTest, GarbageResumeCsvQuarantinedAndRedone)
{
    const ScenarioSpec spec = analyticSpec();

    SweepOptions ref_opt;
    ref_opt.quiet = true;
    ref_opt.outPath = pathIn("mf_csv_ref2.csv");
    ASSERT_EQ(runScenarioSweep(spec, ref_opt), 0);
    const std::string ref = slurp(ref_opt.outPath);

    // A resume file whose *committed* part is unparsable (bad
    // header) cannot be adopted: it is moved aside, not deleted, and
    // the sweep starts fresh to the identical bytes.
    const std::string dir = freshDir("mf_csv_garbage");
    std::filesystem::create_directories(dir);
    const std::string resume = dir + "/resume.csv";
    spill(resume, "this,is,not\na sweep csv\x01\n");
    SweepOptions opt;
    opt.quiet = true;
    opt.resumePath = resume;
    ASSERT_EQ(runScenarioSweep(spec, opt), 0);
    EXPECT_EQ(slurp(resume), ref);
    EXPECT_EQ(countContaining(dir, "resume.csv.corrupt."), 1u);
}

TEST(MalformedDurabilityTest, DecisionLogMidRecordTails)
{
    const ScenarioSpec spec = tuneSpec();

    TuneOptions ref_opt;
    ref_opt.quiet = true;
    ref_opt.outPath = pathIn("mf_tune_ref.csv");
    ref_opt.logPath = pathIn("mf_tune_ref.log");
    TuneStats ref;
    ASSERT_EQ(runAdaptiveSearch(spec, ref_opt, &ref), 0);
    const std::string full_log = slurp(ref_opt.logPath);

    // Line-boundary prefixes are pinned elsewhere
    // (AdaptiveSearchTest.ResumeRegeneratesIdenticalLog); here the
    // tail ends mid-record — the exact shape a crash during an
    // unflushed append leaves. The torn record is dropped, the
    // complete prefix adopted, and the regenerated log and winner
    // are byte-identical.
    std::vector<std::size_t> line_starts{0};
    for (std::size_t i = 0; i + 1 < full_log.size(); ++i)
        if (full_log[i] == '\n')
            line_starts.push_back(i + 1);
    ASSERT_GT(line_starts.size(), 3u);

    for (const std::size_t start : line_starts) {
        // Three tears per record: 1 byte in, mid-record, all but
        // the newline.
        const std::size_t end = full_log.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        for (const std::size_t cut :
             {start + 1, (start + end) / 2, end}) {
            const std::string torn_path = pathIn("mf_tune_torn.log");
            spill(torn_path, full_log.substr(0, cut));
            TuneOptions opt;
            opt.quiet = true;
            opt.outPath = pathIn("mf_tune_out.csv");
            opt.logPath = pathIn("mf_tune_out.log");
            opt.resumePath = torn_path;
            TuneStats rs;
            ASSERT_EQ(runAdaptiveSearch(spec, opt, &rs), 0)
                << "torn at byte " << cut;
            EXPECT_EQ(slurp(opt.logPath), full_log)
                << "torn at byte " << cut;
            EXPECT_EQ(rs.winner.cell, ref.winner.cell);
        }
    }
}

TEST(MalformedDurabilityTest, GarbageDecisionLogQuarantined)
{
    const ScenarioSpec spec = tuneSpec();

    TuneOptions ref_opt;
    ref_opt.quiet = true;
    ref_opt.outPath = pathIn("mf_tune_ref2.csv");
    ref_opt.logPath = pathIn("mf_tune_ref2.log");
    ASSERT_EQ(runAdaptiveSearch(spec, ref_opt, nullptr), 0);
    const std::string full_log = slurp(ref_opt.logPath);

    // A log whose *committed* lines are garbage cannot be adopted:
    // quarantine aside, start fresh, finish identically.
    const std::string dir = freshDir("mf_log_garbage");
    std::filesystem::create_directories(dir);
    const std::string resume = dir + "/resume.log";
    spill(resume, "{\"schema\":\"rcache-tune-v1\"\nnot json at all\n");
    TuneOptions opt;
    opt.quiet = true;
    opt.outPath = pathIn("mf_tune_out2.csv");
    opt.logPath = pathIn("mf_tune_out2.log");
    opt.resumePath = resume;
    ASSERT_EQ(runAdaptiveSearch(spec, opt, nullptr), 0);
    EXPECT_EQ(slurp(opt.logPath), full_log);
    EXPECT_EQ(countContaining(dir, "resume.log.corrupt."), 1u);
}

} // namespace rcache
