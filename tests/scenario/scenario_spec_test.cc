/** @file Tests for the scenario file parser/printer. */

#include <gtest/gtest.h>

#include "scenario/param_space.hh"
#include "scenario/scenario_spec.hh"

namespace rcache
{

namespace
{

/** Parse @p text expecting success. */
ScenarioSpec
parseOk(const std::string &text)
{
    std::string err;
    auto spec = ScenarioSpec::parseText(text, "test.scn", &err);
    EXPECT_TRUE(spec) << err;
    return spec ? *spec : ScenarioSpec{};
}

/** Parse @p text expecting failure; returns the diagnostic. */
std::string
parseErr(const std::string &text)
{
    std::string err;
    auto spec = ScenarioSpec::parseText(text, "test.scn", &err);
    EXPECT_FALSE(spec) << "unexpected parse success";
    return err;
}

const char *kFullText = R"(# exercise every section
[scenario]
name = everything
insts = 123456

[system]
core = inorder
policy = slru
il1.size = 16384
dl1.assoc = 4
l2.size = 1048576
lat.l2 = 16
energy.clock = 12.5

[workloads]
apps = ammp,gcc,swim

[axes]
org = ways,sets,hybrid
assoc = 2,4
lat.mem = 60,120

[sampling]
interval = 100000
detail = 10000
warmup = 20000

[search]
strategy = dynamic
side = icache
intervals = 2048
miss-fractions = 0.01,0.05
size-fractions = 0,0.5
)";

} // namespace

TEST(ScenarioSpecTest, ParseReadsEverySection)
{
    const ScenarioSpec spec = parseOk(kFullText);
    EXPECT_EQ(spec.name, "everything");
    EXPECT_EQ(spec.insts, 123456u);
    EXPECT_EQ(spec.system.coreModel, CoreModel::InOrder);
    EXPECT_EQ(spec.system.il1.size, 16384u);
    EXPECT_EQ(spec.system.dl1.assoc, 4u);
    EXPECT_EQ(spec.system.l2.size, 1048576u);
    EXPECT_EQ(spec.system.lat.l2Latency, 16u);
    EXPECT_EQ(spec.system.policy, "slru");
    EXPECT_DOUBLE_EQ(spec.system.energy.clockPerCycle, 12.5);
    EXPECT_EQ(spec.apps,
              (std::vector<std::string>{"ammp", "gcc", "swim"}));
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].name, "org");
    EXPECT_EQ(spec.axes[2].values,
              (std::vector<std::string>{"60", "120"}));
    EXPECT_TRUE(spec.engine.sampled());
    EXPECT_EQ(spec.engine.sampling.intervalInsts, 100000u);
    EXPECT_EQ(spec.search.strategy, Strategy::Dynamic);
    EXPECT_EQ(spec.search.side, SweepSide::ICache);
    EXPECT_EQ(spec.search.dynGrid.intervals,
              (std::vector<std::uint64_t>{2048}));
    EXPECT_EQ(spec.search.dynGrid.missFractions,
              (std::vector<double>{0.01, 0.05}));
    EXPECT_EQ(spec.search.dynGrid.sizeFractions,
              (std::vector<double>{0, 0.5}));
}

TEST(ScenarioSpecTest, PrintParseRoundTrips)
{
    // The invariant the subsystem is built on:
    // parse(print(spec)) == spec, for defaults-only and for a spec
    // touching every section.
    for (const std::string text :
         {std::string("[scenario]\nname = minimal\n"),
          std::string(kFullText)}) {
        const ScenarioSpec spec = parseOk(text);
        const ScenarioSpec again = parseOk(spec.printToString());
        EXPECT_EQ(spec, again) << spec.printToString();
        // And printing is a fixed point: print(parse(print)) is
        // byte-identical.
        EXPECT_EQ(spec.printToString(), again.printToString());
    }
}

TEST(ScenarioSpecTest, EngineSectionSelectsTheEngine)
{
    // [engine] is the canonical surface for all three modes.
    EXPECT_EQ(parseOk("[engine]\nmode = full\n").engine,
              EngineSpec{});
    EXPECT_TRUE(
        parseOk("[engine]\nmode = analytic\n").engine.analytic());
    const ScenarioSpec s = parseOk(
        "[engine]\nmode = sampled\ninterval = 50000\ndetail = "
        "5000\nwarmup = 10000\n");
    EXPECT_EQ(s.engine, EngineSpec::makeSampled(50000, 5000, 10000));
    // mode = sampled without a shape takes the default period.
    EXPECT_EQ(parseOk("[engine]\nmode = sampled\n").engine.sampling,
              SamplingConfig{});

    // The deprecated [sampling] section maps onto the same field:
    // interval = 0 means the full engine, anything else sampled.
    EXPECT_EQ(parseOk("[sampling]\ninterval = 0\n").engine,
              EngineSpec{});
    EXPECT_EQ(parseOk("[sampling]\ninterval = 50000\n").engine,
              EngineSpec::makeSampled(
                  50000, SamplingConfig::defaultDetail(50000),
                  SamplingConfig::defaultWarmup(50000)));

    // Shim round-trip: a spec parsed from [sampling] prints as the
    // canonical [engine] form, and parse(print(spec)) == spec.
    for (const char *text :
         {"[sampling]\ninterval = 60000\ndetail = 6000\n",
          "[engine]\nmode = analytic\n",
          "[engine]\nmode = sampled\ninterval = 70000\n"}) {
        const ScenarioSpec spec = parseOk(text);
        const std::string printed = spec.printToString();
        EXPECT_EQ(printed.find("[sampling]"), std::string::npos)
            << printed;
        EXPECT_EQ(parseOk(printed), spec) << printed;
    }
    // The full-detail default prints no [engine] section at all.
    EXPECT_EQ(parseOk("[sampling]\ninterval = 0\n")
                  .printToString()
                  .find("[engine]"),
              std::string::npos);
}

TEST(ScenarioSpecTest, DiagnosticsCarryFileAndLine)
{
    EXPECT_EQ(parseErr("[scenario]\nbogus = 1\n").substr(0, 11),
              "test.scn:2:");
    EXPECT_NE(parseErr("[scenario]\nbogus = 1\n").find("bogus"),
              std::string::npos);
    EXPECT_EQ(parseErr("[nope]\n").substr(0, 11), "test.scn:1:");
    // Line numbers count comments and blanks.
    const std::string err =
        parseErr("# comment\n\n[system]\nil1.size = potato\n");
    EXPECT_EQ(err.substr(0, 11), "test.scn:4:");
    EXPECT_NE(err.find("potato"), std::string::npos);
}

TEST(ScenarioSpecTest, RejectsMalformedInput)
{
    EXPECT_NE(parseErr("key = 1\n").find("before any [section]"),
              std::string::npos);
    EXPECT_NE(parseErr("[scenario]\nno-equals-here\n")
                  .find("key = value"),
              std::string::npos);
    EXPECT_NE(parseErr("[scenario]\ninsts = 0\n").find("positive"),
              std::string::npos);
    EXPECT_NE(parseErr("[workloads]\napps = ammp,nosuchapp\n")
                  .find("unknown app"),
              std::string::npos);
    EXPECT_NE(parseErr("[axes]\norg = ways\norg = sets\n")
                  .find("duplicate axis"),
              std::string::npos);
    EXPECT_NE(parseErr("[axes]\nfrobnicate = 1,2\n")
                  .find("unknown axis"),
              std::string::npos);
    EXPECT_NE(parseErr("[axes]\norg = ways,bogus\n")
                  .find("ways|sets|hybrid"),
              std::string::npos);
    EXPECT_NE(parseErr("[sampling]\ndetail = 100\n")
                  .find("need a sampling interval"),
              std::string::npos);
    EXPECT_NE(parseErr("[sampling]\ninterval = 1000\ndetail = 2000\n")
                  .find("fit in the sample period"),
              std::string::npos);
    EXPECT_NE(parseErr("[search]\nmiss-fractions = 0.5,2\n")
                  .find("(0, 1)"),
              std::string::npos);
    EXPECT_NE(parseErr("[engine]\ninterval = 10\n")
                  .find("needs a 'mode"),
              std::string::npos);
    EXPECT_NE(parseErr("[engine]\nmode = analytic\ninterval = 10\n")
                  .find("mode = sampled"),
              std::string::npos);
    EXPECT_NE(parseErr("[engine]\nmode = full\n"
                       "[sampling]\ninterval = 10\n")
                  .find("not both"),
              std::string::npos);
    EXPECT_NE(parseErr("[system]\npolicy = plru\n")
                  .find("lru|random|fifo|slru|wtlfu"),
              std::string::npos);
}

TEST(ScenarioSpecTest, PolicyKeySelectsAndPrintsCanonically)
{
    // Default stays lru and is not printed; a non-default policy
    // round-trips through the canonical printer.
    const ScenarioSpec plain = parseOk("[scenario]\nname = p\n");
    EXPECT_EQ(plain.system.policy, "lru");
    EXPECT_EQ(plain.printToString().find("policy"),
              std::string::npos);

    const ScenarioSpec wt =
        parseOk("[system]\npolicy = wtlfu\n");
    EXPECT_EQ(wt.system.policy, "wtlfu");
    EXPECT_NE(wt.printToString().find("policy = wtlfu"),
              std::string::npos);
    EXPECT_EQ(parseOk(wt.printToString()), wt);
}

TEST(ScenarioSpecTest, CheckedInScenariosValidate)
{
#ifdef RCACHE_SCENARIO_SOURCE_DIR
    for (const char *name : {"fig4.scn", "fig4_tune.scn",
                             "fig9.scn", "inorder_lowpower.scn",
                             "l2_latency.scn"}) {
        const std::string path =
            std::string(RCACHE_SCENARIO_SOURCE_DIR) + "/" + name;
        std::string err;
        auto spec = ScenarioSpec::parseFile(path, &err);
        ASSERT_TRUE(spec) << err;
        EXPECT_TRUE(ParamSpace::build(*spec, &err)) << err;
        // Round-trip holds for the shipped files too.
        const ScenarioSpec again = parseOk(spec->printToString());
        EXPECT_EQ(*spec, again) << path;
    }
#else
    GTEST_SKIP() << "RCACHE_SCENARIO_SOURCE_DIR not defined";
#endif
}

TEST(ScenarioSpecTest, AdaptiveSearchKeysParseAndRoundTrip)
{
    const ScenarioSpec spec = parseOk(R"([search]
mode = adaptive
ladder = analytic,sampled,full
promote = 0.3,0.15
min-survivors = 2
rank-agree = 3
sample-interval = 25000
)");
    EXPECT_EQ(spec.search.mode, SearchMode::Adaptive);
    EXPECT_EQ(spec.search.adaptive.ladder,
              (std::vector<EngineMode>{EngineMode::Analytic,
                                       EngineMode::Sampled,
                                       EngineMode::Full}));
    EXPECT_EQ(spec.search.adaptive.promote,
              (std::vector<double>{0.3, 0.15}));
    EXPECT_EQ(spec.search.adaptive.minSurvivors, 2u);
    EXPECT_EQ(spec.search.adaptive.rankAgree, 3u);
    EXPECT_EQ(spec.search.adaptive.sampleInterval, 25000u);
    EXPECT_EQ(parseOk(spec.printToString()), spec);

    // Defaults: exhaustive mode, the documented ladder.
    const ScenarioSpec plain = parseOk("[scenario]\nname = p\n");
    EXPECT_EQ(plain.search.mode, SearchMode::Exhaustive);
    EXPECT_EQ(plain.search.adaptive, AdaptiveSpec{});

    // Malformed adaptive keys get one-line rejections.
    EXPECT_NE(parseErr("[search]\nmode = sideways\n").find("mode"),
              std::string::npos);
    EXPECT_NE(parseErr("[search]\nladder = analytic,analytic\n")
                  .find("repeats"),
              std::string::npos);
    EXPECT_NE(parseErr("[search]\npromote = 1.5\n").find("(0, 1]"),
              std::string::npos);
    EXPECT_NE(parseErr("[search]\nmin-survivors = 0\n")
                  .find("positive"),
              std::string::npos);
}

TEST(ScenarioSpecTest, SystemConfigKeyDistinguishesConfigs)
{
    SystemConfig a, b;
    EXPECT_EQ(systemConfigKey(a), systemConfigKey(b));
    b.lat.l2Latency = 20;
    EXPECT_NE(systemConfigKey(a), systemConfigKey(b));
    b = a;
    b.energy.clockPerCycle = 12;
    EXPECT_NE(systemConfigKey(a), systemConfigKey(b));
    b = a;
    b.dl1Org = Organization::SelectiveSets;
    EXPECT_NE(systemConfigKey(a), systemConfigKey(b));
}

} // namespace rcache
