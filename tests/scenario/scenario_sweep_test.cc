/** @file
 * Tests for the scenario sweep engine: shard-union and resume
 * identities, and consistency with the Experiment searches.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "scenario/scenario_sweep.hh"
#include "sim/experiment.hh"

namespace rcache
{

namespace
{

/** Small but non-trivial space: 2 apps x (org x strategy) = 8 cells,
 *  short runs. */
ScenarioSpec
smallSpec()
{
    std::string err;
    auto spec = ScenarioSpec::parseText(R"([scenario]
name = sweep-test
insts = 20000

[workloads]
apps = ammp,gcc

[axes]
org = ways,sets
strategy = static,dynamic

[search]
intervals = 1024
miss-fractions = 0.01
size-fractions = 0,1
)",
                                        "sweep-test.scn", &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

std::string
pathIn(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

SweepOptions
csvTo(const std::string &path)
{
    SweepOptions opt;
    opt.outPath = path;
    opt.quiet = true;
    return opt;
}

} // namespace

TEST(ScenarioSweepTest, ShardUnionEqualsFullSweep)
{
    const ScenarioSpec spec = smallSpec();

    ASSERT_EQ(runScenarioSweep(spec, csvTo(pathIn("full.csv"))), 0);
    const std::string full = slurp(pathIn("full.csv"));

    SweepOptions s0 = csvTo(pathIn("s0.csv"));
    s0.shard = ShardSpec{0, 2};
    SweepOptions s1 = csvTo(pathIn("s1.csv"));
    s1.shard = ShardSpec{1, 2};
    ASSERT_EQ(runScenarioSweep(spec, s0), 0);
    ASSERT_EQ(runScenarioSweep(spec, s1), 0);

    // Modulo partitioning: merging = round-robin interleave of the
    // shards' data rows (equivalently: sort the union on the leading
    // cell column).
    std::istringstream f0(slurp(pathIn("s0.csv"))),
        f1(slurp(pathIn("s1.csv")));
    std::string h0, h1, merged;
    std::getline(f0, h0);
    std::getline(f1, h1);
    EXPECT_EQ(h0, sweepCsvHeader());
    EXPECT_EQ(h1, sweepCsvHeader());
    merged = h0 + "\n";
    std::string r0, r1;
    while (std::getline(f0, r0)) {
        merged += r0 + "\n";
        if (std::getline(f1, r1))
            merged += r1 + "\n";
    }
    EXPECT_EQ(merged, full);
}

TEST(ScenarioSweepTest, ResumeAfterTruncatedCsvIsByteIdentical)
{
    const ScenarioSpec spec = smallSpec();
    ASSERT_EQ(runScenarioSweep(spec, csvTo(pathIn("ref.csv"))), 0);
    const std::string full = slurp(pathIn("ref.csv"));

    // Chop mid-row (simulating a kill during the final write): the
    // partial row must be recomputed, the complete prefix reused.
    const std::string truncated = full.substr(0, full.size() - 10);
    ASSERT_NE(truncated.back(), '\n');
    {
        std::ofstream out(pathIn("resume.csv"), std::ios::binary);
        out << truncated;
    }
    SweepOptions opt;
    opt.resumePath = pathIn("resume.csv");
    opt.quiet = true;
    ASSERT_EQ(runScenarioSweep(spec, opt), 0);
    EXPECT_EQ(slurp(pathIn("resume.csv")), full);

    // Resuming a complete file is a no-op rewrite.
    ASSERT_EQ(runScenarioSweep(spec, opt), 0);
    EXPECT_EQ(slurp(pathIn("resume.csv")), full);
}

TEST(ScenarioSweepTest, ResumeRejectsMismatchedEnumeration)
{
    const ScenarioSpec spec = smallSpec();
    ASSERT_EQ(runScenarioSweep(spec, csvTo(pathIn("mis.csv"))), 0);

    // The same file under a different shard does not line up.
    SweepOptions opt;
    opt.resumePath = pathIn("mis.csv");
    opt.shard = ShardSpec{1, 2};
    opt.quiet = true;
    EXPECT_EQ(runScenarioSweep(spec, opt), 2);

    // Nor does a scenario whose axes enumerate different
    // coordinates: every kept row's design-point coordinates are
    // verified, not just its cell index.
    ScenarioSpec reordered = spec;
    reordered.axes[0].values = {"sets", "ways"};
    SweepOptions plain;
    plain.resumePath = pathIn("mis.csv");
    plain.quiet = true;
    EXPECT_EQ(runScenarioSweep(reordered, plain), 2);
}

TEST(ScenarioSweepTest, AnyRowBoundaryPrefixResumesIdentically)
{
    // The crash-safety contract behind chunked streaming: a run
    // interrupted at any row boundary leaves a file --resume can
    // rebuild byte-identically.
    const ScenarioSpec spec = smallSpec();
    ASSERT_EQ(runScenarioSweep(spec, csvTo(pathIn("chunk.csv"))), 0);
    const std::string full = slurp(pathIn("chunk.csv"));

    // Cut after each row boundary in turn and resume; every prefix
    // must rebuild the identical file.
    std::size_t nl = full.find('\n');
    while ((nl = full.find('\n', nl + 1)) != std::string::npos) {
        {
            std::ofstream out(pathIn("chunk.csv"),
                              std::ios::binary | std::ios::trunc);
            out << full.substr(0, nl + 1);
        }
        SweepOptions opt;
        opt.resumePath = pathIn("chunk.csv");
        opt.quiet = true;
        ASSERT_EQ(runScenarioSweep(spec, opt), 0);
        ASSERT_EQ(slurp(pathIn("chunk.csv")), full);
    }
}

TEST(ScenarioSweepTest, RecordsMatchExperimentSearches)
{
    // One axis-free cell must agree exactly with the Experiment API
    // it wraps.
    std::string err;
    auto spec = ScenarioSpec::parseText(R"([scenario]
name = consistency
insts = 20000

[workloads]
apps = ammp

[search]
org = sets
strategy = static
side = dcache
)",
                                        "consistency.scn", &err);
    ASSERT_TRUE(spec) << err;
    ASSERT_EQ(runScenarioSweep(*spec, csvTo(pathIn("one.csv"))), 0);

    std::istringstream csv(slurp(pathIn("one.csv")));
    auto records = readSweepCsv(csv, &err);
    ASSERT_TRUE(records) << err;
    ASSERT_EQ(records->size(), 1u);
    const SweepRecord &r = records->front();

    Experiment exp(SystemConfig::base(), 20000);
    const SearchOutcome out = exp.staticSearch(
        profileByName("ammp"), CacheSide::DCache,
        Organization::SelectiveSets);
    EXPECT_EQ(r.cell, 0u);
    EXPECT_EQ(r.app, "ammp");
    EXPECT_EQ(r.axes, "");
    EXPECT_EQ(r.bestLevel, out.bestLevel);
    EXPECT_DOUBLE_EQ(r.edReductionPct, out.edReductionPct());
    EXPECT_DOUBLE_EQ(r.baselineEdp, out.baseline.edp());
    EXPECT_EQ(r.bestCycles, out.best.cycles);
}

TEST(ScenarioSweepTest, BothSideCellsRunTheCombinedPoint)
{
    std::string err;
    auto spec = ScenarioSpec::parseText(R"([scenario]
name = both
insts = 20000

[workloads]
apps = m88ksim

[search]
org = sets
strategy = static
side = both
)",
                                        "both.scn", &err);
    ASSERT_TRUE(spec) << err;
    ASSERT_EQ(runScenarioSweep(*spec, csvTo(pathIn("both.csv"))), 0);
    std::istringstream csv(slurp(pathIn("both.csv")));
    auto records = readSweepCsv(csv, &err);
    ASSERT_TRUE(records) << err;
    ASSERT_EQ(records->size(), 1u);
    const SweepRecord &r = records->front();
    EXPECT_EQ(r.side, "both");
    // Both caches shrank (m88ksim has slack on both sides).
    EXPECT_LT(r.avgIl1Bytes + r.avgDl1Bytes, 2 * 32 * 1024.0);
    EXPECT_GT(r.sizeReductionPct, 0.0);
}

} // namespace rcache
