/** @file Tests for ParamSpace design-point enumeration. */

#include <gtest/gtest.h>

#include "scenario/param_space.hh"

namespace rcache
{

namespace
{

ScenarioSpec
specWithAxes(std::vector<Axis> axes)
{
    ScenarioSpec spec;
    spec.axes = std::move(axes);
    return spec;
}

ParamSpace
buildOk(const ScenarioSpec &spec)
{
    std::string err;
    auto space = ParamSpace::build(spec, &err);
    EXPECT_TRUE(space) << err;
    return space ? *space : ParamSpace::build(ScenarioSpec{}, &err)
                                .value();
}

} // namespace

TEST(ParamSpaceTest, AxisFreeSpaceHasOneBasePoint)
{
    ScenarioSpec spec;
    spec.search.org = Organization::Hybrid;
    const ParamSpace space = buildOk(spec);
    EXPECT_EQ(space.numPoints(), 1u);
    const DesignPoint p = space.point(0);
    EXPECT_EQ(p.org, Organization::Hybrid);
    EXPECT_EQ(p.strategy, Strategy::Static);
    EXPECT_EQ(p.side, SweepSide::DCache);
    EXPECT_TRUE(p.axes.empty());
    EXPECT_EQ(p.cfg, spec.system);
}

TEST(ParamSpaceTest, RowMajorEnumerationFirstAxisOutermost)
{
    const ParamSpace space = buildOk(specWithAxes(
        {Axis{"org", {"ways", "sets"}},
         Axis{"strategy", {"static", "dynamic"}}}));
    ASSERT_EQ(space.numPoints(), 4u);
    EXPECT_EQ(space.point(0).axes, "org=ways;strategy=static");
    EXPECT_EQ(space.point(1).axes, "org=ways;strategy=dynamic");
    EXPECT_EQ(space.point(2).axes, "org=sets;strategy=static");
    EXPECT_EQ(space.point(3).axes, "org=sets;strategy=dynamic");
    EXPECT_EQ(space.point(3).org, Organization::SelectiveSets);
    EXPECT_EQ(space.point(3).strategy, Strategy::Dynamic);
}

TEST(ParamSpaceTest, AxesPerturbTheRightKnobs)
{
    const ParamSpace space = buildOk(specWithAxes(
        {Axis{"assoc", {"2", "8"}}, Axis{"lat.l2", {"12", "24"}},
         Axis{"energy.clock", {"30", "15"}},
         Axis{"core", {"ooo", "inorder"}},
         Axis{"sample.interval", {"0", "100000"}}}));
    ASSERT_EQ(space.numPoints(), 32u);

    const DesignPoint base = space.point(0);
    EXPECT_EQ(base.cfg.il1.assoc, 2u);
    EXPECT_EQ(base.cfg.lat.l2Latency, 12u);
    EXPECT_EQ(base.engine.mode, EngineMode::Full);

    // Last point: every axis at its second value.
    const DesignPoint far = space.point(31);
    EXPECT_EQ(far.cfg.il1.assoc, 8u);
    EXPECT_EQ(far.cfg.dl1.assoc, 8u);
    EXPECT_EQ(far.cfg.lat.l2Latency, 24u);
    EXPECT_DOUBLE_EQ(far.cfg.energy.clockPerCycle, 15.0);
    EXPECT_EQ(far.cfg.coreModel, CoreModel::InOrder);
    ASSERT_TRUE(far.engine.sampled());
    EXPECT_EQ(far.engine.sampling.intervalInsts, 100000u);
    EXPECT_EQ(far.engine.sampling.detailedInsts,
              SamplingConfig::defaultDetail(100000));
}

TEST(ParamSpaceTest, RejectsInvalidCombinations)
{
    std::string err;

    // both + dynamic is not a meaningful cell.
    ScenarioSpec both = specWithAxes(
        {Axis{"strategy", {"static", "dynamic"}}});
    both.search.side = SweepSide::Both;
    EXPECT_FALSE(ParamSpace::build(both, &err));
    EXPECT_NE(err.find("static"), std::string::npos);

    // A geometry-breaking axis value is caught with its coordinates.
    ScenarioSpec geom =
        specWithAxes({Axis{"il1.size", {"32768", "12345"}}});
    EXPECT_FALSE(ParamSpace::build(geom, &err));
    EXPECT_NE(err.find("il1.size=12345"), std::string::npos);

    // Unknown axis name / bad value.
    EXPECT_FALSE(validateAxis(Axis{"nope", {"1"}}, &err));
    EXPECT_NE(err.find("unknown axis"), std::string::npos);
    EXPECT_FALSE(validateAxis(Axis{"assoc", {"potato"}}, &err));
}

TEST(ParamSpaceTest, PolicyAxisPerturbsTheSystemConfig)
{
    const ParamSpace space = buildOk(specWithAxes(
        {Axis{"policy", {"lru", "fifo", "wtlfu"}}}));
    ASSERT_EQ(space.numPoints(), 3u);
    EXPECT_EQ(space.point(0).cfg.policy, "lru");
    EXPECT_EQ(space.point(1).cfg.policy, "fifo");
    EXPECT_EQ(space.point(2).cfg.policy, "wtlfu");
    EXPECT_EQ(space.point(1).axes, "policy=fifo");

    std::string err;
    EXPECT_FALSE(
        validateAxis(Axis{"policy", {"lru", "plru"}}, &err));
    EXPECT_NE(err.find("lru|random|fifo|slru|wtlfu"),
              std::string::npos);
}

TEST(ParamSpaceTest, AnalyticEngineRejectsIncompatibleSpaces)
{
    std::string err;

    // Dynamic strategies (even only axis-reachable) cannot be priced.
    ScenarioSpec dyn =
        specWithAxes({Axis{"strategy", {"static", "dynamic"}}});
    dyn.engine = EngineSpec::makeAnalytic();
    EXPECT_FALSE(ParamSpace::build(dyn, &err));
    EXPECT_NE(err.find("analytic"), std::string::npos);

    // Multi-core systems are out of the engine's validity envelope.
    ScenarioSpec multi = specWithAxes({});
    multi.engine = EngineSpec::makeAnalytic();
    multi.system.cores = 2;
    EXPECT_FALSE(ParamSpace::build(multi, &err));
    EXPECT_NE(err.find("single-core"), std::string::npos);

    // A sample.interval axis would silently switch engines per cell.
    ScenarioSpec sax =
        specWithAxes({Axis{"sample.interval", {"0", "100000"}}});
    sax.engine = EngineSpec::makeAnalytic();
    EXPECT_FALSE(ParamSpace::build(sax, &err));
    EXPECT_NE(err.find("sample.interval"), std::string::npos);

    // Non-LRU replacement is outside the stack-distance model's
    // validity, whether set system-wide or merely axis-reachable.
    ScenarioSpec pol = specWithAxes({});
    pol.engine = EngineSpec::makeAnalytic();
    pol.system.policy = "fifo";
    EXPECT_FALSE(ParamSpace::build(pol, &err));
    EXPECT_NE(err.find("true-LRU"), std::string::npos);

    ScenarioSpec pax =
        specWithAxes({Axis{"policy", {"lru", "wtlfu"}}});
    pax.engine = EngineSpec::makeAnalytic();
    EXPECT_FALSE(ParamSpace::build(pax, &err));
    EXPECT_NE(err.find("policy"), std::string::npos);

    // An all-lru policy axis is fine.
    ScenarioSpec lru_only =
        specWithAxes({Axis{"policy", {"lru"}}});
    lru_only.engine = EngineSpec::makeAnalytic();
    EXPECT_TRUE(ParamSpace::build(lru_only, &err)) << err;

    // The static single-core shape the engine exists for builds, and
    // every enumerated point carries the analytic engine.
    ScenarioSpec ok = specWithAxes({Axis{"org", {"ways", "sets"}}});
    ok.engine = EngineSpec::makeAnalytic();
    const ParamSpace space = buildOk(ok);
    EXPECT_TRUE(space.point(1).engine.analytic());
}

TEST(ParamSpaceTest, CoordsInvertEnumeration)
{
    const ParamSpace space = buildOk(specWithAxes(
        {Axis{"assoc", {"2", "4", "8"}},
         Axis{"org", {"ways", "sets"}}}));
    ASSERT_EQ(space.numPoints(), 6u);
    for (std::size_t i = 0; i < space.numPoints(); ++i) {
        const auto c = space.coords(i);
        ASSERT_EQ(c.size(), 2u);
        EXPECT_EQ(c[0] * 2 + c[1], i);
    }
}

} // namespace rcache
