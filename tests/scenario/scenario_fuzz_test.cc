/** @file
 * Property tests for the scenario layer.
 *
 * 1. Round-trip: for a few hundred randomized-but-valid
 *    ScenarioSpecs (random [system]/[cores] overrides, apps and
 *    mixes, axes drawn from the registry, engine selections, search
 *    grids), parse(print(spec)) == spec bit-for-bit — the canonical
 *    serialization loses nothing, including shortest-round-trip
 *    doubles.
 *
 * 2. Malformed corpus: a catalogue of broken inputs must each fail
 *    with exactly one `file:line: message` diagnostic and no crash.
 *
 * The generator uses the project Rng with a fixed seed, so a failure
 * reproduces deterministically; the failing spec's canonical text is
 * printed by the assertion message.
 */

#include <gtest/gtest.h>

#include <regex>

#include "scenario/param_space.hh"
#include "scenario/scenario_spec.hh"
#include "util/random.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

/** One randomized valid spec. */
ScenarioSpec
randomSpec(Rng &rng, int idx)
{
    ScenarioSpec spec;
    spec.name = "fuzz-" + std::to_string(idx);
    spec.insts = 1 + rng.nextBelow(1000000000);

    // ---- [system]: flip a few integer keys and energy constants.
    const auto &keys = systemKeysU64();
    for (const auto &k : keys) {
        if (rng.chance(0.15))
            k.set(spec.system, 1 + rng.nextBelow(1000000));
    }
    if (rng.chance(0.3))
        spec.system.coreModel = rng.chance(0.5)
                                    ? CoreModel::InOrder
                                    : CoreModel::OutOfOrder;
    for (const auto &k : energyKeys()) {
        if (rng.chance(0.1))
            spec.system.energy.*(k.field) = rng.nextDouble() * 10;
    }

    // ---- [cores]
    if (rng.chance(0.4)) {
        spec.system.cores =
            1 + static_cast<unsigned>(rng.nextBelow(64));
        if (rng.chance(0.5))
            spec.system.quantumInsts = 1 + rng.nextBelow(1000000);
        if (rng.chance(0.5)) {
            const std::size_t n = 1 + rng.nextBelow(3);
            for (std::size_t i = 0; i < n; ++i)
                spec.system.coreModels.push_back(
                    rng.chance(0.5) ? CoreModel::OutOfOrder
                                    : CoreModel::InOrder);
        }
    }

    // ---- [workloads]: all, a subset, or mixes.
    const std::vector<std::string> names = suiteNames();
    auto randomApp = [&]() { return names[rng.nextBelow(names.size())]; };
    auto randomMix = [&]() {
        std::string mix = randomApp();
        const std::size_t extra = rng.nextBelow(3);
        for (std::size_t i = 0; i < extra; ++i)
            mix += "+" + randomApp();
        return mix;
    };
    if (rng.chance(0.6)) {
        const std::size_t n = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < n; ++i) {
            const std::string app =
                rng.chance(0.4) ? randomMix() : randomApp();
            // The parser accepts duplicates; keep them out so the
            // spec stays meaningful.
            if (std::find(spec.apps.begin(), spec.apps.end(), app) ==
                spec.apps.end())
                spec.apps.push_back(app);
        }
    }

    // ---- [axes]: a subset of the registry, valid values each.
    auto addAxis = [&](const char *name,
                       std::vector<std::string> values) {
        if (values.empty())
            return;
        spec.axes.push_back(Axis{name, std::move(values)});
    };
    auto someOf = [&](std::initializer_list<const char *> pool) {
        std::vector<std::string> out;
        for (const char *v : pool)
            if (rng.chance(0.5))
                out.push_back(v);
        return out;
    };
    if (rng.chance(0.5))
        addAxis("org", someOf({"ways", "sets", "hybrid"}));
    if (rng.chance(0.4))
        addAxis("strategy", someOf({"static", "dynamic"}));
    if (rng.chance(0.4))
        addAxis("side", someOf({"icache", "dcache", "both"}));
    if (rng.chance(0.3))
        addAxis("core", someOf({"ooo", "inorder"}));
    if (rng.chance(0.3)) {
        std::vector<std::string> v;
        const std::size_t n = 1 + rng.nextBelow(3);
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(std::to_string(1 + rng.nextBelow(64)));
        addAxis("assoc", std::move(v));
    }
    if (rng.chance(0.25)) {
        std::vector<std::string> v;
        const std::size_t n = 1 + rng.nextBelow(3);
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(std::to_string(1 + rng.nextBelow(64)));
        addAxis("cores", std::move(v));
    }
    if (rng.chance(0.2))
        addAxis("quantum",
                {std::to_string(1 + rng.nextBelow(100000))});
    if (rng.chance(0.25)) {
        std::vector<std::string> v;
        const std::size_t n = 1 + rng.nextBelow(2);
        for (std::size_t i = 0; i < n; ++i) {
            const std::string mix = randomMix();
            if (std::find(v.begin(), v.end(), mix) == v.end())
                v.push_back(mix);
        }
        addAxis("mix", std::move(v));
    }
    if (rng.chance(0.2))
        addAxis("sample.interval",
                {std::to_string(rng.nextBelow(500000))});
    if (rng.chance(0.2))
        addAxis("lat.l2",
                {std::to_string(1 + rng.nextBelow(64))});

    // ---- [telemetry]: output paths and the sampling grid. Paths
    // must survive the strict value parser ('#' starts a comment,
    // surrounding whitespace is trimmed), so keep them plain.
    if (rng.chance(0.3))
        spec.telemetry.timeline =
            "out/tl-" + std::to_string(rng.nextBelow(100)) + ".jsonl";
    if (rng.chance(0.3))
        spec.telemetry.events =
            "out/ev-" + std::to_string(rng.nextBelow(100)) + ".jsonl";
    if (rng.chance(0.3))
        spec.telemetry.traceEvents =
            "out/trace-" + std::to_string(rng.nextBelow(100)) + ".json";
    if (rng.chance(0.3))
        spec.telemetry.interval = 1 + rng.nextBelow(1000000);

    // ---- [engine]: full (the default), a valid sampled shape, or
    // analytic (build() may reject analytic spaces — the round-trip
    // only needs parse/print, and the build fuzz tolerates both).
    if (rng.chance(0.5)) {
        if (rng.chance(0.3)) {
            spec.engine = EngineSpec::makeAnalytic();
        } else {
            const std::uint64_t interval = 1 + rng.nextBelow(1000000);
            const std::uint64_t detail = 1 + rng.nextBelow(interval);
            const std::uint64_t warmup =
                rng.nextBelow(interval - detail + 1);
            EXPECT_EQ(
                SamplingConfig::shapeError(interval, detail, warmup),
                nullptr);
            spec.engine =
                EngineSpec::makeSampled(interval, detail, warmup);
        }
    }

    // ---- [search]
    const Organization orgs[] = {Organization::SelectiveWays,
                                 Organization::SelectiveSets,
                                 Organization::Hybrid};
    spec.search.org = orgs[rng.nextBelow(3)];
    spec.search.strategy = rng.chance(0.5) ? Strategy::Static
                                           : Strategy::Dynamic;
    const SweepSide sides[] = {SweepSide::ICache, SweepSide::DCache,
                               SweepSide::Both};
    spec.search.side = sides[rng.nextBelow(3)];
    if (rng.chance(0.3)) {
        spec.search.dynGrid.intervals.clear();
        const std::size_t n = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < n; ++i)
            spec.search.dynGrid.intervals.push_back(
                1 + rng.nextBelow(100000));
    }
    if (rng.chance(0.3)) {
        spec.search.dynGrid.missFractions.clear();
        const std::size_t n = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < n; ++i)
            spec.search.dynGrid.missFractions.push_back(
                static_cast<double>(1 + rng.nextBelow(999)) / 1000.0);
    }
    if (rng.chance(0.3)) {
        spec.search.dynGrid.sizeFractions.clear();
        const std::size_t n = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < n; ++i)
            spec.search.dynGrid.sizeFractions.push_back(
                static_cast<double>(rng.nextBelow(1001)) / 1000.0);
    }

    // ---- [search] adaptive-tune knobs: mode and the successive-
    // halving configuration (printed only when non-default, so they
    // exercise both the emit and the omit paths).
    if (rng.chance(0.4))
        spec.search.mode = SearchMode::Adaptive;
    if (rng.chance(0.4)) {
        // A random non-repeating ladder: shuffle the three rungs and
        // keep a non-empty prefix (the parser rejects repeats).
        std::vector<EngineMode> rungs{EngineMode::Analytic,
                                      EngineMode::Sampled,
                                      EngineMode::Full};
        for (std::size_t i = rungs.size(); i > 1; --i)
            std::swap(rungs[i - 1], rungs[rng.nextBelow(i)]);
        rungs.resize(1 + rng.nextBelow(rungs.size()));
        spec.search.adaptive.ladder = std::move(rungs);
    }
    if (rng.chance(0.4)) {
        spec.search.adaptive.promote.clear();
        const std::size_t n = 1 + rng.nextBelow(3);
        for (std::size_t i = 0; i < n; ++i)
            spec.search.adaptive.promote.push_back(
                static_cast<double>(1 + rng.nextBelow(1000)) /
                1000.0);
    }
    if (rng.chance(0.3))
        spec.search.adaptive.minSurvivors = 1 + rng.nextBelow(16);
    if (rng.chance(0.3))
        spec.search.adaptive.rankAgree = rng.nextBelow(8);
    if (rng.chance(0.3))
        spec.search.adaptive.sampleInterval =
            1000 + rng.nextBelow(1000000);
    return spec;
}

} // namespace

TEST(ScenarioFuzzTest, PrintParseRoundTripsRandomSpecs)
{
    Rng rng(0xf0220ed);
    for (int i = 0; i < 300; ++i) {
        const ScenarioSpec spec = randomSpec(rng, i);
        const std::string text = spec.printToString();

        std::string err;
        const auto back =
            ScenarioSpec::parseText(text, "fuzz.scn", &err);
        ASSERT_TRUE(back) << "iteration " << i << ": " << err
                          << "\n--- canonical text ---\n"
                          << text;
        EXPECT_TRUE(*back == spec)
            << "iteration " << i << " round-trip mismatch"
            << "\n--- canonical text ---\n"
            << text << "\n--- reprint ---\n"
            << back->printToString();

        // The canonical form is a fixed point of print o parse.
        EXPECT_EQ(back->printToString(), text) << "iteration " << i;
    }
}

TEST(ScenarioFuzzTest, MalformedInputsGetOneLineDiagnostics)
{
    const char *corpus[] = {
        "[bogus]\n",
        "name = early\n",
        "[scenario]\nname =\n",
        "[scenario]\ninsts = abc\n",
        "[scenario]\ninsts = 0\n",
        "[scenario]\nnope = 1\n",
        "[scenario\nname = x\n",
        "just some words\n",
        "= value\n",
        "[system]\nil1.size = 0\n",
        "[system]\nil1.size = -4\n",
        "[system]\nunknown.key = 1\n",
        "[system]\ncore = fast\n",
        "[system]\nenergy.clock = -1\n",
        "[system]\nenergy.nosuch = 1\n",
        "[cores]\ncount = 0\n",
        "[cores]\ncount = 65\n",
        "[cores]\ncount = two\n",
        "[cores]\nquantum = 0\n",
        "[cores]\nmodels = fast+slow\n",
        "[cores]\nmodels = ooo+\n",
        "[cores]\nwidth = 4\n",
        "[workloads]\napps = nosuchapp\n",
        "[workloads]\napps = gcc+nope\n",
        "[workloads]\napps = gcc+\n",
        "[workloads]\napps =\n",
        "[workloads]\nmixes = gcc\n",
        "[axes]\norg = none\n",
        "[axes]\norg = ways\norg = sets\n",
        "[axes]\ncores = 0\n",
        "[axes]\ncores = 99\n",
        "[axes]\nquantum = 0\n",
        "[axes]\nmix = gcc+bogus\n",
        "[axes]\nmix = +gcc\n",
        "[axes]\nnosuch = 1\n",
        "[axes]\nassoc = 0\n",
        "[axes]\nside = left\n",
        "[telemetry]\ninterval = 0\n",
        "[telemetry]\ninterval = soon\n",
        "[telemetry]\ntimeline =\n",
        "[telemetry]\nnosuch = 1\n",
        "[sampling]\ninterval = x\n",
        "[sampling]\ndetail = 5\n",
        "[sampling]\ninterval = 10\ndetail = 20\n",
        "[sampling]\nperiod = 10\n",
        "[engine]\ninterval = 10\n",
        "[engine]\nmode = quick\n",
        "[engine]\nmode = full\ninterval = 10\n",
        "[engine]\nmode = analytic\ndetail = 5\n",
        "[engine]\nmode = sampled\ninterval = 0\n",
        "[engine]\nmode = sampled\ninterval = 10\ndetail = 20\n",
        "[engine]\nmode = full\nmode = sampled\n",
        "[engine]\nnosuch = 1\n",
        "[search]\nmode = quickest\n",
        "[search]\nladder =\n",
        "[search]\nladder = analytic,analytic\n",
        "[search]\nladder = analytic,quick\n",
        "[search]\npromote = 0\n",
        "[search]\npromote = 1.5\n",
        "[search]\npromote = half\n",
        "[search]\nmin-survivors = 0\n",
        "[search]\nrank-agree = soon\n",
        "[search]\nsample-interval = fast\n",
        "[engine]\nmode = full\n[sampling]\ninterval = 10\n",
        "[sampling]\ninterval = 10\n[engine]\nmode = full\n",
        "[search]\nstrategy = none\n",
        "[search]\norg = none\n",
        "[search]\nside = middle\n",
        "[search]\nmiss-fractions = 1.5\n",
        "[search]\nsize-fractions = 2\n",
        "[search]\nintervals = 0\n",
        "[search]\nnosuch = 1\n",
    };

    const std::regex diag("^fuzz\\.scn:[0-9]+: [^\\n]+$");
    for (const char *text : corpus) {
        std::string err;
        const auto spec =
            ScenarioSpec::parseText(text, "fuzz.scn", &err);
        EXPECT_FALSE(spec) << "accepted malformed input:\n" << text;
        EXPECT_TRUE(std::regex_match(err, diag))
            << "diagnostic for:\n"
            << text << "\nwas: '" << err << "'";
    }
}

TEST(ScenarioFuzzTest, BuildRejectsUnderprovisionedMixes)
{
    // A K-program mix with fewer than K cores anywhere in the space
    // would silently drop programs; build() must refuse.
    auto build = [](const std::string &text) {
        std::string err;
        auto spec = ScenarioSpec::parseText(text, "b.scn", &err);
        EXPECT_TRUE(spec) << err;
        return std::make_pair(ParamSpace::build(*spec, &err), err);
    };

    auto [no_cores, err1] =
        build("[workloads]\napps = gcc+m88ksim\n");
    EXPECT_FALSE(no_cores);
    EXPECT_NE(err1.find("cores"), std::string::npos) << err1;

    auto [low_axis, err2] = build(
        "[cores]\ncount = 4\n[workloads]\napps = gcc+m88ksim\n"
        "[axes]\ncores = 1,4\n");
    EXPECT_FALSE(low_axis);

    auto [ok, err3] = build(
        "[cores]\ncount = 2\n[workloads]\napps = gcc+m88ksim\n");
    EXPECT_TRUE(ok) << err3;

    // Wide-enough mixes via a mix axis pass; a too-wide one fails.
    auto [mix_ok, err4] = build(
        "[cores]\ncount = 2\n[workloads]\napps = ammp\n"
        "[axes]\nmix = gcc+swim,ammp+vpr\n");
    EXPECT_TRUE(mix_ok) << err4;
    auto [mix_wide, err5] = build(
        "[cores]\ncount = 2\n[workloads]\napps = ammp\n"
        "[axes]\nmix = gcc+swim+vpr\n");
    EXPECT_FALSE(mix_wide);

    // A quantum axis in an always-sampled scenario is dead config.
    auto [dead_quantum, err6] = build(
        "[cores]\ncount = 2\n[axes]\nquantum = 10000,20000\n"
        "[sampling]\ninterval = 50000\n");
    EXPECT_FALSE(dead_quantum);
    EXPECT_NE(err6.find("quantum"), std::string::npos) << err6;
    // ...unless a sample.interval axis makes full detail reachable.
    auto [live_quantum, err7] = build(
        "[cores]\ncount = 2\n"
        "[axes]\nquantum = 10000,20000\nsample.interval = 0,50000\n");
    EXPECT_TRUE(live_quantum) << err7;
}

TEST(ScenarioFuzzTest, RandomSpecsBuildOrDiagnoseCleanly)
{
    // ParamSpace::build may legitimately reject a random spec (e.g.
    // side=both with strategy=dynamic reachable, a mix axis against
    // several apps, or an invalid geometry override) — but it must
    // either build or produce a one-line diagnostic, never crash.
    Rng rng(0xdecaf);
    int built = 0;
    for (int i = 0; i < 200; ++i) {
        const ScenarioSpec spec = randomSpec(rng, i);
        std::string err;
        const auto space = ParamSpace::build(spec, &err);
        if (space) {
            ++built;
            EXPECT_GE(space->numPoints(), 1u);
            // Materializing the first and last point exercises every
            // axis applier.
            (void)space->point(0);
            (void)space->point(space->numPoints() - 1);
        } else {
            EXPECT_FALSE(err.empty());
            EXPECT_EQ(err.find('\n'), std::string::npos) << err;
        }
    }
    // The generator keeps values in-registry, so a healthy fraction
    // must build.
    EXPECT_GT(built, 0);
}

} // namespace rcache
