/** @file Unit tests for TimedPool, MshrFile, WritebackBuffer. */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace rcache
{

TEST(TimedPoolTest, FreeSlotAcquiresImmediately)
{
    TimedPool p(2);
    EXPECT_EQ(p.acquire(10, 5), 10u);
    EXPECT_EQ(p.acquire(10, 5), 10u);
}

TEST(TimedPoolTest, FullPoolDelaysToEarliestRelease)
{
    TimedPool p(2);
    p.acquire(0, 10); // busy until 10
    p.acquire(0, 20); // busy until 20
    EXPECT_EQ(p.acquire(5, 1), 10u);
}

TEST(TimedPoolTest, ExpiredSlotsAreReclaimed)
{
    TimedPool p(1);
    p.acquire(0, 5);
    EXPECT_EQ(p.acquire(6, 5), 6u); // slot free at 5 < 6
}

TEST(TimedPoolTest, BusyCount)
{
    TimedPool p(4);
    p.acquire(0, 10);
    p.acquire(0, 20);
    EXPECT_EQ(p.busyAt(5), 2u);
    EXPECT_EQ(p.busyAt(15), 1u);
    EXPECT_EQ(p.busyAt(25), 0u);
    EXPECT_FALSE(p.fullAt(5));
}

TEST(TimedPoolTest, ResetClears)
{
    TimedPool p(1);
    p.acquire(0, 100);
    p.reset();
    EXPECT_EQ(p.acquire(0, 5), 0u);
}

TEST(MshrTest, PrimaryMissFillsAfterLatency)
{
    MshrFile m(4);
    EXPECT_EQ(m.miss(0x10, 100, 12), 112u);
}

TEST(MshrTest, SecondaryMissMergesWithPrimary)
{
    MshrFile m(4);
    auto fill = m.miss(0x10, 100, 12);
    EXPECT_EQ(m.miss(0x10, 105, 12), fill);
    EXPECT_EQ(m.secondaryMisses(), 1u);
}

TEST(MshrTest, DifferentBlocksUseSeparateEntries)
{
    MshrFile m(4);
    m.miss(0x10, 100, 12);
    EXPECT_EQ(m.miss(0x20, 100, 12), 112u);
    EXPECT_EQ(m.secondaryMisses(), 0u);
}

TEST(MshrTest, FullFileSerializesMisses)
{
    MshrFile m(1);
    EXPECT_EQ(m.miss(0x10, 0, 10), 10u);
    // Second miss to a different block waits for the free slot.
    EXPECT_EQ(m.miss(0x20, 0, 10), 20u);
}

TEST(MshrTest, InFlightQuery)
{
    MshrFile m(2);
    m.miss(0x10, 0, 10);
    EXPECT_TRUE(m.inFlight(0x10, 5));
    EXPECT_FALSE(m.inFlight(0x10, 15));
    EXPECT_FALSE(m.inFlight(0x99, 5));
}

TEST(MshrTest, CompletedEntryNotMerged)
{
    MshrFile m(2);
    m.miss(0x10, 0, 10);
    // Re-miss after the fill completed is a new primary miss.
    EXPECT_EQ(m.miss(0x10, 20, 10), 30u);
    EXPECT_EQ(m.secondaryMisses(), 0u);
}

TEST(WritebackBufferTest, NoStallWhenFree)
{
    WritebackBuffer wb(2, 12);
    EXPECT_EQ(wb.insert(100), 100u);
    EXPECT_EQ(wb.stallCycles(), 0u);
}

TEST(WritebackBufferTest, StallsWhenFull)
{
    WritebackBuffer wb(1, 12);
    wb.insert(0); // drains at 12
    EXPECT_EQ(wb.insert(3), 12u);
    EXPECT_EQ(wb.stallCycles(), 9u);
    EXPECT_EQ(wb.inserted(), 2u);
}

TEST(WritebackBufferTest, EightEntryBurst)
{
    // Table 2: 8-entry buffer; a burst of 9 writebacks in one cycle
    // stalls only the ninth.
    WritebackBuffer wb(8, 12);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(wb.insert(0), 0u);
    EXPECT_EQ(wb.insert(0), 12u);
}

} // namespace rcache
