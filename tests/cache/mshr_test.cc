/** @file Unit tests for TimedPool, MshrFile, WritebackBuffer —
 *  including their contract across Cache::resizeTo (in-flight fills
 *  whose target ways/sets get disabled). */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mshr.hh"

namespace rcache
{

TEST(TimedPoolTest, FreeSlotAcquiresImmediately)
{
    TimedPool p(2);
    EXPECT_EQ(p.acquire(10, 5), 10u);
    EXPECT_EQ(p.acquire(10, 5), 10u);
}

TEST(TimedPoolTest, FullPoolDelaysToEarliestRelease)
{
    TimedPool p(2);
    p.acquire(0, 10); // busy until 10
    p.acquire(0, 20); // busy until 20
    EXPECT_EQ(p.acquire(5, 1), 10u);
}

TEST(TimedPoolTest, ExpiredSlotsAreReclaimed)
{
    TimedPool p(1);
    p.acquire(0, 5);
    EXPECT_EQ(p.acquire(6, 5), 6u); // slot free at 5 < 6
}

TEST(TimedPoolTest, BusyCount)
{
    TimedPool p(4);
    p.acquire(0, 10);
    p.acquire(0, 20);
    EXPECT_EQ(p.busyAt(5), 2u);
    EXPECT_EQ(p.busyAt(15), 1u);
    EXPECT_EQ(p.busyAt(25), 0u);
    EXPECT_FALSE(p.fullAt(5));
}

TEST(TimedPoolTest, ResetClears)
{
    TimedPool p(1);
    p.acquire(0, 100);
    p.reset();
    EXPECT_EQ(p.acquire(0, 5), 0u);
}

TEST(MshrTest, PrimaryMissFillsAfterLatency)
{
    MshrFile m(4);
    EXPECT_EQ(m.miss(0x10, 100, 12), 112u);
}

TEST(MshrTest, SecondaryMissMergesWithPrimary)
{
    MshrFile m(4);
    auto fill = m.miss(0x10, 100, 12);
    EXPECT_EQ(m.miss(0x10, 105, 12), fill);
    EXPECT_EQ(m.secondaryMisses(), 1u);
}

TEST(MshrTest, DifferentBlocksUseSeparateEntries)
{
    MshrFile m(4);
    m.miss(0x10, 100, 12);
    EXPECT_EQ(m.miss(0x20, 100, 12), 112u);
    EXPECT_EQ(m.secondaryMisses(), 0u);
}

TEST(MshrTest, FullFileSerializesMisses)
{
    MshrFile m(1);
    EXPECT_EQ(m.miss(0x10, 0, 10), 10u);
    // Second miss to a different block waits for the free slot.
    EXPECT_EQ(m.miss(0x20, 0, 10), 20u);
}

TEST(MshrTest, InFlightQuery)
{
    MshrFile m(2);
    m.miss(0x10, 0, 10);
    EXPECT_TRUE(m.inFlight(0x10, 5));
    EXPECT_FALSE(m.inFlight(0x10, 15));
    EXPECT_FALSE(m.inFlight(0x99, 5));
}

TEST(MshrTest, CompletedEntryNotMerged)
{
    MshrFile m(2);
    m.miss(0x10, 0, 10);
    // Re-miss after the fill completed is a new primary miss.
    EXPECT_EQ(m.miss(0x10, 20, 10), 30u);
    EXPECT_EQ(m.secondaryMisses(), 0u);
}

TEST(WritebackBufferTest, NoStallWhenFree)
{
    WritebackBuffer wb(2, 12);
    EXPECT_EQ(wb.insert(100), 100u);
    EXPECT_EQ(wb.stallCycles(), 0u);
}

TEST(WritebackBufferTest, StallsWhenFull)
{
    WritebackBuffer wb(1, 12);
    wb.insert(0); // drains at 12
    EXPECT_EQ(wb.insert(3), 12u);
    EXPECT_EQ(wb.stallCycles(), 9u);
    EXPECT_EQ(wb.inserted(), 2u);
}

TEST(WritebackBufferTest, EightEntryBurst)
{
    // Table 2: 8-entry buffer; a burst of 9 writebacks in one cycle
    // stalls only the ninth.
    WritebackBuffer wb(8, 12);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(wb.insert(0), 0u);
    EXPECT_EQ(wb.insert(0), 12u);
}

/**
 * @name Structural hazards across resizeTo
 *
 * The CPU models drive a functional cache and the timing pools side
 * by side: a miss fills the cache immediately and registers a
 * busy-until window in the MSHR file. When a resize disables the
 * frame an in-flight fill landed in, the two views intentionally
 * diverge — the *contents* are flushed (the paper's semantics) while
 * the *timing* window keeps running (the fill already occupied the
 * miss pipeline; disabling the frame cannot un-spend those cycles).
 * These tests pin that contract, which the cores rely on.
 */
/// @{

/** 1 KB / 2-way / 32 B blocks / 256 B subarrays: 16 sets, minSets 8. */
static CacheGeometry
resizeGeom()
{
    return CacheGeometry{1024, 2, 32, 256};
}

TEST(MshrResizeTest, InFlightFillToDisabledWaySurvivesInTiming)
{
    Cache c("c", resizeGeom());
    MshrFile m(4);

    // Two blocks of set 2: the first fill lands in way 0, the second
    // (the one with the fill window we track) in way 1.
    const Addr kept = 0x40;            // block 2, set 2
    const Addr moved = 0x40 + 16 * 32; // block 18, set 2
    EXPECT_FALSE(c.access(kept, false).hit);
    EXPECT_FALSE(c.access(moved, false).hit);
    const std::uint64_t fill_at = m.miss(moved >> 5, 100, 50);
    EXPECT_EQ(fill_at, 150u);

    // Disable way 1 while the fill window is still open: the
    // contents are flushed, the timing window is untouched (the miss
    // pipeline cycles are already spent).
    c.resizeTo(16, 1);
    EXPECT_TRUE(c.probe(kept));
    EXPECT_FALSE(c.probe(moved));
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_TRUE(m.inFlight(moved >> 5, 120));

    // The re-access inside the window is a miss in the cache but a
    // *secondary* miss in the MSHR file: it merges with the in-flight
    // fill instead of consuming a new slot.
    EXPECT_FALSE(c.access(moved, false).hit);
    EXPECT_EQ(m.miss(moved >> 5, 120, 50), fill_at);
    EXPECT_EQ(m.secondaryMisses(), 1u);
}

TEST(MshrResizeTest, SetDownsizeFlushesFilledBlockButKeepsWindow)
{
    Cache c("c", resizeGeom());
    MshrFile m(4);

    // Fill a block whose set index (15) disappears when the cache
    // drops to 8 sets.
    const Addr addr = 15 * 32;
    EXPECT_FALSE(c.access(addr, false).hit);
    m.miss(addr >> 5, 0, 40);

    const FlushResult fr = c.resizeTo(8, 2);
    EXPECT_EQ(fr.invalidated, 1u);
    EXPECT_FALSE(c.probe(addr));
    EXPECT_TRUE(c.checkInvariants());

    // Timing: still in flight inside the window, reclaimed after.
    EXPECT_TRUE(m.inFlight(addr >> 5, 30));
    EXPECT_FALSE(m.inFlight(addr >> 5, 50));
    // After the window a re-miss is primary again (no stale merge).
    EXPECT_EQ(m.miss(addr >> 5, 60, 40), 100u);
    EXPECT_EQ(m.secondaryMisses(), 0u);
}

TEST(MshrResizeTest, ResizeWritebackBurstStallsThroughBuffer)
{
    Cache c("c", resizeGeom());
    WritebackBuffer wb(2, 12); // 2 entries, 12-cycle drain

    // Dirty three blocks of distinct sets >= 8, all flushed by the
    // set-downsize below.
    for (Addr set : {8, 9, 10})
        EXPECT_FALSE(c.access(set * 32, true).hit);

    // Route the resize's writeback sink through the buffer the way a
    // core's policy sink does, at resize cycle 1000: the two free
    // slots absorb the first two victims, the third stalls until a
    // slot drains at 1012.
    std::vector<std::uint64_t> starts;
    const FlushResult fr = c.resizeTo(8, 2, [&](Addr) {
        starts.push_back(wb.insert(1000));
    });
    EXPECT_EQ(fr.writebacks, 3u);
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], 1000u);
    EXPECT_EQ(starts[1], 1000u);
    EXPECT_EQ(starts[2], 1012u);
    EXPECT_EQ(wb.stallCycles(), 12u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(MshrResizeTest, UpsizeReflushDoesNotDisturbOtherWindows)
{
    Cache c("c", resizeGeom());
    MshrFile m(2);

    // Small configuration: 8 sets enabled. Fill a block that maps to
    // set 2 under 8 sets but to set 10 under 16 sets — upsizing must
    // flush it (index changes), while an unrelated in-flight window
    // stays busy and still serializes a later primary miss.
    c.resizeTo(8, 2);
    const Addr moved = 10 * 32; // block_addr 10: set 2 of 8, 10 of 16
    EXPECT_FALSE(c.access(moved, false).hit);
    EXPECT_TRUE(c.probe(moved));

    m.miss(0x100, 0, 30);
    m.miss(0x200, 0, 30); // file full until 30

    c.resizeTo(16, 2);
    EXPECT_FALSE(c.probe(moved));
    EXPECT_TRUE(c.checkInvariants());

    // The resize took no MSHR slot: a third primary miss still waits
    // for the earliest in-flight fill, exactly as before the resize.
    EXPECT_EQ(m.miss(0x300, 5, 30), 60u);
}
/// @}

} // namespace rcache
