/** @file Unit tests for the CountMin frequency sketch. */

#include <gtest/gtest.h>

#include "cache/freq_sketch.hh"

namespace rcache
{

TEST(FreqSketchTest, WidthIsPowerOfTwoFloor)
{
    CountMinSketch small(0);
    EXPECT_EQ(small.width(), 1024u);
    CountMinSketch mid(1024);
    EXPECT_EQ(mid.width(), 1024u);
    CountMinSketch big(1025);
    EXPECT_EQ(big.width(), 2048u);
    EXPECT_EQ(big.sampleWindow(), 16 * big.width());
}

TEST(FreqSketchTest, EstimateNeverUnderestimates)
{
    CountMinSketch s(1024);
    for (unsigned n = 1; n <= 40; ++n) {
        s.increment(0xdead);
        EXPECT_GE(s.estimate(0xdead), n);
    }
    // An untouched key estimates at most collision noise — with 40
    // recorded accesses over 4 rows of 1024 counters, zero.
    EXPECT_EQ(s.estimate(0xbeef), 0u);
}

TEST(FreqSketchTest, CountersSaturateAt255)
{
    CountMinSketch s(1024);
    for (int i = 0; i < 1000; ++i)
        s.increment(42);
    EXPECT_EQ(s.estimate(42), 255u);
}

TEST(FreqSketchTest, HalveAgesEveryCounter)
{
    CountMinSketch s(1024);
    for (int i = 0; i < 9; ++i)
        s.increment(1);
    s.increment(2);
    s.halve();
    EXPECT_EQ(s.estimate(1), 4u); // 9 / 2, integer
    EXPECT_EQ(s.estimate(2), 0u);
}

TEST(FreqSketchTest, AgingTriggersAtSampleWindow)
{
    CountMinSketch s(1024);
    const std::uint64_t window = s.sampleWindow();
    // One shy of the window: nothing aged yet.
    for (std::uint64_t i = 0; i < window - 1; ++i)
        s.increment(7);
    EXPECT_EQ(s.recorded(), window - 1);
    EXPECT_EQ(s.estimate(7), 255u);
    // The window-closing access halves everything, including the
    // recorded count (the TinyLFU reset keeps it in step with the
    // surviving counter mass).
    s.increment(7);
    EXPECT_EQ(s.recorded(), window / 2);
    EXPECT_LE(s.estimate(7), 128u);
}

TEST(FreqSketchTest, EqualSeedsGiveEqualEstimates)
{
    CountMinSketch a(2048, 5), b(2048, 5);
    for (std::uint64_t k = 0; k < 500; ++k) {
        a.increment(k * 977);
        b.increment(k * 977);
    }
    for (std::uint64_t k = 0; k < 500; ++k)
        ASSERT_EQ(a.estimate(k * 977), b.estimate(k * 977));
}

TEST(FreqSketchTest, ResidentBytesIsCounterArray)
{
    CountMinSketch s(4096);
    EXPECT_EQ(s.residentBytes(), 4 * s.width());
}

} // namespace rcache
