/** @file Unit tests for replacement policies. */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace rcache
{

TEST(LruPolicyTest, StampsIncrease)
{
    LruPolicy p;
    auto a = p.touch(0);
    auto b = p.touch(0);
    EXPECT_LT(a, b);
}

TEST(LruPolicyTest, VictimIsOldestStamp)
{
    LruPolicy p;
    std::vector<ReplChoice> ways = {{true, 5}, {true, 2}, {true, 9}};
    EXPECT_EQ(p.victim(ways), 1u);
}

TEST(LruPolicyTest, SingleWay)
{
    LruPolicy p;
    std::vector<ReplChoice> ways = {{true, 3}};
    EXPECT_EQ(p.victim(ways), 0u);
}

TEST(RandomPolicyTest, VictimWithinRange)
{
    RandomPolicy p(7);
    std::vector<ReplChoice> ways(4, {true, 0});
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.victim(ways), 4u);
}

TEST(RandomPolicyTest, Deterministic)
{
    RandomPolicy a(3), b(3);
    std::vector<ReplChoice> ways(8, {true, 0});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(ways), b.victim(ways));
}

TEST(RandomPolicyTest, CoversAllWays)
{
    RandomPolicy p(11);
    std::vector<ReplChoice> ways(4, {true, 0});
    std::vector<int> hits(4, 0);
    for (int i = 0; i < 1000; ++i)
        ++hits[p.victim(ways)];
    for (int h : hits)
        EXPECT_GT(h, 100);
}

TEST(FifoPolicyTest, HitsDoNotRefreshInsertionOrder)
{
    FifoPolicy p;
    const auto first = p.fill(0);
    const auto second = p.fill(0);
    EXPECT_LT(first, second);
    // Touching the first block leaves its insertion stamp alone, so
    // it is still the FIFO victim.
    EXPECT_EQ(p.touch(first), first);
    std::vector<ReplChoice> ways = {{true, first}, {true, second}};
    EXPECT_EQ(p.victim(ways), 0u);
}

TEST(SlruPolicyTest, FillsAreProbationaryHitsPromote)
{
    SlruPolicy p;
    const auto filled = p.fill(0);
    EXPECT_EQ(filled & SlruPolicy::protectedBit, 0u);
    const auto touched = p.touch(filled);
    EXPECT_NE(touched & SlruPolicy::protectedBit, 0u);
}

TEST(SlruPolicyTest, VictimPrefersOldestProbationary)
{
    SlruPolicy p;
    // Way 0: protected, ancient. Ways 1-2: probationary. The oldest
    // probationary way goes, shielding the protected segment.
    std::vector<ReplChoice> ways = {
        {true, SlruPolicy::protectedBit | 1},
        {true, 7},
        {true, 3},
    };
    EXPECT_EQ(p.victim(ways), 2u);
}

TEST(SlruPolicyTest, FullyProtectedSetDegradesToLru)
{
    SlruPolicy p;
    std::vector<ReplChoice> ways = {
        {true, SlruPolicy::protectedBit | 9},
        {true, SlruPolicy::protectedBit | 4},
        {true, SlruPolicy::protectedBit | 6},
    };
    EXPECT_EQ(p.victim(ways), 1u);
}

TEST(SlruPolicyTest, StampsStayBelowTheSegmentBit)
{
    SlruPolicy p;
    for (int i = 0; i < 1000; ++i) {
        const auto meta = p.fill(0);
        EXPECT_LT(meta, SlruPolicy::protectedBit);
    }
}

TEST(WTinyLfuPolicyTest, ColdCandidateDoesNotDisplaceHotVictim)
{
    WTinyLfuPolicy p(1024, 1);
    ASSERT_TRUE(p.wantsAccessStream());
    const Addr hot = 100, cold = 7000;
    for (int i = 0; i < 10; ++i)
        p.recordAccess(hot);
    // The candidate's own access is recorded before admission is
    // consulted, mirroring the cache's order of operations.
    p.recordAccess(cold);
    EXPECT_FALSE(p.admit(cold, hot));
    EXPECT_TRUE(p.admit(hot, cold));
}

TEST(WTinyLfuPolicyTest, EqualFrequenciesAdmit)
{
    WTinyLfuPolicy p(1024, 1);
    const Addr a = 1, b = 2;
    p.recordAccess(a);
    p.recordAccess(b);
    // Ties admit, preserving the LRU tie-break.
    EXPECT_TRUE(p.admit(a, b));
    EXPECT_TRUE(p.admit(b, a));
}

TEST(WTinyLfuPolicyTest, VictimIsLruWithinTheSet)
{
    WTinyLfuPolicy p(1024, 1);
    std::vector<ReplChoice> ways = {{true, 5}, {true, 2}, {true, 9}};
    EXPECT_EQ(p.victim(ways), 1u);
}

TEST(ReplacementFactoryTest, ByName)
{
    EXPECT_EQ(makeReplacementPolicy("lru")->name(), "lru");
    EXPECT_EQ(makeReplacementPolicy("random")->name(), "random");
    EXPECT_EQ(makeReplacementPolicy("fifo")->name(), "fifo");
    EXPECT_EQ(makeReplacementPolicy("slru")->name(), "slru");
    EXPECT_EQ(makeReplacementPolicy("wtlfu", 1, 1024)->name(),
              "wtlfu");
}

TEST(ReplacementFactoryTest, RegistryIsConsistent)
{
    const auto names = replacementPolicyNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(replacementPolicyList(), "lru|random|fifo|slru|wtlfu");
    for (const std::string &n : names) {
        SCOPED_TRACE(n);
        EXPECT_TRUE(isReplacementPolicyName(n));
        auto p = makeReplacementPolicy(n, 3, 1024);
        ASSERT_TRUE(p);
        EXPECT_EQ(p->name(), n);
        // The instance's extra-state claim must agree with the
        // registry's energy pricing.
        EXPECT_EQ(p->extraStateBitsPerBlock(),
                  replacementPolicyStateBits(n));
        // Only wtlfu taps the access stream.
        EXPECT_EQ(p->wantsAccessStream(), n == "wtlfu");
    }
    EXPECT_FALSE(isReplacementPolicyName("plru"));
    EXPECT_FALSE(isReplacementPolicyName(""));
}

TEST(ReplacementFactoryDeathTest, UnknownName)
{
    EXPECT_DEATH(makeReplacementPolicy("plru"),
                 "unknown replacement policy");
}

} // namespace rcache
