/** @file Unit tests for replacement policies. */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace rcache
{

TEST(LruPolicyTest, StampsIncrease)
{
    LruPolicy p;
    auto a = p.touch(0);
    auto b = p.touch(0);
    EXPECT_LT(a, b);
}

TEST(LruPolicyTest, VictimIsOldestStamp)
{
    LruPolicy p;
    std::vector<ReplChoice> ways = {{true, 5}, {true, 2}, {true, 9}};
    EXPECT_EQ(p.victim(ways), 1u);
}

TEST(LruPolicyTest, SingleWay)
{
    LruPolicy p;
    std::vector<ReplChoice> ways = {{true, 3}};
    EXPECT_EQ(p.victim(ways), 0u);
}

TEST(RandomPolicyTest, VictimWithinRange)
{
    RandomPolicy p(7);
    std::vector<ReplChoice> ways(4, {true, 0});
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.victim(ways), 4u);
}

TEST(RandomPolicyTest, Deterministic)
{
    RandomPolicy a(3), b(3);
    std::vector<ReplChoice> ways(8, {true, 0});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(ways), b.victim(ways));
}

TEST(RandomPolicyTest, CoversAllWays)
{
    RandomPolicy p(11);
    std::vector<ReplChoice> ways(4, {true, 0});
    std::vector<int> hits(4, 0);
    for (int i = 0; i < 1000; ++i)
        ++hits[p.victim(ways)];
    for (int h : hits)
        EXPECT_GT(h, 100);
}

TEST(ReplacementFactoryTest, ByName)
{
    EXPECT_EQ(makeReplacementPolicy("lru")->name(), "lru");
    EXPECT_EQ(makeReplacementPolicy("random")->name(), "random");
}

TEST(ReplacementFactoryDeathTest, UnknownName)
{
    EXPECT_DEATH(makeReplacementPolicy("plru"),
                 "unknown replacement policy");
}

} // namespace rcache
