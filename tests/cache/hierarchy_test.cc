/** @file Unit tests for the two-level hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace rcache
{

namespace
{

struct Fixture
{
    CacheGeometry l1g{4 * 1024, 2, 32, 1024};
    CacheGeometry l2g{64 * 1024, 4, 32, 4096};
    Cache il1{"il1", l1g};
    Cache dl1{"dl1", l1g};
    HierarchyParams params;
    Hierarchy h{&il1, &dl1, l2g, params};
};

} // namespace

TEST(HierarchyTest, L1HitLatency)
{
    Fixture f;
    f.h.dataAccess(0x1000, false);
    MemAccessResult r = f.h.dataAccess(0x1000, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 1u);
}

TEST(HierarchyTest, L2HitLatency)
{
    Fixture f;
    f.h.dataAccess(0x1000, false); // cold: to memory
    // Evict from tiny L1 with conflicting blocks (set span 2K).
    f.h.dataAccess(0x1800, false);
    f.h.dataAccess(0x2800, false);
    MemAccessResult r = f.h.dataAccess(0x1000, false); // L1 miss,
                                                       // L2 hit
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latency, 1u + 12u);
}

TEST(HierarchyTest, MemoryLatencyIncludesTransfer)
{
    Fixture f;
    MemAccessResult r = f.h.dataAccess(0x1000, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    // 1 + 12 + 80 + 5 * (32/8) = 113.
    EXPECT_EQ(r.latency, 113u);
    EXPECT_EQ(f.h.memPenalty(), 112u);
}

TEST(HierarchyTest, ColdMissCountsMemoryRead)
{
    Fixture f;
    f.h.dataAccess(0x1000, false);
    EXPECT_EQ(f.h.memReads(), 1u);
    EXPECT_EQ(f.h.memWrites(), 0u);
}

TEST(HierarchyTest, DirtyL1VictimReachesL2)
{
    Fixture f;
    f.h.dataAccess(0x0000, true); // dirty in L1
    f.h.dataAccess(0x0800, false);
    std::uint64_t l2_before = f.h.l2().accesses();
    MemAccessResult r = f.h.dataAccess(0x1000, false); // evicts dirty
    EXPECT_TRUE(r.writeback);
    // L2 sees the demand fill and the writeback.
    EXPECT_EQ(f.h.l2().accesses(), l2_before + 2);
}

TEST(HierarchyTest, InstAccessNeverWrites)
{
    Fixture f;
    f.h.instAccess(0x400000);
    MemAccessResult r = f.h.instAccess(0x400000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(f.il1.accesses(), 2u);
    EXPECT_EQ(f.dl1.accesses(), 0u);
}

TEST(HierarchyTest, WritebackSinkDrainsIntoL2)
{
    Fixture f;
    auto sink = f.h.l1WritebackSink();
    std::uint64_t l2_before = f.h.l2().accesses();
    sink(0x2000);
    EXPECT_EQ(f.h.l2().accesses(), l2_before + 1);
}

TEST(HierarchyTest, L2MissOnWritebackCountsMemRead)
{
    Fixture f;
    auto sink = f.h.l1WritebackSink();
    sink(0x7000); // cold L2 -> fill from memory
    EXPECT_EQ(f.h.memReads(), 1u);
}

TEST(HierarchyTest, InclusionNotRequiredButL2CatchesReuse)
{
    Fixture f;
    // Fill a block, evict it from L1 via conflicts, re-access: L2 hit.
    f.h.dataAccess(0x1000, false);
    f.h.dataAccess(0x1800, false);
    f.h.dataAccess(0x2800, false);
    EXPECT_FALSE(f.dl1.probe(0x1000));
    MemAccessResult r = f.h.dataAccess(0x1000, false);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(f.h.memReads(), 3u); // only the three cold fills
}

TEST(HierarchyTest, ResetStats)
{
    Fixture f;
    f.h.dataAccess(0x1000, false);
    f.h.resetStats();
    EXPECT_EQ(f.h.memReads(), 0u);
    EXPECT_EQ(f.h.l2().accesses(), 0u);
}

} // namespace rcache
