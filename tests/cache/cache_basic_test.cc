/** @file Unit tests for basic (non-resizing) cache behaviour. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace rcache
{

namespace
{

CacheGeometry
smallGeom()
{
    // 4K 2-way, 32 B blocks, 1K subarrays: 64 sets.
    return {4 * 1024, 2, 32, 1024};
}

} // namespace

TEST(CacheBasicTest, ColdMissThenHit)
{
    Cache c("c", smallGeom());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheBasicTest, SameBlockDifferentOffsetHits)
{
    Cache c("c", smallGeom());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x101f, false).hit); // same 32 B block
    EXPECT_FALSE(c.access(0x1020, false).hit); // next block
}

TEST(CacheBasicTest, ProbeHasNoSideEffects)
{
    Cache c("c", smallGeom());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.accesses(), 0u);
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(CacheBasicTest, WriteMakesDirtyVictimWriteback)
{
    Cache c("c", smallGeom());
    // Three blocks mapping to the same set of a 2-way cache:
    // set span is 64 sets * 32 B = 2K.
    c.access(0x0000, true); // dirty
    c.access(0x0800, false);
    AccessResult r = c.access(0x1000, false); // evicts dirty 0x0000
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0x0000u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheBasicTest, CleanVictimNoWriteback)
{
    Cache c("c", smallGeom());
    c.access(0x0000, false);
    c.access(0x0800, false);
    AccessResult r = c.access(0x1000, false);
    EXPECT_FALSE(r.writeback);
}

TEST(CacheBasicTest, WriteHitMarksDirty)
{
    Cache c("c", smallGeom());
    c.access(0x0000, false); // clean fill
    c.access(0x0000, true);  // write hit -> dirty
    c.access(0x0800, false);
    AccessResult r = c.access(0x1000, false);
    EXPECT_TRUE(r.writeback);
}

TEST(CacheBasicTest, LruEvictsLeastRecentlyUsed)
{
    Cache c("c", smallGeom());
    c.access(0x0000, false);
    c.access(0x0800, false);
    c.access(0x0000, false); // touch 0x0000; LRU is now 0x0800
    c.access(0x1000, false); // evicts 0x0800
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0800));
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(CacheBasicTest, EnergyEventCountersAccumulate)
{
    Cache c("c", smallGeom()); // 2 ways x 1 subarray each at 4K/1K...
    // 4K 2-way: way = 2K = 2 subarrays; total 4 subarrays.
    EXPECT_EQ(c.enabledSubarrays(), 4u);
    c.access(0x0, false);
    c.access(0x20, false);
    EXPECT_EQ(c.prechargeSubarrayEvents(), 8u);
    EXPECT_EQ(c.wayReadEvents(), 4u);
}

TEST(CacheBasicTest, MissRatio)
{
    Cache c("c", smallGeom());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.25);
}

TEST(CacheBasicTest, ByteCyclesIntegral)
{
    Cache c("c", smallGeom());
    c.accumulateEnabledTime(100);
    EXPECT_DOUBLE_EQ(c.byteCycles(), 4096.0 * 100);
    c.accumulateEnabledTime(250);
    EXPECT_DOUBLE_EQ(c.byteCycles(), 4096.0 * 250);
}

TEST(CacheBasicTest, ByteCyclesClampsNonMonotonicTime)
{
    Cache c("c", smallGeom());
    c.accumulateEnabledTime(100);
    c.accumulateEnabledTime(50); // ignored
    EXPECT_DOUBLE_EQ(c.byteCycles(), 4096.0 * 100);
}

TEST(CacheBasicTest, ResetStatsClearsCounters)
{
    Cache c("c", smallGeom());
    c.access(0x0, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.prechargeSubarrayEvents(), 0u);
    EXPECT_DOUBLE_EQ(c.byteCycles(), 0.0);
    // Contents survive a stats reset.
    EXPECT_TRUE(c.probe(0x0));
}

TEST(CacheBasicTest, StatGroupExposesCounters)
{
    Cache c("dl1", smallGeom());
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.stats().value("accesses"), 1.0);
    EXPECT_DOUBLE_EQ(c.stats().value("misses"), 1.0);
    EXPECT_DOUBLE_EQ(c.stats().value("missRatio"), 1.0);
}

TEST(CacheBasicDeathTest, InvalidGeometryIsFatal)
{
    CacheGeometry bad{3000, 2, 32, 1024};
    EXPECT_EXIT(Cache("bad", bad), testing::ExitedWithCode(1),
                "invalid geometry");
}

/** Property: a cache of any legal geometry keeps its invariants under
 *  a deterministic access mix. */
class CacheAccessSweep
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheAccessSweep, InvariantsUnderRandomTraffic)
{
    auto [size_kb, assoc] = GetParam();
    CacheGeometry g{static_cast<std::uint64_t>(size_kb) * 1024,
                    static_cast<unsigned>(assoc), 32, 1024};
    if (!g.validate().empty())
        GTEST_SKIP();
    Cache c("c", g);
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        c.access((x >> 20) & 0xffff0, (x & 1) != 0);
    }
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_EQ(c.accesses(), 20000u);
    EXPECT_GE(c.prechargeSubarrayEvents(),
              c.accesses()); // at least 1 subarray per access
    EXPECT_EQ(c.wayReadEvents(), c.accesses() * g.assoc);
}

INSTANTIATE_TEST_SUITE_P(Grid, CacheAccessSweep,
                         testing::Combine(testing::Values(4, 8, 32),
                                          testing::Values(1, 2, 4,
                                                          8)));

} // namespace rcache
