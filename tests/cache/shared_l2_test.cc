/** @file
 * Tests for SharedL2: per-core attribution, occupancy conservation,
 * and cross-core eviction classification.
 */

#include <gtest/gtest.h>

#include "cache/shared_l2.hh"

namespace rcache
{

namespace
{

/** 1 KB / 2-way / 32 B blocks: 16 sets, 32 frames — small enough to
 *  force evictions with a handful of fills. */
CacheGeometry
tinyGeom()
{
    return CacheGeometry{1024, 2, 32, 256};
}

/** Address mapping to @p set with tag index @p k (distinct k give
 *  distinct blocks in the same set). */
Addr
addrInSet(std::uint64_t set, std::uint64_t k)
{
    return (set + k * 16) * 32; // 16 sets, 32-byte blocks
}

} // namespace

TEST(SharedL2Test, AttributesHitsAndMissesPerCore)
{
    SharedL2 l2(tinyGeom(), 2);

    // Core 0: miss then hit on the same block.
    EXPECT_FALSE(l2.access(0, addrInSet(0, 0), false).hit);
    EXPECT_TRUE(l2.access(0, addrInSet(0, 0), false).hit);
    // Core 1: one miss on its own block.
    EXPECT_FALSE(l2.access(1, addrInSet(1, 0), false).hit);

    const SharedL2CoreStats &c0 = l2.coreStats(0);
    const SharedL2CoreStats &c1 = l2.coreStats(1);
    EXPECT_EQ(c0.accesses, 2u);
    EXPECT_EQ(c0.hits, 1u);
    EXPECT_EQ(c0.misses, 1u);
    EXPECT_EQ(c0.memReads, 1u);
    EXPECT_EQ(c1.accesses, 1u);
    EXPECT_EQ(c1.misses, 1u);

    // Per-core sums equal the cache's own aggregates.
    const SharedL2CoreStats t = l2.totals();
    EXPECT_EQ(t.accesses, l2.cache().accesses());
    EXPECT_EQ(t.misses, l2.cache().misses());
    EXPECT_EQ(t.accesses, 3u);
}

TEST(SharedL2Test, CrossCoreEvictionIsClassified)
{
    SharedL2 l2(tinyGeom(), 2);

    // Core 0 fills both ways of set 3.
    l2.access(0, addrInSet(3, 0), false);
    l2.access(0, addrInSet(3, 1), false);
    // Core 1 misses into the same set: the LRU victim is core 0's.
    l2.access(1, addrInSet(3, 2), false);

    EXPECT_EQ(l2.coreStats(0).evictionsByOthers, 1u);
    EXPECT_EQ(l2.coreStats(0).evictionsBySelf, 0u);
    EXPECT_EQ(l2.coreStats(1).evictedOthers, 1u);
    EXPECT_EQ(l2.coreStats(0).residentBlocks, 1u);
    EXPECT_EQ(l2.coreStats(1).residentBlocks, 1u);

    // A third fill by core 0 now evicts one of the set's two blocks
    // (LRU: its own remaining one).
    l2.access(0, addrInSet(3, 3), false);
    EXPECT_EQ(l2.coreStats(0).evictionsBySelf, 1u);
}

TEST(SharedL2Test, OccupancyConservation)
{
    SharedL2 l2(tinyGeom(), 3);

    // A deterministic pseudo-random pounding from three cores.
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned core = (x >> 33) % 3;
        const Addr addr = (x >> 17) % (64 * 1024);
        l2.access(core, addr, (x & 1) != 0);
    }

    const SharedL2CoreStats t = l2.totals();
    for (unsigned c = 0; c < 3; ++c) {
        const SharedL2CoreStats &s = l2.coreStats(c);
        EXPECT_EQ(s.fills - s.evictionsBySelf - s.evictionsByOthers,
                  s.residentBlocks)
            << "core " << c;
        EXPECT_LE(s.residentBlocks, s.peakResidentBlocks);
        EXPECT_EQ(s.hits + s.misses, s.accesses);
    }
    // Residency never exceeds the frame count, and every frame filled
    // is accounted to exactly one core.
    const CacheGeometry g = tinyGeom();
    EXPECT_LE(t.residentBlocks, g.numSets() * g.assoc);
    EXPECT_EQ(t.accesses, l2.cache().accesses());
    EXPECT_EQ(t.misses, l2.cache().misses());
    // Eviction bookkeeping balances: every cross-core eviction has
    // exactly one evictor.
    EXPECT_EQ(t.evictionsByOthers, t.evictedOthers);
}

TEST(SharedL2Test, DirtyVictimChargesEvictingCore)
{
    SharedL2 l2(tinyGeom(), 2);

    // Core 0 dirties both ways of set 5.
    l2.access(0, addrInSet(5, 0), true);
    l2.access(0, addrInSet(5, 1), true);
    // Core 1's fill evicts a dirty victim: the memory write is
    // attributed to core 1 (the access that caused the traffic).
    const SharedL2Outcome out = l2.access(1, addrInSet(5, 2), false);
    EXPECT_TRUE(out.memWrite);
    EXPECT_EQ(l2.coreStats(1).memWrites, 1u);
    EXPECT_EQ(l2.coreStats(0).memWrites, 0u);
}

} // namespace rcache
