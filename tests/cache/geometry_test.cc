/** @file Unit and property tests for CacheGeometry. */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

namespace rcache
{

TEST(GeometryTest, PaperBaseL1)
{
    // Table 2: 32K 2-way, 32 B blocks, 1K subarrays.
    CacheGeometry g{32 * 1024, 2, 32, 1024};
    EXPECT_TRUE(g.validate().empty());
    EXPECT_EQ(g.waySize(), 16 * 1024u);
    EXPECT_EQ(g.numSets(), 512u);
    EXPECT_EQ(g.subarraysPerWay(), 16u);
    EXPECT_EQ(g.setsPerSubarray(), 32u);
    EXPECT_EQ(g.totalSubarrays(), 32u);
    EXPECT_EQ(g.minSets(), 32u);
    EXPECT_EQ(g.blockBits(), 5u);
}

TEST(GeometryTest, PaperTable1Geometry)
{
    // Table 1: 32K 4-way with 1K subarrays.
    CacheGeometry g{32 * 1024, 4, 32, 1024};
    EXPECT_TRUE(g.validate().empty());
    EXPECT_EQ(g.waySize(), 8 * 1024u);
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.subarraysPerWay(), 8u);
    EXPECT_EQ(g.totalSubarrays(), 32u);
}

TEST(GeometryTest, InvalidNonPowerOfTwoSize)
{
    CacheGeometry g{3000, 2, 32, 1024};
    EXPECT_FALSE(g.validate().empty());
}

TEST(GeometryTest, InvalidBlockSize)
{
    CacheGeometry g{32 * 1024, 2, 48, 1024};
    EXPECT_FALSE(g.validate().empty());
}

TEST(GeometryTest, InvalidSubarrayLargerThanWay)
{
    CacheGeometry g{4 * 1024, 4, 32, 2048};
    EXPECT_FALSE(g.validate().empty());
}

TEST(GeometryTest, ZeroAssocInvalid)
{
    CacheGeometry g{32 * 1024, 0, 32, 1024};
    EXPECT_FALSE(g.validate().empty());
}

/** Property sweep: consistency across a grid of legal geometries. */
class GeometrySweepTest
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GeometrySweepTest, InternalConsistency)
{
    auto [size_kb, assoc, subarray] = GetParam();
    CacheGeometry g{static_cast<std::uint64_t>(size_kb) * 1024,
                    static_cast<unsigned>(assoc), 32,
                    static_cast<unsigned>(subarray)};
    if (!g.validate().empty())
        GTEST_SKIP() << "not a legal geometry";
    EXPECT_EQ(g.waySize() * g.assoc, g.size);
    EXPECT_EQ(g.numSets() * g.assoc * g.blockSize, g.size);
    EXPECT_EQ(static_cast<std::uint64_t>(g.subarraysPerWay()) *
                  g.subarraySize,
              g.waySize());
    EXPECT_EQ(g.totalSubarrays(), g.subarraysPerWay() * g.assoc);
    EXPECT_LE(g.minSets(), g.numSets());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometrySweepTest,
    testing::Combine(testing::Values(8, 16, 32, 64, 128),
                     testing::Values(1, 2, 4, 8, 16),
                     testing::Values(512, 1024, 2048)));

} // namespace rcache
