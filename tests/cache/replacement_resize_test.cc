/**
 * @file
 * Replacement under resizing: after Cache::resizeTo shrinks the
 * enabled ways, victims must be chosen only among the enabled ways —
 * for the inline LRU fast path, the inline random fast path, and
 * again after re-enabling ways. (The inline dispatch added for the
 * hot-path overhaul must honor exactly the same enabled-way bounds
 * the virtual policies did.)
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace rcache
{

namespace
{

/** 32 KB, 4-way, 32 B blocks, 1 KB subarrays: 256 sets, minSets 32. */
CacheGeometry
geom4way()
{
    return CacheGeometry{32 * 1024, 4, 32, 1024};
}

/** k-th distinct block address mapping to set 0 at full size. */
Addr
set0Addr(unsigned k)
{
    return static_cast<Addr>(k) * 256 * 32;
}

} // namespace

TEST(ReplacementResizeTest, LruVictimsOnlyAmongEnabledWays)
{
    Cache c("c", geom4way(), std::make_unique<LruPolicy>());

    // Fill set 0's four ways in order: way w holds set0Addr(w).
    for (unsigned k = 0; k < 4; ++k)
        EXPECT_FALSE(c.access(set0Addr(k), false).hit);
    for (unsigned k = 0; k < 4; ++k)
        EXPECT_TRUE(c.probe(set0Addr(k)));

    // Disable ways 2 and 3: their blocks are flushed.
    const FlushResult flushed = c.resizeTo(256, 2);
    EXPECT_GT(flushed.invalidated, 0u);
    EXPECT_TRUE(c.probe(set0Addr(0)));
    EXPECT_TRUE(c.probe(set0Addr(1)));
    EXPECT_FALSE(c.probe(set0Addr(2)));
    EXPECT_FALSE(c.probe(set0Addr(3)));
    EXPECT_TRUE(c.checkInvariants());

    // Touch block 0 so block 1 is LRU, then force an eviction. The
    // victim must be block 1 (the LRU among *enabled* ways); if the
    // policy considered the disabled ways it would pick one of their
    // (invalid) frames instead and block 1 would survive.
    EXPECT_TRUE(c.access(set0Addr(0), false).hit);
    EXPECT_FALSE(c.access(set0Addr(4), false).hit);
    EXPECT_TRUE(c.probe(set0Addr(0)));
    EXPECT_TRUE(c.probe(set0Addr(4)));
    EXPECT_FALSE(c.probe(set0Addr(1)));
    EXPECT_TRUE(c.checkInvariants());

    // Repeatedly evict; valid blocks must never appear in a disabled
    // frame (checkInvariants enforces exactly that).
    for (unsigned k = 5; k < 40; ++k) {
        EXPECT_FALSE(c.access(set0Addr(k), (k & 1) != 0).hit);
        ASSERT_TRUE(c.checkInvariants());
    }
    EXPECT_EQ(c.enabledWays(), 2u);
}

TEST(ReplacementResizeTest, LruAfterReEnablingWays)
{
    Cache c("c", geom4way(), std::make_unique<LruPolicy>());
    c.resizeTo(256, 1);
    for (unsigned k = 0; k < 3; ++k)
        c.access(set0Addr(k), false);
    EXPECT_TRUE(c.checkInvariants());

    // Re-enable all four ways: fills use the empty frames first, then
    // LRU applies across all four.
    c.resizeTo(256, 4);
    for (unsigned k = 10; k < 14; ++k)
        EXPECT_FALSE(c.access(set0Addr(k), false).hit);
    EXPECT_TRUE(c.checkInvariants());

    // All four enabled frames are now valid; next miss evicts the
    // oldest fill (k=10 survives only if the victim scan is wrong).
    EXPECT_FALSE(c.access(set0Addr(20), false).hit);
    EXPECT_FALSE(c.probe(set0Addr(10)));
    for (unsigned k = 11; k < 14; ++k)
        EXPECT_TRUE(c.probe(set0Addr(k)));
    EXPECT_TRUE(c.checkInvariants());
}

TEST(ReplacementResizeTest, RandomVictimsOnlyAmongEnabledWays)
{
    Cache c("c", geom4way(), std::make_unique<RandomPolicy>(7));

    for (unsigned k = 0; k < 4; ++k)
        c.access(set0Addr(k), false);
    c.resizeTo(256, 2);
    EXPECT_TRUE(c.checkInvariants());

    // Both enabled frames hold blocks; every conflict miss must evict
    // exactly one of the two current residents, never touch a
    // disabled frame, and over many draws both ways must be chosen.
    Addr resident[2] = {set0Addr(0), set0Addr(1)};
    bool evicted_way[2] = {false, false};
    for (unsigned k = 4; k < 300; ++k) {
        const Addr incoming = set0Addr(k);
        EXPECT_FALSE(c.access(incoming, false).hit);
        ASSERT_TRUE(c.checkInvariants());

        const bool kept0 = c.probe(resident[0]);
        const bool kept1 = c.probe(resident[1]);
        ASSERT_NE(kept0, kept1)
            << "eviction must remove exactly one enabled resident";
        ASSERT_TRUE(c.probe(incoming));
        const unsigned victim = kept0 ? 1 : 0;
        evicted_way[victim] = true;
        resident[victim] = incoming;
    }
    EXPECT_TRUE(evicted_way[0]);
    EXPECT_TRUE(evicted_way[1]);
    EXPECT_EQ(c.enabledWays(), 2u);
}

TEST(ReplacementResizeTest, RandomVictimsAfterSetDownsize)
{
    // Downsizing sets moves the conflict pressure to a smaller mask;
    // random victims must still respect the enabled ways there.
    Cache c("c", geom4way(), std::make_unique<RandomPolicy>(11));
    c.resizeTo(32, 2);
    EXPECT_TRUE(c.checkInvariants());

    // Distinct blocks mapping to set 0 under the 32-set mask.
    auto addr = [](unsigned k) {
        return static_cast<Addr>(k) * 32 * 32;
    };
    c.access(addr(0), true);
    c.access(addr(1), true);
    for (unsigned k = 2; k < 200; ++k) {
        c.access(addr(k), (k & 1) != 0);
        ASSERT_TRUE(c.checkInvariants());
    }
    EXPECT_EQ(c.enabledSets(), 32u);
    EXPECT_EQ(c.enabledWays(), 2u);
}

} // namespace rcache
