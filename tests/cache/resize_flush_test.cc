/** @file
 * Tests for the resize/flush semantics at the heart of the paper's
 * selective-sets vs selective-ways comparison (Section 2.1):
 * way-disable flushes, set-disable flushes, and the remap flush on
 * set-upsizing.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace rcache
{

namespace
{

// 8K 4-way, 32 B blocks, 1K subarrays: 64 sets, way = 2K.
CacheGeometry
geom()
{
    return {8 * 1024, 4, 32, 1024};
}

} // namespace

TEST(ResizeTest, DisablingWaysFlushesTheirBlocks)
{
    Cache c("c", geom());
    // Fill one set's 4 ways: blocks 2K apart share a set.
    for (Addr a = 0; a < 4 * 2048; a += 2048)
        c.access(a, false);
    FlushResult r = c.resizeTo(64, 2); // drop to 2 ways
    EXPECT_EQ(r.invalidated, 2u);
    EXPECT_EQ(r.writebacks, 0u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(ResizeTest, DisablingWaysWritesBackDirtyBlocks)
{
    Cache c("c", geom());
    for (Addr a = 0; a < 4 * 2048; a += 2048)
        c.access(a, true); // all dirty
    std::vector<Addr> drained;
    FlushResult r = c.resizeTo(
        64, 1, [&](Addr a) { drained.push_back(a); });
    EXPECT_EQ(r.invalidated, 3u);
    EXPECT_EQ(r.writebacks, 3u);
    EXPECT_EQ(drained.size(), 3u);
}

TEST(ResizeTest, SetDownsizeFlushesDisabledSets)
{
    Cache c("c", geom());
    c.access(33 * 32, false); // set 33 (will be disabled at 32 sets)
    c.access(1 * 32, false);  // set 1 (stays)
    FlushResult r = c.resizeTo(32, 4);
    EXPECT_EQ(r.invalidated, 1u);
    EXPECT_FALSE(c.probe(33 * 32));
    EXPECT_TRUE(c.probe(1 * 32));
    EXPECT_TRUE(c.checkInvariants());
}

TEST(ResizeTest, SetDownsizeSurvivorsStillHit)
{
    Cache c("c", geom());
    // Block addr 0 maps to set 0 under any mask.
    c.access(0, false);
    c.resizeTo(32, 4);
    EXPECT_TRUE(c.access(0, false).hit);
}

TEST(ResizeTest, SetUpsizeFlushesRemappedBlocks)
{
    Cache c("c", geom());
    c.resizeTo(32, 4);
    // Block address 32 + 1 = set 1 under 32-set mask, but set 33
    // under the 64-set mask: must be flushed on upsize.
    const Addr remapped = (64 + 33) * 32; // block addr 97: 97&31=1,
                                          // 97&63=33
    c.access(remapped, false);
    // Block addr 1 maps to set 1 under both masks: survives.
    c.access(1 * 32, false);
    EXPECT_TRUE(c.probe(remapped));
    FlushResult r = c.resizeTo(64, 4);
    EXPECT_EQ(r.invalidated, 1u);
    EXPECT_FALSE(c.probe(remapped));
    EXPECT_TRUE(c.probe(1 * 32));
    EXPECT_TRUE(c.checkInvariants());
}

TEST(ResizeTest, SetUpsizeWritesBackDirtyRemapped)
{
    Cache c("c", geom());
    c.resizeTo(32, 4);
    const Addr remapped = (64 + 33) * 32;
    c.access(remapped, true); // dirty
    std::vector<Addr> drained;
    FlushResult r =
        c.resizeTo(64, 4, [&](Addr a) { drained.push_back(a); });
    EXPECT_EQ(r.writebacks, 1u);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0], remapped);
}

TEST(ResizeTest, NoopResizeFlushesNothing)
{
    Cache c("c", geom());
    c.access(0, true);
    FlushResult r = c.resizeTo(64, 4);
    EXPECT_EQ(r.invalidated, 0u);
    EXPECT_EQ(c.resizes(), 0u);
}

TEST(ResizeTest, EnabledSizeTracksConfig)
{
    Cache c("c", geom());
    EXPECT_EQ(c.enabledSize(), 8 * 1024u);
    c.resizeTo(32, 4);
    EXPECT_EQ(c.enabledSize(), 4 * 1024u);
    c.resizeTo(32, 2);
    EXPECT_EQ(c.enabledSize(), 2 * 1024u);
}

TEST(ResizeTest, EnabledSubarraysFloorOnePerWay)
{
    Cache c("c", geom()); // 2 subarrays/way, 4 ways = 8
    EXPECT_EQ(c.enabledSubarrays(), 8u);
    c.resizeTo(32, 4); // half a subarray per way -> floor 1 per way
    EXPECT_EQ(c.enabledSubarrays(), 4u);
    c.resizeTo(32, 2);
    EXPECT_EQ(c.enabledSubarrays(), 2u);
}

TEST(ResizeTest, FlushAllWritesBackAllDirty)
{
    Cache c("c", geom());
    c.access(0, true);
    c.access(64, true);
    c.access(128, false);
    FlushResult r = c.flushAll();
    EXPECT_EQ(r.invalidated, 3u);
    EXPECT_EQ(r.writebacks, 2u);
    EXPECT_FALSE(c.probe(0));
}

TEST(ResizeTest, ByteCyclesSpanResizes)
{
    Cache c("c", geom());
    c.accumulateEnabledTime(100); // 100 cycles at 8K
    c.resizeTo(32, 4);
    c.accumulateEnabledTime(300); // 200 cycles at 4K
    EXPECT_DOUBLE_EQ(c.byteCycles(), 8192.0 * 100 + 4096.0 * 200);
}

TEST(ResizeDeathTest, IllegalSetCountPanics)
{
    Cache c("c", geom());
    EXPECT_DEATH(c.resizeTo(48, 4), "assertion");  // not power of 2
    EXPECT_DEATH(c.resizeTo(128, 4), "assertion"); // above max
    EXPECT_DEATH(c.resizeTo(16, 4), "assertion");  // below min subarr
}

TEST(ResizeDeathTest, IllegalWayCountPanics)
{
    Cache c("c", geom());
    EXPECT_DEATH(c.resizeTo(64, 0), "assertion");
    EXPECT_DEATH(c.resizeTo(64, 5), "assertion");
}

/**
 * Property sweep: random walks through legal (sets, ways) configs with
 * traffic in between never violate cache invariants, and every flush
 * accounting matches what probe() sees.
 */
class ResizeWalkTest : public testing::TestWithParam<int>
{
};

TEST_P(ResizeWalkTest, RandomResizeWalkKeepsInvariants)
{
    const int seed = GetParam();
    CacheGeometry g{32 * 1024, 4, 32, 1024}; // 256 sets, min 32
    Cache c("c", g);
    std::uint64_t x = static_cast<std::uint64_t>(seed) * 999983 + 7;
    auto rnd = [&]() {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        return x >> 33;
    };
    for (int step = 0; step < 60; ++step) {
        for (int i = 0; i < 500; ++i)
            c.access((rnd() & 0x7fff) << 3, (rnd() & 1) != 0);
        const std::uint64_t sets = 32u << (rnd() % 4); // 32..256
        const unsigned ways = 1 + rnd() % 4;
        c.resizeTo(sets, ways);
        ASSERT_TRUE(c.checkInvariants())
            << "violated at step " << step;
        ASSERT_EQ(c.enabledSets(), sets);
        ASSERT_EQ(c.enabledWays(), ways);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResizeWalkTest,
                         testing::Range(1, 11));

} // namespace rcache
