/**
 * @file
 * StreamingTraceWorkload contract tests: the streamed sequence must
 * be identical to a full materialization for every on-disk format,
 * under every next()/nextBatch()/skip()/reset() interleaving, at a
 * memory footprint that does not scale with the file.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef RCACHE_HAVE_ZLIB
#include <zlib.h>
#endif

#include "workload/profiles.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_format.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

namespace rcache
{

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "rcache_stream_" + name;
}

/** Write an @p n-instruction native-format fixture from @p app. */
std::vector<MicroInst>
writeNativeFixture(const std::string &path, const std::string &app,
                   std::size_t n)
{
    SyntheticWorkload src(profileByName(app));
    std::vector<MicroInst> insts(n);
    src.nextBatch(insts.data(), n);
    std::ofstream f(path);
    for (const MicroInst &m : insts)
        writeTraceLine(f, m);
    return insts;
}

/** One rocksdb block-cache CSV row. */
std::string
rocksdbRow(std::uint64_t block_id, std::uint64_t caller)
{
    std::ostringstream os;
    os << "1," << block_id << ",1,4096,0,cf,0,1," << caller
       << ",0,5,7,100";
    return os.str();
}

void
writeLcsRecord(std::ostream &os, std::uint64_t obj_id)
{
    unsigned char rec[24] = {};
    rec[0] = 1; // u32 timestamp
    for (int i = 0; i < 8; ++i)
        rec[4 + i] = static_cast<unsigned char>(obj_id >> (8 * i));
    rec[12] = 64; // u32 obj_size
    os.write(reinterpret_cast<const char *>(rec), sizeof(rec));
}

std::unique_ptr<StreamingTraceWorkload>
openSpec(const std::string &spec_text)
{
    TraceSpec spec;
    std::string err;
    if (!parseTraceSpec(spec_text, &spec, &err)) {
        ADD_FAILURE() << err;
        return nullptr;
    }
    auto wl = StreamingTraceWorkload::open(spec, spec_text, &err);
    if (!wl)
        ADD_FAILURE() << err;
    return wl;
}

std::vector<MicroInst>
drainSingly(Workload &wl, std::size_t n)
{
    std::vector<MicroInst> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(wl.next());
    return out;
}

std::vector<MicroInst>
drainBatched(Workload &wl, std::size_t n)
{
    static const std::size_t sizes[] = {1, 13, 128, 4095, 4096, 97};
    std::vector<MicroInst> out(n);
    std::size_t filled = 0;
    unsigned turn = 0;
    while (filled < n) {
        const std::size_t want = std::min(
            sizes[turn++ % (sizeof(sizes) / sizeof(sizes[0]))],
            n - filled);
        wl.nextBatch(out.data() + filled, want);
        filled += want;
    }
    return out;
}

} // namespace

TEST(StreamingTraceTest, NativeMatchesMaterializedAcrossWrap)
{
    const std::string path = tempPath("native_wrap.trace");
    // > chunkRecords so refills and the wrap both happen mid-drain.
    const std::size_t len = StreamingTraceWorkload::chunkRecords + 503;
    const auto insts = writeNativeFixture(path, "gcc", len);

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    TraceWorkload ref(insts);
    const std::size_t n = 2 * len + 77;
    const auto got = drainSingly(*wl, n);
    const auto want = drainSingly(ref, n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], want[i]) << "divergence at " << i;
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, BatchedDrainIdenticalToSingly)
{
    const std::string path = tempPath("native_batch.trace");
    const std::size_t len = StreamingTraceWorkload::chunkRecords + 61;
    writeNativeFixture(path, "vortex", len);

    auto a = openSpec("trace:" + path);
    auto b = openSpec("trace:" + path);
    ASSERT_TRUE(a && b);
    const std::size_t n = 2 * len + 19;
    const auto singly = drainSingly(*a, n);
    const auto batched = drainBatched(*b, n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(singly[i], batched[i]) << "divergence at " << i;
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, SkipEqualsDrainAndDiscard)
{
    const std::string path = tempPath("native_skip.trace");
    const std::size_t len = 700;
    const auto insts = writeNativeFixture(path, "ammp", len);
    TraceWorkload ref(insts);
    // Reference stream long enough to cover every skip below.
    const auto expect = drainSingly(ref, 8 * len);

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    std::size_t pos = 0;
    // Mix of small, stride-crossing, wrap-crossing, and multi-lap
    // skips, each followed by reads that must land exactly where a
    // drain-and-discard would.
    const std::size_t skips[] = {0, 1, 3, len - 2, len, len + 1,
                                 2 * len + 5, 13};
    for (std::size_t s : skips) {
        wl->skip(s);
        pos += s;
        for (int k = 0; k < 5; ++k) {
            ASSERT_EQ(wl->next(), expect[pos])
                << "after skip " << s << " at " << pos;
            ++pos;
        }
    }
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, EarlySkipBeforeFirstReadIsExact)
{
    const std::string path = tempPath("native_early_skip.trace");
    const std::size_t len = 400;
    const auto insts = writeNativeFixture(path, "gcc", len);

    // skip() before anything was read forces the length pass; the
    // next read must still be (len + 3) mod len into the stream.
    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    wl->skip(len + 3);
    EXPECT_EQ(wl->next(), insts[3]);
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, ResetRestartsTheStream)
{
    const std::string path = tempPath("native_reset.trace");
    const std::size_t len = 150;
    const auto insts = writeNativeFixture(path, "compress", len);

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    drainSingly(*wl, len / 2);
    wl->reset();
    EXPECT_EQ(wl->next(), insts[0]);
    EXPECT_EQ(wl->next(), insts[1]);
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, RecordsCountsTheTrace)
{
    const std::string path = tempPath("native_count.trace");
    const std::size_t len = StreamingTraceWorkload::checkpointStride +
                            99;
    writeNativeFixture(path, "gcc", len);

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    EXPECT_EQ(wl->records(), len);
    // A second call is served from the cached length.
    EXPECT_EQ(wl->records(), len);
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, RocksdbRowsDecodeToBlockLoads)
{
    const std::string path = tempPath("rocks.csv");
    {
        std::ofstream f(path);
        f << rocksdbRow(100, 8) << '\n';
        f << rocksdbRow(7, 0) << '\n';
        // Extra trailing fields beyond the 13 required are legal.
        f << rocksdbRow(7, 65) << ",extra,fields\n";
    }
    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    EXPECT_EQ(wl->records(), 3u);

    MicroInst m = wl->next();
    EXPECT_EQ(static_cast<int>(m.op), static_cast<int>(OpClass::Load));
    EXPECT_EQ(m.effAddr, 100u * 64);
    EXPECT_EQ(m.pc, 0x400000u + 8 * 4);
    EXPECT_EQ(m.latency, 1);

    m = wl->next();
    EXPECT_EQ(m.effAddr, 7u * 64);
    EXPECT_EQ(m.pc, 0x400000u);

    // caller is masked to 6 bits: 65 & 0x3f == 1.
    m = wl->next();
    EXPECT_EQ(m.pc, 0x400000u + 1 * 4);
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, RocksdbMalformedRowFailsOpenWithLine)
{
    const std::string path = tempPath("rocks_bad.csv");
    {
        std::ofstream f(path);
        f << "not,a,row\n";
    }
    TraceSpec spec;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:" + path, &spec, &err));
    auto wl = StreamingTraceWorkload::open(spec, "t", &err);
    EXPECT_FALSE(wl);
    EXPECT_NE(err.find(path + ":1:"), std::string::npos) << err;
    EXPECT_NE(err.find("rocksdb"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, LcsRecordsDecodeAndWrap)
{
    const std::string path = tempPath("objs.bin");
    const std::size_t len = 600;
    {
        std::ofstream f(path, std::ios::binary);
        for (std::size_t i = 0; i < len; ++i)
            writeLcsRecord(f, 10 + i);
    }
    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    EXPECT_EQ(wl->records(), len);
    for (std::size_t i = 0; i < 2 * len; ++i) {
        const MicroInst m = wl->next();
        ASSERT_EQ(m.effAddr, (10 + i % len) * 64) << "record " << i;
        ASSERT_EQ(static_cast<int>(m.op),
                  static_cast<int>(OpClass::Load));
    }
    // Fixed-width binary skips are exact seeks; land mid-file.
    wl->reset();
    wl->skip(3 * len + 42);
    EXPECT_EQ(wl->next().effAddr, (10 + 42) * 64);
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, LcsTruncationReportsByteOffset)
{
    const std::string path = tempPath("objs_trunc.bin");
    {
        std::ofstream f(path, std::ios::binary);
        writeLcsRecord(f, 1);
        writeLcsRecord(f, 2);
        f.write("shortrec", 8); // 10 stray bytes would also do
    }
    TraceSpec spec;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:" + path, &spec, &err));
    auto wl = StreamingTraceWorkload::open(spec, "t", &err);
    EXPECT_FALSE(wl);
    EXPECT_NE(err.find("truncated 24-byte record"), std::string::npos)
        << err;
    EXPECT_NE(err.find("byte offset 48"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(StreamingTraceTest, MissingFileFailsOpen)
{
    TraceSpec spec;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:/nonexistent/stream.trace",
                               &spec, &err));
    auto wl = StreamingTraceWorkload::open(spec, "t", &err);
    EXPECT_FALSE(wl);
    EXPECT_NE(err.find("cannot open trace file"), std::string::npos)
        << err;
}

TEST(StreamingTraceTest, ConvertRewritesAsNative)
{
    const std::string path = tempPath("convert.csv");
    {
        std::ofstream f(path);
        for (unsigned i = 0; i < 50; ++i)
            f << rocksdbRow(1000 + i, i % 16) << '\n';
    }
    TraceSpec spec;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:" + path, &spec, &err));

    std::ostringstream converted;
    ASSERT_TRUE(convertTraceToNative(spec, converted, 0, &err)) << err;

    std::istringstream back(converted.str());
    std::vector<MicroInst> parsed;
    ASSERT_TRUE(readTraceStrict(back, "converted", parsed, &err))
        << err;
    ASSERT_EQ(parsed.size(), 50u);

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    for (std::size_t i = 0; i < parsed.size(); ++i)
        ASSERT_EQ(parsed[i], wl->next()) << "record " << i;

    // The limit stops the conversion early.
    std::ostringstream limited;
    ASSERT_TRUE(convertTraceToNative(spec, limited, 2, &err)) << err;
    std::istringstream back2(limited.str());
    std::vector<MicroInst> two;
    ASSERT_TRUE(readTraceStrict(back2, "converted", two, &err));
    EXPECT_EQ(two.size(), 2u);
    std::remove(path.c_str());
}

#ifdef RCACHE_HAVE_ZLIB

TEST(StreamingTraceTest, GzipStreamIdenticalToPlain)
{
    ASSERT_TRUE(gzipTraceSupported());
    const std::string plain = tempPath("gz_src.trace");
    const std::size_t len = StreamingTraceWorkload::chunkRecords + 37;
    writeNativeFixture(plain, "gcc", len);

    const std::string gz = tempPath("gz_src.trace.gz");
    {
        std::ifstream in(plain, std::ios::binary);
        std::stringstream all;
        all << in.rdbuf();
        const std::string bytes = all.str();
        gzFile f = gzopen(gz.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(gzwrite(f, bytes.data(),
                          static_cast<unsigned>(bytes.size())),
                  static_cast<int>(bytes.size()));
        gzclose(f);
    }

    auto a = openSpec("trace:" + plain);
    auto b = openSpec("trace:" + gz);
    ASSERT_TRUE(a && b);
    const std::size_t n = 2 * len + 11;
    const auto want = drainSingly(*a, n);
    const auto got = drainSingly(*b, n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], want[i]) << "divergence at " << i;

    // Skips over gzip re-inflate from the start; results must agree
    // with the plain file's.
    a->reset();
    b->reset();
    a->skip(len + 29);
    b->skip(len + 29);
    EXPECT_EQ(a->next(), b->next());
    std::remove(plain.c_str());
    std::remove(gz.c_str());
}

#else // !RCACHE_HAVE_ZLIB

TEST(StreamingTraceTest, GzipRejectedWithoutZlib)
{
    EXPECT_FALSE(gzipTraceSupported());
    TraceSpec spec;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:x.trace.gz", &spec, &err));
    auto wl = StreamingTraceWorkload::open(spec, "t", &err);
    EXPECT_FALSE(wl);
    EXPECT_NE(err.find("zlib"), std::string::npos) << err;
}

#endif // RCACHE_HAVE_ZLIB

TEST(StreamingTraceTest, HundredMegabyteTraceStreamsBounded)
{
    // The bounded-memory contract at real-trace scale: a >100 MB
    // on-disk trace must stream (full length pass + wrapped reads +
    // skips) while the workload's resident footprint stays a small
    // constant — chunk buffer + I/O buffer + sparse seek index.
    const std::string path = tempPath("big.bin");
    const std::uint64_t len = 4'500'000; // 24 B each = 108 MB
    {
        std::ofstream f(path, std::ios::binary);
        std::ostringstream chunk;
        for (std::uint64_t i = 0; i < len; ++i) {
            writeLcsRecord(chunk, i % 100003);
            if ((i & 0xffff) == 0xffff) {
                f << chunk.str();
                chunk.str("");
            }
        }
        f << chunk.str();
        ASSERT_TRUE(f.good());
    }

    auto wl = openSpec("trace:" + path);
    ASSERT_TRUE(wl);
    EXPECT_EQ(wl->records(), len);
    EXPECT_LT(wl->residentBytes(), std::size_t{2} * 1024 * 1024)
        << "streaming footprint scales with the file";

    // Reads and skips across the whole file, including a wrap.
    EXPECT_EQ(wl->next().effAddr, 0u);
    wl->skip(len - 2);
    EXPECT_EQ(wl->next().effAddr, ((len - 1) % 100003) * 64);
    EXPECT_EQ(wl->next().effAddr, 0u); // wrapped
    // Position after the two reads above is 1; two laps plus 7 later
    // the cursor sits at record 8.
    wl->skip(2 * len + 7);
    EXPECT_EQ(wl->next().effAddr, 8u * 64);
    EXPECT_LT(wl->residentBytes(), std::size_t{2} * 1024 * 1024);
    std::remove(path.c_str());
}

} // namespace rcache
