/** @file Tests for the trace file format. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "workload/profiles.hh"
#include "workload/trace_io.hh"

namespace rcache
{

TEST(TraceIoTest, OpCodesRoundTrip)
{
    for (OpClass op : {OpClass::IntAlu, OpClass::FpAlu, OpClass::Load,
                       OpClass::Store, OpClass::Branch}) {
        EXPECT_EQ(static_cast<int>(opClassFromCode(opClassCode(op))),
                  static_cast<int>(op));
    }
}

TEST(TraceIoDeathTest, BadOpCodeFatal)
{
    EXPECT_EXIT(opClassFromCode('Z'), testing::ExitedWithCode(1),
                "bad opcode");
}

TEST(TraceIoTest, WriteThenReadRoundTrips)
{
    SyntheticWorkload src(profileByName("gcc"));
    std::stringstream buf;
    writeTrace(buf, src, 500);

    auto insts = readTrace(buf);
    ASSERT_EQ(insts.size(), 500u);

    // Replaying the source must give identical instructions.
    src.reset();
    for (const auto &got : insts) {
        const MicroInst want = src.next();
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.effAddr, want.effAddr);
        EXPECT_EQ(static_cast<int>(got.op),
                  static_cast<int>(want.op));
        EXPECT_EQ(got.latency, want.latency);
        EXPECT_EQ(got.dep1, want.dep1);
        EXPECT_EQ(got.dep2, want.dep2);
        EXPECT_EQ(got.taken, want.taken);
        if (want.op == OpClass::Branch && want.taken)
            EXPECT_EQ(got.target, want.target);
    }
}

TEST(TraceIoTest, WriteReadWriteIsByteIdentical)
{
    // Stronger identity: serializing the parsed trace again must
    // reproduce the original text byte for byte (no information is
    // lost or reformatted through a round-trip).
    SyntheticWorkload src(profileByName("vortex"));
    std::stringstream first;
    writeTrace(first, src, 300);

    TraceWorkload replay(readTrace(first), "replay");
    std::stringstream second;
    writeTrace(second, replay, 300);

    EXPECT_EQ(first.str(), second.str());
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored)
{
    std::stringstream buf;
    buf << "# a comment\n\nI 400000 0 1 0 0 0\n";
    auto insts = readTrace(buf);
    ASSERT_EQ(insts.size(), 1u);
    EXPECT_EQ(insts[0].pc, 0x400000u);
}

TEST(TraceIoDeathTest, MalformedLineFatal)
{
    std::stringstream buf;
    buf << "L not-a-number\n";
    EXPECT_EXIT(readTrace(buf), testing::ExitedWithCode(1),
                "malformed trace line: trace:1:");
}

TEST(TraceIoDeathTest, MissingFileFatal)
{
    EXPECT_EXIT(loadTraceWorkload("/nonexistent/trace.txt"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoTest, LoadedTraceDrivesWorkload)
{
    SyntheticWorkload src(profileByName("ammp"));
    const std::string path = "/tmp/rcache_trace_test.txt";
    {
        std::ofstream f(path);
        writeTrace(f, src, 100);
    }
    TraceWorkload wl = loadTraceWorkload(path, "recorded");
    EXPECT_EQ(wl.name(), "recorded");
    src.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(wl.next().pc, src.next().pc);
}

} // namespace rcache
