/** @file Tests for the "trace:PATH[:FORMAT]" spec grammar. */

#include <gtest/gtest.h>

#include "workload/trace_format.hh"

namespace rcache
{

TEST(TraceFormatTest, NamesRoundTrip)
{
    for (TraceFormat fmt : {TraceFormat::Native, TraceFormat::Rocksdb,
                            TraceFormat::LcsBin}) {
        TraceFormat back{};
        ASSERT_TRUE(traceFormatByName(traceFormatName(fmt), &back));
        EXPECT_EQ(static_cast<int>(back), static_cast<int>(fmt));
    }
    TraceFormat out{};
    EXPECT_FALSE(traceFormatByName("csv", &out));
    EXPECT_FALSE(traceFormatByName("", &out));
}

TEST(TraceFormatTest, IsTraceSpec)
{
    EXPECT_TRUE(isTraceSpec("trace:foo.txt"));
    EXPECT_TRUE(isTraceSpec("trace:"));
    EXPECT_FALSE(isTraceSpec("gcc"));
    EXPECT_FALSE(isTraceSpec("traces/foo.txt"));
}

TEST(TraceFormatTest, ExplicitFormatWins)
{
    TraceSpec ts;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:blocks.csv:lcs", &ts, &err));
    EXPECT_EQ(ts.path, "blocks.csv");
    EXPECT_EQ(static_cast<int>(ts.format),
              static_cast<int>(TraceFormat::LcsBin));
    EXPECT_FALSE(ts.gzip);
}

TEST(TraceFormatTest, FormatInferredFromExtension)
{
    struct Case
    {
        const char *spec;
        TraceFormat fmt;
        bool gzip;
    };
    const Case cases[] = {
        {"trace:a.txt", TraceFormat::Native, false},
        {"trace:a.trace", TraceFormat::Native, false},
        {"trace:dir.v2/a.csv", TraceFormat::Rocksdb, false},
        {"trace:a.bin", TraceFormat::LcsBin, false},
        {"trace:a.lcs", TraceFormat::LcsBin, false},
        {"trace:a.TXT", TraceFormat::Native, false},
        {"trace:a.trace.gz", TraceFormat::Native, true},
        {"trace:a.csv.gz", TraceFormat::Rocksdb, true},
        {"trace:a.bin.gz", TraceFormat::LcsBin, true},
    };
    for (const Case &c : cases) {
        TraceSpec ts;
        std::string err;
        ASSERT_TRUE(parseTraceSpec(c.spec, &ts, &err))
            << c.spec << ": " << err;
        EXPECT_EQ(static_cast<int>(ts.format),
                  static_cast<int>(c.fmt))
            << c.spec;
        EXPECT_EQ(ts.gzip, c.gzip) << c.spec;
    }
}

TEST(TraceFormatTest, GzWithExplicitFormat)
{
    TraceSpec ts;
    std::string err;
    ASSERT_TRUE(parseTraceSpec("trace:weird.dat.gz:rocksdb", &ts,
                               &err));
    EXPECT_EQ(ts.path, "weird.dat.gz");
    EXPECT_TRUE(ts.gzip);
    EXPECT_EQ(static_cast<int>(ts.format),
              static_cast<int>(TraceFormat::Rocksdb));
}

TEST(TraceFormatTest, MalformedSpecsRejectedWithDiagnostic)
{
    TraceSpec ts;
    std::string err;

    EXPECT_FALSE(parseTraceSpec("gcc", &ts, &err));
    EXPECT_NE(err.find("not a trace spec"), std::string::npos);

    EXPECT_FALSE(parseTraceSpec("trace:", &ts, &err));
    EXPECT_NE(err.find("empty path"), std::string::npos);

    EXPECT_FALSE(parseTraceSpec("trace:a.txt:pdf", &ts, &err));
    EXPECT_NE(err.find("unknown trace format 'pdf'"),
              std::string::npos);

    EXPECT_FALSE(parseTraceSpec("trace:a.dat", &ts, &err));
    EXPECT_NE(err.find("cannot infer trace format"),
              std::string::npos);

    // A .gz over an uninferrable stem still needs a format.
    EXPECT_FALSE(parseTraceSpec("trace:a.dat.gz", &ts, &err));
    EXPECT_NE(err.find("cannot infer"), std::string::npos);
}

} // namespace rcache
