/** @file Tests for the 12 named benchmark profiles. */

#include <gtest/gtest.h>

#include <set>

#include "workload/profiles.hh"

namespace rcache
{

TEST(ProfilesTest, TwelveApplications)
{
    auto suite = spec2000Suite();
    EXPECT_EQ(suite.size(), 12u);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 12u);
    for (const char *n :
         {"ammp", "applu", "apsi", "compress", "gcc", "ijpeg",
          "m88ksim", "su2cor", "swim", "tomcatv", "vortex", "vpr"})
        EXPECT_TRUE(names.count(n)) << n;
}

TEST(ProfilesTest, LookupByName)
{
    auto p = profileByName("gcc");
    EXPECT_EQ(p.name, "gcc");
    EXPECT_EQ(suiteNames().size(), 12u);
}

TEST(ProfilesDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(profileByName("doom"), testing::ExitedWithCode(1),
                "unknown benchmark profile");
}

TEST(ProfilesTest, UniqueSeeds)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : spec2000Suite())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), 12u);
}

TEST(ProfilesTest, MixesAreProperFractions)
{
    for (const auto &p : spec2000Suite()) {
        EXPECT_GT(p.branchFrac, 0.0) << p.name;
        EXPECT_LT(p.loadFrac + p.storeFrac + p.fpFrac, 1.0) << p.name;
        EXPECT_GE(p.loadFrac, 0.0);
        EXPECT_GE(p.storeFrac, 0.0);
    }
}

TEST(ProfilesTest, AllGeneratorsProduceStreams)
{
    for (const auto &p : spec2000Suite()) {
        SyntheticWorkload w(p);
        for (int i = 0; i < 2000; ++i) {
            MicroInst m = w.next();
            if (m.op == OpClass::Load || m.op == OpClass::Store) {
                EXPECT_NE(m.effAddr, 0u) << p.name;
            }
        }
        EXPECT_EQ(w.generated(), 2000u);
    }
}

TEST(ProfilesTest, PaperSmallWorkingSetApps)
{
    // ammp/m88ksim: small constant d-side working sets (paper
    // Fig 5a): total region bytes comfortably under 8K.
    for (const char *n : {"ammp", "m88ksim"}) {
        auto p = profileByName(n);
        std::uint64_t total = 0;
        for (const auto &r : p.regions)
            total += r.bytes;
        EXPECT_LE(total, 8 * 1024u) << n;
        EXPECT_EQ(p.dataPhase.kind, PhaseKind::Constant) << n;
    }
}

TEST(ProfilesTest, PaperLargeICacheApps)
{
    // gcc/tomcatv: i-side working sets near 32K (paper Fig 5b: no
    // static downsizing).
    for (const char *n : {"gcc", "tomcatv"}) {
        auto p = profileByName(n);
        EXPECT_GE(p.codeFootprint, 24 * 1024u) << n;
    }
}

TEST(ProfilesTest, PaperPhaseTaxonomy)
{
    // Section 4.2.1: su2cor is the periodic d-side example; gcc,
    // vortex, vpr vary.
    EXPECT_EQ(profileByName("su2cor").dataPhase.kind,
              PhaseKind::Periodic);
    for (const char *n : {"gcc", "vortex", "vpr"})
        EXPECT_EQ(profileByName(n).dataPhase.kind, PhaseKind::Drift)
            << n;
    // Section 4.2.2: applu, apsi, ijpeg have periodic i-side phases.
    for (const char *n : {"applu", "apsi", "ijpeg"})
        EXPECT_EQ(profileByName(n).codePhase.kind,
                  PhaseKind::Periodic)
            << n;
}

TEST(ProfilesTest, PaperConflictApps)
{
    // apsi/su2cor/vpr need associativity (paper Fig 5): all carry
    // alias sets on both sides.
    for (const char *n : {"apsi", "su2cor", "vpr"}) {
        auto p = profileByName(n);
        EXPECT_GT(p.dataConflictBlocks, 0u) << n;
        EXPECT_GT(p.codeConflictBlocks, 0u) << n;
    }
    // applu: low conflict (selective-ways reads fewer ways there).
    EXPECT_EQ(profileByName("applu").dataConflictBlocks, 0u);
}

TEST(ProfilesTest, SwimStreamsCyclically)
{
    auto p = profileByName("swim");
    ASSERT_FALSE(p.regions.empty());
    EXPECT_GT(p.regions[0].stride, 0u); // cyclic streaming region
    EXPECT_GE(p.regions[0].bytes, 24 * 1024u);
}

} // namespace rcache
