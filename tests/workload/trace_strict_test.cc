/**
 * @file
 * Malformed-line corpus for the strict native trace parser: every
 * class of garbage the old lenient istringstream parser accepted —
 * trailing junk after valid numeric prefixes, out-of-range values
 * silently wrapped into uint8 casts, negative latencies — must now be
 * rejected with a one-line explanation, and errors surfaced through
 * readTraceStrict carry a file:line prefix the CLI reports verbatim.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_io.hh"

namespace rcache
{

namespace
{

struct BadLine
{
    const char *line;
    /** Substring the diagnostic must contain. */
    const char *expect;
};

} // namespace

TEST(TraceStrictTest, MalformedLineCorpusRejected)
{
    const BadLine corpus[] = {
        // Wrong shape.
        {"", "expected at least 7 fields"},
        {"L", "expected at least 7 fields"},
        {"L 400000 10000 1 0 0", "expected at least 7 fields"},
        {"L 400000 10000 1 0 0 0 0 0", "too many fields"},
        // Bad opcodes (single char enforced, unknown letters too).
        {"X 400000 10000 1 0 0 0", "bad opcode"},
        {"LL 400000 10000 1 0 0 0", "bad opcode"},
        {"l 400000 10000 1 0 0 0", "bad opcode"},
        // Trailing junk after a valid numeric prefix: the old parser
        // stopped at the junk and accepted the line.
        {"L 400000zz 10000 1 0 0 0", "bad pc"},
        {"L 400000 10000qq 1 0 0 0", "bad eff-addr"},
        {"L 400000 10000 1x 0 0 0", "bad latency"},
        {"L 400000 10000 1 0x 0 0", "bad dep1"},
        {"L 400000 10000 1 0 0x 0", "bad dep2"},
        // Out of range: 300 used to wrap to 44 in the uint8 cast, and
        // 17-hex-digit addresses wrapped modulo 2^64.
        {"L 400000 10000 300 0 0 0", "latency out of range"},
        {"L 400000 10000 1 256 0 0", "dep1 out of range"},
        {"L 400000 10000 1 0 999 0", "dep2 out of range"},
        {"L 10000000000000000 10000 1 0 0 0", "pc out of range"},
        {"L 400000 fffffffffffffffff 1 0 0 0",
         "eff-addr out of range"},
        // Negative values: istringstream >> unsigned wrapped these.
        {"L 400000 10000 -1 0 0 0", "bad latency"},
        {"L 400000 10000 1 -2 0 0", "bad dep1"},
        // Taken flag must be exactly 0 or 1.
        {"B 400000 0 1 0 0 2 400040", "bad taken flag"},
        {"B 400000 0 1 0 0 yes", "bad taken flag"},
        // Branch target rules.
        {"B 400000 0 1 0 0 1", "missing its target"},
        {"B 400000 0 1 0 0 1 40zz40", "bad target"},
        {"L 400000 10000 1 0 0 0 400040", "trailing junk"},
        // Hex fields reject 0x prefixes and decimal-only junk alike.
        {"L 0x400000 10000 1 0 0 0", "bad pc"},
        {"L not-a-number 10000 1 0 0 0", "bad pc"},
    };

    for (const BadLine &c : corpus) {
        MicroInst m;
        std::string why;
        EXPECT_FALSE(parseTraceLine(c.line, m, &why))
            << "accepted: " << c.line;
        EXPECT_NE(why.find(c.expect), std::string::npos)
            << "line '" << c.line << "' diagnostic '" << why
            << "' lacks '" << c.expect << "'";
    }
}

TEST(TraceStrictTest, GoodLinesStillParse)
{
    MicroInst m;
    std::string why;

    ASSERT_TRUE(parseTraceLine("L 400000 dead0 4 1 2 0", m, &why))
        << why;
    EXPECT_EQ(m.op, OpClass::Load);
    EXPECT_EQ(m.pc, 0x400000u);
    EXPECT_EQ(m.effAddr, 0xdead0u);
    EXPECT_EQ(m.latency, 4);
    EXPECT_EQ(m.dep1, 1);
    EXPECT_EQ(m.dep2, 2);
    EXPECT_FALSE(m.taken);
    EXPECT_EQ(m.target, 0u);

    ASSERT_TRUE(parseTraceLine("B 400000 0 1 0 0 1 400040", m, &why))
        << why;
    EXPECT_EQ(m.op, OpClass::Branch);
    EXPECT_TRUE(m.taken);
    EXPECT_EQ(m.target, 0x400040u);

    // Boundary values are in range, not junk.
    ASSERT_TRUE(
        parseTraceLine("I ffffffffffffffff 0 255 255 255 0", m, &why))
        << why;
    EXPECT_EQ(m.pc, ~std::uint64_t{0});
    EXPECT_EQ(m.latency, 255);

    // Extra whitespace between fields is fine.
    ASSERT_TRUE(parseTraceLine("  S  400000\t10000  1 0 0 0 ", m,
                               &why))
        << why;
    EXPECT_EQ(m.op, OpClass::Store);
}

TEST(TraceStrictTest, StrictReaderReportsFileAndLine)
{
    std::stringstream buf;
    buf << "# header\n"
        << "L 400000 10000 1 0 0 0\n"
        << "L 400000 10000 300 0 0 0\n";
    std::vector<MicroInst> out;
    std::string err;
    EXPECT_FALSE(readTraceStrict(buf, "demo.txt", out, &err));
    EXPECT_NE(err.find("demo.txt:3: "), std::string::npos) << err;
    EXPECT_NE(err.find("latency out of range"), std::string::npos)
        << err;
}

TEST(TraceStrictTest, StrictReaderAcceptsCleanStream)
{
    std::stringstream buf;
    buf << "# rcache trace v1\n"
        << "\n"
        << "I 400000 0 1 0 0 0\n"
        << "B 400004 0 1 0 0 1 400000\n";
    std::vector<MicroInst> out;
    std::string err;
    ASSERT_TRUE(readTraceStrict(buf, "demo.txt", out, &err)) << err;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].target, 0x400000u);
}

} // namespace rcache
