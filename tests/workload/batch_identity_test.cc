/**
 * @file
 * Batched streaming contract tests: Workload::nextBatch must be
 * bit-identical to the same number of next() calls, for every
 * generator and any batch-size mix, and TraceWorkload must reject an
 * empty trace instead of dividing by zero in skip().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workload/profiles.hh"
#include "workload/synthetic.hh"
#include "workload/workload.hh"

namespace rcache
{

namespace
{

/** Pull @p n instructions one at a time. */
std::vector<MicroInst>
drainSingly(Workload &wl, std::size_t n)
{
    std::vector<MicroInst> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(wl.next());
    return out;
}

/** Pull @p n instructions through nextBatch with a mix of batch
 *  sizes, including 1 and sizes around workloadBatchSize. */
std::vector<MicroInst>
drainBatched(Workload &wl, std::size_t n)
{
    static const std::size_t sizes[] = {
        1, 7, workloadBatchSize - 1, workloadBatchSize, 33,
    };
    std::vector<MicroInst> out(n);
    std::size_t filled = 0;
    unsigned turn = 0;
    while (filled < n) {
        const std::size_t want = std::min(
            sizes[turn++ % (sizeof(sizes) / sizeof(sizes[0]))],
            n - filled);
        wl.nextBatch(out.data() + filled, want);
        filled += want;
    }
    return out;
}

/** A workload that only implements next(), to exercise the default
 *  nextBatch. */
class CountingWorkload : public Workload
{
  public:
    MicroInst
    next() override
    {
        MicroInst i;
        i.pc = 0x1000 + 4 * n_;
        i.effAddr = n_ * 64;
        i.op = (n_ % 3 == 0) ? OpClass::Load : OpClass::IntAlu;
        ++n_;
        return i;
    }
    void reset() override { n_ = 0; }
    std::string name() const override { return "counting"; }

  private:
    std::uint64_t n_ = 0;
};

} // namespace

TEST(BatchIdentityTest, SyntheticAllProfilesMatchPerInstStream)
{
    constexpr std::size_t n = 30000;
    for (const BenchmarkProfile &profile : spec2000Suite()) {
        SyntheticWorkload singly(profile);
        SyntheticWorkload batched(profile);
        const auto a = drainSingly(singly, n);
        const auto b = drainBatched(batched, n);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(a[i], b[i])
                << profile.name << ": divergence at instruction " << i;
        }
    }
}

TEST(BatchIdentityTest, SyntheticBatchThenSinglyContinuesStream)
{
    // Mixing the two drain styles mid-stream must not fork the
    // sequence either.
    const BenchmarkProfile profile = profileByName("gcc");
    SyntheticWorkload reference(profile);
    SyntheticWorkload mixed(profile);

    const auto expect = drainSingly(reference, 4096);

    MicroInst buf[workloadBatchSize];
    std::vector<MicroInst> got;
    while (got.size() < 4096) {
        if (got.size() % 2 == 0 && got.size() + 100 <= 4096) {
            mixed.nextBatch(buf, 100);
            got.insert(got.end(), buf, buf + 100);
        } else {
            got.push_back(mixed.next());
        }
    }
    got.resize(4096);
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(expect[i], got[i]) << "divergence at " << i;
}

TEST(BatchIdentityTest, TraceWorkloadBatchWrapsAround)
{
    std::vector<MicroInst> insts(10);
    for (unsigned i = 0; i < insts.size(); ++i) {
        insts[i].pc = 0x4000 + 4 * i;
        insts[i].latency = static_cast<std::uint8_t>(i + 1);
    }
    TraceWorkload singly(insts);
    TraceWorkload batched(insts);
    const auto a = drainSingly(singly, 64);
    const auto b = drainBatched(batched, 64);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "divergence at " << i;
}

TEST(BatchIdentityTest, TraceWorkloadSkipEqualsDrainAndDiscard)
{
    // Property: skip(n) followed by a read lands exactly where n
    // discarded next() calls would, for skips below, at, and beyond
    // the trace length (multi-lap wraparound included), interleaved
    // with batched reads.
    std::vector<MicroInst> insts(17);
    for (unsigned i = 0; i < insts.size(); ++i) {
        insts[i].pc = 0x5000 + 4 * i;
        insts[i].effAddr = 64 * i;
    }
    TraceWorkload ref(insts);
    const auto expect = drainSingly(ref, 40 * insts.size());

    TraceWorkload wl(insts);
    std::size_t pos = 0;
    const std::size_t skips[] = {0,  1,  16, 17, 18,
                                 35, 170, 3, 17 * 7 + 5};
    MicroInst buf[8];
    for (std::size_t s : skips) {
        wl.skip(s);
        pos += s;
        // One single read, then a batch, both position-exact.
        ASSERT_EQ(wl.next(), expect[pos]) << "after skip " << s;
        ++pos;
        wl.nextBatch(buf, 8);
        for (unsigned k = 0; k < 8; ++k)
            ASSERT_EQ(buf[k], expect[pos + k])
                << "after skip " << s << " batch index " << k;
        pos += 8;
    }
}

TEST(BatchIdentityTest, DefaultNextBatchMatchesNext)
{
    CountingWorkload singly, batched;
    const auto a = drainSingly(singly, 500);
    const auto b = drainBatched(batched, 500);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "divergence at " << i;
}

TEST(TraceWorkloadDeathTest, EmptyTraceIsRejected)
{
    EXPECT_EXIT(TraceWorkload(std::vector<MicroInst>{}),
                ::testing::ExitedWithCode(1),
                "empty instruction trace");
}

} // namespace rcache
