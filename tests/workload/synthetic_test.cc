/** @file Unit and property tests for the synthetic workload
 *  generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/synthetic.hh"

namespace rcache
{

namespace
{

BenchmarkProfile
simpleProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.loadFrac = 0.3;
    p.storeFrac = 0.1;
    p.branchFrac = 0.2;
    p.fpFrac = 0.1;
    p.regions = {{8 * 1024, 1.0, 0}};
    p.codeFootprint = 4 * 1024;
    p.seed = 7;
    return p;
}

} // namespace

TEST(SyntheticTest, DeterministicAcrossInstances)
{
    SyntheticWorkload a(simpleProfile()), b(simpleProfile());
    for (int i = 0; i < 10000; ++i) {
        MicroInst x = a.next(), y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.effAddr, y.effAddr);
        EXPECT_EQ(static_cast<int>(x.op), static_cast<int>(y.op));
        EXPECT_EQ(x.taken, y.taken);
    }
}

TEST(SyntheticTest, ResetReplaysIdenticalStream)
{
    SyntheticWorkload w(simpleProfile());
    std::vector<Addr> first;
    for (int i = 0; i < 5000; ++i)
        first.push_back(w.next().pc);
    w.reset();
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(w.next().pc, first[i]);
}

TEST(SyntheticTest, MixMatchesFractions)
{
    SyntheticWorkload w(simpleProfile());
    std::map<OpClass, int> count;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++count[w.next().op];
    // Branch fraction controls basic-block length.
    EXPECT_NEAR(static_cast<double>(count[OpClass::Branch]) / n, 0.2,
                0.04);
    // Non-branch instructions split by the renormalized mix.
    EXPECT_NEAR(static_cast<double>(count[OpClass::Load]) / n,
                0.3 * 0.8, 0.04);
    EXPECT_NEAR(static_cast<double>(count[OpClass::Store]) / n,
                0.1 * 0.8, 0.03);
}

TEST(SyntheticTest, CodeStaysWithinFootprint)
{
    auto p = simpleProfile();
    p.codeConflictFrac = 0; // contiguous code only
    SyntheticWorkload w(p);
    for (int i = 0; i < 50000; ++i) {
        MicroInst m = w.next();
        EXPECT_GE(m.pc, 0x00400000u);
        EXPECT_LT(m.pc, 0x00400000u + p.codeFootprint);
    }
}

TEST(SyntheticTest, DataStaysWithinRegions)
{
    auto p = simpleProfile();
    SyntheticWorkload w(p);
    for (int i = 0; i < 50000; ++i) {
        MicroInst m = w.next();
        if (m.op == OpClass::Load || m.op == OpClass::Store) {
            EXPECT_GE(m.effAddr, 0x10000000u);
            EXPECT_LT(m.effAddr, 0x10000000u + 8 * 1024u);
        }
    }
}

TEST(SyntheticTest, ConflictAliasesSixteenKApart)
{
    auto p = simpleProfile();
    p.dataConflictFrac = 0.5;
    p.dataConflictBlocks = 4;
    SyntheticWorkload w(p);
    std::set<Addr> alias;
    for (int i = 0; i < 50000; ++i) {
        MicroInst m = w.next();
        if ((m.op == OpClass::Load || m.op == OpClass::Store) &&
            m.effAddr >= 0x40000000u) {
            alias.insert(m.effAddr);
        }
    }
    EXPECT_EQ(alias.size(), 4u);
    for (Addr a : alias)
        EXPECT_EQ((a - 0x40000000u) % SyntheticWorkload::aliasStride,
                  0u);
}

TEST(SyntheticTest, HotSkewConcentratesAccesses)
{
    auto p = simpleProfile();
    p.regions[0].hotFrac = 0.25;
    p.regions[0].hotWeight = 0.8;
    SyntheticWorkload w(p);
    int hot = 0, total = 0;
    const Addr hot_end =
        0x10000000u + static_cast<Addr>(8 * 1024 * 0.25);
    for (int i = 0; i < 200000; ++i) {
        MicroInst m = w.next();
        if (m.op == OpClass::Load || m.op == OpClass::Store) {
            ++total;
            hot += m.effAddr < hot_end;
        }
    }
    // 80% directed + 25% of the remaining uniform traffic.
    EXPECT_NEAR(static_cast<double>(hot) / total, 0.85, 0.05);
}

TEST(SyntheticTest, PeriodicPhaseScalesFootprint)
{
    auto p = simpleProfile();
    p.codePhase = {PhaseKind::Periodic, 0.5, 1.0, 10000, 0.5};
    SyntheticWorkload w(p);
    // First half-period: hi factor.
    EXPECT_EQ(w.currentCodeFootprint(), 4 * 1024u);
    for (int i = 0; i < 6000; ++i)
        w.next();
    EXPECT_EQ(w.currentCodeFootprint(), 2 * 1024u);
}

TEST(SyntheticTest, PeriodicDutyCycle)
{
    auto p = simpleProfile();
    p.dataPhase = {PhaseKind::Periodic, 0.5, 1.0, 10000, 0.2};
    SyntheticWorkload w(p);
    int hi = 0;
    for (int i = 0; i < 10000; ++i) {
        hi += w.currentRegionBytes(0) == 8 * 1024u;
        w.next();
    }
    EXPECT_NEAR(hi / 10000.0, 0.2, 0.02);
}

TEST(SyntheticTest, UnphasedRegionIgnoresSchedule)
{
    auto p = simpleProfile();
    p.regions.push_back({2 * 1024, 0.5, 0});
    p.regions[1].phased = false;
    p.dataPhase = {PhaseKind::Periodic, 0.25, 1.0, 1000, 0.5};
    SyntheticWorkload w(p);
    for (int i = 0; i < 3000; ++i) {
        EXPECT_EQ(w.currentRegionBytes(1), 2 * 1024u);
        w.next();
    }
}

TEST(SyntheticTest, DriftStaysWithinBounds)
{
    auto p = simpleProfile();
    p.dataPhase = {PhaseKind::Drift, 0.5, 1.5, 1000, 0.5};
    SyntheticWorkload w(p);
    for (int i = 0; i < 50000; ++i) {
        auto bytes = w.currentRegionBytes(0);
        EXPECT_GE(bytes, 4 * 1024u - 64);
        EXPECT_LE(bytes, 12 * 1024u + 64);
        w.next();
    }
}

TEST(SyntheticTest, DriftActuallyMoves)
{
    auto p = simpleProfile();
    p.dataPhase = {PhaseKind::Drift, 0.5, 1.5, 1000, 0.5};
    SyntheticWorkload w(p);
    std::set<std::uint64_t> sizes;
    for (int i = 0; i < 20000; ++i) {
        sizes.insert(w.currentRegionBytes(0));
        w.next();
    }
    EXPECT_GT(sizes.size(), 5u);
}

TEST(SyntheticTest, BranchTargetsMatchNextPc)
{
    SyntheticWorkload w(simpleProfile());
    MicroInst prev = w.next();
    for (int i = 0; i < 20000; ++i) {
        MicroInst cur = w.next();
        if (prev.op == OpClass::Branch && prev.taken) {
            EXPECT_EQ(cur.pc, prev.target);
        }
        prev = cur;
    }
}

TEST(SyntheticTest, SequentialPcWithinBlocks)
{
    SyntheticWorkload w(simpleProfile());
    MicroInst prev = w.next();
    for (int i = 0; i < 20000; ++i) {
        MicroInst cur = w.next();
        const bool was_wrap =
            cur.pc < prev.pc; // footprint wrap-around
        if (prev.op != OpClass::Branch && !was_wrap) {
            EXPECT_EQ(cur.pc, prev.pc + 4) << "at " << i;
        }
        prev = cur;
    }
}

TEST(SyntheticTest, DependencesWithinMaxDistance)
{
    auto p = simpleProfile();
    p.maxDepDist = 6;
    SyntheticWorkload w(p);
    for (int i = 0; i < 50000; ++i) {
        MicroInst m = w.next();
        EXPECT_LE(m.dep1, 6);
        if (m.dep2) {
            EXPECT_LE(m.dep2, 6);
        }
    }
}

TEST(SyntheticTest, FpLatencyApplied)
{
    auto p = simpleProfile();
    p.fpLatency = 9;
    SyntheticWorkload w(p);
    for (int i = 0; i < 20000; ++i) {
        MicroInst m = w.next();
        if (m.op == OpClass::FpAlu) {
            EXPECT_EQ(m.latency, 9);
        }
    }
}

TEST(SyntheticDeathTest, EmptyRegionsFatal)
{
    BenchmarkProfile p = simpleProfile();
    p.regions.clear();
    EXPECT_DEATH(SyntheticWorkload{p}, "assertion");
}

TEST(TraceWorkloadTest, CyclesAndResets)
{
    MicroInst a, b;
    a.pc = 0x100;
    b.pc = 0x200;
    TraceWorkload w({a, b}, "t");
    EXPECT_EQ(w.next().pc, 0x100u);
    EXPECT_EQ(w.next().pc, 0x200u);
    EXPECT_EQ(w.next().pc, 0x100u); // wraps
    w.reset();
    EXPECT_EQ(w.next().pc, 0x100u);
    EXPECT_EQ(w.name(), "t");
}

} // namespace rcache
