# Strict-parse contract tests for the rcache-sim CLI, run as a ctest
# script against the real binary:
#
#   cmake -DRCACHE_SIM=<path-to-rcache-sim> -P cli_strict_parse.cmake
#
# Every rejection must exit nonzero; the unknown-subcommand /
# unknown-option / unknown-app rejections must additionally print
# exactly one diagnostic line so scripts and CI logs stay readable.

if(NOT RCACHE_SIM)
  message(FATAL_ERROR "pass -DRCACHE_SIM=<path to rcache-sim>")
endif()

# Rejection with a substring match on stderr.
function(check_rejects expect)
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(SEND_ERROR
            "expected nonzero exit from: rcache-sim ${ARGN}")
  endif()
  if(NOT err MATCHES "${expect}")
    message(SEND_ERROR
            "missing diagnostic '${expect}' from: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

# Rejection whose diagnostic must be a single line.
function(check_rejects_oneline expect)
  check_rejects("${expect}" ${ARGN})
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(REGEX REPLACE "\n+$" "" stripped "${err}")
  if(stripped MATCHES "\n")
    message(SEND_ERROR
            "diagnostic is not one line for: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

function(check_accepts)
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(SEND_ERROR
            "expected exit 0 from: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

# ---- unknown subcommands / options / apps: one-line diagnostics
check_rejects_oneline("unknown subcommand 'frobnicate'" frobnicate)
check_rejects_oneline("unknown option '--bogus' for 'sweep'"
                      sweep --bogus 1)
check_rejects_oneline("unknown option '--progress' for 'run'"
                      run --app ammp --progress)
check_rejects_oneline("unknown app 'nosuchapp'" run --app nosuchapp)
check_rejects_oneline("unknown app 'nosuchapp'"
                      sweep --apps ammp,nosuchapp)
check_rejects_oneline("unexpected argument 'positional'"
                      sweep positional)

# ---- strict value parsing
check_rejects_oneline("non-negative integer" sweep --insts abc)
check_rejects_oneline("must be > 0" run --app ammp --insts 0)
check_rejects_oneline("needs a value" sweep --apps)
check_rejects_oneline("unknown organization 'bogus'"
                      sweep --orgs bogus)
check_rejects_oneline("unknown strategy 'bogus'"
                      sweep --strategies bogus)
check_rejects_oneline("at least one" sweep --apps ",")
check_rejects_oneline("wants icache|dcache|both" sweep --side left)

# ---- sampling flags
check_rejects_oneline("wants a period > 0"
                      run --app ammp --sample 0)
check_rejects_oneline("need --sample"
                      run --app ammp --sample-detail 100)
check_rejects_oneline("must fit in the sample period"
                      run --app ammp --sample 1000
                      --sample-detail 900 --sample-warmup 200)
check_rejects_oneline("detail must be > 0"
                      run --app ammp --sample 1000 --sample-detail 0)
# Overflow-safe shape check: a warmup near 2^64 must be rejected, not
# wrapped into a tiny sum that passes and hangs the run.
check_rejects_oneline("must fit in the sample period"
                      run --app ammp --sample 1000
                      --sample-warmup 18446744073709551000)

# ---- happy paths still exit 0
check_accepts(list-apps)
check_accepts(--help)
check_accepts(sweep --help)
check_accepts(run --app ammp --insts 20000
              --sample 10000 --sample-detail 2000 --sample-warmup 1000)
