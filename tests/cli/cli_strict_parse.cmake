# Strict-parse contract tests for the rcache-sim CLI, run as a ctest
# script against the real binary:
#
#   cmake -DRCACHE_SIM=<path-to-rcache-sim> -P cli_strict_parse.cmake
#
# Every rejection must exit nonzero; the unknown-subcommand /
# unknown-option / unknown-app rejections must additionally print
# exactly one diagnostic line so scripts and CI logs stay readable.

if(NOT RCACHE_SIM)
  message(FATAL_ERROR "pass -DRCACHE_SIM=<path to rcache-sim>")
endif()

# Rejection with a substring match on stderr.
function(check_rejects expect)
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(SEND_ERROR
            "expected nonzero exit from: rcache-sim ${ARGN}")
  endif()
  if(NOT err MATCHES "${expect}")
    message(SEND_ERROR
            "missing diagnostic '${expect}' from: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

# Rejection whose diagnostic must be a single line.
function(check_rejects_oneline expect)
  check_rejects("${expect}" ${ARGN})
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(REGEX REPLACE "\n+$" "" stripped "${err}")
  if(stripped MATCHES "\n")
    message(SEND_ERROR
            "diagnostic is not one line for: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

function(check_accepts)
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(SEND_ERROR
            "expected exit 0 from: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
endfunction()

# Exit 0 AND stdout contains a substring (the generated --help text).
function(check_prints expect)
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(SEND_ERROR
            "expected exit 0 from: rcache-sim ${ARGN}"
            " — stderr was: ${err}")
  endif()
  if(NOT out MATCHES "${expect}")
    message(SEND_ERROR
            "missing '${expect}' on stdout from: rcache-sim ${ARGN}"
            " — stdout was: ${out}")
  endif()
endfunction()

# ---- unknown subcommands / options / apps: one-line diagnostics
check_rejects_oneline("unknown subcommand 'frobnicate'" frobnicate)
check_rejects_oneline("unknown option '--bogus' for 'sweep'"
                      sweep --bogus 1)
check_rejects_oneline("unknown option '--progress' for 'run'"
                      run --app ammp --progress)
check_rejects_oneline("unknown app 'nosuchapp'" run --app nosuchapp)
check_rejects_oneline("unknown app 'nosuchapp'"
                      sweep --apps ammp,nosuchapp)
check_rejects_oneline("unexpected argument 'positional'"
                      sweep positional)

# ---- strict value parsing
check_rejects_oneline("non-negative integer" sweep --insts abc)
check_rejects_oneline("must be > 0" run --app ammp --insts 0)
check_rejects_oneline("needs a value" sweep --apps)
check_rejects_oneline("unknown organization 'bogus'"
                      sweep --orgs bogus)
check_rejects_oneline("unknown strategy 'bogus'"
                      sweep --strategies bogus)
check_rejects_oneline("at least one" sweep --apps ",")
check_rejects_oneline("wants icache|dcache|both" sweep --side left)

# ---- multi-core flags
check_rejects_oneline("wants 1..64" sweep --apps ammp --cores 0)
check_rejects_oneline("wants 1..64" run --app ammp --cores 65)
check_rejects_oneline("--quantum must be > 0"
                      run --app ammp --cores 2 --quantum 0)
check_rejects_oneline("unknown app 'nosuch'"
                      run --mix gcc+nosuch)
check_rejects_oneline("empty component" run --mix gcc+)
check_rejects_oneline("--mix conflicts with --app"
                      run --app ammp --mix gcc+swim)
check_rejects_oneline("--mix conflicts with --apps"
                      sweep --apps ammp --mix gcc+swim)
check_rejects_oneline("need --cores >= 2"
                      run --mix gcc+swim --cores 1 --insts 1000)
check_rejects_oneline("need --cores >= 3"
                      run --mix gcc+swim+ammp --cores 2 --insts 1000)
check_rejects_oneline("--quantum needs --cores > 1"
                      run --app gcc --quantum 1000 --insts 1000)
check_rejects_oneline("no effect under a sampled engine"
                      run --mix gcc+swim --sample 20000
                      --quantum 1000 --insts 40000)
check_rejects_oneline("no effect under a sampled engine"
                      sweep --mix gcc+swim --sample 20000
                      --quantum 1000 --insts 40000)
check_rejects_oneline("no effect under a sampled engine"
                      run --mix gcc+swim --engine
                      sampled:interval=20000
                      --quantum 1000 --insts 40000)
check_rejects_oneline("unknown option '--cores' for 'replay'"
                      replay --trace t.bin --cores 2)
# A multi-program mix must never silently run only its first
# component: sweeping it without enough cores is rejected up front.
check_rejects_oneline("set \\[cores\\] count or a cores axis"
                      sweep --apps gcc+m88ksim --insts 1000)
check_rejects_oneline("set \\[cores\\] count or a cores axis"
                      sweep --mix gcc+swim --cores 1 --insts 1000)

# ---- engine selection
check_rejects_oneline("unknown engine 'bogus'"
                      run --app ammp --engine bogus)
check_rejects_oneline("takes no options"
                      run --app ammp --engine analytic:detail=5)
check_rejects_oneline("unknown engine option 'frob'"
                      run --app ammp --engine sampled:frob=1)
check_rejects_oneline("duplicate engine option 'interval'"
                      run --app ammp
                      --engine sampled:interval=10,interval=20)
check_rejects_oneline("need interval=N"
                      run --app ammp --engine sampled:detail=100)
check_rejects_oneline("'interval' must be > 0"
                      run --app ammp --engine sampled:interval=0)
check_rejects_oneline("must fit in the sample period"
                      run --app ammp
                      --engine sampled:interval=1000,detail=900,warmup=200)
check_rejects_oneline("conflict with --engine"
                      run --app ammp --engine analytic --sample 1000)
# The analytic engine's validity envelope is enforced up front.
check_rejects_oneline("single core only"
                      run --mix gcc+swim --engine analytic
                      --insts 1000)
check_rejects_oneline("prices static geometries only"
                      run --app ammp --engine analytic
                      --dl1-org ways --dl1-strategy dynamic
                      --insts 1000)

# ---- deprecated sampling flags (accepted, mapped, warned)
check_rejects_oneline("wants a period > 0"
                      run --app ammp --sample 0)
check_rejects_oneline("need --sample"
                      run --app ammp --sample-detail 100)
check_rejects_oneline("must fit in the sample period"
                      run --app ammp --sample 1000
                      --sample-detail 900 --sample-warmup 200)
check_rejects_oneline("detail must be > 0"
                      run --app ammp --sample 1000 --sample-detail 0)
# Overflow-safe shape check: a warmup near 2^64 must be rejected, not
# wrapped into a tiny sum that passes and hangs the run.
check_rejects_oneline("must fit in the sample period"
                      run --app ammp --sample 1000
                      --sample-warmup 18446744073709551000)

# ---- scenario subcommand + sweep scenario/shard/resume flags
check_rejects_oneline("scenario needs a mode" scenario)
check_rejects_oneline("unknown scenario mode 'frob'" scenario frob)
check_rejects_oneline("needs at least one FILE" scenario check)
check_rejects_oneline("cannot open scenario file"
                      scenario check no-such-file.scn)
check_rejects_oneline("shard wants i/N"
                      sweep --apps ammp --shard 2/2)
check_rejects_oneline("conflicts with --scenario"
                      sweep --scenario x.scn --orgs ways)
check_rejects_oneline("--resume supports only --format csv"
                      sweep --apps ammp --resume out.csv
                      --format json)
check_rejects_oneline("drop --out"
                      sweep --apps ammp --resume a.csv --out b.csv)

# A malformed scenario file gets exactly one file:line diagnostic.
set(BAD_SCN "${CMAKE_CURRENT_BINARY_DIR}/bad_cli_test.scn")
file(WRITE ${BAD_SCN} "[scenario]\nname = bad\n[axes]\nnope = 1\n")
check_rejects_oneline("bad_cli_test.scn:4: axis 'nope'"
                      scenario check ${BAD_SCN})
file(REMOVE ${BAD_SCN})

# ---- bench subcommand
check_rejects_oneline("unknown option '--bogus' for 'bench'"
                      bench --bogus 1)
check_rejects_oneline("must be > 0" bench --insts 0)
check_rejects_oneline("must be > 0" bench --reps 0)
check_rejects_oneline("non-negative integer" bench --reps abc)
check_rejects_oneline("no benchmark matches filter"
                      bench --filter nosuchbench)
check_prints("detailed_ooo" bench --list)
check_prints("--out-dir" bench --help)

# ---- happy paths still exit 0
check_accepts(list-apps)
check_accepts(--help)
check_accepts(run --app ammp --insts 20000
              --sample 10000 --sample-detail 2000 --sample-warmup 1000)
check_accepts(run --app ammp --insts 20000 --engine analytic)
check_accepts(run --app ammp --insts 20000
              --engine sampled:interval=10000,detail=2000,warmup=1000)
check_accepts(sweep --apps ammp --insts 20000 --engine analytic)

# ---- per-subcommand --help is generated from the option allowlists
check_prints("--scenario" sweep --help)
check_prints("--shard" sweep --help)
check_prints("--il1-org" run --help)
check_prints("--engine" run --help)
check_prints("--engine" sweep --help)
check_prints("deprecated" run --help)
check_prints("--trace" replay --help)
check_prints("design-space sweep" sweep --help)
check_prints("check FILE" scenario --help)
check_accepts(list-apps --help)

# A good scenario file round-trips through check and print.
set(GOOD_SCN "${CMAKE_CURRENT_BINARY_DIR}/good_cli_test.scn")
file(WRITE ${GOOD_SCN}
     "[scenario]\nname = good\n[axes]\norg = ways,sets\n")
check_prints("good_cli_test.scn: ok" scenario check ${GOOD_SCN})
check_prints("org = ways,sets" scenario print ${GOOD_SCN})
file(REMOVE ${GOOD_SCN})

# ---- tune / merge / claim orchestration flags
# Rejection that must exit with status 2 exactly (the documented
# usage/IO code) and print one diagnostic line.
function(check_exit2_oneline expect)
  check_rejects_oneline("${expect}" ${ARGN})
  execute_process(COMMAND ${RCACHE_SIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(SEND_ERROR
            "expected exit 2 from: rcache-sim ${ARGN} — got ${rc}")
  endif()
endfunction()

check_rejects_oneline("unknown option '--bogus' for 'tune'"
                      tune --bogus 1)
check_rejects_oneline("tune needs --scenario" tune)
check_rejects_oneline("unknown option '--frob' for 'merge'"
                      merge --frob)
check_rejects_oneline("merge needs shard CSVs or a manifest" merge)
check_rejects_oneline("option '--out' needs a value" merge --out)
check_rejects_oneline("needs --claim DIR"
                      sweep --apps ammp --shards 2)
check_rejects_oneline("needs --claim DIR"
                      sweep --apps ammp --lease-timeout 60)
check_rejects_oneline("--out conflicts with --claim"
                      sweep --claim nowhere --out x.csv)
check_rejects_oneline("--resume conflicts with --claim"
                      sweep --claim nowhere --resume x.csv)
check_rejects_oneline("grid flags conflict with --scenario"
                      sweep --claim nowhere --scenario x.scn
                      --apps ammp)
check_rejects_oneline("no manifest in 'nowhere'"
                      sweep --claim nowhere)

# A tune on a scenario without mode = adaptive names the fix; the
# claim knobs demand --claim; resume and claim are exclusive.
set(EXH_SCN "${CMAKE_CURRENT_BINARY_DIR}/tune_exhaustive_cli.scn")
file(WRITE ${EXH_SCN}
     "[scenario]\nname = exh\n[axes]\norg = ways,sets\n")
check_rejects_oneline("add 'mode = adaptive'"
                      tune --scenario ${EXH_SCN})
set(ADA_SCN "${CMAKE_CURRENT_BINARY_DIR}/tune_adaptive_cli.scn")
file(WRITE ${ADA_SCN}
     "[scenario]\nname = ada\n[axes]\norg = ways,sets\n"
     "[search]\nmode = adaptive\n")
check_rejects_oneline("--shards/--lease-timeout need --claim DIR"
                      tune --scenario ${ADA_SCN} --shards 2)
check_rejects_oneline("--resume and --claim are mutually exclusive"
                      tune --scenario ${ADA_SCN} --resume a.log
                      --claim d)
file(REMOVE ${EXH_SCN} ${ADA_SCN})
check_prints("--claim" sweep --help)
check_prints("--scenario" tune --help)
check_prints("CLAIM_DIR" merge --help)

# ---- missing/empty artifact inputs: one "path:line:" diagnostic,
# exit 2 (never a stack trace or a silent empty report)
check_exit2_oneline("no-such-artifact.jsonl:1: cannot open"
                    inspect --events no-such-artifact.jsonl)
check_exit2_oneline("no-such-timeline.jsonl:1: cannot open"
                    inspect --timeline no-such-timeline.jsonl)
check_exit2_oneline("no-such-shard.csv:1: cannot open"
                    merge no-such-shard.csv)
set(EMPTY_ART "${CMAKE_CURRENT_BINARY_DIR}/empty_artifact.jsonl")
file(WRITE ${EMPTY_ART} "")
check_exit2_oneline("empty_artifact.jsonl:1: empty file"
                    inspect --events ${EMPTY_ART})
set(EMPTY_CSV "${CMAKE_CURRENT_BINARY_DIR}/empty_shard.csv")
file(WRITE ${EMPTY_CSV} "")
check_exit2_oneline("empty_shard.csv:1: missing header"
                    merge ${EMPTY_CSV})
file(REMOVE ${EMPTY_ART} ${EMPTY_CSV})

# ---- fault injection: --failpoint / RC_FAILPOINT specs are strict
check_exit2_oneline("unknown site 'bogus'"
                    sweep --apps ammp --failpoint bogus=crash)
check_exit2_oneline("wants SITE=ACTION"
                    sweep --apps ammp --failpoint csv.chunk.flush)
check_exit2_oneline("unknown action 'frob'"
                    run --app ammp --failpoint csv.chunk.flush=frob)
check_exit2_oneline("positive hit index"
                    tune --failpoint log.append=crash@0)
check_rejects_oneline("unknown option '--failpoint' for 'merge'"
                      merge --failpoint log.append=crash)
check_prints("claim.lease.after_create" list-failpoints)
check_prints("csv.chunk.flush" list-failpoints)
check_prints("--failpoint" sweep --help)
check_prints("--failpoint" tune --help)
check_prints("--failpoint" run --help)

# A malformed RC_FAILPOINT environment spec is rejected up front,
# before any subcommand runs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "RC_FAILPOINT=bogus=crash"
          ${RCACHE_SIM} list-apps
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(SEND_ERROR
          "expected exit 2 for a bad RC_FAILPOINT env spec, got ${rc}")
endif()
if(NOT err MATCHES "RC_FAILPOINT.*unknown site 'bogus'")
  message(SEND_ERROR
          "missing RC_FAILPOINT diagnostic — stderr was: ${err}")
endif()

# ---- replacement policy flag: strict value, exit 2, one line
check_exit2_oneline("--policy wants lru\\|random\\|fifo\\|slru\\|wtlfu"
                    run --app ammp --policy plru --insts 1000)
check_exit2_oneline("--policy wants lru\\|random\\|fifo\\|slru\\|wtlfu"
                    sweep --apps ammp --policy clock --insts 1000)
set(POL_TRACE "${CMAKE_CURRENT_BINARY_DIR}/policy_cli.trace")
file(WRITE ${POL_TRACE} "L 400000 0 1 0 0 0\n")
check_exit2_oneline("--policy wants lru\\|random\\|fifo\\|slru\\|wtlfu"
                    replay --trace ${POL_TRACE} --policy mru)
file(REMOVE ${POL_TRACE})
# The analytic engine's true-LRU envelope covers the policy knob too.
check_exit2_oneline("models true-LRU"
                    run --app ammp --engine analytic --policy fifo
                    --insts 1000)
check_prints("--policy" run --help)
check_prints("--policy" sweep --help)
check_prints("--policy" replay --help)

# ---- trace: app specs are preflighted: every rejection is one line,
# exit 2, before any simulation starts
check_exit2_oneline("cannot open trace file"
                    run --app trace:no-such-trace.csv --insts 1000)
check_exit2_oneline("cannot open trace file"
                    sweep --apps trace:no-such-trace.csv --insts 1000)
check_exit2_oneline("unknown trace format 'frob'"
                    run --app trace:whatever.csv:frob --insts 1000)
check_exit2_oneline("cannot infer trace format"
                    run --app trace:mystery.dat --insts 1000)
check_exit2_oneline("empty path" run --app trace: --insts 1000)

# A malformed leading record surfaces as file:line at preflight.
set(BAD_TRACE "${CMAKE_CURRENT_BINARY_DIR}/bad_rows_cli.csv")
file(WRITE ${BAD_TRACE} "1,notanumber,1,4096,0,cf,0,1,3,0,5,7,100\n")
check_exit2_oneline("bad_rows_cli.csv:1:"
                    run --app trace:${BAD_TRACE} --insts 1000)
file(REMOVE ${BAD_TRACE})

# ---- replay: malformed native traces get one file:line diagnostic
set(BAD_NATIVE "${CMAKE_CURRENT_BINARY_DIR}/bad_native_cli.trace")
file(WRITE ${BAD_NATIVE} "L 400000 0 1 0 0 0\ngarbage here\n")
check_exit2_oneline("bad_native_cli.trace:2:"
                    replay --trace ${BAD_NATIVE})
file(REMOVE ${BAD_NATIVE})
check_exit2_oneline("cannot open trace 'no-such.trace'"
                    replay --trace no-such.trace)

# ---- convert: strict flags, spec errors exit 2, happy path streams
check_rejects_oneline("unknown option '--bogus' for 'convert'"
                      convert --bogus 1)
check_exit2_oneline("convert needs --in" convert)
check_exit2_oneline("cannot open trace file"
                    convert --in no-such-trace.csv)
check_exit2_oneline("unknown trace format 'frob'"
                    convert --in trace:whatever.csv:frob)
check_exit2_oneline("cannot infer trace format"
                    convert --in mystery.dat)
check_exit2_oneline("non-negative integer"
                    convert --in x.csv --limit abc)
check_prints("--limit" convert --help)

# Round trip: a rocksdb row converts to one native load line on
# stdout (block 7 -> effAddr 7*64 = 0x1c0), and --limit truncates.
set(CONV_IN "${CMAKE_CURRENT_BINARY_DIR}/convert_cli_in.csv")
file(WRITE ${CONV_IN}
     "1,7,1,4096,0,cf,0,1,3,0,5,7,100\n"
     "1,9,1,4096,0,cf,0,1,3,0,5,7,100\n")
check_prints("L 40000c 1c0 1 0 0 0" convert --in ${CONV_IN})
execute_process(COMMAND ${RCACHE_SIM} convert --in ${CONV_IN}
                        --limit 1
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
string(REGEX MATCHALL "\nL " loads "\n${out}")
list(LENGTH loads nloads)
if(NOT rc EQUAL 0 OR NOT nloads EQUAL 1)
  message(SEND_ERROR
          "convert --limit 1 should emit exactly one load, got "
          "${nloads} (exit ${rc}): ${out}")
endif()
file(REMOVE ${CONV_IN})

# ---- doctor: strict argument parsing, audit exit codes
check_exit2_oneline("doctor wants exactly one CLAIM_DIR" doctor)
check_exit2_oneline("doctor wants exactly one CLAIM_DIR"
                    doctor dir1 dir2)
check_exit2_oneline("unknown option '--frob' for 'doctor'"
                    doctor --frob somewhere)
check_exit2_oneline("option '--lease-timeout' needs a value"
                    doctor somewhere --lease-timeout)
check_exit2_oneline("wants a non-negative integer"
                    doctor somewhere --lease-timeout abc)
check_prints("CLAIM_DIR" doctor --help)
# Auditing a directory with no manifest is an inconsistency (exit 2),
# reported in the audit itself, not a usage error.
execute_process(
  COMMAND ${RCACHE_SIM} doctor ${CMAKE_CURRENT_BINARY_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out)
if(NOT rc EQUAL 2)
  message(SEND_ERROR
          "expected exit 2 from doctor on a manifest-less dir, "
          "got ${rc}")
endif()
if(NOT out MATCHES "PROBLEM" OR NOT out MATCHES "INCONSISTENT")
  message(SEND_ERROR
          "doctor audit report incomplete — stdout was: ${out}")
endif()
