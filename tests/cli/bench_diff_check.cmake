# Self-check for tools/bench_diff.py, run as a ctest script:
#
#   cmake -DPYTHON=<python3> -DBENCH_DIFF=<tools/bench_diff.py>
#         -DBASELINES=<bench/baselines> -DWORK_DIR=<scratch>
#         -P bench_diff_check.cmake
#
# 1. Comparing the checked-in baselines against themselves reports
#    an all-zero delta (including the geomean summary row) and
#    passes the strict gate.
# 2. A regressed record trips --fail-below with exit 1.
# 3. A unit mismatch is its own exit code (3), distinct from both
#    "regressed" (1) and "usage/IO" (2), so CI can tell "got slower"
#    from "not comparable".

foreach(var PYTHON BENCH_DIFF BASELINES WORK_DIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

function(run_diff rc_var out_var)
  execute_process(COMMAND ${PYTHON} ${BENCH_DIFF} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${rc_var} "${rc}" PARENT_SCOPE)
  set(${out_var} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# ---- 1. self-compare: zero deltas, a geomean row, exit 0
run_diff(rc out ${BASELINES} ${BASELINES} --fail-below 0.001)
if(NOT rc EQUAL 0)
  message(SEND_ERROR "self-compare expected exit 0, got ${rc}: ${out}")
endif()
if(NOT out MATCHES "geomean +- +- +\\+0\\.00%")
  message(SEND_ERROR "self-compare is missing the all-zero geomean "
                     "summary row — output was: ${out}")
endif()

# ---- fixtures: one real record, regressed / unit-flipped copies
file(GLOB records "${BASELINES}/BENCH_*.json")
list(GET records 0 record)
get_filename_component(record_name ${record} NAME)
file(READ ${record} text)

file(REMOVE_RECURSE ${WORK_DIR}/regressed ${WORK_DIR}/mismatch
     ${WORK_DIR}/base_one)
file(MAKE_DIRECTORY ${WORK_DIR}/regressed ${WORK_DIR}/mismatch
     ${WORK_DIR}/base_one)
file(WRITE ${WORK_DIR}/base_one/${record_name} "${text}")

string(REGEX REPLACE "\"throughput\": [0-9.eE+-]+"
       "\"throughput\": 0.001" slow "${text}")
file(WRITE ${WORK_DIR}/regressed/${record_name} "${slow}")

string(REGEX REPLACE "\"unit\": \"[^\"]*\""
       "\"unit\": \"bananas/s\"" flipped "${text}")
file(WRITE ${WORK_DIR}/mismatch/${record_name} "${flipped}")

# ---- 2. a regression trips the gate with exit 1
run_diff(rc out ${WORK_DIR}/base_one ${WORK_DIR}/regressed
         --fail-below 2)
if(NOT rc EQUAL 1)
  message(SEND_ERROR "regression expected exit 1, got ${rc}: ${out}")
endif()
if(NOT out MATCHES "regressed")
  message(SEND_ERROR "regression diagnostic missing: ${out}")
endif()

# ---- 3. a unit mismatch is exit 3, even without --fail-below
run_diff(rc out ${WORK_DIR}/base_one ${WORK_DIR}/mismatch)
if(NOT rc EQUAL 3)
  message(SEND_ERROR
          "unit mismatch expected exit 3, got ${rc}: ${out}")
endif()
if(NOT out MATCHES "unit mismatch")
  message(SEND_ERROR "unit-mismatch diagnostic missing: ${out}")
endif()

file(REMOVE_RECURSE ${WORK_DIR}/regressed ${WORK_DIR}/mismatch
     ${WORK_DIR}/base_one)
