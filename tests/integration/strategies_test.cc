/** @file
 * Cross-module integration tests for the strategy comparison
 * (paper Section 4.2) on a reduced scale.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
// Long enough for several periods of the phased profiles; the
// dynamic-vs-static contrast needs the adaptation to amortize.
constexpr std::uint64_t kInsts = 1200000;

SystemConfig
inOrder()
{
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = CoreModel::InOrder;
    return cfg;
}
} // namespace

TEST(StrategiesIntegration, StaticMatchesDynamicOnConstantApps)
{
    // ammp's working set never changes: static captures everything
    // and dynamic converges to the same size (paper Sec 4.2.1 type 1).
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    auto st = exp.staticSearch(p, CacheSide::DCache,
                               Organization::SelectiveSets);
    auto dy = exp.dynamicSearch(p, CacheSide::DCache,
                                Organization::SelectiveSets);
    EXPECT_NEAR(st.edReductionPct(), dy.edReductionPct(), 2.0);
    EXPECT_GT(dy.sizeReductionPct(CacheSide::DCache), 50.0);
}

TEST(StrategiesIntegration, DynamicCompetitiveOnPeriodicAppInOrder)
{
    // su2cor + blocking d-cache: the exposed-miss scenario the paper
    // highlights for dynamic resizing. With our synthetic streams and
    // the faithful end-of-interval controller, dynamic matches static
    // within a small margin (the controller's hi-phase detection lag
    // costs roughly what the low-phase dips save; see
    // EXPERIMENTS.md); it must never be catastrophically worse.
    Experiment exp(inOrder(), kInsts);
    auto p = profileByName("su2cor");
    auto st = exp.staticSearch(p, CacheSide::DCache,
                               Organization::SelectiveSets);
    auto dy = exp.dynamicSearch(p, CacheSide::DCache,
                                Organization::SelectiveSets);
    EXPECT_GE(dy.edReductionPct(), st.edReductionPct() - 1.0);
    EXPECT_GE(dy.edReductionPct(), -0.5);
}

TEST(StrategiesIntegration, OoOHidesMissLatencyForStatic)
{
    // With out-of-order issue the same app allows aggressive static
    // downsizing (paper Sec 4.2.1: "static resizing possibly performs
    // as good as dynamic").
    Experiment ooo(SystemConfig::base(), kInsts);
    Experiment inord(inOrder(), kInsts);
    auto p = profileByName("su2cor");
    auto st_ooo = ooo.staticSearch(p, CacheSide::DCache,
                                   Organization::SelectiveSets);
    auto st_in = inord.staticSearch(p, CacheSide::DCache,
                                    Organization::SelectiveSets);
    EXPECT_GT(st_ooo.edReductionPct(), st_in.edReductionPct());
}

TEST(StrategiesIntegration, DynamicTracksPeriodicPhases)
{
    // The controller's level trace must actually move for a
    // periodic workload.
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload wl(profileByName("su2cor"));
    System sys(cfg);
    DynamicParams dyn;
    dyn.intervalAccesses = 1024;
    dyn.missBound = 51; // 5%
    dyn.sizeBoundBytes = 8 * 1024;
    RunResult r = sys.run(wl, kInsts, {},
                          ResizeSetup{Strategy::Dynamic, 0, dyn});
    unsigned lo = 99, hi = 0;
    for (unsigned lvl : r.dl1LevelTrace) {
        lo = std::min(lo, lvl);
        hi = std::max(hi, lvl);
    }
    EXPECT_EQ(lo, 0u);  // reaches full size in the hi phase
    EXPECT_GE(hi, 1u);  // and shrinks in the lo phase
    EXPECT_GT(r.dl1Resizes, 2u);
}

TEST(StrategiesIntegration, ICacheSavesMoreOnInOrder)
{
    // Paper Sec 4.2.2: i-cache resizing achieves larger reductions on
    // the in-order processor (larger i-cache energy share).
    Experiment ooo(SystemConfig::base(), kInsts);
    Experiment inord(inOrder(), kInsts);
    double ooo_sum = 0, inord_sum = 0;
    for (const char *n : {"ammp", "compress", "m88ksim"}) {
        auto p = profileByName(n);
        ooo_sum += ooo.staticSearch(p, CacheSide::ICache,
                                    Organization::SelectiveSets)
                       .edReductionPct();
        inord_sum += inord
                         .staticSearch(p, CacheSide::ICache,
                                       Organization::SelectiveSets)
                         .edReductionPct();
    }
    EXPECT_GT(inord_sum, ooo_sum);
}

TEST(StrategiesIntegration, PerfDegradationWithinPaperBounds)
{
    // The paper reports all best-E*D points within 6% performance
    // degradation; check ours on the base config.
    Experiment exp(SystemConfig::base(), kInsts);
    for (const char *n : {"ammp", "gcc", "su2cor", "compress"}) {
        auto p = profileByName(n);
        auto st = exp.staticSearch(p, CacheSide::DCache,
                                   Organization::SelectiveSets);
        EXPECT_LT(st.perfDegradationPct(), 6.0) << n;
        auto dy = exp.dynamicSearch(p, CacheSide::DCache,
                                    Organization::SelectiveSets);
        EXPECT_LT(dy.perfDegradationPct(), 6.0) << n;
    }
}

} // namespace rcache
