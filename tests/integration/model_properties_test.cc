/** @file
 * Cross-model property tests: relationships that must hold between
 * the two cores, across organizations, and between energy and timing
 * for every profile.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
constexpr std::uint64_t kInsts = 60000;
} // namespace

/** Per-profile property sweep over the whole suite. */
class SuitePropertyTest : public testing::TestWithParam<std::string>
{
  protected:
    BenchmarkProfile profile() const
    {
        return profileByName(GetParam());
    }
};

TEST_P(SuitePropertyTest, InOrderNeverFasterThanOoO)
{
    SystemConfig ooo = SystemConfig::base();
    SystemConfig inord = ooo;
    inord.coreModel = CoreModel::InOrder;
    SyntheticWorkload w1(profile()), w2(profile());
    System so(ooo), si(inord);
    RunResult ro = so.run(w1, kInsts);
    RunResult ri = si.run(w2, kInsts);
    EXPECT_GE(ri.cycles, ro.cycles) << GetParam();
}

TEST_P(SuitePropertyTest, SmallerStaticSizeNeverFewerCycles)
{
    // Downsizing can only add misses: cycles are monotone in level.
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    std::uint64_t prev = 0;
    for (unsigned lvl : {0u, 2u, 4u}) {
        SyntheticWorkload wl(profile());
        System sys(cfg);
        RunResult r = sys.run(wl, kInsts, {},
                              ResizeSetup{Strategy::Static, lvl, {}});
        EXPECT_GE(r.cycles + 5, prev) << GetParam() << " L" << lvl;
        prev = r.cycles;
    }
}

TEST_P(SuitePropertyTest, CacheEnergyShrinksWithStaticSize)
{
    // The d-cache's own energy must drop when it is downsized, even
    // when total E*D does not improve.
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload w1(profile()), w2(profile());
    System a(cfg), b(cfg);
    RunResult full =
        a.run(w1, kInsts, {}, ResizeSetup{Strategy::Static, 0, {}});
    RunResult quarter =
        b.run(w2, kInsts, {}, ResizeSetup{Strategy::Static, 2, {}});
    EXPECT_LT(quarter.energy.dcache, full.energy.dcache)
        << GetParam();
}

TEST_P(SuitePropertyTest, MissRatiosMonotoneInSize)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    double prev = -1;
    for (unsigned lvl : {0u, 2u, 4u}) {
        SyntheticWorkload wl(profile());
        System sys(cfg);
        RunResult r = sys.run(wl, kInsts, {},
                              ResizeSetup{Strategy::Static, lvl, {}});
        EXPECT_GE(r.dl1MissRatio + 0.002, prev)
            << GetParam() << " L" << lvl;
        prev = r.dl1MissRatio;
    }
}

TEST_P(SuitePropertyTest, StatsDumpWellFormed)
{
    SystemConfig cfg = SystemConfig::base();
    SyntheticWorkload wl(profile());
    System sys(cfg);
    sys.run(wl, kInsts);
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("il1.accesses"), std::string::npos);
    EXPECT_NE(s.find("dl1.missRatio"), std::string::npos);
    EXPECT_NE(s.find("l2.accesses"), std::string::npos);
}

TEST_P(SuitePropertyTest, EventCountsConsistent)
{
    SystemConfig cfg = SystemConfig::base();
    SyntheticWorkload wl(profile());
    System sys(cfg);
    RunResult r = sys.run(wl, kInsts);
    const Cache &dl1 = sys.dl1().cache();
    const Cache &il1 = sys.il1().cache();
    // Every load/store reaches the d-cache exactly once.
    EXPECT_EQ(dl1.accesses(), r.activity.loads + r.activity.stores);
    // Precharge events are bounded by accesses x total subarrays.
    EXPECT_LE(dl1.prechargeSubarrayEvents(),
              dl1.accesses() * dl1.geometry().totalSubarrays());
    // L2 demand traffic cannot exceed L1 misses plus L1 writebacks
    // (instruction blocks are never dirty).
    EXPECT_LE(sys.hierarchy().l2().accesses(),
              dl1.misses() + il1.misses() + dl1.writebacks());
}

INSTANTIATE_TEST_SUITE_P(Suite, SuitePropertyTest,
                         testing::ValuesIn(suiteNames()),
                         [](const auto &info) { return info.param; });

} // namespace rcache
