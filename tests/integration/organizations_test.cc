/** @file
 * Cross-module integration tests for the organization comparison
 * (paper Section 4.1) on a reduced scale: full System runs with
 * real profiles, checking the qualitative claims.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
constexpr std::uint64_t kInsts = 150000;

SystemConfig
cfg4way()
{
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = 4;
    cfg.dl1.assoc = 4;
    return cfg;
}
} // namespace

TEST(OrganizationsIntegration, SmallWsAppsPreferSelectiveSetsMinimum)
{
    // ammp (4-way): selective-sets reaches 4K, selective-ways stops
    // at one 8K way -> sets shrink further (paper Fig 5a).
    Experiment exp(cfg4way(), kInsts);
    auto p = profileByName("ammp");
    auto sets = exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveSets);
    auto ways = exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveWays);
    EXPECT_LT(sets.best.avgDl1Bytes, ways.best.avgDl1Bytes);
    EXPECT_GE(sets.edReductionPct(), ways.edReductionPct());
}

TEST(OrganizationsIntegration, ConflictAppsNeedAssociativity)
{
    // vpr carries a 4-block alias set: selective-sets (keeps 4 ways)
    // must beat selective-ways (drops ways) at 4-way (paper Fig 5a).
    Experiment exp(cfg4way(), kInsts);
    auto p = profileByName("vpr");
    auto sets = exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveSets);
    auto ways = exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveWays);
    EXPECT_GT(sets.edReductionPct(), ways.edReductionPct());
}

TEST(OrganizationsIntegration, LargeWsAppDoesNotDownsize)
{
    // swim's d-side streams through ~28K: downsizing thrashes, so
    // the profiling search keeps the full size (paper Fig 5a).
    Experiment exp(cfg4way(), kInsts);
    auto p = profileByName("swim");
    for (auto org : {Organization::SelectiveSets,
                     Organization::SelectiveWays}) {
        auto out = exp.staticSearch(p, CacheSide::DCache, org);
        EXPECT_EQ(out.bestLevel, 0u) << organizationName(org);
    }
}

TEST(OrganizationsIntegration, HybridAtLeastAsGoodAsBoth4Way)
{
    // Paper Fig 6 at the Table 1 design point, on three contrasting
    // apps (small-WS, conflict-heavy, between-sizes).
    Experiment exp(cfg4way(), kInsts);
    for (const char *n : {"ammp", "vpr", "compress"}) {
        auto p = profileByName(n);
        auto hyb = exp.staticSearch(p, CacheSide::DCache,
                                    Organization::Hybrid);
        auto sets = exp.staticSearch(p, CacheSide::DCache,
                                     Organization::SelectiveSets);
        auto ways = exp.staticSearch(p, CacheSide::DCache,
                                     Organization::SelectiveWays);
        EXPECT_GE(hyb.edReductionPct(),
                  sets.edReductionPct() - 0.3)
            << n;
        EXPECT_GE(hyb.edReductionPct(),
                  ways.edReductionPct() - 0.3)
            << n;
    }
}

TEST(OrganizationsIntegration, SelectiveWaysWinsAtHighAssoc)
{
    // 16-way: selective-ways' 2K-grain full-range spectrum dominates
    // selective-sets' coarse top (paper Fig 4, averaged here over a
    // few apps for speed).
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = 16;
    cfg.dl1.assoc = 16;
    Experiment exp(cfg, kInsts);
    double ways = 0, sets = 0;
    for (const char *n : {"ammp", "compress", "gcc", "su2cor"}) {
        auto p = profileByName(n);
        ways += exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveWays)
                    .edReductionPct();
        sets += exp.staticSearch(p, CacheSide::DCache,
                                 Organization::SelectiveSets)
                    .edReductionPct();
    }
    EXPECT_GT(ways, sets);
}

TEST(OrganizationsIntegration, SelectiveSetsWinsAtLowAssocICache)
{
    // 2-way i-cache: selective-sets' smaller minimum size wins on
    // small-footprint apps (paper Fig 4b).
    Experiment exp(SystemConfig::base(), kInsts);
    double ways = 0, sets = 0;
    for (const char *n : {"ammp", "compress", "m88ksim", "swim"}) {
        auto p = profileByName(n);
        ways += exp.staticSearch(p, CacheSide::ICache,
                                 Organization::SelectiveWays)
                    .edReductionPct();
        sets += exp.staticSearch(p, CacheSide::ICache,
                                 Organization::SelectiveSets)
                    .edReductionPct();
    }
    EXPECT_GT(sets, ways);
}

TEST(OrganizationsIntegration, ResizingTagOverheadVisibleAtFullSize)
{
    // A selective-sets cache left at full size pays only the
    // resizing tag bits vs a non-resizable baseline: a small but
    // non-zero energy-delay penalty.
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("swim");
    auto out = exp.staticSearch(p, CacheSide::DCache,
                                Organization::SelectiveSets);
    if (out.bestLevel == 0) {
        EXPECT_LT(out.edReductionPct(), 0.0);
        EXPECT_GT(out.edReductionPct(), -1.0);
    }
}

} // namespace rcache
