/** @file
 * End-to-end checks of the paper's headline results at reduced
 * scale: Fig 9's additivity and ~20% combined saving, and the Fig 4
 * organization crossover.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
constexpr std::uint64_t kInsts = 250000;
} // namespace

TEST(PaperShapesTest, Fig9AdditivityOnFavourableApps)
{
    Experiment exp(SystemConfig::base(), kInsts);
    for (const char *n : {"ammp", "m88ksim", "ijpeg"}) {
        auto p = profileByName(n);
        auto d = exp.staticSearch(p, CacheSide::DCache,
                                  Organization::SelectiveSets);
        auto i = exp.staticSearch(p, CacheSide::ICache,
                                  Organization::SelectiveSets);
        auto both =
            exp.staticSearchBoth(p, Organization::SelectiveSets);
        // Combined savings within 4 points of the sum (paper: "the
        // overall reductions ... are close to the summation").
        EXPECT_NEAR(both.edReductionPct(),
                    d.edReductionPct() + i.edReductionPct(), 4.0)
            << n;
    }
}

TEST(PaperShapesTest, Fig9CombinedSavingsSubstantial)
{
    // Paper: ~20% average combined saving. Small-WS apps should
    // individually exceed 15% here.
    Experiment exp(SystemConfig::base(), kInsts);
    for (const char *n : {"ammp", "m88ksim"}) {
        auto both = exp.staticSearchBoth(profileByName(n),
                                         Organization::SelectiveSets);
        EXPECT_GT(both.edReductionPct(), 15.0) << n;
    }
}

TEST(PaperShapesTest, Fig4CrossoverDcache)
{
    // selective-sets ahead at 4-way, selective-ways ahead at 16-way,
    // averaged over a representative app subset.
    const std::vector<std::string> apps = {"ammp", "compress", "vpr",
                                           "su2cor"};
    auto avg = [&](unsigned assoc, Organization org) {
        SystemConfig cfg = SystemConfig::base();
        cfg.il1.assoc = assoc;
        cfg.dl1.assoc = assoc;
        Experiment exp(cfg, kInsts);
        double sum = 0;
        for (const auto &n : apps)
            sum += exp.staticSearch(profileByName(n),
                                    CacheSide::DCache, org)
                       .edReductionPct();
        return sum / static_cast<double>(apps.size());
    };
    EXPECT_GT(avg(4, Organization::SelectiveSets),
              avg(4, Organization::SelectiveWays));
    EXPECT_GT(avg(16, Organization::SelectiveWays),
              avg(16, Organization::SelectiveSets));
}

TEST(PaperShapesTest, EnergyDelayAlwaysPositiveAndFinite)
{
    Experiment exp(SystemConfig::base(), 50000);
    for (const auto &p : spec2000Suite()) {
        RunResult r = exp.baseline(p);
        EXPECT_GT(r.edp(), 0.0) << p.name;
        EXPECT_TRUE(std::isfinite(r.edp())) << p.name;
        EXPECT_GT(r.ipc(), 0.1) << p.name;
        EXPECT_LT(r.ipc(), 4.0) << p.name;
    }
}

} // namespace rcache
