/** @file
 * Tests for `rcache-sim doctor`: the read-only claim-directory audit
 * must classify unit states, verify committed CSVs, inventory crash
 * debris, audit decision logs, and exit 0 only on a directory a
 * rerun can safely continue (2 on anything needing a human).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/claim.hh"
#include "search/adaptive_search.hh"
#include "search/doctor.hh"
#include "search/sweep_merge.hh"

namespace rcache
{

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
pathIn(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

void
spill(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
    ASSERT_TRUE(os) << path;
}

ScenarioSpec
sweepSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = doctor-test
insts = 20000

[workloads]
apps = ammp,gcc

[axes]
assoc = 2,4
org = ways,sets

[engine]
mode = analytic

[search]
strategy = static
side = dcache
)",
                                              "doctor-test.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

ScenarioSpec
tuneSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = doctor-tune
insts = 30000

[workloads]
apps = gcc,m88ksim

[axes]
assoc = 2,4
org = ways,sets

[search]
strategy = static
side = dcache
mode = adaptive
ladder = analytic,full
promote = 0.5
min-survivors = 2
)",
                                              "doctor-tune.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

/** Drain a 2-shard sweep into @p dir and return it. */
std::string
drainedSweepDir(const std::string &name)
{
    const std::string dir = freshDir(name);
    ClaimSweepOptions opt;
    opt.dir = dir;
    opt.shards = 2;
    opt.quiet = true;
    EXPECT_EQ(runClaimSweep(sweepSpec(), opt), 0);
    return dir;
}

/** runDoctor into a string; @p rc receives the verdict. */
std::string
doctorReport(const std::string &dir, const DoctorOptions &opt,
             int *rc)
{
    std::ostringstream out;
    *rc = runDoctor(dir, opt, out);
    return out.str();
}

} // namespace

TEST(DoctorTest, DrainedSweepDirIsConsistent)
{
    const std::string dir = drainedSweepDir("doctor_ok");
    int rc = -1;
    const std::string report = doctorReport(dir, {}, &rc);
    EXPECT_EQ(rc, 0) << report;
    EXPECT_NE(report.find("(sweep, 2 shard(s))"), std::string::npos)
        << report;
    EXPECT_NE(report.find("shard_0: done"), std::string::npos);
    EXPECT_NE(report.find("shard_1: done"), std::string::npos);
    EXPECT_NE(report.find("2 done, 0 claimed, 0 stale, 0 unclaimed "
                          "of 2"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("verdict: consistent"), std::string::npos);
}

TEST(DoctorTest, MissingOrDamagedManifestIsInconsistent)
{
    int rc = -1;
    std::string report =
        doctorReport(freshDir("doctor_absent"), {}, &rc);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(report.find("PROBLEM"), std::string::npos) << report;

    const std::string dir = freshDir("doctor_badmeta");
    std::filesystem::create_directories(dir);
    spill(dir + "/MANIFEST.scn", "[scenario]\nname = x\n");
    spill(dir + "/MANIFEST.meta", "garbage!");
    report = doctorReport(dir, {}, &rc);
    EXPECT_EQ(rc, 2);
    // The damaged-manifest report names the recovery procedure.
    EXPECT_NE(report.find("quarantine"), std::string::npos)
        << report;
}

TEST(DoctorTest, DoneWithoutReadableCsvIsInconsistent)
{
    const std::string dir = drainedSweepDir("doctor_gone_csv");
    std::filesystem::remove(dir + "/shard_0.csv");
    int rc = -1;
    const std::string report = doctorReport(dir, {}, &rc);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(report.find("marked done but"), std::string::npos)
        << report;
    EXPECT_NE(report.find("INCONSISTENT (1 problem(s))"),
              std::string::npos)
        << report;
}

TEST(DoctorTest, DamagedCommittedCsvIsInconsistent)
{
    const std::string dir = drainedSweepDir("doctor_bad_csv");
    spill(dir + "/shard_1.csv", "definitely,not\na sweep csv\n");
    int rc = -1;
    const std::string report = doctorReport(dir, {}, &rc);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(report.find("csv DAMAGED"), std::string::npos)
        << report;
}

TEST(DoctorTest, LeaseStatesAndDebrisNotes)
{
    const std::string dir = freshDir("doctor_states");
    ManifestInfo info;
    info.mode = "sweep";
    info.shards = 3;
    info.scenarioText = sweepSpec().printToString();
    std::string err;
    ASSERT_TRUE(writeManifest(dir, info, &err)) << err;

    // shard_0 live, shard_1 stale, shard_2 unclaimed.
    const ClaimDir claims(dir, 300);
    ASSERT_TRUE(claims.tryClaim("shard_0"));
    ASSERT_TRUE(claims.tryClaim("shard_1"));
    std::filesystem::last_write_time(
        dir + "/shard_1.lease",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(2));
    // Crash debris: an orphan tmp and a renamed-aside file.
    spill(dir + "/shard_0.csv.tmp.12345", "partial");
    spill(dir + "/shard_1.lease.stale.99", "old");

    int rc = -1;
    const std::string report = doctorReport(dir, {}, &rc);
    // Unfinished but consistent: that is what reruns are for.
    EXPECT_EQ(rc, 0) << report;
    EXPECT_NE(report.find("shard_0: claimed (lease live)"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("shard_1: stale (takeover-able)"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("shard_2: unclaimed"), std::string::npos)
        << report;
    EXPECT_NE(report.find("0 done, 1 claimed, 1 stale, 1 unclaimed "
                          "of 3"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("orphan tmp"), std::string::npos);
    EXPECT_NE(report.find("renamed-aside"), std::string::npos);

    // The doctor's staleness clock honors --lease-timeout: with a
    // huge timeout the aged lease counts as live again.
    DoctorOptions lenient;
    lenient.leaseTimeoutSecs = 3600u * 24 * 365;
    const std::string report2 = doctorReport(dir, lenient, &rc);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(report2.find("0 done, 2 claimed, 0 stale"),
              std::string::npos)
        << report2;
}

TEST(DoctorTest, TuneUnitsEnumeratedFromDirectory)
{
    const std::string dir = freshDir("doctor_tune");
    TuneOptions opt;
    opt.quiet = true;
    opt.emitOutputs = false;
    opt.claimDir = dir;
    opt.shards = 2;
    ASSERT_EQ(runAdaptiveSearch(tuneSpec(), opt, nullptr), 0);

    int rc = -1;
    const std::string report = doctorReport(dir, {}, &rc);
    EXPECT_EQ(rc, 0) << report;
    EXPECT_NE(report.find("(tune, 2 shard(s))"), std::string::npos)
        << report;
    // Tune units are discovered from the directory, round by shard.
    EXPECT_NE(report.find("r0_s0: done"), std::string::npos)
        << report;
    EXPECT_NE(report.find("r0_s1: done"), std::string::npos);
    EXPECT_NE(report.find("r1_s0: done"), std::string::npos);
    EXPECT_NE(report.find("verdict: consistent"), std::string::npos);
}

TEST(DoctorTest, DecisionLogAudit)
{
    const std::string dir = drainedSweepDir("doctor_log");
    TuneOptions topt;
    topt.quiet = true;
    topt.outPath = pathIn("doctor_tune_out.csv");
    topt.logPath = pathIn("doctor_tune_audit.log");
    ASSERT_EQ(runAdaptiveSearch(tuneSpec(), topt, nullptr), 0);

    DoctorOptions opt;
    opt.logPath = topt.logPath;
    int rc = -1;
    std::string report = doctorReport(dir, opt, &rc);
    EXPECT_EQ(rc, 0) << report;
    EXPECT_NE(report.find("intact line(s)"), std::string::npos)
        << report;

    // A torn tail is a note (resume handles it), damaged committed
    // lines and an unreadable log are problems.
    const std::string log = topt.logPath;
    std::ifstream in(log, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string full = buf.str();
    spill(pathIn("doctor_torn.log"),
          full.substr(0, full.size() - 3));
    opt.logPath = pathIn("doctor_torn.log");
    report = doctorReport(dir, opt, &rc);
    EXPECT_EQ(rc, 0) << report;
    EXPECT_NE(report.find("torn final line"), std::string::npos)
        << report;

    spill(pathIn("doctor_garbage.log"), "not json\nat all\n");
    opt.logPath = pathIn("doctor_garbage.log");
    report = doctorReport(dir, opt, &rc);
    EXPECT_EQ(rc, 2);

    opt.logPath = pathIn("doctor_no_such.log");
    report = doctorReport(dir, opt, &rc);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(report.find("cannot read decision log"),
              std::string::npos)
        << report;
}

} // namespace rcache
