/** @file
 * Tests for the cooperative orchestration layer: manifest
 * create/join, the lease lifecycle with stale takeover, merge
 * validation, and the byte-identity of claim-mode sweeps and tunes
 * with their single-process equivalents.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "runner/claim.hh"
#include "scenario/scenario_sweep.hh"
#include "search/adaptive_search.hh"
#include "search/sweep_merge.hh"

namespace rcache
{

namespace
{

/** A fresh directory under the test tmpdir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
pathIn(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** 2 apps x org x strategy = 8 cells, short runs. */
ScenarioSpec
sweepSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = claim-test
insts = 20000

[workloads]
apps = ammp,gcc

[axes]
org = ways,sets
strategy = static,dynamic

[search]
intervals = 1024
miss-fractions = 0.01
size-fractions = 0,1
)",
                                              "claim-test.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

/** Adaptive variant for claim-mode tunes. */
ScenarioSpec
tuneSpec()
{
    std::string err;
    const auto spec = ScenarioSpec::parseText(R"([scenario]
name = claim-tune-test
insts = 30000

[workloads]
apps = gcc,m88ksim

[axes]
assoc = 2,4
org = ways,sets

[search]
strategy = static
side = dcache
mode = adaptive
ladder = analytic,full
promote = 0.5
min-survivors = 2
)",
                                              "claim-tune.scn",
                                              &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

ClaimSweepOptions
workerOpts(const std::string &dir, unsigned shards)
{
    ClaimSweepOptions opt;
    opt.dir = dir;
    opt.shards = shards;
    opt.quiet = true;
    return opt;
}

} // namespace

TEST(ClaimTest, ManifestCreateReadAndDoubleCreate)
{
    const std::string dir = freshDir("claim_manifest");
    ManifestInfo info;
    info.mode = "sweep";
    info.shards = 3;
    info.scenarioText = "[scenario]\nname = x\n";

    std::string err;
    ASSERT_TRUE(writeManifest(dir, info, &err)) << err;
    const auto back = readManifest(dir, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(back->mode, "sweep");
    EXPECT_EQ(back->shards, 3u);
    EXPECT_EQ(back->scenarioText, info.scenarioText);

    // The meta file is the commit point: a second creator loses.
    EXPECT_FALSE(writeManifest(dir, info, &err));
    EXPECT_NE(err.find("already exists"), std::string::npos);

    // Reading an absent manifest names the fix.
    EXPECT_FALSE(readManifest(freshDir("claim_nothing"), &err));
    EXPECT_NE(err.find("--shards"), std::string::npos);
}

TEST(ClaimTest, LeaseLifecycleAndStaleTakeover)
{
    const std::string dir = freshDir("claim_lease");
    std::filesystem::create_directories(dir);
    const ClaimDir claims(dir, 300);

    EXPECT_FALSE(claims.isDone("u0"));
    EXPECT_TRUE(claims.tryClaim("u0"));
    EXPECT_TRUE(claims.leaseFresh("u0"));
    // Held: a second claimant bounces.
    EXPECT_FALSE(claims.tryClaim("u0"));

    // Age the lease past the timeout; the next claimant takes over.
    std::filesystem::last_write_time(
        dir + "/u0.lease",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(2));
    EXPECT_FALSE(claims.leaseFresh("u0"));
    EXPECT_TRUE(claims.tryClaim("u0"));

    // A heartbeat keeps a lease fresh.
    std::filesystem::last_write_time(
        dir + "/u0.lease",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(2));
    claims.heartbeat("u0");
    EXPECT_TRUE(claims.leaseFresh("u0"));

    // Done units are never claimable again.
    std::string err;
    ASSERT_TRUE(claims.markDone("u0", &err)) << err;
    EXPECT_TRUE(claims.isDone("u0"));
    EXPECT_FALSE(claims.tryClaim("u0"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/u0.lease"));
}

TEST(ClaimTest, ClaimSweepPlusMergeMatchesSingleProcess)
{
    const ScenarioSpec spec = sweepSpec();

    SweepOptions so;
    so.outPath = pathIn("claim_ref.csv");
    so.quiet = true;
    ASSERT_EQ(runScenarioSweep(spec, so), 0);
    const std::string reference = slurp(so.outPath);

    const std::string dir = freshDir("claim_sweep_single");
    ASSERT_EQ(runClaimSweep(spec, workerOpts(dir, 3)), 0);
    for (unsigned u = 0; u < 3; ++u)
        EXPECT_TRUE(std::filesystem::exists(
            dir + "/" + sweepUnitName(u) + ".done"));

    // Manifest-directory merge and explicit-shard merge both
    // reproduce the unsharded CSV byte for byte.
    const std::string merged = pathIn("claim_merged.csv");
    ASSERT_EQ(runSweepMerge({dir}, merged), 0);
    EXPECT_EQ(slurp(merged), reference);

    std::vector<std::string> shard_csvs;
    for (unsigned u = 0; u < 3; ++u)
        shard_csvs.push_back(dir + "/" + sweepUnitName(u) + ".csv");
    const std::string merged2 = pathIn("claim_merged2.csv");
    ASSERT_EQ(runSweepMerge(shard_csvs, merged2), 0);
    EXPECT_EQ(slurp(merged2), reference);

    // Strict cover validation: a duplicated shard and a missing
    // shard are both hard errors.
    EXPECT_NE(runSweepMerge({shard_csvs[0], shard_csvs[0],
                             shard_csvs[1], shard_csvs[2]},
                            pathIn("claim_dup.csv")),
              0);
    EXPECT_NE(runSweepMerge({shard_csvs[0], shard_csvs[2]},
                            pathIn("claim_gap.csv")),
              0);
}

TEST(ClaimTest, TwoWorkersDrainOneManifest)
{
    const ScenarioSpec spec = sweepSpec();

    SweepOptions so;
    so.outPath = pathIn("claim_ref2.csv");
    so.quiet = true;
    ASSERT_EQ(runScenarioSweep(spec, so), 0);

    // Both workers race to create the manifest (the loser joins) and
    // drain units concurrently; each returns 0 only once every unit
    // is done.
    const std::string dir = freshDir("claim_sweep_pair");
    int rc1 = -1, rc2 = -1;
    std::thread w1(
        [&] { rc1 = runClaimSweep(spec, workerOpts(dir, 3)); });
    std::thread w2(
        [&] { rc2 = runClaimSweep(spec, workerOpts(dir, 3)); });
    w1.join();
    w2.join();
    EXPECT_EQ(rc1, 0);
    EXPECT_EQ(rc2, 0);

    const std::string merged = pathIn("claim_merged_pair.csv");
    ASSERT_EQ(runSweepMerge({dir}, merged), 0);
    EXPECT_EQ(slurp(merged), slurp(pathIn("claim_ref2.csv")));
}

TEST(ClaimTest, ClaimRejectsMismatchedJoin)
{
    const ScenarioSpec spec = sweepSpec();
    const std::string dir = freshDir("claim_mismatch");
    ASSERT_EQ(runClaimSweep(spec, workerOpts(dir, 2)), 0);

    // Joining with a different shard count or scenario is refused.
    EXPECT_NE(runClaimSweep(spec, workerOpts(dir, 3)), 0);
    ScenarioSpec other = spec;
    other.insts = 40000;
    EXPECT_NE(runClaimSweep(other, workerOpts(dir, 2)), 0);

    // Merge refuses a tune manifest.
    const std::string tdir = freshDir("claim_tune_manifest");
    TuneOptions topt;
    topt.quiet = true;
    topt.emitOutputs = false;
    topt.claimDir = tdir;
    topt.shards = 2;
    ASSERT_EQ(runAdaptiveSearch(tuneSpec(), topt, nullptr), 0);
    EXPECT_NE(runSweepMerge({tdir}, pathIn("claim_tune_merge.csv")),
              0);
}

TEST(ClaimTest, ClaimTuneMatchesLocalTune)
{
    const ScenarioSpec spec = tuneSpec();

    TuneOptions local;
    local.quiet = true;
    local.outPath = pathIn("claim_tune_local.csv");
    local.logPath = pathIn("claim_tune_local.log");
    TuneStats ref;
    ASSERT_EQ(runAdaptiveSearch(spec, local, &ref), 0);

    // Two claim workers share every round's units; each computes the
    // same ranking from the committed records, so both logs and both
    // winner CSVs are byte-identical to the local run's.
    const std::string dir = freshDir("claim_tune_pair");
    auto claimed = [&](const std::string &tag) {
        TuneOptions opt;
        opt.quiet = true;
        opt.claimDir = dir;
        opt.shards = 2;
        opt.outPath = pathIn("claim_tune_" + tag + ".csv");
        opt.logPath = pathIn("claim_tune_" + tag + ".log");
        return opt;
    };
    int rc1 = -1, rc2 = -1;
    TuneStats s1, s2;
    std::thread w1([&] {
        rc1 = runAdaptiveSearch(spec, claimed("w1"), &s1);
    });
    std::thread w2([&] {
        rc2 = runAdaptiveSearch(spec, claimed("w2"), &s2);
    });
    w1.join();
    w2.join();
    ASSERT_EQ(rc1, 0);
    ASSERT_EQ(rc2, 0);

    EXPECT_EQ(s1.logText, ref.logText);
    EXPECT_EQ(s2.logText, ref.logText);
    EXPECT_EQ(slurp(pathIn("claim_tune_w1.csv")),
              slurp(pathIn("claim_tune_local.csv")));
    EXPECT_EQ(slurp(pathIn("claim_tune_w2.csv")),
              slurp(pathIn("claim_tune_local.csv")));
    EXPECT_EQ(s1.winner.cell, ref.winner.cell);
}

} // namespace rcache
