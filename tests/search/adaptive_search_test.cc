/** @file
 * Tests for the adaptive design-space autotuner: the winner property
 * against an exhaustive sweep (with a near-tie gate), decision-log
 * byte-identity across --jobs, resume identity, early exit, and the
 * promotion arithmetic surfaced through the log.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "scenario/scenario_sweep.hh"
#include "search/adaptive_search.hh"
#include "sim/report.hh"

namespace rcache
{

namespace
{

ScenarioSpec
parseSpec(const std::string &text)
{
    std::string err;
    const auto spec =
        ScenarioSpec::parseText(text, "adaptive-test.scn", &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

/** 2 apps x assoc x org = 8 cells, short runs, 2-rung ladder. */
ScenarioSpec
microSpec()
{
    return parseSpec(R"([scenario]
name = tune-micro
insts = 30000

[workloads]
apps = gcc,m88ksim

[axes]
assoc = 2,4
org = ways,sets

[search]
strategy = static
side = dcache
mode = adaptive
ladder = analytic,full
promote = 0.5
min-survivors = 2
)");
}

std::string
pathIn(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The tuner's objective, recomputed from a sweep record. */
double
scoreOf(const SweepRecord &r)
{
    return r.baselineEdp > 0
               ? r.bestEdp / r.baselineEdp
               : std::numeric_limits<double>::max();
}

/** Exhaustive sweep of @p spec, records in cell order. */
std::vector<SweepRecord>
exhaustiveRecords(const ScenarioSpec &spec, const std::string &tag)
{
    SweepOptions so;
    so.outPath = pathIn(tag + ".csv");
    so.quiet = true;
    EXPECT_EQ(runScenarioSweep(spec, so), 0);
    std::ifstream in(so.outPath, std::ios::binary);
    std::string err;
    const auto records = readSweepCsv(in, &err);
    EXPECT_TRUE(records) << err;
    return *records;
}

TuneOptions
quietTune()
{
    TuneOptions opt;
    opt.quiet = true;
    opt.emitOutputs = false;
    return opt;
}

} // namespace

TEST(AdaptiveSearchTest, WinnerMatchesExhaustiveSweep)
{
    const ScenarioSpec spec = microSpec();

    // The ground truth: every cell at full detail, ranked by the
    // tuner's own objective with its own tie-break.
    const auto records = exhaustiveRecords(spec, "adaptive_exh");
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double sa = scoreOf(records[a]);
                  const double sb = scoreOf(records[b]);
                  if (sa != sb)
                      return sa < sb;
                  return records[a].cell < records[b].cell;
              });
    const double best = scoreOf(records[order[0]]);

    TuneStats stats;
    ASSERT_EQ(runAdaptiveSearch(spec, quietTune(), &stats), 0);
    EXPECT_EQ(stats.cells, records.size());
    EXPECT_LT(stats.detailedInsts, stats.exhaustiveDetailedInsts);

    // Near-tie gate: the adaptive winner must be the exhaustive
    // winner outright, unless the runner-up is within 0.1% relative
    // E.D — then any member of the tied set is a correct answer
    // (the paper's own figure treats such cells as equivalent).
    std::vector<std::uint64_t> acceptable;
    for (const std::size_t i : order)
        if (scoreOf(records[i]) <= best * 1.001)
            acceptable.push_back(records[i].cell);
    EXPECT_TRUE(std::find(acceptable.begin(), acceptable.end(),
                          stats.winner.cell) != acceptable.end())
        << "adaptive winner " << stats.winner.cell
        << " not in the exhaustive near-tie set";
    if (acceptable.size() == 1)
        EXPECT_EQ(stats.winner.cell, records[order[0]].cell);

    // The winner's record was produced at the final (full-detail)
    // rung, so when the cells agree the rows must be identical to
    // the exhaustive sweep's — byte for byte through the CSV writer.
    if (stats.winner.cell == records[order[0]].cell) {
        std::ostringstream a, b;
        writeSweepCsvRows(a, {stats.winner});
        writeSweepCsvRows(b, {records[order[0]]});
        EXPECT_EQ(a.str(), b.str());
    }
}

TEST(AdaptiveSearchTest, DecisionLogByteIdenticalAcrossJobs)
{
    const ScenarioSpec spec = microSpec();

    TuneOptions opt = quietTune();
    opt.emitOutputs = true;
    opt.outPath = pathIn("adaptive_j1.csv");
    opt.logPath = pathIn("adaptive_j1.log");
    opt.jobs = 1;
    TuneStats s1;
    ASSERT_EQ(runAdaptiveSearch(spec, opt, &s1), 0);

    opt.outPath = pathIn("adaptive_j4.csv");
    opt.logPath = pathIn("adaptive_j4.log");
    opt.jobs = 4;
    TuneStats s4;
    ASSERT_EQ(runAdaptiveSearch(spec, opt, &s4), 0);

    EXPECT_EQ(s1.logText, s4.logText);
    EXPECT_EQ(slurp(pathIn("adaptive_j1.log")),
              slurp(pathIn("adaptive_j4.log")));
    EXPECT_EQ(slurp(pathIn("adaptive_j1.csv")),
              slurp(pathIn("adaptive_j4.csv")));
    EXPECT_FALSE(s1.logText.empty());
}

TEST(AdaptiveSearchTest, ResumeRegeneratesIdenticalLog)
{
    const ScenarioSpec spec = microSpec();

    TuneOptions opt = quietTune();
    opt.emitOutputs = true;
    opt.outPath = pathIn("adaptive_resume_ref.csv");
    opt.logPath = pathIn("adaptive_resume_ref.log");
    TuneStats ref;
    ASSERT_EQ(runAdaptiveSearch(spec, opt, &ref), 0);
    const std::string full_log = slurp(opt.logPath);

    // Truncate the log at every line boundary; each prefix must
    // resume into a byte-identical log and the same winner —
    // complete rounds are adopted, incomplete ones re-run.
    std::vector<std::string> lines;
    std::istringstream is(full_log);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    ASSERT_GT(lines.size(), 3u);

    for (std::size_t keep = 1; keep < lines.size(); ++keep) {
        const std::string prefix_path =
            pathIn("adaptive_resume_prefix.log");
        std::ofstream prefix(prefix_path,
                             std::ios::binary | std::ios::trunc);
        for (std::size_t i = 0; i < keep; ++i)
            prefix << lines[i] << '\n';
        prefix.close();

        TuneOptions ropt = quietTune();
        ropt.emitOutputs = true;
        ropt.outPath = pathIn("adaptive_resume_out.csv");
        ropt.logPath = pathIn("adaptive_resume_out.log");
        ropt.resumePath = prefix_path;
        TuneStats rs;
        ASSERT_EQ(runAdaptiveSearch(spec, ropt, &rs), 0)
            << "resume from a " << keep << "-line prefix";
        EXPECT_EQ(slurp(ropt.logPath), full_log)
            << "resume from a " << keep << "-line prefix";
        EXPECT_EQ(rs.winner.cell, ref.winner.cell);
        EXPECT_EQ(slurp(ropt.outPath),
                  slurp(pathIn("adaptive_resume_ref.csv")));
    }

    // A foreign plan line is a hard error, not a silent restart.
    const std::string bad_path = pathIn("adaptive_resume_bad.log");
    std::ofstream bad(bad_path, std::ios::binary | std::ios::trunc);
    bad << "{\"schema\":\"rcache-tune-v1\",\"scenario\":\"other\"}\n";
    bad.close();
    TuneOptions bopt = quietTune();
    bopt.resumePath = bad_path;
    EXPECT_NE(runAdaptiveSearch(spec, bopt, nullptr), 0);
}

TEST(AdaptiveSearchTest, RankAgreementExitsEarly)
{
    // Three rungs; the analytic and sampled rounds agree on the
    // top-3 for this grid, so the full-detail round never runs.
    const ScenarioSpec spec = parseSpec(R"([scenario]
name = tune-early
insts = 120000

[workloads]
apps = gcc,swim,m88ksim

[axes]
assoc = 2,4,8
org = ways,sets

[search]
strategy = static
side = dcache
mode = adaptive
ladder = analytic,sampled,full
promote = 0.5
rank-agree = 3
sample-interval = 30000
)");

    TuneStats stats;
    ASSERT_EQ(runAdaptiveSearch(spec, quietTune(), &stats), 0);
    EXPECT_TRUE(stats.earlyExit);
    EXPECT_LT(stats.rounds, 3u);
    EXPECT_NE(stats.logText.find("\"event\":\"early-exit\""),
              std::string::npos);
    // Skipping the full-detail round is where the >= 5x budget
    // reduction comes from; pin it structurally.
    EXPECT_GE(stats.exhaustiveDetailedInsts,
              5 * stats.detailedInsts);
}

TEST(AdaptiveSearchTest, PromotionHonorsFractionAndFloor)
{
    // 8 cells at promote 0.5: ceil(0.5 * 8) = 4 survive round 0.
    TuneStats stats;
    ASSERT_EQ(runAdaptiveSearch(microSpec(), quietTune(), &stats),
              0);
    EXPECT_NE(stats.logText.find("\"keep\":4,\"dropped\":4"),
              std::string::npos)
        << stats.logText;

    // A tiny fraction bottoms out at min-survivors, never below.
    ScenarioSpec floor_spec = microSpec();
    floor_spec.search.adaptive.promote = {0.01};
    TuneStats floor_stats;
    ASSERT_EQ(
        runAdaptiveSearch(floor_spec, quietTune(), &floor_stats), 0);
    EXPECT_NE(
        floor_stats.logText.find("\"keep\":2,\"dropped\":6"),
        std::string::npos)
        << floor_stats.logText;
}

TEST(AdaptiveSearchTest, RejectsNonAdaptiveAndBadAxes)
{
    // Exhaustive scenarios are a sweep's job.
    ScenarioSpec exhaustive = microSpec();
    exhaustive.search.mode = SearchMode::Exhaustive;
    EXPECT_NE(runAdaptiveSearch(exhaustive, quietTune(), nullptr),
              0);

    // The tuner owns the fidelity ladder; a sample.interval axis
    // would fight it.
    ScenarioSpec axis_spec = microSpec();
    axis_spec.axes.push_back(Axis{"sample.interval", {"10000"}});
    EXPECT_NE(runAdaptiveSearch(axis_spec, quietTune(), nullptr), 0);

    // Resume and claim cannot both drive allocation.
    TuneOptions both = quietTune();
    both.resumePath = pathIn("nope.log");
    both.claimDir = pathIn("nope.claim");
    EXPECT_NE(runAdaptiveSearch(microSpec(), both, nullptr), 0);
}

} // namespace rcache
