/** @file Tests for the experiment (profiling search) driver. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
constexpr std::uint64_t kInsts = 120000;
} // namespace

TEST(ExperimentTest, BaselineIsMemoized)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    RunResult a = exp.baseline(p);
    RunResult b = exp.baseline(p);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(ExperimentTest, StaticSearchPicksMinimumED)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    auto out = exp.staticSearch(p, CacheSide::DCache,
                                Organization::SelectiveSets);
    // ammp has a tiny working set: a much smaller cache must win.
    EXPECT_GT(out.bestLevel, 0u);
    EXPECT_GT(out.edReductionPct(), 5.0);
    EXPECT_LT(out.best.avgDl1Bytes, 32 * 1024.0);
    // And the best point cannot be worse than the full-size point.
    EXPECT_LE(out.best.edp(), out.baseline.edp() * 1.01);
}

TEST(ExperimentTest, StaticSearchOnlyTouchesRequestedSide)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    auto d = exp.staticSearch(p, CacheSide::DCache,
                              Organization::SelectiveSets);
    EXPECT_DOUBLE_EQ(d.best.avgIl1Bytes, 32 * 1024.0);
    auto i = exp.staticSearch(p, CacheSide::ICache,
                              Organization::SelectiveSets);
    EXPECT_DOUBLE_EQ(i.best.avgDl1Bytes, 32 * 1024.0);
}

TEST(ExperimentTest, DynamicSearchNeverMuchWorseThanBaseline)
{
    // The grid includes a size-bound equal to the full size, so the
    // profiled dynamic point can only lose the resizing-tag-bit
    // overhead.
    Experiment exp(SystemConfig::base(), kInsts);
    for (const char *n : {"swim", "gcc"}) {
        auto out = exp.dynamicSearch(profileByName(n),
                                     CacheSide::DCache,
                                     Organization::SelectiveSets);
        EXPECT_GT(out.edReductionPct(), -1.0) << n;
    }
}

TEST(ExperimentTest, DynamicSearchShrinksSmallWorkingSet)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto out = exp.dynamicSearch(profileByName("ammp"),
                                 CacheSide::DCache,
                                 Organization::SelectiveSets);
    EXPECT_GT(out.sizeReductionPct(CacheSide::DCache), 30.0);
    EXPECT_GT(out.edReductionPct(), 3.0);
}

TEST(ExperimentTest, BothSidesOutcomeCombines)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("m88ksim");
    auto both = exp.staticSearchBoth(p, Organization::SelectiveSets);
    EXPECT_LT(both.best.avgDl1Bytes, 32 * 1024.0);
    EXPECT_LT(both.best.avgIl1Bytes, 32 * 1024.0);
    auto d = exp.staticSearch(p, CacheSide::DCache,
                              Organization::SelectiveSets);
    auto i = exp.staticSearch(p, CacheSide::ICache,
                              Organization::SelectiveSets);
    // Additivity within slack (paper Fig 9).
    EXPECT_NEAR(both.edReductionPct(),
                d.edReductionPct() + i.edReductionPct(), 4.0);
}

TEST(ExperimentTest, RunPointHonorsExplicitSetups)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    RunResult r = exp.runPoint(
        p, Organization::SelectiveSets, Organization::SelectiveWays,
        ResizeSetup{Strategy::Static, 1, {}},
        ResizeSetup{Strategy::Static, 1, {}});
    EXPECT_DOUBLE_EQ(r.avgIl1Bytes, 16 * 1024.0); // sets level 1
    EXPECT_DOUBLE_EQ(r.avgDl1Bytes, 16 * 1024.0); // ways level 1 (1w)
}

TEST(ExperimentTest, SearchGridsExposed)
{
    EXPECT_FALSE(Experiment::missBoundFractions().empty());
    EXPECT_FALSE(Experiment::intervalGrid().empty());
    for (double f : Experiment::missBoundFractions()) {
        EXPECT_GT(f, 0.0);
        EXPECT_LT(f, 1.0);
    }
}

TEST(ExperimentTest, TieBreakPrefersLargerCacheLowerIndex)
{
    // Equal-E.D candidates: the documented strict-< contract keeps
    // the first minimum, i.e. the lower index / larger cache.
    RunResult base;
    base.insts = 1000;
    base.cycles = 100;
    base.energy.core = 10.0;

    auto point = [](double energy, std::uint64_t cycles) {
        RunResult r;
        r.insts = 1000;
        r.cycles = cycles;
        r.energy.core = energy;
        return r;
    };
    // Levels 1 and 2 have exactly equal E.D (8*100 == 4*200);
    // level 3 is strictly worse.
    const std::vector<RunResult> results = {
        point(10.0, 100), point(8.0, 100), point(4.0, 200),
        point(12.0, 100)};
    const SearchOutcome out =
        Experiment::reduceStatic(base, results);
    EXPECT_EQ(out.bestLevel, 1u);
    EXPECT_DOUBLE_EQ(out.best.edp(), 800.0);

    // Same contract through the dynamic reduction.
    std::vector<DynamicParams> grid(results.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        grid[i].intervalAccesses = 1024 * (i + 1);
    const SearchOutcome dyn =
        Experiment::reduceDynamic(base, grid, results);
    EXPECT_EQ(dyn.bestParams.intervalAccesses, 2 * 1024u);
}

TEST(ExperimentTest, ZeroBaselineGuardsReturnZero)
{
    // Degenerate baselines (zero E.D / zero enabled bytes) must not
    // divide by zero; the accessors warn and return 0.
    SearchOutcome out;
    out.best.cycles = 100;
    out.best.energy.core = 5.0;
    out.best.avgDl1Bytes = 1024;
    EXPECT_EQ(out.baseline.edp(), 0.0);
    EXPECT_DOUBLE_EQ(out.relativeED(), 0.0);
    EXPECT_DOUBLE_EQ(out.edReductionPct(), 0.0);
    EXPECT_DOUBLE_EQ(out.perfDegradationPct(), 0.0);
    EXPECT_DOUBLE_EQ(out.sizeReductionPct(CacheSide::DCache), 0.0);
    EXPECT_DOUBLE_EQ(out.sizeReductionPct(CacheSide::ICache), 0.0);
}

TEST(ExperimentTest, SearchGridOverrideShrinksDynamicGrid)
{
    Experiment exp(SystemConfig::base(), kInsts);
    const std::size_t full_size =
        exp.dynamicGrid(CacheSide::DCache,
                        Organization::SelectiveSets)
            .size();
    EXPECT_EQ(full_size, 2u * 4u * 4u);

    SearchGrid grid;
    grid.intervals = {4096};
    grid.missFractions = {0.01};
    grid.sizeFractions = {0, 1.0};
    exp.setSearchGrid(grid);
    const auto small = exp.dynamicGrid(CacheSide::DCache,
                                       Organization::SelectiveSets);
    ASSERT_EQ(small.size(), 2u);
    EXPECT_EQ(small[0].intervalAccesses, 4096u);
    EXPECT_EQ(small[0].missBound, 40u);
    EXPECT_EQ(small[0].sizeBoundBytes, 0u);
    EXPECT_EQ(small[1].sizeBoundBytes, 32u * 1024u);
}

TEST(ExperimentTest, GenericSearchMatchesWrappers)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    const SearchOutcome wrapped = exp.staticSearch(
        p, CacheSide::DCache, Organization::SelectiveSets);
    const SearchOutcome generic =
        exp.search(p, CacheSide::DCache,
                   Organization::SelectiveSets, Strategy::Static);
    EXPECT_EQ(wrapped.bestLevel, generic.bestLevel);
    EXPECT_DOUBLE_EQ(wrapped.best.edp(), generic.best.edp());
}

TEST(ExperimentTest, PerfDegradationSignConvention)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto out = exp.staticSearch(profileByName("ammp"),
                                CacheSide::DCache,
                                Organization::SelectiveSets);
    // Downsizing can only slow the run down (or leave it equal).
    EXPECT_GE(out.perfDegradationPct(), -0.5);
}

} // namespace rcache
