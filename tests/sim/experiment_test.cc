/** @file Tests for the experiment (profiling search) driver. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{
constexpr std::uint64_t kInsts = 120000;
} // namespace

TEST(ExperimentTest, BaselineIsMemoized)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    RunResult a = exp.baseline(p);
    RunResult b = exp.baseline(p);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(ExperimentTest, StaticSearchPicksMinimumED)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    auto out = exp.staticSearch(p, CacheSide::DCache,
                                Organization::SelectiveSets);
    // ammp has a tiny working set: a much smaller cache must win.
    EXPECT_GT(out.bestLevel, 0u);
    EXPECT_GT(out.edReductionPct(), 5.0);
    EXPECT_LT(out.best.avgDl1Bytes, 32 * 1024.0);
    // And the best point cannot be worse than the full-size point.
    EXPECT_LE(out.best.edp(), out.baseline.edp() * 1.01);
}

TEST(ExperimentTest, StaticSearchOnlyTouchesRequestedSide)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    auto d = exp.staticSearch(p, CacheSide::DCache,
                              Organization::SelectiveSets);
    EXPECT_DOUBLE_EQ(d.best.avgIl1Bytes, 32 * 1024.0);
    auto i = exp.staticSearch(p, CacheSide::ICache,
                              Organization::SelectiveSets);
    EXPECT_DOUBLE_EQ(i.best.avgDl1Bytes, 32 * 1024.0);
}

TEST(ExperimentTest, DynamicSearchNeverMuchWorseThanBaseline)
{
    // The grid includes a size-bound equal to the full size, so the
    // profiled dynamic point can only lose the resizing-tag-bit
    // overhead.
    Experiment exp(SystemConfig::base(), kInsts);
    for (const char *n : {"swim", "gcc"}) {
        auto out = exp.dynamicSearch(profileByName(n),
                                     CacheSide::DCache,
                                     Organization::SelectiveSets);
        EXPECT_GT(out.edReductionPct(), -1.0) << n;
    }
}

TEST(ExperimentTest, DynamicSearchShrinksSmallWorkingSet)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto out = exp.dynamicSearch(profileByName("ammp"),
                                 CacheSide::DCache,
                                 Organization::SelectiveSets);
    EXPECT_GT(out.sizeReductionPct(CacheSide::DCache), 30.0);
    EXPECT_GT(out.edReductionPct(), 3.0);
}

TEST(ExperimentTest, BothSidesOutcomeCombines)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("m88ksim");
    auto both = exp.staticSearchBoth(p, Organization::SelectiveSets);
    EXPECT_LT(both.best.avgDl1Bytes, 32 * 1024.0);
    EXPECT_LT(both.best.avgIl1Bytes, 32 * 1024.0);
    auto d = exp.staticSearch(p, CacheSide::DCache,
                              Organization::SelectiveSets);
    auto i = exp.staticSearch(p, CacheSide::ICache,
                              Organization::SelectiveSets);
    // Additivity within slack (paper Fig 9).
    EXPECT_NEAR(both.edReductionPct(),
                d.edReductionPct() + i.edReductionPct(), 4.0);
}

TEST(ExperimentTest, RunPointHonorsExplicitSetups)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto p = profileByName("ammp");
    RunResult r = exp.runPoint(
        p, Organization::SelectiveSets, Organization::SelectiveWays,
        ResizeSetup{Strategy::Static, 1, {}},
        ResizeSetup{Strategy::Static, 1, {}});
    EXPECT_DOUBLE_EQ(r.avgIl1Bytes, 16 * 1024.0); // sets level 1
    EXPECT_DOUBLE_EQ(r.avgDl1Bytes, 16 * 1024.0); // ways level 1 (1w)
}

TEST(ExperimentTest, SearchGridsExposed)
{
    EXPECT_FALSE(Experiment::missBoundFractions().empty());
    EXPECT_FALSE(Experiment::intervalGrid().empty());
    for (double f : Experiment::missBoundFractions()) {
        EXPECT_GT(f, 0.0);
        EXPECT_LT(f, 1.0);
    }
}

TEST(ExperimentTest, PerfDegradationSignConvention)
{
    Experiment exp(SystemConfig::base(), kInsts);
    auto out = exp.staticSearch(profileByName("ammp"),
                                CacheSide::DCache,
                                Organization::SelectiveSets);
    // Downsizing can only slow the run down (or leave it equal).
    EXPECT_GE(out.perfDegradationPct(), -0.5);
}

} // namespace rcache
