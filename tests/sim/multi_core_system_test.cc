/** @file
 * Tests for MultiCoreSystem: determinism, per-core/shared-L2
 * attribution consistency, lane isolation vs the single-core System,
 * mixed core models, sampling, and the executeRunJob dispatch.
 */

#include <gtest/gtest.h>

#include "runner/sweep_runner.hh"
#include "scenario/scenario_sweep.hh"
#include "sim/multi_core_system.hh"

#include <fstream>
#include <sstream>

namespace rcache
{

namespace
{

constexpr std::uint64_t kInsts = 60000;

std::vector<BenchmarkProfile>
mixOf(const std::string &name)
{
    auto mix = mixByName(name);
    EXPECT_TRUE(mix) << name;
    return *mix;
}

MultiCoreResult
runMix(const std::string &mix, unsigned cores,
       const EngineSpec &engine = {})
{
    SystemConfig cfg = SystemConfig::base();
    cfg.cores = cores;
    MultiCoreSystem sys(cfg);
    return sys.run(mixOf(mix), kInsts, {}, {}, engine);
}

} // namespace

TEST(MultiCoreSystemTest, DeterministicAcrossRuns)
{
    const MultiCoreResult a = runMix("gcc+m88ksim", 2);
    const MultiCoreResult b = runMix("gcc+m88ksim", 2);

    EXPECT_EQ(a.aggregate.cycles, b.aggregate.cycles);
    EXPECT_DOUBLE_EQ(a.aggregate.energy.total(),
                     b.aggregate.energy.total());
    EXPECT_EQ(a.l2Totals.accesses, b.l2Totals.accesses);
    EXPECT_EQ(a.l2Totals.misses, b.l2Totals.misses);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(a.perCore[c].cycles, b.perCore[c].cycles);
        EXPECT_DOUBLE_EQ(a.perCore[c].energy.total(),
                         b.perCore[c].energy.total());
    }
}

TEST(MultiCoreSystemTest, PerCoreAttributionSumsToSharedTotals)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.cores = 4;
    MultiCoreSystem sys(cfg);
    const MultiCoreResult r =
        sys.run(mixOf("gcc+swim"), kInsts);

    // Total L2 accesses == sum of the per-core attributions == the
    // shared cache's own counter (the acceptance identity).
    SharedL2CoreStats sum;
    for (const SharedL2CoreStats &s : r.l2PerCore) {
        sum.accesses += s.accesses;
        sum.hits += s.hits;
        sum.misses += s.misses;
        sum.memReads += s.memReads;
        sum.memWrites += s.memWrites;
    }
    EXPECT_EQ(sum.accesses, r.l2Totals.accesses);
    EXPECT_EQ(sum.misses, r.l2Totals.misses);
    EXPECT_EQ(r.l2Totals.accesses, sys.sharedL2().cache().accesses());
    EXPECT_EQ(r.l2Totals.misses, sys.sharedL2().cache().misses());
    EXPECT_EQ(r.l2Totals.hits + r.l2Totals.misses,
              r.l2Totals.accesses);

    // The makespan is the slowest core; instructions sum.
    std::uint64_t max_cycles = 0, insts = 0;
    for (const RunResult &c : r.perCore) {
        max_cycles = std::max(max_cycles, c.cycles);
        insts += c.insts;
    }
    EXPECT_EQ(r.aggregate.cycles, max_cycles);
    EXPECT_EQ(r.aggregate.insts, insts);
    EXPECT_EQ(r.aggregate.insts, 4 * kInsts);
    EXPECT_GT(r.aggregate.energy.total(), 0.0);
}

TEST(MultiCoreSystemTest, LaneMatchesSingleCoreStream)
{
    // Private L1s + private predictor + disjoint address spaces: a
    // core's instruction-stream statistics are untouched by its
    // neighbors. (Cycles may differ slightly at quantum boundaries;
    // the stream-derived counts must not differ at all.)
    const MultiCoreResult mc = runMix("gcc+m88ksim", 2);

    SyntheticWorkload wl(profileByName("gcc"));
    System solo(SystemConfig::base());
    const RunResult s = solo.run(wl, kInsts);

    const RunResult &lane = mc.perCore[0];
    EXPECT_EQ(lane.workload, "gcc");
    EXPECT_EQ(lane.activity.loads, s.activity.loads);
    EXPECT_EQ(lane.activity.stores, s.activity.stores);
    EXPECT_EQ(lane.activity.branches, s.activity.branches);
    EXPECT_EQ(lane.activity.mispredicts, s.activity.mispredicts);
    // The d-cache sees the identical access sequence (contents carry
    // across quanta); the i-cache re-probes its current block once
    // per quantum restart, so its ratio may drift by that epsilon.
    EXPECT_DOUBLE_EQ(lane.dl1MissRatio, s.dl1MissRatio);
    EXPECT_NEAR(lane.il1MissRatio, s.il1MissRatio, 1e-4);
}

TEST(MultiCoreSystemTest, SmallSharedL2ShowsCrossCoreEvictions)
{
    // Two streaming FP apps over an 8 KB shared L2: capacity
    // contention must surface as cross-core evictions.
    SystemConfig cfg = SystemConfig::base();
    cfg.cores = 2;
    cfg.l2 = CacheGeometry{8 * 1024, 4, 32, 1024};
    MultiCoreSystem sys(cfg);
    const MultiCoreResult r = sys.run(mixOf("swim+tomcatv"), kInsts);

    EXPECT_GT(r.l2Totals.evictionsByOthers, 0u);
    EXPECT_EQ(r.l2Totals.evictionsByOthers, r.l2Totals.evictedOthers);
    for (const SharedL2CoreStats &s : r.l2PerCore)
        EXPECT_EQ(s.fills - s.evictionsBySelf - s.evictionsByOthers,
                  s.residentBlocks);
}

TEST(MultiCoreSystemTest, MixCyclesAcrossCores)
{
    const MultiCoreResult r = runMix("gcc+m88ksim", 3);
    ASSERT_EQ(r.perCore.size(), 3u);
    EXPECT_EQ(r.perCore[0].workload, "gcc");
    EXPECT_EQ(r.perCore[1].workload, "m88ksim");
    EXPECT_EQ(r.perCore[2].workload, "gcc");
}

TEST(MultiCoreSystemTest, MixedCoreModels)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.cores = 2;
    cfg.coreModels = {CoreModel::OutOfOrder, CoreModel::InOrder};
    MultiCoreSystem sys(cfg);
    const MultiCoreResult r = sys.run(mixOf("ammp"), kInsts);

    EXPECT_TRUE(r.perCore[0].activity.outOfOrder);
    EXPECT_FALSE(r.perCore[1].activity.outOfOrder);
    // Same stream, blocking d-cache: the in-order lane is slower.
    EXPECT_GT(r.perCore[1].cycles, r.perCore[0].cycles);
}

TEST(MultiCoreSystemTest, SampledRunExtrapolatesPerCore)
{
    const EngineSpec engine =
        EngineSpec::makeSampled(20000, 2000, 4000);
    const MultiCoreResult r = runMix("gcc+m88ksim", 2, engine);
    const MultiCoreResult again = runMix("gcc+m88ksim", 2, engine);

    EXPECT_EQ(r.aggregate.cycles, again.aggregate.cycles);
    EXPECT_DOUBLE_EQ(r.aggregate.energy.total(),
                     again.aggregate.energy.total());
    for (const RunResult &c : r.perCore) {
        EXPECT_EQ(c.engine, EngineMode::Sampled);
        EXPECT_EQ(c.insts, kInsts);
        EXPECT_GT(c.measuredInsts, 0u);
        EXPECT_LT(c.measuredInsts, kInsts);
        EXPECT_GT(c.cycles, 0u);
    }
    EXPECT_EQ(r.l2Totals.accesses,
              r.l2PerCore[0].accesses + r.l2PerCore[1].accesses);
}

TEST(MultiCoreSystemTest, ExecuteRunJobDispatchesOnCores)
{
    RunJob job;
    job.profile = profileByName("ammp");
    job.cfg = SystemConfig::base();
    job.cfg.cores = 2;
    job.insts = 20000;
    const RunResult r = executeRunJob(job);
    EXPECT_EQ(r.insts, 2 * job.insts);
    EXPECT_EQ(r.workload, "ammp");

    // With an explicit mix, components cycle across the cores.
    job.mixProfiles = mixOf("ammp+vpr");
    const RunResult m = executeRunJob(job);
    EXPECT_EQ(m.workload, "ammp+vpr");
    EXPECT_EQ(m.insts, 2 * job.insts);
}

TEST(MultiCoreSweepTest, ShardUnionEqualsFullMulticoreSweep)
{
    std::string err;
    auto spec = ScenarioSpec::parseText(R"([scenario]
name = mc-sweep
insts = 20000

[cores]
quantum = 5000

[workloads]
apps = ammp+vpr,gcc+m88ksim

[axes]
cores = 2,4
org = sets

[sampling]
interval = 10000
detail = 1000
warmup = 2000

[search]
strategy = static
)",
                                        "mc-sweep.scn", &err);
    ASSERT_TRUE(spec) << err;

    auto pathIn = [](const std::string &name) {
        return testing::TempDir() + "/" + name;
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    auto opts = [&](const std::string &path, unsigned i, unsigned n) {
        SweepOptions o;
        o.outPath = pathIn(path);
        o.quiet = true;
        std::string serr;
        auto shard =
            ShardSpec::parse(std::to_string(i) + "/" +
                             std::to_string(n), &serr);
        EXPECT_TRUE(shard) << serr;
        o.shard = *shard;
        return o;
    };

    SweepOptions full;
    full.outPath = pathIn("mc-full.csv");
    full.quiet = true;
    ASSERT_EQ(runScenarioSweep(*spec, full), 0);
    ASSERT_EQ(runScenarioSweep(*spec, opts("mc-s0.csv", 0, 2)), 0);
    ASSERT_EQ(runScenarioSweep(*spec, opts("mc-s1.csv", 1, 2)), 0);

    // Re-interleave the two shard CSVs by cell index.
    std::istringstream f(slurp(pathIn("mc-full.csv")));
    std::istringstream s0(slurp(pathIn("mc-s0.csv")));
    std::istringstream s1(slurp(pathIn("mc-s1.csv")));
    std::string full_line, l0, l1;
    ASSERT_TRUE(std::getline(f, full_line)); // header
    ASSERT_TRUE(std::getline(s0, l0));
    ASSERT_TRUE(std::getline(s1, l1));
    EXPECT_EQ(full_line, l0);
    EXPECT_EQ(full_line, l1);
    std::size_t cell = 0;
    while (std::getline(f, full_line)) {
        std::string &shard_line = (cell % 2 == 0) ? l0 : l1;
        std::istream &shard_is = (cell % 2 == 0)
                                     ? static_cast<std::istream &>(s0)
                                     : s1;
        ASSERT_TRUE(std::getline(shard_is, shard_line));
        EXPECT_EQ(full_line, shard_line) << "cell " << cell;
        ++cell;
    }
    EXPECT_EQ(cell, 4u); // 2 apps x 2 cores-axis values
}

} // namespace rcache
