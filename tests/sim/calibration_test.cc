/** @file
 * Energy-model calibration against the paper's Section 4 numbers:
 * with the base configuration, the d-cache dissipates ~18.5% and the
 * i-cache ~17.5% of total processor energy averaged over the suite,
 * and the in-order processor's i-cache share is ~4% higher than the
 * out-of-order one's.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rcache
{

namespace
{

struct Shares
{
    double dcache;
    double icache;
};

Shares
averageShares(CoreModel model)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = model;
    double d = 0, i = 0;
    auto suite = spec2000Suite();
    for (const auto &p : suite) {
        SyntheticWorkload wl(p);
        System sys(cfg);
        RunResult r = sys.run(wl, 150000);
        d += r.energy.dcacheFraction();
        i += r.energy.icacheFraction();
    }
    const double n = static_cast<double>(suite.size());
    return {100.0 * d / n, 100.0 * i / n};
}

} // namespace

TEST(CalibrationTest, BaseDcacheShareNearPaper)
{
    Shares s = averageShares(CoreModel::OutOfOrder);
    // Paper: 18.5%.
    EXPECT_GT(s.dcache, 15.0);
    EXPECT_LT(s.dcache, 23.0);
}

TEST(CalibrationTest, BaseIcacheShareNearPaper)
{
    Shares s = averageShares(CoreModel::OutOfOrder);
    // Paper: 17.5%.
    EXPECT_GT(s.icache, 14.0);
    EXPECT_LT(s.icache, 22.0);
}

TEST(CalibrationTest, InOrderIcacheShareHigher)
{
    // Paper Sec 4.2.2: in-order i-cache share ~4% higher (21.5%).
    Shares ooo = averageShares(CoreModel::OutOfOrder);
    Shares inord = averageShares(CoreModel::InOrder);
    EXPECT_GT(inord.icache, ooo.icache + 1.0);
    EXPECT_LT(inord.icache, ooo.icache + 8.0);
}

TEST(CalibrationTest, BaseIpcPlausible)
{
    // 4-wide OoO on SPEC-like mixes: IPC around 1-2.5.
    SystemConfig cfg = SystemConfig::base();
    double ipc = 0;
    auto suite = spec2000Suite();
    for (const auto &p : suite) {
        SyntheticWorkload wl(p);
        System sys(cfg);
        ipc += sys.run(wl, 150000).ipc();
    }
    ipc /= static_cast<double>(suite.size());
    EXPECT_GT(ipc, 0.8);
    EXPECT_LT(ipc, 3.0);
}

TEST(CalibrationTest, L1MissRatiosPlausible)
{
    // Base 32K 2-way: suite-average miss ratios in single digits.
    SystemConfig cfg = SystemConfig::base();
    double dm = 0, im = 0;
    auto suite = spec2000Suite();
    for (const auto &p : suite) {
        SyntheticWorkload wl(p);
        System sys(cfg);
        RunResult r = sys.run(wl, 150000);
        dm += r.dl1MissRatio;
        im += r.il1MissRatio;
    }
    const double n = static_cast<double>(suite.size());
    EXPECT_LT(100 * dm / n, 8.0);
    EXPECT_LT(100 * im / n, 8.0);
    EXPECT_GT(100 * dm / n, 0.1);
}

} // namespace rcache
