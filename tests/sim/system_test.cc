/** @file Tests for the System wiring. */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/profiles.hh"

namespace rcache
{

TEST(SystemTest, BaseConfigMatchesTable2)
{
    SystemConfig cfg = SystemConfig::base();
    EXPECT_EQ(cfg.core.dispatchWidth, 4u);
    EXPECT_EQ(cfg.core.robSize, 64u);
    EXPECT_EQ(cfg.core.lsqSize, 32u);
    EXPECT_EQ(cfg.core.mshrs, 8u);
    EXPECT_EQ(cfg.core.wbEntries, 8u);
    EXPECT_EQ(cfg.il1.size, 32 * 1024u);
    EXPECT_EQ(cfg.il1.assoc, 2u);
    EXPECT_EQ(cfg.dl1.size, 32 * 1024u);
    EXPECT_EQ(cfg.l2.size, 512 * 1024u);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.lat.l2Latency, 12u);
    EXPECT_EQ(cfg.lat.memBaseLatency, 80u);
    EXPECT_EQ(cfg.coreModel, CoreModel::OutOfOrder);
}

TEST(SystemTest, RunProducesConsistentResult)
{
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(SystemConfig::base());
    RunResult r = sys.run(wl, 50000);
    EXPECT_EQ(r.insts, 50000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.edp(), 0.0);
    EXPECT_EQ(r.workload, "ammp");
    // Full-size caches for the whole run.
    EXPECT_DOUBLE_EQ(r.avgDl1Bytes, 32 * 1024.0);
    EXPECT_DOUBLE_EQ(r.avgIl1Bytes, 32 * 1024.0);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    SyntheticWorkload w1(profileByName("gcc"));
    SyntheticWorkload w2(profileByName("gcc"));
    System s1(SystemConfig::base()), s2(SystemConfig::base());
    RunResult a = s1.run(w1, 50000);
    RunResult b = s2.run(w2, 50000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(SystemTest, StaticSetupShrinksCache)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(cfg);
    RunResult r =
        sys.run(wl, 50000, {}, ResizeSetup{Strategy::Static, 2, {}});
    EXPECT_DOUBLE_EQ(r.avgDl1Bytes, 8 * 1024.0);
    EXPECT_DOUBLE_EQ(r.avgIl1Bytes, 32 * 1024.0);
}

TEST(SystemTest, DynamicSetupRecordsTrace)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(cfg);
    DynamicParams dyn;
    dyn.intervalAccesses = 1024;
    dyn.missBound = 32;
    RunResult r =
        sys.run(wl, 100000, {}, ResizeSetup{Strategy::Dynamic, 0, dyn});
    EXPECT_FALSE(r.dl1LevelTrace.empty());
    EXPECT_TRUE(r.il1LevelTrace.empty());
    EXPECT_GT(r.dl1Resizes, 0u);
    EXPECT_LT(r.avgDl1Bytes, 32 * 1024.0); // ammp shrinks
}

TEST(SystemTest, InOrderSlowerThanOoO)
{
    SystemConfig ooo = SystemConfig::base();
    SystemConfig inord = ooo;
    inord.coreModel = CoreModel::InOrder;
    SyntheticWorkload w1(profileByName("compress"));
    SyntheticWorkload w2(profileByName("compress"));
    System so(ooo), si(inord);
    EXPECT_LT(so.run(w1, 50000).cycles, si.run(w2, 50000).cycles);
}

TEST(SystemTest, EnergySharesNonTrivial)
{
    SyntheticWorkload wl(profileByName("vortex"));
    System sys(SystemConfig::base());
    RunResult r = sys.run(wl, 100000);
    EXPECT_GT(r.energy.icache, 0.0);
    EXPECT_GT(r.energy.dcache, 0.0);
    EXPECT_GT(r.energy.l2, 0.0);
    EXPECT_GT(r.energy.core, 0.0);
    EXPECT_GT(r.energy.clock, 0.0);
}

TEST(SystemTest, CoreModelNames)
{
    EXPECT_EQ(coreModelName(CoreModel::OutOfOrder),
              "out-of-order/non-blocking");
    EXPECT_EQ(coreModelName(CoreModel::InOrder),
              "in-order/blocking");
}

TEST(SystemDeathTest, SecondRunPanics)
{
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(SystemConfig::base());
    sys.run(wl, 1000);
    EXPECT_DEATH(sys.run(wl, 1000), "assertion");
}

TEST(SystemDeathTest, DynamicOnNonResizableCachePanics)
{
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(SystemConfig::base()); // dl1Org == None
    DynamicParams dyn;
    EXPECT_DEATH(
        sys.run(wl, 1000, {}, ResizeSetup{Strategy::Dynamic, 0, dyn}),
        "assertion");
}

} // namespace rcache
