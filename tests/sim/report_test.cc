/** @file Tests for the run report formatting. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

RunResult
sampleRun()
{
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(SystemConfig::base());
    return sys.run(wl, 30000);
}

} // namespace

TEST(ReportTest, FormatDelta)
{
    EXPECT_EQ(formatDelta(1.0), "+0.0%");
    EXPECT_EQ(formatDelta(1.056), "+5.6%");
    EXPECT_EQ(formatDelta(0.9), "-10.0%");
}

TEST(ReportTest, RunReportContainsKeyFields)
{
    RunResult r = sampleRun();
    std::ostringstream os;
    writeRunReport(os, r);
    const std::string s = os.str();
    EXPECT_NE(s.find("ammp"), std::string::npos);
    EXPECT_NE(s.find("IPC"), std::string::npos);
    EXPECT_NE(s.find("miss ratios"), std::string::npos);
    EXPECT_NE(s.find("energy-delay product"), std::string::npos);
    EXPECT_NE(s.find(std::to_string(r.cycles)), std::string::npos);
}

TEST(ReportTest, ComparisonNormalizesToBaseline)
{
    RunResult base = sampleRun();
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(cfg);
    RunResult small =
        sys.run(wl, 30000, {}, ResizeSetup{Strategy::Static, 2, {}});

    std::ostringstream os;
    writeComparisonReport(os, base, {{"static 8K d$", small}});
    const std::string s = os.str();
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("static 8K d$"), std::string::npos);
    EXPECT_NE(s.find("8.0K"), std::string::npos);
    // The baseline row is all-zero deltas.
    EXPECT_NE(s.find("+0.0%"), std::string::npos);
}

TEST(ReportTest, ComparisonHandlesEmptyEntries)
{
    RunResult base = sampleRun();
    std::ostringstream os;
    writeComparisonReport(os, base, {});
    EXPECT_NE(os.str().find("baseline"), std::string::npos);
}

namespace
{

SweepRecord
sampleRecord()
{
    SweepRecord r;
    r.cell = 7;
    r.app = "ammp";
    r.org = "sets";
    r.strategy = "static";
    r.side = "dcache";
    r.axes = "assoc=4;org=sets";
    r.bestLevel = 3;
    r.edReductionPct = 12.5;
    r.perfDegradationPct = 0.5722431103582171;
    r.sizeReductionPct = 50.0;
    r.baselineEdp = 2.5e11;
    r.bestEdp = 2.0e11;
    r.baselineCycles = 48406;
    r.bestCycles = 48683;
    r.avgIl1Bytes = 32768;
    r.avgDl1Bytes = 4096;
    return r;
}

} // namespace

TEST(ReportTest, SweepCsvIsStableAndParsable)
{
    std::ostringstream os;
    writeSweepCsv(os, {sampleRecord()});
    const std::string s = os.str();
    // Header + one row, integral values as plain integers, and the
    // non-integral double at round-trip precision.
    EXPECT_EQ(s.substr(0, 5), "cell,");
    EXPECT_NE(
        s.find("\n7,ammp,sets,static,dcache,assoc=4;org=sets,3,"),
        std::string::npos);
    EXPECT_NE(s.find(",50,"), std::string::npos);
    EXPECT_NE(s.find("0.5722431103582171"), std::string::npos);
    EXPECT_NE(s.find(",32768,"), std::string::npos);

    // Same record, same bytes.
    std::ostringstream again;
    writeSweepCsv(again, {sampleRecord()});
    EXPECT_EQ(s, again.str());
}

TEST(ReportTest, SweepCsvRoundTripsExactly)
{
    // write -> read -> write is byte-identical: what makes resumed
    // sweeps indistinguishable from uninterrupted ones.
    SweepRecord plain = sampleRecord();
    SweepRecord empty_axes = sampleRecord();
    empty_axes.cell = 8;
    empty_axes.axes.clear();
    empty_axes.engine = EngineMode::Sampled;
    empty_axes.policy = "wtlfu";
    std::ostringstream first;
    writeSweepCsv(first, {plain, empty_axes});

    std::istringstream back(first.str());
    std::string err;
    auto records = readSweepCsv(back, &err);
    ASSERT_TRUE(records) << err;
    ASSERT_EQ(records->size(), 2u);
    EXPECT_EQ(records->front().cell, 7u);
    EXPECT_EQ(records->front().axes, "assoc=4;org=sets");
    EXPECT_DOUBLE_EQ(records->front().perfDegradationPct,
                     0.5722431103582171);
    EXPECT_EQ(records->back().engine, EngineMode::Sampled);
    EXPECT_EQ(records->back().policy, "wtlfu");

    std::ostringstream second;
    writeSweepCsv(second, *records);
    EXPECT_EQ(first.str(), second.str());
}

TEST(ReportTest, SweepCsvReaderIsStrict)
{
    std::string err;

    std::istringstream bad_header("nope\n1,2\n");
    EXPECT_FALSE(readSweepCsv(bad_header, &err));
    EXPECT_NE(err.find("header"), std::string::npos);

    std::istringstream short_row(sweepCsvHeader() + "\n1,ammp\n");
    EXPECT_FALSE(readSweepCsv(short_row, &err));
    EXPECT_NE(err.find("21 fields"), std::string::npos);

    std::ostringstream good;
    writeSweepCsv(good, {sampleRecord()});
    std::istringstream bad_cell(
        good.str() + "x" + good.str().substr(sweepCsvHeader().size() +
                                             2));
    EXPECT_FALSE(readSweepCsv(bad_cell, &err));
}

TEST(ReportTest, SweepJsonCarriesAllFields)
{
    std::ostringstream os;
    writeSweepJson(os, {sampleRecord(), sampleRecord()});
    const std::string s = os.str();
    EXPECT_EQ(s.front(), '[');
    EXPECT_NE(s.find("\"app\": \"ammp\""), std::string::npos);
    EXPECT_NE(s.find("\"best_level\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"ed_reduction_pct\": 12.5"),
              std::string::npos);
    // Two objects, comma-separated.
    EXPECT_NE(s.find("},\n"), std::string::npos);
}

TEST(ReportTest, SweepTableListsEveryRecord)
{
    std::ostringstream os;
    writeSweepTable(os, {sampleRecord()});
    const std::string s = os.str();
    EXPECT_NE(s.find("ammp"), std::string::npos);
    EXPECT_NE(s.find("sets"), std::string::npos);
    EXPECT_NE(s.find("4.0K"), std::string::npos);
}

TEST(ReportTest, SweepWritersCarryEngineProvenance)
{
    SweepRecord full = sampleRecord();
    SweepRecord sampled = sampleRecord();
    sampled.engine = EngineMode::Sampled;
    SweepRecord analytic = sampleRecord();
    analytic.engine = EngineMode::Analytic;

    std::ostringstream csv;
    writeSweepCsv(csv, {full, sampled, analytic});
    EXPECT_NE(csv.str().find(",engine,policy\n"), std::string::npos);
    EXPECT_NE(csv.str().find(",full,lru\n"), std::string::npos);
    EXPECT_NE(csv.str().find(",sampled,lru\n"), std::string::npos);
    EXPECT_NE(csv.str().find(",analytic,lru\n"), std::string::npos);

    std::ostringstream json;
    writeSweepJson(json, {analytic});
    EXPECT_NE(json.str().find("\"engine\": \"analytic\""),
              std::string::npos);

    std::ostringstream table;
    writeSweepTable(table, {sampled});
    EXPECT_NE(table.str().find("sampled"), std::string::npos);
}

} // namespace rcache
