/** @file Tests for the run report formatting. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

RunResult
sampleRun()
{
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(SystemConfig::base());
    return sys.run(wl, 30000);
}

} // namespace

TEST(ReportTest, FormatDelta)
{
    EXPECT_EQ(formatDelta(1.0), "+0.0%");
    EXPECT_EQ(formatDelta(1.056), "+5.6%");
    EXPECT_EQ(formatDelta(0.9), "-10.0%");
}

TEST(ReportTest, RunReportContainsKeyFields)
{
    RunResult r = sampleRun();
    std::ostringstream os;
    writeRunReport(os, r);
    const std::string s = os.str();
    EXPECT_NE(s.find("ammp"), std::string::npos);
    EXPECT_NE(s.find("IPC"), std::string::npos);
    EXPECT_NE(s.find("miss ratios"), std::string::npos);
    EXPECT_NE(s.find("energy-delay product"), std::string::npos);
    EXPECT_NE(s.find(std::to_string(r.cycles)), std::string::npos);
}

TEST(ReportTest, ComparisonNormalizesToBaseline)
{
    RunResult base = sampleRun();
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    SyntheticWorkload wl(profileByName("ammp"));
    System sys(cfg);
    RunResult small =
        sys.run(wl, 30000, {}, ResizeSetup{Strategy::Static, 2, {}});

    std::ostringstream os;
    writeComparisonReport(os, base, {{"static 8K d$", small}});
    const std::string s = os.str();
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("static 8K d$"), std::string::npos);
    EXPECT_NE(s.find("8.0K"), std::string::npos);
    // The baseline row is all-zero deltas.
    EXPECT_NE(s.find("+0.0%"), std::string::npos);
}

TEST(ReportTest, ComparisonHandlesEmptyEntries)
{
    RunResult base = sampleRun();
    std::ostringstream os;
    writeComparisonReport(os, base, {});
    EXPECT_NE(os.str().find("baseline"), std::string::npos);
}

} // namespace rcache
