/**
 * @file
 * Replacement policies driven end to end by the checked-in trace
 * fixtures (tests/data): the W-TinyLFU-beats-LRU scan property the
 * policy zoo exists for, and golden per-policy miss ratios on the
 * mini traces of every on-disk format.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cache/replacement.hh"
#include "sim/system.hh"
#include "util/numformat.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_format.hh"

namespace rcache
{

namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(RCACHE_TEST_DATA_DIR) + "/" + name;
}

/** Run @p spec_text for @p insts under @p policy (base config). */
RunResult
runTrace(const std::string &spec_text, const std::string &policy,
         std::uint64_t insts)
{
    TraceSpec spec;
    std::string err;
    EXPECT_TRUE(parseTraceSpec(spec_text, &spec, &err)) << err;
    auto wl = StreamingTraceWorkload::open(spec, spec_text, &err);
    EXPECT_TRUE(wl) << err;
    SystemConfig cfg = SystemConfig::base();
    cfg.policy = policy;
    System sys(cfg);
    return sys.run(*wl, insts);
}

} // namespace

TEST(PolicyTraceTest, WtlfuBeatsLruOnSkewedScanTrace)
{
    // skewed_scan.trace (see tests/data/gen_fixtures.py): 8 hot
    // blocks, each touched every 32nd access, with 3 conflicting
    // one-shot scan fills landing in their 2-way sets in between.
    // LRU evicts the hot set every round; the frequency-gated wtlfu
    // admission keeps it resident, so its d-side miss ratio must be
    // clearly lower — the property the policy zoo exists for.
    const std::string spec =
        "trace:" + dataPath("skewed_scan.trace");
    const RunResult lru = runTrace(spec, "lru", 20000);
    const RunResult wtlfu = runTrace(spec, "wtlfu", 20000);
    EXPECT_GT(lru.dl1MissRatio, 0.9)
        << "the scan should thrash plain LRU";
    EXPECT_LT(wtlfu.dl1MissRatio + 0.05, lru.dl1MissRatio)
        << "admission filtering should retain the hot set";
}

TEST(PolicyTraceTest, GoldenMissRatiosOnMiniTraces)
{
    // Golden per-policy miss ratios over the checked-in mini traces
    // of every on-disk format. Pins the whole seam at once: trace
    // decoding, policy metadata updates, victim selection, admission,
    // and the deterministic policy seeds. Regenerate (after a
    // reviewed change) by running this test and copying the
    // "actual" file it prints into tests/data/.
    const char *traces[] = {"mini.trace", "mini_rocksdb.csv",
                            "mini_lcs.bin"};
    std::ostringstream actual;
    actual << "policy,trace,dl1_miss_ratio\n";
    for (const std::string &policy : replacementPolicyNames()) {
        for (const char *trace : traces) {
            const RunResult r = runTrace(
                "trace:" + dataPath(trace), policy, 20000);
            actual << policy << ',' << trace << ','
                   << shortestDouble(r.dl1MissRatio) << '\n';
        }
    }

    std::ifstream golden(dataPath("policy_miss_ratios.golden.csv"));
    std::stringstream want;
    if (golden)
        want << golden.rdbuf();
    if (!golden || actual.str() != want.str()) {
        const std::string out = ::testing::TempDir() +
                                "policy_miss_ratios.actual.csv";
        std::ofstream f(out);
        f << actual.str();
        FAIL() << "golden miss-ratio drift; actual written to " << out
               << "\n--- actual ---\n"
               << actual.str();
    }
}

#ifdef RCACHE_HAVE_ZLIB

TEST(PolicyTraceTest, GzipTraceRunsIdenticalToPlain)
{
    // The gzip path is pure transport: a .csv.gz run must be
    // indistinguishable from the plain .csv run, policy included.
    const RunResult plain = runTrace(
        "trace:" + dataPath("mini_rocksdb.csv"), "slru", 20000);
    const RunResult gz = runTrace(
        "trace:" + dataPath("mini_rocksdb.csv.gz"), "slru", 20000);
    EXPECT_EQ(plain.cycles, gz.cycles);
    EXPECT_DOUBLE_EQ(plain.dl1MissRatio, gz.dl1MissRatio);
    EXPECT_EQ(plain.dl1Misses, gz.dl1Misses);
}

#endif // RCACHE_HAVE_ZLIB

TEST(PolicyTraceTest, PoliciesAreDeterministicAcrossRuns)
{
    // Same trace, same policy, same config => byte-equal counters
    // (the sweep's byte-identity contract leans on this).
    for (const std::string &policy : replacementPolicyNames()) {
        SCOPED_TRACE(policy);
        const std::string spec = "trace:" + dataPath("mini.trace");
        const RunResult a = runTrace(spec, policy, 15000);
        const RunResult b = runTrace(spec, policy, 15000);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.dl1Misses, b.dl1Misses);
        EXPECT_EQ(a.il1Misses, b.il1Misses);
        EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    }
}

} // namespace rcache
