/** @file Tests for the text-table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/table.hh"

namespace rcache
{

TEST(TextTableTest, AlignsColumns)
{
    TextTable t({"a", "long-header"});
    t.addRow({"xxxxxxxx", "1"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Three lines: header, rule, row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    // Header row is padded to the widest cell.
    const auto header_end = out.find('\n');
    const auto rule_end = out.find('\n', header_end + 1);
    const auto row_end = out.find('\n', rule_end + 1);
    EXPECT_EQ(header_end, row_end - rule_end - 1);
}

TEST(TextTableTest, FormatHelpers)
{
    EXPECT_EQ(TextTable::pct(12.345), "12.3%");
    EXPECT_EQ(TextTable::pct(12.345, 2), "12.35%");
    EXPECT_EQ(TextTable::num(3.14159), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::bytesKb(32768), "32.0K");
    EXPECT_EQ(TextTable::bytesKb(1536), "1.5K");
}

TEST(TextTableTest, EmptyTablePrintsHeaderOnly)
{
    TextTable t({"one", "two"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("one"), std::string::npos);
    EXPECT_NE(os.str().find("---"), std::string::npos);
}

TEST(TextTableDeathTest, RowArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "assertion");
}

TEST(TextTableTest, ManyRowsKeepOrder)
{
    TextTable t({"i"});
    for (int i = 0; i < 5; ++i)
        t.addRow({std::to_string(i)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_LT(s.find("0"), s.find("4"));
}

} // namespace rcache
