/** @file
 * Tests for the sampled-simulation engine: coverage accounting,
 * determinism (repeat and parallel-vs-serial), tail handling, and the
 * accuracy gate required of sampled profiling sweeps — sampled
 * static-search must pick the same best size as full detail on almost
 * every profile with the relative-E.D error bounded, while simulating
 * at most a fifth of the stream in detail.
 */

#include <gtest/gtest.h>

#include "runner/sweep_runner.hh"
#include "sim/experiment.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

/** The sampling shape the accuracy gate (and CI smoke) runs: 5% of
 *  each period measured, 10% functionally warmed, 85% skipped. */
EngineSpec
gateEngine()
{
    return EngineSpec::makeSampled(200000, 10000, 20000);
}

RunJob
sampledBaselineJob(const std::string &app, std::uint64_t insts,
                   const EngineSpec &engine)
{
    RunJob job;
    job.label = app + "/sampled";
    job.profile = profileByName(app);
    job.cfg = SystemConfig::base();
    job.insts = insts;
    job.engine = engine;
    return job;
}

} // namespace

TEST(SamplingConfigTest, DefaultEngineIsFullDetail)
{
    EngineSpec spec;
    EXPECT_EQ(spec.mode, EngineMode::Full);
    EXPECT_FALSE(spec.sampled());
    spec.sampling.validate(); // default shape is well-formed
}

TEST(SamplingConfigTest, ValidateRejectsMalformedShapes)
{
    SamplingConfig zero_detail =
        SamplingConfig::sampled(10000, 0, 100);
    EXPECT_DEATH(zero_detail.validate(), "detail must be > 0");

    SamplingConfig overfull =
        SamplingConfig::sampled(10000, 8000, 4000);
    EXPECT_DEATH(overfull.validate(), "must fit in the sample");
}

TEST(SamplingConfigTest, ShapeCheckIsOverflowSafe)
{
    const std::uint64_t huge = ~std::uint64_t{0};
    // detail + warmup would wrap to a small number; the check must
    // still reject (a pass would hand FunctionalCore a ~2^64-inst
    // warmup — an effectively infinite hang).
    EXPECT_NE(SamplingConfig::shapeError(1000, 100, huge), nullptr);
    EXPECT_NE(SamplingConfig::shapeError(1000, huge, 100), nullptr);
    EXPECT_NE(SamplingConfig::shapeError(1000, huge, huge), nullptr);
    EXPECT_EQ(SamplingConfig::shapeError(1000, 100, 900), nullptr);
    EXPECT_EQ(SamplingConfig::shapeError(huge, huge - 1, 1), nullptr);
}

TEST(SampledRunTest, CoversWholeStreamAndReportsCoverage)
{
    const RunJob job = sampledBaselineJob(
        "ammp", 400000,
        EngineSpec::makeSampled(100000, 10000, 20000));
    const RunResult res = executeRunJob(job);

    EXPECT_EQ(res.engine, EngineMode::Sampled);
    EXPECT_EQ(res.insts, 400000u);
    // 4 periods x 10k measured, 4 x 20k warmed.
    EXPECT_EQ(res.measuredInsts, 40000u);
    EXPECT_EQ(res.warmupInsts, 80000u);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.edp(), 0.0);
    EXPECT_GT(res.ipc(), 0.1);
    EXPECT_LT(res.ipc(), 4.0);
    EXPECT_GT(res.avgDl1Bytes, 0.0);
}

TEST(SampledRunTest, FullDetailRunsReportFullCoverage)
{
    RunJob job = sampledBaselineJob("ammp", 50000, EngineSpec{});
    const RunResult res = executeRunJob(job);
    EXPECT_EQ(res.engine, EngineMode::Full);
    EXPECT_EQ(res.measuredInsts, res.insts);
    EXPECT_EQ(res.warmupInsts, 0u);
}

TEST(SampledRunTest, TailShorterThanPeriodStaysMeasured)
{
    const RunJob job = sampledBaselineJob(
        "gcc", 130000,
        EngineSpec::makeSampled(100000, 10000, 20000));
    const RunResult res = executeRunJob(job);
    // Period 1 is a full 100k; the 30k tail keeps its full detail
    // window and warmup and gives up fast-forward.
    EXPECT_EQ(res.measuredInsts, 20000u);
    EXPECT_EQ(res.warmupInsts, 40000u);
    EXPECT_EQ(res.insts, 130000u);
}

TEST(SampledRunTest, RunShorterThanDetailIsAllMeasured)
{
    const RunJob job = sampledBaselineJob(
        "gcc", 6000, EngineSpec::makeSampled(100000, 10000, 20000));
    const RunResult res = executeRunJob(job);
    EXPECT_EQ(res.measuredInsts, 6000u);
    EXPECT_EQ(res.warmupInsts, 0u);
}

TEST(SampledRunTest, DeterministicAcrossRepeats)
{
    const RunJob job =
        sampledBaselineJob("vpr", 300000, gateEngine());
    const RunResult a = executeRunJob(job);
    const RunResult b = executeRunJob(job);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.activity.mispredicts, b.activity.mispredicts);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.dl1MissRatio, b.dl1MissRatio);
}

TEST(SampledRunTest, ParallelMatchesSerialBitExactly)
{
    Experiment exp(SystemConfig::base(), 200000);
    exp.setEngine(gateEngine());
    std::vector<RunJob> jobs;
    for (const auto &app : {"ammp", "gcc", "swim", "vortex"}) {
        jobs.push_back(exp.baselineJob(profileByName(app)));
    }
    auto d_jobs = exp.staticSearchJobs(
        profileByName("gcc"), CacheSide::DCache,
        Organization::SelectiveSets);
    jobs.insert(jobs.end(), d_jobs.begin(), d_jobs.end());

    const auto serial = SweepRunner::runSerial(jobs);
    SweepRunner pool(3);
    const auto parallel = pool.run(jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << i;
        EXPECT_EQ(serial[i].energy.total(),
                  parallel[i].energy.total())
            << i;
        EXPECT_EQ(serial[i].measuredInsts, parallel[i].measuredInsts)
            << i;
    }
}

TEST(SampledRunTest, SampledSweepJobsCarryTheConfig)
{
    Experiment exp(SystemConfig::base(), 200000);
    exp.setEngine(gateEngine());
    const auto jobs = exp.staticSearchJobs(
        profileByName("ammp"), CacheSide::DCache,
        Organization::SelectiveWays);
    ASSERT_FALSE(jobs.empty());
    for (const auto &job : jobs)
        EXPECT_TRUE(job.engine.sampled());
    EXPECT_TRUE(exp.baselineJob(profileByName("ammp"))
                    .engine.sampled());
}

TEST(SampledRunTest, SettingEngineClearsBaselineMemo)
{
    Experiment exp(SystemConfig::base(), 60000);
    const RunResult full = exp.baseline(profileByName("ammp"));
    EXPECT_EQ(full.engine, EngineMode::Full);
    exp.setEngine(gateEngine());
    const RunResult sampled = exp.baseline(profileByName("ammp"));
    EXPECT_EQ(sampled.engine, EngineMode::Sampled);
}

/**
 * The accuracy gate (ISSUE 2): sampled static-search must agree with
 * full detail on the chosen best size for at least 10 of the 12
 * profiles, the relative-E.D estimate (the paper's metric) must stay
 * within 0.08 of the full-detail value on every profile, and the
 * sampled runs may simulate at most a fifth of the stream (which is
 * what makes sampled sweeps >= 5x cheaper in detailed-simulation
 * work).
 */
TEST(SamplingAccuracyGate, StaticSearchMatchesFullDetail)
{
    const std::uint64_t insts = 400000;
    const Organization org = Organization::SelectiveSets;

    Experiment full(SystemConfig::base(), insts);
    Experiment sampled(SystemConfig::base(), insts);
    sampled.setEngine(gateEngine());

    unsigned agree = 0;
    double max_rel_ed_err = 0;
    for (const auto &profile : spec2000Suite()) {
        const SearchOutcome f =
            full.staticSearch(profile, CacheSide::DCache, org);
        const SearchOutcome s =
            sampled.staticSearch(profile, CacheSide::DCache, org);

        if (f.bestLevel == s.bestLevel)
            ++agree;
        const double err =
            std::abs(s.relativeED() - f.relativeED());
        max_rel_ed_err = std::max(max_rel_ed_err, err);
        EXPECT_LT(err, 0.08) << profile.name;

        // Detailed+warmed instructions bound the sampled cost.
        EXPECT_LE((s.best.measuredInsts + s.best.warmupInsts) * 5,
                  s.best.insts)
            << profile.name;
        EXPECT_EQ(s.best.engine, EngineMode::Sampled);
        EXPECT_EQ(f.best.engine, EngineMode::Full);
    }
    EXPECT_GE(agree, 10u)
        << "sampled search diverged; max relative-E.D error "
        << max_rel_ed_err;
}

} // namespace rcache
