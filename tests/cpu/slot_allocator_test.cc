/** @file Unit tests for the pipeline bandwidth limiter. */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace rcache
{

TEST(SlotAllocatorTest, WidthEventsPerCycle)
{
    SlotAllocator s(4);
    EXPECT_EQ(s.alloc(10), 10u);
    EXPECT_EQ(s.alloc(10), 10u);
    EXPECT_EQ(s.alloc(10), 10u);
    EXPECT_EQ(s.alloc(10), 10u);
    EXPECT_EQ(s.alloc(10), 11u); // fifth spills to the next cycle
}

TEST(SlotAllocatorTest, AdvancingTimeResetsCount)
{
    SlotAllocator s(2);
    s.alloc(5);
    s.alloc(5);
    EXPECT_EQ(s.alloc(6), 6u);
}

TEST(SlotAllocatorTest, LateRequestServedAtCurrentCycle)
{
    SlotAllocator s(2);
    s.alloc(10);
    EXPECT_EQ(s.alloc(3), 10u); // earlier request rounds up
}

TEST(SlotAllocatorTest, SingleWidthSerializes)
{
    SlotAllocator s(1);
    EXPECT_EQ(s.alloc(0), 0u);
    EXPECT_EQ(s.alloc(0), 1u);
    EXPECT_EQ(s.alloc(0), 2u);
}

TEST(SlotAllocatorTest, ResetClearsState)
{
    SlotAllocator s(1);
    s.alloc(100);
    s.reset();
    EXPECT_EQ(s.alloc(0), 0u);
}

TEST(SlotAllocatorTest, MonotonicOutput)
{
    SlotAllocator s(3);
    std::uint64_t prev = 0;
    std::uint64_t x = 77;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1;
        prev = std::max(prev, x % 7 == 0 ? prev + x % 3 : prev);
        auto got = s.alloc(prev);
        EXPECT_GE(got, prev);
        prev = got;
    }
}

} // namespace rcache
