/** @file Unit tests for the combination branch predictor. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace rcache
{

TEST(BranchPredictorTest, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    const Addr tgt = 0x5000;
    for (int i = 0; i < 8; ++i)
        bp.predictAndUpdate(pc, true, tgt);
    // Steady state: correct.
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += !bp.predictAndUpdate(pc, true, tgt);
    EXPECT_EQ(wrong, 0);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.predictAndUpdate(pc, false, 0);
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += !bp.predictAndUpdate(pc, false, 0);
    EXPECT_EQ(wrong, 0);
}

TEST(BranchPredictorTest, LearnsAlternatingViaHistory)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    const Addr tgt = 0x5000;
    for (int i = 0; i < 200; ++i)
        bp.predictAndUpdate(pc, i % 2 == 0, tgt);
    // gshare should have learned the pattern by now.
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += !bp.predictAndUpdate(pc, i % 2 == 0, tgt);
    EXPECT_LT(wrong, 10);
}

TEST(BranchPredictorTest, BtbMissOnNewTargetCountsMispredict)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.predictAndUpdate(pc, true, 0x5000);
    // Direction right, but the target changed: BTB miss.
    EXPECT_FALSE(bp.predictAndUpdate(pc, true, 0x6000));
    // Re-learned.
    EXPECT_TRUE(bp.predictAndUpdate(pc, true, 0x6000));
}

TEST(BranchPredictorTest, CountsLookupsAndMispredicts)
{
    BranchPredictor bp;
    for (int i = 0; i < 50; ++i)
        bp.predictAndUpdate(0x4000 + 4 * i, (i % 3) == 0, 0x8000);
    EXPECT_EQ(bp.lookups(), 50u);
    EXPECT_GT(bp.mispredicts(), 0u);
    EXPECT_GT(bp.mispredictRate(), 0.0);
    EXPECT_LE(bp.mispredictRate(), 1.0);
}

TEST(BranchPredictorTest, ResetRestoresInitialState)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x4000, true, 0x5000);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(BranchPredictorTest, BiasedBranchesMostlyPredicted)
{
    BranchPredictor bp;
    std::uint64_t x = 99;
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1;
        const Addr pc = 0x4000 + ((x >> 20) & 0xff) * 4;
        const bool taken = (x >> 50) % 10 < 9; // 90% taken
        wrong += !bp.predictAndUpdate(pc, taken, 0x8000);
    }
    // Should do clearly better than always-taken (10% wrong).
    EXPECT_LT(static_cast<double>(wrong) / n, 0.14);
}

TEST(BranchPredictorDeathTest, NonPowerOfTwoTables)
{
    BranchPredictorParams p;
    p.bimodalEntries = 1000;
    EXPECT_DEATH(BranchPredictor{p}, "assertion");
}

} // namespace rcache
