/** @file
 * Tests for the out-of-order timing core: latency hiding, resource
 * limits, and the non-blocking cache behaviour the paper's strategy
 * comparison depends on.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"

namespace rcache
{

namespace
{

struct Fixture
{
    CacheGeometry l1g{32 * 1024, 2, 32, 1024};
    CacheGeometry l2g{512 * 1024, 4, 32, 8192};
    Cache il1{"il1", l1g};
    Cache dl1{"dl1", l1g};
    Hierarchy hier{&il1, &dl1, l2g, HierarchyParams{}};
    CoreParams params;
};

/** @p n copies of a simple int op at sequential PCs. */
std::vector<MicroInst>
intOps(int n)
{
    std::vector<MicroInst> v;
    for (int i = 0; i < n; ++i) {
        MicroInst m;
        m.op = OpClass::IntAlu;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i);
        v.push_back(m);
    }
    return v;
}

} // namespace

TEST(OooCoreTest, IdealIpcApproachesWidth)
{
    Fixture f;
    OooCore core(f.params, f.hier);
    // Small loop so the cold i-cache misses amortize away.
    TraceWorkload wl(intOps(64));
    auto act = core.run(wl, 32768);
    EXPECT_GT(act.ipc(), 3.0);
    EXPECT_EQ(act.insts, 32768u);
}

TEST(OooCoreTest, DependencyChainSerializes)
{
    Fixture f;
    auto insts = intOps(512);
    for (auto &m : insts)
        m.dep1 = 1; // each depends on the previous
    OooCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 4096);
    EXPECT_LT(act.ipc(), 1.2);
}

TEST(OooCoreTest, IndependentLoadMissesOverlap)
{
    // Loads to distinct cold blocks: with 8 MSHRs the misses overlap
    // and CPI stays far below miss latency.
    Fixture f;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 512; ++i) {
        MicroInst m;
        m.op = OpClass::Load;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 64);
        m.effAddr = 0x10000000 + 32 * static_cast<Addr>(i);
        insts.push_back(m);
    }
    OooCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 512);
    // All 512 loads miss to memory (113 cycles); serialized would be
    // ~58K cycles. Overlapped across 8 MSHRs: ~1/8th of that.
    EXPECT_LT(act.cycles, 15000u);
    EXPECT_GT(act.cycles, 5000u);
}

TEST(OooCoreTest, DependentLoadMissesSerialize)
{
    Fixture f;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 128; ++i) {
        MicroInst m;
        m.op = OpClass::Load;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 64);
        m.effAddr = 0x10000000 + 32 * static_cast<Addr>(i);
        m.dep1 = 1; // pointer chase
        insts.push_back(m);
    }
    OooCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 128);
    // Each load waits for the previous: >= 128 * ~113 cycles.
    EXPECT_GT(act.cycles, 12000u);
}

TEST(OooCoreTest, MshrLimitThrottlesParallelMisses)
{
    Fixture f;
    f.params.mshrs = 1; // effectively blocking for misses
    std::vector<MicroInst> insts;
    for (int i = 0; i < 256; ++i) {
        MicroInst m;
        m.op = OpClass::Load;
        m.pc = 0x400000;
        m.effAddr = 0x10000000 + 32 * static_cast<Addr>(i);
        insts.push_back(m);
    }
    OooCore one(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act1 = one.run(wl, 256);

    Fixture f8;
    OooCore eight(f8.params, f8.hier);
    TraceWorkload wl8(insts);
    auto act8 = eight.run(wl8, 256);
    EXPECT_GT(act1.cycles, act8.cycles * 3);
}

TEST(OooCoreTest, MispredictsAddCycles)
{
    Fixture f;
    std::vector<MicroInst> pred;
    std::uint64_t x = 7;
    for (int i = 0; i < 512; ++i) {
        MicroInst m;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 128);
        if (i % 8 == 7) {
            m.op = OpClass::Branch;
            x = x * 6364136223846793005ull + 1;
            m.taken = (x >> 33) & 1;
            m.target = 0x400000 + ((x >> 13) & 0x1f0);
        } else {
            m.op = OpClass::IntAlu;
        }
        pred.push_back(m);
    }
    // Identical PCs with the branches neutralized, so the i-cache
    // behaviour matches and only prediction effects differ.
    auto plain = pred;
    for (auto &m : plain) {
        m.op = OpClass::IntAlu;
        m.taken = false;
    }
    OooCore a(f.params, f.hier);
    TraceWorkload wa(pred);
    auto with_branches = a.run(wa, 4096);

    Fixture f2;
    OooCore b(f2.params, f2.hier);
    TraceWorkload wb(plain);
    auto without = b.run(wb, 4096);

    EXPECT_GT(with_branches.mispredicts, 0u);
    EXPECT_GT(with_branches.cycles, without.cycles);
}

TEST(OooCoreTest, RobLimitsWindow)
{
    // A far-miss load followed by a long stream of independent ops:
    // a small ROB stalls dispatch behind the miss.
    Fixture fbig, fsmall;
    fsmall.params.robSize = 8;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 512; ++i) {
        MicroInst m;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 32);
        if (i % 64 == 0) {
            m.op = OpClass::Load;
            m.effAddr = 0x10000000 + 32 * static_cast<Addr>(i);
        } else {
            m.op = OpClass::IntAlu;
        }
        insts.push_back(m);
    }
    OooCore big(fbig.params, fbig.hier);
    TraceWorkload w1(insts);
    auto rbig = big.run(w1, 512);
    OooCore small(fsmall.params, fsmall.hier);
    TraceWorkload w2(insts);
    auto rsmall = small.run(w2, 512);
    EXPECT_GT(rsmall.cycles, rbig.cycles);
}

TEST(OooCoreTest, StoresAccessCacheAtCommit)
{
    Fixture f;
    std::vector<MicroInst> insts;
    MicroInst st;
    st.op = OpClass::Store;
    st.pc = 0x400000;
    st.effAddr = 0x20000000;
    insts.push_back(st);
    OooCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    core.run(wl, 1);
    EXPECT_EQ(f.dl1.accesses(), 1u);
    EXPECT_TRUE(f.dl1.probe(0x20000000));
}

TEST(OooCoreTest, ActivityCountsMatchMix)
{
    Fixture f;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 100; ++i) {
        MicroInst m;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i);
        m.op = (i % 4 == 0)   ? OpClass::Load
               : (i % 4 == 1) ? OpClass::Store
               : (i % 4 == 2) ? OpClass::FpAlu
                              : OpClass::IntAlu;
        m.effAddr = 0x10000000 + 8 * static_cast<Addr>(i);
        insts.push_back(m);
    }
    OooCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 100);
    EXPECT_EQ(act.loads, 25u);
    EXPECT_EQ(act.stores, 25u);
    EXPECT_EQ(act.fpOps, 25u);
    EXPECT_EQ(act.intOps, 25u);
    EXPECT_TRUE(act.outOfOrder);
}

TEST(OooCoreTest, FetchReadsICachePerGroup)
{
    Fixture f;
    OooCore core(f.params, f.hier);
    TraceWorkload wl(intOps(64));
    core.run(wl, 64);
    // 64 sequential insts = 8 blocks of 8 insts; each block takes two
    // 4-wide fetch groups: ~16 i-cache reads.
    EXPECT_GE(f.il1.accesses(), 16u);
    EXPECT_LE(f.il1.accesses(), 20u);
}

} // namespace rcache
