/** @file
 * Tests for the in-order core with blocking d-cache: the miss-latency
 * exposure that drives the paper's Section 4.2 comparison.
 */

#include <gtest/gtest.h>

#include "cpu/inorder_core.hh"
#include "cpu/ooo_core.hh"

namespace rcache
{

namespace
{

struct Fixture
{
    CacheGeometry l1g{32 * 1024, 2, 32, 1024};
    CacheGeometry l2g{512 * 1024, 4, 32, 8192};
    Cache il1{"il1", l1g};
    Cache dl1{"dl1", l1g};
    Hierarchy hier{&il1, &dl1, l2g, HierarchyParams{}};
    CoreParams params;
};

std::vector<MicroInst>
coldLoads(int n)
{
    std::vector<MicroInst> v;
    for (int i = 0; i < n; ++i) {
        MicroInst m;
        m.op = OpClass::Load;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 64);
        m.effAddr = 0x10000000 + 32 * static_cast<Addr>(i);
        v.push_back(m);
    }
    return v;
}

} // namespace

TEST(InOrderCoreTest, BlockingCacheExposesEveryMiss)
{
    Fixture f;
    InOrderCore core(f.params, f.hier);
    TraceWorkload wl(coldLoads(256));
    auto act = core.run(wl, 256);
    // Every load misses to memory (113 cycles), fully serialized.
    EXPECT_GT(act.cycles, 256u * 100);
}

TEST(InOrderCoreTest, MissLatencyExposureVsOoO)
{
    // The paper's central contrast: identical independent-miss
    // streams run far faster on the OoO/non-blocking core.
    Fixture fi, fo;
    InOrderCore inord(fi.params, fi.hier);
    OooCore ooo(fo.params, fo.hier);
    TraceWorkload w1(coldLoads(256));
    TraceWorkload w2(coldLoads(256));
    auto ri = inord.run(w1, 256);
    auto ro = ooo.run(w2, 256);
    EXPECT_GT(ri.cycles, ro.cycles * 2);
}

TEST(InOrderCoreTest, HitsDoNotStall)
{
    Fixture f;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 128; ++i) {
        MicroInst m;
        m.op = OpClass::Load;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 32);
        m.effAddr = 0x10000000; // always the same block
        insts.push_back(m);
    }
    InOrderCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 16384);
    EXPECT_GT(act.ipc(), 2.5);
}

TEST(InOrderCoreTest, InOrderIssueRespectsProgramOrder)
{
    // An expensive FP op delays every later instruction even if
    // independent (no OoO window).
    Fixture f;
    std::vector<MicroInst> insts;
    for (int i = 0; i < 64; ++i) {
        MicroInst m;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i);
        if (i == 0) {
            m.op = OpClass::Load;
            m.effAddr = 0x10000000; // cold miss
        } else {
            m.op = OpClass::IntAlu;
        }
        insts.push_back(m);
    }
    InOrderCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 64);
    // The one cold load (113 cycles) stalls everything behind it.
    EXPECT_GT(act.cycles, 110u);
}

TEST(InOrderCoreTest, StoreMissAlsoBlocks)
{
    Fixture f;
    std::vector<MicroInst> insts;
    MicroInst st;
    st.op = OpClass::Store;
    st.pc = 0x400000;
    st.effAddr = 0x20000000;
    insts.push_back(st);
    MicroInst alu;
    alu.op = OpClass::IntAlu;
    alu.pc = 0x400004;
    insts.push_back(alu);
    InOrderCore core(f.params, f.hier);
    TraceWorkload wl(insts);
    auto act = core.run(wl, 2);
    EXPECT_GT(act.cycles, 110u);
}

TEST(InOrderCoreTest, ActivityFlagsInOrder)
{
    Fixture f;
    InOrderCore core(f.params, f.hier);
    TraceWorkload wl(coldLoads(8));
    auto act = core.run(wl, 8);
    EXPECT_FALSE(act.outOfOrder);
    EXPECT_EQ(act.loads, 8u);
}

TEST(InOrderCoreTest, MispredictStallsFrontend)
{
    Fixture f;
    std::vector<MicroInst> taken, nottaken;
    std::uint64_t x = 3;
    for (int i = 0; i < 256; ++i) {
        MicroInst m;
        m.pc = 0x400000 + 4 * static_cast<Addr>(i % 64);
        if (i % 4 == 3) {
            m.op = OpClass::Branch;
            x = x * 6364136223846793005ull + 1;
            m.taken = (x >> 30) & 1; // unpredictable
            m.target = 0x400000 + ((x >> 10) & 0xf0);
        } else {
            m.op = OpClass::IntAlu;
        }
        taken.push_back(m);
        MicroInst p = m;
        p.taken = false; // predictable
        p.op = m.op;
        nottaken.push_back(p);
    }
    Fixture f2;
    InOrderCore a(f.params, f.hier), b(f2.params, f2.hier);
    TraceWorkload w1(taken), w2(nottaken);
    auto random_branches = a.run(w1, 2048);
    auto easy_branches = b.run(w2, 2048);
    EXPECT_GT(random_branches.mispredicts,
              easy_branches.mispredicts);
    EXPECT_GT(random_branches.cycles, easy_branches.cycles);
}

} // namespace rcache
