# Golden-reference sweep check, run as a ctest against the real
# binary:
#
#   cmake -DRCACHE_SIM=<rcache-sim> -DSCENARIO=<file.scn>
#         -DGOLDEN=<file.golden.csv> -DOUT=<scratch.csv>
#         -P golden_sweep.cmake
#
# Runs the sweep (2 workers, so the parallel path is the one pinned)
# and byte-compares the CSV against the checked-in golden file. Any
# drift in the rng draw sequence, cache/energy accounting, sampling
# extrapolation, or report formatting fails loudly. To regenerate
# after a reviewed contract change, see the header comment in the
# .scn files.

foreach(var RCACHE_SIM SCENARIO GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_sweep.cmake needs -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${RCACHE_SIM} sweep --scenario ${SCENARIO} --jobs 2
          --out ${OUT}
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep failed (exit ${rc}): ${stderr}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "golden mismatch: ${OUT} differs from ${GOLDEN} — the "
          "pinned rng/stat/report contract drifted. If the change is "
          "intentional and reviewed, regenerate the golden file (see "
          "its .scn header).")
endif()
