# Trace-backed golden sweep, run as a ctest against the real binary:
#
#   cmake -DRCACHE_SIM=<rcache-sim> -DSCENARIO=<trace_policy_micro.scn>
#         -DDATA_DIR=<tests/data> -DGOLDEN=<golden.csv>
#         -DWORK_DIR=<scratch> -P golden_trace_sweep.cmake
#
# The scenario's apps are trace:data/... specs with relative paths, so
# every invocation runs from WORK_DIR with tests/data copied to
# ./data — the golden CSV never contains machine-specific paths.
#
# One golden file pins four execution shapes of the same sweep:
#   1. --jobs 2 (the parallel path)
#   2. --jobs 1 (serial must be byte-identical to parallel)
#   3. --shard 0/2 + --shard 1/2, merged by sorting on the cell column
#   4. --resume from a truncated prefix of the golden
# Any divergence between them — or any drift in the streaming trace
# decode, the replacement policies, or the policy CSV column — fails
# loudly. Regenerate after a reviewed contract change per the .scn
# header.

foreach(var RCACHE_SIM SCENARIO DATA_DIR GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_trace_sweep.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
file(COPY ${DATA_DIR}/ DESTINATION ${WORK_DIR}/data)

macro(sweep out)
  execute_process(
    COMMAND ${RCACHE_SIM} sweep --scenario ${SCENARIO} ${ARGN}
            --out ${out}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep ${ARGN} failed (exit ${rc}): ${stderr}")
  endif()
endmacro()

macro(same a label)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${GOLDEN}
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "golden mismatch (${label}): ${a} differs from ${GOLDEN} "
            "— the trace/replacement contract drifted. If intentional "
            "and reviewed, regenerate per the .scn header.")
  endif()
endmacro()

# 1. Parallel reference.
sweep(${WORK_DIR}/jobs2.csv --jobs 2)
same(${WORK_DIR}/jobs2.csv "--jobs 2")

# 2. Serial must match byte for byte.
sweep(${WORK_DIR}/jobs1.csv --jobs 1)
same(${WORK_DIR}/jobs1.csv "--jobs 1")

# 3. Shard union, merged by sorting rows on the leading cell index.
sweep(${WORK_DIR}/shard0.csv --jobs 2 --shard 0/2)
sweep(${WORK_DIR}/shard1.csv --jobs 2 --shard 1/2)
file(STRINGS ${WORK_DIR}/shard0.csv rows0)
file(STRINGS ${WORK_DIR}/shard1.csv rows1)
list(GET rows0 0 header)
list(REMOVE_AT rows0 0)
list(REMOVE_AT rows1 0)
set(rows ${rows0} ${rows1})
list(SORT rows COMPARE NATURAL)
string(JOIN "\n" merged ${header} ${rows})
file(WRITE ${WORK_DIR}/shards_merged.csv "${merged}\n")
same(${WORK_DIR}/shards_merged.csv "shard 0/2 + 1/2 merged")

# 4. Resume from a truncated prefix (header + first three rows).
file(STRINGS ${GOLDEN} golden_rows)
list(SUBLIST golden_rows 0 4 prefix)
string(JOIN "\n" prefix_text ${prefix})
file(WRITE ${WORK_DIR}/resume.csv "${prefix_text}\n")
execute_process(
  COMMAND ${RCACHE_SIM} sweep --scenario ${SCENARIO} --jobs 2
          --resume ${WORK_DIR}/resume.csv
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep --resume failed (exit ${rc}): ${stderr}")
endif()
same(${WORK_DIR}/resume.csv "--resume from truncated prefix")
