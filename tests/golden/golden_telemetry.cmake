# Telemetry contract check, run as a ctest against the real binary:
#
#   cmake -DRCACHE_SIM=<rcache-sim> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<scratch dir> -P golden_telemetry.cmake
#
# Four properties of tests/golden/telemetry_micro.scn are pinned:
#
#  1. non-perturbation: the sweep CSV is byte-identical with
#     telemetry enabled and disabled (the recorders observe the run,
#     never steer it);
#  2. golden timelines: the per-core interval-timeline JSONL matches
#     the checked-in golden byte-for-byte;
#  3. golden events: the resize-decision event-trace JSONL matches
#     its golden byte-for-byte;
#  4. trace shape: the Chrome trace-event JSON has the object form,
#     complete spans, and the chunk-flush/baseline-memo markers
#     (timestamps are wall clock, so no byte comparison).
#
# --jobs is pinned to 2: the CSV is --jobs-invariant, but telemetry
# row order across chunks is not guaranteed to be (rows carry their
# job label instead; see SweepOptions). Regenerate the goldens with
# the command in telemetry_micro.scn's header.

foreach(var RCACHE_SIM GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_telemetry.cmake needs -D${var}=...")
  endif()
endforeach()

set(scenario ${GOLDEN_DIR}/telemetry_micro.scn)
file(MAKE_DIRECTORY ${WORK_DIR})

# ---- 1. reference run, telemetry off
execute_process(
  COMMAND ${RCACHE_SIM} sweep --scenario ${scenario} --jobs 2
          --out ${WORK_DIR}/off.csv
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry-off sweep failed (exit ${rc}): ${stderr}")
endif()

# ---- 2. same sweep, every telemetry layer on
execute_process(
  COMMAND ${RCACHE_SIM} sweep --scenario ${scenario} --jobs 2
          --out ${WORK_DIR}/on.csv
          --timeline ${WORK_DIR}/timeline.jsonl
          --events ${WORK_DIR}/events.jsonl
          --trace-events ${WORK_DIR}/trace.json
          --timeline-interval 5000
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry-on sweep failed (exit ${rc}): ${stderr}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/off.csv ${WORK_DIR}/on.csv
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "telemetry perturbed the sweep: ${WORK_DIR}/on.csv differs "
          "from ${WORK_DIR}/off.csv — recorders must observe the "
          "run, never steer it.")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/timeline.jsonl
          ${GOLDEN_DIR}/telemetry_micro.timeline.golden.jsonl
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "timeline golden mismatch: ${WORK_DIR}/timeline.jsonl — "
          "the interval-timeline contract drifted. If intentional "
          "and reviewed, regenerate (see telemetry_micro.scn).")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/events.jsonl
          ${GOLDEN_DIR}/telemetry_micro.events.golden.jsonl
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "resize-event golden mismatch: ${WORK_DIR}/events.jsonl — "
          "the decision-trace contract drifted. If intentional and "
          "reviewed, regenerate (see telemetry_micro.scn).")
endif()

# ---- 4. Chrome trace shape (wall-clock values, so structural only)
file(READ ${WORK_DIR}/trace.json trace)
foreach(needle
        [[{"traceEvents":[]]
        [["ph":"X"]]
        [["name":"chunk-flush"]]
        [["name":"baseline-memo"]]
        [["point":"cell=0;app=gcc+m88ksim;]])
  string(FIND "${trace}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "trace-events shape check: '${needle}' not found in "
            "${WORK_DIR}/trace.json")
  endif()
endforeach()

# ---- 5. the inspect subcommand digests both artifacts
execute_process(
  COMMAND ${RCACHE_SIM} inspect --timeline ${WORK_DIR}/timeline.jsonl
          --events ${WORK_DIR}/events.jsonl
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inspect failed (exit ${rc}): ${stderr}")
endif()
foreach(needle "timeline:" "resize events:" "decisions by reason:")
  string(FIND "${out}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "inspect output check: '${needle}' missing from:\n${out}")
  endif()
endforeach()
