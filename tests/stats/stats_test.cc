/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace rcache
{

TEST(CounterTest, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AverageTest, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1);
    a.sample(2);
    a.sample(3);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(HistogramTest, BucketsAndBounds)
{
    Histogram h(0, 10, 10);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-1); // underflow
    h.sample(10); // overflow (max is exclusive)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(HistogramTest, MeanIncludesOutOfRange)
{
    Histogram h(0, 10, 5);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, Reset)
{
    Histogram h(0, 1, 4);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(StatGroupTest, CounterLookup)
{
    StatGroup g("grp");
    Counter c;
    g.addCounter("hits", &c, "hit count");
    c += 5;
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("misses"));
    EXPECT_DOUBLE_EQ(g.value("hits"), 5.0);
}

TEST(StatGroupTest, FormulaEvaluatesLazily)
{
    StatGroup g("grp");
    Counter hits, total;
    g.addFormula(
        "ratio",
        [&]() {
            return total.value()
                       ? static_cast<double>(hits.value()) /
                             total.value()
                       : 0.0;
        },
        "hit ratio");
    EXPECT_DOUBLE_EQ(g.value("ratio"), 0.0);
    hits += 1;
    total += 4;
    EXPECT_DOUBLE_EQ(g.value("ratio"), 0.25);
}

TEST(StatGroupTest, AverageRegistration)
{
    StatGroup g("grp");
    Average a;
    g.addAverage("lat", &a, "latency");
    a.sample(10);
    a.sample(20);
    EXPECT_DOUBLE_EQ(g.value("lat"), 15.0);
}

TEST(StatGroupTest, DumpContainsNamesAndDescriptions)
{
    StatGroup g("cache");
    Counter c;
    c += 7;
    g.addCounter("accesses", &c, "total accesses");
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("cache.accesses"), std::string::npos);
    EXPECT_NE(os.str().find("total accesses"), std::string::npos);
    EXPECT_NE(os.str().find('7'), std::string::npos);
}

TEST(StatGroupTest, NamesInRegistrationOrder)
{
    StatGroup g("g");
    Counter a, b;
    g.addCounter("zeta", &a, "");
    g.addCounter("alpha", &b, "");
    auto names = g.statNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "zeta");
    EXPECT_EQ(names[1], "alpha");
}

TEST(StatGroupDeathTest, UnknownStatPanics)
{
    StatGroup g("g");
    EXPECT_DEATH(g.value("nope"), "unknown stat");
}

TEST(StatGroupDeathTest, DuplicateNamePanics)
{
    StatGroup g("g");
    Counter c;
    g.addCounter("x", &c, "");
    EXPECT_DEATH(g.addCounter("x", &c, ""), "assertion");
}

} // namespace rcache
