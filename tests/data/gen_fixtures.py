#!/usr/bin/env python3
"""Regenerate the checked-in trace fixtures in this directory.

The fixtures are committed (tests and golden files pin their bytes);
this script only exists so they can be rebuilt after a reviewed format
change:

    python3 tests/data/gen_fixtures.py

Files:
  mini.trace         small native-format load trace
  mini_rocksdb.csv   the same access pattern as RocksDB block-cache rows
  mini_lcs.bin       the same pattern as 24-byte packed lcs records
  mini_rocksdb.csv.gz  gzip of mini_rocksdb.csv (mtime 0: stable bytes)
  skewed_scan.trace  hot-set + conflicting-scan trace where admission
                     filtering (wtlfu) clearly beats LRU

skewed_scan.trace layout: 8 hot blocks living in sets 0..7 of the
default 32 KB / 2-way / 32 B-block dcache (1024 sets), accessed every
4th instruction; in between, a scan of one-shot blocks deliberately
mapped into those same 8 sets. Between two touches of a hot block, 3
scan fills land in its set (> 2 ways), so plain LRU evicts the hot
block every round while a frequency-gated policy keeps it resident.
The trace is one scan lap long and relies on the reader's modulo
looping; scan blocks recur once per lap versus 20 hot touches per lap,
so the frequency gap survives sketch aging.
"""

import gzip
import os
import struct

HERE = os.path.dirname(os.path.abspath(__file__))

BLOCK = 32        # dcache block size (set indexing in the comment)
SETS = 1024
PC = 0x400000


def native_line(addr):
    return "L %x %x 1 0 0 0\n" % (PC, addr)


def mini_pattern():
    """Block-id stream the replacement policies disagree on.

    With 64-byte ids over 32-byte cache blocks, ids 0/512/1024/1536
    all land in set 0 of the 1024-set 2-way dcache (set = 2*id mod
    1024), so four blocks compete for two ways with skewed reuse:
    A is hot, B warm, C/D one-shot scans. A second lightly-loaded
    set (ids 1/513/1025) adds non-conflict traffic. Recency, insertion
    order, segmentation, admission, and random victims each resolve
    the conflicts differently, so every policy pins a distinct golden
    miss ratio.
    """
    a, b, c, d = 0, 512, 1024, 1536
    e, f, g = 1, 513, 1025
    round_ = [a, b, a, c, a, d, a, b, e, f, g, e]
    return round_ * 4


def write_mini():
    ids = mini_pattern()
    with open(os.path.join(HERE, "mini.trace"), "w") as f:
        for b in ids:
            f.write(native_line(b * 64))
    rows = []
    for i, b in enumerate(ids):
        caller = i % 16
        rows.append("1,%d,1,4096,0,cf,0,1,%d,0,5,7,100\n" % (b, caller))
    csv = "".join(rows)
    with open(os.path.join(HERE, "mini_rocksdb.csv"), "w") as f:
        f.write(csv)
    with open(os.path.join(HERE, "mini_lcs.bin"), "wb") as f:
        for i, b in enumerate(ids):
            f.write(struct.pack("<IQIq", i + 1, b, 64, -1))
    with open(os.path.join(HERE, "mini_rocksdb.csv.gz"), "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
            gz.write(csv.encode())


def write_skewed():
    lines = []
    scan = 0
    for k in range(640):
        if k % 4 == 0:
            hot_set = (k // 4) % 8
            addr = hot_set * BLOCK
        else:
            s = scan % 8
            lap = scan // 8
            addr = ((lap + 1) * SETS + s) * BLOCK
            scan += 1
        lines.append(native_line(addr))
    with open(os.path.join(HERE, "skewed_scan.trace"), "w") as f:
        f.writelines(lines)


def main():
    write_mini()
    write_skewed()


if __name__ == "__main__":
    main()
