/** @file
 * Tests for the offered-size schedules — including an exact
 * reproduction of the paper's Table 1.
 */

#include <gtest/gtest.h>

#include "core/size_schedule.hh"

namespace rcache
{

namespace
{

std::vector<std::uint64_t>
sizesOf(const std::vector<ResizeConfig> &sched, unsigned block)
{
    std::vector<std::uint64_t> out;
    for (const auto &c : sched)
        out.push_back(c.sizeBytes(block));
    return out;
}

const CacheGeometry g32k4w{32 * 1024, 4, 32, 1024};
const CacheGeometry g32k2w{32 * 1024, 2, 32, 1024};
const CacheGeometry g32k16w{32 * 1024, 16, 32, 1024};

constexpr std::uint64_t K = 1024;

} // namespace

TEST(ScheduleTest, NoneOffersOnlyFullSize)
{
    auto s = buildSchedule(Organization::None, g32k4w);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].sets, 256u);
    EXPECT_EQ(s[0].ways, 4u);
}

TEST(ScheduleTest, SelectiveWays32k4w)
{
    // Paper Sec 2.1.1: a selective-ways 32K 4-way offers
    // 32K, 24K, 16K, 8K.
    auto s = buildSchedule(Organization::SelectiveWays, g32k4w);
    EXPECT_EQ(sizesOf(s, 32),
              (std::vector<std::uint64_t>{32 * K, 24 * K, 16 * K,
                                          8 * K}));
    for (const auto &c : s)
        EXPECT_EQ(c.sets, 256u); // sets never change
}

TEST(ScheduleTest, SelectiveSets32k4w)
{
    // Paper Sec 2.1.1: a selective-sets 32K 4-way offers
    // 32K, 16K, 8K, 4K (minimum one 1K subarray per way).
    auto s = buildSchedule(Organization::SelectiveSets, g32k4w);
    EXPECT_EQ(sizesOf(s, 32),
              (std::vector<std::uint64_t>{32 * K, 16 * K, 8 * K,
                                          4 * K}));
    for (const auto &c : s)
        EXPECT_EQ(c.ways, 4u); // associativity maintained
}

TEST(ScheduleTest, HybridReproducesPaperTable1)
{
    // Table 1: 32K, 24K, 16K, 12K, 8K, 6K, 4K, 3K, 2K, 1K.
    auto s = buildSchedule(Organization::Hybrid, g32k4w);
    EXPECT_EQ(sizesOf(s, 32),
              (std::vector<std::uint64_t>{32 * K, 24 * K, 16 * K,
                                          12 * K, 8 * K, 6 * K, 4 * K,
                                          3 * K, 2 * K, 1 * K}));
}

TEST(ScheduleTest, HybridTable1Associativities)
{
    // Redundant sizes resolve to the highest associativity: 16K is
    // offered 4-way (4 x 4K ways), not 2-way (2 x 8K ways).
    auto s = buildSchedule(Organization::Hybrid, g32k4w);
    auto at = [&](std::uint64_t size) -> ResizeConfig {
        for (const auto &c : s)
            if (c.sizeBytes(32) == size)
                return c;
        return {0, 0};
    };
    EXPECT_EQ(at(32 * K).ways, 4u);
    EXPECT_EQ(at(24 * K).ways, 3u);
    EXPECT_EQ(at(16 * K).ways, 4u);
    EXPECT_EQ(at(12 * K).ways, 3u);
    EXPECT_EQ(at(8 * K).ways, 4u);
    EXPECT_EQ(at(6 * K).ways, 3u);
    EXPECT_EQ(at(4 * K).ways, 4u);
    EXPECT_EQ(at(3 * K).ways, 3u);
    EXPECT_EQ(at(2 * K).ways, 2u);
    EXPECT_EQ(at(1 * K).ways, 1u);
}

TEST(ScheduleTest, SelectiveWays16wFineGranularity)
{
    // Paper Sec 4.1: selective-ways on 32K 16-way offers 2K
    // granularity over the entire range.
    auto s = buildSchedule(Organization::SelectiveWays, g32k16w);
    ASSERT_EQ(s.size(), 16u);
    for (unsigned i = 0; i + 1 < s.size(); ++i) {
        EXPECT_EQ(s[i].sizeBytes(32) - s[i + 1].sizeBytes(32),
                  2 * K);
    }
}

TEST(ScheduleTest, SelectiveSets2wCoarseAtTop)
{
    // Paper Sec 4.1: selective-sets on 2-way offers nothing between
    // 32K and 16K.
    auto s = buildSchedule(Organization::SelectiveSets, g32k2w);
    EXPECT_EQ(sizesOf(s, 32),
              (std::vector<std::uint64_t>{32 * K, 16 * K, 8 * K,
                                          4 * K, 2 * K}));
}

TEST(ScheduleTest, ExtraTagBits)
{
    // Selective-sets must tag for the smallest offered set count:
    // 2-way: 512 -> 32 sets = 4 extra bits (paper: "usually between
    // 1 and 4").
    EXPECT_EQ(extraTagBits(Organization::SelectiveSets, g32k2w), 4u);
    EXPECT_EQ(extraTagBits(Organization::SelectiveSets, g32k4w), 3u);
    EXPECT_EQ(extraTagBits(Organization::Hybrid, g32k4w), 3u);
    EXPECT_EQ(extraTagBits(Organization::SelectiveWays, g32k4w), 0u);
    EXPECT_EQ(extraTagBits(Organization::None, g32k4w), 0u);
}

TEST(ScheduleTest, OrganizationNames)
{
    EXPECT_EQ(organizationName(Organization::SelectiveWays),
              "selective-ways");
    EXPECT_EQ(organizationName(Organization::SelectiveSets),
              "selective-sets");
    EXPECT_EQ(organizationName(Organization::Hybrid), "hybrid");
    EXPECT_EQ(organizationName(Organization::None), "none");
}

/** Properties that must hold for every organization and geometry. */
class SchedulePropertyTest
    : public testing::TestWithParam<std::tuple<Organization, int, int>>
{
};

TEST_P(SchedulePropertyTest, WellFormed)
{
    auto [org, size_kb, assoc] = GetParam();
    CacheGeometry g{static_cast<std::uint64_t>(size_kb) * 1024,
                    static_cast<unsigned>(assoc), 32, 1024};
    if (!g.validate().empty())
        GTEST_SKIP();
    auto s = buildSchedule(org, g);
    ASSERT_FALSE(s.empty());
    // Index 0 is the full configuration.
    EXPECT_EQ(s[0].sets, g.numSets());
    EXPECT_EQ(s[0].ways, g.assoc);
    for (unsigned i = 0; i < s.size(); ++i) {
        EXPECT_TRUE(isPowerOfTwo(s[i].sets));
        EXPECT_GE(s[i].sets, g.minSets());
        EXPECT_LE(s[i].sets, g.numSets());
        EXPECT_GE(s[i].ways, 1u);
        EXPECT_LE(s[i].ways, g.assoc);
        if (i > 0) {
            // Strictly decreasing sizes: no duplicates.
            EXPECT_LT(s[i].sizeBytes(32), s[i - 1].sizeBytes(32));
        }
    }
}

TEST_P(SchedulePropertyTest, HybridIsSupersetOfBothSpectra)
{
    auto [org, size_kb, assoc] = GetParam();
    if (org != Organization::Hybrid)
        GTEST_SKIP();
    CacheGeometry g{static_cast<std::uint64_t>(size_kb) * 1024,
                    static_cast<unsigned>(assoc), 32, 1024};
    if (!g.validate().empty())
        GTEST_SKIP();
    auto hybrid = sizesOf(buildSchedule(Organization::Hybrid, g), 32);
    auto sets = sizesOf(buildSchedule(Organization::SelectiveSets, g),
                        32);
    auto contains = [&](std::uint64_t v) {
        return std::find(hybrid.begin(), hybrid.end(), v) !=
               hybrid.end();
    };
    // Hybrid offers at least every selective-sets size...
    for (auto v : sets)
        EXPECT_TRUE(contains(v)) << v;
    // ...and at least as many sizes as either organization alone.
    auto ways = sizesOf(buildSchedule(Organization::SelectiveWays, g),
                        32);
    EXPECT_GE(hybrid.size(), sets.size());
    EXPECT_GE(hybrid.size(), ways.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulePropertyTest,
    testing::Combine(testing::Values(Organization::SelectiveWays,
                                     Organization::SelectiveSets,
                                     Organization::Hybrid),
                     testing::Values(8, 16, 32, 64),
                     testing::Values(2, 4, 8, 16)));

} // namespace rcache
