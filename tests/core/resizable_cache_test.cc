/** @file Unit tests for the ResizableCache wrapper. */

#include <gtest/gtest.h>

#include "core/resizable_cache.hh"

namespace rcache
{

namespace
{
const CacheGeometry g{32 * 1024, 4, 32, 1024};
} // namespace

TEST(ResizableCacheTest, StartsAtFullSize)
{
    SelectiveSetsCache c("dl1", g);
    EXPECT_EQ(c.currentLevel(), 0u);
    EXPECT_EQ(c.cache().enabledSize(), 32 * 1024u);
    EXPECT_EQ(c.maxSizeBytes(), 32 * 1024u);
}

TEST(ResizableCacheTest, SetsMinimumSize)
{
    SelectiveSetsCache c("dl1", g);
    EXPECT_EQ(c.minSizeBytes(), 4 * 1024u); // one subarray per way
}

TEST(ResizableCacheTest, DownsizeStepsThroughSchedule)
{
    SelectiveSetsCache c("dl1", g);
    c.downsize();
    EXPECT_EQ(c.cache().enabledSize(), 16 * 1024u);
    c.downsize();
    EXPECT_EQ(c.cache().enabledSize(), 8 * 1024u);
    c.upsize();
    EXPECT_EQ(c.cache().enabledSize(), 16 * 1024u);
}

TEST(ResizableCacheTest, BoundsAreNoops)
{
    SelectiveWaysCache c("dl1", g);
    EXPECT_FALSE(c.canUpsize());
    FlushResult r = c.upsize();
    EXPECT_EQ(r.invalidated, 0u);
    c.setLevel(c.levels() - 1);
    EXPECT_FALSE(c.canDownsize());
    r = c.downsize();
    EXPECT_EQ(r.invalidated, 0u);
}

TEST(ResizableCacheTest, WaysPreservesSets)
{
    SelectiveWaysCache c("dl1", g);
    for (unsigned lvl = 0; lvl < c.levels(); ++lvl) {
        c.setLevel(lvl);
        EXPECT_EQ(c.cache().enabledSets(), 256u);
        EXPECT_EQ(c.cache().enabledWays(), 4u - lvl);
    }
}

TEST(ResizableCacheTest, SetsPreservesAssociativity)
{
    SelectiveSetsCache c("dl1", g);
    for (unsigned lvl = 0; lvl < c.levels(); ++lvl) {
        c.setLevel(lvl);
        EXPECT_EQ(c.cache().enabledWays(), 4u);
    }
}

TEST(ResizableCacheTest, HybridExposesTable1Levels)
{
    HybridCache c("dl1", g);
    EXPECT_EQ(c.levels(), 10u);
    c.setLevel(1);
    EXPECT_EQ(c.cache().enabledSize(), 24 * 1024u);
    EXPECT_EQ(c.cache().enabledWays(), 3u);
}

TEST(ResizableCacheTest, LevelForMinSize)
{
    SelectiveSetsCache c("dl1", g); // 32,16,8,4
    EXPECT_EQ(c.levelForMinSize(32 * 1024), 0u);
    EXPECT_EQ(c.levelForMinSize(16 * 1024), 1u);
    EXPECT_EQ(c.levelForMinSize(10 * 1024), 1u); // smallest >= 10K
    EXPECT_EQ(c.levelForMinSize(1), 3u);         // clamped to min
}

TEST(ResizableCacheTest, ExtraTagBitsByOrganization)
{
    SelectiveSetsCache sets("a", g);
    SelectiveWaysCache ways("b", g);
    HybridCache hyb("c", g);
    EXPECT_EQ(sets.extraTagBits(), 3u);
    EXPECT_EQ(ways.extraTagBits(), 0u);
    EXPECT_EQ(hyb.extraTagBits(), 3u);
}

TEST(ResizableCacheTest, FlushWritebacksReachSink)
{
    SelectiveSetsCache c("dl1", g);
    c.cache().access(0x0, true); // dirty block in set 0
    // Dirty block in a set disabled at the next level (set 128+).
    c.cache().access((128 + 7) * 32, true);
    std::vector<Addr> drained;
    c.downsize([&](Addr a) { drained.push_back(a); });
    EXPECT_EQ(drained.size(), 1u);
}

TEST(ResizableCacheDeathTest, LevelOutOfRange)
{
    SelectiveSetsCache c("dl1", g);
    EXPECT_DEATH(c.setLevel(99), "assertion");
}

/** Property: every level of every organization yields a cache that
 *  accepts traffic and keeps invariants. */
class OrgLevelSweep
    : public testing::TestWithParam<std::tuple<Organization, int>>
{
};

TEST_P(OrgLevelSweep, TrafficAtEveryLevel)
{
    auto [org, assoc] = GetParam();
    CacheGeometry geom{32 * 1024, static_cast<unsigned>(assoc), 32,
                       1024};
    ResizableCache c("dl1", geom, org);
    for (unsigned lvl = 0; lvl < c.levels(); ++lvl) {
        c.setLevel(lvl);
        std::uint64_t x = 5;
        for (int i = 0; i < 3000; ++i) {
            x = x * 6364136223846793005ull + 1;
            c.cache().access((x >> 30) & 0xfffe0, (x & 1) != 0);
        }
        ASSERT_TRUE(c.cache().checkInvariants());
        ASSERT_EQ(c.cache().enabledSize(),
                  c.schedule()[lvl].sizeBytes(32));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OrgLevelSweep,
    testing::Combine(testing::Values(Organization::SelectiveWays,
                                     Organization::SelectiveSets,
                                     Organization::Hybrid),
                     testing::Values(2, 4, 8, 16)));

} // namespace rcache
