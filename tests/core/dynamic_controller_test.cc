/** @file
 * Tests for the miss-ratio-based dynamic resizing controller
 * (paper Section 2.2 / the HPCA'01 framework).
 */

#include <gtest/gtest.h>

#include "core/dynamic_controller.hh"
#include "core/static_policy.hh"

namespace rcache
{

namespace
{

const CacheGeometry g{32 * 1024, 4, 32, 1024};

DynamicParams
params(std::uint64_t interval, std::uint64_t bound,
       std::uint64_t size_bound = 0)
{
    DynamicParams p;
    p.intervalAccesses = interval;
    p.missBound = bound;
    p.sizeBoundBytes = size_bound;
    return p;
}

/** Drive @p n accesses with a fixed miss flag. */
void
drive(DynamicMissRatioController &ctl, std::uint64_t n, bool miss,
      std::uint64_t &cycle)
{
    for (std::uint64_t i = 0; i < n; ++i)
        ctl.onAccess(miss, ++cycle);
}

} // namespace

TEST(DynamicControllerTest, NoResizeWithinInterval)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 99, false, cycle);
    EXPECT_EQ(ctl.intervals(), 0u);
    EXPECT_EQ(c.currentLevel(), 0u);
}

TEST(DynamicControllerTest, LowMissesDownsize)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle); // 0 misses < 10
    EXPECT_EQ(ctl.intervals(), 1u);
    EXPECT_EQ(ctl.downsizes(), 1u);
    EXPECT_EQ(c.currentLevel(), 1u);
}

TEST(DynamicControllerTest, HighMissesUpsize)
{
    SelectiveSetsCache c("dl1", g);
    c.setLevel(2);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, true, cycle); // 100 misses > 10
    EXPECT_EQ(ctl.upsizes(), 1u);
    EXPECT_EQ(c.currentLevel(), 1u);
}

TEST(DynamicControllerTest, UpsizeAtFullSizeIsNoop)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, true, cycle);
    EXPECT_EQ(ctl.upsizes(), 0u);
    EXPECT_EQ(c.currentLevel(), 0u);
}

TEST(DynamicControllerTest, SizeBoundPreventsThrashing)
{
    SelectiveSetsCache c("dl1", g); // offers 32/16/8/4K
    DynamicMissRatioController ctl(
        c, {}, params(100, 10, 16 * 1024)); // floor at 16K
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle);
    EXPECT_EQ(c.currentLevel(), 1u); // 16K
    drive(ctl, 100, false, cycle);
    EXPECT_EQ(c.currentLevel(), 1u); // parked at the size-bound
    EXPECT_EQ(ctl.downsizes(), 1u);
}

TEST(DynamicControllerTest, ZeroSizeBoundAllowsMinimum)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10, 0));
    std::uint64_t cycle = 0;
    for (int i = 0; i < 10; ++i)
        drive(ctl, 100, false, cycle);
    EXPECT_EQ(c.currentLevel(), c.levels() - 1); // 4K floor
}

TEST(DynamicControllerTest, OneStepPerInterval)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 300, false, cycle);
    EXPECT_EQ(c.currentLevel(), 3u); // exactly one step per interval
}

TEST(DynamicControllerTest, EmulationOscillatesBetweenTwoSizes)
{
    // The paper's "unavailable size emulation": misses high at the
    // small size, low at the large size -> alternates.
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle); // down to 16K
    for (int i = 0; i < 6; ++i) {
        drive(ctl, 100, true, cycle);  // at 16K: too many misses
        EXPECT_EQ(c.currentLevel(), 0u);
        drive(ctl, 100, false, cycle); // at 32K: quiet
        EXPECT_EQ(c.currentLevel(), 1u);
    }
    auto trace = ctl.levelTrace();
    ASSERT_GE(trace.size(), 13u);
}

TEST(DynamicControllerTest, HysteresisCreatesDeadZone)
{
    SelectiveSetsCache c("dl1", g);
    DynamicParams p = params(100, 10);
    p.downsizeFraction = 0.5; // downsize only below 5 misses
    DynamicMissRatioController ctl(c, {}, p);
    std::uint64_t cycle = 0;
    // 7 misses per interval: between 5 and 10 -> no movement.
    for (int k = 0; k < 5; ++k) {
        for (int i = 0; i < 100; ++i)
            ctl.onAccess(i < 7, ++cycle);
    }
    EXPECT_EQ(c.currentLevel(), 0u);
    EXPECT_EQ(ctl.downsizes(), 0u);
}

TEST(DynamicControllerTest, LevelTraceRecordsEveryInterval)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(50, 5));
    std::uint64_t cycle = 0;
    drive(ctl, 50 * 7, false, cycle);
    EXPECT_EQ(ctl.levelTrace().size(), 7u);
}

TEST(DynamicControllerTest, AccountsEnabledTimeAtBoundaries)
{
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle); // resize at cycle 100
    // 100 cycles at 32K were accounted before the resize.
    EXPECT_DOUBLE_EQ(c.cache().byteCycles(), 32768.0 * 100);
}

TEST(DynamicControllerTest, FlushWritebacksGoToSink)
{
    SelectiveSetsCache c("dl1", g);
    std::vector<Addr> drained;
    DynamicMissRatioController ctl(
        c, [&](Addr a) { drained.push_back(a); }, params(100, 50));
    // Dirty a block in the top half of the sets (disabled at 16K).
    c.cache().access((128 + 3) * 32, true);
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle);
    EXPECT_EQ(c.currentLevel(), 1u);
    EXPECT_EQ(drained.size(), 1u);
}

TEST(StaticPolicyTest, AppliesLevelAtConstruction)
{
    SelectiveSetsCache c("dl1", g);
    StaticPolicy pol(c, {}, 2);
    EXPECT_EQ(c.currentLevel(), 2u);
    EXPECT_EQ(c.cache().enabledSize(), 8 * 1024u);
}

TEST(StaticPolicyTest, NeverReactsAtRuntime)
{
    SelectiveSetsCache c("dl1", g);
    StaticPolicy pol(c, {}, 1);
    for (int i = 0; i < 100000; ++i)
        pol.onAccess(true, i);
    EXPECT_EQ(c.currentLevel(), 1u);
    EXPECT_EQ(c.cache().resizes(), 1u);
}

TEST(StrategyNameTest, Names)
{
    EXPECT_EQ(strategyName(Strategy::None), "none");
    EXPECT_EQ(strategyName(Strategy::Static), "static");
    EXPECT_EQ(strategyName(Strategy::Dynamic), "dynamic");
}

TEST(DynamicControllerTest, DecisionFiresExactlyAtTheBoundaryAccess)
{
    SelectiveSetsCache c("dl1", g);
    c.setLevel(2);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 99, true, cycle);
    EXPECT_EQ(ctl.intervals(), 0u);
    EXPECT_EQ(c.currentLevel(), 2u); // not an access early
    ctl.onAccess(true, ++cycle); // the 100th access decides
    EXPECT_EQ(ctl.intervals(), 1u);
    EXPECT_EQ(c.currentLevel(), 1u);
}

TEST(DynamicControllerTest, MissCounterResetsAfterResizeDecision)
{
    SelectiveSetsCache c("dl1", g);
    c.setLevel(2);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, true, cycle); // 100 misses -> upsize to level 1
    EXPECT_EQ(ctl.upsizes(), 1u);
    // Exactly missBound misses in the next interval: a stale counter
    // would read 110 > 10 and upsize again; a reset counter reads
    // 10, which is not above the bound, and holds (and is not below
    // it either, so no downsize).
    for (int i = 0; i < 100; ++i)
        ctl.onAccess(i < 10, ++cycle);
    EXPECT_EQ(ctl.upsizes(), 1u);
    EXPECT_EQ(ctl.downsizes(), 0u);
    EXPECT_EQ(c.currentLevel(), 1u);
}

TEST(DynamicControllerTest, PartialIntervalCarriesAcrossModeSwitch)
{
    // The sampling engine hands the same controller first to the
    // functional warmup core and then to the timing core; an
    // interval begun in one must complete in the other.
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 60, false, cycle); // "warmup" accesses, cycles real
    EXPECT_EQ(ctl.intervals(), 0u);
    for (int i = 0; i < 40; ++i)
        ctl.onAccess(false, 0); // "functional" accesses at cycle 0
    EXPECT_EQ(ctl.intervals(), 1u);
    EXPECT_EQ(ctl.downsizes(), 1u);
}

TEST(DynamicControllerTest, SkippedSpansLeaveTheControllerParked)
{
    // Fast-forward skips whole controller intervals: no accesses
    // arrive, so no interval fires and the level is frozen until the
    // warmup resumes the access stream.
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle);
    EXPECT_EQ(c.currentLevel(), 1u);
    const std::uint64_t intervals_before = ctl.intervals();
    // (a skipped span: nothing happens)
    EXPECT_EQ(ctl.intervals(), intervals_before);
    EXPECT_EQ(c.currentLevel(), 1u);
    // Resuming after the skip continues the cadence exactly.
    drive(ctl, 100, false, cycle);
    EXPECT_EQ(ctl.intervals(), intervals_before + 1);
    EXPECT_EQ(c.currentLevel(), 2u);
}

TEST(DynamicControllerTest, FunctionalCyclesDoNotCorruptByteCycles)
{
    // Functional warmup notifies the controller with now_cycle == 0;
    // the enabled-time integral must ignore those non-monotonic
    // boundaries rather than accumulate negative or stale spans.
    SelectiveSetsCache c("dl1", g);
    DynamicMissRatioController ctl(c, {}, params(100, 10));
    std::uint64_t cycle = 0;
    drive(ctl, 100, false, cycle); // detailed: 100 cycles at 32K
    EXPECT_DOUBLE_EQ(c.cache().byteCycles(), 32768.0 * 100);
    for (int i = 0; i < 100; ++i)
        ctl.onAccess(false, 0); // functional interval at cycle 0
    EXPECT_DOUBLE_EQ(c.cache().byteCycles(), 32768.0 * 100);
    EXPECT_EQ(c.currentLevel(), 2u); // the decision still happened
    // A new detailed window re-anchors at cycle 0 and accounts at
    // the size the functional interval selected (8K at level 2).
    c.cache().restartTimeAccounting();
    cycle = 0;
    drive(ctl, 100, false, cycle);
    EXPECT_DOUBLE_EQ(c.cache().byteCycles(),
                     32768.0 * 100 + 8192.0 * 100);
}

/** Property: the controller never selects a level outside the
 *  schedule and never violates the size-bound, for any miss pattern. */
class ControllerFuzzTest : public testing::TestWithParam<int>
{
};

TEST_P(ControllerFuzzTest, LevelsAlwaysLegal)
{
    const int seed = GetParam();
    SelectiveSetsCache c("dl1", g);
    const std::uint64_t size_bound = (seed % 2) ? 8 * 1024 : 0;
    DynamicMissRatioController ctl(c, {},
                                   params(64, 8, size_bound));
    const unsigned bound_level =
        size_bound ? c.levelForMinSize(size_bound) : c.levels() - 1;
    std::uint64_t x = static_cast<std::uint64_t>(seed) * 2654435761u;
    std::uint64_t cycle = 0;
    for (int i = 0; i < 50000; ++i) {
        x = x * 6364136223846793005ull + 1;
        ctl.onAccess((x >> 40) % 100 < (x >> 10) % 30, ++cycle);
        ASSERT_LT(c.currentLevel(), c.levels());
        ASSERT_LE(c.currentLevel(), bound_level);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzzTest,
                         testing::Range(1, 9));

} // namespace rcache
