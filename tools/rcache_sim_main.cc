/**
 * @file
 * rcache-sim: unified CLI driver for the resizable-cache simulator.
 *
 * Subcommands:
 *   sweep     profiling grid over org x strategy x app, fanned across
 *             a SweepRunner thread pool, reported as CSV/JSON/table
 *   run       one explicit design point, full run report
 *   replay    drive a recorded trace file through one design point
 *   list-apps print the benchmark suite names
 *
 * The sweep enumerates every cell's jobs up front and executes them
 * as ONE batch, so the pool stays busy across cell boundaries; the
 * report is assembled in enumeration order afterwards, which is what
 * makes the output byte-identical for any --jobs value.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workload/profiles.hh"
#include "workload/trace_io.hh"

namespace
{

using namespace rcache;

int
usage(std::ostream &os, int code)
{
    os << "rcache-sim — resizable-cache design-space explorer\n"
          "\n"
          "usage:\n"
          "  rcache-sim sweep [options]   parallel org x strategy x "
          "app profiling grid\n"
          "  rcache-sim run [options]     one explicit design point\n"
          "  rcache-sim replay [options]  drive a recorded trace "
          "file\n"
          "  rcache-sim record [options]  record a profile's stream "
          "to a trace file\n"
          "  rcache-sim list-apps         print the benchmark suite\n"
          "\n"
          "common options:\n"
          "  --insts N       instructions per run (default 400000)\n"
          "  --jobs N        worker threads (default 1, 0 = all "
          "cores)\n"
          "  --assoc N       override both L1 associativities\n"
          "\n"
          "sampling options (sweep/run):\n"
          "  --sample N          sampled simulation with period N "
          "insts\n"
          "  --sample-detail D   measured insts per period (default "
          "N/10)\n"
          "  --sample-warmup W   functional cache/predictor warmup "
          "insts per period (default N/5)\n"
          "\n"
          "sweep options:\n"
          "  --apps a,b,c    subset of the suite (default: all)\n"
          "  --orgs list     of ways,sets,hybrid (default: "
          "ways,sets)\n"
          "  --strategies l  of static,dynamic (default: static)\n"
          "  --side s        icache|dcache|both (default: dcache;\n"
          "                  both is static-only, Fig 9 style)\n"
          "  --format f      csv|json|table (default: csv)\n"
          "  --out FILE      write the report to FILE, not stdout\n"
          "  --progress      per-job progress on stderr\n"
          "\n"
          "run/replay/record options:\n"
          "  --app NAME      profile to run (run/record, required)\n"
          "  --trace FILE    trace file (replay only, required)\n"
          "  --out FILE      trace destination (record, required)\n"
          "  --name NAME     workload label (replay, default "
          "'trace')\n"
          "  per cache C in {il1, dl1}:\n"
          "    --C-org X         none|ways|sets|hybrid\n"
          "    --C-strategy X    none|static|dynamic\n"
          "    --C-level N       static schedule level\n"
          "    --C-interval N    dynamic interval (accesses)\n"
          "    --C-miss-bound N  dynamic miss bound per interval\n"
          "    --C-size-bound N  dynamic size bound (bytes)\n"
          "\n"
          "example:\n"
          "  rcache-sim sweep --apps ammp,gcc,swim --orgs ways,sets "
          "\\\n"
          "      --strategies static,dynamic --side dcache --jobs 0 "
          "\\\n"
          "      --format csv --out sweep.csv\n";
    return code;
}

/** Parsed command line: string options plus boolean flags. */
struct Args
{
    std::map<std::string, std::string> opts;
    std::map<std::string, bool> flags;

    std::string get(const std::string &key,
                    const std::string &fallback) const
    {
        auto it = opts.find(key);
        return it == opts.end() ? fallback : it->second;
    }
    bool has(const std::string &key) const
    {
        return opts.count(key) != 0;
    }
};

/** Option keys that take no value. */
bool
isFlag(const std::string &key)
{
    return key == "--progress" || key == "--help";
}

/** The per-cache design-point options (--il1-... and --dl1-...). */
std::vector<std::string>
setupKeys()
{
    std::vector<std::string> keys;
    for (const char *c : {"il1", "dl1"})
        for (const char *opt : {"org", "strategy", "level", "interval",
                                "miss-bound", "size-bound"})
            keys.push_back(std::string("--") + c + "-" + opt);
    return keys;
}

/** Options each subcommand accepts; anything else is an error. */
std::vector<std::string>
knownOptions(const std::string &cmd)
{
    std::vector<std::string> keys = {"--help"};
    auto add = [&](std::initializer_list<const char *> more) {
        keys.insert(keys.end(), more.begin(), more.end());
    };
    if (cmd == "sweep") {
        add({"--insts", "--jobs", "--assoc", "--apps", "--orgs",
             "--strategies", "--side", "--format", "--out",
             "--progress", "--sample", "--sample-detail",
             "--sample-warmup"});
    } else if (cmd == "run") {
        add({"--insts", "--assoc", "--app", "--sample",
             "--sample-detail", "--sample-warmup"});
        for (const auto &k : setupKeys())
            keys.push_back(k);
    } else if (cmd == "replay") {
        add({"--insts", "--assoc", "--trace", "--name"});
        for (const auto &k : setupKeys())
            keys.push_back(k);
    } else if (cmd == "record") {
        add({"--insts", "--app", "--out"});
    }
    // list-apps takes no options beyond --help.
    return keys;
}

/**
 * Strict parse: every argument must be a known option of @p cmd.
 * Unknown or malformed arguments get a one-line diagnostic.
 */
std::optional<Args>
parseArgs(int argc, char **argv, int first, const std::string &cmd)
{
    const std::vector<std::string> known = knownOptions(cmd);
    Args args;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0) {
            std::cerr << "rcache-sim: unexpected argument '" << key
                      << "' for '" << cmd << "'\n";
            return std::nullopt;
        }
        if (std::find(known.begin(), known.end(), key) ==
            known.end()) {
            std::cerr << "rcache-sim: unknown option '" << key
                      << "' for '" << cmd
                      << "' (try 'rcache-sim --help')\n";
            return std::nullopt;
        }
        if (isFlag(key)) {
            args.flags[key] = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "rcache-sim: option '" << key
                      << "' needs a value\n";
            return std::nullopt;
        }
        args.opts[key] = argv[++i];
    }
    return args;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Strict decimal parse: the whole value must be digits. Exits the
 *  command with a usage error on garbage like "--assoc abc". */
std::optional<std::uint64_t>
parseU64(const Args &args, const std::string &key,
         std::uint64_t fallback)
{
    if (!args.has(key))
        return fallback;
    const std::string &text = args.get(key, "");
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE ||
        text[0] == '-') {
        std::cerr << "rcache-sim: option '" << key
                  << "' wants a non-negative integer, got '" << text
                  << "'\n";
        return std::nullopt;
    }
    return v;
}

/** Profile lookup with a one-line diagnostic (profileByName is
 *  rc_fatal on unknown names, which is too blunt for a CLI). */
std::optional<BenchmarkProfile>
lookupProfile(const std::string &name)
{
    const auto names = suiteNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "rcache-sim: unknown app '" << name
                  << "' (see 'rcache-sim list-apps')\n";
        return std::nullopt;
    }
    return profileByName(name);
}

/** Resolve the --sample* options into a SamplingConfig. */
std::optional<SamplingConfig>
parseSampling(const Args &args)
{
    if (!args.has("--sample")) {
        if (args.has("--sample-detail") ||
            args.has("--sample-warmup")) {
            std::cerr << "rcache-sim: --sample-detail/--sample-warmup "
                         "need --sample N\n";
            return std::nullopt;
        }
        return SamplingConfig{};
    }
    const auto interval = parseU64(args, "--sample", 0);
    if (!interval)
        return std::nullopt;
    if (*interval == 0) {
        std::cerr << "rcache-sim: --sample wants a period > 0\n";
        return std::nullopt;
    }
    const auto detail =
        parseU64(args, "--sample-detail",
                 SamplingConfig::defaultDetail(*interval));
    const auto warmup =
        parseU64(args, "--sample-warmup",
                 SamplingConfig::defaultWarmup(*interval));
    if (!detail || !warmup)
        return std::nullopt;
    if (const char *err = SamplingConfig::shapeError(
            *interval, *detail, *warmup)) {
        std::cerr << "rcache-sim: " << err << "\n";
        return std::nullopt;
    }
    return SamplingConfig::sampled(*interval, *detail, *warmup);
}

std::optional<Organization>
parseOrg(const std::string &name)
{
    if (name == "none")
        return Organization::None;
    if (name == "ways")
        return Organization::SelectiveWays;
    if (name == "sets")
        return Organization::SelectiveSets;
    if (name == "hybrid")
        return Organization::Hybrid;
    std::cerr << "rcache-sim: unknown organization '" << name
              << "' (want none|ways|sets|hybrid)\n";
    return std::nullopt;
}

std::optional<Strategy>
parseStrategy(const std::string &name)
{
    if (name == "none")
        return Strategy::None;
    if (name == "static")
        return Strategy::Static;
    if (name == "dynamic")
        return Strategy::Dynamic;
    std::cerr << "rcache-sim: unknown strategy '" << name
              << "' (want none|static|dynamic)\n";
    return std::nullopt;
}

/** Instructions per run; 0 is rejected (a 0-instruction result is
 *  the runner's "job never ran" marker and meaningless anyway). */
std::optional<std::uint64_t>
parseInsts(const Args &args)
{
    const auto insts = parseU64(args, "--insts", 400000);
    if (!insts)
        return std::nullopt;
    if (*insts == 0) {
        std::cerr << "rcache-sim: --insts must be > 0\n";
        return std::nullopt;
    }
    return insts;
}

std::optional<SystemConfig>
baseConfig(const Args &args)
{
    SystemConfig cfg = SystemConfig::base();
    if (args.has("--assoc")) {
        const auto assoc = parseU64(args, "--assoc", cfg.dl1.assoc);
        if (!assoc)
            return std::nullopt;
        if (*assoc == 0 || *assoc > 64) {
            std::cerr << "rcache-sim: --assoc wants 1..64\n";
            return std::nullopt;
        }
        cfg.il1.assoc = static_cast<unsigned>(*assoc);
        cfg.dl1.assoc = static_cast<unsigned>(*assoc);
    }
    return cfg;
}

/** Short org token used in report rows ("ways"/"sets"/"hybrid"). */
std::string
orgToken(Organization org)
{
    switch (org) {
      case Organization::None:
        return "none";
      case Organization::SelectiveWays:
        return "ways";
      case Organization::SelectiveSets:
        return "sets";
      case Organization::Hybrid:
        return "hybrid";
    }
    return "?";
}

SweepRecord
recordFrom(const std::string &app, Organization org, Strategy strat,
           const std::string &side, const SearchOutcome &out)
{
    SweepRecord r;
    r.app = app;
    r.org = orgToken(org);
    r.strategy = strategyName(strat);
    r.side = side;
    r.bestLevel = out.bestLevel;
    if (strat == Strategy::Dynamic) {
        r.intervalAccesses = out.bestParams.intervalAccesses;
        r.missBound = out.bestParams.missBound;
        r.sizeBoundBytes = out.bestParams.sizeBoundBytes;
    }
    r.edReductionPct = out.edReductionPct();
    r.perfDegradationPct = out.perfDegradationPct();
    r.baselineEdp = out.baseline.edp();
    r.bestEdp = out.best.edp();
    r.baselineCycles = out.baseline.cycles;
    r.bestCycles = out.best.cycles;
    r.avgIl1Bytes = out.best.avgIl1Bytes;
    r.avgDl1Bytes = out.best.avgDl1Bytes;
    r.sampled = out.best.sampled;
    return r;
}

// --------------------------------------------------------------- sweep

int
cmdSweep(const Args &args)
{
    // ---- resolve the grid
    std::vector<BenchmarkProfile> apps;
    if (args.has("--apps")) {
        for (const auto &name : splitList(args.get("--apps", ""))) {
            auto p = lookupProfile(name);
            if (!p)
                return 2;
            apps.push_back(std::move(*p));
        }
        if (apps.empty()) {
            std::cerr << "rcache-sim: --apps wants at least one "
                         "profile name\n";
            return 2;
        }
    } else {
        apps = spec2000Suite();
    }

    std::vector<Organization> orgs;
    for (const auto &name :
         splitList(args.get("--orgs", "ways,sets"))) {
        auto org = parseOrg(name);
        if (!org)
            return 2;
        if (*org == Organization::None) {
            std::cerr << "rcache-sim: sweep --orgs wants "
                         "ways|sets|hybrid\n";
            return 2;
        }
        orgs.push_back(*org);
    }
    if (orgs.empty()) {
        std::cerr << "rcache-sim: --orgs wants at least one of "
                     "ways|sets|hybrid\n";
        return 2;
    }

    std::vector<Strategy> strats;
    for (const auto &name :
         splitList(args.get("--strategies", "static"))) {
        auto s = parseStrategy(name);
        if (!s)
            return 2;
        if (*s == Strategy::None) {
            std::cerr << "rcache-sim: sweep --strategies wants "
                         "static|dynamic\n";
            return 2;
        }
        strats.push_back(*s);
    }
    if (strats.empty()) {
        std::cerr << "rcache-sim: --strategies wants at least one of "
                     "static|dynamic\n";
        return 2;
    }

    const std::string side_name = args.get("--side", "dcache");
    const bool both_sides = side_name == "both";
    CacheSide side = CacheSide::DCache;
    if (side_name == "icache")
        side = CacheSide::ICache;
    else if (side_name != "dcache" && !both_sides) {
        std::cerr << "rcache-sim: --side wants icache|dcache|both\n";
        return 2;
    }
    if (both_sides)
        for (Strategy s : strats)
            if (s != Strategy::Static) {
                std::cerr << "rcache-sim: --side both supports only "
                             "--strategies static (the paper "
                             "profiles each side separately)\n";
                return 2;
            }

    const auto insts_opt = parseInsts(args);
    const auto jobs_opt = parseU64(args, "--jobs", 1);
    const auto cfg = baseConfig(args);
    const auto sampling = parseSampling(args);
    if (!insts_opt || !jobs_opt || !cfg || !sampling)
        return 2;
    const std::uint64_t insts = *insts_opt;
    const unsigned jobs = static_cast<unsigned>(*jobs_opt);
    const std::string format = args.get("--format", "csv");
    if (format != "csv" && format != "json" && format != "table") {
        std::cerr << "rcache-sim: --format wants csv|json|table\n";
        return 2;
    }

    Experiment exp(*cfg, insts);
    exp.setSampling(*sampling);
    SweepRunner runner(jobs);
    if (args.flags.count("--progress")) {
        runner.setProgress([](std::size_t done, std::size_t total,
                              const RunJob &job) {
            std::cerr << "[" << done << "/" << total << "] "
                      << job.label << '\n';
        });
    }

    // ---- enumerate one flat batch: baselines first, then each
    // cell's search jobs (enumeration order = report order)
    struct Cell
    {
        std::size_t app;
        Organization org;
        Strategy strat;
        /** Batch offsets. Single side: [off, off+count). Both sides:
         *  d jobs at [off, off+count), i at [ioff, ioff+icount). */
        std::size_t off = 0, count = 0;
        std::size_t ioff = 0, icount = 0;
        std::vector<DynamicParams> grid;
    };

    std::vector<RunJob> batch;
    std::vector<std::size_t> baseIdx(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        baseIdx[a] = batch.size();
        batch.push_back(exp.baselineJob(apps[a]));
    }

    std::vector<Cell> cells;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (Organization org : orgs) {
            for (Strategy strat : strats) {
                Cell cell;
                cell.app = a;
                cell.org = org;
                cell.strat = strat;
                if (both_sides) {
                    auto d = exp.staticSearchJobs(
                        apps[a], CacheSide::DCache, org);
                    cell.off = batch.size();
                    cell.count = d.size();
                    batch.insert(batch.end(), d.begin(), d.end());
                    auto i = exp.staticSearchJobs(
                        apps[a], CacheSide::ICache, org);
                    cell.ioff = batch.size();
                    cell.icount = i.size();
                    batch.insert(batch.end(), i.begin(), i.end());
                } else if (strat == Strategy::Static) {
                    auto j = exp.staticSearchJobs(apps[a], side, org);
                    cell.off = batch.size();
                    cell.count = j.size();
                    batch.insert(batch.end(), j.begin(), j.end());
                } else {
                    auto j =
                        exp.dynamicSearchJobs(apps[a], side, org);
                    cell.grid = exp.dynamicGrid(side, org);
                    cell.off = batch.size();
                    cell.count = j.size();
                    batch.insert(batch.end(), j.begin(), j.end());
                }
                cells.push_back(std::move(cell));
            }
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run(batch);

    // ---- both-sides cells need a second phase: the combined run at
    // each side's individually profiled level
    std::vector<RunJob> phase2;
    std::vector<SearchOutcome> douts(cells.size()),
        iouts(cells.size());
    if (both_sides) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const Cell &cell = cells[c];
            const RunResult &base = results[baseIdx[cell.app]];
            douts[c] = Experiment::reduceStatic(
                base, {results.begin() + cell.off,
                       results.begin() + cell.off + cell.count});
            iouts[c] = Experiment::reduceStatic(
                base, {results.begin() + cell.ioff,
                       results.begin() + cell.ioff + cell.icount});
            phase2.push_back(exp.bothStaticJob(
                apps[cell.app], cell.org, iouts[c].bestLevel,
                douts[c].bestLevel));
        }
    }
    const auto results2 = runner.run(phase2);
    const auto t1 = std::chrono::steady_clock::now();

    // ---- reduce in cell order
    std::vector<SweepRecord> records;
    records.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const std::string &app = apps[cell.app].name;
        const RunResult &base = results[baseIdx[cell.app]];
        if (both_sides) {
            SearchOutcome out;
            out.baseline = base;
            out.best = results2[c];
            out.bestLevel = douts[c].bestLevel;
            SweepRecord r = recordFrom(app, cell.org, cell.strat,
                                       "both", out);
            const double full = base.avgIl1Bytes + base.avgDl1Bytes;
            r.sizeReductionPct =
                100.0 * (1.0 - (out.best.avgIl1Bytes +
                                out.best.avgDl1Bytes) /
                                   full);
            records.push_back(r);
            continue;
        }
        const std::vector<RunResult> slice{
            results.begin() + cell.off,
            results.begin() + cell.off + cell.count};
        SearchOutcome out =
            cell.strat == Strategy::Static
                ? Experiment::reduceStatic(base, slice)
                : Experiment::reduceDynamic(base, cell.grid, slice);
        SweepRecord r = recordFrom(app, cell.org, cell.strat,
                                   cacheSideName(side), out);
        r.sizeReductionPct = out.sizeReductionPct(side);
        records.push_back(r);
    }

    // ---- report
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (args.has("--out")) {
        file.open(args.get("--out", ""));
        if (!file) {
            std::cerr << "rcache-sim: cannot write '"
                      << args.get("--out", "") << "'\n";
            return 2;
        }
        os = &file;
    }
    if (format == "csv")
        writeSweepCsv(*os, records);
    else if (format == "json")
        writeSweepJson(*os, records);
    else
        writeSweepTable(*os, records);

    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::cerr << "sweep: " << batch.size() + phase2.size()
              << " runs in " << secs << " s on "
              << runner.parallelism() << " worker(s)\n";
    return 0;
}

// ---------------------------------------------------------- run/replay

/** Build one cache's ResizeSetup from --<prefix>-* options. */
std::optional<ResizeSetup>
parseSetup(const Args &args, const std::string &prefix)
{
    ResizeSetup setup;
    auto strat =
        parseStrategy(args.get("--" + prefix + "-strategy", "none"));
    if (!strat)
        return std::nullopt;
    setup.strategy = *strat;
    const auto level = parseU64(args, "--" + prefix + "-level", 0);
    const auto interval =
        parseU64(args, "--" + prefix + "-interval",
                 Experiment::dynIntervalAccesses);
    if (!level || !interval)
        return std::nullopt;
    if (*interval == 0) {
        std::cerr << "rcache-sim: --" << prefix
                  << "-interval must be > 0\n";
        return std::nullopt;
    }
    const auto miss_bound =
        parseU64(args, "--" + prefix + "-miss-bound",
                 *interval / 100);
    const auto size_bound =
        parseU64(args, "--" + prefix + "-size-bound", 0);
    if (!miss_bound || !size_bound)
        return std::nullopt;
    setup.staticLevel = static_cast<unsigned>(*level);
    setup.dyn.intervalAccesses = *interval;
    setup.dyn.missBound = *miss_bound;
    setup.dyn.sizeBoundBytes = *size_bound;
    return setup;
}

/** Resolve the two org selections for run/replay. */
bool
applyOrgs(const Args &args, SystemConfig &cfg,
          const ResizeSetup &il1, const ResizeSetup &dl1)
{
    auto il1_org = parseOrg(args.get("--il1-org", "none"));
    auto dl1_org = parseOrg(args.get("--dl1-org", "none"));
    if (!il1_org || !dl1_org)
        return false;
    cfg.il1Org = *il1_org;
    cfg.dl1Org = *dl1_org;
    if (il1.strategy != Strategy::None &&
        cfg.il1Org == Organization::None) {
        std::cerr << "rcache-sim: --il1-strategy needs --il1-org\n";
        return false;
    }
    if (dl1.strategy != Strategy::None &&
        cfg.dl1Org == Organization::None) {
        std::cerr << "rcache-sim: --dl1-strategy needs --dl1-org\n";
        return false;
    }
    return true;
}

int
cmdRun(const Args &args)
{
    if (!args.has("--app")) {
        std::cerr << "rcache-sim: run needs --app NAME (see "
                     "list-apps)\n";
        return 2;
    }
    const auto profile = lookupProfile(args.get("--app", ""));
    const auto il1 = parseSetup(args, "il1");
    const auto dl1 = parseSetup(args, "dl1");
    auto cfg = baseConfig(args);
    const auto insts = parseInsts(args);
    const auto sampling = parseSampling(args);
    if (!profile || !il1 || !dl1 || !cfg || !insts || !sampling)
        return 2;
    if (!applyOrgs(args, *cfg, *il1, *dl1))
        return 2;

    RunJob job;
    job.label = profile->name + "/point";
    job.profile = *profile;
    job.cfg = *cfg;
    job.insts = *insts;
    job.il1 = *il1;
    job.dl1 = *dl1;
    job.sampling = *sampling;
    writeRunReport(std::cout, executeRunJob(job));
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (!args.has("--trace")) {
        std::cerr << "rcache-sim: replay needs --trace FILE\n";
        return 2;
    }
    const std::string path = args.get("--trace", "");
    std::ifstream in(path);
    if (!in) {
        std::cerr << "rcache-sim: cannot open trace '" << path
                  << "'\n";
        return 2;
    }
    std::vector<MicroInst> insts = readTrace(in);
    if (insts.empty()) {
        std::cerr << "rcache-sim: trace '" << path
                  << "' holds no instructions\n";
        return 2;
    }
    const std::uint64_t trace_len = insts.size();
    TraceWorkload wl(std::move(insts), args.get("--name", "trace"));

    const auto il1 = parseSetup(args, "il1");
    const auto dl1 = parseSetup(args, "dl1");
    auto cfg = baseConfig(args);
    // Default: one pass over the recorded stream.
    const auto num_insts = parseU64(args, "--insts", trace_len);
    if (!il1 || !dl1 || !cfg || !num_insts)
        return 2;
    if (*num_insts == 0) {
        std::cerr << "rcache-sim: --insts must be > 0\n";
        return 2;
    }
    if (!applyOrgs(args, *cfg, *il1, *dl1))
        return 2;

    System sys(*cfg);
    writeRunReport(std::cout, sys.run(wl, *num_insts, *il1, *dl1));
    return 0;
}

int
cmdRecord(const Args &args)
{
    if (!args.has("--app") || !args.has("--out")) {
        std::cerr
            << "rcache-sim: record needs --app NAME and --out FILE\n";
        return 2;
    }
    const auto profile = lookupProfile(args.get("--app", ""));
    const auto count = parseInsts(args);
    if (!profile || !count)
        return 2;
    const std::string path = args.get("--out", "");
    std::ofstream out(path);
    if (!out) {
        std::cerr << "rcache-sim: cannot write '" << path << "'\n";
        return 2;
    }
    SyntheticWorkload wl(*profile);
    writeTrace(out, wl, *count);
    std::cerr << "recorded " << *count << " instructions of "
              << wl.name() << " to " << path << '\n';
    return 0;
}

int
cmdListApps()
{
    for (const auto &name : suiteNames())
        std::cout << name << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help" || cmd == "-h")
        return usage(std::cout, 0);

    const bool known_cmd = cmd == "sweep" || cmd == "run" ||
                           cmd == "replay" || cmd == "record" ||
                           cmd == "list-apps";
    if (!known_cmd) {
        std::cerr << "rcache-sim: unknown subcommand '" << cmd
                  << "' (try 'rcache-sim --help')\n";
        return 2;
    }

    auto args = parseArgs(argc, argv, 2, cmd);
    if (!args)
        return 2;
    if (args->flags.count("--help"))
        return usage(std::cout, 0);

    if (cmd == "sweep")
        return cmdSweep(*args);
    if (cmd == "run")
        return cmdRun(*args);
    if (cmd == "replay")
        return cmdReplay(*args);
    if (cmd == "record")
        return cmdRecord(*args);
    return cmdListApps();
}
