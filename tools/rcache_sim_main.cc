/**
 * @file
 * rcache-sim: unified CLI driver for the resizable-cache simulator.
 *
 * Subcommands:
 *   sweep     design-space sweep from a scenario file (--scenario) or
 *             the legacy org x strategy x app grid flags, fanned
 *             across a SweepRunner thread pool, shardable (--shard)
 *             and resumable (--resume), reported as CSV/JSON/table
 *   tune      adaptive design-space search: successive halving over
 *             the engine fidelity ladder, with a replayable decision
 *             log and cooperative --claim workers (src/search/)
 *   merge     re-interleave sweep shard CSVs (or a --claim manifest
 *             directory) into the byte-identical unsharded report
 *   run       one explicit design point, full run report
 *   replay    drive a recorded trace file through one design point
 *   convert   rewrite a rocksdb/lcs/native[.gz] trace as native text
 *   scenario  check/print scenario files
 *   inspect   summarize telemetry artifacts (timelines, event traces)
 *   list-apps print the benchmark suite names
 *
 * Both sweep paths converge on the scenario engine
 * (scenario/scenario_sweep.hh): the grid flags are sugar that builds
 * the equivalent ScenarioSpec. The engine enumerates every cell's
 * jobs up front and executes them as ONE batch, so the pool stays
 * busy across cell boundaries and the output is byte-identical for
 * any --jobs value, shard partition, or resume point.
 */

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness/perf_harness.hh"
#include "fault/failpoint.hh"
#include "runner/shard.hh"
#include "runner/sweep_runner.hh"
#include "scenario/scenario_spec.hh"
#include "scenario/scenario_sweep.hh"
#include "search/adaptive_search.hh"
#include "search/doctor.hh"
#include "search/sweep_merge.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "telemetry/inspect.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/trace_events.hh"
#include "util/checked_io.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "cache/replacement.hh"
#include "workload/profiles.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_format.hh"
#include "workload/trace_io.hh"
#include "workload/workload_factory.hh"

namespace
{

using namespace rcache;

int
usage(std::ostream &os, int code)
{
    os << "rcache-sim — resizable-cache design-space explorer\n"
          "\n"
          "usage:\n"
          "  rcache-sim sweep [options]     design-space sweep "
          "(--scenario file or grid flags)\n"
          "  rcache-sim tune [options]      adaptive search: find "
          "the best cell on a fidelity ladder\n"
          "  rcache-sim merge [opts] f..    re-interleave shard CSVs "
          "(or a --claim dir) into one report\n"
          "  rcache-sim run [options]       one explicit design "
          "point\n"
          "  rcache-sim replay [options]    drive a recorded trace "
          "file\n"
          "  rcache-sim record [options]    record a profile's "
          "stream to a trace file\n"
          "  rcache-sim convert [options]   rewrite a rocksdb/lcs/"
          "native[.gz] trace as native text\n"
          "  rcache-sim bench [options]     time the simulator's hot "
          "paths, write BENCH_*.json\n"
          "  rcache-sim scenario check f..  validate scenario files\n"
          "  rcache-sim scenario print f    print a scenario's "
          "canonical form\n"
          "  rcache-sim inspect [options]   summarize telemetry "
          "artifacts\n"
          "  rcache-sim doctor [opts] DIR   audit a --claim manifest "
          "directory's consistency\n"
          "  rcache-sim list-apps           print the benchmark "
          "suite\n"
          "  rcache-sim list-failpoints     print the registered "
          "fault-injection sites\n"
          "\n"
          "Each subcommand documents its own options: "
          "'rcache-sim <subcommand> --help'.\n"
          "\n"
          "example:\n"
          "  rcache-sim sweep --scenario scenarios/fig4.scn --jobs 0 "
          "\\\n"
          "      --shard 0/2 --out shard0.csv\n"
          "  rcache-sim sweep --apps ammp,gcc,swim --orgs ways,sets "
          "\\\n"
          "      --strategies static,dynamic --side dcache --jobs 0 "
          "\\\n"
          "      --format csv --out sweep.csv\n";
    return code;
}

/** Parsed command line: string options plus boolean flags. */
struct Args
{
    std::map<std::string, std::string> opts;
    std::map<std::string, bool> flags;

    std::string get(const std::string &key,
                    const std::string &fallback) const
    {
        auto it = opts.find(key);
        return it == opts.end() ? fallback : it->second;
    }
    bool has(const std::string &key) const
    {
        return opts.count(key) != 0;
    }
};

/** Option keys that take no value. */
bool
isFlag(const std::string &key)
{
    return key == "--progress" || key == "--help" ||
           key == "--quick" || key == "--list";
}

/** The per-cache design-point options (--il1-... and --dl1-...). */
std::vector<std::string>
setupKeys()
{
    std::vector<std::string> keys;
    for (const char *c : {"il1", "dl1"})
        for (const char *opt : {"org", "strategy", "level", "interval",
                                "miss-bound", "size-bound"})
            keys.push_back(std::string("--") + c + "-" + opt);
    return keys;
}

/** Options each subcommand accepts; anything else is an error. */
std::vector<std::string>
knownOptions(const std::string &cmd)
{
    std::vector<std::string> keys = {"--help"};
    auto add = [&](std::initializer_list<const char *> more) {
        keys.insert(keys.end(), more.begin(), more.end());
    };
    if (cmd == "sweep") {
        add({"--scenario", "--shard", "--resume", "--insts", "--jobs",
             "--assoc", "--apps", "--orgs", "--strategies", "--side",
             "--cores", "--mix", "--quantum", "--policy", "--format",
             "--out", "--progress", "--engine", "--sample",
             "--sample-detail", "--sample-warmup", "--timeline",
             "--events", "--trace-events", "--timeline-interval",
             "--claim", "--shards", "--lease-timeout",
             "--failpoint"});
    } else if (cmd == "tune") {
        add({"--scenario", "--jobs", "--out", "--log", "--resume",
             "--claim", "--shards", "--lease-timeout",
             "--failpoint"});
    } else if (cmd == "run") {
        add({"--insts", "--assoc", "--app", "--cores", "--mix",
             "--quantum", "--policy", "--engine", "--sample",
             "--sample-detail", "--sample-warmup", "--timeline",
             "--events", "--trace-events", "--timeline-interval",
             "--failpoint"});
        for (const auto &k : setupKeys())
            keys.push_back(k);
    } else if (cmd == "inspect") {
        add({"--timeline", "--events", "--window"});
    } else if (cmd == "replay") {
        add({"--insts", "--assoc", "--trace", "--name", "--policy"});
        for (const auto &k : setupKeys())
            keys.push_back(k);
    } else if (cmd == "record") {
        add({"--insts", "--app", "--out"});
    } else if (cmd == "convert") {
        add({"--in", "--out", "--limit"});
    } else if (cmd == "bench") {
        add({"--quick", "--list", "--insts", "--reps", "--filter",
             "--out-dir"});
    }
    // list-apps takes no options beyond --help.
    return keys;
}

/** One-line purpose of each subcommand (the --help headline). */
std::string
commandPurpose(const std::string &cmd)
{
    if (cmd == "sweep")
        return "design-space sweep (--scenario file or grid flags)";
    if (cmd == "tune")
        return "adaptive design-space search: successive halving "
               "over the engine fidelity ladder ([search] mode = "
               "adaptive)";
    if (cmd == "merge")
        return "re-interleave sweep shard CSVs (or a --claim "
               "manifest directory) into the unsharded report";
    if (cmd == "run")
        return "one explicit design point, full run report";
    if (cmd == "replay")
        return "drive a recorded trace file through a design point";
    if (cmd == "record")
        return "record a profile's stream to a trace file";
    if (cmd == "convert")
        return "rewrite a rocksdb/lcs/native[.gz] trace as the "
               "native text format (streamed, bounded memory)";
    if (cmd == "bench")
        return "time the simulator's hot paths and write "
               "machine-readable BENCH_*.json perf records";
    if (cmd == "inspect")
        return "summarize telemetry artifacts: decision counts by "
               "reason, size residency, oscillations";
    if (cmd == "doctor")
        return "read-only consistency audit of a --claim manifest "
               "directory (exit 0 consistent, 2 inconsistent)";
    if (cmd == "list-apps")
        return "print the benchmark suite names";
    if (cmd == "list-failpoints")
        return "print the registered fault-injection sites";
    return "";
}

/**
 * One-line help for every option key. The per-subcommand help is
 * GENERATED from knownOptions() plus this table, so an option added
 * to an allowlist shows up in that subcommand's --help automatically.
 */
std::string
optionHelp(const std::string &key)
{
    static const std::map<std::string, const char *> help = {
        {"--help", "show this help and exit"},
        {"--insts", "instructions per run (default 400000)"},
        {"--jobs", "worker threads (default 1, 0 = all cores)"},
        {"--assoc", "override both L1 associativities (1..64)"},
        {"--scenario",
         "scenario file describing the sweep (replaces the grid "
         "flags)"},
        {"--shard",
         "i/N: run only cells with index == i mod N (merge shards "
         "by sorting rows on the cell column)"},
        {"--resume",
         "CSV of an interrupted sweep: verify its completed rows, "
         "simulate only the rest, write the merged file back"},
        {"--apps", "comma list of profiles (default: all)"},
        {"--orgs",
         "comma list of ways,sets,hybrid (default: ways,sets)"},
        {"--strategies",
         "comma list of static,dynamic (default: static)"},
        {"--side",
         "icache|dcache|both (default: dcache; both is static-only, "
         "Fig 9 style)"},
        {"--format", "csv|json|table (default: csv)"},
        {"--out", "write the report/trace to FILE, not stdout"},
        {"--progress", "per-job progress on stderr"},
        {"--engine",
         "simulation engine: full | sampled[:interval=N,detail=N,"
         "warmup=N] | analytic (default full)"},
        {"--sample",
         "deprecated: --engine sampled with period N insts"},
        {"--sample-detail",
         "deprecated: sampled-engine measured insts (default N/10)"},
        {"--sample-warmup",
         "deprecated: sampled-engine warmup insts (default N/5)"},
        {"--app",
         "profile to run (see list-apps), or trace:PATH[:FORMAT] to "
         "stream an on-disk trace"},
        {"--policy",
         "L1 replacement policy: lru|random|fifo|slru|wtlfu "
         "(default lru)"},
        {"--in",
         "input trace: PATH or trace:PATH[:FORMAT] (formats "
         "native|rocksdb|lcs; '.gz' for gzip)"},
        {"--limit", "convert at most N records (default 0 = all)"},
        {"--cores",
         "simulate N cores with private L1s over one shared L2 "
         "(default 1; with --mix, the mix size)"},
        {"--mix",
         "'+'-joined workload mix cycled across the cores "
         "(e.g. gcc+m88ksim)"},
        {"--quantum",
         "round-robin interleave quantum in insts (default 50000)"},
        {"--quick",
         "small items/reps for smoke runs (still writes JSON)"},
        {"--list", "print the registered benchmarks and exit"},
        {"--reps", "timed repetitions per benchmark (default 3)"},
        {"--filter", "run only benchmarks whose name contains SUB"},
        {"--out-dir", "directory for BENCH_*.json (default .)"},
        {"--trace", "trace file to replay"},
        {"--name", "workload label (default 'trace')"},
        {"--timeline",
         "per-core interval-timeline file (run/sweep write it — "
         "JSONL, or CSV when a run's FILE ends in .csv; inspect "
         "reads it)"},
        {"--events",
         "resize-decision event-trace JSONL (run/sweep write it; "
         "inspect reads it)"},
        {"--trace-events",
         "write Chrome trace-event JSON of runner spans to FILE "
         "(load in Perfetto / chrome://tracing)"},
        {"--timeline-interval",
         "timeline sample period in insts (default 10000)"},
        {"--window",
         "oscillation window in controller intervals (default 3)"},
        {"--claim",
         "cooperative mode: claim work units from manifest "
         "directory DIR (create it with --shards N; other workers "
         "just name the DIR to join)"},
        {"--shards",
         "work units when creating a --claim manifest (joining "
         "workers inherit the manifest's count)"},
        {"--lease-timeout",
         "seconds before a claimed unit with no progress counts as "
         "crashed and may be taken over (default 300)"},
        {"--log",
         "write the adaptive search's JSONL decision log to FILE "
         "(byte-identical across --jobs, workers, and resumes)"},
        {"--failpoint",
         "arm deterministic fault injection: SITE=ACTION[@N],... "
         "with actions crash|io_error|torn|delay[:MS] (see "
         "'rcache-sim list-failpoints'; RC_FAILPOINT env works "
         "too)"},
    };
    auto it = help.find(key);
    if (it != help.end())
        return it->second;
    // The per-cache design-point keys (--il1-*/--dl1-*) are
    // described generically.
    for (const char *c : {"il1", "dl1"}) {
        const std::string prefix = std::string("--") + c + "-";
        if (key.rfind(prefix, 0) != 0)
            continue;
        const std::string opt = key.substr(prefix.size());
        const std::string cache = c;
        if (opt == "org")
            return cache + " organization: none|ways|sets|hybrid";
        if (opt == "strategy")
            return cache + " strategy: none|static|dynamic";
        if (opt == "level")
            return cache + " static schedule level";
        if (opt == "interval")
            return cache + " dynamic interval (accesses)";
        if (opt == "miss-bound")
            return cache + " dynamic miss bound per interval";
        if (opt == "size-bound")
            return cache + " dynamic size bound (bytes)";
    }
    return "";
}

/** Per-subcommand --help, generated from the option allowlist. */
int
commandHelp(const std::string &cmd)
{
    std::cout << "rcache-sim " << cmd << " — " << commandPurpose(cmd)
              << "\n\nusage: rcache-sim " << cmd;
    const auto known = knownOptions(cmd);
    if (known.size() > 1)
        std::cout << " [options]";
    std::cout << "\n\noptions:\n";
    for (const std::string &key : known) {
        const std::string arg = isFlag(key) ? key : key + " <v>";
        std::cout << "  " << arg;
        for (std::size_t pad = arg.size(); pad < 22; ++pad)
            std::cout << ' ';
        std::cout << ' ' << optionHelp(key) << '\n';
    }
    return 0;
}

/**
 * Strict parse: every argument must be a known option of @p cmd.
 * Unknown or malformed arguments get a one-line diagnostic.
 */
std::optional<Args>
parseArgs(int argc, char **argv, int first, const std::string &cmd)
{
    const std::vector<std::string> known = knownOptions(cmd);
    Args args;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0) {
            std::cerr << "rcache-sim: unexpected argument '" << key
                      << "' for '" << cmd << "'\n";
            return std::nullopt;
        }
        if (std::find(known.begin(), known.end(), key) ==
            known.end()) {
            std::cerr << "rcache-sim: unknown option '" << key
                      << "' for '" << cmd
                      << "' (try 'rcache-sim --help')\n";
            return std::nullopt;
        }
        if (isFlag(key)) {
            args.flags[key] = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "rcache-sim: option '" << key
                      << "' needs a value\n";
            return std::nullopt;
        }
        args.opts[key] = argv[++i];
    }
    return args;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Strict decimal parse: the whole value must be digits. Exits the
 *  command with a usage error on garbage like "--assoc abc". */
std::optional<std::uint64_t>
parseU64(const Args &args, const std::string &key,
         std::uint64_t fallback)
{
    if (!args.has(key))
        return fallback;
    const std::string &text = args.get(key, "");
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE ||
        text[0] == '-') {
        std::cerr << "rcache-sim: option '" << key
                  << "' wants a non-negative integer, got '" << text
                  << "'\n";
        return std::nullopt;
    }
    return v;
}

/**
 * Profile lookup with a one-line diagnostic (profileByName is
 * rc_fatal on unknown names, which is too blunt for a CLI). Accepts
 * trace:PATH[:FORMAT] specs alongside the built-in suite names.
 */
std::optional<BenchmarkProfile>
lookupProfile(const std::string &name)
{
    if (isTraceSpec(name)) {
        BenchmarkProfile p;
        std::string err;
        if (!traceProfileFromSpec(name, &p, &err)) {
            std::cerr << "rcache-sim: " << err << '\n';
            return std::nullopt;
        }
        return p;
    }
    const auto names = suiteNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "rcache-sim: unknown app '" << name
                  << "' (see 'rcache-sim list-apps')\n";
        return std::nullopt;
    }
    return profileByName(name);
}

/** Apply --policy to @p cfg with a one-line diagnostic. */
bool
applyPolicy(const Args &args, SystemConfig &cfg)
{
    if (!args.has("--policy"))
        return true;
    const std::string name = args.get("--policy", "");
    if (!isReplacementPolicyName(name)) {
        std::cerr << "rcache-sim: --policy wants "
                  << replacementPolicyList() << ", got '" << name
                  << "'\n";
        return false;
    }
    cfg.policy = name;
    return true;
}

/**
 * Eagerly open every trace-spec component of @p names so unreadable
 * files and malformed leading records surface as one-line CLI
 * diagnostics (exit 2), not a mid-run rc_fatal out of a worker
 * thread. @p names may be app names, '+'-joined mixes, or specs.
 */
bool
preflightTraceSpecs(const std::vector<std::string> &names)
{
    for (const std::string &name : names) {
        for (const std::string &item : splitPlusList(name)) {
            if (!isTraceSpec(item))
                continue;
            TraceSpec spec;
            std::string err;
            if (!parseTraceSpec(item, &spec, &err) ||
                !StreamingTraceWorkload::open(spec, item, &err)) {
                std::cerr << "rcache-sim: " << err << '\n';
                return false;
            }
        }
    }
    return true;
}

/** A scenario's trace-spec surface: apps plus any 'mix' axis. */
bool
preflightScenarioTraces(const ScenarioSpec &spec)
{
    std::vector<std::string> names = spec.apps;
    for (const Axis &ax : spec.axes)
        if (ax.name == "mix")
            names.insert(names.end(), ax.values.begin(),
                         ax.values.end());
    return preflightTraceSpecs(names);
}

/**
 * Resolve --engine (and the deprecated --sample* trio, accepted and
 * mapped with a warning) into an EngineSpec. The two surfaces
 * conflict: --engine is the one source of truth when present.
 * @p legacy_used is set when the deprecated trio supplied the spec;
 * the caller emits the deprecation warning once the whole command
 * validates (rejections must stay one-line diagnostics).
 */
std::optional<EngineSpec>
parseEngine(const Args &args, bool *legacy_used = nullptr)
{
    const bool legacy = args.has("--sample") ||
                        args.has("--sample-detail") ||
                        args.has("--sample-warmup");
    if (args.has("--engine")) {
        if (legacy) {
            std::cerr << "rcache-sim: --sample/--sample-detail/"
                         "--sample-warmup conflict with --engine "
                         "(fold them into --engine "
                         "sampled:interval=N,...)\n";
            return std::nullopt;
        }
        std::string err;
        auto spec = parseEngineArg(args.get("--engine", ""), &err);
        if (!spec) {
            std::cerr << "rcache-sim: --engine: " << err << '\n';
            return std::nullopt;
        }
        return spec;
    }
    if (!args.has("--sample")) {
        if (legacy) {
            std::cerr << "rcache-sim: --sample-detail/--sample-warmup "
                         "need --sample N\n";
            return std::nullopt;
        }
        return EngineSpec{};
    }
    const auto interval = parseU64(args, "--sample", 0);
    if (!interval)
        return std::nullopt;
    if (*interval == 0) {
        std::cerr << "rcache-sim: --sample wants a period > 0\n";
        return std::nullopt;
    }
    const auto detail =
        parseU64(args, "--sample-detail",
                 SamplingConfig::defaultDetail(*interval));
    const auto warmup =
        parseU64(args, "--sample-warmup",
                 SamplingConfig::defaultWarmup(*interval));
    if (!detail || !warmup)
        return std::nullopt;
    if (const char *err = SamplingConfig::shapeError(
            *interval, *detail, *warmup)) {
        std::cerr << "rcache-sim: " << err << "\n";
        return std::nullopt;
    }
    if (legacy_used)
        *legacy_used = true;
    return EngineSpec::makeSampled(*interval, *detail, *warmup);
}

/** The deferred deprecation warning for the --sample* trio. */
void
warnLegacySampleFlags()
{
    RC_LOG(warn, "--sample/--sample-detail/--sample-warmup are "
                 "deprecated; use --engine "
                 "sampled:interval=N[,detail=N,warmup=N]");
}

std::optional<Organization>
parseOrg(const std::string &name)
{
    auto org = parseOrganizationToken(name);
    if (!org)
        std::cerr << "rcache-sim: unknown organization '" << name
                  << "' (want none|ways|sets|hybrid)\n";
    return org;
}

std::optional<Strategy>
parseStrategy(const std::string &name)
{
    auto s = parseStrategyToken(name);
    if (!s)
        std::cerr << "rcache-sim: unknown strategy '" << name
                  << "' (want none|static|dynamic)\n";
    return s;
}

/** Instructions per run; 0 is rejected (a 0-instruction result is
 *  the runner's "job never ran" marker and meaningless anyway). */
std::optional<std::uint64_t>
parseInsts(const Args &args)
{
    const auto insts = parseU64(args, "--insts", 400000);
    if (!insts)
        return std::nullopt;
    if (*insts == 0) {
        std::cerr << "rcache-sim: --insts must be > 0\n";
        return std::nullopt;
    }
    return insts;
}

std::optional<SystemConfig>
baseConfig(const Args &args)
{
    SystemConfig cfg = SystemConfig::base();
    if (args.has("--assoc")) {
        const auto assoc = parseU64(args, "--assoc", cfg.dl1.assoc);
        if (!assoc)
            return std::nullopt;
        if (*assoc == 0 || *assoc > 64) {
            std::cerr << "rcache-sim: --assoc wants 1..64\n";
            return std::nullopt;
        }
        cfg.il1.assoc = static_cast<unsigned>(*assoc);
        cfg.dl1.assoc = static_cast<unsigned>(*assoc);
    }
    return cfg;
}

/**
 * Apply --cores/--quantum to @p cfg. @p default_cores lets --mix
 * default the core count to the mix size.
 */
bool
applyCores(const Args &args, SystemConfig &cfg,
           std::uint64_t default_cores)
{
    const auto cores = parseU64(args, "--cores", default_cores);
    const auto quantum =
        parseU64(args, "--quantum", cfg.quantumInsts);
    if (!cores || !quantum)
        return false;
    if (*cores == 0 || *cores > 64) {
        std::cerr << "rcache-sim: --cores wants 1..64\n";
        return false;
    }
    if (*quantum == 0) {
        std::cerr << "rcache-sim: --quantum must be > 0\n";
        return false;
    }
    cfg.cores = static_cast<unsigned>(*cores);
    cfg.quantumInsts = *quantum;
    return true;
}

/** Resolve --mix into its component profiles. */
std::optional<std::vector<BenchmarkProfile>>
parseMix(const Args &args)
{
    std::string err;
    auto mix = mixByName(args.get("--mix", ""), &err);
    if (!mix)
        std::cerr << "rcache-sim: " << err << '\n';
    return mix;
}

/**
 * Reject an explicit --quantum that cannot take effect: the quantum
 * only governs the multi-core full-detail interleave (sampled runs
 * interleave whole sampling periods; a single core has no
 * interleave). Mirrors the scenario layer's dead-quantum-axis check.
 */
bool
checkQuantumEffective(const Args &args, const SystemConfig &cfg,
                      const EngineSpec &engine)
{
    if (!args.has("--quantum"))
        return true;
    if (cfg.cores <= 1) {
        std::cerr << "rcache-sim: --quantum needs --cores > 1 (a "
                     "single core has no interleave)\n";
        return false;
    }
    if (engine.sampled()) {
        std::cerr << "rcache-sim: --quantum has no effect under a "
                     "sampled engine (cores interleave whole "
                     "sampling periods)\n";
        return false;
    }
    return true;
}

/**
 * Reject engine/design-point combinations the analytic engine cannot
 * price, with CLI-grade messages (the lower layers would rc_fatal).
 */
bool
checkAnalyticCompatible(const EngineSpec &engine,
                        const SystemConfig &cfg,
                        const ResizeSetup &il1, const ResizeSetup &dl1)
{
    if (!engine.analytic())
        return true;
    if (cfg.cores > 1) {
        std::cerr << "rcache-sim: --engine analytic supports a "
                     "single core only (see the README's Engines "
                     "section)\n";
        return false;
    }
    if (il1.strategy == Strategy::Dynamic ||
        dl1.strategy == Strategy::Dynamic) {
        std::cerr << "rcache-sim: --engine analytic prices static "
                     "geometries only; dynamic strategies need the "
                     "full or sampled engine\n";
        return false;
    }
    if (cfg.policy != "lru") {
        std::cerr << "rcache-sim: --engine analytic models true-LRU "
                     "caches only; --policy " << cfg.policy
                  << " needs the full or sampled engine\n";
        return false;
    }
    return true;
}

// --------------------------------------------------------------- sweep

/**
 * Build the ScenarioSpec the legacy grid flags describe: --orgs and
 * --strategies become axes (in that nesting order, preserving the
 * historical row order), everything else fixes the base point.
 */
std::optional<ScenarioSpec>
scenarioFromFlags(const Args &args, bool *legacy_used)
{
    ScenarioSpec spec;
    spec.name = "cli";

    if (args.has("--apps") && args.has("--mix")) {
        std::cerr << "rcache-sim: --mix conflicts with --apps (a mix "
                     "IS the app list; sweep several mixes with "
                     "--apps gcc+mcf,... plus --cores)\n";
        return std::nullopt;
    }
    if (args.has("--apps")) {
        for (const auto &name : splitList(args.get("--apps", ""))) {
            std::string err;
            if (!mixByName(name, &err)) {
                std::cerr << "rcache-sim: " << err << '\n';
                return std::nullopt;
            }
            spec.apps.push_back(name);
        }
        if (spec.apps.empty()) {
            std::cerr << "rcache-sim: --apps wants at least one "
                         "profile name\n";
            return std::nullopt;
        }
    }
    if (args.has("--mix")) {
        const auto mix = parseMix(args);
        if (!mix)
            return std::nullopt;
        spec.apps.push_back(args.get("--mix", ""));
    }

    Axis org_axis{"org", {}};
    for (const auto &name :
         splitList(args.get("--orgs", "ways,sets"))) {
        auto org = parseOrg(name);
        if (!org)
            return std::nullopt;
        if (*org == Organization::None) {
            std::cerr << "rcache-sim: sweep --orgs wants "
                         "ways|sets|hybrid\n";
            return std::nullopt;
        }
        org_axis.values.push_back(name);
    }
    if (org_axis.values.empty()) {
        std::cerr << "rcache-sim: --orgs wants at least one of "
                     "ways|sets|hybrid\n";
        return std::nullopt;
    }

    Axis strat_axis{"strategy", {}};
    for (const auto &name :
         splitList(args.get("--strategies", "static"))) {
        auto s = parseStrategy(name);
        if (!s)
            return std::nullopt;
        if (*s == Strategy::None) {
            std::cerr << "rcache-sim: sweep --strategies wants "
                         "static|dynamic\n";
            return std::nullopt;
        }
        strat_axis.values.push_back(name);
    }
    if (strat_axis.values.empty()) {
        std::cerr << "rcache-sim: --strategies wants at least one of "
                     "static|dynamic\n";
        return std::nullopt;
    }
    spec.axes = {std::move(org_axis), std::move(strat_axis)};

    const std::string side_name = args.get("--side", "dcache");
    auto side = parseSweepSideToken(side_name);
    if (!side) {
        std::cerr << "rcache-sim: --side wants icache|dcache|both\n";
        return std::nullopt;
    }
    spec.search.side = *side;

    const auto insts = parseInsts(args);
    auto cfg = baseConfig(args);
    const auto engine = parseEngine(args, legacy_used);
    if (!insts || !cfg || !engine)
        return std::nullopt;
    // --mix alone defaults the core count to the mix size, so
    // `sweep --mix gcc+m88ksim` is a 2-core sweep out of the box.
    const std::uint64_t default_cores =
        args.has("--mix")
            ? splitPlusList(args.get("--mix", "")).size()
            : 1;
    if (!applyCores(args, *cfg, default_cores))
        return std::nullopt;
    if (!applyPolicy(args, *cfg))
        return std::nullopt;
    if (!checkQuantumEffective(args, *cfg, *engine))
        return std::nullopt;
    spec.insts = *insts;
    spec.system = *cfg;
    spec.engine = *engine;
    return spec;
}

/** Arm --failpoint's spec; prints the one-line diagnostic itself. */
bool
armCliFailpoints(const Args &args)
{
    if (!args.has("--failpoint"))
        return true;
    std::string err;
    if (!fault::armFailpoints(args.get("--failpoint", ""), &err)) {
        std::cerr << "rcache-sim: --failpoint: " << err << '\n';
        return false;
    }
    return true;
}

/** Whether any sweep grid flag (the --scenario alternatives) is
 *  present. */
bool
hasGridFlags(const Args &args)
{
    for (const char *key :
         {"--apps", "--orgs", "--strategies", "--side", "--insts",
          "--assoc", "--cores", "--mix", "--quantum", "--policy",
          "--engine", "--sample", "--sample-detail",
          "--sample-warmup"})
        if (args.has(key))
            return true;
    return false;
}

/** sweep --claim: one cooperative worker over a manifest dir. */
int
cmdSweepClaim(const Args &args)
{
    // Claim workers publish per-unit CSVs inside the manifest
    // directory; the single-file output/resume/telemetry options
    // belong to plain sweeps.
    for (const char *conflict :
         {"--shard", "--resume", "--out", "--format", "--timeline",
          "--events", "--trace-events", "--timeline-interval"}) {
        if (args.has(conflict)) {
            std::cerr << "rcache-sim: " << conflict
                      << " conflicts with --claim (units are "
                         "committed into the manifest directory; "
                         "use 'rcache-sim merge')\n";
            return 2;
        }
    }
    std::optional<ScenarioSpec> spec;
    bool legacy_sample = false;
    if (args.has("--scenario")) {
        if (hasGridFlags(args)) {
            std::cerr << "rcache-sim: grid flags conflict with "
                         "--scenario (the scenario file defines "
                         "the sweep)\n";
            return 2;
        }
        std::string err;
        spec = ScenarioSpec::parseFile(args.get("--scenario", ""),
                                       &err);
        if (!spec) {
            std::cerr << "rcache-sim: " << err << '\n';
            return 2;
        }
    } else if (hasGridFlags(args)) {
        spec = scenarioFromFlags(args, &legacy_sample);
        if (!spec)
            return 2;
    } // else: join whatever scenario the manifest holds
    if (spec && !preflightScenarioTraces(*spec))
        return 2;

    const auto jobs = parseU64(args, "--jobs", 1);
    const auto shards = parseU64(args, "--shards", 0);
    const auto lease = parseU64(args, "--lease-timeout", 300);
    if (!jobs || !shards || !lease)
        return 2;
    ClaimSweepOptions opt;
    opt.dir = args.get("--claim", "");
    opt.shards = static_cast<unsigned>(*shards);
    opt.leaseTimeoutSecs = static_cast<unsigned>(*lease);
    opt.jobs = static_cast<unsigned>(*jobs);
    opt.progress = args.flags.count("--progress") != 0;
    if (legacy_sample)
        warnLegacySampleFlags();
    return runClaimSweep(spec, opt);
}

int
cmdSweep(const Args &args)
{
    if (!armCliFailpoints(args))
        return 2;
    installInterruptHandlers();
    if (args.has("--claim"))
        return cmdSweepClaim(args);
    for (const char *needs_claim : {"--shards", "--lease-timeout"}) {
        if (args.has(needs_claim)) {
            std::cerr << "rcache-sim: " << needs_claim
                      << " needs --claim DIR\n";
            return 2;
        }
    }

    // ---- resolve the scenario: a file, or the grid flags
    std::optional<ScenarioSpec> spec;
    bool legacy_sample = false;
    if (args.has("--scenario")) {
        // The scenario file owns the grid; mixing it with grid flags
        // would make two sources of truth.
        for (const char *conflict :
             {"--apps", "--orgs", "--strategies", "--side", "--insts",
              "--assoc", "--cores", "--mix", "--quantum", "--policy",
              "--engine", "--sample", "--sample-detail",
              "--sample-warmup"}) {
            if (args.has(conflict)) {
                std::cerr << "rcache-sim: " << conflict
                          << " conflicts with --scenario (the "
                             "scenario file defines the sweep)\n";
                return 2;
            }
        }
        std::string err;
        spec = ScenarioSpec::parseFile(args.get("--scenario", ""),
                                       &err);
        if (!spec) {
            std::cerr << "rcache-sim: " << err << '\n';
            return 2;
        }
    } else {
        spec = scenarioFromFlags(args, &legacy_sample);
        if (!spec)
            return 2;
    }
    if (!preflightScenarioTraces(*spec))
        return 2;

    const auto jobs_opt = parseU64(args, "--jobs", 1);
    if (!jobs_opt)
        return 2;

    SweepOptions opt;
    opt.jobs = static_cast<unsigned>(*jobs_opt);
    opt.format = args.get("--format", "csv");
    opt.outPath = args.get("--out", "");
    opt.resumePath = args.get("--resume", "");
    opt.progress = args.flags.count("--progress") != 0;

    // Telemetry: the scenario's [telemetry] section seeds the
    // defaults, explicit flags override per invocation. These are
    // pure output options, so they do not conflict with --scenario.
    opt.timelinePath =
        args.get("--timeline", spec->telemetry.timeline);
    opt.eventsPath = args.get("--events", spec->telemetry.events);
    opt.traceEventsPath =
        args.get("--trace-events", spec->telemetry.traceEvents);
    const auto tl_interval = parseU64(args, "--timeline-interval",
                                      spec->telemetry.interval);
    if (!tl_interval)
        return 2;
    if (*tl_interval == 0) {
        std::cerr << "rcache-sim: --timeline-interval must be > 0\n";
        return 2;
    }
    opt.timelineInterval = *tl_interval;
    if (args.has("--shard")) {
        std::string err;
        auto shard = ShardSpec::parse(args.get("--shard", ""), &err);
        if (!shard) {
            std::cerr << "rcache-sim: --" << err << '\n';
            return 2;
        }
        opt.shard = *shard;
    }

    if (legacy_sample)
        warnLegacySampleFlags();
    return runScenarioSweep(*spec, opt);
}

// ---------------------------------------------------------------- tune

int
cmdTune(const Args &args)
{
    if (!armCliFailpoints(args))
        return 2;
    installInterruptHandlers();
    if (!args.has("--scenario")) {
        std::cerr << "rcache-sim: tune needs --scenario FILE (with "
                     "'mode = adaptive' in its [search] section)\n";
        return 2;
    }
    std::string err;
    const auto spec =
        ScenarioSpec::parseFile(args.get("--scenario", ""), &err);
    if (!spec) {
        std::cerr << "rcache-sim: " << err << '\n';
        return 2;
    }
    if (!preflightScenarioTraces(*spec))
        return 2;
    const auto jobs = parseU64(args, "--jobs", 1);
    const auto shards = parseU64(args, "--shards", 0);
    const auto lease = parseU64(args, "--lease-timeout", 300);
    if (!jobs || !shards || !lease)
        return 2;
    if ((args.has("--shards") || args.has("--lease-timeout")) &&
        !args.has("--claim")) {
        std::cerr << "rcache-sim: --shards/--lease-timeout need "
                     "--claim DIR\n";
        return 2;
    }
    TuneOptions opt;
    opt.jobs = static_cast<unsigned>(*jobs);
    opt.logPath = args.get("--log", "");
    opt.outPath = args.get("--out", "");
    opt.resumePath = args.get("--resume", "");
    opt.claimDir = args.get("--claim", "");
    opt.shards = static_cast<unsigned>(*shards);
    opt.leaseTimeoutSecs = static_cast<unsigned>(*lease);
    return runAdaptiveSearch(*spec, opt);
}

// --------------------------------------------------------------- merge

int
mergeHelp()
{
    std::cout
        << "rcache-sim merge — " << commandPurpose("merge")
        << "\n\n"
           "usage: rcache-sim merge [--out FILE] SHARD.csv...\n"
           "       rcache-sim merge [--out FILE] CLAIM_DIR\n"
           "\n"
           "Inputs are shard CSVs of one scenario (any order), or a\n"
           "single --claim manifest directory whose units are all\n"
           "done. The merged report is byte-identical to an\n"
           "unsharded 'rcache-sim sweep' of the same scenario.\n";
    return 0;
}

/** merge takes positional inputs, so it parses itself (like
 *  scenario). */
int
cmdMerge(int argc, char **argv)
{
    std::string out;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help")
            return mergeHelp();
        if (arg == "--out") {
            if (i + 1 >= argc) {
                std::cerr << "rcache-sim: option '--out' needs a "
                             "value\n";
                return 2;
            }
            out = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "rcache-sim: unknown option '" << arg
                      << "' for 'merge' (try 'rcache-sim merge "
                         "--help')\n";
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    return runSweepMerge(inputs, out);
}

// -------------------------------------------------------------- doctor

int
doctorHelp()
{
    std::cout
        << "rcache-sim doctor — " << commandPurpose("doctor")
        << "\n\n"
           "usage: rcache-sim doctor [--lease-timeout N] "
           "[--log FILE] CLAIM_DIR\n"
           "\n"
           "Reports every work unit's state (done / lease live / "
           "stale /\nunclaimed), verifies committed unit CSVs still "
           "parse, and\ninventories crash debris (orphan tmp files, "
           "renamed-aside\nevidence). --log additionally audits a "
           "decision log's\nintegrity. Never mutates anything.\n"
           "\n"
           "exit codes: 0 consistent (possibly unfinished), 2 "
           "inconsistent.\n";
    return 0;
}

/** doctor takes a positional DIR, so it parses itself (like
 *  merge). */
int
cmdDoctor(int argc, char **argv)
{
    DoctorOptions opt;
    std::vector<std::string> dirs;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help")
            return doctorHelp();
        if (arg == "--lease-timeout" || arg == "--log") {
            if (i + 1 >= argc) {
                std::cerr << "rcache-sim: option '" << arg
                          << "' needs a value\n";
                return 2;
            }
            const std::string value = argv[++i];
            if (arg == "--log") {
                opt.logPath = value;
                continue;
            }
            char *end = nullptr;
            errno = 0;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0' || errno == ERANGE ||
                value[0] == '-') {
                std::cerr << "rcache-sim: option '--lease-timeout' "
                             "wants a non-negative integer, got '"
                          << value << "'\n";
                return 2;
            }
            opt.leaseTimeoutSecs = static_cast<unsigned>(v);
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "rcache-sim: unknown option '" << arg
                      << "' for 'doctor' (try 'rcache-sim doctor "
                         "--help')\n";
            return 2;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.size() != 1) {
        std::cerr << "rcache-sim: doctor wants exactly one "
                     "CLAIM_DIR\n";
        return 2;
    }
    return runDoctor(dirs[0], opt, std::cout);
}

// ------------------------------------------------------------ scenario

int
scenarioHelp()
{
    std::cout
        << "rcache-sim scenario — check/print scenario files\n"
           "\n"
           "usage: rcache-sim scenario check FILE...\n"
           "       rcache-sim scenario print FILE\n"
           "\n"
           "check validates each file (parse + axis registry + every\n"
           "design point's geometry) and reports its size; print\n"
           "writes the canonical serialization to stdout.\n";
    return 0;
}

int
cmdScenario(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "rcache-sim: scenario needs a mode: check|print "
                     "(try 'rcache-sim scenario --help')\n";
        return 2;
    }
    const std::string mode = argv[2];
    if (mode == "--help")
        return scenarioHelp();
    if (mode != "check" && mode != "print") {
        std::cerr << "rcache-sim: unknown scenario mode '" << mode
                  << "' (want check|print)\n";
        return 2;
    }

    std::vector<std::string> files;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help")
            return scenarioHelp();
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "rcache-sim: unknown option '" << arg
                      << "' for 'scenario'\n";
            return 2;
        }
        files.push_back(arg);
    }
    if (files.empty()) {
        std::cerr << "rcache-sim: scenario " << mode
                  << " needs at least one FILE\n";
        return 2;
    }
    if (mode == "print" && files.size() != 1) {
        std::cerr << "rcache-sim: scenario print wants exactly one "
                     "FILE\n";
        return 2;
    }

    int code = 0;
    for (const std::string &file : files) {
        std::string err;
        auto spec = ScenarioSpec::parseFile(file, &err);
        std::optional<ParamSpace> space;
        if (spec)
            space = ParamSpace::build(*spec, &err);
        if (!space) {
            std::cerr << "rcache-sim: " << err << '\n';
            code = 2;
            continue;
        }
        if (mode == "print") {
            spec->print(std::cout);
            continue;
        }
        const std::size_t napps = spec->apps.empty()
                                      ? suiteNames().size()
                                      : spec->apps.size();
        std::cout << file << ": ok (" << spec->name << ": "
                  << space->numPoints() << " point(s) x " << napps
                  << " app(s) = " << space->numPoints() * napps
                  << " cell(s))\n";
    }
    return code;
}

// ---------------------------------------------------------- run/replay

/** Build one cache's ResizeSetup from --<prefix>-* options. */
std::optional<ResizeSetup>
parseSetup(const Args &args, const std::string &prefix)
{
    ResizeSetup setup;
    auto strat =
        parseStrategy(args.get("--" + prefix + "-strategy", "none"));
    if (!strat)
        return std::nullopt;
    setup.strategy = *strat;
    const auto level = parseU64(args, "--" + prefix + "-level", 0);
    const auto interval =
        parseU64(args, "--" + prefix + "-interval",
                 Experiment::dynIntervalAccesses);
    if (!level || !interval)
        return std::nullopt;
    if (*interval == 0) {
        std::cerr << "rcache-sim: --" << prefix
                  << "-interval must be > 0\n";
        return std::nullopt;
    }
    const auto miss_bound =
        parseU64(args, "--" + prefix + "-miss-bound",
                 *interval / 100);
    const auto size_bound =
        parseU64(args, "--" + prefix + "-size-bound", 0);
    if (!miss_bound || !size_bound)
        return std::nullopt;
    setup.staticLevel = static_cast<unsigned>(*level);
    setup.dyn.intervalAccesses = *interval;
    setup.dyn.missBound = *miss_bound;
    setup.dyn.sizeBoundBytes = *size_bound;
    return setup;
}

/** Resolve the two org selections for run/replay. */
bool
applyOrgs(const Args &args, SystemConfig &cfg,
          const ResizeSetup &il1, const ResizeSetup &dl1)
{
    auto il1_org = parseOrg(args.get("--il1-org", "none"));
    auto dl1_org = parseOrg(args.get("--dl1-org", "none"));
    if (!il1_org || !dl1_org)
        return false;
    cfg.il1Org = *il1_org;
    cfg.dl1Org = *dl1_org;
    if (il1.strategy != Strategy::None &&
        cfg.il1Org == Organization::None) {
        std::cerr << "rcache-sim: --il1-strategy needs --il1-org\n";
        return false;
    }
    if (dl1.strategy != Strategy::None &&
        cfg.dl1Org == Organization::None) {
        std::cerr << "rcache-sim: --dl1-strategy needs --dl1-org\n";
        return false;
    }
    return true;
}

int
cmdRun(const Args &args)
{
    if (!armCliFailpoints(args))
        return 2;
    if (!args.has("--app") && !args.has("--mix")) {
        std::cerr << "rcache-sim: run needs --app NAME (see "
                     "list-apps) or --mix A+B\n";
        return 2;
    }
    if (args.has("--app") && args.has("--mix")) {
        std::cerr << "rcache-sim: --mix conflicts with --app (the "
                     "mix names the workloads)\n";
        return 2;
    }

    std::vector<BenchmarkProfile> mix;
    if (args.has("--mix")) {
        const auto m = parseMix(args);
        if (!m)
            return 2;
        mix = *m;
    } else {
        const auto profile = lookupProfile(args.get("--app", ""));
        if (!profile)
            return 2;
        mix = {*profile};
    }
    std::vector<std::string> trace_specs;
    for (const BenchmarkProfile &p : mix)
        if (!p.traceSpec.empty())
            trace_specs.push_back(p.traceSpec);
    if (!preflightTraceSpecs(trace_specs))
        return 2;

    const auto il1 = parseSetup(args, "il1");
    const auto dl1 = parseSetup(args, "dl1");
    auto cfg = baseConfig(args);
    const auto insts = parseInsts(args);
    bool legacy_sample = false;
    const auto engine = parseEngine(args, &legacy_sample);
    if (!il1 || !dl1 || !cfg || !insts || !engine)
        return 2;
    if (!applyCores(args, *cfg, mix.size()))
        return 2;
    if (!applyPolicy(args, *cfg))
        return 2;
    if (!applyOrgs(args, *cfg, *il1, *dl1))
        return 2;
    // Cycling fills extra cores, but a missing core would silently
    // drop programs from the simulation.
    if (mix.size() > cfg->cores) {
        std::cerr << "rcache-sim: --mix runs " << mix.size()
                  << " programs but --cores is " << cfg->cores
                  << "; need --cores >= " << mix.size() << '\n';
        return 2;
    }
    if (!checkQuantumEffective(args, *cfg, *engine))
        return 2;
    if (!checkAnalyticCompatible(*engine, *cfg, *il1, *dl1))
        return 2;
    if (legacy_sample)
        warnLegacySampleFlags();

    // ---- telemetry requests (all off unless asked for)
    const std::string timeline_path = args.get("--timeline", "");
    const std::string events_path = args.get("--events", "");
    const std::string trace_path = args.get("--trace-events", "");
    const auto tl_interval =
        parseU64(args, "--timeline-interval", 10000);
    if (!tl_interval)
        return 2;
    if (*tl_interval == 0) {
        std::cerr << "rcache-sim: --timeline-interval must be > 0\n";
        return 2;
    }
    RunTelemetry telem;
    telem.timelineInterval =
        timeline_path.empty() ? 0 : *tl_interval;
    telem.resizeEvents = !events_path.empty();
    RunTelemetry *telem_ptr = telem.enabled() ? &telem : nullptr;
    std::optional<TraceEventRecorder> trace;
    if (!trace_path.empty())
        trace.emplace();

    const std::string label = args.has("--mix")
                                  ? args.get("--mix", "") + "/point"
                                  : mix.front().name + "/point";
    const auto span_begin =
        trace ? trace->now() : TraceEventRecorder::Clock::time_point{};

    if (cfg->cores > 1) {
        MultiCoreSystem sys(*cfg);
        const MultiCoreResult res =
            sys.run(mix, *insts, *il1, *dl1, *engine, telem_ptr);
        if (trace)
            trace->completeSpan(label, span_begin, trace->now(),
                                {{"label", label}});
        writeMultiCoreReport(std::cout, res);
    } else {
        RunJob job;
        job.label = label;
        job.profile = mix.front();
        job.cfg = *cfg;
        job.insts = *insts;
        job.il1 = *il1;
        job.dl1 = *dl1;
        job.engine = *engine;
        job.telemetry = telem_ptr;
        const RunResult res = executeRunJob(job);
        if (trace)
            trace->completeSpan(label, span_begin, trace->now(),
                                {{"label", label}});
        writeRunReport(std::cout, res);
    }

    // ---- telemetry sidecars
    const auto openOut = [](const std::string &path,
                            std::ofstream &os) {
        os.open(path, std::ios::binary | std::ios::trunc);
        if (!os)
            std::cerr << "rcache-sim: cannot write '" << path
                      << "'\n";
        return static_cast<bool>(os);
    };
    if (!timeline_path.empty()) {
        std::ofstream os;
        if (!openOut(timeline_path, os))
            return 2;
        const bool csv =
            timeline_path.size() >= 4 &&
            timeline_path.compare(timeline_path.size() - 4, 4,
                                  ".csv") == 0;
        std::ostringstream rec;
        if (csv) {
            writeTimelineCsvHeader(rec, false);
            writeTimelineCsv(rec, telem.timeline);
        } else {
            writeTimelineJsonl(rec, telem.timeline);
        }
        checkedAppend(os, rec.str(), timeline_path,
                      "telemetry.timeline.append");
    }
    if (!events_path.empty()) {
        std::ofstream os;
        if (!openOut(events_path, os))
            return 2;
        std::ostringstream rec;
        writeResizeEventsJsonl(rec, telem.events.events());
        checkedAppend(os, rec.str(), events_path,
                      "telemetry.events.append");
    }
    if (trace) {
        std::ofstream os;
        if (!openOut(trace_path, os))
            return 2;
        std::ostringstream rec;
        trace->write(rec);
        checkedAppend(os, rec.str(), trace_path,
                      "telemetry.trace.write");
    }
    return 0;
}

int
cmdReplay(const Args &args)
{
    if (!args.has("--trace")) {
        std::cerr << "rcache-sim: replay needs --trace FILE\n";
        return 2;
    }
    const std::string path = args.get("--trace", "");
    std::ifstream in(path);
    if (!in) {
        std::cerr << "rcache-sim: cannot open trace '" << path
                  << "'\n";
        return 2;
    }
    std::vector<MicroInst> insts;
    std::string trace_err;
    if (!readTraceStrict(in, path, insts, &trace_err)) {
        std::cerr << "rcache-sim: " << trace_err << '\n';
        return 2;
    }
    if (insts.empty()) {
        std::cerr << "rcache-sim: trace '" << path
                  << "' holds no instructions\n";
        return 2;
    }
    const std::uint64_t trace_len = insts.size();
    TraceWorkload wl(std::move(insts), args.get("--name", "trace"));

    const auto il1 = parseSetup(args, "il1");
    const auto dl1 = parseSetup(args, "dl1");
    auto cfg = baseConfig(args);
    // Default: one pass over the recorded stream.
    const auto num_insts = parseU64(args, "--insts", trace_len);
    if (!il1 || !dl1 || !cfg || !num_insts)
        return 2;
    if (*num_insts == 0) {
        std::cerr << "rcache-sim: --insts must be > 0\n";
        return 2;
    }
    if (!applyOrgs(args, *cfg, *il1, *dl1))
        return 2;
    if (!applyPolicy(args, *cfg))
        return 2;

    System sys(*cfg);
    writeRunReport(std::cout, sys.run(wl, *num_insts, *il1, *dl1));
    return 0;
}

int
cmdRecord(const Args &args)
{
    if (!args.has("--app") || !args.has("--out")) {
        std::cerr
            << "rcache-sim: record needs --app NAME and --out FILE\n";
        return 2;
    }
    const auto profile = lookupProfile(args.get("--app", ""));
    const auto count = parseInsts(args);
    if (!profile || !count)
        return 2;
    if (!profile->traceSpec.empty() &&
        !preflightTraceSpecs({profile->traceSpec}))
        return 2;
    const std::string path = args.get("--out", "");
    std::ofstream out(path);
    if (!out) {
        std::cerr << "rcache-sim: cannot write '" << path << "'\n";
        return 2;
    }
    const std::unique_ptr<Workload> wl = makeWorkload(*profile);
    writeTrace(out, *wl, *count);
    checkedFlush(out, path);
    std::cerr << "recorded " << *count << " instructions of "
              << wl->name() << " to " << path << '\n';
    return 0;
}

// ------------------------------------------------------------- convert

int
cmdConvert(const Args &args)
{
    if (!args.has("--in")) {
        std::cerr << "rcache-sim: convert needs --in "
                     "PATH|trace:PATH[:FORMAT]\n";
        return 2;
    }
    std::string in = args.get("--in", "");
    if (!isTraceSpec(in))
        in = "trace:" + in;
    TraceSpec spec;
    std::string err;
    if (!parseTraceSpec(in, &spec, &err)) {
        std::cerr << "rcache-sim: " << err << '\n';
        return 2;
    }
    const auto limit = parseU64(args, "--limit", 0);
    if (!limit)
        return 2;

    const std::string out_path = args.get("--out", "");
    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path, std::ios::binary | std::ios::trunc);
        if (!file) {
            std::cerr << "rcache-sim: cannot write '" << out_path
                      << "'\n";
            return 2;
        }
    }
    std::ostream &os = out_path.empty() ? std::cout : file;
    if (!convertTraceToNative(spec, os, *limit, &err)) {
        std::cerr << "rcache-sim: " << err << '\n';
        return 2;
    }
    if (!out_path.empty()) {
        checkedFlush(file, out_path);
        std::cerr << "converted " << spec.path << " ("
                  << traceFormatName(spec.format) << ") to "
                  << out_path << '\n';
    }
    return 0;
}

// --------------------------------------------------------------- bench

int
cmdBench(const Args &args)
{
    if (args.flags.count("--list")) {
        for (const auto &spec : rcache::bench::perfBenches())
            std::cout << spec.name << ": " << spec.description
                      << '\n';
        return 0;
    }

    rcache::bench::BenchOptions opts;
    if (args.flags.count("--quick")) {
        opts.items = 300000;
        opts.repetitions = 2;
    }
    const auto items = parseU64(args, "--insts", opts.items);
    const auto reps = parseU64(args, "--reps", opts.repetitions);
    if (!items || !reps)
        return 2;
    if (*items == 0 || *reps == 0) {
        std::cerr << "rcache-sim: bench --insts/--reps must be > 0\n";
        return 2;
    }
    opts.items = *items;
    opts.repetitions = static_cast<unsigned>(*reps);
    opts.filter = args.get("--filter", "");
    opts.outDir = args.get("--out-dir", ".");
    return rcache::bench::runPerfBenches(opts);
}

// ------------------------------------------------------------- inspect

int
cmdInspect(const Args &args)
{
    if (!args.has("--timeline") && !args.has("--events")) {
        std::cerr << "rcache-sim: inspect needs --timeline FILE "
                     "and/or --events FILE\n";
        return 2;
    }
    const auto window = parseU64(args, "--window", 3);
    if (!window)
        return 2;
    if (*window == 0) {
        std::cerr << "rcache-sim: --window must be > 0\n";
        return 2;
    }

    // Missing and empty inputs get the standard one-line
    // "<path>:<line>:" diagnostic (an empty telemetry file always
    // means a wiring mistake — a run that wrote nothing — and a
    // silent empty summary would hide it).
    const auto openArtifact =
        [](const std::string &path,
           std::ifstream &in) {
            in.open(path, std::ios::binary);
            if (!in) {
                std::cerr << "rcache-sim: " << path
                          << ":1: cannot open\n";
                return false;
            }
            if (in.peek() == std::char_traits<char>::eof()) {
                std::cerr << "rcache-sim: " << path
                          << ":1: empty file\n";
                return false;
            }
            return true;
        };
    try {
        if (args.has("--timeline")) {
            const std::string path = args.get("--timeline", "");
            std::ifstream in;
            if (!openArtifact(path, in))
                return 2;
            printTimelineSummary(std::cout, summarizeTimeline(in));
        }
        if (args.has("--events")) {
            const std::string path = args.get("--events", "");
            std::ifstream in;
            if (!openArtifact(path, in))
                return 2;
            if (args.has("--timeline"))
                std::cout << '\n';
            printEventsSummary(std::cout,
                               summarizeEvents(in, *window));
        }
    } catch (const std::exception &e) {
        std::cerr << "rcache-sim: " << e.what() << '\n';
        return 2;
    }
    return 0;
}

int
cmdListApps()
{
    for (const auto &name : suiteNames())
        std::cout << name << '\n';
    std::cout << "\nAny app slot (run --app, sweep --apps, mixes) "
                 "also accepts trace:PATH[:FORMAT]\nto stream an "
                 "on-disk trace: formats native|rocksdb|lcs, '.gz' "
                 "for gzip\n(inferred from the extension when "
                 "FORMAT is omitted).\n";
    return 0;
}

int
cmdListFailpoints()
{
    std::size_t width = 0;
    for (const auto &site : fault::knownFailpoints())
        width = std::max(width, std::string(site.name).size());
    for (const auto &site : fault::knownFailpoints()) {
        std::cout << site.name;
        for (std::size_t pad = std::string(site.name).size();
             pad < width + 2; ++pad)
            std::cout << ' ';
        std::cout << site.description << '\n';
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help" || cmd == "-h")
        return usage(std::cout, 0);

    // The RC_FAILPOINT environment variable arms fault injection for
    // any subcommand (the CLI --failpoint option only exists on the
    // long-running drivers); a bad spec is a usage error.
    std::string fp_err;
    if (!fault::armFailpointsFromEnv(&fp_err)) {
        std::cerr << "rcache-sim: RC_FAILPOINT: " << fp_err << '\n';
        return 2;
    }

    const bool known_cmd =
        cmd == "sweep" || cmd == "tune" || cmd == "merge" ||
        cmd == "run" || cmd == "replay" || cmd == "record" ||
        cmd == "convert" || cmd == "bench" || cmd == "scenario" ||
        cmd == "inspect" || cmd == "doctor" || cmd == "list-apps" ||
        cmd == "list-failpoints";
    if (!known_cmd) {
        std::cerr << "rcache-sim: unknown subcommand '" << cmd
                  << "' (try 'rcache-sim --help')\n";
        return 2;
    }

    // scenario, merge, and doctor take positional arguments; they
    // parse themselves.
    if (cmd == "scenario")
        return cmdScenario(argc, argv);
    if (cmd == "merge")
        return cmdMerge(argc, argv);
    if (cmd == "doctor")
        return cmdDoctor(argc, argv);
    if (cmd == "list-failpoints")
        return cmdListFailpoints();

    auto args = parseArgs(argc, argv, 2, cmd);
    if (!args)
        return 2;
    if (args->flags.count("--help"))
        return commandHelp(cmd);

    if (cmd == "sweep")
        return cmdSweep(*args);
    if (cmd == "tune")
        return cmdTune(*args);
    if (cmd == "run")
        return cmdRun(*args);
    if (cmd == "replay")
        return cmdReplay(*args);
    if (cmd == "record")
        return cmdRecord(*args);
    if (cmd == "convert")
        return cmdConvert(*args);
    if (cmd == "bench")
        return cmdBench(*args);
    if (cmd == "inspect")
        return cmdInspect(*args);
    return cmdListApps();
}
