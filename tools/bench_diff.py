#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json perf records.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--fail-below PCT]

Each directory holds the machine-readable records written by
`rcache-sim bench` (one BENCH_<name>.json per benchmark spec). The
report lists, per spec, the baseline and current throughput and the
relative delta, then a `geomean` summary row: the geometric mean of
the per-spec throughput ratios over the specs present on both sides
(the one number to watch — it is immune to one spec's scale dwarfing
the rest). Specs present on only one side are reported as
added/missing and do not enter the geomean. Throughput is
higher-is-better everywhere.

Exit status: 0 on success, 1 when --fail-below PCT is given and any
common spec (or the geomean) regressed by more than PCT percent, 2 on
usage/IO errors, 3 when a spec's unit differs between the two sides
(a unit mismatch means the ratio is meaningless, so it gets its own
code: CI can tell "got slower" from "not comparable"). Without
--fail-below the script is report-only (CI uses it that way: machine
noise makes a hard gate on shared runners too flaky to be the
default).
"""

import argparse
import json
import math
import sys
from pathlib import Path

EXIT_UNIT_MISMATCH = 3


def load_records(dirpath):
    records = {}
    for path in sorted(Path(dirpath).glob("BENCH_*.json")):
        try:
            with open(path) as f:
                rec = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            raise SystemExit(f"bench_diff: {path}: {e}")
        for field in ("name", "throughput", "unit"):
            if field not in rec:
                raise SystemExit(
                    f"bench_diff: {path}: missing field '{field}'")
        records[rec["name"]] = rec
    if not records:
        raise SystemExit(
            f"bench_diff: no BENCH_*.json records in {dirpath}")
    return records


def main():
    ap = argparse.ArgumentParser(
        description="compare BENCH_*.json perf records")
    ap.add_argument("baseline", help="directory of baseline records")
    ap.add_argument("current", help="directory of current records")
    ap.add_argument(
        "--fail-below",
        type=float,
        metavar="PCT",
        help="exit 1 if any spec's throughput regressed by more "
        "than PCT percent (default: report only)",
    )
    args = ap.parse_args()

    base = load_records(args.baseline)
    cur = load_records(args.current)

    names = sorted(set(base) | set(cur))
    width = max(len(n) for n in names + ["geomean"])
    regressions = []
    log_ratios = []

    print(f"{'benchmark':<{width}} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name in names:
        b = base.get(name)
        c = cur.get(name)
        if b is None:
            print(f"{name:<{width}} {'-':>12} "
                  f"{c['throughput']:>12.2f}    added")
            continue
        if c is None:
            print(f"{name:<{width}} {b['throughput']:>12.2f} "
                  f"{'-':>12}  missing")
            continue
        if b["unit"] != c["unit"]:
            print(f"bench_diff: {name}: unit mismatch "
                  f"({b['unit']} vs {c['unit']})", file=sys.stderr)
            return EXIT_UNIT_MISMATCH
        if b["throughput"] <= 0:
            raise SystemExit(
                f"bench_diff: {name}: non-positive baseline "
                f"throughput")
        if c["throughput"] <= 0:
            raise SystemExit(
                f"bench_diff: {name}: non-positive current "
                f"throughput")
        ratio = c["throughput"] / b["throughput"]
        delta = 100.0 * (ratio - 1.0)
        log_ratios.append(math.log(ratio))
        print(f"{name:<{width}} {b['throughput']:>12.2f} "
              f"{c['throughput']:>12.2f} {delta:>+7.2f}%")
        if args.fail_below is not None and -delta > args.fail_below:
            regressions.append((name, delta))

    if log_ratios:
        gm_delta = 100.0 * (
            math.exp(sum(log_ratios) / len(log_ratios)) - 1.0)
        print(f"{'geomean':<{width}} {'-':>12} {'-':>12} "
              f"{gm_delta:>+7.2f}%")
        if (args.fail_below is not None
                and -gm_delta > args.fail_below):
            regressions.append(("geomean", gm_delta))

    if regressions:
        for name, delta in regressions:
            print(f"bench_diff: {name} regressed {delta:+.2f}% "
                  f"(limit -{args.fail_below}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
