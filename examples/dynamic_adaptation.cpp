/**
 * @file
 * Dynamic adaptation trace: run the miss-ratio-based controller on a
 * phased workload and print the selected cache size at every interval
 * boundary as an ASCII strip chart — making the paper's "dynamic
 * resizing reacts to varying working sets" visible.
 *
 * Usage: dynamic_adaptation [profile] [missBound%] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "sim/table.hh"

using namespace rcache;

int
main(int argc, char **argv)
{
    const std::string profile_name = argc > 1 ? argv[1] : "su2cor";
    const double bound_pct =
        argc > 2 ? std::atof(argv[2]) : 2.5;
    const std::uint64_t insts =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1200000;

    BenchmarkProfile profile = profileByName(profile_name);
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = CoreModel::InOrder; // expose the misses
    cfg.dl1Org = Organization::SelectiveSets;

    DynamicParams dyn;
    dyn.intervalAccesses = 8192;
    dyn.missBound = static_cast<std::uint64_t>(
        bound_pct / 100.0 * static_cast<double>(dyn.intervalAccesses));
    dyn.sizeBoundBytes = 16 * 1024;

    std::cout << "dynamic adaptation: " << profile_name
              << " d-cache, in-order core, interval "
              << dyn.intervalAccesses << " accesses, miss-bound "
              << dyn.missBound << ", size-bound "
              << TextTable::bytesKb(static_cast<double>(
                     dyn.sizeBoundBytes))
              << "\n\n";

    SyntheticWorkload wl(profile);
    System sys(cfg);
    RunResult r = sys.run(wl, insts, {},
                          ResizeSetup{Strategy::Dynamic, 0, dyn});

    const auto schedule =
        buildSchedule(Organization::SelectiveSets, cfg.dl1);

    // Strip chart: one row per size level, one column per ~interval.
    const auto &trace = r.dl1LevelTrace;
    const std::size_t width = 72;
    const std::size_t stride = std::max<std::size_t>(
        1, trace.size() / width);
    for (unsigned lvl = 0; lvl < schedule.size(); ++lvl) {
        std::cout << TextTable::bytesKb(static_cast<double>(
                         schedule[lvl].sizeBytes(32)))
                  << "\t|";
        for (std::size_t i = 0; i < trace.size(); i += stride)
            std::cout << (trace[i] == lvl ? '#' : ' ');
        std::cout << "|\n";
    }
    std::cout << "\t time ->  (" << trace.size()
              << " intervals total)\n\n";

    // Compare against the baseline.
    SyntheticWorkload wb(profile);
    System base(SystemConfig::base());
    // Use the same core model for a fair comparison.
    SystemConfig bcfg = cfg;
    bcfg.dl1Org = Organization::None;
    SyntheticWorkload wb2(profile);
    System base2(bcfg);
    RunResult b = base2.run(wb2, insts);

    std::cout << "average enabled d-cache size: "
              << TextTable::bytesKb(r.avgDl1Bytes) << " (of 32K; "
              << TextTable::pct(100 * (1 - r.avgDl1Bytes / 32768.0))
              << " reduction)\n"
              << "resizes: " << r.dl1Resizes
              << ", performance loss: "
              << TextTable::pct(
                     100.0 * (static_cast<double>(r.cycles) /
                                  b.cycles -
                              1.0))
              << ", processor E*D reduction: "
              << TextTable::pct(100.0 * (1 - r.edp() / b.edp()))
              << "\n";
    return 0;
}
