/**
 * @file
 * Quickstart: build the paper's base system (Table 2), run one
 * workload three ways — non-resizable, static selective-sets, dynamic
 * selective-sets — and print the energy-delay comparison.
 *
 * Usage: quickstart [profile-name] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "sim/table.hh"

using namespace rcache;

int
main(int argc, char **argv)
{
    const std::string profile_name = argc > 1 ? argv[1] : "compress";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;

    BenchmarkProfile profile = profileByName(profile_name);

    // The paper's base system: 4-wide OoO, 32K 2-way L1s, 512K L2.
    SystemConfig cfg = SystemConfig::base();
    Experiment exp(cfg, insts);

    std::cout << "rcache quickstart: " << profile_name << ", " << insts
              << " instructions, base system ("
              << coreModelName(cfg.coreModel) << ")\n\n";

    RunResult base = exp.baseline(profile);
    std::cout << "baseline (non-resizable 32K 2-way d-cache):\n"
              << "  cycles " << base.cycles << "  IPC "
              << TextTable::num(base.ipc()) << "  d-miss "
              << TextTable::pct(100 * base.dl1MissRatio) << "\n"
              << base.energy << '\n';

    SearchOutcome st = exp.staticSearch(profile, CacheSide::DCache,
                                        Organization::SelectiveSets);
    SearchOutcome dy = exp.dynamicSearch(profile, CacheSide::DCache,
                                         Organization::SelectiveSets);

    TextTable t({"d-cache setup", "avg size", "miss ratio",
                 "perf loss", "E*D reduction"});
    t.addRow({"non-resizable", TextTable::bytesKb(base.avgDl1Bytes),
              TextTable::pct(100 * base.dl1MissRatio), "-", "-"});
    t.addRow({"static selective-sets",
              TextTable::bytesKb(st.best.avgDl1Bytes),
              TextTable::pct(100 * st.best.dl1MissRatio),
              TextTable::pct(st.perfDegradationPct()),
              TextTable::pct(st.edReductionPct())});
    t.addRow({"dynamic selective-sets",
              TextTable::bytesKb(dy.best.avgDl1Bytes),
              TextTable::pct(100 * dy.best.dl1MissRatio),
              TextTable::pct(dy.perfDegradationPct()),
              TextTable::pct(dy.edReductionPct())});
    t.print(std::cout);

    std::cout << "\nstatic best level: " << st.bestLevel << " ("
              << TextTable::bytesKb(static_cast<double>(
                     st.best.avgDl1Bytes))
              << "), dynamic miss-bound " << dy.bestParams.missBound
              << "/interval\n";
    return 0;
}
