/**
 * @file
 * Resizing explorer: sweep every offered configuration of an
 * organization for one application and print the full
 * size/miss/performance/energy-delay trade-off curve — the raw data
 * behind the paper's static profiling methodology.
 *
 * Usage: resizing_explorer [profile] [org: ways|sets|hybrid]
 *                          [side: d|i] [assoc] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "sim/table.hh"

using namespace rcache;

namespace
{

Organization
parseOrg(const std::string &s)
{
    if (s == "ways")
        return Organization::SelectiveWays;
    if (s == "sets")
        return Organization::SelectiveSets;
    if (s == "hybrid")
        return Organization::Hybrid;
    rc_fatal("unknown organization '" + s +
             "' (expected ways|sets|hybrid)");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string profile_name = argc > 1 ? argv[1] : "compress";
    const Organization org =
        parseOrg(argc > 2 ? argv[2] : "hybrid");
    const bool dcache = (argc > 3 ? std::string(argv[3]) : "d") == "d";
    const unsigned assoc =
        argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 4;
    const std::uint64_t insts =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 800000;

    BenchmarkProfile profile = profileByName(profile_name);
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = assoc;
    cfg.dl1.assoc = assoc;
    if (dcache)
        cfg.dl1Org = org;
    else
        cfg.il1Org = org;

    const CacheGeometry &geom = dcache ? cfg.dl1 : cfg.il1;
    auto schedule = buildSchedule(org, geom);

    std::cout << "resizing explorer: " << profile_name << ", "
              << organizationName(org) << " "
              << (dcache ? "d-cache" : "i-cache") << ", " << assoc
              << "-way 32K, " << insts << " instructions\n\n";

    // Baseline: non-resizable.
    SystemConfig base_cfg = cfg;
    base_cfg.il1Org = Organization::None;
    base_cfg.dl1Org = Organization::None;
    SyntheticWorkload base_wl(profile);
    System base_sys(base_cfg);
    RunResult base = base_sys.run(base_wl, insts);

    TextTable t({"level", "size", "config", "miss ratio", "IPC",
                 "perf loss", "rel energy", "rel E*D"});
    double best_edp = 0;
    unsigned best_level = 0;
    for (unsigned lvl = 0; lvl < schedule.size(); ++lvl) {
        SyntheticWorkload wl(profile);
        System sys(cfg);
        ResizeSetup setup{Strategy::Static, lvl, {}};
        RunResult r = dcache ? sys.run(wl, insts, {}, setup)
                             : sys.run(wl, insts, setup, {});
        const double miss =
            dcache ? r.dl1MissRatio : r.il1MissRatio;
        const double edp_rel = r.edp() / base.edp();
        if (lvl == 0 || r.edp() < best_edp) {
            best_edp = r.edp();
            best_level = lvl;
        }
        t.addRow({std::to_string(lvl),
                  TextTable::bytesKb(static_cast<double>(
                      schedule[lvl].sizeBytes(geom.blockSize))),
                  std::to_string(schedule[lvl].ways) + "-way x " +
                      std::to_string(schedule[lvl].sets) + " sets",
                  TextTable::pct(100 * miss),
                  TextTable::num(r.ipc()),
                  TextTable::pct(100.0 * (static_cast<double>(
                                              r.cycles) /
                                              base.cycles -
                                          1.0)),
                  TextTable::num(r.energy.total() /
                                     base.energy.total(),
                                 3),
                  TextTable::num(edp_rel, 3)});
    }
    t.print(std::cout);

    std::cout << "\nbest energy-delay at level " << best_level
              << " ("
              << TextTable::bytesKb(static_cast<double>(
                     schedule[best_level].sizeBytes(geom.blockSize)))
              << "): " << TextTable::pct(100 * (1 - best_edp /
                                                        base.edp()))
              << " reduction vs non-resizable.\n";
    return 0;
}
