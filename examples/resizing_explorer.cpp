/**
 * @file
 * Resizing explorer: sweep every offered configuration of an
 * organization for one application and print the full
 * size/miss/performance/energy-delay trade-off curve — the raw data
 * behind the paper's static profiling methodology.
 *
 * The level sweep runs through the runner subsystem: the baseline
 * and every level are enumerated as RunJobs and executed as one
 * batch, in parallel when jobs > 1.
 *
 * Usage: resizing_explorer [profile] [org: ways|sets|hybrid]
 *                          [side: d|i] [assoc] [instructions] [jobs]
 */

#include <cstdlib>
#include <iostream>

#include "runner/sweep_runner.hh"
#include "sim/experiment.hh"
#include "sim/table.hh"

using namespace rcache;

namespace
{

Organization
parseOrg(const std::string &s)
{
    if (s == "ways")
        return Organization::SelectiveWays;
    if (s == "sets")
        return Organization::SelectiveSets;
    if (s == "hybrid")
        return Organization::Hybrid;
    rc_fatal("unknown organization '" + s +
             "' (expected ways|sets|hybrid)");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string profile_name = argc > 1 ? argv[1] : "compress";
    const Organization org =
        parseOrg(argc > 2 ? argv[2] : "hybrid");
    const bool dcache = (argc > 3 ? std::string(argv[3]) : "d") == "d";
    const unsigned assoc =
        argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 4;
    const std::uint64_t insts =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 800000;
    const unsigned jobs =
        argc > 6 ? static_cast<unsigned>(std::atoi(argv[6])) : 1;

    BenchmarkProfile profile = profileByName(profile_name);
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = assoc;
    cfg.dl1.assoc = assoc;

    const CacheSide side =
        dcache ? CacheSide::DCache : CacheSide::ICache;
    const CacheGeometry &geom = dcache ? cfg.dl1 : cfg.il1;
    auto schedule = buildSchedule(org, geom);

    std::cout << "resizing explorer: " << profile_name << ", "
              << organizationName(org) << " "
              << (dcache ? "d-cache" : "i-cache") << ", " << assoc
              << "-way 32K, " << insts << " instructions\n\n";

    // One batch: the non-resizable baseline plus every offered
    // level (job index == schedule level).
    Experiment exp(cfg, insts);
    SweepRunner runner(jobs);
    std::vector<RunJob> batch{exp.baselineJob(profile)};
    auto level_jobs = exp.staticSearchJobs(profile, side, org);
    batch.insert(batch.end(), level_jobs.begin(), level_jobs.end());
    const auto results = runner.run(batch);
    const RunResult &base = results[0];

    TextTable t({"level", "size", "config", "miss ratio", "IPC",
                 "perf loss", "rel energy", "rel E*D"});
    double best_edp = 0;
    unsigned best_level = 0;
    for (unsigned lvl = 0; lvl < schedule.size(); ++lvl) {
        const RunResult &r = results[1 + lvl];
        const double miss =
            dcache ? r.dl1MissRatio : r.il1MissRatio;
        const double edp_rel = r.edp() / base.edp();
        if (lvl == 0 || r.edp() < best_edp) {
            best_edp = r.edp();
            best_level = lvl;
        }
        t.addRow({std::to_string(lvl),
                  TextTable::bytesKb(static_cast<double>(
                      schedule[lvl].sizeBytes(geom.blockSize))),
                  std::to_string(schedule[lvl].ways) + "-way x " +
                      std::to_string(schedule[lvl].sets) + " sets",
                  TextTable::pct(100 * miss),
                  TextTable::num(r.ipc()),
                  TextTable::pct(100.0 * (static_cast<double>(
                                              r.cycles) /
                                              base.cycles -
                                          1.0)),
                  TextTable::num(r.energy.total() /
                                     base.energy.total(),
                                 3),
                  TextTable::num(edp_rel, 3)});
    }
    t.print(std::cout);

    std::cout << "\nbest energy-delay at level " << best_level
              << " ("
              << TextTable::bytesKb(static_cast<double>(
                     schedule[best_level].sizeBytes(geom.blockSize)))
              << "): " << TextTable::pct(100 * (1 - best_edp /
                                                        base.edp()))
              << " reduction vs non-resizable.\n";
    return 0;
}
