/**
 * @file
 * Energy breakdown: run every profile on the base system (and
 * optionally the in-order variant) and print the per-structure
 * processor energy breakdown — the numbers behind the paper's
 * Section 4 claim that the L1s dissipate ~18.5% (d) and ~17.5% (i)
 * of total energy.
 *
 * Usage: energy_breakdown [inorder] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "sim/table.hh"

using namespace rcache;

int
main(int argc, char **argv)
{
    const bool inorder =
        argc > 1 && std::string(argv[1]) == "inorder";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;

    SystemConfig cfg = SystemConfig::base();
    if (inorder)
        cfg.coreModel = CoreModel::InOrder;

    std::cout << "energy breakdown, " << coreModelName(cfg.coreModel)
              << " core, " << insts << " instructions per app\n\n";

    TextTable t({"app", "IPC", "i$", "d$", "L2", "mem", "core",
                 "clock"});
    double i = 0, d = 0, l2 = 0, mem = 0, core = 0, clk = 0, ipc = 0;
    auto suite = spec2000Suite();
    for (const auto &p : suite) {
        SyntheticWorkload wl(p);
        System sys(cfg);
        RunResult r = sys.run(wl, insts);
        const double tot = r.energy.total();
        i += r.energy.icache / tot;
        d += r.energy.dcache / tot;
        l2 += r.energy.l2 / tot;
        mem += r.energy.memory / tot;
        core += r.energy.core / tot;
        clk += r.energy.clock / tot;
        ipc += r.ipc();
        t.addRow({p.name, TextTable::num(r.ipc()),
                  TextTable::pct(100 * r.energy.icache / tot),
                  TextTable::pct(100 * r.energy.dcache / tot),
                  TextTable::pct(100 * r.energy.l2 / tot),
                  TextTable::pct(100 * r.energy.memory / tot),
                  TextTable::pct(100 * r.energy.core / tot),
                  TextTable::pct(100 * r.energy.clock / tot)});
    }
    const double n = static_cast<double>(suite.size());
    t.addRow({"AVG", TextTable::num(ipc / n),
              TextTable::pct(100 * i / n), TextTable::pct(100 * d / n),
              TextTable::pct(100 * l2 / n),
              TextTable::pct(100 * mem / n),
              TextTable::pct(100 * core / n),
              TextTable::pct(100 * clk / n)});
    t.print(std::cout);

    std::cout << "\npaper (Section 4): d-cache 18.5%, i-cache 17.5% "
                 "of total processor energy on the base OoO system; "
                 "the in-order processor's i-cache share is ~4% "
                 "higher (21.5%).\n";
    return 0;
}
