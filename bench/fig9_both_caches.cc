/**
 * @file
 * Regenerates Figure 9: resizing the d-cache alone, the i-cache
 * alone, and both together (static selective-sets, base system) —
 * demonstrating the additivity of the two caches' savings.
 *
 * Paper shape to verify: combined reduction ~= sum of individual
 * reductions; overall processor energy-delay saving ~20% on average.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner("Figure 9: resizing both d-cache and i-cache",
                  "Fig 9 (decoupled resizings, static "
                  "selective-sets, base system)");

    const auto apps = bench::suite();
    Experiment exp(SystemConfig::base(), bench::runInsts());

    TextTable t({"app", "d alone E*D", "i alone E*D", "d+i sum",
                 "both E*D", "both size-red", "both perf"});
    double dsum = 0, isum = 0, bsum = 0, szsum = 0;
    for (const auto &p : apps) {
        auto d = exp.staticSearch(p, CacheSide::DCache,
                                  Organization::SelectiveSets);
        auto i = exp.staticSearch(p, CacheSide::ICache,
                                  Organization::SelectiveSets);
        auto both =
            exp.staticSearchBoth(p, Organization::SelectiveSets);
        // Average enabled size of both L1s vs both at full size.
        const double full = both.baseline.avgDl1Bytes +
                            both.baseline.avgIl1Bytes;
        const double got =
            both.best.avgDl1Bytes + both.best.avgIl1Bytes;
        const double size_red = 100.0 * (1.0 - got / full);
        dsum += d.edReductionPct();
        isum += i.edReductionPct();
        bsum += both.edReductionPct();
        szsum += size_red;
        t.addRow({p.name, TextTable::pct(d.edReductionPct()),
                  TextTable::pct(i.edReductionPct()),
                  TextTable::pct(d.edReductionPct() +
                                 i.edReductionPct()),
                  TextTable::pct(both.edReductionPct()),
                  TextTable::pct(size_red),
                  TextTable::pct(both.perfDegradationPct())});
    }
    const double n = static_cast<double>(apps.size());
    t.addRow({"AVG", TextTable::pct(dsum / n),
              TextTable::pct(isum / n),
              TextTable::pct((dsum + isum) / n),
              TextTable::pct(bsum / n), TextTable::pct(szsum / n),
              "-"});
    t.print(std::cout);

    std::cout << "\npaper: combined savings are additive; overall "
                 "average ~20% energy-delay reduction (32K 2-way "
                 "static selective-sets L1s).\n";
    return 0;
}
