/**
 * @file
 * Regenerates Figure 9: resizing the d-cache alone, the i-cache
 * alone, and both together (static selective-sets, base system) —
 * demonstrating the additivity of the two caches' savings.
 *
 * Paper shape to verify: combined reduction ~= sum of individual
 * reductions; overall processor energy-delay saving ~20% on average.
 *
 * The design space lives in scenarios/fig9.scn (the side axis:
 * dcache, icache, both); this bench renders its three coordinates as
 * the paper's per-app additivity table. `rcache-sim sweep --scenario
 * scenarios/fig9.scn` reports the same cells as CSV rows.
 *
 * Runs on the sweep runner in two phases: phase 1 batches every
 * app's baseline plus both sides' level sweeps, phase 2 batches the
 * combined runs at each side's profiled level (which depend on the
 * phase-1 reductions). RCACHE_JOBS>1 overlaps everything within a
 * phase without changing the table.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner("Figure 9: resizing both d-cache and i-cache",
                  "Fig 9 (decoupled resizings, static "
                  "selective-sets, base system)");

    const ScenarioSpec spec = bench::loadScenario("fig9.scn");
    rc_assert(spec.search.strategy == Strategy::Static);
    rc_assert(bench::requireAxis(spec, "side").values ==
              (std::vector<std::string>{"dcache", "icache", "both"}));

    const auto apps = bench::suite(spec);
    const std::uint64_t insts = bench::runInsts(spec);
    Experiment exp(spec.system, insts);
    exp.setEngine(bench::benchEngine());
    SweepRunner runner(bench::benchJobs());
    const auto org = spec.search.org;

    // Phase 1: per app, baseline + d-side sweep + i-side sweep.
    struct Slice
    {
        std::size_t off, count;
    };
    std::vector<RunJob> batch;
    std::vector<std::size_t> base_at(apps.size());
    std::vector<Slice> d_at(apps.size()), i_at(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        base_at[a] = batch.size();
        batch.push_back(exp.baselineJob(apps[a]));
        auto d = exp.staticSearchJobs(apps[a], CacheSide::DCache,
                                      org);
        d_at[a] = {batch.size(), d.size()};
        batch.insert(batch.end(), d.begin(), d.end());
        auto i = exp.staticSearchJobs(apps[a], CacheSide::ICache,
                                      org);
        i_at[a] = {batch.size(), i.size()};
        batch.insert(batch.end(), i.begin(), i.end());
    }
    const auto res = runner.run(batch);

    auto reduce = [&](const Slice &sl, std::size_t a) {
        return Experiment::reduceStatic(
            res[base_at[a]], {res.begin() + sl.off,
                              res.begin() + sl.off + sl.count});
    };

    // Phase 2: both caches together at the profiled levels.
    std::vector<SearchOutcome> douts(apps.size()),
        iouts(apps.size());
    std::vector<RunJob> both_jobs;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        douts[a] = reduce(d_at[a], a);
        iouts[a] = reduce(i_at[a], a);
        both_jobs.push_back(exp.bothStaticJob(
            apps[a], org, iouts[a].bestLevel, douts[a].bestLevel));
    }
    const auto both_res = runner.run(both_jobs);

    TextTable t({"app", "d alone E*D", "i alone E*D", "d+i sum",
                 "both E*D", "both size-red", "both perf"});
    double dsum = 0, isum = 0, bsum = 0, szsum = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        SearchOutcome both;
        both.baseline = res[base_at[a]];
        both.best = both_res[a];
        both.bestLevel = douts[a].bestLevel;
        // Average enabled size of both L1s vs both at full size.
        const double full = both.baseline.avgDl1Bytes +
                            both.baseline.avgIl1Bytes;
        const double got =
            both.best.avgDl1Bytes + both.best.avgIl1Bytes;
        const double size_red = 100.0 * (1.0 - got / full);
        dsum += douts[a].edReductionPct();
        isum += iouts[a].edReductionPct();
        bsum += both.edReductionPct();
        szsum += size_red;
        t.addRow({apps[a].name,
                  TextTable::pct(douts[a].edReductionPct()),
                  TextTable::pct(iouts[a].edReductionPct()),
                  TextTable::pct(douts[a].edReductionPct() +
                                 iouts[a].edReductionPct()),
                  TextTable::pct(both.edReductionPct()),
                  TextTable::pct(size_red),
                  TextTable::pct(both.perfDegradationPct())});
    }
    const double n = static_cast<double>(apps.size());
    t.addRow({"AVG", TextTable::pct(dsum / n),
              TextTable::pct(isum / n),
              TextTable::pct((dsum + isum) / n),
              TextTable::pct(bsum / n), TextTable::pct(szsum / n),
              "-"});
    t.print(std::cout);

    std::cout << "\npaper: combined savings are additive; overall "
                 "average ~20% energy-delay reduction (32K 2-way "
                 "static selective-sets L1s).\n";
    return 0;
}
