/**
 * @file
 * Regenerates Figure 8: static vs dynamic resizing of a 2-way 32K
 * selective-sets i-cache on both processor configurations.
 *
 * Paper shape to verify: i-cache resizing saves more on the in-order
 * processor (larger i-cache energy share); dynamic's advantage grows
 * with out-of-order issue, where i-misses are more exposed.
 */

#include "bench/common.hh"

using namespace rcache;

namespace
{

void
half(const char *title, CoreModel model)
{
    std::cout << title << "\n\n";
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = model;
    Experiment exp(cfg, rcache::bench::runInsts());

    TextTable t({"app", "static size-red", "dynamic size-red",
                 "static E*D-red", "dynamic E*D-red"});
    double ssz = 0, dsz = 0, sed = 0, ded = 0;
    const auto apps = rcache::bench::suite();
    for (const auto &p : apps) {
        auto st = exp.staticSearch(p, CacheSide::ICache,
                                   Organization::SelectiveSets);
        auto dy = exp.dynamicSearch(p, CacheSide::ICache,
                                    Organization::SelectiveSets);
        ssz += st.sizeReductionPct(CacheSide::ICache);
        dsz += dy.sizeReductionPct(CacheSide::ICache);
        sed += st.edReductionPct();
        ded += dy.edReductionPct();
        t.addRow({p.name,
                  TextTable::pct(st.sizeReductionPct(
                      CacheSide::ICache)),
                  TextTable::pct(dy.sizeReductionPct(
                      CacheSide::ICache)),
                  TextTable::pct(st.edReductionPct()),
                  TextTable::pct(dy.edReductionPct())});
    }
    const double n = static_cast<double>(apps.size());
    t.addRow({"AVG", TextTable::pct(ssz / n), TextTable::pct(dsz / n),
              TextTable::pct(sed / n), TextTable::pct(ded / n)});
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    rcache::bench::banner(
        "Figure 8: i-cache resizing strategy",
        "Fig 8 (static vs dynamic selective-sets, 2-way i-cache)");
    half("(a) in-order issue engine with blocking d-cache",
         CoreModel::InOrder);
    half("(b) out-of-order issue engine with nonblocking d-cache",
         CoreModel::OutOfOrder);
    std::cout << "paper: (a) static 16%, dynamic 18%; "
                 "(b) static 11%, dynamic 15% (averages).\n";
    return 0;
}
