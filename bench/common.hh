/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary reads RCACHE_INSTS (instructions per simulated
 * run; default 800000) and RCACHE_APPS (comma-separated subset of
 * profile names) from the environment so the full suite can be scaled
 * to the machine at hand; the engine-aware benches (fig4, fig9)
 * additionally honor RCACHE_SAMPLE (see benchEngine below). The paper ran 2 billion instructions per
 * data point on SimpleScalar; the shapes reported in EXPERIMENTS.md
 * are stable from a few hundred thousand instructions up.
 */

#ifndef RCACHE_BENCH_COMMON_HH
#define RCACHE_BENCH_COMMON_HH

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "scenario/param_space.hh"
#include "scenario/scenario_spec.hh"
#include "sim/experiment.hh"
#include "sim/table.hh"
#include "util/logging.hh"

namespace rcache::bench
{

/** Instructions per run (RCACHE_INSTS, default 400k). */
inline std::uint64_t
runInsts()
{
    if (const char *env = std::getenv("RCACHE_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return 400000;
}

/** Instructions per run: RCACHE_INSTS overrides the scenario's. */
inline std::uint64_t
runInsts(const ScenarioSpec &spec)
{
    if (const char *env = std::getenv("RCACHE_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return spec.insts;
}

/**
 * Directory holding the checked-in scenario files:
 * RCACHE_SCENARIO_DIR overrides the compile-time source-tree path
 * (so installed/relocated bench binaries still find them).
 */
inline std::string
scenarioDir()
{
    if (const char *env = std::getenv("RCACHE_SCENARIO_DIR"))
        return env;
#ifdef RCACHE_SCENARIO_SOURCE_DIR
    return RCACHE_SCENARIO_SOURCE_DIR;
#else
    return "scenarios";
#endif
}

/** Load and fully validate scenarios/@p name; fatal with the
 *  parser/registry diagnostic on any error. */
inline ScenarioSpec
loadScenario(const std::string &name)
{
    const std::string path = scenarioDir() + "/" + name;
    std::string err;
    auto spec = ScenarioSpec::parseFile(path, &err);
    if (!spec)
        rc_fatal(err);
    if (!ParamSpace::build(*spec, &err))
        rc_fatal(path + ": " + err);
    return *spec;
}

/** The named axis of @p spec; fatal if the scenario lacks it (the
 *  figure benches are shaped around specific axes). */
inline const Axis &
requireAxis(const ScenarioSpec &spec, const std::string &name)
{
    for (const Axis &axis : spec.axes)
        if (axis.name == name)
            return axis;
    rc_fatal("scenario '" + spec.name + "' lacks the '" + name +
             "' axis this bench renders");
}

/** Sweep-runner worker threads (RCACHE_JOBS; default 1 = serial,
 *  0 = hardware concurrency). Results are identical either way. */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("RCACHE_JOBS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 1;
}

/**
 * Engine selection from RCACHE_SAMPLE=interval[,detail[,warmup]]
 * (instructions; unset, empty, or a 0 interval = the full-detail
 * engine; detail defaults to interval/10, warmup to interval/5).
 * Sampled bench tables are comparable across RCACHE_JOBS values but
 * NOT against full-detail tables — see the README's Engines section.
 */
inline EngineSpec
benchEngine()
{
    const char *env = std::getenv("RCACHE_SAMPLE");
    if (!env || !*env)
        return {};
    const std::string text = env;
    std::uint64_t v[3] = {0, 0, 0};
    int given = 0;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        char *end = nullptr;
        errno = 0;
        const std::uint64_t parsed =
            std::strtoull(item.c_str(), &end, 10);
        if (given >= 3 || item.empty() || *end != '\0' ||
            errno == ERANGE || item[0] == '-') {
            rc_fatal("RCACHE_SAMPLE wants "
                     "interval[,detail[,warmup]] in instructions, "
                     "got '" +
                     text + "'");
        }
        v[given++] = parsed;
    }
    const std::uint64_t interval = v[0];
    if (interval == 0)
        return {};
    const std::uint64_t detail =
        given >= 2 ? v[1] : SamplingConfig::defaultDetail(interval);
    const std::uint64_t warmup =
        given >= 3 ? v[2] : SamplingConfig::defaultWarmup(interval);
    if (const char *err =
            SamplingConfig::shapeError(interval, detail, warmup)) {
        rc_fatal("RCACHE_SAMPLE: " + std::string(err) + " (got '" +
                 text + "')");
    }
    return EngineSpec::makeSampled(interval, detail, warmup);
}

/** Profiles to run (RCACHE_APPS=ammp,gcc,... or the full suite). */
inline std::vector<BenchmarkProfile>
suite()
{
    const char *env = std::getenv("RCACHE_APPS");
    if (!env)
        return spec2000Suite();
    std::vector<BenchmarkProfile> out;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        out.push_back(profileByName(name));
    return out;
}

/** Profiles to run: RCACHE_APPS overrides the scenario's
 *  [workloads] list. */
inline std::vector<BenchmarkProfile>
suite(const ScenarioSpec &spec)
{
    if (std::getenv("RCACHE_APPS") || spec.apps.empty())
        return suite();
    std::vector<BenchmarkProfile> out;
    for (const std::string &name : spec.apps)
        out.push_back(profileByName(name));
    return out;
}

/** Base config with the L1 associativity swapped (32K total kept). */
inline SystemConfig
baseWithAssoc(unsigned assoc)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = assoc;
    cfg.dl1.assoc = assoc;
    return cfg;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "reproduces: " << paper_ref << "\n"
              << "instructions/run: " << runInsts() << "\n";
    const EngineSpec e = benchEngine();
    if (e.sampled()) {
        std::cout << "engine: sampled, period "
                  << e.sampling.intervalInsts << ", detail "
                  << e.sampling.detailedInsts << ", warmup "
                  << e.sampling.warmupInsts
                  << " (not comparable to full-detail tables)\n";
    }
    std::cout << '\n';
}

} // namespace rcache::bench

#endif // RCACHE_BENCH_COMMON_HH
