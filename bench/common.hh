/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary reads RCACHE_INSTS (instructions per simulated
 * run; default 800000) and RCACHE_APPS (comma-separated subset of
 * profile names) from the environment so the full suite can be scaled
 * to the machine at hand. The paper ran 2 billion instructions per
 * data point on SimpleScalar; the shapes reported in EXPERIMENTS.md
 * are stable from a few hundred thousand instructions up.
 */

#ifndef RCACHE_BENCH_COMMON_HH
#define RCACHE_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/experiment.hh"
#include "sim/table.hh"

namespace rcache::bench
{

/** Instructions per run (RCACHE_INSTS, default 400k). */
inline std::uint64_t
runInsts()
{
    if (const char *env = std::getenv("RCACHE_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return 400000;
}

/** Sweep-runner worker threads (RCACHE_JOBS; default 1 = serial,
 *  0 = hardware concurrency). Results are identical either way. */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("RCACHE_JOBS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 1;
}

/** Profiles to run (RCACHE_APPS=ammp,gcc,... or the full suite). */
inline std::vector<BenchmarkProfile>
suite()
{
    const char *env = std::getenv("RCACHE_APPS");
    if (!env)
        return spec2000Suite();
    std::vector<BenchmarkProfile> out;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        out.push_back(profileByName(name));
    return out;
}

/** Base config with the L1 associativity swapped (32K total kept). */
inline SystemConfig
baseWithAssoc(unsigned assoc)
{
    SystemConfig cfg = SystemConfig::base();
    cfg.il1.assoc = assoc;
    cfg.dl1.assoc = assoc;
    return cfg;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "reproduces: " << paper_ref << "\n"
              << "instructions/run: " << runInsts() << "\n\n";
}

} // namespace rcache::bench

#endif // RCACHE_BENCH_COMMON_HH
