/**
 * @file
 * Regenerates the paper's Table 1: the enhanced resizing granularity
 * of the hybrid selective-sets-and-ways organization for a 32K 4-way
 * cache with 1K subarrays, alongside the two pure organizations'
 * offered spectra.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner("Table 1: hybrid resizing granularity",
                  "Table 1 (32K 4-way, 1K subarrays)");

    const CacheGeometry geom{32 * 1024, 4, 32, 1024};

    std::cout << "offered configurations (size @ associativity):\n\n";
    for (auto org : {Organization::SelectiveWays,
                     Organization::SelectiveSets,
                     Organization::Hybrid}) {
        std::cout << "  " << organizationName(org) << ": ";
        for (const auto &c : buildSchedule(org, geom)) {
            std::cout << TextTable::bytesKb(static_cast<double>(
                             c.sizeBytes(geom.blockSize)))
                      << "@" << c.ways << "w ";
        }
        std::cout << '\n';
    }

    // The paper's table layout: way size rows x associativity columns.
    std::cout << "\nTable 1 layout (sizes in KB):\n\n";
    TextTable t({"way size", "4-way", "3-way", "2-way", "dm"});
    for (std::uint64_t way = geom.waySize(); way >= geom.subarraySize;
         way /= 2) {
        std::vector<std::string> row{
            TextTable::bytesKb(static_cast<double>(way))};
        for (unsigned ways = 4; ways >= 1; --ways)
            row.push_back(TextTable::bytesKb(
                static_cast<double>(way * ways)));
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nhybrid offers "
              << buildSchedule(Organization::Hybrid, geom).size()
              << " sizes vs "
              << buildSchedule(Organization::SelectiveWays, geom)
                     .size()
              << " (ways) and "
              << buildSchedule(Organization::SelectiveSets, geom)
                     .size()
              << " (sets); redundant sizes resolve to the highest "
                 "associativity.\n";
    return 0;
}
