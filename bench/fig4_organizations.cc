/**
 * @file
 * Regenerates Figure 4: average processor energy-delay reduction of
 * static selective-ways vs static selective-sets for 32K d- and
 * i-caches at 2/4/8/16-way set-associativity, on the base
 * out-of-order processor.
 *
 * Paper shape to verify: selective-sets wins at <= 4-way (peaking at
 * 4-way), selective-ways wins at >= 8-way and grows with
 * associativity.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner(
        "Figure 4: resizable cache organizations",
        "Fig 4 (static selective-ways vs selective-sets, 2..16-way)");

    const auto apps = bench::suite();
    const std::uint64_t insts = bench::runInsts();

    for (auto side : {CacheSide::DCache, CacheSide::ICache}) {
        std::cout << (side == CacheSide::DCache ? "(a) D-Cache"
                                                : "(b) I-Cache")
                  << " — avg reduction (%) in processor "
                     "energy-delay\n\n";
        TextTable t({"assoc", "selective-ways", "selective-sets"});
        for (unsigned assoc : {2u, 4u, 8u, 16u}) {
            Experiment exp(bench::baseWithAssoc(assoc), insts);
            double ways = 0, sets = 0;
            for (const auto &p : apps) {
                ways += exp.staticSearch(p, side,
                                         Organization::SelectiveWays)
                            .edReductionPct();
                sets += exp.staticSearch(p, side,
                                         Organization::SelectiveSets)
                            .edReductionPct();
            }
            const double n = static_cast<double>(apps.size());
            t.addRow({std::to_string(assoc) + "-way",
                      TextTable::pct(ways / n),
                      TextTable::pct(sets / n)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: d$ ways 5/8/11/15, sets 9/11/9/6; "
                 "i$ ways 6/10/13/17, sets 11/12/11/8.\n";
    return 0;
}
