/**
 * @file
 * Regenerates Figure 4: average processor energy-delay reduction of
 * static selective-ways vs static selective-sets for 32K d- and
 * i-caches at 2/4/8/16-way set-associativity, on the base
 * out-of-order processor.
 *
 * Paper shape to verify: selective-sets wins at <= 4-way (peaking at
 * 4-way), selective-ways wins at >= 8-way and grows with
 * associativity.
 *
 * The design space lives in scenarios/fig4.scn (side x assoc x org
 * axes); this bench renders it as the paper's two per-side panels,
 * averaging over the suite. `rcache-sim sweep --scenario
 * scenarios/fig4.scn` reports the same cells as CSV rows.
 *
 * Runs on the sweep runner: each (side, assoc) panel enumerates the
 * baseline plus both organizations' level sweeps for every app as
 * one flat batch, so RCACHE_JOBS>1 overlaps all of them; the
 * reductions read results in job order, keeping the table identical
 * to a serial run.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner(
        "Figure 4: resizable cache organizations",
        "Fig 4 (static selective-ways vs selective-sets, 2..16-way)");

    const ScenarioSpec spec = bench::loadScenario("fig4.scn");
    rc_assert(spec.search.strategy == Strategy::Static);
    const Axis &org_axis = bench::requireAxis(spec, "org");
    rc_assert(org_axis.values ==
              (std::vector<std::string>{"ways", "sets"}));

    const auto apps = bench::suite(spec);
    const std::uint64_t insts = bench::runInsts(spec);
    SweepRunner runner(bench::benchJobs());

    for (const std::string &side_name :
         bench::requireAxis(spec, "side").values) {
        const CacheSide side = *parseSweepSideToken(side_name) ==
                                       SweepSide::DCache
                                   ? CacheSide::DCache
                                   : CacheSide::ICache;
        std::cout << (side == CacheSide::DCache ? "(a) D-Cache"
                                                : "(b) I-Cache")
                  << " — avg reduction (%) in processor "
                     "energy-delay\n\n";
        TextTable t({"assoc", "selective-ways", "selective-sets"});
        for (const std::string &assoc_text :
             bench::requireAxis(spec, "assoc").values) {
            const unsigned assoc = static_cast<unsigned>(
                std::strtoul(assoc_text.c_str(), nullptr, 10));
            SystemConfig cfg = spec.system;
            cfg.il1.assoc = assoc;
            cfg.dl1.assoc = assoc;
            Experiment exp(cfg, insts);
            exp.setEngine(bench::benchEngine());

            struct Slice
            {
                std::size_t off, count;
            };
            std::vector<RunJob> batch;
            std::vector<std::size_t> base_at(apps.size());
            std::vector<Slice> ways_at(apps.size()),
                sets_at(apps.size());
            for (std::size_t a = 0; a < apps.size(); ++a) {
                base_at[a] = batch.size();
                batch.push_back(exp.baselineJob(apps[a]));
                auto w = exp.staticSearchJobs(
                    apps[a], side, Organization::SelectiveWays);
                ways_at[a] = {batch.size(), w.size()};
                batch.insert(batch.end(), w.begin(), w.end());
                auto s = exp.staticSearchJobs(
                    apps[a], side, Organization::SelectiveSets);
                sets_at[a] = {batch.size(), s.size()};
                batch.insert(batch.end(), s.begin(), s.end());
            }

            const auto res = runner.run(batch);
            auto reduce = [&](const Slice &sl, std::size_t a) {
                return Experiment::reduceStatic(
                           res[base_at[a]],
                           {res.begin() + sl.off,
                            res.begin() + sl.off + sl.count})
                    .edReductionPct();
            };
            double ways = 0, sets = 0;
            for (std::size_t a = 0; a < apps.size(); ++a) {
                ways += reduce(ways_at[a], a);
                sets += reduce(sets_at[a], a);
            }
            const double n = static_cast<double>(apps.size());
            t.addRow({assoc_text + "-way",
                      TextTable::pct(ways / n),
                      TextTable::pct(sets / n)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: d$ ways 5/8/11/15, sets 9/11/9/6; "
                 "i$ ways 6/10/13/17, sets 11/12/11/8.\n";
    return 0;
}
