/**
 * @file
 * Prints the base system configuration (the paper's Table 2) as built
 * by SystemConfig::base(), plus the measured base-system properties
 * the paper quotes in Section 4: the d-cache and i-cache shares of
 * total processor energy (paper: 18.5% and 17.5% averaged over the
 * suite).
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner("Table 2: base system configuration",
                  "Table 2 + Section 4 energy shares");

    SystemConfig cfg = SystemConfig::base();
    TextTable t({"parameter", "value"});
    t.addRow({"issue/decode width",
              std::to_string(cfg.core.dispatchWidth) +
                  " insts per cycle"});
    t.addRow({"ROB / LSQ", std::to_string(cfg.core.robSize) +
                               " entries / " +
                               std::to_string(cfg.core.lsqSize) +
                               " entries"});
    t.addRow({"branch predictor", "combination"});
    t.addRow({"writeback buffer / mshr",
              std::to_string(cfg.core.wbEntries) + " entries / " +
                  std::to_string(cfg.core.mshrs) + " entries"});
    t.addRow({"L1 i-cache",
              TextTable::bytesKb(static_cast<double>(cfg.il1.size)) +
                  " " + std::to_string(cfg.il1.assoc) + "-way; " +
                  std::to_string(cfg.lat.l1Latency) + " cycle"});
    t.addRow({"L1 d-cache",
              TextTable::bytesKb(static_cast<double>(cfg.dl1.size)) +
                  " " + std::to_string(cfg.dl1.assoc) + "-way; " +
                  std::to_string(cfg.lat.l1Latency) + " cycle"});
    t.addRow({"L2 unified cache",
              TextTable::bytesKb(static_cast<double>(cfg.l2.size)) +
                  " " + std::to_string(cfg.l2.assoc) + "-way; " +
                  std::to_string(cfg.lat.l2Latency) + " cycles"});
    t.addRow({"memory latency",
              "(" + std::to_string(cfg.lat.memBaseLatency) + " + " +
                  std::to_string(cfg.lat.memCyclesPer8Bytes) +
                  " per 8 bytes) cycles"});
    t.addRow({"L1 subarray",
              std::to_string(cfg.il1.subarraySize / 1024) + "K"});
    t.print(std::cout);

    std::cout << "\nmeasured base-system averages over the suite "
                 "(paper Sec 4: d-cache 18.5%, i-cache 17.5%):\n\n";

    Experiment exp(cfg, bench::runInsts());
    double dsum = 0, isum = 0, ipc = 0;
    auto apps = bench::suite();
    TextTable m({"app", "IPC", "d$ share", "i$ share", "d$ miss",
                 "i$ miss"});
    for (const auto &p : apps) {
        RunResult r = exp.baseline(p);
        dsum += r.energy.dcacheFraction();
        isum += r.energy.icacheFraction();
        ipc += r.ipc();
        m.addRow({p.name, TextTable::num(r.ipc()),
                  TextTable::pct(100 * r.energy.dcacheFraction()),
                  TextTable::pct(100 * r.energy.icacheFraction()),
                  TextTable::pct(100 * r.dl1MissRatio),
                  TextTable::pct(100 * r.il1MissRatio)});
    }
    const double n = static_cast<double>(apps.size());
    m.addRow({"AVG", TextTable::num(ipc / n),
              TextTable::pct(100 * dsum / n),
              TextTable::pct(100 * isum / n), "-", "-"});
    m.print(std::cout);
    return 0;
}
