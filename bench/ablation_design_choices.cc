/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. hybrid redundant-size resolution: highest- vs lowest-
 *     associativity (the paper picks highest to minimize miss ratio);
 *  2. dynamic-controller interval length sensitivity;
 *  3. downsize hysteresis (downsizeFraction) sensitivity;
 *  4. subarray size (512B/1K/2K) effect on the offered spectrum and
 *     achievable energy-delay.
 */

#include "bench/common.hh"

using namespace rcache;

namespace
{

void
hybridRedundantSizeRule()
{
    std::cout << "[1] hybrid redundant-size resolution\n"
              << "    (16K within a 32K 4-way hybrid can be 4x4K "
                 "ways or 2x8K ways;\n"
              << "     the paper picks the highest associativity)\n\n";
    // Compare a 16K 4-way config against a 16K 2-way config reached
    // inside the same 32K 4-way hybrid cache, per app.
    SystemConfig cfg = rcache::bench::baseWithAssoc(4);
    cfg.dl1Org = Organization::Hybrid;
    TextTable t({"app", "16K@4w rel E*D", "16K@2w rel E*D",
                 "higher assoc better?"});
    for (const auto &p : rcache::bench::suite()) {
        double edp[2];
        int k = 0;
        for (ResizeConfig rc :
             {ResizeConfig{128, 4}, ResizeConfig{256, 2}}) {
            SyntheticWorkload wl(p);
            System sys(cfg);
            // Drive the raw cache to the target config before the
            // run (both are legal subarray configurations).
            sys.dl1().cache().resizeTo(rc.sets, rc.ways);
            RunResult r = sys.run(wl, rcache::bench::runInsts());
            edp[k++] = r.edp();
        }
        t.addRow({p.name, TextTable::num(edp[0] / edp[1], 3), "1.000",
                  edp[0] <= edp[1] ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
intervalSensitivity()
{
    std::cout << "[2] dynamic controller interval sensitivity "
                 "(su2cor d$, in-order)\n\n";
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = CoreModel::InOrder;
    cfg.dl1Org = Organization::SelectiveSets;
    auto p = profileByName("su2cor");

    SyntheticWorkload wb(p);
    System sb(cfg);
    RunResult base = sb.run(wb, rcache::bench::runInsts());

    TextTable t({"interval", "E*D reduction", "avg size", "resizes"});
    for (std::uint64_t interval : {512u, 1024u, 4096u, 16384u,
                                   65536u}) {
        DynamicParams dyn;
        dyn.intervalAccesses = interval;
        dyn.missBound = static_cast<std::uint64_t>(0.05 * interval);
        dyn.sizeBoundBytes = 16 * 1024;
        SyntheticWorkload wl(p);
        System sys(cfg);
        RunResult r = sys.run(wl, rcache::bench::runInsts(), {},
                              ResizeSetup{Strategy::Dynamic, 0, dyn});
        t.addRow({std::to_string(interval),
                  TextTable::pct(100 * (1 - r.edp() / base.edp())),
                  TextTable::bytesKb(r.avgDl1Bytes),
                  std::to_string(r.dl1Resizes)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
hysteresisSensitivity()
{
    std::cout << "[3] downsize hysteresis (downsizeFraction)\n\n";
    SystemConfig cfg = SystemConfig::base();
    cfg.dl1Org = Organization::SelectiveSets;
    auto p = profileByName("ammp");

    SyntheticWorkload wb(p);
    System sb(cfg);
    RunResult base = sb.run(wb, rcache::bench::runInsts());

    TextTable t({"downsizeFraction", "E*D reduction", "avg size"});
    for (double frac : {1.0, 0.75, 0.5, 0.25}) {
        DynamicParams dyn;
        dyn.intervalAccesses = 4096;
        dyn.missBound = 80;
        dyn.downsizeFraction = frac;
        SyntheticWorkload wl(p);
        System sys(cfg);
        RunResult r = sys.run(wl, rcache::bench::runInsts(), {},
                              ResizeSetup{Strategy::Dynamic, 0, dyn});
        t.addRow({TextTable::num(frac),
                  TextTable::pct(100 * (1 - r.edp() / base.edp())),
                  TextTable::bytesKb(r.avgDl1Bytes)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
subarraySize()
{
    std::cout << "[4] subarray size vs offered spectrum "
                 "(selective-sets 32K 2-way)\n\n";
    TextTable t({"subarray", "levels", "min size",
                 "avg E*D reduction (d$)"});
    for (unsigned sub : {512u, 1024u, 2048u}) {
        SystemConfig cfg = SystemConfig::base();
        cfg.dl1.subarraySize = sub;
        cfg.il1.subarraySize = sub;
        Experiment exp(cfg, rcache::bench::runInsts());
        auto sched = buildSchedule(Organization::SelectiveSets,
                                   cfg.dl1);
        double ed = 0;
        const auto apps = rcache::bench::suite();
        for (const auto &p : apps) {
            ed += exp.staticSearch(p, CacheSide::DCache,
                                   Organization::SelectiveSets)
                      .edReductionPct();
        }
        t.addRow({std::to_string(sub) + "B",
                  std::to_string(sched.size()),
                  TextTable::bytesKb(static_cast<double>(
                      sched.back().sizeBytes(32))),
                  TextTable::pct(ed /
                                 static_cast<double>(apps.size()))});
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    rcache::bench::banner("Ablations: resizable-cache design choices",
                          "DESIGN.md Section 5");
    hybridRedundantSizeRule();
    intervalSensitivity();
    hysteresisSensitivity();
    subarraySize();
    return 0;
}
