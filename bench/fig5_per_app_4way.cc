/**
 * @file
 * Regenerates Figure 5: per-application comparison of static
 * selective-ways vs selective-sets for 32K 4-way d- and i-caches —
 * average cache-size reduction and processor energy-delay reduction.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner(
        "Figure 5: selective-ways vs selective-sets, 4-way 32K",
        "Fig 5 (per-application size & energy-delay reductions)");

    const auto apps = bench::suite();
    Experiment exp(bench::baseWithAssoc(4), bench::runInsts());

    for (auto side : {CacheSide::DCache, CacheSide::ICache}) {
        std::cout << (side == CacheSide::DCache ? "(a) D-Cache"
                                                : "(b) I-Cache")
                  << "\n\n";
        TextTable t({"app", "ways size-red", "sets size-red",
                     "ways E*D-red", "sets E*D-red", "ways perf",
                     "sets perf"});
        double wsz = 0, ssz = 0, wed = 0, sed = 0;
        for (const auto &p : apps) {
            auto w = exp.staticSearch(p, side,
                                      Organization::SelectiveWays);
            auto s = exp.staticSearch(p, side,
                                      Organization::SelectiveSets);
            wsz += w.sizeReductionPct(side);
            ssz += s.sizeReductionPct(side);
            wed += w.edReductionPct();
            sed += s.edReductionPct();
            t.addRow({p.name,
                      TextTable::pct(w.sizeReductionPct(side)),
                      TextTable::pct(s.sizeReductionPct(side)),
                      TextTable::pct(w.edReductionPct()),
                      TextTable::pct(s.edReductionPct()),
                      TextTable::pct(w.perfDegradationPct()),
                      TextTable::pct(s.perfDegradationPct())});
        }
        const double n = static_cast<double>(apps.size());
        t.addRow({"AVG", TextTable::pct(wsz / n),
                  TextTable::pct(ssz / n), TextTable::pct(wed / n),
                  TextTable::pct(sed / n), "-", "-"});
        t.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
