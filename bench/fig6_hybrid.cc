/**
 * @file
 * Regenerates Figure 6: average processor energy-delay reduction of
 * the hybrid selective-sets-and-ways organization against both pure
 * organizations, 2..16-way 32K caches.
 *
 * Paper shape to verify: hybrid >= max(selective-ways,
 * selective-sets) at every associativity.
 */

#include "bench/common.hh"

using namespace rcache;

int
main()
{
    bench::banner("Figure 6: hybrid organization effectiveness",
                  "Fig 6 (hybrid vs selective-ways/sets, 2..16-way)");

    const auto apps = bench::suite();
    const std::uint64_t insts = bench::runInsts();
    const double n = static_cast<double>(apps.size());

    for (auto side : {CacheSide::DCache, CacheSide::ICache}) {
        std::cout << (side == CacheSide::DCache ? "(a) D-Cache"
                                                : "(b) I-Cache")
                  << " — avg reduction (%) in processor "
                     "energy-delay\n\n";
        TextTable t({"assoc", "hybrid", "selective-ways",
                     "selective-sets", "hybrid>=both?"});
        for (unsigned assoc : {2u, 4u, 8u, 16u}) {
            Experiment exp(bench::baseWithAssoc(assoc), insts);
            double hyb = 0, ways = 0, sets = 0;
            for (const auto &p : apps) {
                hyb += exp.staticSearch(p, side, Organization::Hybrid)
                           .edReductionPct();
                ways += exp.staticSearch(p, side,
                                         Organization::SelectiveWays)
                            .edReductionPct();
                sets += exp.staticSearch(p, side,
                                         Organization::SelectiveSets)
                            .edReductionPct();
            }
            const bool dominates =
                hyb >= ways - 0.05 * n && hyb >= sets - 0.05 * n;
            t.addRow({std::to_string(assoc) + "-way",
                      TextTable::pct(hyb / n),
                      TextTable::pct(ways / n),
                      TextTable::pct(sets / n),
                      dominates ? "yes" : "NO"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: hybrid d$ 9/12/13/15, i$ 11/13/14/17.\n";
    return 0;
}
