/**
 * @file
 * Regenerates Figure 7: static vs dynamic resizing of a 2-way 32K
 * selective-sets d-cache, on (a) the in-order/blocking-d-cache
 * processor and (b) the out-of-order/non-blocking base processor.
 *
 * Paper shape to verify: dynamic beats static where d-miss latency is
 * exposed (in-order) and the working set varies; with out-of-order
 * issue, static downsizes aggressively and matches dynamic.
 */

#include "bench/common.hh"

using namespace rcache;

namespace
{

void
half(const char *title, CoreModel model)
{
    std::cout << title << "\n\n";
    SystemConfig cfg = SystemConfig::base();
    cfg.coreModel = model;
    Experiment exp(cfg, rcache::bench::runInsts());

    TextTable t({"app", "static size-red", "dynamic size-red",
                 "static E*D-red", "dynamic E*D-red"});
    double ssz = 0, dsz = 0, sed = 0, ded = 0;
    const auto apps = rcache::bench::suite();
    for (const auto &p : apps) {
        auto st = exp.staticSearch(p, CacheSide::DCache,
                                   Organization::SelectiveSets);
        auto dy = exp.dynamicSearch(p, CacheSide::DCache,
                                    Organization::SelectiveSets);
        ssz += st.sizeReductionPct(CacheSide::DCache);
        dsz += dy.sizeReductionPct(CacheSide::DCache);
        sed += st.edReductionPct();
        ded += dy.edReductionPct();
        t.addRow({p.name,
                  TextTable::pct(st.sizeReductionPct(
                      CacheSide::DCache)),
                  TextTable::pct(dy.sizeReductionPct(
                      CacheSide::DCache)),
                  TextTable::pct(st.edReductionPct()),
                  TextTable::pct(dy.edReductionPct())});
    }
    const double n = static_cast<double>(apps.size());
    t.addRow({"AVG", TextTable::pct(ssz / n), TextTable::pct(dsz / n),
              TextTable::pct(sed / n), TextTable::pct(ded / n)});
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    rcache::bench::banner(
        "Figure 7: d-cache resizing strategy",
        "Fig 7 (static vs dynamic selective-sets, 2-way d-cache)");
    half("(a) in-order issue engine with blocking d-cache",
         CoreModel::InOrder);
    half("(b) out-of-order issue engine with nonblocking d-cache",
         CoreModel::OutOfOrder);
    std::cout << "paper: (a) static 5%, dynamic 9%; "
                 "(b) static 9%, dynamic 11% (averages).\n";
    return 0;
}
