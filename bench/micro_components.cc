/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * cache access, resize/flush, workload generation, branch prediction,
 * and whole-core simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "cpu/inorder_core.hh"
#include "cpu/ooo_core.hh"
#include "sim/system.hh"
#include "workload/profiles.hh"

using namespace rcache;

namespace
{

void
BM_CacheAccessHit(benchmark::State &state)
{
    Cache c("c", CacheGeometry{32 * 1024, 2, 32, 1024});
    c.access(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.access(0x1000, false).hit);
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessStream(benchmark::State &state)
{
    Cache c("c", CacheGeometry{32 * 1024, 2, 32, 1024});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false).hit);
        a += 32;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessStream);

void
BM_CacheResizeFlush(benchmark::State &state)
{
    // Cost of a downsize+upsize round trip on a warm cache.
    Cache c("c", CacheGeometry{32 * 1024, 4, 32, 1024});
    for (Addr a = 0; a < 32 * 1024; a += 32)
        c.access(a, (a & 63) != 0);
    for (auto _ : state) {
        c.resizeTo(128, 4);
        c.resizeTo(256, 4);
        // Refill a little so flushes keep doing work.
        for (Addr a = 0; a < 8 * 1024; a += 32)
            c.access(a, true);
    }
}
BENCHMARK(BM_CacheResizeFlush);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    SyntheticWorkload wl(profileByName("gcc"));
    for (auto _ : state)
        benchmark::DoNotOptimize(wl.next().pc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_WorkloadBatchGeneration(benchmark::State &state)
{
    // The cores consume the stream through nextBatch; this is the
    // generation cost they actually pay per instruction.
    SyntheticWorkload wl(profileByName("gcc"));
    MicroInst buf[workloadBatchSize];
    for (auto _ : state) {
        wl.nextBatch(buf, workloadBatchSize);
        benchmark::DoNotOptimize(buf[workloadBatchSize - 1].pc);
    }
    state.SetItemsProcessed(state.iterations() * workloadBatchSize);
}
BENCHMARK(BM_WorkloadBatchGeneration);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp;
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        benchmark::DoNotOptimize(bp.predictAndUpdate(
            0x4000 + ((x >> 20) & 0xfff), (x >> 40) & 1, 0x8000));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_OooCoreSimulation(benchmark::State &state)
{
    // End-to-end simulation throughput (instructions/second).
    for (auto _ : state) {
        state.PauseTiming();
        SyntheticWorkload wl(profileByName("compress"));
        System sys(SystemConfig::base());
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run(wl, 100000).cycles);
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_OooCoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_InOrderCoreSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SyntheticWorkload wl(profileByName("compress"));
        SystemConfig cfg = SystemConfig::base();
        cfg.coreModel = CoreModel::InOrder;
        System sys(cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run(wl, 100000).cycles);
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InOrderCoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_DynamicControllerOverhead(benchmark::State &state)
{
    // Controller bookkeeping per access.
    SelectiveSetsCache c("dl1", CacheGeometry{32 * 1024, 2, 32, 1024});
    DynamicParams dyn;
    dyn.intervalAccesses = 4096;
    dyn.missBound = 64;
    DynamicMissRatioController ctl(c, {}, dyn);
    std::uint64_t cycle = 0;
    std::uint64_t x = 9;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        ctl.onAccess((x >> 40) % 50 == 0, ++cycle);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicControllerOverhead);

} // namespace

BENCHMARK_MAIN();
