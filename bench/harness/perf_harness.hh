/**
 * @file
 * Perf-regression harness: named throughput benchmarks over the
 * simulator's hot paths, reported as machine-readable BENCH_*.json.
 *
 * The figure benches answer "what does the paper's design space look
 * like"; this harness answers "how fast does the simulator itself
 * run", and writes one JSON file per benchmark so CI can archive the
 * perf trajectory from PR to PR and scripts can diff two checkouts.
 *
 * Every benchmark builds its entire state fresh per repetition, times
 * only the measured region with a monotonic clock, and reports the
 * best repetition (noise on a shared machine only ever slows a run
 * down, so best-of is the robust aggregate). Results are therefore
 * comparable across runs of the same binary, and across binaries on
 * the same machine — not across machines.
 *
 * Exposed through `rcache-sim bench`; see runPerfBenches.
 */

#ifndef RCACHE_BENCH_HARNESS_PERF_HARNESS_HH
#define RCACHE_BENCH_HARNESS_PERF_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rcache::bench
{

/** Knobs shared by every perf benchmark. */
struct BenchOptions
{
    /** Instructions (or items) per repetition. */
    std::uint64_t items = 2000000;
    /** Timed repetitions per benchmark (best one is reported). */
    unsigned repetitions = 3;
    /** Directory BENCH_<name>.json files are written into. */
    std::string outDir = ".";
    /** Substring filter on benchmark names (empty = all). */
    std::string filter;
};

/** One benchmark's measurement. */
struct BenchResult
{
    std::string name;
    /** Unit of @c throughput ("Minst/s" or "Mops/s"). */
    std::string unit;
    /** Millions of items per second, best repetition. */
    double throughput = 0;
    /** Wall seconds of the best repetition. */
    double wallSeconds = 0;
    /** Items processed per repetition. */
    std::uint64_t items = 0;
    unsigned repetitions = 0;
    /** Benchmark-specific configuration, serialized into the JSON. */
    std::vector<std::pair<std::string, std::string>> config;
};

/** A named, registered benchmark. */
struct BenchSpec
{
    std::string name;
    std::string description;
    std::function<BenchResult(const BenchOptions &)> run;
};

/** The registry, in report order. */
const std::vector<BenchSpec> &perfBenches();

/**
 * Time @p reps runs of @p fn (a void() closure over pre-built state)
 * and return the best wall seconds. @p fn must rebuild any state it
 * consumes; the harness never reuses warm state across repetitions.
 */
double bestWallSeconds(unsigned reps, const std::function<void()> &fn);

/** Serialize @p r as the BENCH_*.json document (stable field order,
 *  shortest round-trip doubles, trailing newline). */
std::string benchJson(const BenchResult &r);

/**
 * Write @p r to @c dir/BENCH_<name>.json.
 * @return false (with @p err set) if the file cannot be written
 */
bool writeBenchJson(const BenchResult &r, const std::string &dir,
                    std::string *err);

/**
 * Run every registered benchmark whose name contains
 * @p opts.filter, print a one-line summary each, and write the JSON
 * files into @p opts.outDir.
 * @return 0 on success, nonzero if any file write failed
 */
int runPerfBenches(const BenchOptions &opts);

} // namespace rcache::bench

#endif // RCACHE_BENCH_HARNESS_PERF_HARNESS_HH
