#include "bench/harness/perf_harness.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analytic/analytic_engine.hh"
#include "core/size_schedule.hh"
#include "cpu/functional_core.hh"
#include "runner/sweep_runner.hh"
#include "scenario/scenario_spec.hh"
#include "search/adaptive_search.hh"
#include "sim/multi_core_system.hh"
#include "sim/system.hh"
#include "util/logging.hh"
#include "util/numformat.hh"
#include "workload/profiles.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_format.hh"

namespace rcache::bench
{

namespace
{

/** The profile every core-level benchmark streams (a mid-weight mix
 *  with real phase behavior; fixed so results are comparable). */
constexpr const char *benchApp = "compress";

/** Keep a computed value alive without letting the optimizer see
 *  through it. Takes by const reference so T deduces to the value
 *  type and `volatile T` is a real volatile object (with a
 *  forwarding reference, lvalue arguments would deduce T as a
 *  reference and the volatile would be ignored — no barrier). */
template <typename T>
void
consume(const T &v)
{
    volatile T sink = v;
    (void)sink;
}

BenchResult
makeResult(const std::string &name, const std::string &unit,
           std::uint64_t items, unsigned reps, double best_s,
           std::vector<std::pair<std::string, std::string>> config)
{
    BenchResult r;
    r.name = name;
    r.unit = unit;
    r.items = items;
    r.repetitions = reps;
    r.wallSeconds = best_s;
    r.throughput =
        best_s > 0 ? static_cast<double>(items) / best_s / 1e6 : 0;
    r.config = std::move(config);
    return r;
}

/** Full-detail System run throughput for one core model. */
BenchResult
detailedRun(const std::string &name, CoreModel model,
            const BenchOptions &opts)
{
    const double best = bestWallSeconds(opts.repetitions, [&] {
        SyntheticWorkload wl(profileByName(benchApp));
        SystemConfig cfg = SystemConfig::base();
        cfg.coreModel = model;
        System sys(cfg);
        consume(sys.run(wl, opts.items).cycles);
    });
    return makeResult(
        name, "Minst/s", opts.items, opts.repetitions, best,
        {{"app", benchApp},
         {"insts", std::to_string(opts.items)},
         {"core", model == CoreModel::OutOfOrder ? "ooo" : "inorder"},
         {"mode", "detailed"}});
}

BenchResult
sampledRun(const BenchOptions &opts)
{
    // The sampled engine's shape: measure 1/10 of each period after a
    // 1/5 warmup (the defaults the CLI derives from --engine sampled).
    const std::uint64_t interval =
        std::max<std::uint64_t>(opts.items / 4, 1000);
    const EngineSpec engine = EngineSpec::makeSampled(
        interval, SamplingConfig::defaultDetail(interval),
        SamplingConfig::defaultWarmup(interval));
    const double best = bestWallSeconds(opts.repetitions, [&] {
        SyntheticWorkload wl(profileByName(benchApp));
        System sys(SystemConfig::base());
        consume(sys.run(wl, opts.items, {}, {}, engine).cycles);
    });
    return makeResult(
        "sampled_ooo", "Minst/s", opts.items, opts.repetitions, best,
        {{"app", benchApp},
         {"insts", std::to_string(opts.items)},
         {"core", "ooo"},
         {"mode", "sampled"},
         {"sample_interval", std::to_string(interval)}});
}

BenchResult
functionalRun(const BenchOptions &opts)
{
    const double best = bestWallSeconds(opts.repetitions, [&] {
        SyntheticWorkload wl(profileByName(benchApp));
        const SystemConfig cfg = SystemConfig::base();
        Cache il1("il1", cfg.il1);
        Cache dl1("dl1", cfg.dl1);
        Hierarchy hier(&il1, &dl1, cfg.l2, cfg.lat);
        BranchPredictor bpred(cfg.core.bpred);
        FunctionalCore func(hier, bpred, cfg.core.fetchWidth, nullptr,
                            nullptr);
        func.run(wl, opts.items);
        consume(dl1.misses());
    });
    return makeResult("functional_warmup", "Minst/s", opts.items,
                      opts.repetitions, best,
                      {{"app", benchApp},
                       {"insts", std::to_string(opts.items)},
                       {"mode", "functional"}});
}

BenchResult
multicoreRun(const BenchOptions &opts)
{
    // Two OoO cores, a gcc+m88ksim mix, the default quantum: the
    // multi-programmed sweep's inner loop. Items are split across the
    // cores so the benchmark retires opts.items instructions total
    // and the throughput is comparable with detailed_ooo.
    const std::uint64_t per_core = std::max<std::uint64_t>(
        opts.items / 2, 1);
    const double best = bestWallSeconds(opts.repetitions, [&] {
        SystemConfig cfg = SystemConfig::base();
        cfg.cores = 2;
        MultiCoreSystem sys(cfg);
        consume(sys.run({profileByName("gcc"),
                         profileByName("m88ksim")},
                        per_core)
                    .aggregate.cycles);
    });
    return makeResult(
        "multicore_shared_l2", "Minst/s", per_core * 2,
        opts.repetitions, best,
        {{"mix", "gcc+m88ksim"},
         {"insts_per_core", std::to_string(per_core)},
         {"cores", "2"},
         {"mode", "detailed"}});
}

/**
 * The analytic engine's reason to exist, measured: price a
 * fig4-shaped dcache size x assoc grid once with per-geometry
 * detailed runs and once with a single shared stack-distance pass,
 * and record the wall-clock ratio. The headline number (throughput /
 * wall_seconds) is the analytic side; the detailed side and the
 * speedup ride along in the config block so tools/bench_diff.py can
 * gate on them.
 */
BenchResult
analyticMrc(const BenchOptions &opts)
{
    // Grid: the selective-ways static schedule plus the full-size
    // baseline, at two associativities — one detailed run per
    // geometry versus one analytic pass for all of them.
    std::vector<RunJob> jobs;
    for (unsigned assoc : {2u, 8u}) {
        SystemConfig cfg = SystemConfig::base();
        cfg.il1.assoc = assoc;
        cfg.dl1.assoc = assoc;
        cfg.dl1Org = Organization::SelectiveWays;
        RunJob base;
        base.label = "mrc/a" + std::to_string(assoc) + "/full";
        base.profile = profileByName(benchApp);
        base.cfg = cfg;
        base.insts = opts.items;
        jobs.push_back(base);
        const auto sched = buildSchedule(cfg.dl1Org, cfg.dl1);
        for (unsigned lvl = 0; lvl < sched.size(); ++lvl) {
            RunJob j = base;
            j.label = "mrc/a" + std::to_string(assoc) + "/L" +
                      std::to_string(lvl);
            j.dl1.strategy = Strategy::Static;
            j.dl1.staticLevel = lvl;
            jobs.push_back(j);
        }
    }

    const double detailed_s =
        bestWallSeconds(opts.repetitions, [&] {
            std::uint64_t sink = 0;
            for (const RunJob &j : jobs)
                sink += executeRunJob(j).dl1Misses;
            consume(sink);
        });
    const double analytic_s =
        bestWallSeconds(opts.repetitions, [&] {
            AnalyticPass pass(profileByName(benchApp), opts.items);
            for (const RunJob &j : jobs)
                pass.addConfig(j.cfg);
            pass.run();
            std::uint64_t sink = 0;
            for (RunJob j : jobs) {
                j.engine = EngineSpec::makeAnalytic();
                sink += priceAnalyticJob(j, pass).dl1Misses;
            }
            consume(sink);
        });
    const double speedup =
        analytic_s > 0 ? detailed_s / analytic_s : 0;

    return makeResult(
        "analytic_mrc", "Minst/s", opts.items,
        opts.repetitions, analytic_s,
        {{"app", benchApp},
         {"insts", std::to_string(opts.items)},
         {"geometries", std::to_string(jobs.size())},
         {"detailed_wall_seconds", shortestDouble(detailed_s)},
         {"speedup_vs_detailed", shortestDouble(speedup)},
         {"mode", "analytic"}});
}

/**
 * The adaptive autotuner end to end: successive halving over the
 * analytic -> sampled -> full fidelity ladder on a fig4-shaped
 * dcache grid. The headline number is the per-cell instruction
 * budget over the tuner's wall clock (same items contract as every
 * other bench: items == opts.items); the pruning itself is tracked
 * by the planned detailed instruction counts and their ratio in the
 * config block — CI's perf-smoke job gates detailed_inst_reduction
 * >= 5x.
 */
BenchResult
adaptiveSearch(const BenchOptions &opts)
{
    // Per-cell instruction budget and sampling period scale with
    // --insts so smoke runs stay fast; the reduction ratio is
    // structural (grid size x promote fractions x the sampled
    // engine's 1/10 detail fraction), so it holds at every scale.
    // The grid covers both cache sides so the analytic round prunes
    // 48 cells down to two full-detail finalists; finalists tend to
    // be high-associativity cells with deep static-level schedules
    // (many candidate runs each), which is why the promote fractions
    // are steep — the ratio is dominated by how few cells reach full
    // detail.
    const std::uint64_t insts =
        std::max<std::uint64_t>(opts.items / 8, 20000);
    std::ostringstream scn;
    scn << "[scenario]\n"
        << "name = bench-adaptive\n"
        << "insts = " << insts << "\n\n"
        << "[workloads]\n"
        << "apps = gcc,swim,m88ksim\n\n"
        << "[axes]\n"
        << "side = dcache,icache\n"
        << "assoc = 2,4,8,16\n"
        << "org = ways,sets\n\n"
        << "[search]\n"
        << "strategy = static\n"
        << "mode = adaptive\n"
        << "ladder = analytic,sampled,full\n"
        << "promote = 0.2,0.15\n"
        << "min-survivors = 2\n"
        << "sample-interval = " << insts / 4 << "\n";
    std::string err;
    const auto spec = ScenarioSpec::parseText(
        scn.str(), "bench-adaptive", &err);
    if (!spec)
        rc_fatal("bench-adaptive scenario: " + err);

    TuneOptions topt;
    topt.jobs = 1;
    topt.quiet = true;
    topt.emitOutputs = false;
    TuneStats stats;
    const double best = bestWallSeconds(opts.repetitions, [&] {
        stats = TuneStats{};
        if (runAdaptiveSearch(*spec, topt, &stats) != 0)
            rc_fatal("bench-adaptive tune failed");
        consume(stats.winner.bestEdp);
    });
    const double reduction =
        stats.detailedInsts > 0
            ? static_cast<double>(stats.exhaustiveDetailedInsts) /
                  static_cast<double>(stats.detailedInsts)
            : 0;
    return makeResult(
        "adaptive_search", "Minst/s", opts.items,
        opts.repetitions, best,
        {{"apps", "gcc+swim+m88ksim"},
         {"insts_per_cell", std::to_string(insts)},
         {"cells", std::to_string(stats.cells)},
         {"rounds", std::to_string(stats.rounds)},
         {"ladder", "analytic,sampled,full"},
         {"detailed_insts_adaptive",
          std::to_string(stats.detailedInsts)},
         {"detailed_insts_exhaustive",
          std::to_string(stats.exhaustiveDetailedInsts)},
         {"detailed_inst_reduction", shortestDouble(reduction)},
         {"mode", "adaptive"}});
}

BenchResult
workloadBatch(const BenchOptions &opts)
{
    const double best = bestWallSeconds(opts.repetitions, [&] {
        SyntheticWorkload wl(profileByName(benchApp));
        MicroInst buf[workloadBatchSize];
        std::uint64_t done = 0;
        Addr sink = 0;
        while (done < opts.items) {
            wl.nextBatch(buf, workloadBatchSize);
            sink += buf[workloadBatchSize - 1].pc;
            done += workloadBatchSize;
        }
        consume(sink);
    });
    return makeResult("workload_batch", "Minst/s", opts.items,
                      opts.repetitions, best,
                      {{"app", benchApp},
                       {"insts", std::to_string(opts.items)},
                       {"batch", std::to_string(workloadBatchSize)}});
}

BenchResult
cacheAccess(const BenchOptions &opts)
{
    const double best = bestWallSeconds(opts.repetitions, [&] {
        Cache c("c", CacheGeometry{32 * 1024, 2, 32, 1024});
        bool sink = false;
        Addr a = 0;
        for (std::uint64_t i = 0; i < opts.items; ++i) {
            sink ^= c.access(a, false).hit;
            a += 32;
        }
        consume(sink);
    });
    return makeResult(
        "cache_access_stream", "Mops/s", opts.items, opts.repetitions,
        best,
        {{"geometry", "32K/2way/32B"},
         {"accesses", std::to_string(opts.items)}});
}

BenchResult
traceStream(const BenchOptions &opts)
{
    // Setup (untimed): a packed lcs trace on disk, sized so that
    // draining opts.items instructions wraps several times — the
    // timed loop includes the decoder's chunk refills and the
    // rewind-to-offset-zero path, i.e. what a sweep cell actually
    // pays per instruction when driven by a real trace file.
    namespace fs = std::filesystem;
    constexpr std::uint64_t traceRecords = 1u << 18; // 6 MB on disk
    const fs::path path = fs::temp_directory_path() /
                          "rcache_bench_trace_stream.bin";
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        unsigned char rec[24] = {};
        for (std::uint64_t i = 0; i < traceRecords; ++i) {
            const std::uint64_t obj = i % 100003;
            for (int b = 0; b < 4; ++b)
                rec[b] = static_cast<unsigned char>(i >> (8 * b));
            for (int b = 0; b < 8; ++b)
                rec[4 + b] =
                    static_cast<unsigned char>(obj >> (8 * b));
            rec[12] = 64; // obj_size (unused by the decoder)
            os.write(reinterpret_cast<const char *>(rec),
                     sizeof(rec));
        }
    }
    TraceSpec spec;
    spec.path = path.string();
    spec.format = TraceFormat::LcsBin;

    const double best = bestWallSeconds(opts.repetitions, [&] {
        std::string err;
        auto wl = StreamingTraceWorkload::open(spec, "bench", &err);
        if (!wl)
            rc_fatal("trace_stream bench: " + err);
        MicroInst buf[workloadBatchSize];
        std::uint64_t done = 0;
        Addr sink = 0;
        while (done < opts.items) {
            wl->nextBatch(buf, workloadBatchSize);
            sink += buf[workloadBatchSize - 1].effAddr;
            done += workloadBatchSize;
        }
        consume(sink);
    });
    fs::remove(path);
    return makeResult("trace_stream", "Minst/s", opts.items,
                      opts.repetitions, best,
                      {{"format", "lcs"},
                       {"records", std::to_string(traceRecords)},
                       {"insts", std::to_string(opts.items)},
                       {"batch", std::to_string(workloadBatchSize)}});
}

} // namespace

double
bestWallSeconds(unsigned reps, const std::function<void()> &fn)
{
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

const std::vector<BenchSpec> &
perfBenches()
{
    static const std::vector<BenchSpec> registry = {
        {"detailed_ooo",
         "full-detail OoO System run (the sweep inner loop)",
         [](const BenchOptions &o) {
             return detailedRun("detailed_ooo", CoreModel::OutOfOrder,
                                o);
         }},
        {"detailed_inorder", "full-detail in-order System run",
         [](const BenchOptions &o) {
             return detailedRun("detailed_inorder", CoreModel::InOrder,
                                o);
         }},
        {"sampled_ooo", "sampled-engine OoO System run",
         [](const BenchOptions &o) { return sampledRun(o); }},
        {"analytic_mrc",
         "analytic miss-ratio pass vs per-geometry detailed runs "
         "over a fig4-shaped grid",
         [](const BenchOptions &o) { return analyticMrc(o); }},
        {"adaptive_search",
         "successive-halving autotune of a fig4-shaped grid over "
         "the analytic/sampled/full ladder",
         [](const BenchOptions &o) { return adaptiveSearch(o); }},
        {"multicore_shared_l2",
         "2-core multi-programmed run over one shared L2",
         [](const BenchOptions &o) { return multicoreRun(o); }},
        {"functional_warmup",
         "FunctionalCore state-only advance (sampling warmup path)",
         [](const BenchOptions &o) { return functionalRun(o); }},
        {"workload_batch",
         "SyntheticWorkload::nextBatch stream generation",
         [](const BenchOptions &o) { return workloadBatch(o); }},
        {"cache_access_stream",
         "Cache::access over a sequential block stream",
         [](const BenchOptions &o) { return cacheAccess(o); }},
        {"trace_stream",
         "StreamingTraceWorkload::nextBatch over an on-disk lcs "
         "trace, wrap refills included",
         [](const BenchOptions &o) { return traceStream(o); }},
    };
    return registry;
}

std::string
benchJson(const BenchResult &r)
{
    // Hand-rolled because the values are flat and the field order
    // must be stable; strings here are identifiers (no escaping
    // needed beyond refusing to emit quotes, which none contain).
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": \"" << r.name << "\",\n";
    os << "  \"unit\": \"" << r.unit << "\",\n";
    os << "  \"throughput\": " << shortestDouble(r.throughput)
       << ",\n";
    os << "  \"wall_seconds\": " << shortestDouble(r.wallSeconds)
       << ",\n";
    os << "  \"items\": " << r.items << ",\n";
    os << "  \"repetitions\": " << r.repetitions << ",\n";
    os << "  \"config\": {";
    for (std::size_t i = 0; i < r.config.size(); ++i) {
        os << (i ? ", " : "") << "\"" << r.config[i].first << "\": \""
           << r.config[i].second << "\"";
    }
    os << "}\n";
    os << "}\n";
    return os.str();
}

bool
writeBenchJson(const BenchResult &r, const std::string &dir,
               std::string *err)
{
    const std::string path = dir + "/BENCH_" + r.name + ".json";
    std::ofstream out(path);
    if (!out) {
        if (err)
            *err = "cannot write '" + path + "'";
        return false;
    }
    out << benchJson(r);
    out.flush();
    if (!out) {
        if (err)
            *err = "write failed for '" + path + "'";
        return false;
    }
    return true;
}

int
runPerfBenches(const BenchOptions &opts)
{
    int failures = 0;
    unsigned ran = 0;
    for (const BenchSpec &spec : perfBenches()) {
        if (!opts.filter.empty() &&
            spec.name.find(opts.filter) == std::string::npos)
            continue;
        ++ran;
        const BenchResult r = spec.run(opts);
        std::printf("%-22s %10.2f %-8s (best of %u, %s wall)\n",
                    r.name.c_str(), r.throughput, r.unit.c_str(),
                    r.repetitions,
                    shortestDouble(r.wallSeconds).c_str());
        std::fflush(stdout);
        std::string err;
        if (!writeBenchJson(r, opts.outDir, &err)) {
            RC_LOG(error, err);
            ++failures;
        }
    }
    if (ran == 0) {
        RC_LOG(error,
               "no benchmark matches filter '" + opts.filter + "'");
        return 2;
    }
    return failures ? 1 : 0;
}

} // namespace rcache::bench
