#include "cache/shared_l2.hh"

#include <algorithm>

namespace rcache
{

SharedL2::SharedL2(const CacheGeometry &geom, unsigned num_cores)
    : cache_("l2", geom), numCores_(num_cores), stats_(num_cores)
{
    rc_assert(num_cores >= 1);
    // Bound the owner map's load factor by the only population it can
    // ever hold: one entry per resident block.
    owner_.reserve(geom.numSets() * geom.assoc);
    cache_.setEvictionObserver(
        [this](Addr block_addr, bool) { onEviction(block_addr); });
}

void
SharedL2::onEviction(Addr block_addr)
{
    const auto it = owner_.find(block_addr);
    // Every resident block was registered by the fill that brought it
    // in, so an eviction always finds its owner.
    rc_assert(it != owner_.end());
    const unsigned owner = it->second;
    owner_.erase(it);

    --stats_[owner].residentBlocks;
    if (owner == accessor_) {
        ++stats_[owner].evictionsBySelf;
    } else {
        ++stats_[owner].evictionsByOthers;
        ++stats_[accessor_].evictedOthers;
    }
}

SharedL2Outcome
SharedL2::access(unsigned core, Addr addr, bool is_write)
{
    rc_assert(core < numCores_);
    accessor_ = core;
    SharedL2CoreStats &s = stats_[core];
    ++s.accesses;

    const AccessResult r = cache_.access(addr, is_write);

    SharedL2Outcome out;
    out.hit = r.hit;
    if (r.hit) {
        ++s.hits;
    } else {
        ++s.misses;
        ++s.memReads;
        ++s.fills;
        // Register the filled block under its block-aligned byte
        // address (the form the eviction observer reports).
        const unsigned block_bits = cache_.geometry().blockBits();
        owner_[(addr >> block_bits) << block_bits] = core;
        ++s.residentBlocks;
        s.peakResidentBlocks =
            std::max(s.peakResidentBlocks, s.residentBlocks);
        out.memRead = true;
    }
    if (r.writeback) {
        ++s.memWrites;
        out.memWrite = true;
    }
    return out;
}

SharedL2CoreStats
SharedL2::totals() const
{
    SharedL2CoreStats t;
    for (const SharedL2CoreStats &s : stats_) {
        t.accesses += s.accesses;
        t.hits += s.hits;
        t.misses += s.misses;
        t.memReads += s.memReads;
        t.memWrites += s.memWrites;
        t.fills += s.fills;
        t.evictionsBySelf += s.evictionsBySelf;
        t.evictionsByOthers += s.evictionsByOthers;
        t.evictedOthers += s.evictedOthers;
        t.residentBlocks += s.residentBlocks;
        t.peakResidentBlocks += s.peakResidentBlocks;
    }
    return t;
}

} // namespace rcache
