/**
 * @file
 * Time-based resource pools: MSHR file and writeback buffer.
 *
 * The CPU models in this project are instruction-driven rather than
 * cycle-driven: each instruction's fetch/issue/complete cycles are
 * computed from its producers and from structural resources. The two
 * structural resources attached to the data cache — miss status
 * holding registers (non-blocking miss parallelism) and the writeback
 * buffer — are therefore modelled as pools of busy-until timestamps.
 */

#ifndef RCACHE_CACHE_MSHR_HH
#define RCACHE_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "util/bitops.hh"

namespace rcache
{

/**
 * A pool of @c capacity slots, each busy until some cycle. Shared
 * implementation for MSHRs and writeback buffers.
 */
class TimedPool
{
  public:
    explicit TimedPool(unsigned capacity);

    /**
     * Acquire a slot at time @p now for @p duration cycles.
     *
     * @return the cycle at which the slot was actually acquired: @p now
     *         if a slot was free, else the earliest cycle one frees up
     *         (the caller stalls until then).
     */
    std::uint64_t acquire(std::uint64_t now, std::uint64_t duration);

    /** Number of slots busy at @p now. */
    unsigned busyAt(std::uint64_t now) const;

    /** True if no slot is free at @p now. */
    bool fullAt(std::uint64_t now) const
    {
        return busyAt(now) >= capacity_;
    }

    unsigned capacity() const { return capacity_; }

    /** Forget all in-flight state (start of a new run). */
    void reset();

  private:
    unsigned capacity_;
    /** Busy-until cycle per allocated slot; lazily compacted. */
    std::vector<std::uint64_t> busyUntil_;

    void compact(std::uint64_t now);
};

/**
 * MSHR file: a TimedPool plus merging of secondary misses to a block
 * already in flight (they complete with the primary miss and consume
 * no new slot).
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity);

    /**
     * Register a miss to @p block_addr discovered at @p now that will
     * take @p fill_latency cycles to fill.
     *
     * @return the cycle the requested block is available. For a
     *         secondary miss this is the primary's fill time; for a
     *         primary miss with no free MSHR the start is delayed
     *         until a slot frees (blocking behaviour emerges when
     *         capacity is 1).
     */
    std::uint64_t miss(Addr block_addr, std::uint64_t now,
                       std::uint64_t fill_latency);

    /** True if @p block_addr has a fill in flight at @p now. */
    bool inFlight(Addr block_addr, std::uint64_t now) const;

    std::uint64_t secondaryMisses() const { return secondary_; }
    unsigned capacity() const { return pool_.capacity(); }

    /** Fills in flight at @p now (telemetry occupancy sampling). */
    unsigned busyAt(std::uint64_t now) const { return pool_.busyAt(now); }

    void reset();

  private:
    struct Entry
    {
        Addr blockAddr;
        std::uint64_t fillAt;
    };

    TimedPool pool_;
    std::vector<Entry> entries_;
    std::uint64_t secondary_ = 0;
};

/**
 * Writeback buffer: dirty victims wait here while draining to the
 * next level. A full buffer stalls the evicting access.
 */
class WritebackBuffer
{
  public:
    explicit WritebackBuffer(unsigned capacity,
                             std::uint64_t drain_latency);

    /**
     * Insert a writeback at @p now.
     * @return the cycle the evicting access may proceed (== @p now
     *         unless the buffer was full).
     */
    std::uint64_t insert(std::uint64_t now);

    std::uint64_t inserted() const { return inserted_; }
    std::uint64_t stallCycles() const { return stallCycles_; }

    /** Writebacks still draining at @p now (telemetry sampling). */
    unsigned busyAt(std::uint64_t now) const { return pool_.busyAt(now); }

    void reset();

  private:
    TimedPool pool_;
    std::uint64_t drainLatency_;
    std::uint64_t inserted_ = 0;
    std::uint64_t stallCycles_ = 0;
};

} // namespace rcache

#endif // RCACHE_CACHE_MSHR_HH
