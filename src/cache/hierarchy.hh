/**
 * @file
 * Two-level memory hierarchy: split L1 I/D, unified L2, flat memory.
 *
 * The hierarchy is purely functional-plus-latency: the CPU models ask
 * for an access and get back the latency it would take and which level
 * hit; structural hazards (MSHRs, writeback buffer) are applied by the
 * CPU models using the pools in cache/mshr.hh.
 */

#ifndef RCACHE_CACHE_HIERARCHY_HH
#define RCACHE_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/shared_l2.hh"
#include "stats/stats.hh"

namespace rcache
{

/** Latency parameters for the hierarchy (Table 2 defaults). */
struct HierarchyParams
{
    /** L1 hit latency in cycles. */
    unsigned l1Latency = 1;
    /** L2 hit latency in cycles. */
    unsigned l2Latency = 12;
    /** Memory base latency in cycles. */
    unsigned memBaseLatency = 80;
    /** Additional memory cycles per 8 bytes transferred. */
    unsigned memCyclesPer8Bytes = 5;

    bool operator==(const HierarchyParams &o) const = default;
};

/** Result of a hierarchy access. */
struct MemAccessResult
{
    /** Total latency from request to data, in cycles. */
    std::uint64_t latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    /** A dirty L1 victim was evicted (occupies the writeback buffer). */
    bool writeback = false;
};

/**
 * Wires two L1 caches (owned by the caller, since the resizable
 * organizations wrap them) to an owned unified L2 and a flat memory.
 */
class Hierarchy
{
  public:
    /**
     * @param il1,dl1 L1 caches, owned by the caller, must outlive this
     * @param l2_geom geometry of the owned unified L2
     * @param params latency parameters
     */
    Hierarchy(Cache *il1, Cache *dl1, const CacheGeometry &l2_geom,
              const HierarchyParams &params);

    /**
     * Multi-core form: route L2 traffic to @p shared_l2 (owned by the
     * caller, shared between the cores' hierarchies, must outlive
     * this) attributed to @p core_id. Timing is identical to an owned
     * L2 of the same geometry; only the attribution differs. The
     * memReads()/memWrites() counters then report this core's share
     * of the memory traffic.
     */
    Hierarchy(Cache *il1, Cache *dl1, SharedL2 &shared_l2,
              unsigned core_id, const HierarchyParams &params);

    /**
     * Instruction fetch of the block containing @p addr. Inline: the
     * cores call this on every fetch-group boundary, and the L1-hit
     * fast path is two loads and an add.
     */
    MemAccessResult
    instAccess(Addr addr)
    {
        MemAccessResult out;
        AccessResult l1 = il1_->access(addr, false);
        out.l1Hit = l1.hit;
        out.latency = params_.l1Latency;
        // Instruction blocks are never dirty, so no writeback
        // possible.
        if (!l1.hit) {
            out.l2Hit = l2Access(addr, false);
            out.latency +=
                out.l2Hit ? params_.l2Latency : memPenalty();
        }
        return out;
    }

    /** Data access; @p is_write marks stores. Inline: once per
     *  simulated load/store. */
    MemAccessResult
    dataAccess(Addr addr, bool is_write)
    {
        MemAccessResult out;
        AccessResult l1 = dl1_->access(addr, is_write);
        out.l1Hit = l1.hit;
        out.latency = params_.l1Latency;
        if (!l1.hit) {
            out.l2Hit = l2Access(addr, false);
            out.latency +=
                out.l2Hit ? params_.l2Latency : memPenalty();
        }
        if (l1.writeback) {
            out.writeback = true;
            l2Access(l1.writebackAddr, true);
        }
        return out;
    }

    /**
     * Sink for L1 flush/resize writebacks: drains the block into L2
     * (and memory on an L2 miss) and counts the traffic.
     */
    WritebackSink l1WritebackSink();

    /** Latency of a miss that hits in L2 (beyond the L1 access). */
    std::uint64_t l2HitPenalty() const { return params_.l2Latency; }
    /** Latency of a miss that goes to memory (beyond the L1 access). */
    std::uint64_t memPenalty() const;

    Cache &il1() { return *il1_; }
    Cache &dl1() { return *dl1_; }
    Cache &l2() { return *l2_; }
    const Cache &l2() const { return *l2_; }

    std::uint64_t memReads() const { return memReads_.value(); }
    std::uint64_t memWrites() const { return memWrites_.value(); }

    /** Attached shared L2, or null in the owned-L2 (single-core)
     *  form. */
    SharedL2 *sharedL2() { return sharedL2_; }
    /** Attribution id presented to the shared L2 (0 when owned). */
    unsigned coreId() const { return coreId_; }

    const HierarchyParams &params() const { return params_; }

    void resetStats();

  private:
    /** Send one block access into L2; forwards L2 victims to memory. */
    bool l2Access(Addr addr, bool is_write);

    Cache *il1_;
    Cache *dl1_;
    /** Owned L2 (single-core form); null when sharedL2_ is attached. */
    std::unique_ptr<Cache> ownedL2_;
    /** The L2 this hierarchy talks to: ownedL2_ or the shared cache. */
    Cache *l2_;
    SharedL2 *sharedL2_ = nullptr;
    unsigned coreId_ = 0;
    HierarchyParams params_;

    Counter memReads_;
    Counter memWrites_;
};

} // namespace rcache

#endif // RCACHE_CACHE_HIERARCHY_HH
