#include "cache/mshr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcache
{

TimedPool::TimedPool(unsigned capacity) : capacity_(capacity)
{
    rc_assert(capacity >= 1);
    busyUntil_.reserve(capacity);
}

void
TimedPool::compact(std::uint64_t now)
{
    std::erase_if(busyUntil_,
                  [now](std::uint64_t t) { return t <= now; });
}

std::uint64_t
TimedPool::acquire(std::uint64_t now, std::uint64_t duration)
{
    compact(now);
    std::uint64_t start = now;
    if (busyUntil_.size() >= capacity_) {
        auto it = std::min_element(busyUntil_.begin(), busyUntil_.end());
        start = *it;
        busyUntil_.erase(it);
    }
    busyUntil_.push_back(start + duration);
    return start;
}

unsigned
TimedPool::busyAt(std::uint64_t now) const
{
    unsigned n = 0;
    for (auto t : busyUntil_)
        if (t > now)
            ++n;
    return n;
}

void
TimedPool::reset()
{
    busyUntil_.clear();
}

MshrFile::MshrFile(unsigned capacity) : pool_(capacity)
{
    entries_.reserve(capacity);
}

std::uint64_t
MshrFile::miss(Addr block_addr, std::uint64_t now,
               std::uint64_t fill_latency)
{
    // Secondary miss: merge with the in-flight primary.
    for (const auto &e : entries_) {
        if (e.blockAddr == block_addr && e.fillAt > now) {
            ++secondary_;
            return e.fillAt;
        }
    }
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.fillAt <= now; });
    const std::uint64_t start = pool_.acquire(now, fill_latency);
    const std::uint64_t fill_at = start + fill_latency;
    entries_.push_back({block_addr, fill_at});
    return fill_at;
}

bool
MshrFile::inFlight(Addr block_addr, std::uint64_t now) const
{
    for (const auto &e : entries_)
        if (e.blockAddr == block_addr && e.fillAt > now)
            return true;
    return false;
}

void
MshrFile::reset()
{
    pool_.reset();
    entries_.clear();
    secondary_ = 0;
}

WritebackBuffer::WritebackBuffer(unsigned capacity,
                                 std::uint64_t drain_latency)
    : pool_(capacity), drainLatency_(drain_latency)
{
}

std::uint64_t
WritebackBuffer::insert(std::uint64_t now)
{
    ++inserted_;
    const std::uint64_t start = pool_.acquire(now, drainLatency_);
    stallCycles_ += start - now;
    return start;
}

void
WritebackBuffer::reset()
{
    pool_.reset();
    inserted_ = 0;
    stallCycles_ = 0;
}

} // namespace rcache
