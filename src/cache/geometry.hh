/**
 * @file
 * Cache geometry: the static dimensions of a cache and its division
 * into SRAM subarrays.
 *
 * Modern high-performance caches split the tag and data arrays into
 * subarrays of SRAM rows (Wilson & Jouppi, WRL TR 93/5). Resizable
 * caches enable/disable whole subarrays, so all resizing arithmetic in
 * this project is expressed against this geometry: a cache of
 * @c size bytes and associativity @c assoc has @c assoc ways of
 * <tt>size/assoc</tt> bytes, each way divided into subarrays of
 * @c subarraySize bytes holding <tt>subarraySize/blockSize</tt> sets.
 */

#ifndef RCACHE_CACHE_GEOMETRY_HH
#define RCACHE_CACHE_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "util/bitops.hh"

namespace rcache
{

/** Static dimensions of a (possibly resizable) cache. */
struct CacheGeometry
{
    /** Total capacity in bytes at full size. */
    std::uint64_t size = 32 * 1024;
    /** Associativity at full size. */
    unsigned assoc = 2;
    /** Cache block (line) size in bytes. */
    unsigned blockSize = 32;
    /** SRAM subarray size in bytes (paper: 1K for L1). */
    unsigned subarraySize = 1024;

    /** Bytes per way. */
    std::uint64_t waySize() const { return size / assoc; }
    /** Number of sets at full size. */
    std::uint64_t numSets() const { return size / (assoc * blockSize); }
    /** Subarrays in one way. */
    unsigned subarraysPerWay() const
    {
        return static_cast<unsigned>(waySize() / subarraySize);
    }
    /** Sets resident in one subarray. */
    unsigned setsPerSubarray() const { return subarraySize / blockSize; }
    /** Total subarrays in the data array. */
    unsigned totalSubarrays() const
    {
        return assoc * subarraysPerWay();
    }
    /**
     * Minimum number of enabled sets: one subarray per way (the paper's
     * floor for selective-sets resizing).
     */
    std::uint64_t minSets() const { return setsPerSubarray(); }

    /** log2(blockSize): number of block-offset address bits. */
    unsigned blockBits() const { return floorLog2(blockSize); }

    bool operator==(const CacheGeometry &o) const = default;

    /**
     * Check internal consistency (powers of two, subarray divides way,
     * block divides subarray). @return empty string if valid, else a
     * description of the violation.
     */
    std::string validate() const;
};

} // namespace rcache

#endif // RCACHE_CACHE_GEOMETRY_HH
