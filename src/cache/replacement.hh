/**
 * @file
 * Block replacement policies.
 *
 * Policies operate on an opaque per-block metadata word owned by the
 * cache; the policy decides how to update it on touch/fill and how to
 * pick a victim among the enabled ways of a set.
 */

#ifndef RCACHE_CACHE_REPLACEMENT_HH
#define RCACHE_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace rcache
{

/** Per-way view the policy sees when choosing a victim. */
struct ReplChoice
{
    bool valid;
    std::uint64_t meta;
};

/** Abstract replacement policy. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Metadata for a block just touched (hit) or filled. */
    virtual std::uint64_t touch(std::uint64_t old_meta) = 0;

    /**
     * Pick a victim way among @p ways (already restricted to enabled
     * ways). Invalid ways are preferred by the cache before this is
     * consulted, so all entries are valid when called.
     */
    virtual unsigned victim(const std::vector<ReplChoice> &ways) = 0;

    /** Human-readable policy name. */
    virtual std::string name() const = 0;
};

/** True LRU via a global access stamp. */
class LruPolicy : public ReplacementPolicy
{
  public:
    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const std::vector<ReplChoice> &ways) override;
    std::string name() const override { return "lru"; }

  private:
    std::uint64_t stamp_ = 0;
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1);

    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const std::vector<ReplChoice> &ways) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Factory by name ("lru" or "random"); panics on unknown name. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(
    const std::string &name, std::uint64_t seed = 1);

} // namespace rcache

#endif // RCACHE_CACHE_REPLACEMENT_HH
