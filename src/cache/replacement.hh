/**
 * @file
 * Block replacement policies.
 *
 * Policies operate on an opaque per-block metadata word owned by the
 * cache; the policy decides how to update it on touch (hit) and fill
 * (allocation) and how to pick a victim among the enabled ways of a
 * set. Policies that need more than per-way metadata hook two extra
 * seams: an access stream (recordAccess, fed every cache access when
 * wantsAccessStream() is true) and an admission gate (admit, consulted
 * before a valid victim is evicted — returning false bypasses the
 * fill, leaving the victim resident).
 *
 * Metadata contract: the cache stores metadata in 48 bits (its block
 * frames pack valid/dirty into the top bits of the same word), so
 * policies must keep values below 2^48. The built-ins comply by
 * construction — the LRU/FIFO stamps would need ~2.8e14 events to
 * overflow, SLRU keeps a 47-bit stamp plus the segment bit, and
 * random ignores metadata entirely.
 *
 * All addresses handed to recordAccess/admit are block addresses
 * (byte address >> blockBits), the natural key granularity for
 * frequency tracking.
 */

#ifndef RCACHE_CACHE_REPLACEMENT_HH
#define RCACHE_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/freq_sketch.hh"
#include "util/bitops.hh"
#include "util/random.hh"

namespace rcache
{

/** Per-way view the policy sees when choosing a victim. */
struct ReplChoice
{
    bool valid;
    std::uint64_t meta;
};

/**
 * Discriminator the cache uses to dispatch the built-in policies
 * through an inline fast path instead of two virtual calls per
 * access. Custom subclasses report Custom and take the (still
 * correct, merely slower) virtual route.
 */
enum class ReplKind : std::uint8_t
{
    Lru,
    Random,
    Custom,
};

/** Abstract replacement policy. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Which inline fast path (if any) implements this policy. */
    virtual ReplKind kind() const { return ReplKind::Custom; }

    /** Metadata for a block just touched (hit). */
    virtual std::uint64_t touch(std::uint64_t old_meta) = 0;

    /**
     * Metadata for a block just filled (allocation on miss). Defaults
     * to touch — correct for recency policies; insertion-order and
     * segmented policies distinguish the two.
     */
    virtual std::uint64_t fill(std::uint64_t old_meta)
    {
        return touch(old_meta);
    }

    /**
     * Pick a victim way among the @p n @p ways (already restricted to
     * enabled ways). Invalid ways are preferred by the cache before
     * this is consulted, so all entries are valid when called.
     */
    virtual unsigned victim(const ReplChoice *ways, std::size_t n) = 0;

    /** Convenience overload for tests and callers holding a vector. */
    unsigned victim(const std::vector<ReplChoice> &ways)
    {
        return victim(ways.data(), ways.size());
    }

    /**
     * Should the cache feed every access (hit or miss) through
     * recordAccess? Sampled once per reconfiguration, so the hot path
     * pays one cached-bool test, not a virtual call.
     */
    virtual bool wantsAccessStream() const { return false; }

    /** One cache access to @p block_addr (see wantsAccessStream). */
    virtual void recordAccess(Addr block_addr) { (void)block_addr; }

    /**
     * Admission gate: with every enabled way valid and
     * @p victim_block chosen for eviction, may @p incoming_block
     * displace it? Returning false bypasses the fill: the miss still
     * counts, the victim stays resident, nothing is written back.
     * Only consulted for Custom-kind policies.
     */
    virtual bool admit(Addr incoming_block, Addr victim_block)
    {
        (void)incoming_block;
        (void)victim_block;
        return true;
    }

    /**
     * Per-block state bits this policy needs beyond the baseline LRU
     * bookkeeping (priced by the energy model like the resizing tag
     * extension). Must equal replacementPolicyStateBits(name()).
     */
    virtual unsigned extraStateBitsPerBlock() const { return 0; }

    /** Human-readable policy name. */
    virtual std::string name() const = 0;
};

/** True LRU via a global access stamp. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    ReplKind kind() const override { return ReplKind::Lru; }
    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    std::string name() const override { return "lru"; }

    /** The touch fast path: a fresh global stamp (inline). */
    std::uint64_t nextStamp() { return ++stamp_; }

  private:
    std::uint64_t stamp_ = 0;
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1);

    ReplKind kind() const override { return ReplKind::Random; }
    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    std::string name() const override { return "random"; }

    /** The victim fast path: a uniform way index (inline rng). */
    unsigned pickWay(std::size_t n_ways)
    {
        return static_cast<unsigned>(rng_.nextBelow(n_ways));
    }

  private:
    Rng rng_;
};

/**
 * FIFO: blocks are evicted in insertion order. Hits leave the
 * insertion stamp alone (the one behavioral difference from LRU), so
 * the policy needs no recency tracking at all — the classic
 * low-state baseline the paper-era resizable caches shipped with.
 */
class FifoPolicy final : public ReplacementPolicy
{
  public:
    std::uint64_t touch(std::uint64_t old_meta) override;
    std::uint64_t fill(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    std::string name() const override { return "fifo"; }

  private:
    std::uint64_t stamp_ = 0;
};

/**
 * Segmented LRU: fills land in a probationary segment; a hit promotes
 * to the protected segment. Victims come from the oldest probationary
 * block when one exists, shielding the protected segment from scans;
 * with every way protected the set degrades to plain LRU. One extra
 * metadata bit (the segment flag) rides above a 47-bit stamp.
 */
class SlruPolicy final : public ReplacementPolicy
{
  public:
    /** Segment flag: set = protected, clear = probationary. */
    static constexpr std::uint64_t protectedBit = std::uint64_t{1}
                                                  << 47;
    static constexpr std::uint64_t stampMask = protectedBit - 1;

    std::uint64_t touch(std::uint64_t old_meta) override;
    std::uint64_t fill(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    unsigned extraStateBitsPerBlock() const override { return 1; }
    std::string name() const override { return "slru"; }

  private:
    std::uint64_t nextStamp() { return ++stamp_ & stampMask; }

    std::uint64_t stamp_ = 0;
};

/**
 * W-TinyLFU: LRU ordering inside the set plus a CountMin frequency
 * sketch (freq_sketch.hh) deciding admission — a candidate only
 * displaces a valid victim when its estimated access frequency is at
 * least the victim's, so one-shot scan blocks stop evicting the hot
 * working set. The sketch sees every access via the access-stream
 * hook and ages itself periodically.
 */
class WTinyLfuPolicy final : public ReplacementPolicy
{
  public:
    /**
     * @param capacity_hint cache capacity in blocks (sizes the
     *        sketch)
     * @param seed sketch hash seed
     */
    explicit WTinyLfuPolicy(std::uint64_t capacity_hint,
                            std::uint64_t seed = 1);

    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    bool wantsAccessStream() const override { return true; }
    void recordAccess(Addr block_addr) override;
    bool admit(Addr incoming_block, Addr victim_block) override;
    unsigned extraStateBitsPerBlock() const override { return 32; }
    std::string name() const override { return "wtlfu"; }

    const CountMinSketch &sketch() const { return sketch_; }

  private:
    CountMinSketch sketch_;
    std::uint64_t stamp_ = 0;
};

/** @name Policy registry
 * The selectable policy names ("lru", "random", "fifo", "slru",
 * "wtlfu") shared by the factory, the [system] policy knob, the
 * sweep axis, and the CLI.
 */
/// @{

/** All selectable policy names, in canonical order. */
std::vector<std::string> replacementPolicyNames();

/** Is @p name a selectable policy? */
bool isReplacementPolicyName(const std::string &name);

/** The selectable names '|'-joined, for error messages. */
std::string replacementPolicyList();

/**
 * Per-block state bits of a policy beyond the LRU baseline (energy
 * pricing; 0 for lru/random/fifo, 1 for slru, 32 for wtlfu —
 * amortized sketch counters). Panics on an unknown name.
 */
unsigned replacementPolicyStateBits(const std::string &name);

/**
 * Factory by name; panics on an unknown name (validate with
 * isReplacementPolicyName first where the name is user input).
 * @param seed deterministic identity of this instance (rng streams,
 *        sketch hashes) — derive it from the owning cache so two
 *        caches never share a stream
 * @param capacity_hint cache capacity in blocks (sizes wtlfu's
 *        sketch; ignored by the others)
 */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(
    const std::string &name, std::uint64_t seed = 1,
    std::uint64_t capacity_hint = 0);
/// @}

} // namespace rcache

#endif // RCACHE_CACHE_REPLACEMENT_HH
