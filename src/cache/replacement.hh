/**
 * @file
 * Block replacement policies.
 *
 * Policies operate on an opaque per-block metadata word owned by the
 * cache; the policy decides how to update it on touch/fill and how to
 * pick a victim among the enabled ways of a set.
 *
 * Metadata contract: the cache stores metadata in 48 bits (its block
 * frames pack valid/dirty into the top bits of the same word), so
 * policies must keep values below 2^48. The built-ins comply by
 * construction — the LRU stamp would need ~2.8e14 touches to
 * overflow, and random ignores metadata entirely.
 */

#ifndef RCACHE_CACHE_REPLACEMENT_HH
#define RCACHE_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace rcache
{

/** Per-way view the policy sees when choosing a victim. */
struct ReplChoice
{
    bool valid;
    std::uint64_t meta;
};

/**
 * Discriminator the cache uses to dispatch the built-in policies
 * through an inline fast path instead of two virtual calls per
 * access. Custom subclasses report Custom and take the (still
 * correct, merely slower) virtual route.
 */
enum class ReplKind : std::uint8_t
{
    Lru,
    Random,
    Custom,
};

/** Abstract replacement policy. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Which inline fast path (if any) implements this policy. */
    virtual ReplKind kind() const { return ReplKind::Custom; }

    /** Metadata for a block just touched (hit) or filled. */
    virtual std::uint64_t touch(std::uint64_t old_meta) = 0;

    /**
     * Pick a victim way among the @p n @p ways (already restricted to
     * enabled ways). Invalid ways are preferred by the cache before
     * this is consulted, so all entries are valid when called.
     */
    virtual unsigned victim(const ReplChoice *ways, std::size_t n) = 0;

    /** Convenience overload for tests and callers holding a vector. */
    unsigned victim(const std::vector<ReplChoice> &ways)
    {
        return victim(ways.data(), ways.size());
    }

    /** Human-readable policy name. */
    virtual std::string name() const = 0;
};

/** True LRU via a global access stamp. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    ReplKind kind() const override { return ReplKind::Lru; }
    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    std::string name() const override { return "lru"; }

    /** The touch fast path: a fresh global stamp (inline). */
    std::uint64_t nextStamp() { return ++stamp_; }

  private:
    std::uint64_t stamp_ = 0;
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1);

    ReplKind kind() const override { return ReplKind::Random; }
    std::uint64_t touch(std::uint64_t old_meta) override;
    unsigned victim(const ReplChoice *ways, std::size_t n) override;
    using ReplacementPolicy::victim;
    std::string name() const override { return "random"; }

    /** The victim fast path: a uniform way index (inline rng). */
    unsigned pickWay(std::size_t n_ways)
    {
        return static_cast<unsigned>(rng_.nextBelow(n_ways));
    }

  private:
    Rng rng_;
};

/** Factory by name ("lru" or "random"); panics on unknown name. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(
    const std::string &name, std::uint64_t seed = 1);

} // namespace rcache

#endif // RCACHE_CACHE_REPLACEMENT_HH
