/**
 * @file
 * SharedL2: one unified L2 shared by N cores, with per-core
 * contention accounting.
 *
 * The multi-programmed system (sim/multi_core_system.hh) gives every
 * core a private L1 hierarchy and routes all of their L2 traffic
 * through one SharedL2. Functionally the shared cache behaves exactly
 * like a private Hierarchy-owned L2 — same geometry, same replacement,
 * same latency parameters — what this class adds is attribution:
 *
 *  - per-core access/hit/miss/memory-traffic counters, so the energy
 *    model can charge each core for the L2 switching it caused and
 *    reports can show who thrashed whom;
 *  - per-core occupancy (blocks currently resident, and the peak),
 *    maintained exactly via the owning Cache's eviction observer;
 *  - eviction attribution: when a fill evicts a resident block the
 *    eviction is classified self (victim belonged to the filling
 *    core) or cross-core (capacity stolen from another core) —
 *    the paper-style capacity-contention signal.
 *
 * Aggregation invariants (pinned by tests/cache/shared_l2_test.cc):
 * total accesses/hits/misses equal the per-core sums, and per core
 * fills - evictions == residentBlocks. All state is deterministic:
 * the interleave of access() calls fully determines every counter.
 *
 * Dirty L2 victims drain to memory and are charged to the core whose
 * fill evicted them (the access that caused the traffic), not to the
 * core that originally dirtied the block — the same convention the
 * single-core hierarchy uses for its owned L2.
 */

#ifndef RCACHE_CACHE_SHARED_L2_HH
#define RCACHE_CACHE_SHARED_L2_HH

#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace rcache
{

/** Outcome of one shared-L2 access, from the accessing core's view. */
struct SharedL2Outcome
{
    bool hit = false;
    /** The miss filled from memory (one memory read). */
    bool memRead = false;
    /** A dirty L2 victim drained to memory (one memory write). */
    bool memWrite = false;
};

/** Per-core attribution counters; see the file comment. */
struct SharedL2CoreStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Memory reads (fills) this core's misses caused. */
    std::uint64_t memReads = 0;
    /** Memory writes (dirty victims) this core's fills caused. */
    std::uint64_t memWrites = 0;
    /** Blocks this core brought into the L2. */
    std::uint64_t fills = 0;
    /** This core's blocks evicted by its own fills. */
    std::uint64_t evictionsBySelf = 0;
    /** This core's blocks evicted by another core's fills. */
    std::uint64_t evictionsByOthers = 0;
    /** Blocks of *other* cores this core's fills evicted. */
    std::uint64_t evictedOthers = 0;
    /** Blocks currently resident. */
    std::uint64_t residentBlocks = 0;
    /** High-water mark of residentBlocks. */
    std::uint64_t peakResidentBlocks = 0;
};

/** See file comment. */
class SharedL2
{
  public:
    /**
     * @param geom geometry of the shared cache
     * @param num_cores cores that will present accesses (core ids in
     *        [0, num_cores))
     */
    SharedL2(const CacheGeometry &geom, unsigned num_cores);

    /**
     * One block access on behalf of @p core. Misses allocate (and
     * count a memory read); dirty victims count a memory write. The
     * occupancy/eviction attribution updates ride on the cache's
     * eviction observer.
     */
    SharedL2Outcome access(unsigned core, Addr addr, bool is_write);

    /** The shared cache (geometry, aggregate stats, probe). */
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }

    unsigned numCores() const { return numCores_; }

    const SharedL2CoreStats &coreStats(unsigned core) const
    {
        rc_assert(core < numCores_);
        return stats_[core];
    }

    /** Sum of the per-core counters (equals the cache's aggregates;
     *  see the invariants in the file comment). */
    SharedL2CoreStats totals() const;

  private:
    void onEviction(Addr block_addr);

    Cache cache_;
    unsigned numCores_;
    std::vector<SharedL2CoreStats> stats_;
    /** Owner core of every resident block, keyed by byte address of
     *  the block (what the eviction observer reports). */
    std::unordered_map<Addr, unsigned> owner_;
    /** Core of the access in flight (valid only inside access()). */
    unsigned accessor_ = 0;
};

} // namespace rcache

#endif // RCACHE_CACHE_SHARED_L2_HH
