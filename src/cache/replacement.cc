#include "cache/replacement.hh"

#include "util/logging.hh"

namespace rcache
{

std::uint64_t
LruPolicy::touch(std::uint64_t)
{
    return nextStamp();
}

unsigned
LruPolicy::victim(const ReplChoice *ways, std::size_t n)
{
    rc_assert(n != 0);
    unsigned best = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (ways[i].meta < ways[best].meta)
            best = i;
    }
    return best;
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed)
{
}

std::uint64_t
RandomPolicy::touch(std::uint64_t old_meta)
{
    return old_meta;
}

unsigned
RandomPolicy::victim(const ReplChoice *, std::size_t n)
{
    rc_assert(n != 0);
    return pickWay(n);
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>(seed);
    rc_panic("unknown replacement policy: " + name);
}

} // namespace rcache
