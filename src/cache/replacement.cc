#include "cache/replacement.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rcache
{

std::uint64_t
LruPolicy::touch(std::uint64_t)
{
    return nextStamp();
}

unsigned
LruPolicy::victim(const ReplChoice *ways, std::size_t n)
{
    rc_assert(n != 0);
    unsigned best = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (ways[i].meta < ways[best].meta)
            best = i;
    }
    return best;
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed)
{
}

std::uint64_t
RandomPolicy::touch(std::uint64_t old_meta)
{
    return old_meta;
}

unsigned
RandomPolicy::victim(const ReplChoice *, std::size_t n)
{
    rc_assert(n != 0);
    return pickWay(n);
}

std::uint64_t
FifoPolicy::touch(std::uint64_t old_meta)
{
    // Hits do not refresh the insertion order.
    return old_meta;
}

std::uint64_t
FifoPolicy::fill(std::uint64_t)
{
    return ++stamp_;
}

unsigned
FifoPolicy::victim(const ReplChoice *ways, std::size_t n)
{
    rc_assert(n != 0);
    unsigned best = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (ways[i].meta < ways[best].meta)
            best = i;
    }
    return best;
}

std::uint64_t
SlruPolicy::touch(std::uint64_t)
{
    // Any hit promotes into (or refreshes within) the protected
    // segment.
    return protectedBit | nextStamp();
}

std::uint64_t
SlruPolicy::fill(std::uint64_t)
{
    // Fills start probationary.
    return nextStamp();
}

unsigned
SlruPolicy::victim(const ReplChoice *ways, std::size_t n)
{
    rc_assert(n != 0);
    // Oldest probationary way if any exists; otherwise the set is
    // fully protected and the oldest protected way goes (plain LRU).
    unsigned best = 0;
    bool best_prob = false;
    for (unsigned i = 0; i < n; ++i) {
        const bool prob = !(ways[i].meta & protectedBit);
        const std::uint64_t stamp = ways[i].meta & stampMask;
        if (i == 0 || (prob && !best_prob) ||
            (prob == best_prob &&
             stamp < (ways[best].meta & stampMask))) {
            best = i;
            best_prob = prob;
        }
    }
    return best;
}

WTinyLfuPolicy::WTinyLfuPolicy(std::uint64_t capacity_hint,
                               std::uint64_t seed)
    : sketch_(capacity_hint, seed)
{
}

std::uint64_t
WTinyLfuPolicy::touch(std::uint64_t)
{
    return ++stamp_;
}

unsigned
WTinyLfuPolicy::victim(const ReplChoice *ways, std::size_t n)
{
    rc_assert(n != 0);
    unsigned best = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (ways[i].meta < ways[best].meta)
            best = i;
    }
    return best;
}

void
WTinyLfuPolicy::recordAccess(Addr block_addr)
{
    sketch_.increment(block_addr);
}

bool
WTinyLfuPolicy::admit(Addr incoming_block, Addr victim_block)
{
    // The candidate was just recorded (its access preceded this
    // admission check), so a brand-new block estimates >= 1 and ties
    // admit — keeping a pure LRU tie-break for equal frequencies.
    return sketch_.estimate(incoming_block) >=
           sketch_.estimate(victim_block);
}

std::vector<std::string>
replacementPolicyNames()
{
    return {"lru", "random", "fifo", "slru", "wtlfu"};
}

bool
isReplacementPolicyName(const std::string &name)
{
    const auto names = replacementPolicyNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::string
replacementPolicyList()
{
    std::string out;
    for (const std::string &n : replacementPolicyNames()) {
        if (!out.empty())
            out += '|';
        out += n;
    }
    return out;
}

unsigned
replacementPolicyStateBits(const std::string &name)
{
    if (name == "lru" || name == "random" || name == "fifo")
        return 0;
    if (name == "slru")
        return 1;
    if (name == "wtlfu")
        return 32;
    rc_panic("unknown replacement policy: " + name);
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed,
                      std::uint64_t capacity_hint)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>(seed);
    if (name == "fifo")
        return std::make_unique<FifoPolicy>();
    if (name == "slru")
        return std::make_unique<SlruPolicy>();
    if (name == "wtlfu")
        return std::make_unique<WTinyLfuPolicy>(capacity_hint, seed);
    rc_panic("unknown replacement policy: " + name);
}

} // namespace rcache
