#include "cache/replacement.hh"

#include "util/logging.hh"

namespace rcache
{

std::uint64_t
LruPolicy::touch(std::uint64_t)
{
    return ++stamp_;
}

unsigned
LruPolicy::victim(const std::vector<ReplChoice> &ways)
{
    rc_assert(!ways.empty());
    unsigned best = 0;
    for (unsigned i = 1; i < ways.size(); ++i) {
        if (ways[i].meta < ways[best].meta)
            best = i;
    }
    return best;
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed)
{
}

std::uint64_t
RandomPolicy::touch(std::uint64_t old_meta)
{
    return old_meta;
}

unsigned
RandomPolicy::victim(const std::vector<ReplChoice> &ways)
{
    rc_assert(!ways.empty());
    return static_cast<unsigned>(rng_.nextBelow(ways.size()));
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>(seed);
    rc_panic("unknown replacement policy: " + name);
}

} // namespace rcache
