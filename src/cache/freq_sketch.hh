/**
 * @file
 * CountMin frequency sketch with periodic aging — the admission
 * frequency estimator behind the W-TinyLFU replacement policy.
 *
 * Four rows of saturating 8-bit counters, one row-local hash each;
 * an item's estimate is the minimum over its four counters (classic
 * conservative CountMin bound). The width is sized from the cache's
 * block capacity so collisions stay rare at working-set scale, and
 * every sampleWindow() recorded accesses all counters are halved,
 * aging stale popularity out so the sketch tracks the recent access
 * distribution instead of the all-time one (the TinyLFU "reset"
 * operation).
 *
 * Deterministic: hashes are fixed mixes of (key, row, seed), so equal
 * seeds and access streams give equal estimates everywhere.
 */

#ifndef RCACHE_CACHE_FREQ_SKETCH_HH
#define RCACHE_CACHE_FREQ_SKETCH_HH

#include <cstdint>
#include <vector>

namespace rcache
{

/** See file comment. */
class CountMinSketch
{
  public:
    /**
     * @param capacity_hint items the protected store holds (cache
     *        blocks); the width is the next power of two >=
     *        max(1024, capacity_hint)
     * @param seed hash seed (equal seeds, equal sketches)
     */
    explicit CountMinSketch(std::uint64_t capacity_hint,
                            std::uint64_t seed = 1);

    /** Record one access; ages all counters every sampleWindow(). */
    void increment(std::uint64_t key);

    /** Frequency estimate (min over rows); never underestimates the
     *  true in-window count, modulo aging. */
    unsigned estimate(std::uint64_t key) const;

    /** Halve every counter (the aging step; public for tests). */
    void halve();

    /** Counters per row (power of two). */
    std::uint64_t width() const { return mask_ + 1; }
    /** Recorded accesses between aging steps. */
    std::uint64_t sampleWindow() const { return window_; }
    /** Accesses recorded since the last aging step. */
    std::uint64_t recorded() const { return recorded_; }
    /** Bytes held (for memory accounting). */
    std::size_t residentBytes() const { return counters_.size(); }

  private:
    static constexpr unsigned rows = 4;

    std::uint64_t rowIndex(unsigned row, std::uint64_t key) const;

    std::uint64_t mask_;
    std::uint64_t window_;
    std::uint64_t seed_;
    std::uint64_t recorded_ = 0;
    /** rows x width, row-major. */
    std::vector<std::uint8_t> counters_;
};

} // namespace rcache

#endif // RCACHE_CACHE_FREQ_SKETCH_HH
