#include "cache/hierarchy.hh"

namespace rcache
{

Hierarchy::Hierarchy(Cache *il1, Cache *dl1,
                     const CacheGeometry &l2_geom,
                     const HierarchyParams &params)
    : il1_(il1), dl1_(dl1), l2_("l2", l2_geom), params_(params)
{
    rc_assert(il1_ && dl1_);
}

std::uint64_t
Hierarchy::memPenalty() const
{
    return params_.l2Latency + params_.memBaseLatency +
           params_.memCyclesPer8Bytes *
               (l2_.geometry().blockSize / 8);
}

bool
Hierarchy::l2Access(Addr addr, bool is_write)
{
    AccessResult r = l2_.access(addr, is_write);
    if (!r.hit)
        ++memReads_; // block fill from memory
    if (r.writeback)
        ++memWrites_; // dirty L2 victim drains to memory
    return r.hit;
}

WritebackSink
Hierarchy::l1WritebackSink()
{
    return [this](Addr block_addr) { l2Access(block_addr, true); };
}

void
Hierarchy::resetStats()
{
    l2_.resetStats();
    memReads_.reset();
    memWrites_.reset();
}

} // namespace rcache
