#include "cache/hierarchy.hh"

namespace rcache
{

Hierarchy::Hierarchy(Cache *il1, Cache *dl1,
                     const CacheGeometry &l2_geom,
                     const HierarchyParams &params)
    : il1_(il1),
      dl1_(dl1),
      ownedL2_(std::make_unique<Cache>("l2", l2_geom)),
      l2_(ownedL2_.get()),
      params_(params)
{
    rc_assert(il1_ && dl1_);
}

Hierarchy::Hierarchy(Cache *il1, Cache *dl1, SharedL2 &shared_l2,
                     unsigned core_id, const HierarchyParams &params)
    : il1_(il1),
      dl1_(dl1),
      l2_(&shared_l2.cache()),
      sharedL2_(&shared_l2),
      coreId_(core_id),
      params_(params)
{
    rc_assert(il1_ && dl1_);
    rc_assert(core_id < shared_l2.numCores());
}

std::uint64_t
Hierarchy::memPenalty() const
{
    return params_.l2Latency + params_.memBaseLatency +
           params_.memCyclesPer8Bytes *
               (l2_->geometry().blockSize / 8);
}

bool
Hierarchy::l2Access(Addr addr, bool is_write)
{
    if (sharedL2_) {
        const SharedL2Outcome r =
            sharedL2_->access(coreId_, addr, is_write);
        if (r.memRead)
            ++memReads_;
        if (r.memWrite)
            ++memWrites_;
        return r.hit;
    }
    AccessResult r = l2_->access(addr, is_write);
    if (!r.hit)
        ++memReads_; // block fill from memory
    if (r.writeback)
        ++memWrites_; // dirty L2 victim drains to memory
    return r.hit;
}

WritebackSink
Hierarchy::l1WritebackSink()
{
    return [this](Addr block_addr) { l2Access(block_addr, true); };
}

void
Hierarchy::resetStats()
{
    // The shared L2's stats span all cores; resetting it from one
    // core's hierarchy would silently clobber the others' history.
    if (!sharedL2_)
        l2_->resetStats();
    memReads_.reset();
    memWrites_.reset();
}

} // namespace rcache
