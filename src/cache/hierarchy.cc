#include "cache/hierarchy.hh"

namespace rcache
{

Hierarchy::Hierarchy(Cache *il1, Cache *dl1,
                     const CacheGeometry &l2_geom,
                     const HierarchyParams &params)
    : il1_(il1), dl1_(dl1), l2_("l2", l2_geom), params_(params)
{
    rc_assert(il1_ && dl1_);
}

std::uint64_t
Hierarchy::memPenalty() const
{
    return params_.l2Latency + params_.memBaseLatency +
           params_.memCyclesPer8Bytes *
               (l2_.geometry().blockSize / 8);
}

bool
Hierarchy::l2Access(Addr addr, bool is_write)
{
    AccessResult r = l2_.access(addr, is_write);
    if (!r.hit)
        ++memReads_; // block fill from memory
    if (r.writeback)
        ++memWrites_; // dirty L2 victim drains to memory
    return r.hit;
}

MemAccessResult
Hierarchy::instAccess(Addr addr)
{
    MemAccessResult out;
    AccessResult l1 = il1_->access(addr, false);
    out.l1Hit = l1.hit;
    out.latency = params_.l1Latency;
    // Instruction blocks are never dirty, so no writeback possible.
    if (!l1.hit) {
        out.l2Hit = l2Access(addr, false);
        out.latency += out.l2Hit ? params_.l2Latency : memPenalty();
    }
    return out;
}

MemAccessResult
Hierarchy::dataAccess(Addr addr, bool is_write)
{
    MemAccessResult out;
    AccessResult l1 = dl1_->access(addr, is_write);
    out.l1Hit = l1.hit;
    out.latency = params_.l1Latency;
    if (!l1.hit) {
        out.l2Hit = l2Access(addr, false);
        out.latency += out.l2Hit ? params_.l2Latency : memPenalty();
    }
    if (l1.writeback) {
        out.writeback = true;
        l2Access(l1.writebackAddr, true);
    }
    return out;
}

WritebackSink
Hierarchy::l1WritebackSink()
{
    return [this](Addr block_addr) { l2Access(block_addr, true); };
}

void
Hierarchy::resetStats()
{
    l2_.resetStats();
    memReads_.reset();
    memWrites_.reset();
}

} // namespace rcache
