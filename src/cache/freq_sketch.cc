#include "cache/freq_sketch.hh"

#include <algorithm>

#include "util/bitops.hh"

namespace rcache
{

namespace
{

/** splitmix64 finalizer: a cheap, well-mixed 64-bit hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

CountMinSketch::CountMinSketch(std::uint64_t capacity_hint,
                               std::uint64_t seed)
    : mask_(nextPow2(std::max<std::uint64_t>(1024, capacity_hint)) -
            1),
      window_(16 * (mask_ + 1)),
      seed_(seed),
      counters_(rows * (mask_ + 1), 0)
{
}

std::uint64_t
CountMinSketch::rowIndex(unsigned row, std::uint64_t key) const
{
    return row * (mask_ + 1) +
           (mix64(key ^ mix64(seed_ + row)) & mask_);
}

void
CountMinSketch::increment(std::uint64_t key)
{
    for (unsigned r = 0; r < rows; ++r) {
        std::uint8_t &c = counters_[rowIndex(r, key)];
        if (c < 255)
            ++c;
    }
    if (++recorded_ >= window_)
        halve();
}

unsigned
CountMinSketch::estimate(std::uint64_t key) const
{
    unsigned est = 255;
    for (unsigned r = 0; r < rows; ++r)
        est = std::min<unsigned>(est, counters_[rowIndex(r, key)]);
    return est;
}

void
CountMinSketch::halve()
{
    for (std::uint8_t &c : counters_)
        c = static_cast<std::uint8_t>(c >> 1);
    // Halving the recorded count too (not zeroing) keeps the window
    // in step with the surviving counter mass, per the TinyLFU reset.
    recorded_ >>= 1;
}

} // namespace rcache
