#include "cache/cache.hh"

#include <sstream>

namespace rcache
{

std::string
CacheGeometry::validate() const
{
    std::ostringstream err;
    if (!isPowerOfTwo(size))
        err << "size " << size << " not a power of two; ";
    if (assoc == 0 || size % assoc != 0)
        err << "assoc " << assoc << " does not divide size; ";
    if (!isPowerOfTwo(blockSize))
        err << "blockSize " << blockSize << " not a power of two; ";
    if (!isPowerOfTwo(subarraySize))
        err << "subarraySize " << subarraySize
            << " not a power of two; ";
    if (assoc && size % assoc == 0) {
        if (waySize() % subarraySize != 0)
            err << "subarraySize does not divide way size; ";
        if (subarraySize % blockSize != 0)
            err << "blockSize does not divide subarraySize; ";
        if (!isPowerOfTwo(numSets()))
            err << "numSets not a power of two; ";
    }
    return err.str();
}

Cache::Cache(const std::string &name, const CacheGeometry &geom,
             std::unique_ptr<ReplacementPolicy> policy)
    : name_(name),
      geom_(geom),
      policy_(policy ? std::move(policy)
                     : std::make_unique<LruPolicy>()),
      enabledSets_(geom.numSets()),
      enabledWays_(geom.assoc),
      blocks_(geom.numSets() * geom.assoc),
      stats_(name)
{
    std::string err = geom_.validate();
    if (!err.empty())
        rc_fatal("cache " + name_ + ": invalid geometry: " + err);

    stats_.addCounter("accesses", &accesses_, "total accesses");
    stats_.addCounter("misses", &misses_, "total misses");
    stats_.addCounter("writebacks", &writebacks_,
                      "dirty evictions from normal fills");
    stats_.addCounter("prechargeSubarrayEvents", &prechargeEvents_,
                      "sum of enabled subarrays over accesses");
    stats_.addCounter("wayReadEvents", &wayReads_,
                      "sum of ways read over accesses");
    stats_.addCounter("resizes", &resizes_, "resize operations");
    stats_.addCounter("flushInvalidations", &flushInvalidations_,
                      "blocks invalidated by resizes/flushes");
    stats_.addCounter("flushWritebacks", &flushWritebacks_,
                      "dirty blocks written back by resizes/flushes");
    stats_.addFormula(
        "missRatio", [this]() { return missRatio(); },
        "misses / accesses");
}

unsigned
Cache::enabledSubarrays() const
{
    // Each way keeps at least one subarray enabled; above that the
    // enabled sets of a way span ceil(sets*blockSize / subarraySize)
    // subarrays (always exact because legal set counts are powers of
    // two >= setsPerSubarray).
    std::uint64_t bytes_per_way = enabledSets_ * geom_.blockSize;
    std::uint64_t per_way =
        std::max<std::uint64_t>(1, bytes_per_way / geom_.subarraySize);
    return static_cast<unsigned>(per_way * enabledWays_);
}

AccessResult
Cache::access(Addr addr, bool is_write)
{
    ++accesses_;
    prechargeEvents_ += enabledSubarrays();
    wayReads_ += enabledWays_;

    AccessResult res;
    const Addr block_addr = addr >> geom_.blockBits();
    const std::uint64_t set = indexOf(block_addr);

    // Hit path: search enabled ways for a tag match.
    for (unsigned w = 0; w < enabledWays_; ++w) {
        Block &b = blockAt(set, w);
        if (b.valid && b.blockAddr == block_addr) {
            b.replMeta = policy_->touch(b.replMeta);
            b.dirty = b.dirty || is_write;
            res.hit = true;
            return res;
        }
    }

    // Miss: allocate. Prefer an invalid enabled way.
    ++misses_;
    unsigned victim_way = enabledWays_;
    for (unsigned w = 0; w < enabledWays_; ++w) {
        if (!blockAt(set, w).valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == enabledWays_) {
        std::vector<ReplChoice> choices;
        choices.reserve(enabledWays_);
        for (unsigned w = 0; w < enabledWays_; ++w) {
            const Block &b = blockAt(set, w);
            choices.push_back({b.valid, b.replMeta});
        }
        victim_way = policy_->victim(choices);
        rc_assert(victim_way < enabledWays_);
    }

    Block &victim = blockAt(set, victim_way);
    if (victim.valid && victim.dirty) {
        ++writebacks_;
        res.writeback = true;
        res.writebackAddr = victim.blockAddr << geom_.blockBits();
    }

    victim.valid = true;
    victim.dirty = is_write;
    victim.blockAddr = block_addr;
    victim.replMeta = policy_->touch(victim.replMeta);
    return res;
}

bool
Cache::probe(Addr addr) const
{
    const Addr block_addr = addr >> geom_.blockBits();
    const std::uint64_t set = indexOf(block_addr);
    for (unsigned w = 0; w < enabledWays_; ++w) {
        const Block &b = blockAt(set, w);
        if (b.valid && b.blockAddr == block_addr)
            return true;
    }
    return false;
}

void
Cache::evict(Block &b, const WritebackSink &sink, FlushResult &out)
{
    if (!b.valid)
        return;
    ++out.invalidated;
    ++flushInvalidations_;
    if (b.dirty) {
        ++out.writebacks;
        ++flushWritebacks_;
        if (sink)
            sink(b.blockAddr << geom_.blockBits());
    }
    b.valid = false;
    b.dirty = false;
}

FlushResult
Cache::resizeTo(std::uint64_t enabled_sets, unsigned enabled_ways,
                const WritebackSink &sink)
{
    rc_assert(isPowerOfTwo(enabled_sets));
    rc_assert(enabled_sets >= geom_.minSets() &&
              enabled_sets <= geom_.numSets());
    rc_assert(enabled_ways >= 1 && enabled_ways <= geom_.assoc);

    FlushResult out;
    if (enabled_sets == enabledSets_ && enabled_ways == enabledWays_)
        return out;

    ++resizes_;

    const std::uint64_t old_sets = enabledSets_;
    const unsigned old_ways = enabledWays_;

    // 1. Ways being disabled: flush their blocks in enabled sets.
    for (std::uint64_t s = 0; s < old_sets; ++s)
        for (unsigned w = enabled_ways; w < old_ways; ++w)
            evict(blockAt(s, w), sink, out);

    // 2. Sets being disabled (downsizing): flush everything there.
    for (std::uint64_t s = enabled_sets; s < old_sets; ++s)
        for (unsigned w = 0; w < std::min(old_ways, enabled_ways); ++w)
            evict(blockAt(s, w), sink, out);

    // 3. Sets being enabled (upsizing): surviving blocks whose index
    //    changes under the wider set mask can no longer be found;
    //    flush them, clean or dirty, as the paper requires.
    if (enabled_sets > old_sets) {
        for (std::uint64_t s = 0; s < old_sets; ++s) {
            for (unsigned w = 0; w < std::min(old_ways, enabled_ways);
                 ++w) {
                Block &b = blockAt(s, w);
                if (b.valid &&
                    (b.blockAddr & (enabled_sets - 1)) != s) {
                    evict(b, sink, out);
                }
            }
        }
    }

    enabledSets_ = enabled_sets;
    enabledWays_ = enabled_ways;
    return out;
}

FlushResult
Cache::flushAll(const WritebackSink &sink)
{
    FlushResult out;
    for (auto &b : blocks_)
        evict(b, sink, out);
    return out;
}

void
Cache::accumulateEnabledTime(std::uint64_t now_cycle)
{
    // Notification cycles from an out-of-order core are only mostly
    // monotonic; clamp instead of asserting.
    if (now_cycle <= lastAccountedCycle_)
        return;
    byteCycles_ += static_cast<double>(enabledSize()) *
                   static_cast<double>(now_cycle - lastAccountedCycle_);
    lastAccountedCycle_ = now_cycle;
}

void
Cache::resetStats()
{
    accesses_.reset();
    misses_.reset();
    writebacks_.reset();
    prechargeEvents_.reset();
    wayReads_.reset();
    resizes_.reset();
    flushInvalidations_.reset();
    flushWritebacks_.reset();
    byteCycles_ = 0;
    lastAccountedCycle_ = 0;
}

bool
Cache::checkInvariants() const
{
    for (std::uint64_t s = 0; s < geom_.numSets(); ++s) {
        for (unsigned w = 0; w < geom_.assoc; ++w) {
            const Block &b = blockAt(s, w);
            if (!b.valid)
                continue;
            if (s >= enabledSets_ || w >= enabledWays_)
                return false; // valid block in a disabled frame
            if (indexOf(b.blockAddr) != s)
                return false; // block not findable at its set
        }
    }
    return true;
}

} // namespace rcache
