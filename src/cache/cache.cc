#include "cache/cache.hh"

#include <sstream>

namespace rcache
{

std::string
CacheGeometry::validate() const
{
    std::ostringstream err;
    if (!isPowerOfTwo(size))
        err << "size " << size << " not a power of two; ";
    if (assoc == 0 || size % assoc != 0)
        err << "assoc " << assoc << " does not divide size; ";
    if (!isPowerOfTwo(blockSize))
        err << "blockSize " << blockSize << " not a power of two; ";
    if (!isPowerOfTwo(subarraySize))
        err << "subarraySize " << subarraySize
            << " not a power of two; ";
    if (assoc && size % assoc == 0) {
        if (waySize() % subarraySize != 0)
            err << "subarraySize does not divide way size; ";
        if (subarraySize % blockSize != 0)
            err << "blockSize does not divide subarraySize; ";
        if (!isPowerOfTwo(numSets()))
            err << "numSets not a power of two; ";
    }
    return err.str();
}

Cache::Cache(const std::string &name, const CacheGeometry &geom,
             std::unique_ptr<ReplacementPolicy> policy)
    : name_(name),
      geom_(geom),
      policy_(policy ? std::move(policy)
                     : std::make_unique<LruPolicy>()),
      enabledSets_(geom.numSets()),
      enabledWays_(geom.assoc),
      blocks_(geom.numSets() * geom.assoc),
      stats_(name)
{
    std::string err = geom_.validate();
    if (!err.empty())
        rc_fatal("cache " + name_ + ": invalid geometry: " + err);

    blockBits_ = geom_.blockBits();
    updateAccessConstants();

    stats_.addCounter("accesses", &accesses_, "total accesses");
    stats_.addCounter("misses", &misses_, "total misses");
    stats_.addCounter("writebacks", &writebacks_,
                      "dirty evictions from normal fills");
    stats_.addCounter("prechargeSubarrayEvents", &prechargeEvents_,
                      "sum of enabled subarrays over accesses");
    stats_.addCounter("wayReadEvents", &wayReads_,
                      "sum of ways read over accesses");
    stats_.addCounter("resizes", &resizes_, "resize operations");
    stats_.addCounter("flushInvalidations", &flushInvalidations_,
                      "blocks invalidated by resizes/flushes");
    stats_.addCounter("flushWritebacks", &flushWritebacks_,
                      "dirty blocks written back by resizes/flushes");
    stats_.addFormula(
        "missRatio", [this]() { return missRatio(); },
        "misses / accesses");
}

void
Cache::updateAccessConstants()
{
    setMask_ = enabledSets_ - 1;

    // Each way keeps at least one subarray enabled; above that the
    // enabled sets of a way span ceil(sets*blockSize / subarraySize)
    // subarrays (always exact because legal set counts are powers of
    // two >= setsPerSubarray). Recomputed only on resize so the
    // per-access path pays neither the division nor the branches.
    const std::uint64_t bytes_per_way = enabledSets_ * geom_.blockSize;
    const std::uint64_t per_way =
        std::max<std::uint64_t>(1, bytes_per_way / geom_.subarraySize);
    enabledSubarrays_ = static_cast<unsigned>(per_way * enabledWays_);

    replKind_ = policy_->kind();
    lruFast_ = replKind_ == ReplKind::Lru
                   ? static_cast<LruPolicy *>(policy_.get())
                   : nullptr;
    rndFast_ = replKind_ == ReplKind::Random
                   ? static_cast<RandomPolicy *>(policy_.get())
                   : nullptr;
    wantsAccessStream_ = policy_->wantsAccessStream();
}

unsigned
Cache::victimWay(const Block *row)
{
    switch (replKind_) {
      case ReplKind::Lru: {
        // Inline LRU scan straight over the blocks: no choice
        // marshalling, no virtual call.
        unsigned best = 0;
        for (unsigned w = 1; w < enabledWays_; ++w) {
            if (row[w].replMeta() < row[best].replMeta())
                best = w;
        }
        return best;
      }
      case ReplKind::Random:
        return rndFast_->pickWay(enabledWays_);
      case ReplKind::Custom:
        break;
    }

    // Generic policies see the classic per-way view, marshalled into
    // a fixed stack buffer (no per-eviction allocation) unless the
    // configuration is wider than any we model.
    constexpr unsigned stack_ways = 64;
    ReplChoice stack_buf[stack_ways];
    std::vector<ReplChoice> heap_buf;
    ReplChoice *choices = stack_buf;
    if (enabledWays_ > stack_ways) {
        heap_buf.resize(enabledWays_);
        choices = heap_buf.data();
    }
    for (unsigned w = 0; w < enabledWays_; ++w)
        choices[w] = {row[w].valid(), row[w].replMeta()};
    return policy_->victim(choices, enabledWays_);
}

AccessResult
Cache::fillOnMiss(Block *row, Addr block_addr, bool is_write)
{
    AccessResult res;

    // Miss: allocate. Prefer an invalid enabled way.
    ++misses_;
    unsigned victim_way = enabledWays_;
    for (unsigned w = 0; w < enabledWays_; ++w) {
        if (!row[w].valid()) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == enabledWays_) {
        victim_way = victimWay(row);
        rc_assert(victim_way < enabledWays_);
        // Admission-gated policies may refuse the exchange: the miss
        // stands, the victim stays, nothing is written back. Only the
        // Custom path can gate (the built-ins always admit).
        if (replKind_ == ReplKind::Custom &&
            !policy_->admit(block_addr, row[victim_way].blockAddr))
            return res;
    }

    Block &victim = row[victim_way];
    if (victim.valid()) {
        if (victim.dirty()) {
            ++writebacks_;
            res.writeback = true;
            res.writebackAddr = victim.blockAddr << blockBits_;
        }
        if (evictionObserver_)
            evictionObserver_(victim.blockAddr << blockBits_,
                              victim.dirty());
    }

    victim.blockAddr = block_addr;
    victim.fill(is_write, fillMeta(victim.replMeta()));
    return res;
}

bool
Cache::probe(Addr addr) const
{
    const Addr block_addr = addr >> geom_.blockBits();
    const std::uint64_t set = indexOf(block_addr);
    for (unsigned w = 0; w < enabledWays_; ++w) {
        const Block &b = blockAt(set, w);
        if (b.valid() && b.blockAddr == block_addr)
            return true;
    }
    return false;
}

void
Cache::evict(Block &b, const WritebackSink &sink, FlushResult &out)
{
    if (!b.valid())
        return;
    ++out.invalidated;
    ++flushInvalidations_;
    if (b.dirty()) {
        ++out.writebacks;
        ++flushWritebacks_;
        if (sink)
            sink(b.blockAddr << geom_.blockBits());
    }
    if (evictionObserver_)
        evictionObserver_(b.blockAddr << geom_.blockBits(), b.dirty());
    b.clearValidDirty();
}

FlushResult
Cache::resizeTo(std::uint64_t enabled_sets, unsigned enabled_ways,
                const WritebackSink &sink)
{
    rc_assert(isPowerOfTwo(enabled_sets));
    rc_assert(enabled_sets >= geom_.minSets() &&
              enabled_sets <= geom_.numSets());
    rc_assert(enabled_ways >= 1 && enabled_ways <= geom_.assoc);

    FlushResult out;
    if (enabled_sets == enabledSets_ && enabled_ways == enabledWays_)
        return out;

    ++resizes_;

    const std::uint64_t old_sets = enabledSets_;
    const unsigned old_ways = enabledWays_;

    // 1. Ways being disabled: flush their blocks in enabled sets.
    for (std::uint64_t s = 0; s < old_sets; ++s)
        for (unsigned w = enabled_ways; w < old_ways; ++w)
            evict(blockAt(s, w), sink, out);

    // 2. Sets being disabled (downsizing): flush everything there.
    for (std::uint64_t s = enabled_sets; s < old_sets; ++s)
        for (unsigned w = 0; w < std::min(old_ways, enabled_ways); ++w)
            evict(blockAt(s, w), sink, out);

    // 3. Sets being enabled (upsizing): surviving blocks whose index
    //    changes under the wider set mask can no longer be found;
    //    flush them, clean or dirty, as the paper requires.
    if (enabled_sets > old_sets) {
        for (std::uint64_t s = 0; s < old_sets; ++s) {
            for (unsigned w = 0; w < std::min(old_ways, enabled_ways);
                 ++w) {
                Block &b = blockAt(s, w);
                if (b.valid() &&
                    (b.blockAddr & (enabled_sets - 1)) != s) {
                    evict(b, sink, out);
                }
            }
        }
    }

    enabledSets_ = enabled_sets;
    enabledWays_ = enabled_ways;
    updateAccessConstants();
    return out;
}

FlushResult
Cache::flushAll(const WritebackSink &sink)
{
    FlushResult out;
    for (auto &b : blocks_)
        evict(b, sink, out);
    return out;
}

void
Cache::accumulateEnabledTime(std::uint64_t now_cycle)
{
    // Notification cycles from an out-of-order core are only mostly
    // monotonic; clamp instead of asserting.
    if (now_cycle <= lastAccountedCycle_)
        return;
    byteCycles_ += static_cast<double>(enabledSize()) *
                   static_cast<double>(now_cycle - lastAccountedCycle_);
    lastAccountedCycle_ = now_cycle;
}

void
Cache::resetStats()
{
    accesses_.reset();
    misses_.reset();
    writebacks_.reset();
    prechargeEvents_.reset();
    wayReads_.reset();
    resizes_.reset();
    flushInvalidations_.reset();
    flushWritebacks_.reset();
    byteCycles_ = 0;
    lastAccountedCycle_ = 0;
}

bool
Cache::checkInvariants() const
{
    for (std::uint64_t s = 0; s < geom_.numSets(); ++s) {
        for (unsigned w = 0; w < geom_.assoc; ++w) {
            const Block &b = blockAt(s, w);
            if (!b.valid())
                continue;
            if (s >= enabledSets_ || w >= enabledWays_)
                return false; // valid block in a disabled frame
            if (indexOf(b.blockAddr) != s)
                return false; // block not findable at its set
        }
    }
    return true;
}

} // namespace rcache
