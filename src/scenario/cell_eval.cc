#include "scenario/cell_eval.hh"

#include <sstream>

#include "util/logging.hh"
#include "workload/profiles.hh"

namespace rcache
{

std::vector<AppEntry>
resolveApps(const ScenarioSpec &spec, std::string *err)
{
    std::vector<AppEntry> apps;
    if (spec.apps.empty()) {
        for (BenchmarkProfile &p : spec2000Suite()) {
            AppEntry entry;
            entry.name = p.name;
            entry.mix = {std::move(p)};
            apps.push_back(std::move(entry));
        }
        return apps;
    }
    for (const std::string &name : spec.apps) {
        auto mix = mixByName(name, err);
        if (!mix)
            return {};
        apps.push_back({name, std::move(*mix)});
    }
    return apps;
}

EffectiveWorkload
effectiveWorkload(const AppEntry &entry, const DesignPoint &p)
{
    EffectiveWorkload eff;
    if (p.mix.empty()) {
        eff.mix = entry.mix;
        eff.label = entry.mix.front();
        eff.label.name = entry.name;
    } else {
        // Validated by ParamSpace::build; failure here is a bug.
        auto mix = mixByName(p.mix);
        rc_assert(mix);
        eff.mix = std::move(*mix);
        eff.label = eff.mix.front();
        eff.label.name = p.mix;
    }
    return eff;
}

void
attachMix(std::vector<RunJob>::iterator begin,
          std::vector<RunJob>::iterator end,
          const EffectiveWorkload &eff)
{
    if (eff.mix.size() <= 1)
        return;
    for (auto it = begin; it != end; ++it)
        it->mixProfiles = eff.mix;
}

CacheSide
cacheSideOf(SweepSide side)
{
    return side == SweepSide::ICache ? CacheSide::ICache
                                     : CacheSide::DCache;
}

std::string
baselineKey(const SystemConfig &cfg, const EngineSpec &engine,
            const std::string &workload)
{
    std::ostringstream os;
    os << workload << '|' << systemConfigKey(cfg) << '|'
       << engineName(engine.mode) << '|'
       << engine.sampling.intervalInsts << '|'
       << engine.sampling.detailedInsts << '|'
       << engine.sampling.warmupInsts;
    return os.str();
}

SweepRecord
cellRecord(std::size_t cell, const std::string &app,
           const DesignPoint &p, const SearchOutcome &out)
{
    SweepRecord r;
    r.cell = cell;
    r.app = app;
    r.org = organizationToken(p.org);
    r.strategy = strategyName(p.strategy);
    r.side = sweepSideName(p.side);
    r.axes = p.axes;
    r.bestLevel = out.bestLevel;
    if (p.strategy == Strategy::Dynamic) {
        r.intervalAccesses = out.bestParams.intervalAccesses;
        r.missBound = out.bestParams.missBound;
        r.sizeBoundBytes = out.bestParams.sizeBoundBytes;
    }
    r.edReductionPct = out.edReductionPct();
    r.perfDegradationPct = out.perfDegradationPct();
    if (p.side == SweepSide::Both) {
        const double full =
            out.baseline.avgIl1Bytes + out.baseline.avgDl1Bytes;
        r.sizeReductionPct =
            full == 0 ? 0
                      : 100.0 * (1.0 - (out.best.avgIl1Bytes +
                                        out.best.avgDl1Bytes) /
                                           full);
    } else {
        r.sizeReductionPct = out.sizeReductionPct(cacheSideOf(p.side));
    }
    r.baselineEdp = out.baseline.edp();
    r.bestEdp = out.best.edp();
    r.baselineCycles = out.baseline.cycles;
    r.bestCycles = out.best.cycles;
    r.avgIl1Bytes = out.best.avgIl1Bytes;
    r.avgDl1Bytes = out.best.avgDl1Bytes;
    r.engine = out.best.engine;
    r.policy = p.cfg.policy;
    return r;
}

} // namespace rcache
