/**
 * @file
 * Shared cell-evaluation vocabulary for design-space drivers.
 *
 * A "cell" is one (app, design point) pair with a stable app-major
 * global index. Two drivers evaluate cells today — the exhaustive
 * sweep engine (scenario/scenario_sweep.cc) and the adaptive search
 * (search/adaptive_search.cc) — and both must emit byte-identical
 * SweepRecord rows for the same cell under the same engine. The
 * helpers here are that shared surface: workload resolution, mix
 * attachment, baseline memo keys, and the record a finished cell
 * reports. Keeping them in one place is what makes the adaptive
 * winner row provably equal to the exhaustive sweep's row for the
 * winning cell.
 */

#ifndef RCACHE_SCENARIO_CELL_EVAL_HH
#define RCACHE_SCENARIO_CELL_EVAL_HH

#include <string>
#include <vector>

#include "scenario/param_space.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

namespace rcache
{

/** One [workloads] entry: a profile, or a '+'-joined mix. */
struct AppEntry
{
    /** The name as written (the CSV app column). */
    std::string name;
    /** Resolved components (size 1 for a plain profile). */
    std::vector<BenchmarkProfile> mix;
};

/**
 * Resolve a scenario's [workloads] list (empty = the whole SPEC2000
 * suite) into AppEntry rows, in enumeration order. On an unknown
 * name returns an empty vector and sets @p err.
 */
std::vector<AppEntry> resolveApps(const ScenarioSpec &spec,
                                  std::string *err);

/** The workload a cell actually simulates, after any 'mix' axis
 *  override. */
struct EffectiveWorkload
{
    /** Label profile handed to Experiment: the first component
     *  carrying the full mix name (what labels/memo keys show). */
    BenchmarkProfile label;
    std::vector<BenchmarkProfile> mix;
};

EffectiveWorkload effectiveWorkload(const AppEntry &entry,
                                    const DesignPoint &p);

/** Attach the mix to every job of a multi-programmed cell (a
 *  one-component mix rides on job.profile alone). */
void attachMix(std::vector<RunJob>::iterator begin,
               std::vector<RunJob>::iterator end,
               const EffectiveWorkload &eff);

/** The CacheSide a single-side sweep side resizes (not Both). */
CacheSide cacheSideOf(SweepSide side);

/** Memo key of a cell's baseline: the full scenario-visible system
 *  identity (core count/quantum/models included via systemConfigKey)
 *  plus the engine selection (insts are sweep-constant). @p workload
 *  is the effective workload name — the mix override when a 'mix'
 *  axis set one, else the cell's app. */
std::string baselineKey(const SystemConfig &cfg,
                        const EngineSpec &engine,
                        const std::string &workload);

/** The CSV row a finished cell reports. Both drivers build rows
 *  through this one function. */
SweepRecord cellRecord(std::size_t cell, const std::string &app,
                       const DesignPoint &p,
                       const SearchOutcome &out);

} // namespace rcache

#endif // RCACHE_SCENARIO_CELL_EVAL_HH
