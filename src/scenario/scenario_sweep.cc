#include "scenario/scenario_sweep.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "analytic/analytic_engine.hh"
#include "scenario/cell_eval.hh"
#include "sim/experiment.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace_events.hh"
#include "util/checked_io.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

int
fail(const std::string &msg)
{
    std::cerr << "rcache-sim: " << msg << '\n';
    return 2;
}

/** One owned, not-yet-completed cell. Batch offsets are filled in
 *  per chunk. */
struct CellPlan
{
    std::size_t cell = 0;
    std::size_t app = 0;
    DesignPoint point;
    std::string baseKey;
    /** Candidate slice within the chunk batch. Single side:
     *  [off, off+count). Both sides: d jobs at [off, off+count),
     *  i jobs at [ioff, ioff+icount). */
    std::size_t off = 0, count = 0;
    std::size_t ioff = 0, icount = 0;
    std::vector<SearchCandidate> candidates;
};

} // namespace

int
runScenarioSweep(const ParamSpace &space, const SweepOptions &opt)
{
    const ScenarioSpec &spec = space.spec();

    if (opt.format != "csv" && opt.format != "json" &&
        opt.format != "table")
        return fail("--format wants csv|json|table");
    const bool resuming = !opt.resumePath.empty();
    if (resuming && opt.format != "csv")
        return fail("--resume supports only --format csv");
    if (resuming && !opt.outPath.empty())
        return fail("--resume names the output file itself; drop "
                    "--out");

    std::string apps_err;
    std::vector<AppEntry> apps = resolveApps(spec, &apps_err);
    if (apps.empty())
        return fail(apps_err);

    const std::size_t npoints = space.numPoints();
    const std::size_t ncells = apps.size() * npoints;

    std::vector<std::size_t> owned;
    for (std::size_t c = 0; c < ncells; ++c)
        if (opt.shard.owns(c))
            owned.push_back(c);

    // ---- resume: verify the completed prefix of the prior CSV
    std::size_t skip = 0;
    std::string kept; // raw verified prefix, header included
    if (resuming) {
        std::ifstream in(opt.resumePath, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            const std::string raw = buf.str();
            // A truncated final line (no trailing newline) never ran
            // to completion; drop it and recompute its cell.
            const std::size_t last_nl = raw.rfind('\n');
            if (last_nl != std::string::npos) {
                const std::string complete =
                    raw.substr(0, last_nl + 1);
                std::istringstream cs(complete);
                std::string err;
                auto prior = readSweepCsv(cs, &err);
                if (!prior) {
                    // An unparsable prior CSV is damage, not user
                    // error: quarantine the evidence and recompute
                    // from scratch rather than refusing to run.
                    const auto aside =
                        quarantineCorruptFile(opt.resumePath);
                    RC_LOG(warn,
                           "--resume " + opt.resumePath + ": " +
                               err + "; " +
                               (aside ? "moved aside to '" +
                                            *aside + "'"
                                      : "could not move it aside") +
                               ", starting fresh");
                } else {
                    if (prior->size() > owned.size())
                        return fail("--resume " + opt.resumePath +
                                    ": holds more rows than this "
                                    "shard owns (wrong scenario or "
                                    "shard?)");
                    // Each kept row must sit exactly where this
                    // enumeration would put it — cell index, app, and
                    // every design-point coordinate. (A changed
                    // [system] or insts value is invisible to the
                    // rows and cannot be caught here.)
                    for (std::size_t i = 0; i < prior->size(); ++i) {
                        const SweepRecord &r = (*prior)[i];
                        const std::size_t cell = owned[i];
                        const DesignPoint p =
                            space.point(cell % npoints);
                        const std::string &app =
                            apps[cell / npoints].name;
                        if (r.cell != cell || r.app != app ||
                            r.axes != p.axes ||
                            r.org != organizationToken(p.org) ||
                            r.strategy != strategyName(p.strategy) ||
                            r.side != sweepSideName(p.side))
                            return fail(
                                "--resume " + opt.resumePath +
                                ": row " + std::to_string(i + 1) +
                                " does not match this scenario/shard "
                                "enumeration (wrong scenario or "
                                "shard?)");
                    }
                    skip = prior->size();
                    kept = complete;
                }
            }
        }
    }

    // ---- plan the remaining cells
    const SearchGrid &grid = spec.search.dynGrid;
    std::vector<CellPlan> plans;
    plans.reserve(owned.size() - skip);
    for (std::size_t i = skip; i < owned.size(); ++i) {
        CellPlan plan;
        plan.cell = owned[i];
        plan.app = plan.cell / npoints;
        plan.point = space.point(plan.cell % npoints);
        plans.push_back(std::move(plan));
    }

    // ---- analytic engine: one shared stack-distance pass per
    // distinct (workload, stream shape) pair prices every cell that
    // shares it — that is the whole point of the engine. Register
    // every remaining cell's configuration up front (a pass cannot
    // learn new geometries once it has run); AnalyticBatch runs each
    // pass lazily the first time a chunk prices against it. All the
    // jobs of a cell share the cell's full geometry, so registering
    // the design point covers its baseline and every candidate.
    AnalyticBatch analytic;
    if (spec.engine.analytic()) {
        for (const CellPlan &plan : plans) {
            const EffectiveWorkload eff =
                effectiveWorkload(apps[plan.app], plan.point);
            analytic.registerConfig(plan.point.cfg, eff.label,
                                    spec.insts);
        }
        if (!opt.timelinePath.empty() || !opt.eventsPath.empty() ||
            !opt.traceEventsPath.empty())
            RC_LOG(warn,
                   "analytic engine: telemetry sidecars record "
                   "nothing (analytic cells run no timed "
                   "simulation)");
    }

    // ---- telemetry sidecars (all optional; see SweepOptions). Files
    // open before the first chunk so an early failure aborts the
    // sweep rather than losing telemetry at the end.
    const bool want_timeline = !opt.timelinePath.empty();
    const bool want_events = !opt.eventsPath.empty();
    std::ofstream timeline_os, events_os;
    if (want_timeline) {
        timeline_os.open(opt.timelinePath,
                         std::ios::binary | std::ios::trunc);
        if (!timeline_os)
            return fail("cannot write '" + opt.timelinePath + "'");
    }
    if (want_events) {
        events_os.open(opt.eventsPath,
                       std::ios::binary | std::ios::trunc);
        if (!events_os)
            return fail("cannot write '" + opt.eventsPath + "'");
    }
    std::ofstream trace_os;
    std::optional<TraceEventRecorder> trace;
    if (!opt.traceEventsPath.empty()) {
        trace_os.open(opt.traceEventsPath,
                      std::ios::binary | std::ios::trunc);
        if (!trace_os)
            return fail("cannot write '" + opt.traceEventsPath + "'");
        trace.emplace();
    }

    SweepRunner runner(opt.jobs);
    if (trace)
        runner.setTrace(&*trace);
    // Analytic cells never touch the runner: each job is priced from
    // its shared pass, in job order, so every downstream reduction,
    // CSV row, and resume/shard contract is untouched (and the
    // report is trivially byte-identical for any --jobs value).
    const auto execute = [&](const std::vector<RunJob> &jobs) {
        return spec.engine.analytic() ? analytic.price(jobs)
                                      : runner.run(jobs);
    };
    if (opt.progress) {
        runner.setProgress([](std::size_t done, std::size_t total,
                              const RunJob &job) {
            std::cerr << "[" << done << "/" << total << "] "
                      << job.label << '\n';
        });
    }

    // ---- open the report stream up front. CSV rows stream out as
    // their chunk completes (flushed), so an interrupted sweep
    // leaves every finished chunk on disk for --resume; only
    // json/table buffer the whole report.
    const std::string &path =
        resuming ? opt.resumePath : opt.outPath;
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!path.empty()) {
        file.open(path, std::ios::binary | std::ios::trunc);
        if (!file)
            return fail("cannot write '" + path + "'");
        os = &file;
    }
    const std::string outName = path.empty() ? "<stdout>" : path;
    const bool stream_csv = opt.format == "csv";
    if (stream_csv)
        checkedAppend(*os,
                      kept.empty() ? sweepCsvHeader() + "\n" : kept,
                      outName);

    // ---- execute in chunks: within a chunk every cell's baseline
    // (memoized across chunks) and candidate sweeps form one batch,
    // so the pool stays busy across cell boundaries; chunk results
    // are reduced, written, and flushed before the next chunk runs.
    std::map<std::string, RunResult> baseline_memo;
    std::vector<SweepRecord> buffered; // json/table only
    std::size_t total_runs = 0;
    const std::size_t chunk_min_jobs =
        std::max<std::size_t>(64, 8 * runner.parallelism());

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t next = 0;
    while (next < plans.size()) {
        // -- build one chunk's batch
        std::vector<RunJob> batch;
        std::vector<std::pair<std::string, std::size_t>> new_bases;
        std::map<std::string, std::size_t> chunk_base_at;
        const std::size_t first = next;
        while (next < plans.size() &&
               (next == first || batch.size() < chunk_min_jobs)) {
            CellPlan &plan = plans[next];
            const DesignPoint &p = plan.point;
            const EffectiveWorkload eff =
                effectiveWorkload(apps[plan.app], p);
            const BenchmarkProfile &profile = eff.label;
            const std::size_t plan_jobs_begin = batch.size();

            Experiment exp(p.cfg, spec.insts);
            exp.setEngine(p.engine);
            exp.setSearchGrid(grid);

            plan.baseKey =
                baselineKey(exp.config(), p.engine, profile.name);
            if (!baseline_memo.count(plan.baseKey) &&
                !chunk_base_at.count(plan.baseKey)) {
                chunk_base_at[plan.baseKey] = batch.size();
                new_bases.emplace_back(plan.baseKey, batch.size());
                batch.push_back(exp.baselineJob(profile));
                attachMix(batch.end() - 1, batch.end(), eff);
            }

            if (p.side == SweepSide::Both) {
                auto d = exp.staticSearchJobs(
                    profile, CacheSide::DCache, p.org);
                attachMix(d.begin(), d.end(), eff);
                plan.off = batch.size();
                plan.count = d.size();
                batch.insert(batch.end(), d.begin(), d.end());
                auto ij = exp.staticSearchJobs(
                    profile, CacheSide::ICache, p.org);
                attachMix(ij.begin(), ij.end(), eff);
                plan.ioff = batch.size();
                plan.icount = ij.size();
                batch.insert(batch.end(), ij.begin(), ij.end());
            } else {
                const CacheSide side = cacheSideOf(p.side);
                plan.candidates =
                    exp.searchCandidates(side, p.org, p.strategy);
                auto jobs =
                    exp.searchJobs(profile, side, p.org, p.strategy);
                attachMix(jobs.begin(), jobs.end(), eff);
                plan.off = batch.size();
                plan.count = jobs.size();
                batch.insert(batch.end(), jobs.begin(), jobs.end());
            }
            if (trace) {
                // Design-point coordinates for the runner spans.
                std::ostringstream pt;
                pt << "cell=" << plan.cell << ";app="
                   << apps[plan.app].name << ";org="
                   << organizationToken(p.org) << ";strategy="
                   << strategyName(p.strategy) << ";side="
                   << sweepSideName(p.side);
                if (!p.axes.empty())
                    pt << ';' << p.axes;
                for (std::size_t k = plan_jobs_begin;
                     k < batch.size(); ++k)
                    batch[k].tracePoint = pt.str();
            }
            ++next;
        }

        // -- per-job telemetry bundles. Allocated only after the
        // batch vector is final: job.telemetry points into `bundles`,
        // and annotating jobs after a reallocating push_back would be
        // fine, but assigning pointers before one would not.
        std::vector<std::unique_ptr<RunTelemetry>> bundles;
        const auto attachTelemetry = [&](std::vector<RunJob> &jobs) {
            if (!want_timeline && !want_events)
                return;
            for (RunJob &job : jobs) {
                auto t = std::make_unique<RunTelemetry>();
                t->timelineInterval =
                    want_timeline ? opt.timelineInterval : 0;
                t->resizeEvents = want_events;
                job.telemetry = t.get();
                bundles.push_back(std::move(t));
            }
        };
        const auto writeTelemetry =
            [&](const std::vector<RunJob> &jobs) {
                for (const RunJob &job : jobs) {
                    if (!job.telemetry)
                        continue;
                    if (want_timeline) {
                        std::ostringstream rec;
                        writeTimelineJsonl(rec,
                                           job.telemetry->timeline,
                                           job.label);
                        checkedAppend(timeline_os, rec.str(),
                                      opt.timelinePath,
                                      "telemetry.timeline.append");
                    }
                    if (want_events) {
                        std::ostringstream rec;
                        writeResizeEventsJsonl(
                            rec, job.telemetry->events.events(),
                            job.label);
                        checkedAppend(events_os, rec.str(),
                                      opt.eventsPath,
                                      "telemetry.events.append");
                    }
                }
            };
        attachTelemetry(batch);

        // -- run it and publish the chunk's baselines
        const auto results = execute(batch);
        total_runs += batch.size();
        for (const auto &[key, idx] : new_bases) {
            baseline_memo[key] = results[idx];
            if (trace)
                trace->instant("baseline-memo",
                               {{"label", batch[idx].label}});
        }
        writeTelemetry(batch);

        // -- both-sides cells: second phase at the profiled levels
        std::vector<RunJob> phase2;
        std::vector<std::size_t> phase2_at(next - first, 0);
        std::vector<SearchOutcome> douts(next - first);
        for (std::size_t i = first; i < next; ++i) {
            const CellPlan &plan = plans[i];
            if (plan.point.side != SweepSide::Both)
                continue;
            const RunResult &base =
                baseline_memo.at(plan.baseKey);
            douts[i - first] = Experiment::reduceStatic(
                base, {results.begin() + plan.off,
                       results.begin() + plan.off + plan.count});
            const SearchOutcome iout = Experiment::reduceStatic(
                base, {results.begin() + plan.ioff,
                       results.begin() + plan.ioff + plan.icount});
            Experiment exp(plan.point.cfg, spec.insts);
            exp.setEngine(plan.point.engine);
            phase2_at[i - first] = phase2.size();
            const EffectiveWorkload eff =
                effectiveWorkload(apps[plan.app], plan.point);
            phase2.push_back(exp.bothStaticJob(
                eff.label, plan.point.org, iout.bestLevel,
                douts[i - first].bestLevel));
            attachMix(phase2.end() - 1, phase2.end(), eff);
            if (trace) {
                std::ostringstream pt;
                pt << "cell=" << plan.cell << ";app="
                   << apps[plan.app].name << ";org="
                   << organizationToken(plan.point.org)
                   << ";strategy="
                   << strategyName(plan.point.strategy)
                   << ";side=" << sweepSideName(plan.point.side);
                if (!plan.point.axes.empty())
                    pt << ';' << plan.point.axes;
                phase2.back().tracePoint = pt.str();
            }
        }
        attachTelemetry(phase2);
        const auto results2 = execute(phase2);
        total_runs += phase2.size();
        writeTelemetry(phase2);

        // -- reduce and write the chunk, in cell order
        std::vector<SweepRecord> records;
        records.reserve(next - first);
        for (std::size_t i = first; i < next; ++i) {
            const CellPlan &plan = plans[i];
            const RunResult &base =
                baseline_memo.at(plan.baseKey);
            SearchOutcome out;
            if (plan.point.side == SweepSide::Both) {
                out = Experiment::reduceBoth(
                    base, douts[i - first],
                    results2[phase2_at[i - first]]);
            } else {
                out = Experiment::reduceSearch(
                    base, plan.candidates,
                    {results.begin() + plan.off,
                     results.begin() + plan.off + plan.count});
            }
            records.push_back(cellRecord(
                plan.cell, apps[plan.app].name, plan.point, out));
            // Candidate lists can be large (dynamic grids); drop
            // them with the chunk.
            plans[i].candidates.clear();
            plans[i].candidates.shrink_to_fit();
        }
        if (stream_csv) {
            std::ostringstream rows;
            writeSweepCsvRows(rows, records);
            checkedAppend(*os, rows.str(), outName,
                          "csv.chunk.flush");
        } else {
            buffered.insert(buffered.end(), records.begin(),
                            records.end());
        }
        if (want_timeline)
            checkedFlush(timeline_os, opt.timelinePath);
        if (want_events)
            checkedFlush(events_os, opt.eventsPath);
        if (trace)
            trace->instant(
                "chunk-flush",
                {{"cells", std::to_string(next - first)},
                 {"jobs", std::to_string(batch.size() +
                                         phase2.size())}});
        if (opt.chunkDone)
            opt.chunkDone(skip + next);
        // The chunk above is committed (written + flushed): the
        // documented resumable boundary for a polite interrupt.
        if (interruptRequested() && next < plans.size()) {
            std::cerr << "rcache-sim: interrupted; "
                      << (skip + next) << "/" << owned.size()
                      << " cells committed";
            if (stream_csv && !path.empty())
                std::cerr << "; resume with --resume " << path;
            std::cerr << '\n';
            return interruptExitCode();
        }
    }
    const auto t1 = std::chrono::steady_clock::now();

    if (trace) {
        std::ostringstream out;
        trace->write(out);
        checkedAppend(trace_os, out.str(), opt.traceEventsPath,
                      "telemetry.trace.write");
    }

    if (!stream_csv) {
        if (opt.format == "json")
            writeSweepJson(*os, buffered);
        else
            writeSweepTable(*os, buffered);
        checkedFlush(*os, outName);
    }

    if (!opt.quiet) {
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        std::cerr << "sweep: " << total_runs << " runs in " << secs
                  << " s on " << runner.parallelism()
                  << " worker(s)";
        if (opt.shard.sharded())
            std::cerr << " [shard " << opt.shard.str() << ", "
                      << plans.size() << "/" << ncells << " cells]";
        if (skip)
            std::cerr << " [resumed past " << skip << " cells]";
        std::cerr << '\n';
    }
    return 0;
}

int
runScenarioSweep(const ScenarioSpec &spec, const SweepOptions &opt)
{
    std::string err;
    auto space = ParamSpace::build(spec, &err);
    if (!space)
        return fail(err);
    return runScenarioSweep(*space, opt);
}

} // namespace rcache
