/**
 * @file
 * ParamSpace: generic enumeration of a scenario's design points.
 *
 * A scenario's axes span a grid; ParamSpace enumerates its cross
 * product in row-major order (first axis outermost) and materializes
 * each point as a DesignPoint — a complete SystemConfig plus the
 * search coordinates (side, organization, strategy) and engine
 * selection, ready for the experiment driver to expand into
 * per-level / per-parameter ResizeSetup candidates.
 *
 * The axis registry maps axis names onto the scenario key tables
 * (scenario_spec.hh), so everything that can be fixed in [system] /
 * [search] / [sampling] can also be swept:
 *
 *   org, strategy, side, core       enum axes
 *   assoc                           both L1 associativities at once
 *   il1.* / dl1.* / l2.*            geometry fields
 *   lat.*                           hierarchy latencies
 *   core.*                          core widths/buffers
 *   energy.<key>                    energy-model constants
 *   sample.interval                 sampled engine period (0 = full
 *                                   detail; not valid with analytic)
 *   cores                           core count (multi-core system)
 *   quantum                         round-robin quantum (insts)
 *   mix                             workload mix ("gcc+m88ksim")
 *
 * Validation happens at build() time (and per-axis at parse time via
 * validateAxis), so a ParamSpace that builds cleanly can enumerate
 * every point without error.
 */

#ifndef RCACHE_SCENARIO_PARAM_SPACE_HH
#define RCACHE_SCENARIO_PARAM_SPACE_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario_spec.hh"

namespace rcache
{

/** One fully resolved design point of a scenario. */
struct DesignPoint
{
    SystemConfig cfg;
    SweepSide side = SweepSide::DCache;
    Organization org = Organization::SelectiveSets;
    Strategy strategy = Strategy::Static;
    EngineSpec engine;
    /**
     * Workload-mix override from a 'mix' axis ("gcc+m88ksim"); empty
     * means the cell's app names the workload. When non-empty the
     * cell's app is only an enumeration label — the sweep engine
     * simulates this mix instead (validated at build() time).
     */
    std::string mix;
    /**
     * Axis coordinates that produced this point, as
     * "name=value;name=value" in axis order (empty for an axis-free
     * scenario). Carried into every SweepRecord row.
     */
    std::string axes;
};

/**
 * Check that @p axis names a registered axis and that every value
 * parses for its type. On failure fills @p err with a one-line
 * explanation (no file:line prefix; the scenario parser adds it).
 */
bool validateAxis(const Axis &axis, std::string *err);

/** See file comment. */
class ParamSpace
{
  public:
    /**
     * Build the space for @p spec. Re-validates the axes and checks
     * cross-cutting constraints the per-line parse cannot see (every
     * point's geometry must validate; side=both is static-only).
     * On failure returns nullopt and fills @p err with one line.
     */
    static std::optional<ParamSpace> build(const ScenarioSpec &spec,
                                           std::string *err);

    /** Number of design points (product of axis sizes; >= 1). */
    std::size_t numPoints() const { return numPoints_; }

    /** Materialize point @p idx (row-major, first axis outermost). */
    DesignPoint point(std::size_t idx) const;

    /** Per-axis coordinates of @p idx, outermost first. */
    std::vector<std::size_t> coords(std::size_t idx) const;

    const ScenarioSpec &spec() const { return spec_; }

  private:
    ParamSpace() = default;

    /** One parsed axis value: applies itself to a draft point. */
    using Applier = std::function<void(DesignPoint &)>;

    ScenarioSpec spec_;
    /** appliers_[axis][value]. */
    std::vector<std::vector<Applier>> appliers_;
    std::size_t numPoints_ = 1;
};

} // namespace rcache

#endif // RCACHE_SCENARIO_PARAM_SPACE_HH
