#include "scenario/scenario_spec.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "cache/replacement.hh"
#include "scenario/param_space.hh"
#include "util/logging.hh"
#include "util/numformat.hh"
#include "workload/profiles.hh"

namespace rcache
{

std::string
sweepSideName(SweepSide side)
{
    switch (side) {
      case SweepSide::ICache:
        return "icache";
      case SweepSide::DCache:
        return "dcache";
      case SweepSide::Both:
        return "both";
    }
    return "?";
}

std::optional<Organization>
parseOrganizationToken(const std::string &t)
{
    if (t == "none")
        return Organization::None;
    if (t == "ways")
        return Organization::SelectiveWays;
    if (t == "sets")
        return Organization::SelectiveSets;
    if (t == "hybrid")
        return Organization::Hybrid;
    return std::nullopt;
}

std::optional<Strategy>
parseStrategyToken(const std::string &t)
{
    if (t == "none")
        return Strategy::None;
    if (t == "static")
        return Strategy::Static;
    if (t == "dynamic")
        return Strategy::Dynamic;
    return std::nullopt;
}

std::optional<SweepSide>
parseSweepSideToken(const std::string &t)
{
    if (t == "icache")
        return SweepSide::ICache;
    if (t == "dcache")
        return SweepSide::DCache;
    if (t == "both")
        return SweepSide::Both;
    return std::nullopt;
}

std::string
searchModeName(SearchMode mode)
{
    return mode == SearchMode::Adaptive ? "adaptive" : "exhaustive";
}

std::optional<SearchMode>
parseSearchModeToken(const std::string &t)
{
    if (t == "exhaustive")
        return SearchMode::Exhaustive;
    if (t == "adaptive")
        return SearchMode::Adaptive;
    return std::nullopt;
}

std::optional<CoreModel>
parseCoreModelToken(const std::string &t)
{
    if (t == "ooo")
        return CoreModel::OutOfOrder;
    if (t == "inorder")
        return CoreModel::InOrder;
    return std::nullopt;
}

std::string
organizationToken(Organization org)
{
    switch (org) {
      case Organization::None:
        return "none";
      case Organization::SelectiveWays:
        return "ways";
      case Organization::SelectiveSets:
        return "sets";
      case Organization::Hybrid:
        return "hybrid";
    }
    return "?";
}

std::string
coreModelToken(CoreModel m)
{
    return m == CoreModel::InOrder ? "inorder" : "ooo";
}

std::optional<std::vector<CoreModel>>
parseCoreModelListToken(const std::string &t)
{
    std::vector<CoreModel> models;
    for (const std::string &item : splitPlusList(t)) {
        auto m = parseCoreModelToken(item);
        if (!m)
            return std::nullopt;
        models.push_back(*m);
    }
    return models;
}

std::string
coreModelListToken(const std::vector<CoreModel> &models)
{
    std::string out;
    for (std::size_t i = 0; i < models.size(); ++i)
        out += (i ? "+" : "") + coreModelToken(models[i]);
    return out;
}

const std::vector<SystemKeyU64> &
systemKeysU64()
{
    // One entry per integer [system] key. Geometry fields first (in
    // cache order), then latencies, then core widths.
    static const std::vector<SystemKeyU64> keys = {
        {"il1.size", [](const SystemConfig &c) { return c.il1.size; },
         [](SystemConfig &c, std::uint64_t v) { c.il1.size = v; }},
        {"il1.assoc",
         [](const SystemConfig &c) {
             return std::uint64_t(c.il1.assoc);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.il1.assoc = static_cast<unsigned>(v);
         }},
        {"il1.block",
         [](const SystemConfig &c) {
             return std::uint64_t(c.il1.blockSize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.il1.blockSize = static_cast<unsigned>(v);
         }},
        {"il1.subarray",
         [](const SystemConfig &c) {
             return std::uint64_t(c.il1.subarraySize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.il1.subarraySize = static_cast<unsigned>(v);
         }},
        {"dl1.size", [](const SystemConfig &c) { return c.dl1.size; },
         [](SystemConfig &c, std::uint64_t v) { c.dl1.size = v; }},
        {"dl1.assoc",
         [](const SystemConfig &c) {
             return std::uint64_t(c.dl1.assoc);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.dl1.assoc = static_cast<unsigned>(v);
         }},
        {"dl1.block",
         [](const SystemConfig &c) {
             return std::uint64_t(c.dl1.blockSize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.dl1.blockSize = static_cast<unsigned>(v);
         }},
        {"dl1.subarray",
         [](const SystemConfig &c) {
             return std::uint64_t(c.dl1.subarraySize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.dl1.subarraySize = static_cast<unsigned>(v);
         }},
        {"l2.size", [](const SystemConfig &c) { return c.l2.size; },
         [](SystemConfig &c, std::uint64_t v) { c.l2.size = v; }},
        {"l2.assoc",
         [](const SystemConfig &c) {
             return std::uint64_t(c.l2.assoc);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.l2.assoc = static_cast<unsigned>(v);
         }},
        {"l2.block",
         [](const SystemConfig &c) {
             return std::uint64_t(c.l2.blockSize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.l2.blockSize = static_cast<unsigned>(v);
         }},
        {"l2.subarray",
         [](const SystemConfig &c) {
             return std::uint64_t(c.l2.subarraySize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.l2.subarraySize = static_cast<unsigned>(v);
         }},
        {"lat.l1",
         [](const SystemConfig &c) {
             return std::uint64_t(c.lat.l1Latency);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.lat.l1Latency = static_cast<unsigned>(v);
         }},
        {"lat.l2",
         [](const SystemConfig &c) {
             return std::uint64_t(c.lat.l2Latency);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.lat.l2Latency = static_cast<unsigned>(v);
         }},
        {"lat.mem",
         [](const SystemConfig &c) {
             return std::uint64_t(c.lat.memBaseLatency);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.lat.memBaseLatency = static_cast<unsigned>(v);
         }},
        {"lat.mem-per-8b",
         [](const SystemConfig &c) {
             return std::uint64_t(c.lat.memCyclesPer8Bytes);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.lat.memCyclesPer8Bytes = static_cast<unsigned>(v);
         }},
        {"core.fetch-width",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.fetchWidth);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.fetchWidth = static_cast<unsigned>(v);
         }},
        {"core.dispatch-width",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.dispatchWidth);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.dispatchWidth = static_cast<unsigned>(v);
         }},
        {"core.commit-width",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.commitWidth);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.commitWidth = static_cast<unsigned>(v);
         }},
        {"core.rob",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.robSize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.robSize = static_cast<unsigned>(v);
         }},
        {"core.lsq",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.lsqSize);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.lsqSize = static_cast<unsigned>(v);
         }},
        {"core.mshrs",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.mshrs);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.mshrs = static_cast<unsigned>(v);
         }},
        {"core.wb-entries",
         [](const SystemConfig &c) {
             return std::uint64_t(c.core.wbEntries);
         },
         [](SystemConfig &c, std::uint64_t v) {
             c.core.wbEntries = static_cast<unsigned>(v);
         }},
    };
    return keys;
}

const std::vector<EnergyKey> &
energyKeys()
{
    static const std::vector<EnergyKey> keys = {
        {"l1-precharge", &EnergyParams::l1PrechargePerSubarray},
        {"l1-read-per-way", &EnergyParams::l1ReadPerWay},
        {"l1-decode", &EnergyParams::l1DecodePerAccess},
        {"l1-tag-bit", &EnergyParams::l1TagBitPerWayRead},
        {"l2-access", &EnergyParams::l2PerAccess},
        {"mem-access", &EnergyParams::memPerAccess},
        {"l1-per-byte-cycle", &EnergyParams::l1PerByteCycle},
        {"l2-per-byte-cycle", &EnergyParams::l2PerByteCycle},
        {"fetch-decode-rename", &EnergyParams::fetchDecodeRenamePerInst},
        {"fetch-decode-inorder",
         &EnergyParams::fetchDecodePerInstInOrder},
        {"rob", &EnergyParams::robPerInst},
        {"regfile", &EnergyParams::regfilePerInst},
        {"int-alu", &EnergyParams::intAluOp},
        {"fp-alu", &EnergyParams::fpAluOp},
        {"lsq", &EnergyParams::lsqPerMemOp},
        {"bpred", &EnergyParams::bpredPerBranch},
        {"result-bus", &EnergyParams::resultBusPerInst},
        {"clock", &EnergyParams::clockPerCycle},
    };
    return keys;
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Comma-split with trimming; empty items are preserved as "" so the
 *  caller can reject them with a precise diagnostic. */
std::vector<std::string>
splitCommas(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(csv);
    while (std::getline(ss, item, ','))
        out.push_back(trim(item));
    if (!csv.empty() && csv.back() == ',')
        out.push_back("");
    return out;
}

/** Line-by-line parser state; see ScenarioSpec::parse. */
class Parser
{
  public:
    Parser(const std::string &filename, std::string *err)
        : file_(filename), err_(err)
    {
    }

    std::optional<ScenarioSpec> run(std::istream &in);

  private:
    bool fail(const std::string &msg)
    {
        if (err_)
            *err_ = file_ + ":" + std::to_string(line_) + ": " + msg;
        return false;
    }

    bool handleSection(const std::string &name);
    bool handleKey(const std::string &key, const std::string &value);
    bool keyScenario(const std::string &key, const std::string &value);
    bool keySystem(const std::string &key, const std::string &value);
    bool keyCores(const std::string &key, const std::string &value);
    bool keyWorkloads(const std::string &key, const std::string &value);
    bool keyAxes(const std::string &key, const std::string &value);
    bool keyEngine(const std::string &key, const std::string &value);
    bool keySampling(const std::string &key, const std::string &value);
    bool keyTelemetry(const std::string &key, const std::string &value);
    bool keySearch(const std::string &key, const std::string &value);
    bool finish();
    bool finishEngine();
    bool finishSampling();

    bool parseListU64(const std::string &value,
                      std::vector<std::uint64_t> &out);
    bool parseListDouble(const std::string &value,
                         std::vector<double> &out);

    std::string file_;
    std::string *err_;
    int line_ = 0;
    std::string section_;
    ScenarioSpec spec_;

    /** [engine] / deprecated-[sampling] accumulators, resolved in
     *  finish(). The two sections share the shape accumulators; a
     *  file may only use one of them. */
    bool sawEngine_ = false;
    bool sawSampling_ = false;
    std::optional<EngineMode> engMode_;
    std::uint64_t sampInterval_ = 0;
    std::optional<std::uint64_t> sampDetail_, sampWarmup_;
    int engineLine_ = 0;
    int samplingLine_ = 0;
};

bool
Parser::handleSection(const std::string &name)
{
    static const char *known[] = {"scenario", "system", "cores",
                                  "workloads", "axes", "engine",
                                  "sampling", "telemetry", "search"};
    if (std::find_if(std::begin(known), std::end(known),
                     [&](const char *k) { return name == k; }) ==
        std::end(known)) {
        return fail("unknown section '[" + name + "]'");
    }
    section_ = name;
    if (name == "engine") {
        sawEngine_ = true;
        engineLine_ = line_;
    }
    if (name == "sampling") {
        sawSampling_ = true;
        samplingLine_ = line_;
        RC_LOG(warn, file_ + ": [sampling] is deprecated; use "
                     "[engine] with mode = sampled");
    }
    return true;
}

bool
Parser::keyScenario(const std::string &key, const std::string &value)
{
    if (key == "name") {
        if (value.empty())
            return fail("scenario name must not be empty");
        spec_.name = value;
        return true;
    }
    if (key == "insts") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return fail("insts wants a positive integer, got '" +
                        value + "'");
        spec_.insts = v;
        return true;
    }
    return fail("unknown key '" + key + "' in [scenario]");
}

bool
Parser::keySystem(const std::string &key, const std::string &value)
{
    if (key == "core") {
        auto m = parseCoreModelToken(value);
        if (!m)
            return fail("core wants ooo|inorder, got '" + value + "'");
        spec_.system.coreModel = *m;
        return true;
    }
    if (key == "policy") {
        if (!isReplacementPolicyName(value))
            return fail("policy wants " + replacementPolicyList() +
                        ", got '" + value + "'");
        spec_.system.policy = value;
        return true;
    }
    for (const auto &k : systemKeysU64()) {
        if (key != k.key)
            continue;
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return fail(std::string(k.key) +
                        " wants a positive integer, got '" + value +
                        "'");
        k.set(spec_.system, v);
        return true;
    }
    if (key.rfind("energy.", 0) == 0) {
        const std::string sub = key.substr(7);
        for (const auto &k : energyKeys()) {
            if (sub != k.key)
                continue;
            double v = 0;
            if (!parseDoubleStrict(value, v) || v < 0)
                return fail(key + " wants a non-negative number, got '" +
                            value + "'");
            spec_.system.energy.*(k.field) = v;
            return true;
        }
    }
    return fail("unknown key '" + key + "' in [system]");
}

bool
Parser::keyCores(const std::string &key, const std::string &value)
{
    if (key == "count") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0 || v > 64)
            return fail("count wants 1..64 cores, got '" + value +
                        "'");
        spec_.system.cores = static_cast<unsigned>(v);
        return true;
    }
    if (key == "quantum") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return fail("quantum wants a positive instruction count, "
                        "got '" +
                        value + "'");
        spec_.system.quantumInsts = v;
        return true;
    }
    if (key == "models") {
        auto models = parseCoreModelListToken(value);
        if (!models)
            return fail("models wants '+'-joined ooo|inorder entries "
                        "(e.g. ooo+inorder), got '" +
                        value + "'");
        spec_.system.coreModels = std::move(*models);
        return true;
    }
    return fail("unknown key '" + key + "' in [cores]");
}

bool
Parser::keyWorkloads(const std::string &key, const std::string &value)
{
    if (key != "apps")
        return fail("unknown key '" + key + "' in [workloads]");
    if (value == "all") {
        spec_.apps.clear();
        return true;
    }
    std::vector<std::string> apps;
    for (const std::string &item : splitCommas(value)) {
        if (item.empty())
            return fail("apps wants 'all' or a comma-separated list "
                        "of profile or mix names");
        // An app may be a '+'-joined multi-programmed mix; validate
        // every component.
        std::string why;
        if (!mixByName(item, &why))
            return fail(why);
        apps.push_back(item);
    }
    if (apps.empty())
        return fail("apps wants 'all' or at least one profile name");
    spec_.apps = std::move(apps);
    return true;
}

bool
Parser::keyAxes(const std::string &key, const std::string &value)
{
    for (const Axis &ax : spec_.axes)
        if (ax.name == key)
            return fail("duplicate axis '" + key + "'");
    Axis axis;
    axis.name = key;
    for (const std::string &item : splitCommas(value)) {
        if (item.empty())
            return fail("axis '" + key +
                        "' wants a comma-separated value list");
        axis.values.push_back(item);
    }
    if (axis.values.empty())
        return fail("axis '" + key + "' wants at least one value");
    std::string why;
    if (!validateAxis(axis, &why))
        return fail(why);
    spec_.axes.push_back(std::move(axis));
    return true;
}

bool
Parser::keyEngine(const std::string &key, const std::string &value)
{
    if (key == "mode") {
        if (engMode_)
            return fail("duplicate 'mode' key in [engine]");
        auto mode = parseEngineModeToken(value);
        if (!mode)
            return fail("mode wants full|sampled|analytic, got '" +
                        value + "'");
        engMode_ = *mode;
        return true;
    }
    unsigned long long v = 0;
    const bool ok = parseU64Strict(value, v);
    if (key == "interval") {
        if (!ok || v == 0)
            return fail("interval wants a positive instruction "
                        "count, got '" +
                        value + "'");
        sampInterval_ = v;
        return true;
    }
    if (key == "detail") {
        if (!ok || v == 0)
            return fail("detail wants a positive integer, got '" +
                        value + "'");
        sampDetail_ = v;
        return true;
    }
    if (key == "warmup") {
        if (!ok)
            return fail("warmup wants a non-negative integer, got '" +
                        value + "'");
        sampWarmup_ = v;
        return true;
    }
    return fail("unknown key '" + key + "' in [engine]");
}

bool
Parser::keySampling(const std::string &key, const std::string &value)
{
    unsigned long long v = 0;
    const bool ok = parseU64Strict(value, v);
    if (key == "interval") {
        if (!ok)
            return fail("interval wants a non-negative integer "
                        "(0 = full detail), got '" +
                        value + "'");
        sampInterval_ = v;
        samplingLine_ = line_;
        return true;
    }
    if (key == "detail") {
        if (!ok || v == 0)
            return fail("detail wants a positive integer, got '" +
                        value + "'");
        sampDetail_ = v;
        return true;
    }
    if (key == "warmup") {
        if (!ok)
            return fail("warmup wants a non-negative integer, got '" +
                        value + "'");
        sampWarmup_ = v;
        return true;
    }
    return fail("unknown key '" + key + "' in [sampling]");
}

bool
Parser::keyTelemetry(const std::string &key, const std::string &value)
{
    if (key == "timeline" || key == "events" ||
        key == "trace-events") {
        if (value.empty())
            return fail(key + " wants an output file path");
        if (key == "timeline")
            spec_.telemetry.timeline = value;
        else if (key == "events")
            spec_.telemetry.events = value;
        else
            spec_.telemetry.traceEvents = value;
        return true;
    }
    if (key == "interval") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return fail("interval wants a positive instruction count, "
                        "got '" +
                        value + "'");
        spec_.telemetry.interval = v;
        return true;
    }
    return fail("unknown key '" + key + "' in [telemetry]");
}

bool
Parser::keySearch(const std::string &key, const std::string &value)
{
    if (key == "org") {
        auto org = parseOrganizationToken(value);
        if (!org || *org == Organization::None)
            return fail("org wants ways|sets|hybrid, got '" + value +
                        "'");
        spec_.search.org = *org;
        return true;
    }
    if (key == "strategy") {
        auto s = parseStrategyToken(value);
        if (!s || *s == Strategy::None)
            return fail("strategy wants static|dynamic, got '" +
                        value + "'");
        spec_.search.strategy = *s;
        return true;
    }
    if (key == "side") {
        auto side = parseSweepSideToken(value);
        if (!side)
            return fail("side wants icache|dcache|both, got '" +
                        value + "'");
        spec_.search.side = *side;
        return true;
    }
    if (key == "intervals") {
        std::vector<std::uint64_t> v;
        if (!parseListU64(value, v))
            return fail("intervals wants a comma-separated list of "
                        "positive integers");
        spec_.search.dynGrid.intervals = std::move(v);
        return true;
    }
    if (key == "miss-fractions") {
        std::vector<double> v;
        if (!parseListDouble(value, v))
            return fail("miss-fractions wants a comma-separated list "
                        "of numbers");
        for (double f : v)
            if (f <= 0 || f >= 1)
                return fail("miss-fractions must lie in (0, 1)");
        spec_.search.dynGrid.missFractions = std::move(v);
        return true;
    }
    if (key == "size-fractions") {
        std::vector<double> v;
        if (!parseListDouble(value, v))
            return fail("size-fractions wants a comma-separated list "
                        "of numbers");
        for (double f : v)
            if (f < 0 || f > 1)
                return fail("size-fractions must lie in [0, 1] "
                            "(0 = unbounded)");
        spec_.search.dynGrid.sizeFractions = std::move(v);
        return true;
    }
    if (key == "mode") {
        auto mode = parseSearchModeToken(value);
        if (!mode)
            return fail("mode wants exhaustive|adaptive, got '" +
                        value + "'");
        spec_.search.mode = *mode;
        return true;
    }
    if (key == "ladder") {
        std::vector<EngineMode> rungs;
        for (const std::string &item : splitCommas(value)) {
            auto m = parseEngineModeToken(item);
            if (!m)
                return fail("ladder wants a comma-separated list of "
                            "full|sampled|analytic, got '" + item +
                            "'");
            if (std::find(rungs.begin(), rungs.end(), *m) !=
                rungs.end())
                return fail("ladder repeats rung '" + item + "'");
            rungs.push_back(*m);
        }
        if (rungs.empty())
            return fail("ladder wants at least one rung");
        spec_.search.adaptive.ladder = std::move(rungs);
        return true;
    }
    if (key == "promote") {
        std::vector<double> v;
        if (!parseListDouble(value, v))
            return fail("promote wants a comma-separated list of "
                        "fractions");
        for (double f : v)
            if (f <= 0 || f > 1)
                return fail("promote fractions must lie in (0, 1]");
        spec_.search.adaptive.promote = std::move(v);
        return true;
    }
    if (key == "min-survivors") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return fail("min-survivors wants a positive integer, "
                        "got '" + value + "'");
        spec_.search.adaptive.minSurvivors = v;
        return true;
    }
    if (key == "rank-agree") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v))
            return fail("rank-agree wants a non-negative integer "
                        "(0 = off), got '" + value + "'");
        spec_.search.adaptive.rankAgree = v;
        return true;
    }
    if (key == "sample-interval") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v))
            return fail("sample-interval wants an instruction count "
                        "(0 = default), got '" + value + "'");
        spec_.search.adaptive.sampleInterval = v;
        return true;
    }
    return fail("unknown key '" + key + "' in [search]");
}

bool
Parser::parseListU64(const std::string &value,
                     std::vector<std::uint64_t> &out)
{
    for (const std::string &item : splitCommas(value)) {
        unsigned long long v = 0;
        if (item.empty() || !parseU64Strict(item, v) || v == 0)
            return false;
        out.push_back(v);
    }
    return !out.empty();
}

bool
Parser::parseListDouble(const std::string &value,
                        std::vector<double> &out)
{
    for (const std::string &item : splitCommas(value)) {
        double v = 0;
        if (item.empty() || !parseDoubleStrict(item, v))
            return false;
        out.push_back(v);
    }
    return !out.empty();
}

bool
Parser::handleKey(const std::string &key, const std::string &value)
{
    if (section_.empty())
        return fail("key '" + key +
                    "' before any [section] header");
    if (section_ == "scenario")
        return keyScenario(key, value);
    if (section_ == "system")
        return keySystem(key, value);
    if (section_ == "cores")
        return keyCores(key, value);
    if (section_ == "workloads")
        return keyWorkloads(key, value);
    if (section_ == "axes")
        return keyAxes(key, value);
    if (section_ == "engine")
        return keyEngine(key, value);
    if (section_ == "sampling")
        return keySampling(key, value);
    if (section_ == "telemetry")
        return keyTelemetry(key, value);
    return keySearch(key, value);
}

bool
Parser::finishEngine()
{
    line_ = engineLine_;
    if (!engMode_)
        return fail("[engine] needs a 'mode = full|sampled|analytic' "
                    "key");
    if (*engMode_ != EngineMode::Sampled) {
        if (sampInterval_ || sampDetail_ || sampWarmup_)
            return fail("interval/detail/warmup only apply to "
                        "mode = sampled");
        spec_.engine = EngineSpec{*engMode_, {}};
        return true;
    }
    const std::uint64_t interval =
        sampInterval_ ? sampInterval_
                      : SamplingConfig{}.intervalInsts;
    const std::uint64_t detail =
        sampDetail_ ? *sampDetail_
                    : SamplingConfig::defaultDetail(interval);
    const std::uint64_t warmup =
        sampWarmup_ ? *sampWarmup_
                    : SamplingConfig::defaultWarmup(interval);
    if (const char *why =
            SamplingConfig::shapeError(interval, detail, warmup))
        return fail(why);
    spec_.engine = EngineSpec::makeSampled(interval, detail, warmup);
    return true;
}

bool
Parser::finishSampling()
{
    line_ = samplingLine_;
    if (sampInterval_ == 0) {
        if (sampDetail_ || sampWarmup_)
            return fail("detail/warmup need a sampling interval > 0");
        spec_.engine = EngineSpec{};
        return true;
    }
    const std::uint64_t detail =
        sampDetail_ ? *sampDetail_
                    : SamplingConfig::defaultDetail(sampInterval_);
    const std::uint64_t warmup =
        sampWarmup_ ? *sampWarmup_
                    : SamplingConfig::defaultWarmup(sampInterval_);
    if (const char *why = SamplingConfig::shapeError(sampInterval_,
                                                     detail, warmup))
        return fail(why);
    spec_.engine =
        EngineSpec::makeSampled(sampInterval_, detail, warmup);
    return true;
}

bool
Parser::finish()
{
    if (sawEngine_ && sawSampling_) {
        line_ = std::max(engineLine_, samplingLine_);
        return fail("use either [engine] or the deprecated "
                    "[sampling] section, not both");
    }
    if (sawEngine_)
        return finishEngine();
    if (sawSampling_)
        return finishSampling();
    return true;
}

std::optional<ScenarioSpec>
Parser::run(std::istream &in)
{
    std::string raw;
    while (std::getline(in, raw)) {
        ++line_;
        std::string text = raw;
        const std::size_t hash = text.find('#');
        if (hash != std::string::npos)
            text.resize(hash);
        text = trim(text);
        if (text.empty())
            continue;
        if (text.front() == '[') {
            if (text.back() != ']') {
                fail("malformed section header '" + text + "'");
                return std::nullopt;
            }
            if (!handleSection(trim(text.substr(1, text.size() - 2))))
                return std::nullopt;
            continue;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos) {
            fail("expected 'key = value', got '" + text + "'");
            return std::nullopt;
        }
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));
        if (key.empty()) {
            fail("missing key before '='");
            return std::nullopt;
        }
        if (!handleKey(key, value))
            return std::nullopt;
    }
    if (!finish())
        return std::nullopt;
    return spec_;
}

void
printList(std::ostream &os, const char *key,
          const std::vector<std::string> &items)
{
    os << key << " = ";
    for (std::size_t i = 0; i < items.size(); ++i)
        os << (i ? "," : "") << items[i];
    os << '\n';
}

} // namespace

std::optional<ScenarioSpec>
ScenarioSpec::parse(std::istream &in, const std::string &filename,
                    std::string *err)
{
    return Parser(filename, err).run(in);
}

std::optional<ScenarioSpec>
ScenarioSpec::parseText(const std::string &text,
                        const std::string &filename, std::string *err)
{
    std::istringstream in(text);
    return parse(in, filename, err);
}

std::optional<ScenarioSpec>
ScenarioSpec::parseFile(const std::string &path, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open scenario file";
        return std::nullopt;
    }
    return parse(in, path, err);
}

void
ScenarioSpec::print(std::ostream &os) const
{
    const SystemConfig base;

    os << "[scenario]\n"
       << "name = " << name << '\n'
       << "insts = " << insts << '\n';

    // [system]: only keys that differ from the Table 2 base config,
    // so canonical prints stay as compact as hand-written files.
    std::ostringstream sys;
    if (system.coreModel != base.coreModel)
        sys << "core = " << coreModelToken(system.coreModel) << '\n';
    if (system.policy != base.policy)
        sys << "policy = " << system.policy << '\n';
    for (const auto &k : systemKeysU64())
        if (k.get(system) != k.get(base))
            sys << k.key << " = " << k.get(system) << '\n';
    for (const auto &k : energyKeys())
        if (system.energy.*(k.field) != base.energy.*(k.field))
            sys << "energy." << k.key << " = "
                << shortestDouble(system.energy.*(k.field)) << '\n';
    if (!sys.str().empty())
        os << "\n[system]\n" << sys.str();

    // [cores]: likewise only the keys that differ from the
    // single-core defaults.
    std::ostringstream cores;
    if (system.cores != base.cores)
        cores << "count = " << system.cores << '\n';
    if (system.quantumInsts != base.quantumInsts)
        cores << "quantum = " << system.quantumInsts << '\n';
    if (system.coreModels != base.coreModels)
        cores << "models = " << coreModelListToken(system.coreModels)
              << '\n';
    if (!cores.str().empty())
        os << "\n[cores]\n" << cores.str();

    os << "\n[workloads]\n";
    if (apps.empty())
        os << "apps = all\n";
    else
        printList(os, "apps", apps);

    if (!axes.empty()) {
        os << "\n[axes]\n";
        for (const Axis &ax : axes)
            printList(os, ax.name.c_str(), ax.values);
    }

    // Canonical engine form: always [engine], never the deprecated
    // [sampling] shim; full detail (the default) prints nothing.
    if (engine.mode != EngineMode::Full) {
        os << "\n[engine]\n"
           << "mode = " << engineName(engine.mode) << '\n';
        if (engine.mode == EngineMode::Sampled) {
            os << "interval = " << engine.sampling.intervalInsts
               << '\n'
               << "detail = " << engine.sampling.detailedInsts << '\n'
               << "warmup = " << engine.sampling.warmupInsts << '\n';
        }
    }

    // [telemetry]: only keys that differ from the all-off defaults.
    const TelemetrySpec default_telem;
    std::ostringstream telem;
    if (telemetry.timeline != default_telem.timeline)
        telem << "timeline = " << telemetry.timeline << '\n';
    if (telemetry.events != default_telem.events)
        telem << "events = " << telemetry.events << '\n';
    if (telemetry.traceEvents != default_telem.traceEvents)
        telem << "trace-events = " << telemetry.traceEvents << '\n';
    if (telemetry.interval != default_telem.interval)
        telem << "interval = " << telemetry.interval << '\n';
    if (!telem.str().empty())
        os << "\n[telemetry]\n" << telem.str();

    const SearchGrid default_grid;
    os << "\n[search]\n"
       << "org = " << organizationToken(search.org) << '\n'
       << "strategy = " << strategyName(search.strategy) << '\n'
       << "side = " << sweepSideName(search.side) << '\n';
    auto joinU64 = [&](const char *key,
                       const std::vector<std::uint64_t> &v) {
        os << key << " = ";
        for (std::size_t i = 0; i < v.size(); ++i)
            os << (i ? "," : "") << v[i];
        os << '\n';
    };
    auto joinDouble = [&](const char *key,
                          const std::vector<double> &v) {
        os << key << " = ";
        for (std::size_t i = 0; i < v.size(); ++i)
            os << (i ? "," : "") << shortestDouble(v[i]);
        os << '\n';
    };
    if (search.dynGrid.intervals != default_grid.intervals)
        joinU64("intervals", search.dynGrid.intervals);
    if (search.dynGrid.missFractions != default_grid.missFractions)
        joinDouble("miss-fractions", search.dynGrid.missFractions);
    if (search.dynGrid.sizeFractions != default_grid.sizeFractions)
        joinDouble("size-fractions", search.dynGrid.sizeFractions);

    // Adaptive-search keys: only where they differ from the
    // defaults, so exhaustive scenarios keep their exact bytes.
    const AdaptiveSpec default_adaptive;
    if (search.mode != SearchMode::Exhaustive)
        os << "mode = " << searchModeName(search.mode) << '\n';
    if (search.adaptive.ladder != default_adaptive.ladder) {
        os << "ladder = ";
        for (std::size_t i = 0; i < search.adaptive.ladder.size();
             ++i)
            os << (i ? "," : "")
               << engineName(search.adaptive.ladder[i]);
        os << '\n';
    }
    if (search.adaptive.promote != default_adaptive.promote)
        joinDouble("promote", search.adaptive.promote);
    if (search.adaptive.minSurvivors !=
        default_adaptive.minSurvivors)
        os << "min-survivors = " << search.adaptive.minSurvivors
           << '\n';
    if (search.adaptive.rankAgree != default_adaptive.rankAgree)
        os << "rank-agree = " << search.adaptive.rankAgree << '\n';
    if (search.adaptive.sampleInterval !=
        default_adaptive.sampleInterval)
        os << "sample-interval = " << search.adaptive.sampleInterval
           << '\n';
}

std::string
ScenarioSpec::printToString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
systemConfigKey(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << coreModelToken(cfg.coreModel);
    for (const auto &k : systemKeysU64())
        os << '|' << k.get(cfg);
    for (const auto &k : energyKeys())
        os << '|' << shortestDouble(cfg.energy.*(k.field));
    os << '|' << organizationToken(cfg.il1Org) << '|'
       << organizationToken(cfg.dl1Org);
    os << '|' << cfg.cores << '|' << cfg.quantumInsts << '|'
       << coreModelListToken(cfg.coreModels);
    os << '|' << cfg.policy;
    return os.str();
}

} // namespace rcache
