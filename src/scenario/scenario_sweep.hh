/**
 * @file
 * The scenario sweep engine: runs a ParamSpace's full design-space
 * search — every (app, design point) cell — on a SweepRunner and
 * reports one SweepRecord row per cell.
 *
 * Cells are enumerated app-major (all of app 0's design points, then
 * app 1's, ...), giving every cell a stable global index. Three
 * properties follow from each cell's result being a pure function of
 * its spec:
 *
 *  - parallelism identity: the report is byte-identical for any
 *    --jobs value (inherited from SweepRunner's determinism);
 *  - shard identity: `--shard i/N` runs only the cells whose index
 *    is congruent to i mod N; re-interleaving the N shard CSVs by
 *    cell index reproduces the unsharded CSV byte-for-byte;
 *  - resume identity: `--resume out.csv` verifies the completed
 *    prefix of a prior (possibly truncated) CSV — cell index, app,
 *    and every design-point coordinate — against the enumeration and
 *    simulates only the remaining cells; the final file is
 *    byte-identical to an uninterrupted run.
 *
 * Execution is chunked: cells are grouped until a chunk holds enough
 * jobs to keep the pool busy across cell boundaries (baselines are
 * memoized across chunks), and each chunk's CSV rows are written and
 * flushed before the next chunk runs — so an interrupted sweep
 * leaves every completed chunk on disk for --resume instead of
 * losing the whole run. side=both cells add a second phase per chunk
 * for the combined run at the two profiled levels, exactly like the
 * paper's Fig 9 methodology.
 */

#ifndef RCACHE_SCENARIO_SCENARIO_SWEEP_HH
#define RCACHE_SCENARIO_SCENARIO_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>

#include "runner/shard.hh"
#include "scenario/param_space.hh"
#include "sim/report.hh"

namespace rcache
{

/** How runScenarioSweep executes and reports. */
struct SweepOptions
{
    /** Worker threads (SweepRunner semantics: 0 = all cores). */
    unsigned jobs = 1;
    /** Cells this invocation owns (default: all). */
    ShardSpec shard;
    /**
     * Non-empty: resume into this CSV file (implies --format csv and
     * replaces outPath). A missing or empty file starts fresh.
     */
    std::string resumePath;
    /** csv | json | table. */
    std::string format = "csv";
    /** Report destination; empty = stdout. */
    std::string outPath;
    /** Per-job progress lines on stderr. */
    bool progress = false;
    /** Suppress the "sweep: N runs in ..." stderr summary (tests). */
    bool quiet = false;
    /**
     * Called after each chunk's rows are flushed (cells completed so
     * far). Claim workers use it as a lease heartbeat; never affects
     * the report bytes.
     */
    std::function<void(std::size_t)> chunkDone;

    /**
     * @name Telemetry sidecars (see src/telemetry/). All off (empty)
     * by default; a scenario's [telemetry] section seeds these and
     * CLI flags of the same name override. Enabling them never
     * perturbs the sweep CSV: the simulated runs are bit-identical
     * with telemetry on or off.
     *
     * Row ordering caveat: timeline/event rows stream out chunk by
     * chunk in job order, and for side=both scenarios the job order
     * within a chunk depends on the chunk boundaries, which scale
     * with --jobs. Rows carry their job label, so consumers should
     * group by label rather than rely on file order.
     */
    /// @{
    /** Interval-timeline JSONL path ("" = off). */
    std::string timelinePath;
    /** Resize-decision event-trace JSONL path ("" = off). */
    std::string eventsPath;
    /** Chrome trace-event JSON path for runner spans ("" = off). */
    std::string traceEventsPath;
    /** Timeline sampling interval, instructions per sample. */
    std::uint64_t timelineInterval = 10000;
    /// @}
};

/**
 * Run the sweep. Diagnostics go to stderr with the CLI's "rcache-sim:"
 * prefix; @return a process exit code (0 ok, 2 on configuration or
 * resume-validation errors).
 */
int runScenarioSweep(const ParamSpace &space, const SweepOptions &opt);

/** Convenience: build the ParamSpace for @p spec first. */
int runScenarioSweep(const ScenarioSpec &spec, const SweepOptions &opt);

} // namespace rcache

#endif // RCACHE_SCENARIO_SCENARIO_SWEEP_HH
