#include "scenario/param_space.hh"

#include <limits>

#include "cache/replacement.hh"
#include "util/logging.hh"
#include "util/numformat.hh"
#include "workload/profiles.hh"

namespace rcache
{

namespace
{

using Applier = std::function<void(DesignPoint &)>;

std::optional<Applier>
failAxis(const std::string &axis, const std::string &why,
         std::string *err)
{
    if (err)
        *err = "axis '" + axis + "': " + why;
    return std::nullopt;
}

/**
 * Resolve one (axis name, value token) pair into its applier. The
 * single place axis semantics live; validateAxis and ParamSpace both
 * call it, so validation and enumeration cannot disagree.
 */
std::optional<Applier>
makeApplier(const std::string &name, const std::string &value,
            std::string *err)
{
    if (name == "org") {
        auto org = parseOrganizationToken(value);
        if (!org || *org == Organization::None)
            return failAxis(name, "wants ways|sets|hybrid, got '" +
                                      value + "'",
                            err);
        return Applier([org = *org](DesignPoint &p) { p.org = org; });
    }
    if (name == "strategy") {
        auto s = parseStrategyToken(value);
        if (!s || *s == Strategy::None)
            return failAxis(name, "wants static|dynamic, got '" +
                                      value + "'",
                            err);
        return Applier(
            [s = *s](DesignPoint &p) { p.strategy = s; });
    }
    if (name == "side") {
        auto side = parseSweepSideToken(value);
        if (!side)
            return failAxis(name, "wants icache|dcache|both, got '" +
                                      value + "'",
                            err);
        return Applier(
            [side = *side](DesignPoint &p) { p.side = side; });
    }
    if (name == "core") {
        auto m = parseCoreModelToken(value);
        if (!m)
            return failAxis(name, "wants ooo|inorder, got '" + value +
                                      "'",
                            err);
        return Applier(
            [m = *m](DesignPoint &p) { p.cfg.coreModel = m; });
    }
    if (name == "policy") {
        if (!isReplacementPolicyName(value))
            return failAxis(name, "wants " + replacementPolicyList() +
                                      ", got '" + value + "'",
                            err);
        return Applier(
            [value](DesignPoint &p) { p.cfg.policy = value; });
    }
    if (name == "assoc") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0 || v > 64)
            return failAxis(name, "wants 1..64, got '" + value + "'",
                            err);
        return Applier([v](DesignPoint &p) {
            p.cfg.il1.assoc = static_cast<unsigned>(v);
            p.cfg.dl1.assoc = static_cast<unsigned>(v);
        });
    }
    if (name == "cores") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0 || v > 64)
            return failAxis(name, "wants 1..64 cores, got '" + value +
                                      "'",
                            err);
        return Applier([v](DesignPoint &p) {
            p.cfg.cores = static_cast<unsigned>(v);
        });
    }
    if (name == "quantum") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return failAxis(name,
                            "wants a positive instruction count, "
                            "got '" +
                                value + "'",
                            err);
        return Applier(
            [v](DesignPoint &p) { p.cfg.quantumInsts = v; });
    }
    if (name == "mix") {
        std::string why;
        if (!mixByName(value, &why))
            return failAxis(name, why, err);
        return Applier([value](DesignPoint &p) { p.mix = value; });
    }
    if (name == "sample.interval") {
        unsigned long long v = 0;
        if (!parseU64Strict(value, v))
            return failAxis(name,
                            "wants a non-negative integer "
                            "(0 = full detail), got '" +
                                value + "'",
                            err);
        if (v == 0)
            return Applier(
                [](DesignPoint &p) { p.engine = EngineSpec{}; });
        const std::uint64_t detail = SamplingConfig::defaultDetail(v);
        const std::uint64_t warmup = SamplingConfig::defaultWarmup(v);
        if (const char *why =
                SamplingConfig::shapeError(v, detail, warmup))
            return failAxis(name, why, err);
        return Applier([v, detail, warmup](DesignPoint &p) {
            p.engine = EngineSpec::makeSampled(v, detail, warmup);
        });
    }
    for (const auto &k : systemKeysU64()) {
        if (name != k.key)
            continue;
        unsigned long long v = 0;
        if (!parseU64Strict(value, v) || v == 0)
            return failAxis(name, "wants a positive integer, got '" +
                                      value + "'",
                            err);
        return Applier(
            [set = k.set, v](DesignPoint &p) { set(p.cfg, v); });
    }
    if (name.rfind("energy.", 0) == 0) {
        const std::string sub = name.substr(7);
        for (const auto &k : energyKeys()) {
            if (sub != k.key)
                continue;
            double v = 0;
            if (!parseDoubleStrict(value, v) || v < 0)
                return failAxis(name,
                                "wants a non-negative number, got '" +
                                    value + "'",
                                err);
            return Applier([field = k.field, v](DesignPoint &p) {
                p.cfg.energy.*field = v;
            });
        }
    }
    return failAxis(name, "unknown axis name", err);
}

} // namespace

bool
validateAxis(const Axis &axis, std::string *err)
{
    for (const std::string &value : axis.values)
        if (!makeApplier(axis.name, value, err))
            return false;
    return true;
}

std::optional<ParamSpace>
ParamSpace::build(const ScenarioSpec &spec, std::string *err)
{
    ParamSpace space;
    space.spec_ = spec;
    for (const Axis &axis : spec.axes) {
        if (axis.values.empty()) {
            if (err)
                *err = "axis '" + axis.name +
                       "': wants at least one value";
            return std::nullopt;
        }
        std::vector<Applier> appliers;
        for (const std::string &value : axis.values) {
            auto a = makeApplier(axis.name, value, err);
            if (!a)
                return std::nullopt;
            appliers.push_back(std::move(*a));
        }
        if (space.numPoints_ >
            std::numeric_limits<std::size_t>::max() /
                appliers.size()) {
            if (err)
                *err = "design space overflows size_t";
            return std::nullopt;
        }
        space.numPoints_ *= appliers.size();
        space.appliers_.push_back(std::move(appliers));
    }

    // Cross-cutting constraints the per-axis value checks cannot
    // see. Both are checked WITHOUT walking the full cross product —
    // a sharded million-point sweep must not pay O(numPoints) at
    // startup in every shard:
    //
    //  - side=both is static-only, and side/strategy combine freely,
    //    so the conflict exists iff 'both' and 'dynamic' are each
    //    reachable on their axis (or fixed in [search]);
    //  - geometry validity depends only on the geometry-affecting
    //    axes, so it suffices to validate their (usually tiny)
    //    sub-product with every other axis at its base value.
    auto findAxis = [&](const char *name) -> const Axis * {
        for (const Axis &axis : spec.axes)
            if (axis.name == name)
                return &axis;
        return nullptr;
    };
    auto hasValue = [](const Axis *axis, const char *value) {
        return std::find(axis->values.begin(), axis->values.end(),
                         value) != axis->values.end();
    };
    // An axis shadows the [search] fixed value completely: a point's
    // side/strategy is the axis value whenever the axis exists.
    const Axis *side_axis = findAxis("side");
    const Axis *strat_axis = findAxis("strategy");
    const bool both_reachable =
        side_axis ? hasValue(side_axis, "both")
                  : spec.search.side == SweepSide::Both;
    const bool dynamic_reachable =
        strat_axis ? hasValue(strat_axis, "dynamic")
                   : spec.search.strategy == Strategy::Dynamic;
    if (both_reachable && dynamic_reachable) {
        if (err)
            *err = "side 'both' supports only strategy 'static' "
                   "(each side is profiled separately)";
        return std::nullopt;
    }

    // A 'mix' axis replaces the workload dimension: enumerating it
    // against several apps would duplicate every mix cell once per
    // app. Insist the app list is a single label.
    const Axis *mix_axis = findAxis("mix");
    if (mix_axis && spec.apps.size() != 1) {
        if (err)
            *err = "a 'mix' axis names the workloads itself; pin "
                   "[workloads] apps to exactly one (label) app";
        return std::nullopt;
    }

    // A K-program mix needs K cores in every cell it can land in —
    // cycling fills extra cores, but a missing core would silently
    // drop programs from the simulation. Mixes and core counts
    // combine freely (independent axes), so worst cell = widest mix
    // vs fewest cores.
    std::size_t widest_mix = 1;
    std::string widest_name;
    const auto noteMix = [&](const std::string &name) {
        const std::size_t n =
            1 + static_cast<std::size_t>(
                    std::count(name.begin(), name.end(), '+'));
        if (n > widest_mix) {
            widest_mix = n;
            widest_name = name;
        }
    };
    if (mix_axis) {
        for (const std::string &v : mix_axis->values)
            noteMix(v);
    } else {
        for (const std::string &app : spec.apps)
            noteMix(app);
    }
    const Axis *cores_axis = findAxis("cores");
    std::uint64_t fewest_cores = spec.system.cores;
    if (cores_axis) {
        fewest_cores = ~std::uint64_t{0};
        for (const std::string &v : cores_axis->values) {
            unsigned long long n = 0;
            parseU64Strict(v, n); // validated by makeApplier above
            fewest_cores = std::min<std::uint64_t>(fewest_cores, n);
        }
    }
    if (widest_mix > fewest_cores) {
        if (err)
            *err = "mix '" + widest_name + "' runs " +
                   std::to_string(widest_mix) +
                   " programs but only " +
                   std::to_string(fewest_cores) +
                   " core(s) are configured; set [cores] count or a "
                   "cores axis to at least " +
                   std::to_string(widest_mix);
        return std::nullopt;
    }

    // The round-robin quantum only governs full-detail runs (sampled
    // runs interleave whole sampling periods), so a quantum axis in
    // an always-sampled scenario would enumerate cells whose rows are
    // all identical.
    if (findAxis("quantum")) {
        const Axis *si = findAxis("sample.interval");
        const bool full_detail_reachable =
            si ? hasValue(si, "0")
               : spec.engine.mode == EngineMode::Full;
        if (!full_detail_reachable) {
            if (err)
                *err = "a 'quantum' axis has no effect under sampled "
                       "simulation (cores interleave whole sampling "
                       "periods); drop the axis or sweep "
                       "sample.interval with a 0 (full-detail) value";
            return std::nullopt;
        }
    }

    // The analytic engine prices static single-core geometries only
    // (src/analytic/). A sample.interval axis is rejected outright:
    // its values silently switch the whole cell to another engine,
    // which under an analytic scenario can only be a mistake.
    if (spec.engine.analytic()) {
        if (dynamic_reachable) {
            if (err)
                *err = "the analytic engine prices static "
                       "geometries only; strategy 'dynamic' needs "
                       "the full or sampled engine";
            return std::nullopt;
        }
        bool multi_core_reachable = spec.system.cores > 1;
        if (cores_axis)
            for (const std::string &v : cores_axis->values)
                multi_core_reachable |= v != "1";
        if (multi_core_reachable) {
            if (err)
                *err = "the analytic engine supports single-core "
                       "configurations only; drop [cores] / the "
                       "cores axis or use the full engine";
            return std::nullopt;
        }
        if (findAxis("sample.interval")) {
            if (err)
                *err = "a 'sample.interval' axis cannot combine "
                       "with the analytic engine (its values would "
                       "silently switch engines per cell)";
            return std::nullopt;
        }
        // The single-pass stack-distance math is exact for true LRU
        // and meaningless for any other policy, so reject non-lru
        // policies up front instead of reporting wrong miss counts.
        const Axis *policy_axis = findAxis("policy");
        bool non_lru_reachable = spec.system.policy != "lru";
        if (policy_axis)
            for (const std::string &v : policy_axis->values)
                non_lru_reachable |= v != "lru";
        if (non_lru_reachable) {
            if (err)
                *err = "the analytic engine models true-LRU caches "
                       "only; drop the [system] policy / policy axis "
                       "or use the full or sampled engine";
            return std::nullopt;
        }
    }

    std::vector<std::size_t> geom_axes;
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const std::string &name = spec.axes[i].name;
        if (name == "assoc" || name.rfind("il1.", 0) == 0 ||
            name.rfind("dl1.", 0) == 0 || name.rfind("l2.", 0) == 0)
            geom_axes.push_back(i);
    }
    std::size_t geom_points = 1;
    for (std::size_t i : geom_axes)
        geom_points *= spec.axes[i].values.size();
    for (std::size_t g = 0; g < geom_points; ++g) {
        DesignPoint p;
        p.cfg = spec.system;
        std::string label;
        std::size_t rest = g;
        for (std::size_t k = geom_axes.size(); k-- > 0;) {
            const std::size_t i = geom_axes[k];
            const std::size_t v = rest % spec.axes[i].values.size();
            rest /= spec.axes[i].values.size();
            space.appliers_[i][v](p);
            label = spec.axes[i].name + "=" +
                    spec.axes[i].values[v] +
                    (label.empty() ? "" : ";" + label);
        }
        struct NamedGeom
        {
            const char *name;
            const CacheGeometry &geom;
        };
        for (const NamedGeom ng :
             {NamedGeom{"il1", p.cfg.il1}, NamedGeom{"dl1", p.cfg.dl1},
              NamedGeom{"l2", p.cfg.l2}}) {
            const std::string why = ng.geom.validate();
            if (!why.empty()) {
                if (err)
                    *err = "design point '" +
                           (label.empty() ? "<base>" : label) +
                           "': " + ng.name + ": " + why;
                return std::nullopt;
            }
        }
    }
    return space;
}

std::vector<std::size_t>
ParamSpace::coords(std::size_t idx) const
{
    rc_assert(idx < numPoints_);
    std::vector<std::size_t> c(appliers_.size(), 0);
    for (std::size_t i = appliers_.size(); i-- > 0;) {
        c[i] = idx % appliers_[i].size();
        idx /= appliers_[i].size();
    }
    return c;
}

DesignPoint
ParamSpace::point(std::size_t idx) const
{
    DesignPoint p;
    p.cfg = spec_.system;
    p.side = spec_.search.side;
    p.org = spec_.search.org;
    p.strategy = spec_.search.strategy;
    p.engine = spec_.engine;

    const auto c = coords(idx);
    std::string axes;
    for (std::size_t i = 0; i < appliers_.size(); ++i) {
        appliers_[i][c[i]](p);
        if (i)
            axes += ';';
        axes += spec_.axes[i].name + "=" + spec_.axes[i].values[c[i]];
    }
    p.axes = std::move(axes);
    return p;
}

} // namespace rcache
