/**
 * @file
 * Declarative scenario specs: the design-space description layer.
 *
 * A scenario file describes one design-space sweep — the base system,
 * the workloads, the swept axes, the simulation engine, and the
 * search configuration — in a line-oriented `key = value` format:
 *
 *     # fig4: static ways-vs-sets across associativities
 *     [scenario]
 *     name = fig4-organizations
 *     insts = 400000
 *
 *     [system]
 *     l2.size = 524288
 *
 *     [workloads]
 *     apps = all
 *
 *     [axes]
 *     side = dcache,icache
 *     assoc = 2,4,8,16
 *     org = ways,sets
 *
 *     [search]
 *     strategy = static
 *
 * A [cores] section (count/quantum/models) selects the
 * multi-programmed shared-L2 system, and [workloads] apps accepts
 * '+'-joined mixes ("gcc+m88ksim") cycled across the cores; see
 * sim/multi_core_system.hh.
 *
 * An [engine] section selects the simulation engine (sim/engine.hh):
 * `mode = full|sampled|analytic`, with `interval`/`detail`/`warmup`
 * describing the period shape when mode is sampled. The deprecated
 * [sampling] section still parses (interval = 0 maps to full detail,
 * anything else to a sampled engine, with an RC_LOG(warn)
 * deprecation notice); a file may use one of the two sections, not
 * both, and print() always emits the canonical [engine] form.
 *
 * Sections may appear in any order and may be omitted (defaults
 * apply); every key inside a section must belong to that section.
 * Parsing is strict in the CLI's style: the first malformed line
 * stops the parse with exactly one `file:line: message` diagnostic.
 *
 * ScenarioSpec::print writes the canonical serialization: sections in
 * a fixed order, [system] keys only where they differ from the
 * defaults. The round-trip invariant `parse(print(spec)) == spec`
 * holds for every spec this parser can produce and is pinned by
 * tests/scenario/scenario_spec_test.cc.
 *
 * The axes themselves are enumerated by scenario/param_space.hh; this
 * header is pure data + (de)serialization.
 */

#ifndef RCACHE_SCENARIO_SCENARIO_SPEC_HH
#define RCACHE_SCENARIO_SCENARIO_SPEC_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/search_grid.hh"
#include "sim/system.hh"

namespace rcache
{

/** Which L1(s) a scenario's searches resize. */
enum class SweepSide
{
    ICache,
    DCache,
    /** Both caches, each at its individually profiled static level
     *  (the paper's Fig 9 methodology; static-only). */
    Both,
};

/** Printable side name ("icache" / "dcache" / "both"). */
std::string sweepSideName(SweepSide side);

/** One named sweep axis: an ordered list of values to enumerate. */
struct Axis
{
    /** Registry name ("org", "assoc", "lat.l2", "energy.clock", ...);
     *  scenario/param_space.hh holds the registry. */
    std::string name;
    /** Unparsed value tokens, in sweep order. */
    std::vector<std::string> values;

    bool operator==(const Axis &o) const = default;
};

/** How `rcache-sim tune` allocates runs across the design space. */
enum class SearchMode
{
    /** Every cell at the scenario's engine (the sweep default). */
    Exhaustive,
    /** Successive halving over the fidelity ladder (src/search/). */
    Adaptive,
};

/** Printable mode name ("exhaustive" / "adaptive"). */
std::string searchModeName(SearchMode mode);

/** Parse a mode name; nullopt on an unknown one. */
std::optional<SearchMode> parseSearchModeToken(const std::string &t);

/**
 * Adaptive-search configuration (`[search] mode = adaptive`): how
 * successive halving walks the engine fidelity ladder. Consumed by
 * src/search/adaptive_search.hh; ignored by exhaustive sweeps.
 */
struct AdaptiveSpec
{
    /**
     * Engine per round, cheapest first; the last rung verifies the
     * finalists and stamps the winner. Scenarios outside the
     * analytic envelope (dynamic strategies, multi-core) start the
     * ladder at `sampled` instead.
     */
    std::vector<EngineMode> ladder{EngineMode::Analytic,
                                   EngineMode::Sampled,
                                   EngineMode::Full};
    /**
     * Fraction of candidates promoted out of each non-final round,
     * one entry per rung transition (the last entry repeats if the
     * ladder is longer). Values lie in (0, 1].
     */
    std::vector<double> promote{0.25};
    /** Never promote fewer than this many candidates. */
    std::uint64_t minSurvivors = 4;
    /**
     * Early exit: stop after a non-first round whose top-K ranking
     * exactly matches the previous round's (0 = off).
     */
    std::uint64_t rankAgree = 0;
    /**
     * Sampled-rung period budget, instructions per period (0 = the
     * SamplingConfig default); detail and warmup follow the
     * documented defaulting rules.
     */
    std::uint64_t sampleInterval = 0;

    bool operator==(const AdaptiveSpec &o) const = default;
};

/**
 * Per-cell search configuration: the fixed design-point coordinates
 * (overridden by any axis of the same name) and the dynamic
 * controller's offline-profiling grid.
 */
struct SearchSpec
{
    Organization org = Organization::SelectiveSets;
    Strategy strategy = Strategy::Static;
    SweepSide side = SweepSide::DCache;

    /** The dynamic controller's profiling grid, fed straight into
     *  Experiment::setSearchGrid (sim/search_grid.hh holds the
     *  defaults — one source of truth for both layers). */
    SearchGrid dynGrid;

    /** Allocation mode for `rcache-sim tune` (sweeps are always
     *  exhaustive regardless of this field). */
    SearchMode mode = SearchMode::Exhaustive;
    /** Successive-halving knobs, meaningful under mode = adaptive. */
    AdaptiveSpec adaptive;

    bool operator==(const SearchSpec &o) const = default;
};

/**
 * Telemetry sidecar outputs for a scenario sweep ([telemetry]
 * section). All paths are empty by default — telemetry is opt-in and
 * provably absent from the simulated runs when off. CLI flags of the
 * same name override these per invocation (src/telemetry/ has the
 * recorders; the sweep engine owns the files).
 */
struct TelemetrySpec
{
    /** Interval-timeline JSONL path ("" = off). */
    std::string timeline;
    /** Resize-decision event-trace JSONL path ("" = off). */
    std::string events;
    /** Chrome trace-event JSON path for runner spans ("" = off). */
    std::string traceEvents;
    /** Timeline sampling interval, instructions per sample. */
    std::uint64_t interval = 10000;

    bool operator==(const TelemetrySpec &o) const = default;
};

/** See file comment. */
struct ScenarioSpec
{
    std::string name = "unnamed";
    /** Instructions per simulated run. */
    std::uint64_t insts = 400000;
    /** Base system; axes perturb copies of it per design point. */
    SystemConfig system;
    /** Benchmark profile names; empty means the whole suite. */
    std::vector<std::string> apps;
    /** Swept axes, outermost first. */
    std::vector<Axis> axes;
    /**
     * Engine selection ([engine] section; the deprecated [sampling]
     * section parses into the same field). Canonical form: the
     * sampling shape is default-constructed unless mode == Sampled.
     */
    EngineSpec engine;
    TelemetrySpec telemetry;
    SearchSpec search;

    bool operator==(const ScenarioSpec &o) const = default;

    /**
     * Parse a scenario from @p in. On failure returns nullopt and
     * sets @p err to one "<filename>:<line>: <message>" line.
     * @param filename used only for diagnostics
     */
    static std::optional<ScenarioSpec> parse(std::istream &in,
                                             const std::string &filename,
                                             std::string *err);

    /** Parse @p text (convenience for tests and embedded specs). */
    static std::optional<ScenarioSpec>
    parseText(const std::string &text, const std::string &filename,
              std::string *err);

    /** Open and parse @p path; diagnostics carry the path. */
    static std::optional<ScenarioSpec>
    parseFile(const std::string &path, std::string *err);

    /** Write the canonical serialization (see file comment). */
    void print(std::ostream &os) const;

    /** print() into a string. */
    std::string printToString() const;
};

/**
 * Deterministic identity of a SystemConfig's scenario-visible state
 * (every [system] key plus the org fields). Two configs built from
 * the same scenario compare equal iff their keys are equal, which is
 * what the sweep engine's baseline memo keys on.
 */
std::string systemConfigKey(const SystemConfig &cfg);

/** @name Key tables
 * The single source of the scenario key registry, shared by the
 * parser, the printer, and the axis registry in param_space.cc so
 * the three cannot drift.
 */
/// @{

/** One integer-valued [system] key. */
struct SystemKeyU64
{
    const char *key;
    std::uint64_t (*get)(const SystemConfig &);
    void (*set)(SystemConfig &, std::uint64_t);
};

/** One EnergyParams field, addressed as "energy.<key>". */
struct EnergyKey
{
    const char *key;
    double EnergyParams::*field;
};

const std::vector<SystemKeyU64> &systemKeysU64();
const std::vector<EnergyKey> &energyKeys();
/// @}

/** @name Token parsers (shared with the CLI and the axis registry) */
/// @{
std::optional<Organization> parseOrganizationToken(const std::string &t);
std::optional<Strategy> parseStrategyToken(const std::string &t);
std::optional<SweepSide> parseSweepSideToken(const std::string &t);
std::optional<CoreModel> parseCoreModelToken(const std::string &t);
/** Short org token used in reports ("none"/"ways"/"sets"/"hybrid"). */
std::string organizationToken(Organization org);
std::string coreModelToken(CoreModel m);
/** '+'-joined per-core model list ("ooo+inorder"); nullopt on any
 *  unknown entry. */
std::optional<std::vector<CoreModel>>
parseCoreModelListToken(const std::string &t);
std::string coreModelListToken(const std::vector<CoreModel> &models);
/// @}

} // namespace rcache

#endif // RCACHE_SCENARIO_SCENARIO_SPEC_HH
