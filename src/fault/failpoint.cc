#include "fault/failpoint.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/numformat.hh"

namespace rcache::fault
{

std::atomic<bool> g_failpointsArmed{false};

namespace
{

enum class Action
{
    Crash,
    IoError,
    Torn,
    Delay,
};

struct SiteState
{
    Action action = Action::Crash;
    /** 1-based hit index the action fires on (exactly once). */
    std::uint64_t fireAt = 1;
    std::uint64_t delayMs = 0;
    std::uint64_t hits = 0;
};

std::mutex g_mutex;
std::map<std::string, SiteState> &
sites()
{
    static std::map<std::string, SiteState> s;
    return s;
}

bool
isKnownSite(const std::string &name)
{
    for (const SiteInfo &s : knownFailpoints())
        if (name == s.name)
            return true;
    return false;
}

/** Parse one "site=action[@N]" entry into (name, state). */
bool
parseEntry(const std::string &item, std::string &name,
           SiteState &state, std::string *why)
{
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
        *why = "'" + item + "' wants SITE=ACTION[@N]";
        return false;
    }
    name = item.substr(0, eq);
    if (!isKnownSite(name)) {
        *why = "unknown site '" + name +
               "' (see 'rcache-sim list-failpoints')";
        return false;
    }
    std::string action = item.substr(eq + 1);
    const std::size_t at = action.find('@');
    if (at != std::string::npos) {
        unsigned long long n = 0;
        if (!parseU64Strict(action.substr(at + 1), n) || n == 0) {
            *why = "'" + item + "': '@N' wants a positive hit index";
            return false;
        }
        state.fireAt = n;
        action = action.substr(0, at);
    }
    std::string arg;
    const std::size_t colon = action.find(':');
    if (colon != std::string::npos) {
        arg = action.substr(colon + 1);
        action = action.substr(0, colon);
    }
    if (action == "crash") {
        state.action = Action::Crash;
    } else if (action == "io_error") {
        state.action = Action::IoError;
    } else if (action == "torn") {
        state.action = Action::Torn;
    } else if (action == "delay") {
        state.action = Action::Delay;
        state.delayMs = 100;
        if (!arg.empty()) {
            unsigned long long ms = 0;
            if (!parseU64Strict(arg, ms)) {
                *why = "'" + item +
                       "': 'delay:MS' wants a millisecond count";
                return false;
            }
            state.delayMs = ms;
        }
        arg.clear();
    } else {
        *why = "'" + item + "': unknown action '" + action +
               "' (crash|io_error|torn|delay[:MS])";
        return false;
    }
    if (!arg.empty()) {
        *why = "'" + item + "': only delay takes a ':MS' argument";
        return false;
    }
    return true;
}

} // namespace

const std::vector<SiteInfo> &
knownFailpoints()
{
    static const std::vector<SiteInfo> registry = {
        {"claim.manifest.scn.after",
         "after MANIFEST.scn publishes, before the MANIFEST.meta "
         "commit"},
        {"claim.manifest.meta.write",
         "while writing MANIFEST.meta (the manifest commit point; "
         "torn leaves a partial meta)"},
        {"claim.lease.after_create",
         "after a unit lease file is created"},
        {"claim.heartbeat",
         "at a per-chunk lease heartbeat (io_error simulates a "
         "failed mtime bump)"},
        {"claim.takeover.aside",
         "after a stale lease is renamed aside, before the fresh "
         "claim"},
        {"claim.unit.publish",
         "after a sweep unit's CSV tmp file is written, before its "
         "rename into place"},
        {"claim.done.before",
         "before a unit's done marker is written"},
        {"atomic.publish",
         "inside atomicWriteFile, after the tmp write, before the "
         "rename (manifest scenario text, tune unit CSVs)"},
        {"csv.chunk.flush",
         "at a sweep CSV chunk append+flush"},
        {"log.append",
         "at a tune decision-log line append+flush"},
        {"tune.winner.write",
         "while writing the tune winner CSV"},
        {"telemetry.timeline.append",
         "at a timeline JSONL append"},
        {"telemetry.events.append",
         "at a resize-events JSONL append"},
        {"telemetry.trace.write",
         "while writing the Chrome trace-event file"},
        {"merge.out.flush",
         "at the merged report's final write+flush"},
    };
    return registry;
}

bool
armFailpoints(const std::string &spec, std::string *err)
{
    const auto failWith = [&](const std::string &why) {
        if (err)
            *err = "failpoint spec '" + spec + "': " + why;
        return false;
    };
    std::map<std::string, SiteState> parsed;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            return failWith("empty entry");
        std::string name, why;
        SiteState state;
        if (!parseEntry(item, name, state, &why))
            return failWith(why);
        parsed[name] = state;
        if (comma == std::string::npos)
            break;
    }
    if (parsed.empty())
        return failWith("no sites");
    std::lock_guard<std::mutex> lock(g_mutex);
    for (const auto &[name, state] : parsed)
        sites()[name] = state;
    g_failpointsArmed.store(true, std::memory_order_relaxed);
    return true;
}

bool
armFailpointsFromEnv(std::string *err)
{
    const char *spec = std::getenv("RC_FAILPOINT");
    if (spec == nullptr || *spec == '\0')
        return true;
    return armFailpoints(spec, err);
}

void
disarmFailpoints()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    sites().clear();
    g_failpointsArmed.store(false, std::memory_order_relaxed);
}

std::uint64_t
failpointHits(const std::string &site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = sites().find(site);
    return it == sites().end() ? 0 : it->second.hits;
}

Fire
failpointHit(const char *site)
{
    Action action;
    std::uint64_t delay_ms = 0;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        const auto it = sites().find(site);
        if (it == sites().end())
            return Fire::None;
        SiteState &state = it->second;
        if (++state.hits != state.fireAt)
            return Fire::None;
        action = state.action;
        delay_ms = state.delayMs;
    }
    switch (action) {
    case Action::Crash:
        failpointCrash(site, "crash");
    case Action::Delay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        return Fire::None;
    case Action::IoError:
        std::fprintf(stderr,
                     "rcache-sim: failpoint '%s' fired: io_error\n",
                     site);
        return Fire::IoError;
    case Action::Torn:
        std::fprintf(stderr,
                     "rcache-sim: failpoint '%s' fired: torn\n",
                     site);
        return Fire::Torn;
    }
    return Fire::None;
}

void
failpointCrash(const char *site, const char *what)
{
    // stderr is unbuffered, so the note survives the abrupt exit;
    // _exit skips every flush and atexit hook — the whole point is
    // that nothing buffered reaches disk.
    std::fprintf(stderr,
                 "rcache-sim: failpoint '%s' fired: %s (_exit 137)\n",
                 site, what);
    ::_exit(137);
}

} // namespace rcache::fault
