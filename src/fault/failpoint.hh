/**
 * @file
 * Deterministic fault injection: named failpoint *sites* threaded
 * through every durability seam (lease protocol, chunked CSV commit,
 * decision-log append, tmp+rename publishes, telemetry sidecars).
 *
 * A site is a string constant evaluated with RC_FAILPOINT("name").
 * Disarmed — the normal case — the macro is a single relaxed atomic
 * load and the site costs nothing. Armed via the RC_FAILPOINT
 * environment variable or the --failpoint CLI option with a spec like
 *
 *   claim.lease.after_create=crash@2,csv.chunk.flush=io_error
 *
 * each named site counts its hits and fires exactly on the Nth
 * (@N, default 1) with one of four actions:
 *
 *   crash     _exit(137) on the spot — an abrupt kill, nothing
 *             buffered gets flushed (the interesting durability case)
 *   io_error  the macro returns Fire::IoError; the call site models a
 *             write the filesystem refused (ENOSPC, dead device)
 *   torn      the macro returns Fire::Torn; a checked writer commits
 *             half the payload and then crashes — a torn write
 *   delay     sleep delayMs (default 100, "delay:MS") and continue —
 *             for widening race windows in takeover tests
 *
 * The registry of known sites is closed: arming an unknown site is a
 * spec error, so a test driver can enumerate knownFailpoints() (or
 * `rcache-sim list-failpoints`) and prove every site is covered by a
 * crash-recovery flow.
 */

#ifndef RCACHE_FAULT_FAILPOINT_HH
#define RCACHE_FAULT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rcache::fault
{

/** What an evaluated site tells its caller to simulate. (crash and
 *  delay never return: they are handled inside the evaluation.) */
enum class Fire
{
    None,
    IoError,
    Torn,
};

/** One registered site. */
struct SiteInfo
{
    const char *name;
    const char *description;
};

/** Every site the codebase evaluates, with a one-line description
 *  (the `rcache-sim list-failpoints` output). */
const std::vector<SiteInfo> &knownFailpoints();

/**
 * Arm sites from @p spec ("site=action[@N][,site=action[@N]]...",
 * actions crash|io_error|torn|delay[:MS]). Unknown sites, malformed
 * entries, and zero hit indices are errors. Arming is cumulative
 * until disarmFailpoints().
 * @return false with @p err set on a bad spec (nothing is armed).
 */
bool armFailpoints(const std::string &spec, std::string *err);

/** Arm from the RC_FAILPOINT environment variable; an unset or empty
 *  variable arms nothing and succeeds. */
bool armFailpointsFromEnv(std::string *err);

/** Drop every armed site and reset hit counters (tests). */
void disarmFailpoints();

/** How often an *armed* @p site has been evaluated (0 when not
 *  armed; disarmed sites never reach the counting slow path). */
std::uint64_t failpointHits(const std::string &site);

/** @cond internal — the macro's fast-path gate. */
extern std::atomic<bool> g_failpointsArmed;
inline bool
anyFailpointArmed()
{
    return g_failpointsArmed.load(std::memory_order_relaxed);
}
/** @endcond */

/** Slow path: count a hit on @p site and act. Crash exits here;
 *  delay sleeps here; io_error/torn are returned for the call site
 *  to model. */
Fire failpointHit(const char *site);

/** Print the one-line "failpoint fired" note for @p site and
 *  _exit(137) without flushing anything — the simulated crash used
 *  by the crash and torn actions. */
[[noreturn]] void failpointCrash(const char *site, const char *what);

} // namespace rcache::fault

/**
 * Evaluate failpoint @p site. Compiles to a relaxed atomic load when
 * nothing is armed; define RCACHE_NO_FAILPOINTS to compile every
 * site out entirely.
 */
#ifdef RCACHE_NO_FAILPOINTS
#define RC_FAILPOINT(site) (::rcache::fault::Fire::None)
#else
#define RC_FAILPOINT(site)                                                 \
    (::rcache::fault::anyFailpointArmed()                                  \
         ? ::rcache::fault::failpointHit(site)                             \
         : ::rcache::fault::Fire::None)
#endif

#endif // RCACHE_FAULT_FAILPOINT_HH
