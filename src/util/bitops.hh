/**
 * @file
 * Bit-manipulation helpers used throughout the cache geometry code.
 */

#ifndef RCACHE_UTIL_BITOPS_HH
#define RCACHE_UTIL_BITOPS_HH

#include <cstdint>

#include "util/logging.hh"

namespace rcache
{

/** Address type used by the whole simulator (byte addresses). */
using Addr = std::uint64_t;

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Integer ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOfTwo(v) ? 0 : 1);
}

/** Exact log2 of a power of two; panics otherwise. */
inline unsigned
exactLog2(std::uint64_t v)
{
    rc_assert(isPowerOfTwo(v));
    return floorLog2(v);
}

/** A mask with the low @p bits bits set. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bitSlice(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & lowMask(len);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Count set bits. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

} // namespace rcache

#endif // RCACHE_UTIL_BITOPS_HH
