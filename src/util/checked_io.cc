#include "util/checked_io.hh"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <ostream>

#include "fault/failpoint.hh"

namespace rcache
{

void
ioFatal(const std::string &path)
{
    std::cerr << "rcache-sim: error writing '" << path
              << "' (disk full or device error?); completed output "
                 "was flushed before this point\n";
    std::exit(kIoErrorExit);
}

namespace
{

/** Evaluate @p site; returns true when the write must be dropped
 *  (io_error). Torn never returns. */
bool
injectWriteFault(std::ostream &os, std::string_view text,
                 const char *site)
{
    if (site == nullptr)
        return false;
    const fault::Fire fire = RC_FAILPOINT(site);
    if (fire == fault::Fire::None)
        return false;
    if (fire == fault::Fire::Torn) {
        // Half the payload reaches the stream and is flushed, then
        // the process dies without another byte — a torn write.
        os.write(text.data(),
                 static_cast<std::streamsize>(text.size() / 2));
        os.flush();
        fault::failpointCrash(site, "torn write");
    }
    return true;
}

} // namespace

void
checkedAppend(std::ostream &os, std::string_view text,
              const std::string &path, const char *site)
{
    if (injectWriteFault(os, text, site))
        os.setstate(std::ios::badbit);
    else
        os.write(text.data(),
                 static_cast<std::streamsize>(text.size()));
    os.flush();
    if (!os)
        ioFatal(path);
}

void
checkedFlush(std::ostream &os, const std::string &path,
             const char *site)
{
    if (site != nullptr && RC_FAILPOINT(site) != fault::Fire::None)
        os.setstate(std::ios::badbit);
    os.flush();
    if (!os)
        ioFatal(path);
}

std::optional<std::string>
quarantineCorruptFile(const std::string &path)
{
    const std::string aside =
        path + ".corrupt." + std::to_string(std::time(nullptr));
    if (std::rename(path.c_str(), aside.c_str()) != 0)
        return std::nullopt;
    return aside;
}

} // namespace rcache
