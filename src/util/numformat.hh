/**
 * @file
 * Deterministic, locale-independent number formatting shared by the
 * report writers and the scenario serializer. Equal values always
 * produce identical bytes, which is what makes sweep CSVs and
 * canonical scenario prints byte-stable across machines and locales.
 */

#ifndef RCACHE_UTIL_NUMFORMAT_HH
#define RCACHE_UTIL_NUMFORMAT_HH

#include <string>

namespace rcache
{

/**
 * Shortest decimal form that round-trips the double: integral values
 * print as plain integers ("50", not "5e+01"), everything else at the
 * smallest precision that parses back bit-identically. Uses only
 * digits, '.', '-', 'e' regardless of the global locale.
 */
std::string shortestDouble(double v);

/**
 * Strict parse of shortestDouble() output (or any plain decimal /
 * scientific literal): the whole string must be consumed.
 * @return false on garbage, overflow, or an empty string
 */
bool parseDoubleStrict(const std::string &text, double &out);

/** Strict non-negative decimal integer parse (whole string). */
bool parseU64Strict(const std::string &text, unsigned long long &out);

} // namespace rcache

#endif // RCACHE_UTIL_NUMFORMAT_HH
