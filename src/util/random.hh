/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic workloads and the random replacement policy both need
 * reproducible streams; std::mt19937_64 seeding is standardized, but we
 * use a small splitmix64/xoshiro-style generator so the stream is cheap
 * and identical across library implementations.
 */

#ifndef RCACHE_UTIL_RANDOM_HH
#define RCACHE_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>

#include "util/logging.hh"

namespace rcache
{

/**
 * Deterministic 64-bit PRNG (xoshiro256** seeded by splitmix64).
 *
 * The draw methods are defined inline: the synthetic workload
 * generator makes several draws per instruction, so a cross-TU call
 * per draw is measurable on the simulation hot path.
 */
class Rng
{
  public:
    /** Construct with a seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Modulo bias is irrelevant at workload scale; keep it
        // branch-free.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Precomputed integer threshold such that chanceThr(threshold)
     * consumes one draw and returns exactly chance(p) for every rng
     * state. Derivation: chance(p) is x * 2^-53 < p for the draw
     * x = next() >> 11 in [0, 2^53). Scaling by 2^53 is exact for
     * doubles, so the condition is the real comparison x < p * 2^53,
     * and for integer x that is x < ceil(p * 2^53) (no integer lies
     * in (floor, ceil) when the bound is fractional; equality when it
     * is integral). Callers with a fixed p hoist the threshold out of
     * per-instruction loops, replacing an int-to-double conversion
     * and a double compare per draw with one integer compare.
     */
    static std::uint64_t
    chanceThreshold(double p)
    {
        const double bound = p * 9007199254740992.0; // p * 2^53
        if (!(bound > 0.0))
            return 0; // p <= 0 (or NaN): never true
        const double up = std::ceil(bound);
        if (up >= 9007199254740992.0)
            return std::uint64_t{1} << 53; // p >= 1: always true
        return static_cast<std::uint64_t>(up);
    }

    /** One Bernoulli draw against a chanceThreshold(p) value. */
    bool
    chanceThr(std::uint64_t threshold)
    {
        return (next() >> 11) < threshold;
    }

    /** Geometric-ish draw: value in [1, max] biased toward small. */
    std::uint64_t nextGeometric(double p, std::uint64_t max);

    /** nextGeometric with the success chance pre-thresholded; draws
     *  and results match nextGeometric(p, max) exactly. */
    std::uint64_t
    nextGeometricThr(std::uint64_t threshold, std::uint64_t max)
    {
        rc_assert(max >= 1);
        std::uint64_t v = 1;
        while (v < max && !chanceThr(threshold))
            ++v;
        return v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace rcache

#endif // RCACHE_UTIL_RANDOM_HH
