/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic workloads and the random replacement policy both need
 * reproducible streams; std::mt19937_64 seeding is standardized, but we
 * use a small splitmix64/xoshiro-style generator so the stream is cheap
 * and identical across library implementations.
 */

#ifndef RCACHE_UTIL_RANDOM_HH
#define RCACHE_UTIL_RANDOM_HH

#include <cstdint>

namespace rcache
{

/** Deterministic 64-bit PRNG (xoshiro256** seeded by splitmix64). */
class Rng
{
  public:
    /** Construct with a seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Geometric-ish draw: value in [1, max] biased toward small. */
    std::uint64_t nextGeometric(double p, std::uint64_t max);

  private:
    std::uint64_t s[4];
};

} // namespace rcache

#endif // RCACHE_UTIL_RANDOM_HH
