/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn() and inform() report conditions without stopping the run.
 *
 * Non-terminating output is leveled: every message carries a LogLevel
 * and only prints when at or below the global threshold. The
 * threshold starts from the RCACHE_LOG environment variable
 * (error|warn|info|debug, read once at first use; default info) and
 * can be moved at runtime with setLogLevel(). RC_LOG(level, msg) is
 * the generic leveled entry point; rc_warn/rc_inform are the warn-
 * and info-level shorthands that predate it.
 */

#ifndef RCACHE_UTIL_LOGGING_HH
#define RCACHE_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rcache
{

/**
 * Message severities, most to least severe. Enumerators are lowercase
 * so RC_LOG(warn, ...) reads like a level name at the call site.
 */
enum class LogLevel
{
    error = 0,
    warn = 1,
    info = 2,
    debug = 3,
};

/** Printable level name ("error"/"warn"/"info"/"debug"). */
const char *logLevelName(LogLevel level);

/** Parse a level name; returns false and leaves @p out alone on an
 *  unknown name. */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** The current global threshold (messages above it are dropped). */
LogLevel logLevel();

/** Move the global threshold. */
void setLogLevel(LogLevel level);

/** @return whether a message at @p level would print right now. */
bool logEnabled(LogLevel level);

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/** Report a simulator bug and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Report a suspicious-but-survivable condition (warn level). */
void warnImpl(const std::string &msg);

/** Report an informational status message (info level). */
void informImpl(const std::string &msg);

/**
 * Legacy verbosity switch: true restores the default info threshold,
 * false drops to warn (benches silence inform() this way).
 */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

} // namespace rcache

#define rc_panic(msg) ::rcache::panicImpl(__FILE__, __LINE__, (msg))
#define rc_fatal(msg) ::rcache::fatalImpl(__FILE__, __LINE__, (msg))
#define rc_warn(msg) ::rcache::warnImpl((msg))
#define rc_inform(msg) ::rcache::informImpl((msg))

/**
 * Leveled logging: RC_LOG(warn, "...") / RC_LOG(debug, "...").
 * @p level is a bare LogLevel enumerator name; the message argument
 * is not evaluated when the level is disabled.
 */
#define RC_LOG(level, msg)                                                 \
    do {                                                                   \
        if (::rcache::logEnabled(::rcache::LogLevel::level))               \
            ::rcache::logMessage(#level, (msg));                           \
    } while (0)

/**
 * Internal invariant check. Unlike assert(), stays on in release builds;
 * resizing mask/geometry bugs silently corrupt results otherwise.
 */
#define rc_assert(cond)                                                    \
    do {                                                                   \
        if (!(cond))                                                       \
            rc_panic(std::string("assertion failed: ") + #cond);           \
    } while (0)

#endif // RCACHE_UTIL_LOGGING_HH
