/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn() and inform() report conditions without stopping the run.
 */

#ifndef RCACHE_UTIL_LOGGING_HH
#define RCACHE_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rcache
{

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/** Report a simulator bug and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warnImpl(const std::string &msg);

/** Report an informational status message. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output globally (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

} // namespace rcache

#define rc_panic(msg) ::rcache::panicImpl(__FILE__, __LINE__, (msg))
#define rc_fatal(msg) ::rcache::fatalImpl(__FILE__, __LINE__, (msg))
#define rc_warn(msg) ::rcache::warnImpl((msg))
#define rc_inform(msg) ::rcache::informImpl((msg))

/**
 * Internal invariant check. Unlike assert(), stays on in release builds;
 * resizing mask/geometry bugs silently corrupt results otherwise.
 */
#define rc_assert(cond)                                                    \
    do {                                                                   \
        if (!(cond))                                                       \
            rc_panic(std::string("assertion failed: ") + #cond);           \
    } while (0)

#endif // RCACHE_UTIL_LOGGING_HH
