#include "util/interrupt.hh"

#include <csignal>

#include <unistd.h>

namespace rcache
{

namespace
{

volatile std::sig_atomic_t g_signal = 0;

void
onInterrupt(int sig)
{
    // Second signal: the user really means it — out, now. Async-
    // signal-safe by construction (_exit, no locks, no streams).
    if (g_signal != 0)
        ::_exit(128 + sig);
    g_signal = sig;
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onInterrupt;
    sigemptyset(&sa.sa_mask);
    // SA_RESTART: interrupted writes must not surface as spurious
    // EINTR I/O failures — the pollers notice the flag instead.
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return g_signal != 0;
}

int
interruptExitCode()
{
    return g_signal != 0 ? 128 + static_cast<int>(g_signal) : 0;
}

} // namespace rcache
