/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for the long-running drivers.
 *
 * sweep and tune install the handlers once; the engines poll
 * interruptRequested() at their commit boundaries (sweep: after a
 * chunk is written and flushed; tune: between rounds; claim workers:
 * between units). On the first signal the in-flight work finishes
 * and the driver exits 128+sig after leaving a documented resumable
 * state — the flushed CSV prefix for --resume, released leases for
 * --claim. A second signal exits immediately (the escape hatch when
 * the current chunk itself is the problem).
 */

#ifndef RCACHE_UTIL_INTERRUPT_HH
#define RCACHE_UTIL_INTERRUPT_HH

namespace rcache
{

/** Install the SIGINT/SIGTERM record-and-continue handlers. */
void installInterruptHandlers();

/** A signal arrived since installInterruptHandlers(). Always false
 *  when the handlers were never installed (library callers). */
bool interruptRequested();

/** 128+signal of the recorded signal (130 SIGINT, 143 SIGTERM);
 *  0 when none arrived. */
int interruptExitCode();

} // namespace rcache

#endif // RCACHE_UTIL_INTERRUPT_HH
