/**
 * @file
 * Checked stream writes for the durability seams. Every writer whose
 * output must survive a crash (sweep CSVs, decision logs, telemetry
 * sidecars, merge reports) appends through checkedAppend() /
 * checkedFlush(): the stream state is verified after every write and
 * an unacknowledged byte is an *environment* failure — full disk,
 * dead device — reported with a one-line diagnostic and exit 3,
 * never a silently truncated file.
 *
 * Both helpers take an optional failpoint site (fault/failpoint.hh):
 * io_error poisons the stream so the exit-3 path is exercised, torn
 * commits half the payload and crashes — the deterministic inputs of
 * the crash-recovery suite.
 */

#ifndef RCACHE_UTIL_CHECKED_IO_HH
#define RCACHE_UTIL_CHECKED_IO_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace rcache
{

/** Exit code for unacknowledged writes (distinct from 1 = internal
 *  fatal and 2 = usage/input error; see README "Fault tolerance"). */
constexpr int kIoErrorExit = 3;

/** Print the standard one-line I/O diagnostic naming @p path and
 *  exit 3. */
[[noreturn]] void ioFatal(const std::string &path);

/**
 * Append @p text to @p os and flush, verifying the stream accepted
 * every byte; exits 3 with a one-line diagnostic naming @p path on
 * failure. @p site, when non-null, is the RC_FAILPOINT evaluated
 * before the write.
 */
void checkedAppend(std::ostream &os, std::string_view text,
                   const std::string &path,
                   const char *site = nullptr);

/** Flush @p os and verify; exits 3 naming @p path on failure. */
void checkedFlush(std::ostream &os, const std::string &path,
                  const char *site = nullptr);

/**
 * Move a damaged input aside to "<path>.corrupt.<unix-ts>" so a
 * fresh start never destroys the evidence. @return the aside path,
 * or nullopt when the rename failed (callers proceed by overwriting
 * in place).
 */
std::optional<std::string>
quarantineCorruptFile(const std::string &path);

} // namespace rcache

#endif // RCACHE_UTIL_CHECKED_IO_HH
