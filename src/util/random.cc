#include "util/random.hh"

#include "util/logging.hh"

namespace rcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    rc_assert(bound != 0);
    // Modulo bias is irrelevant at workload scale; keep it branch-free.
    return next() % bound;
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p, std::uint64_t max)
{
    rc_assert(max >= 1);
    std::uint64_t v = 1;
    while (v < max && !chance(p))
        ++v;
    return v;
}

} // namespace rcache
