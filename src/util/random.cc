#include "util/random.hh"

#include "util/logging.hh"

namespace rcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::nextGeometric(double p, std::uint64_t max)
{
    rc_assert(max >= 1);
    std::uint64_t v = 1;
    while (v < max && !chance(p))
        ++v;
    return v;
}

} // namespace rcache
