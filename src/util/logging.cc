#include "util/logging.hh"

#include <atomic>

namespace rcache
{

namespace
{
std::atomic<bool> verboseFlag{true};
} // namespace

void
logMessage(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    logMessage("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag.load(std::memory_order_relaxed))
        logMessage("info", msg);
}

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

} // namespace rcache
