#include "util/logging.hh"

#include <atomic>

namespace rcache
{

namespace
{

/** Threshold seeded from RCACHE_LOG exactly once (thread-safe local
 *  static init); an unreadable value falls back to the default so a
 *  typo can never silence warnings below it. */
std::atomic<int> &
levelFlag()
{
    static std::atomic<int> level{[] {
        LogLevel l = LogLevel::info;
        if (const char *env = std::getenv("RCACHE_LOG")) {
            if (!parseLogLevel(env, l) && *env)
                std::fprintf(stderr,
                             "warn: RCACHE_LOG wants "
                             "error|warn|info|debug, got '%s'\n",
                             env);
        }
        return static_cast<int>(l);
    }()};
    return level;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::error:
        return "error";
      case LogLevel::warn:
        return "warn";
      case LogLevel::info:
        return "info";
      case LogLevel::debug:
        return "debug";
    }
    return "?";
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    for (LogLevel l : {LogLevel::error, LogLevel::warn, LogLevel::info,
                       LogLevel::debug}) {
        if (text == logLevelName(l)) {
            out = l;
            return true;
        }
    }
    return false;
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelFlag().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelFlag().store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           levelFlag().load(std::memory_order_relaxed);
}

void
logMessage(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::warn))
        logMessage("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::info))
        logMessage("info", msg);
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::info : LogLevel::warn);
}

bool
verbose()
{
    return logEnabled(LogLevel::info);
}

} // namespace rcache
