#include "util/numformat.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <locale>
#include <sstream>

namespace rcache
{

std::string
shortestDouble(double v)
{
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::ostringstream ss;
        ss.imbue(std::locale::classic());
        ss << static_cast<long long>(v);
        return ss.str();
    }
    std::ostringstream ss;
    ss.imbue(std::locale::classic());
    ss << std::setprecision(17) << v;
    std::string wide = ss.str();
    for (int prec = 1; prec < 17; ++prec) {
        std::ostringstream probe;
        probe.imbue(std::locale::classic());
        probe << std::setprecision(prec) << v;
        std::istringstream back(probe.str());
        back.imbue(std::locale::classic());
        double parsed = 0;
        back >> parsed;
        if (parsed == v)
            return probe.str();
    }
    return wide;
}

bool
parseDoubleStrict(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    // strtod is locale-sensitive for the decimal point; parse through
    // a classic-locale stream instead so "1.5" means 1.5 everywhere.
    std::istringstream ss(text);
    ss.imbue(std::locale::classic());
    double v = 0;
    ss >> v;
    if (ss.fail() || !ss.eof())
        return false;
    out = v;
    return true;
}

bool
parseU64Strict(const std::string &text, unsigned long long &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // namespace rcache
