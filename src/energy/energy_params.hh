/**
 * @file
 * Energy model constants (normalized units, 0.18 um flavour).
 *
 * Absolute joules are irrelevant to the paper's metric — relative
 * energy-delay against a non-resizable baseline — so constants are
 * normalized such that one L1 subarray precharge costs 1 unit. The
 * ratios follow the modelling assumptions of Wattch/CACTI as the paper
 * uses them:
 *
 *  - every *enabled* L1 subarray precharges on every access (the
 *    dominant term; this is exactly what resizing saves);
 *  - each access senses/reads as many ways as are enabled
 *    (selective-ways reads fewer ways, selective-sets always reads the
 *    full associativity);
 *  - selective-sets/hybrid carry a few extra tag bits, a small adder
 *    per way read (paper Section 3: 1-4 bits vs 256 bitlines);
 *  - L2 uses delayed precharge (less latency-critical), so its energy
 *    is per access and does not scale with the enabled L1 sizes;
 *  - clock distribution and leakage of enabled cache sections scale
 *    with enabled-bytes x cycles (disabled subarrays receive neither
 *    clock nor, with gated-Vdd, supply);
 *  - the rest of the processor dissipates per-event energies chosen so
 *    the base configuration spends ~18.5% of total energy in the
 *    d-cache and ~17.5% in the i-cache, matching the paper's measured
 *    shares (calibrated by tests/energy/calibration_test.cc).
 */

#ifndef RCACHE_ENERGY_ENERGY_PARAMS_HH
#define RCACHE_ENERGY_ENERGY_PARAMS_HH

namespace rcache
{

/** All energy-model constants. See file comment for rationale. */
struct EnergyParams
{
    /** @name L1 cache access components */
    /// @{
    double l1PrechargePerSubarray = 1.0;
    double l1ReadPerWay = 1.0;
    double l1DecodePerAccess = 4.5;
    /** Per extra resizing tag bit, per way read. */
    double l1TagBitPerWayRead = 0.05;
    /// @}

    /** @name Lower levels */
    /// @{
    double l2PerAccess = 80.0;
    double memPerAccess = 500.0;
    /// @}

    /** @name Size-proportional (clock + leakage), per byte-cycle */
    /// @{
    double l1PerByteCycle = 2.0e-4;
    double l2PerByteCycle = 0.5e-5;
    /// @}

    /** @name Core event energies */
    /// @{
    double fetchDecodeRenamePerInst = 10.0;
    /** In-order cores have no rename/dispatch machinery. */
    double fetchDecodePerInstInOrder = 5.0;
    double robPerInst = 6.0;
    double regfilePerInst = 10.0;
    double intAluOp = 8.0;
    double fpAluOp = 14.0;
    double lsqPerMemOp = 4.0;
    double bpredPerBranch = 3.0;
    double resultBusPerInst = 4.0;
    /** Non-cache clock tree, per cycle. */
    double clockPerCycle = 30.0;
    /// @}

    /** Defaults tuned against the calibration test. */
    static EnergyParams defaults018um() { return {}; }

    bool operator==(const EnergyParams &o) const = default;
};

} // namespace rcache

#endif // RCACHE_ENERGY_ENERGY_PARAMS_HH
