/**
 * @file
 * Cache energy accounting from a Cache's event counters.
 */

#ifndef RCACHE_ENERGY_CACHE_ENERGY_HH
#define RCACHE_ENERGY_CACHE_ENERGY_HH

#include "cache/cache.hh"
#include "energy/energy_params.hh"

namespace rcache
{

/**
 * The event totals the energy model consumes, decoupled from the
 * Cache that produced them. Whole runs read a Cache's counters
 * directly (CacheActivity::of); the sampling engine instead takes
 * snapshots around each detailed window, differences them, and scales
 * the deltas up to the full run before pricing them.
 */
struct CacheActivity
{
    double accesses = 0;
    double misses = 0;
    double prechargeEvents = 0;
    double wayReads = 0;
    double byteCycles = 0;

    /** Snapshot @p cache's current counter values. */
    static CacheActivity of(const Cache &cache);

    /** Counter deltas between two snapshots (this - earlier). */
    CacheActivity operator-(const CacheActivity &earlier) const;
    CacheActivity &operator+=(const CacheActivity &o);

    /** All counts multiplied by @p factor (sample extrapolation). */
    CacheActivity scaled(double factor) const;

    double missRatio() const
    {
        return accesses > 0 ? misses / accesses : 0.0;
    }
};

/** Computes L1/L2 energies from accumulated cache counters. */
class CacheEnergyModel
{
  public:
    explicit CacheEnergyModel(const EnergyParams &params)
        : params_(params)
    {
    }

    /**
     * Total switching + size-proportional energy of an L1 cache over
     * the run recorded in its counters.
     *
     * @param extra_tag_bits resizing tag bits carried by the
     *        organization wrapping this cache (0 for conventional and
     *        selective-ways)
     *
     * @pre Cache::accumulateEnabledTime(end_cycle) has been called so
     *      byteCycles() covers the whole run.
     */
    double l1Energy(const Cache &cache, unsigned extra_tag_bits) const;

    /** As above, priced from an explicit activity total. */
    double l1Energy(const CacheActivity &activity,
                    unsigned extra_tag_bits) const;

    /** Switching component only (per-access), no byte-cycle term. */
    double l1AccessEnergy(const Cache &cache,
                          unsigned extra_tag_bits) const;

    /** As above, priced from an explicit activity total. */
    double l1AccessEnergy(const CacheActivity &activity,
                          unsigned extra_tag_bits) const;

    /**
     * Energy of one L1 access at the cache's *current* configuration
     * (used by examples to show per-access cost vs size).
     */
    double l1EnergyPerAccessNow(const Cache &cache,
                                unsigned extra_tag_bits) const;

    /** L2 energy over the run (per-access + byte-cycle terms).
     *  @param cycles total simulated cycles (L2 is never resized). */
    double l2Energy(const Cache &l2, std::uint64_t cycles) const;

    /** As above from explicit totals (@p size_bytes: L2 capacity). */
    double l2Energy(double accesses, std::uint64_t size_bytes,
                    double cycles) const;

  private:
    EnergyParams params_;
};

} // namespace rcache

#endif // RCACHE_ENERGY_CACHE_ENERGY_HH
