/**
 * @file
 * Cache energy accounting from a Cache's event counters.
 */

#ifndef RCACHE_ENERGY_CACHE_ENERGY_HH
#define RCACHE_ENERGY_CACHE_ENERGY_HH

#include "cache/cache.hh"
#include "energy/energy_params.hh"

namespace rcache
{

/** Computes L1/L2 energies from accumulated cache counters. */
class CacheEnergyModel
{
  public:
    explicit CacheEnergyModel(const EnergyParams &params)
        : params_(params)
    {
    }

    /**
     * Total switching + size-proportional energy of an L1 cache over
     * the run recorded in its counters.
     *
     * @param extra_tag_bits resizing tag bits carried by the
     *        organization wrapping this cache (0 for conventional and
     *        selective-ways)
     *
     * @pre Cache::accumulateEnabledTime(end_cycle) has been called so
     *      byteCycles() covers the whole run.
     */
    double l1Energy(const Cache &cache, unsigned extra_tag_bits) const;

    /** Switching component only (per-access), no byte-cycle term. */
    double l1AccessEnergy(const Cache &cache,
                          unsigned extra_tag_bits) const;

    /**
     * Energy of one L1 access at the cache's *current* configuration
     * (used by examples to show per-access cost vs size).
     */
    double l1EnergyPerAccessNow(const Cache &cache,
                                unsigned extra_tag_bits) const;

    /** L2 energy over the run (per-access + byte-cycle terms).
     *  @param cycles total simulated cycles (L2 is never resized). */
    double l2Energy(const Cache &l2, std::uint64_t cycles) const;

  private:
    EnergyParams params_;
};

} // namespace rcache

#endif // RCACHE_ENERGY_CACHE_ENERGY_HH
