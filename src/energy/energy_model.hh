/**
 * @file
 * Processor-wide energy accounting (Wattch-style activity model).
 *
 * Combines the cache energies with per-event core energies and the
 * clock tree to produce the breakdown the paper's metric needs:
 * energy-delay product of the whole processor.
 */

#ifndef RCACHE_ENERGY_ENERGY_MODEL_HH
#define RCACHE_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <ostream>

#include "energy/cache_energy.hh"

namespace rcache
{

/** Activity counts a CPU model accumulates during a run. */
struct CoreActivity
{
    /** Out-of-order cores dissipate in rename/ROB/LSQ; in-order cores
     *  have none of that machinery (the paper's in-order i-cache
     *  energy share is ~4% higher for this reason). */
    bool outOfOrder = true;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    std::uint64_t intOps = 0;
    std::uint64_t fpOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(insts) / cycles : 0.0;
    }
};

/** Per-structure energy totals for one run. */
struct EnergyBreakdown
{
    double icache = 0;
    double dcache = 0;
    double l2 = 0;
    double memory = 0;
    double core = 0;
    double clock = 0;

    double total() const
    {
        return icache + dcache + l2 + memory + core + clock;
    }

    double icacheFraction() const { return icache / total(); }
    double dcacheFraction() const { return dcache / total(); }
};

std::ostream &operator<<(std::ostream &os, const EnergyBreakdown &b);

/** Assembles the full-processor breakdown. */
class ProcessorEnergyModel
{
  public:
    explicit ProcessorEnergyModel(const EnergyParams &params)
        : params_(params), cacheModel_(params)
    {
    }

    /**
     * @param activity core event counts for the run
     * @param il1,dl1 L1 caches (byte-cycle integrals finalized)
     * @param il1_extra_tag_bits,dl1_extra_tag_bits resizing tag bits
     * @param l2 the unified L2
     * @param mem_accesses total memory reads+writes
     */
    EnergyBreakdown compute(const CoreActivity &activity,
                            const Cache &il1,
                            unsigned il1_extra_tag_bits,
                            const Cache &dl1,
                            unsigned dl1_extra_tag_bits,
                            const Cache &l2,
                            std::uint64_t mem_accesses) const;

    /**
     * Price explicit activity totals instead of live Cache counters.
     * The sampling engine extrapolates measured-window deltas to
     * full-run totals and prices them through this overload.
     */
    EnergyBreakdown compute(const CoreActivity &activity,
                            const CacheActivity &il1,
                            unsigned il1_extra_tag_bits,
                            const CacheActivity &dl1,
                            unsigned dl1_extra_tag_bits,
                            double l2_accesses,
                            std::uint64_t l2_size_bytes,
                            double mem_accesses) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    CacheEnergyModel cacheModel_;
};

} // namespace rcache

#endif // RCACHE_ENERGY_ENERGY_MODEL_HH
