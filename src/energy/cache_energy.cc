#include "energy/cache_energy.hh"

namespace rcache
{

CacheActivity
CacheActivity::of(const Cache &cache)
{
    CacheActivity a;
    a.accesses = static_cast<double>(cache.accesses());
    a.misses = static_cast<double>(cache.misses());
    a.prechargeEvents =
        static_cast<double>(cache.prechargeSubarrayEvents());
    a.wayReads = static_cast<double>(cache.wayReadEvents());
    a.byteCycles = cache.byteCycles();
    return a;
}

CacheActivity
CacheActivity::operator-(const CacheActivity &earlier) const
{
    CacheActivity a;
    a.accesses = accesses - earlier.accesses;
    a.misses = misses - earlier.misses;
    a.prechargeEvents = prechargeEvents - earlier.prechargeEvents;
    a.wayReads = wayReads - earlier.wayReads;
    a.byteCycles = byteCycles - earlier.byteCycles;
    return a;
}

CacheActivity &
CacheActivity::operator+=(const CacheActivity &o)
{
    accesses += o.accesses;
    misses += o.misses;
    prechargeEvents += o.prechargeEvents;
    wayReads += o.wayReads;
    byteCycles += o.byteCycles;
    return *this;
}

CacheActivity
CacheActivity::scaled(double factor) const
{
    CacheActivity a;
    a.accesses = accesses * factor;
    a.misses = misses * factor;
    a.prechargeEvents = prechargeEvents * factor;
    a.wayReads = wayReads * factor;
    a.byteCycles = byteCycles * factor;
    return a;
}

double
CacheEnergyModel::l1AccessEnergy(const CacheActivity &activity,
                                 unsigned extra_tag_bits) const
{
    return activity.prechargeEvents * params_.l1PrechargePerSubarray +
           activity.wayReads * params_.l1ReadPerWay +
           activity.accesses * params_.l1DecodePerAccess +
           activity.wayReads * extra_tag_bits *
               params_.l1TagBitPerWayRead;
}

double
CacheEnergyModel::l1AccessEnergy(const Cache &cache,
                                 unsigned extra_tag_bits) const
{
    return l1AccessEnergy(CacheActivity::of(cache), extra_tag_bits);
}

double
CacheEnergyModel::l1Energy(const CacheActivity &activity,
                           unsigned extra_tag_bits) const
{
    return l1AccessEnergy(activity, extra_tag_bits) +
           activity.byteCycles * params_.l1PerByteCycle;
}

double
CacheEnergyModel::l1Energy(const Cache &cache,
                           unsigned extra_tag_bits) const
{
    return l1Energy(CacheActivity::of(cache), extra_tag_bits);
}

double
CacheEnergyModel::l1EnergyPerAccessNow(const Cache &cache,
                                       unsigned extra_tag_bits) const
{
    return cache.enabledSubarrays() * params_.l1PrechargePerSubarray +
           cache.enabledWays() *
               (params_.l1ReadPerWay +
                extra_tag_bits * params_.l1TagBitPerWayRead) +
           params_.l1DecodePerAccess;
}

double
CacheEnergyModel::l2Energy(double accesses, std::uint64_t size_bytes,
                           double cycles) const
{
    return accesses * params_.l2PerAccess +
           static_cast<double>(size_bytes) * cycles *
               params_.l2PerByteCycle;
}

double
CacheEnergyModel::l2Energy(const Cache &l2, std::uint64_t cycles) const
{
    return l2Energy(static_cast<double>(l2.accesses()),
                    l2.geometry().size,
                    static_cast<double>(cycles));
}

} // namespace rcache
