#include "energy/cache_energy.hh"

namespace rcache
{

double
CacheEnergyModel::l1AccessEnergy(const Cache &cache,
                                 unsigned extra_tag_bits) const
{
    const auto precharges =
        static_cast<double>(cache.prechargeSubarrayEvents());
    const auto way_reads = static_cast<double>(cache.wayReadEvents());
    const auto accesses = static_cast<double>(cache.accesses());

    return precharges * params_.l1PrechargePerSubarray +
           way_reads * params_.l1ReadPerWay +
           accesses * params_.l1DecodePerAccess +
           way_reads * extra_tag_bits * params_.l1TagBitPerWayRead;
}

double
CacheEnergyModel::l1Energy(const Cache &cache,
                           unsigned extra_tag_bits) const
{
    return l1AccessEnergy(cache, extra_tag_bits) +
           cache.byteCycles() * params_.l1PerByteCycle;
}

double
CacheEnergyModel::l1EnergyPerAccessNow(const Cache &cache,
                                       unsigned extra_tag_bits) const
{
    return cache.enabledSubarrays() * params_.l1PrechargePerSubarray +
           cache.enabledWays() *
               (params_.l1ReadPerWay +
                extra_tag_bits * params_.l1TagBitPerWayRead) +
           params_.l1DecodePerAccess;
}

double
CacheEnergyModel::l2Energy(const Cache &l2, std::uint64_t cycles) const
{
    return static_cast<double>(l2.accesses()) * params_.l2PerAccess +
           static_cast<double>(l2.geometry().size) *
               static_cast<double>(cycles) * params_.l2PerByteCycle;
}

} // namespace rcache
