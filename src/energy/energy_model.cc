#include "energy/energy_model.hh"

#include <iomanip>

namespace rcache
{

std::ostream &
operator<<(std::ostream &os, const EnergyBreakdown &b)
{
    const double t = b.total();
    auto row = [&](const char *name, double v) {
        os << "  " << std::left << std::setw(8) << name << std::right
           << std::setw(14) << std::fixed << std::setprecision(0) << v
           << std::setw(8) << std::setprecision(1) << (100.0 * v / t)
           << "%\n";
    };
    os << "energy breakdown (normalized units):\n";
    row("icache", b.icache);
    row("dcache", b.dcache);
    row("l2", b.l2);
    row("memory", b.memory);
    row("core", b.core);
    row("clock", b.clock);
    row("total", t);
    return os;
}

EnergyBreakdown
ProcessorEnergyModel::compute(const CoreActivity &activity,
                              const Cache &il1,
                              unsigned il1_extra_tag_bits,
                              const Cache &dl1,
                              unsigned dl1_extra_tag_bits,
                              const Cache &l2,
                              std::uint64_t mem_accesses) const
{
    return compute(activity, CacheActivity::of(il1),
                   il1_extra_tag_bits, CacheActivity::of(dl1),
                   dl1_extra_tag_bits,
                   static_cast<double>(l2.accesses()),
                   l2.geometry().size,
                   static_cast<double>(mem_accesses));
}

EnergyBreakdown
ProcessorEnergyModel::compute(const CoreActivity &activity,
                              const CacheActivity &il1,
                              unsigned il1_extra_tag_bits,
                              const CacheActivity &dl1,
                              unsigned dl1_extra_tag_bits,
                              double l2_accesses,
                              std::uint64_t l2_size_bytes,
                              double mem_accesses) const
{
    EnergyBreakdown b;
    b.icache = cacheModel_.l1Energy(il1, il1_extra_tag_bits);
    b.dcache = cacheModel_.l1Energy(dl1, dl1_extra_tag_bits);
    b.l2 = cacheModel_.l2Energy(
        l2_accesses, l2_size_bytes,
        static_cast<double>(activity.cycles));
    b.memory = mem_accesses * params_.memPerAccess;

    const auto insts = static_cast<double>(activity.insts);
    const double frontend = activity.outOfOrder
                                ? params_.fetchDecodeRenamePerInst +
                                      params_.robPerInst
                                : params_.fetchDecodePerInstInOrder;
    b.core = insts * (frontend + params_.regfilePerInst +
                      params_.resultBusPerInst) +
             static_cast<double>(activity.intOps) * params_.intAluOp +
             static_cast<double>(activity.fpOps) * params_.fpAluOp +
             static_cast<double>(activity.branches) *
                 params_.bpredPerBranch;
    if (activity.outOfOrder) {
        b.core += static_cast<double>(activity.loads +
                                      activity.stores) *
                  params_.lsqPerMemOp;
    }

    b.clock =
        static_cast<double>(activity.cycles) * params_.clockPerCycle;
    return b;
}

} // namespace rcache
