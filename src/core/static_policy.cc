#include "core/static_policy.hh"

namespace rcache
{

std::string
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::None:
        return "none";
      case Strategy::Static:
        return "static";
      case Strategy::Dynamic:
        return "dynamic";
    }
    rc_panic("bad strategy");
}

StaticPolicy::StaticPolicy(ResizableCache &cache, WritebackSink sink,
                           unsigned level)
    : ResizePolicy(cache, std::move(sink)), level_(level)
{
    // Applied before execution: the cache starts empty, so the flush
    // is vacuous, but accounting still records the resize.
    cache_.setLevel(level_, sink_);
}

void
StaticPolicy::onAccess(bool, std::uint64_t)
{
    // Static resizing never reacts at runtime.
}

} // namespace rcache
