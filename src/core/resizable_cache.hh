/**
 * @file
 * ResizableCache: a cache plus an organization's offered-size schedule
 * and the mask state ("level") selecting the current configuration.
 *
 * Levels index the schedule: level 0 is full size, higher levels are
 * smaller. upsize()/downsize() move one level at a time (the paper's
 * dynamic controller steps one size per interval); setLevel() jumps,
 * which static resizing uses once before the run.
 */

#ifndef RCACHE_CORE_RESIZABLE_CACHE_HH
#define RCACHE_CORE_RESIZABLE_CACHE_HH

#include <memory>
#include <string>

#include "cache/cache.hh"
#include "core/size_schedule.hh"

namespace rcache
{

/**
 * Owns a Cache and drives its resizing according to one organization's
 * schedule.
 */
class ResizableCache
{
  public:
    /**
     * @param name cache/stat name (e.g. "dl1")
     * @param geom full-size geometry
     * @param org which organization's schedule to offer
     * @param policy replacement policy name (replacement.hh registry)
     * @param seed_salt disambiguates same-named caches (a multi-core
     *        lane passes its core id): seeded policies derive their
     *        stream from hash(name) ^ mix(salt), never a shared
     *        constant
     */
    ResizableCache(const std::string &name, const CacheGeometry &geom,
                   Organization org, const std::string &policy = "lru",
                   std::uint64_t seed_salt = 0);
    virtual ~ResizableCache() = default;

    /** The wrapped cache (the hierarchy and CPU access through this). */
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }

    Organization organization() const { return org_; }
    const std::vector<ResizeConfig> &schedule() const
    {
        return schedule_;
    }

    /** Number of offered configurations. */
    unsigned levels() const
    {
        return static_cast<unsigned>(schedule_.size());
    }
    unsigned currentLevel() const { return level_; }
    const ResizeConfig &currentConfig() const
    {
        return schedule_[level_];
    }

    /**
     * Jump to schedule index @p level, flushing per the semantics in
     * Cache::resizeTo. @p sink receives dirty writebacks.
     */
    FlushResult setLevel(unsigned level, const WritebackSink &sink = {});

    /** One step larger (toward level 0). No-op result at full size. */
    FlushResult upsize(const WritebackSink &sink = {});
    /** One step smaller. No-op result at the minimum size. */
    FlushResult downsize(const WritebackSink &sink = {});

    bool canUpsize() const { return level_ > 0; }
    bool canDownsize() const { return level_ + 1 < levels(); }

    /** Extra tag bits this organization carries, plus the
     *  replacement policy's per-block state bits (energy overhead). */
    unsigned extraTagBits() const { return extraTagBits_; }

    /** The replacement policy name this cache was built with. */
    const std::string &replacementPolicy() const { return policy_; }

    /** Smallest offered size in bytes. */
    std::uint64_t minSizeBytes() const;
    /** Full size in bytes. */
    std::uint64_t maxSizeBytes() const;

    /**
     * Schedule index of the smallest offered size that is >= @p bytes
     * (clamped to the smallest size if nothing is that small). Used to
     * express dynamic resizing's size-bound.
     */
    unsigned levelForMinSize(std::uint64_t bytes) const;

  private:
    Organization org_;
    std::vector<ResizeConfig> schedule_;
    unsigned extraTagBits_;
    std::string policy_;
    Cache cache_;
    unsigned level_ = 0;
};

/**
 * Convenience subclasses naming each organization; they add no state
 * but give call sites and tests a vocabulary matching the paper.
 */
class SelectiveWaysCache : public ResizableCache
{
  public:
    SelectiveWaysCache(const std::string &name,
                       const CacheGeometry &geom);
};

class SelectiveSetsCache : public ResizableCache
{
  public:
    SelectiveSetsCache(const std::string &name,
                       const CacheGeometry &geom);
};

class HybridCache : public ResizableCache
{
  public:
    HybridCache(const std::string &name, const CacheGeometry &geom);
};

} // namespace rcache

#endif // RCACHE_CORE_RESIZABLE_CACHE_HH
