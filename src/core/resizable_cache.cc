#include "core/resizable_cache.hh"

namespace rcache
{

namespace
{

/** FNV-1a over the cache name: deterministic across platforms and
 *  library implementations (std::hash is neither). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** splitmix64 finalizer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Per-cache policy seed: a function of the cache's identity (name +
 * caller salt), so seeded policies (random's rng, wtlfu's sketch
 * hashes) never share a stream across caches — the old fixed-constant
 * seeding made every random-policy cache replay the identical way
 * sequence.
 */
std::uint64_t
policySeed(const std::string &name, std::uint64_t salt)
{
    return fnv1a(name) ^ mix64(salt + 1);
}

} // namespace

ResizableCache::ResizableCache(const std::string &name,
                               const CacheGeometry &geom,
                               Organization org,
                               const std::string &policy,
                               std::uint64_t seed_salt)
    : org_(org),
      schedule_(buildSchedule(org, geom)),
      extraTagBits_(rcache::extraTagBits(org, geom) +
                    replacementPolicyStateBits(policy)),
      policy_(policy),
      cache_(name, geom,
             makeReplacementPolicy(
                 policy, policySeed(name, seed_salt),
                 geom.numSets() * geom.assoc))
{
    rc_assert(!schedule_.empty());
    rc_assert(schedule_.front().sets == geom.numSets() &&
              schedule_.front().ways == geom.assoc);
}

FlushResult
ResizableCache::setLevel(unsigned level, const WritebackSink &sink)
{
    rc_assert(level < levels());
    FlushResult out =
        cache_.resizeTo(schedule_[level].sets, schedule_[level].ways,
                        sink);
    level_ = level;
    return out;
}

FlushResult
ResizableCache::upsize(const WritebackSink &sink)
{
    if (!canUpsize())
        return {};
    return setLevel(level_ - 1, sink);
}

FlushResult
ResizableCache::downsize(const WritebackSink &sink)
{
    if (!canDownsize())
        return {};
    return setLevel(level_ + 1, sink);
}

std::uint64_t
ResizableCache::minSizeBytes() const
{
    return schedule_.back().sizeBytes(cache_.geometry().blockSize);
}

std::uint64_t
ResizableCache::maxSizeBytes() const
{
    return schedule_.front().sizeBytes(cache_.geometry().blockSize);
}

unsigned
ResizableCache::levelForMinSize(std::uint64_t bytes) const
{
    unsigned best = 0;
    for (unsigned i = 0; i < levels(); ++i) {
        if (schedule_[i].sizeBytes(cache_.geometry().blockSize) >=
            bytes) {
            best = i;
        } else {
            break;
        }
    }
    return best;
}

SelectiveWaysCache::SelectiveWaysCache(const std::string &name,
                                       const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::SelectiveWays)
{
}

SelectiveSetsCache::SelectiveSetsCache(const std::string &name,
                                       const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::SelectiveSets)
{
}

HybridCache::HybridCache(const std::string &name,
                         const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::Hybrid)
{
}

} // namespace rcache
