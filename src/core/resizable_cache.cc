#include "core/resizable_cache.hh"

namespace rcache
{

ResizableCache::ResizableCache(const std::string &name,
                               const CacheGeometry &geom,
                               Organization org)
    : org_(org),
      schedule_(buildSchedule(org, geom)),
      extraTagBits_(rcache::extraTagBits(org, geom)),
      cache_(name, geom)
{
    rc_assert(!schedule_.empty());
    rc_assert(schedule_.front().sets == geom.numSets() &&
              schedule_.front().ways == geom.assoc);
}

FlushResult
ResizableCache::setLevel(unsigned level, const WritebackSink &sink)
{
    rc_assert(level < levels());
    FlushResult out =
        cache_.resizeTo(schedule_[level].sets, schedule_[level].ways,
                        sink);
    level_ = level;
    return out;
}

FlushResult
ResizableCache::upsize(const WritebackSink &sink)
{
    if (!canUpsize())
        return {};
    return setLevel(level_ - 1, sink);
}

FlushResult
ResizableCache::downsize(const WritebackSink &sink)
{
    if (!canDownsize())
        return {};
    return setLevel(level_ + 1, sink);
}

std::uint64_t
ResizableCache::minSizeBytes() const
{
    return schedule_.back().sizeBytes(cache_.geometry().blockSize);
}

std::uint64_t
ResizableCache::maxSizeBytes() const
{
    return schedule_.front().sizeBytes(cache_.geometry().blockSize);
}

unsigned
ResizableCache::levelForMinSize(std::uint64_t bytes) const
{
    unsigned best = 0;
    for (unsigned i = 0; i < levels(); ++i) {
        if (schedule_[i].sizeBytes(cache_.geometry().blockSize) >=
            bytes) {
            best = i;
        } else {
            break;
        }
    }
    return best;
}

SelectiveWaysCache::SelectiveWaysCache(const std::string &name,
                                       const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::SelectiveWays)
{
}

SelectiveSetsCache::SelectiveSetsCache(const std::string &name,
                                       const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::SelectiveSets)
{
}

HybridCache::HybridCache(const std::string &name,
                         const CacheGeometry &geom)
    : ResizableCache(name, geom, Organization::Hybrid)
{
}

} // namespace rcache
