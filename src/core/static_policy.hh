/**
 * @file
 * Static resizing: the cache size is fixed before execution.
 *
 * The profiled best size is supplied as a schedule level; the policy
 * applies it at construction (the paper's "operating system loads the
 * size mask prior to the application's execution") and then does
 * nothing at runtime. Finding the best level is the experiment
 * driver's job (sim/experiment.hh), mirroring the paper's offline
 * profiling.
 */

#ifndef RCACHE_CORE_STATIC_POLICY_HH
#define RCACHE_CORE_STATIC_POLICY_HH

#include "core/resize_policy.hh"

namespace rcache
{

/** Fixed-size policy; see file comment. */
class StaticPolicy : public ResizePolicy
{
  public:
    /**
     * @param level schedule level to run the whole application at
     */
    StaticPolicy(ResizableCache &cache, WritebackSink sink,
                 unsigned level);

    void onAccess(bool miss, std::uint64_t now_cycle) override;
    Strategy strategy() const override { return Strategy::Static; }

    unsigned level() const { return level_; }

  private:
    unsigned level_;
};

} // namespace rcache

#endif // RCACHE_CORE_STATIC_POLICY_HH
