#include "core/size_schedule.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace rcache
{

std::string
organizationName(Organization org)
{
    switch (org) {
      case Organization::None:
        return "none";
      case Organization::SelectiveWays:
        return "selective-ways";
      case Organization::SelectiveSets:
        return "selective-sets";
      case Organization::Hybrid:
        return "hybrid";
    }
    rc_panic("bad organization");
}

namespace
{

std::vector<ResizeConfig>
waysSchedule(const CacheGeometry &geom)
{
    std::vector<ResizeConfig> out;
    for (unsigned w = geom.assoc; w >= 1; --w)
        out.push_back({geom.numSets(), w});
    return out;
}

std::vector<ResizeConfig>
setsSchedule(const CacheGeometry &geom)
{
    std::vector<ResizeConfig> out;
    for (std::uint64_t s = geom.numSets(); s >= geom.minSets(); s /= 2)
        out.push_back({s, geom.assoc});
    return out;
}

std::vector<ResizeConfig>
hybridSchedule(const CacheGeometry &geom)
{
    // The full cross product of way-size levels (set counts) and way
    // counts. After the redundant-size rule below this reproduces the
    // paper's Table 1 exactly for the 32K 4-way example, and unlike a
    // literal A/(A-1) alternation it stays a superset of both pure
    // spectra at high associativity (required for the Fig 6 dominance
    // property).
    std::vector<ResizeConfig> candidates;
    for (std::uint64_t s = geom.numSets(); s >= geom.minSets();
         s /= 2)
        for (unsigned w = geom.assoc; w >= 1; --w)
            candidates.push_back({s, w});

    // Redundant sizes resolve to the highest associativity (paper:
    // minimizes miss ratio and optimizes block-frame utilization).
    std::map<std::uint64_t, ResizeConfig> by_size;
    for (const auto &c : candidates) {
        auto size = c.sizeBytes(geom.blockSize);
        auto it = by_size.find(size);
        if (it == by_size.end() || c.ways > it->second.ways)
            by_size[size] = c;
    }

    std::vector<ResizeConfig> out;
    out.reserve(by_size.size());
    for (auto it = by_size.rbegin(); it != by_size.rend(); ++it)
        out.push_back(it->second);
    return out;
}

} // namespace

std::vector<ResizeConfig>
buildSchedule(Organization org, const CacheGeometry &geom)
{
    rc_assert(geom.validate().empty());
    switch (org) {
      case Organization::None:
        return {{geom.numSets(), geom.assoc}};
      case Organization::SelectiveWays:
        return waysSchedule(geom);
      case Organization::SelectiveSets:
        return setsSchedule(geom);
      case Organization::Hybrid:
        return hybridSchedule(geom);
    }
    rc_panic("bad organization");
}

unsigned
extraTagBits(Organization org, const CacheGeometry &geom)
{
    if (org != Organization::SelectiveSets && org != Organization::Hybrid)
        return 0;
    // Tags must cover index bits down to the smallest offered set
    // count: log2(numSets / minSets) extra bits.
    return exactLog2(geom.numSets()) - exactLog2(geom.minSets());
}

} // namespace rcache
