#include "core/dynamic_controller.hh"

namespace rcache
{

DynamicMissRatioController::DynamicMissRatioController(
    ResizableCache &cache, WritebackSink sink,
    const DynamicParams &params)
    : ResizePolicy(cache, std::move(sink)), params_(params)
{
    rc_assert(params_.intervalAccesses > 0);
    sizeBoundLevel_ =
        params_.sizeBoundBytes == 0
            ? cache_.levels() - 1
            : cache_.levelForMinSize(params_.sizeBoundBytes);
}

void
DynamicMissRatioController::onAccess(bool miss, std::uint64_t now_cycle)
{
    ++accessesInInterval_;
    if (miss)
        ++missesInInterval_;

    if (accessesInInterval_ < params_.intervalAccesses)
        return;

    ++intervals_;

    // Account elapsed enabled-size time before any resize so the
    // leakage/average-size integral sees the old size.
    cache_.cache().accumulateEnabledTime(now_cycle);

    // Telemetry rides along without steering: the decision logic
    // below is byte-for-byte the untraced one, and the reason/flush
    // capture only runs with a recorder attached.
    ResizeReason reason = ResizeReason::hold;
    FlushResult flush;

    if (missesInInterval_ > params_.missBound) {
        if (cache_.canUpsize()) {
            flush = cache_.upsize(sink_);
            ++upsizes_;
            reason = ResizeReason::grow;
        } else {
            reason = ResizeReason::growAtMax;
        }
    } else if (static_cast<double>(missesInInterval_) <
               params_.missBound * params_.downsizeFraction) {
        if (cache_.canDownsize() &&
            cache_.currentLevel() < sizeBoundLevel_) {
            flush = cache_.downsize(sink_);
            ++downsizes_;
            reason = ResizeReason::shrink;
        } else if (!cache_.canDownsize()) {
            reason = ResizeReason::shrinkAtMin;
        } else {
            reason = ResizeReason::shrinkSizeBound;
        }
    }

    if (telem_.recorder) {
        ResizeEvent ev;
        ev.core = telem_.core;
        ev.cache = cache_.cache().name();
        ev.interval = intervals_;
        ev.cycle = now_cycle;
        ev.accesses = accessesInInterval_;
        ev.misses = missesInInterval_;
        ev.missBound = params_.missBound;
        ev.downsizeFraction = params_.downsizeFraction;
        ev.reason = reason;
        ev.toLevel = cache_.currentLevel();
        ev.fromLevel = ev.toLevel;
        if (reason == ResizeReason::grow)
            ev.fromLevel = ev.toLevel + 1;
        else if (reason == ResizeReason::shrink)
            ev.fromLevel = ev.toLevel - 1;
        ev.toBytes = cache_.cache().enabledSize();
        ev.fromBytes =
            ev.fromLevel == ev.toLevel
                ? ev.toBytes
                : cache_.schedule()[ev.fromLevel].sizeBytes(
                      cache_.cache().geometry().blockSize);
        ev.flushInvalidated = flush.invalidated;
        ev.flushWritebacks = flush.writebacks;
        ev.transitionCycles =
            flush.writebacks * telem_.drainCyclesPerWriteback;
        telem_.recorder->record(ev);
    }

    levelTrace_.push_back(cache_.currentLevel());
    accessesInInterval_ = 0;
    missesInInterval_ = 0;
}

} // namespace rcache
