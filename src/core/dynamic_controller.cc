#include "core/dynamic_controller.hh"

namespace rcache
{

DynamicMissRatioController::DynamicMissRatioController(
    ResizableCache &cache, WritebackSink sink,
    const DynamicParams &params)
    : ResizePolicy(cache, std::move(sink)), params_(params)
{
    rc_assert(params_.intervalAccesses > 0);
    sizeBoundLevel_ =
        params_.sizeBoundBytes == 0
            ? cache_.levels() - 1
            : cache_.levelForMinSize(params_.sizeBoundBytes);
}

void
DynamicMissRatioController::onAccess(bool miss, std::uint64_t now_cycle)
{
    ++accessesInInterval_;
    if (miss)
        ++missesInInterval_;

    if (accessesInInterval_ < params_.intervalAccesses)
        return;

    ++intervals_;

    // Account elapsed enabled-size time before any resize so the
    // leakage/average-size integral sees the old size.
    cache_.cache().accumulateEnabledTime(now_cycle);

    if (missesInInterval_ > params_.missBound) {
        if (cache_.canUpsize()) {
            cache_.upsize(sink_);
            ++upsizes_;
        }
    } else if (static_cast<double>(missesInInterval_) <
               params_.missBound * params_.downsizeFraction) {
        if (cache_.canDownsize() &&
            cache_.currentLevel() < sizeBoundLevel_) {
            cache_.downsize(sink_);
            ++downsizes_;
        }
    }

    levelTrace_.push_back(cache_.currentLevel());
    accessesInInterval_ = 0;
    missesInInterval_ = 0;
}

} // namespace rcache
