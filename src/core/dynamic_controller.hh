/**
 * @file
 * Miss-ratio-based dynamic resizing (paper Section 2.2, from Yang et
 * al., HPCA 2001).
 *
 * Hardware monitors the cache in fixed-length intervals measured in
 * cache accesses. A miss counter accumulates misses within the
 * interval; at each interval boundary the controller compares it with
 * the profiled miss-bound:
 *
 *   misses > missBound            -> upsize one level
 *   misses < missBound * hysteresis -> downsize one level, unless that
 *                                      would shrink below the profiled
 *                                      size-bound
 *
 * Switching between two adjacent levels across intervals is exactly
 * the paper's "unavailable size emulation".
 */

#ifndef RCACHE_CORE_DYNAMIC_CONTROLLER_HH
#define RCACHE_CORE_DYNAMIC_CONTROLLER_HH

#include <vector>

#include "core/resize_policy.hh"
#include "telemetry/resize_events.hh"

namespace rcache
{

/** Tunables for DynamicMissRatioController (profiled offline). */
struct DynamicParams
{
    /** Interval length in cache accesses. */
    std::uint64_t intervalAccesses = 100000;
    /** Miss count per interval above which the cache upsizes. */
    std::uint64_t missBound = 1000;
    /**
     * Smallest size (bytes) the controller may select; 0 means the
     * organization's minimum. Prevents thrashing (paper).
     */
    std::uint64_t sizeBoundBytes = 0;
    /**
     * Downsize only when misses < missBound * downsizeFraction.
     * 1.0 reproduces the paper's plain higher/lower comparison;
     * values below 1.0 add hysteresis (quantified by the ablation
     * bench — it parks the controller in a dead zone more often than
     * it saves flush churn).
     */
    double downsizeFraction = 1.0;

    bool operator==(const DynamicParams &o) const = default;
};

/** The paper's dynamic resizing framework. */
class DynamicMissRatioController : public ResizePolicy
{
  public:
    DynamicMissRatioController(ResizableCache &cache,
                               WritebackSink sink,
                               const DynamicParams &params);

    void onAccess(bool miss, std::uint64_t now_cycle) override;
    Strategy strategy() const override { return Strategy::Dynamic; }

    const DynamicParams &params() const { return params_; }

    std::uint64_t intervals() const { return intervals_; }
    std::uint64_t upsizes() const { return upsizes_; }
    std::uint64_t downsizes() const { return downsizes_; }

    /**
     * Level selected at each interval boundary (recorded for the
     * adaptation-trace example and tests).
     */
    const std::vector<unsigned> &levelTrace() const
    {
        return levelTrace_;
    }

    /**
     * Attach resize-decision telemetry (telemetry off = default
     * null recorder, which keeps interval boundaries on their
     * untouched fast path — one pointer test per boundary, nothing
     * per access).
     */
    void setTelemetry(const ResizeTelemetry &telemetry)
    {
        telem_ = telemetry;
    }

  private:
    DynamicParams params_;
    unsigned sizeBoundLevel_;
    ResizeTelemetry telem_;

    std::uint64_t accessesInInterval_ = 0;
    std::uint64_t missesInInterval_ = 0;

    std::uint64_t intervals_ = 0;
    std::uint64_t upsizes_ = 0;
    std::uint64_t downsizes_ = 0;
    std::vector<unsigned> levelTrace_;
};

} // namespace rcache

#endif // RCACHE_CORE_DYNAMIC_CONTROLLER_HH
