/**
 * @file
 * Resizing strategy interface: "when" to resize (paper Section 2.2).
 *
 * A policy observes every access to its cache (hit/miss plus the cycle
 * it happened at) and may resize the cache in response. Static
 * resizing configures once and never reacts; dynamic resizing is the
 * paper's miss-ratio-based interval controller.
 */

#ifndef RCACHE_CORE_RESIZE_POLICY_HH
#define RCACHE_CORE_RESIZE_POLICY_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "core/resizable_cache.hh"

namespace rcache
{

/** The resizing strategies compared by the paper. */
enum class Strategy
{
    /** Non-resizable (baseline). */
    None,
    /** One profiled size per application (Albonesi). */
    Static,
    /** Miss-ratio-based interval controller (Yang et al.). */
    Dynamic,
};

/** Printable strategy name. */
std::string strategyName(Strategy s);

/** Abstract resizing strategy attached to one ResizableCache. */
class ResizePolicy
{
  public:
    /**
     * @param cache the resizable cache this policy controls
     * @param sink where flush writebacks go (normally into L2)
     */
    ResizePolicy(ResizableCache &cache, WritebackSink sink)
        : cache_(cache), sink_(std::move(sink))
    {
    }
    virtual ~ResizePolicy() = default;

    /**
     * Observe one access to the controlled cache.
     * @param miss whether the access missed
     * @param now_cycle current simulated cycle
     */
    virtual void onAccess(bool miss, std::uint64_t now_cycle) = 0;

    virtual Strategy strategy() const = 0;

    ResizableCache &cache() { return cache_; }

  protected:
    ResizableCache &cache_;
    WritebackSink sink_;
};

} // namespace rcache

#endif // RCACHE_CORE_RESIZE_POLICY_HH
