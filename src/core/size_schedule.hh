/**
 * @file
 * Offered-size schedules for the three resizable cache organizations.
 *
 * A schedule is the ordered list of (sets, ways) configurations an
 * organization can switch between, largest first. This captures the
 * paper's central comparison:
 *
 *  - selective-ways: ways from assoc down to 1 at full sets — sizes are
 *    multiples of the way size (constant granularity, associativity
 *    shrinks with size);
 *  - selective-sets: power-of-two set counts from full down to one
 *    subarray per way at full associativity — fine granularity only at
 *    small sizes, associativity preserved;
 *  - hybrid (the paper's proposal, Table 1): at every way-size level
 *    offer both A-way and (A-1)-way; at the minimum way size offer the
 *    whole associativity range; redundant sizes resolve to the highest
 *    associativity.
 */

#ifndef RCACHE_CORE_SIZE_SCHEDULE_HH
#define RCACHE_CORE_SIZE_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/geometry.hh"

namespace rcache
{

/** The resizable-cache organizations compared by the paper. */
enum class Organization
{
    /** Conventional non-resizable cache. */
    None,
    /** Albonesi: enable/disable associative ways. */
    SelectiveWays,
    /** Yang et al.: enable/disable sets. */
    SelectiveSets,
    /** This paper: union of both spectra (Table 1). */
    Hybrid,
};

/** Printable organization name. */
std::string organizationName(Organization org);

/** One offered configuration. */
struct ResizeConfig
{
    std::uint64_t sets;
    unsigned ways;

    std::uint64_t sizeBytes(unsigned block_size) const
    {
        return sets * ways * block_size;
    }

    bool operator==(const ResizeConfig &o) const = default;
};

/**
 * Build the offered-size schedule of @p org for geometry @p geom,
 * sorted by decreasing size. Index 0 is always the full-size
 * configuration. Organization::None yields just the full size.
 */
std::vector<ResizeConfig> buildSchedule(Organization org,
                                        const CacheGeometry &geom);

/**
 * Number of extra tag bits the organization needs relative to a
 * conventional cache of full size: selective-sets (and hybrid) must
 * size tags for the smallest offered set count (paper Section 2.1),
 * selective-ways needs none.
 */
unsigned extraTagBits(Organization org, const CacheGeometry &geom);

} // namespace rcache

#endif // RCACHE_CORE_SIZE_SCHEDULE_HH
