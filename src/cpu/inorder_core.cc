#include "cpu/inorder_core.hh"

namespace rcache
{

InOrderCore::InOrderCore(const CoreParams &params, Hierarchy &hier,
                         ResizePolicy *il1_policy,
                         ResizePolicy *dl1_policy)
    : Core(params, hier, il1_policy, dl1_policy)
{
}

CoreActivity
InOrderCore::run(Workload &workload, std::uint64_t num_insts)
{
    CoreActivity activity;
    activity.outOfOrder = false;

    SlotAllocator issue_slots(params_.dispatchWidth);
    std::vector<std::uint64_t> complete_ring(depRing, 0);

    std::uint64_t last_issue = 0;
    // Blocking d-cache: no instruction issues before this cycle.
    std::uint64_t stall_until = 0;
    std::uint64_t last_complete = 0;

    // Drain the workload in batches (forEachBatched): one virtual
    // nextBatch call per workloadBatchSize instructions instead of
    // one next() each.
    std::uint64_t i = 0;
    const auto body = [&](const MicroInst &inst) {
        const std::uint64_t fc = fetchInst(inst);

        // The ring reads are safe for any dep distance (the
        // index wraps), so the unpredictable "has a producer"
        // tests can resolve as conditional moves.
        std::uint64_t ready =
            std::max({fc + params_.frontendDepth, last_issue,
                      stall_until});
        const bool use1 = inst.dep1 && inst.dep1 <= i;
        const std::uint64_t p1 =
            complete_ring[(i - inst.dep1) % depRing];
        ready = std::max(ready, use1 ? p1 : 0);
        const bool use2 = inst.dep2 && inst.dep2 <= i;
        const std::uint64_t p2 =
            complete_ring[(i - inst.dep2) % depRing];
        ready = std::max(ready, use2 ? p2 : 0);

        const std::uint64_t ic = issue_slots.alloc(ready);
        last_issue = ic;

        // Execute (the instruction-mix tallies ride along so the
        // op class is dispatched once, not twice).
        ++activity.insts;
        std::uint64_t complete;
        switch (inst.op) {
          case OpClass::Load:
          case OpClass::Store: {
            const bool is_write = inst.op == OpClass::Store;
            if (is_write)
                ++activity.stores;
            else
                ++activity.loads;
            MemAccessResult res =
                hier_.dataAccess(inst.effAddr, is_write);
            notifyDl1(res.l1Hit, ic);
            complete = ic + res.latency;
            if (!res.l1Hit) {
                // Blocking: the whole pipeline waits for the
                // fill.
                stall_until = std::max(stall_until, complete);
            }
            if (res.writeback) {
                const std::uint64_t start = wb_.insert(ic);
                stall_until = std::max(stall_until, start);
            }
            break;
          }
          case OpClass::Branch:
            ++activity.branches;
            ++activity.intOps;
            complete = ic + inst.latency;
            break;
          case OpClass::FpAlu:
            ++activity.fpOps;
            complete = ic + inst.latency;
            break;
          case OpClass::IntAlu:
            ++activity.intOps;
            complete = ic + inst.latency;
            break;
          default:
            complete = ic + inst.latency;
            break;
        }

        if (inst.op == OpClass::Branch) {
            if (resolveBranch(inst, complete)) {
                ++activity.mispredicts;
                stall_until = std::max(stall_until, complete);
            }
        }

        complete_ring[i % depRing] = complete;
        last_complete = std::max(last_complete, complete);
        ++i;
    };

    if (!probe_) {
        forEachBatched(workload, num_insts, body);
    } else {
        // Probed: drain in sample-interval chunks over the same
        // locals — stream- and timing-identical to the single drain
        // above (telemetry/probe.hh).
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, probe_->sampleInterval());
        std::uint64_t done = 0;
        while (done < num_insts) {
            const std::uint64_t chunk =
                std::min(num_insts - done, stride);
            forEachBatched(workload, chunk, body);
            done += chunk;
            probe_->onSample(done, last_complete + 1, activity);
        }
    }

    activity.cycles = last_complete + 1;
    return activity;
}

} // namespace rcache
