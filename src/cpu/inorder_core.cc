#include "cpu/inorder_core.hh"

namespace rcache
{

InOrderCore::InOrderCore(const CoreParams &params, Hierarchy &hier,
                         ResizePolicy *il1_policy,
                         ResizePolicy *dl1_policy)
    : Core(params, hier, il1_policy, dl1_policy)
{
}

CoreActivity
InOrderCore::run(Workload &workload, std::uint64_t num_insts)
{
    CoreActivity activity;
    activity.outOfOrder = false;

    SlotAllocator issue_slots(params_.dispatchWidth);
    std::vector<std::uint64_t> complete_ring(depRing, 0);

    std::uint64_t last_issue = 0;
    // Blocking d-cache: no instruction issues before this cycle.
    std::uint64_t stall_until = 0;
    std::uint64_t last_complete = 0;

    for (std::uint64_t i = 0; i < num_insts; ++i) {
        const MicroInst inst = workload.next();

        const std::uint64_t fc = fetchInst(inst);

        std::uint64_t ready =
            std::max({fc + params_.frontendDepth, last_issue,
                      stall_until});
        if (inst.dep1 && inst.dep1 <= i) {
            ready = std::max(
                ready, complete_ring[(i - inst.dep1) % depRing]);
        }
        if (inst.dep2 && inst.dep2 <= i) {
            ready = std::max(
                ready, complete_ring[(i - inst.dep2) % depRing]);
        }

        const std::uint64_t ic = issue_slots.alloc(ready);
        last_issue = ic;

        std::uint64_t complete;
        switch (inst.op) {
          case OpClass::Load:
          case OpClass::Store: {
            const bool is_write = inst.op == OpClass::Store;
            MemAccessResult res =
                hier_.dataAccess(inst.effAddr, is_write);
            notifyDl1(res.l1Hit, ic);
            complete = ic + res.latency;
            if (!res.l1Hit) {
                // Blocking: the whole pipeline waits for the fill.
                stall_until = std::max(stall_until, complete);
            }
            if (res.writeback) {
                const std::uint64_t start = wb_.insert(ic);
                stall_until = std::max(stall_until, start);
            }
            break;
          }
          default:
            complete = ic + inst.latency;
            break;
        }

        if (inst.op == OpClass::Branch) {
            if (resolveBranch(inst, complete)) {
                ++activity.mispredicts;
                stall_until = std::max(stall_until, complete);
            }
        }

        complete_ring[i % depRing] = complete;
        last_complete = std::max(last_complete, complete);

        countInst(inst, activity);
    }

    activity.cycles = last_complete + 1;
    return activity;
}

} // namespace rcache
