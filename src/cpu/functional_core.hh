/**
 * @file
 * FunctionalCore: advance machine *state* without timing.
 *
 * The sampling engine (sim/sampling.hh) skips between detailed
 * measurement windows and re-warms state before each one. For warming
 * only state that outlives a window matters: cache tags/LRU/dirty
 * bits (via the hierarchy), branch-predictor tables, and the resize
 * controllers' interval/miss counters. This core drives exactly those
 * and computes no cycles, which is what makes it several times
 * cheaper per instruction than the timing cores.
 *
 * Fidelity contract: after N functional instructions the cache
 * contents (tags, LRU order, dirty bits) and the resize policies'
 * access/miss counts equal what N detailed instructions would leave.
 * The timing cores re-read the i-cache SRAM once per fetch group and
 * after every redirect; those repeat reads hit the block that is
 * already most-recently-used, so this core notifies the i-cache
 * policy of the guaranteed hit without re-walking the hierarchy.
 * Only event counters used for energy (which fast-forward intervals
 * never contribute to the extrapolation) diverge.
 */

#ifndef RCACHE_CPU_FUNCTIONAL_CORE_HH
#define RCACHE_CPU_FUNCTIONAL_CORE_HH

#include "cache/hierarchy.hh"
#include "core/resize_policy.hh"
#include "cpu/branch_predictor.hh"
#include "telemetry/probe.hh"
#include "workload/workload.hh"

namespace rcache
{

/** See file comment. */
class FunctionalCore
{
  public:
    /**
     * @param bpred the *shared* predictor also used by the timing
     *        core, so its tables stay warm across mode switches
     * @param fetch_width group size for the i-cache access cadence
     * @param il1_policy,dl1_policy resizing policies observing the L1
     *        accesses; either may be null
     */
    FunctionalCore(Hierarchy &hier, BranchPredictor &bpred,
                   unsigned fetch_width, ResizePolicy *il1_policy,
                   ResizePolicy *dl1_policy);

    /** Advance @p num_insts instructions of @p workload. */
    void run(Workload &workload, std::uint64_t num_insts);

    /**
     * Forget the current fetch block so the next instruction re-probes
     * the i-cache. Call when a detailed window ran in between (its
     * fetch engine moved the stream).
     */
    void invalidateFetchBlock()
    {
        curFetchBlock_ = ~Addr{0};
        groupRemaining_ = 0;
    }

    std::uint64_t instsRun() const { return instsRun_; }

    /** Attach a telemetry probe (null to detach); probed runs call
     *  probe->onWarmupSample every sampleInterval() instructions. */
    void setProbe(CoreProbe *probe) { probe_ = probe; }

  private:
    Hierarchy &hier_;
    BranchPredictor &bpred_;
    ResizePolicy *il1Policy_;
    ResizePolicy *dl1Policy_;
    unsigned fetchWidth_;

    Addr curFetchBlock_ = ~Addr{0};
    unsigned groupRemaining_ = 0;
    std::uint64_t instsRun_ = 0;
    CoreProbe *probe_ = nullptr;
};

} // namespace rcache

#endif // RCACHE_CPU_FUNCTIONAL_CORE_HH
