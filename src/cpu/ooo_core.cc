#include "cpu/ooo_core.hh"

namespace rcache
{

OooCore::OooCore(const CoreParams &params, Hierarchy &hier,
                 ResizePolicy *il1_policy, ResizePolicy *dl1_policy)
    : Core(params, hier, il1_policy, dl1_policy)
{
}

CoreActivity
OooCore::run(Workload &workload, std::uint64_t num_insts)
{
    CoreActivity activity;

    SlotAllocator dispatch_slots(params_.dispatchWidth);
    SlotAllocator commit_slots(params_.commitWidth);

    std::vector<std::uint64_t> complete_ring(depRing, 0);
    std::vector<std::uint64_t> commit_ring(params_.robSize, 0);
    std::vector<std::uint64_t> lsq_ring(params_.lsqSize, 0);

    const unsigned dblock_bits = hier_.dl1().geometry().blockBits();
    std::uint64_t mem_count = 0;
    std::uint64_t last_commit = 0;
    // Earliest cycle the next commit may happen (writeback stalls).
    std::uint64_t commit_floor = 0;

    // Rolling ring cursors: robSize/lsqSize are runtime values, so
    // `i % size` is a hardware divide on the per-instruction path;
    // increment-and-wrap tracks the same index for one compare.
    std::size_t rob_idx = 0;
    std::size_t lsq_idx = 0;

    // Drain the workload in batches (forEachBatched): one virtual
    // nextBatch call per workloadBatchSize instructions instead of
    // one next() each.
    std::uint64_t i = 0;
    const auto body = [&](const MicroInst &inst) {
        const std::uint64_t fc = fetchInst(inst);

        // Dispatch: frontend depth, bandwidth, ROB and LSQ
        // occupancy.
        std::uint64_t dmin = fc + params_.frontendDepth;
        if (i >= params_.robSize) {
            dmin = std::max(dmin, commit_ring[rob_idx] + 1);
        }
        const bool is_mem =
            inst.op == OpClass::Load || inst.op == OpClass::Store;
        if (is_mem && mem_count >= params_.lsqSize) {
            dmin = std::max(dmin, lsq_ring[lsq_idx] + 1);
        }
        const std::uint64_t dc = dispatch_slots.alloc(dmin);

        // Ready when producers complete. The ring reads are safe
        // for any dep distance (the index wraps), so the
        // unpredictable "has a producer" tests can resolve as
        // conditional moves instead of branches.
        std::uint64_t ready = dc;
        const bool use1 = inst.dep1 && inst.dep1 <= i;
        const std::uint64_t p1 =
            complete_ring[(i - inst.dep1) % depRing];
        ready = std::max(ready, use1 ? p1 : 0);
        const bool use2 = inst.dep2 && inst.dep2 <= i;
        const std::uint64_t p2 =
            complete_ring[(i - inst.dep2) % depRing];
        ready = std::max(ready, use2 ? p2 : 0);

        // Execute (the instruction-mix tallies ride along so the
        // op class is dispatched once, not twice).
        ++activity.insts;
        std::uint64_t complete;
        switch (inst.op) {
          case OpClass::Load: {
            ++activity.loads;
            MemAccessResult res =
                hier_.dataAccess(inst.effAddr, false);
            notifyDl1(res.l1Hit, ready);
            if (res.l1Hit) {
                complete = ready + res.latency;
            } else {
                // Non-blocking: the fill occupies an MSHR;
                // secondary misses merge; a full MSHR file
                // delays the fill.
                complete = mshr_.miss(inst.effAddr >> dblock_bits,
                                      ready, res.latency);
            }
            if (res.writeback)
                complete =
                    std::max(complete, wb_.insert(ready) + 1);
            break;
          }
          case OpClass::Store:
            // Address generation only; the cache is written at
            // commit.
            ++activity.stores;
            complete = ready + 1;
            break;
          case OpClass::Branch:
            ++activity.branches;
            ++activity.intOps;
            complete = ready + inst.latency;
            break;
          case OpClass::FpAlu:
            ++activity.fpOps;
            complete = ready + inst.latency;
            break;
          case OpClass::IntAlu:
            ++activity.intOps;
            complete = ready + inst.latency;
            break;
          default:
            complete = ready + inst.latency;
            break;
        }

        // Commit in order.
        const std::uint64_t cc = commit_slots.alloc(
            std::max({complete + 1, last_commit, commit_floor}));
        last_commit = cc;

        if (inst.op == OpClass::Store) {
            MemAccessResult res =
                hier_.dataAccess(inst.effAddr, true);
            notifyDl1(res.l1Hit, cc);
            if (!res.l1Hit) {
                // The fill occupies an MSHR but does not hold
                // commit.
                mshr_.miss(inst.effAddr >> dblock_bits, cc,
                           res.latency);
            }
            if (res.writeback) {
                const std::uint64_t start = wb_.insert(cc);
                commit_floor = std::max(commit_floor, start);
            }
        }

        if (inst.op == OpClass::Branch) {
            if (resolveBranch(inst, complete))
                ++activity.mispredicts;
        }

        complete_ring[i % depRing] = complete;
        commit_ring[rob_idx] = cc;
        if (++rob_idx == params_.robSize)
            rob_idx = 0;
        if (is_mem) {
            lsq_ring[lsq_idx] = cc;
            if (++lsq_idx == params_.lsqSize)
                lsq_idx = 0;
            ++mem_count;
        }
        ++i;
    };

    if (!probe_) {
        forEachBatched(workload, num_insts, body);
    } else {
        // Probed: drain in sample-interval chunks over the same
        // locals — stream- and timing-identical to the single drain
        // above (telemetry/probe.hh).
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, probe_->sampleInterval());
        std::uint64_t done = 0;
        while (done < num_insts) {
            const std::uint64_t chunk =
                std::min(num_insts - done, stride);
            forEachBatched(workload, chunk, body);
            done += chunk;
            probe_->onSample(done, last_commit + 1, activity);
        }
    }

    activity.cycles = last_commit + 1;
    return activity;
}

} // namespace rcache
