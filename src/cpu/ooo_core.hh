/**
 * @file
 * Four-wide out-of-order core with a non-blocking data cache.
 *
 * Instructions dispatch into a ROB-bounded window, issue when their
 * producers complete, and commit in order. Load misses allocate MSHRs
 * so independent misses overlap (the paper's "miss latency taken off
 * the critical path"); the window and MSHR count bound that overlap.
 * Stores access the cache at commit, after which they only occupy the
 * writeback path.
 */

#ifndef RCACHE_CPU_OOO_CORE_HH
#define RCACHE_CPU_OOO_CORE_HH

#include <vector>

#include "cpu/core.hh"

namespace rcache
{

/** See file comment. */
class OooCore : public Core
{
  public:
    OooCore(const CoreParams &params, Hierarchy &hier,
            ResizePolicy *il1_policy = nullptr,
            ResizePolicy *dl1_policy = nullptr);

    CoreActivity run(Workload &workload,
                     std::uint64_t num_insts) override;

  private:
    /** Completion-time history ring for dependence resolution. */
    static constexpr std::size_t depRing = 256;
};

} // namespace rcache

#endif // RCACHE_CPU_OOO_CORE_HH
