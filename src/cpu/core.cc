#include "cpu/core.hh"

namespace rcache
{

Core::Core(const CoreParams &params, Hierarchy &hier,
           ResizePolicy *il1_policy, ResizePolicy *dl1_policy)
    : params_(params),
      hier_(hier),
      il1Policy_(il1_policy),
      dl1Policy_(dl1_policy),
      bpred_(params.bpred),
      mshr_(params.mshrs),
      wb_(params.wbEntries, params.wbDrainLatency),
      fetchSlots_(params.fetchWidth)
{
}

void
Core::resetTiming()
{
    mshr_.reset();
    wb_.reset();
    fetchSlots_.reset();
    nextFetchCycle_ = 0;
    curFetchBlock_ = ~Addr{0};
    blockReady_ = 0;
    groupRemaining_ = 0;
}

std::uint64_t
Core::fetchInst(const MicroInst &inst)
{
    // The i-cache SRAM is read once per fetch group: on every block
    // transition and again each time a group's worth of instructions
    // has been consumed from the same block (a new fetch cycle).
    const Addr blk = inst.pc >> hier_.il1().geometry().blockBits();
    if (blk != curFetchBlock_ || groupRemaining_ == 0) {
        const std::uint64_t t = nextFetchCycle_;
        MemAccessResult res = hier_.instAccess(inst.pc);
        notifyIl1(res.l1Hit, t);
        blockReady_ = t + res.latency - 1;
        curFetchBlock_ = blk;
        groupRemaining_ = params_.fetchWidth;
    }
    --groupRemaining_;
    const std::uint64_t fc = fetchSlots_.alloc(blockReady_);
    nextFetchCycle_ = std::max(nextFetchCycle_, fc);
    return fc;
}

void
Core::redirectFetch(std::uint64_t cycle)
{
    curFetchBlock_ = ~Addr{0};
    groupRemaining_ = 0;
    nextFetchCycle_ = std::max(nextFetchCycle_, cycle);
}

bool
Core::resolveBranch(const MicroInst &inst,
                    std::uint64_t complete_cycle)
{
    const bool correct =
        bpred_.predictAndUpdate(inst.pc, inst.taken, inst.target);
    if (!correct) {
        // Redirect when the branch resolves; the frontend refill
        // penalty comes out of frontendDepth.
        redirectFetch(complete_cycle + 1);
    } else if (inst.taken) {
        // Correctly predicted taken: the fetch group breaks and the
        // target block is fetched from the next cycle.
        redirectFetch(nextFetchCycle_ + 1);
    }
    return !correct;
}

void
Core::notifyIl1(bool hit, std::uint64_t cycle)
{
    if (il1Policy_)
        il1Policy_->onAccess(!hit, cycle);
}

void
Core::notifyDl1(bool hit, std::uint64_t cycle)
{
    if (dl1Policy_)
        dl1Policy_->onAccess(!hit, cycle);
}

void
Core::countInst(const MicroInst &inst, CoreActivity &activity)
{
    ++activity.insts;
    switch (inst.op) {
      case OpClass::IntAlu:
        ++activity.intOps;
        break;
      case OpClass::FpAlu:
        ++activity.fpOps;
        break;
      case OpClass::Load:
        ++activity.loads;
        break;
      case OpClass::Store:
        ++activity.stores;
        break;
      case OpClass::Branch:
        ++activity.branches;
        ++activity.intOps;
        break;
    }
}

} // namespace rcache
