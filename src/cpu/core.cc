#include "cpu/core.hh"

namespace rcache
{

Core::Core(const CoreParams &params, Hierarchy &hier,
           ResizePolicy *il1_policy, ResizePolicy *dl1_policy)
    : params_(params),
      hier_(hier),
      il1Policy_(il1_policy),
      dl1Policy_(dl1_policy),
      bpred_(params.bpred),
      mshr_(params.mshrs),
      wb_(params.wbEntries, params.wbDrainLatency),
      fetchSlots_(params.fetchWidth),
      il1BlockBits_(hier.il1().geometry().blockBits())
{
}

void
Core::resetTiming()
{
    mshr_.reset();
    wb_.reset();
    fetchSlots_.reset();
    nextFetchCycle_ = 0;
    curFetchBlock_ = ~Addr{0};
    blockReady_ = 0;
    groupRemaining_ = 0;
}

void
Core::redirectFetch(std::uint64_t cycle)
{
    curFetchBlock_ = ~Addr{0};
    groupRemaining_ = 0;
    nextFetchCycle_ = std::max(nextFetchCycle_, cycle);
}

bool
Core::resolveBranch(const MicroInst &inst,
                    std::uint64_t complete_cycle)
{
    const bool correct =
        bpred_.predictAndUpdate(inst.pc, inst.taken, inst.target);
    if (!correct) {
        // Redirect when the branch resolves; the frontend refill
        // penalty comes out of frontendDepth.
        redirectFetch(complete_cycle + 1);
    } else if (inst.taken) {
        // Correctly predicted taken: the fetch group breaks and the
        // target block is fetched from the next cycle.
        redirectFetch(nextFetchCycle_ + 1);
    }
    return !correct;
}

} // namespace rcache
