/**
 * @file
 * Shared machinery for the instruction-driven CPU timing models.
 *
 * Both cores process the dynamic instruction stream once, computing
 * each instruction's fetch/issue/complete/commit cycles from its
 * producers and from structural resources (widths, ROB/LSQ occupancy,
 * MSHRs, writeback buffer). This reproduces the timing phenomena the
 * paper's strategy comparison rests on — miss-latency exposure and
 * overlap — at a small fraction of the cost of a cycle-driven model.
 *
 * Known simplifications (documented in DESIGN.md): issue bandwidth is
 * enforced at dispatch rather than separately at the scheduler, and
 * wrong-path fetch is not simulated.
 */

#ifndef RCACHE_CPU_CORE_HH
#define RCACHE_CPU_CORE_HH

#include <algorithm>
#include <cstdint>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "core/resize_policy.hh"
#include "cpu/branch_predictor.hh"
#include "energy/energy_model.hh"
#include "telemetry/probe.hh"
#include "workload/workload.hh"

namespace rcache
{

/** Pipeline configuration (Table 2 defaults). */
struct CoreParams
{
    unsigned fetchWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned commitWidth = 4;
    unsigned robSize = 64;
    unsigned lsqSize = 32;
    /** Fetch-to-dispatch depth (mispredict refill penalty source). */
    unsigned frontendDepth = 3;
    unsigned mshrs = 8;
    unsigned wbEntries = 8;
    /** Cycles to drain one writeback into L2. */
    unsigned wbDrainLatency = 12;
    BranchPredictorParams bpred;

    bool operator==(const CoreParams &o) const = default;
};

/**
 * Bandwidth limiter for a pipeline stage: at most @c width events per
 * cycle, requests arriving in (mostly) non-decreasing time order.
 * A request earlier than the allocator's current cycle is served at
 * the current cycle, which is the conservative choice.
 */
class SlotAllocator
{
  public:
    explicit SlotAllocator(unsigned width) : width_(width) {}

    std::uint64_t
    alloc(std::uint64_t t)
    {
        // Branchless: request times hover around the allocator's
        // cycle, so the three-way split is unpredictable and cmovs
        // beat branches here.
        const bool newer = t > cycle_;
        const bool full = used_ >= width_;
        cycle_ = newer ? t : (full ? cycle_ + 1 : cycle_);
        used_ = (newer || full) ? 1 : used_ + 1;
        return cycle_;
    }

    void
    reset()
    {
        cycle_ = 0;
        used_ = 0;
    }

  private:
    unsigned width_;
    std::uint64_t cycle_ = 0;
    unsigned used_ = 0;
};

/**
 * Base class: owns the frontend (fetch through the i-cache with
 * branch prediction) and the d-cache structural resources; subclasses
 * implement the backend discipline.
 */
class Core
{
  public:
    /**
     * @param il1_policy,dl1_policy resizing policies observing the L1
     *        accesses; either may be null (non-resizable cache)
     */
    Core(const CoreParams &params, Hierarchy &hier,
         ResizePolicy *il1_policy, ResizePolicy *dl1_policy);
    virtual ~Core() = default;

    /** Run @p num_insts instructions of @p workload to completion. */
    virtual CoreActivity run(Workload &workload,
                             std::uint64_t num_insts) = 0;

    /**
     * Restart the timing machinery at cycle 0 for a fresh measurement
     * window: fetch engine, bandwidth allocators, MSHRs, writeback
     * buffer. Warm state (the branch predictor, and the caches, which
     * live in the hierarchy) is untouched. The sampling engine calls
     * this between detailed windows; run() may then be called again.
     */
    void resetTiming();

    BranchPredictor &predictor() { return bpred_; }
    const MshrFile &mshrs() const { return mshr_; }
    const WritebackBuffer &writebackBuffer() const { return wb_; }
    const CoreParams &params() const { return params_; }

    /**
     * Attach a telemetry probe (null to detach). With a probe, run()
     * drains the workload in sampleInterval()-sized chunks and calls
     * probe->onSample after each; the chunking is timing-invisible
     * (see telemetry/probe.hh). With no probe, run() keeps its single
     * unchunked drain.
     */
    void setProbe(CoreProbe *probe) { probe_ = probe; }

  protected:
    /**
     * Fetch one instruction: accesses the i-cache when crossing into a
     * new block, applies fetch bandwidth, and returns the fetch cycle.
     * Inline: runs once per simulated instruction.
     */
    std::uint64_t
    fetchInst(const MicroInst &inst)
    {
        // The i-cache SRAM is read once per fetch group: on every
        // block transition and again each time a group's worth of
        // instructions has been consumed from the same block (a new
        // fetch cycle).
        const Addr blk = inst.pc >> il1BlockBits_;
        if (blk != curFetchBlock_ || groupRemaining_ == 0) {
            const std::uint64_t t = nextFetchCycle_;
            MemAccessResult res = hier_.instAccess(inst.pc);
            notifyIl1(res.l1Hit, t);
            blockReady_ = t + res.latency - 1;
            curFetchBlock_ = blk;
            groupRemaining_ = params_.fetchWidth;
        }
        --groupRemaining_;
        const std::uint64_t fc = fetchSlots_.alloc(blockReady_);
        nextFetchCycle_ = std::max(nextFetchCycle_, fc);
        return fc;
    }

    /** Force the next fetch to re-access the i-cache at @p cycle. */
    void redirectFetch(std::uint64_t cycle);

    /**
     * Resolve the branch @p inst fetched at @p fetch_cycle completing
     * at @p complete_cycle; applies prediction and redirects.
     * @return true if mispredicted.
     */
    bool resolveBranch(const MicroInst &inst,
                       std::uint64_t complete_cycle);

    void
    notifyIl1(bool hit, std::uint64_t cycle)
    {
        if (il1Policy_)
            il1Policy_->onAccess(!hit, cycle);
    }

    void
    notifyDl1(bool hit, std::uint64_t cycle)
    {
        if (dl1Policy_)
            dl1Policy_->onAccess(!hit, cycle);
    }


    CoreParams params_;
    Hierarchy &hier_;
    ResizePolicy *il1Policy_;
    ResizePolicy *dl1Policy_;
    CoreProbe *probe_ = nullptr;

    BranchPredictor bpred_;
    MshrFile mshr_;
    WritebackBuffer wb_;

    SlotAllocator fetchSlots_;

    /** log2(i-cache block size), hoisted out of the per-instruction
     *  fetch path (geometry is immutable for a core's lifetime). */
    unsigned il1BlockBits_;

    /** Fetch engine state. */
    std::uint64_t nextFetchCycle_ = 0;
    Addr curFetchBlock_ = ~Addr{0};
    std::uint64_t blockReady_ = 0;
    /** Instructions left in the current fetch group; the i-cache SRAM
     *  is read once per group, not once per block. */
    unsigned groupRemaining_ = 0;
};

} // namespace rcache

#endif // RCACHE_CPU_CORE_HH
