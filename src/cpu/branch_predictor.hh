/**
 * @file
 * Combination branch predictor (Table 2: "combination").
 *
 * Bimodal + gshare components with a chooser, plus a small BTB. A
 * taken branch whose target misses in the BTB counts as a
 * misprediction (the frontend cannot redirect without the target).
 */

#ifndef RCACHE_CPU_BRANCH_PREDICTOR_HH
#define RCACHE_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/bitops.hh"

namespace rcache
{

/** Configuration for the combination predictor. */
struct BranchPredictorParams
{
    unsigned bimodalEntries = 2048;
    unsigned gshareEntries = 2048;
    unsigned chooserEntries = 2048;
    unsigned historyBits = 8;
    unsigned btbEntries = 512;

    bool operator==(const BranchPredictorParams &o) const = default;
};

/** See file comment. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(
        const BranchPredictorParams &params = {});

    /**
     * Predict the branch at @p pc, then update with the actual
     * outcome. Inline: called once per simulated branch (~15% of the
     * stream), and the body is a handful of masked table reads.
     *
     * @param taken actual direction
     * @param target actual target (used for the BTB)
     * @return true iff the prediction (direction and, if taken,
     *         target) was correct
     */
    bool
    predictAndUpdate(Addr pc, bool taken, Addr target)
    {
        ++lookups_;

        const std::uint64_t pc_idx = pc >> 2;
        auto &bim = bimodal_[pc_idx & (params_.bimodalEntries - 1)];
        const std::uint64_t gidx =
            (pc_idx ^ (history_ & lowMask(params_.historyBits))) &
            (params_.gshareEntries - 1);
        auto &gsh = gshare_[gidx];
        auto &cho = chooser_[pc_idx & (params_.chooserEntries - 1)];

        const bool bim_pred = counterTaken(bim);
        const bool gsh_pred = counterTaken(gsh);
        const bool pred = counterTaken(cho) ? gsh_pred : bim_pred;

        // Chooser trains toward whichever component was right.
        if (bim_pred != gsh_pred)
            bump(cho, gsh_pred == taken);
        bump(bim, taken);
        bump(gsh, taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);

        bool correct = pred == taken;

        // BTB: a correctly predicted taken branch still needs the
        // target.
        if (taken) {
            auto &entry = btb_[pc_idx & (params_.btbEntries - 1)];
            const bool btb_hit = entry.valid && entry.pc == pc &&
                                 entry.target == target;
            if (!btb_hit)
                correct = false;
            entry = {pc, target, true};
        }

        if (!correct)
            ++mispredicts_;
        return correct;
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_
                        : 0.0;
    }

    void reset();

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }

    static void
    bump(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    BranchPredictorParams params_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t history_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace rcache

#endif // RCACHE_CPU_BRANCH_PREDICTOR_HH
