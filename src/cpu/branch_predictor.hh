/**
 * @file
 * Combination branch predictor (Table 2: "combination").
 *
 * Bimodal + gshare components with a chooser, plus a small BTB. A
 * taken branch whose target misses in the BTB counts as a
 * misprediction (the frontend cannot redirect without the target).
 */

#ifndef RCACHE_CPU_BRANCH_PREDICTOR_HH
#define RCACHE_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/bitops.hh"

namespace rcache
{

/** Configuration for the combination predictor. */
struct BranchPredictorParams
{
    unsigned bimodalEntries = 2048;
    unsigned gshareEntries = 2048;
    unsigned chooserEntries = 2048;
    unsigned historyBits = 8;
    unsigned btbEntries = 512;

    bool operator==(const BranchPredictorParams &o) const = default;
};

/** See file comment. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(
        const BranchPredictorParams &params = {});

    /**
     * Predict the branch at @p pc, then update with the actual
     * outcome.
     *
     * @param taken actual direction
     * @param target actual target (used for the BTB)
     * @return true iff the prediction (direction and, if taken,
     *         target) was correct
     */
    bool predictAndUpdate(Addr pc, bool taken, Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_
                        : 0.0;
    }

    void reset();

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool taken);

    BranchPredictorParams params_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t history_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace rcache

#endif // RCACHE_CPU_BRANCH_PREDICTOR_HH
