/**
 * @file
 * Four-wide in-order core with a blocking data cache.
 *
 * Instructions issue in program order once their producers complete;
 * any data-cache miss stalls the pipeline until the fill returns
 * (blocking cache: miss latency fully exposed, the configuration the
 * paper uses to contrast with the out-of-order/non-blocking core).
 */

#ifndef RCACHE_CPU_INORDER_CORE_HH
#define RCACHE_CPU_INORDER_CORE_HH

#include <vector>

#include "cpu/core.hh"

namespace rcache
{

/** See file comment. */
class InOrderCore : public Core
{
  public:
    InOrderCore(const CoreParams &params, Hierarchy &hier,
                ResizePolicy *il1_policy = nullptr,
                ResizePolicy *dl1_policy = nullptr);

    CoreActivity run(Workload &workload,
                     std::uint64_t num_insts) override;

  private:
    static constexpr std::size_t depRing = 256;
};

} // namespace rcache

#endif // RCACHE_CPU_INORDER_CORE_HH
