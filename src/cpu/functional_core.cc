#include "cpu/functional_core.hh"

#include <algorithm>

namespace rcache
{

FunctionalCore::FunctionalCore(Hierarchy &hier, BranchPredictor &bpred,
                               unsigned fetch_width,
                               ResizePolicy *il1_policy,
                               ResizePolicy *dl1_policy)
    : hier_(hier),
      bpred_(bpred),
      il1Policy_(il1_policy),
      dl1Policy_(dl1_policy),
      fetchWidth_(fetch_width)
{
    rc_assert(fetchWidth_ > 0);
}

void
FunctionalCore::run(Workload &workload, std::uint64_t num_insts)
{
    // Resize policies receive now_cycle == 0: time does not advance
    // during fast-forward, and Cache::accumulateEnabledTime clamps
    // non-monotonic cycles, so the byte-cycle integral is untouched.
    const unsigned block_bits = hier_.il1().geometry().blockBits();

    // Batched drain, same as the timing cores: one virtual dispatch
    // per workloadBatchSize instructions.
    const auto body = [&](const MicroInst &inst) {
        // Fetch: real hierarchy access on block transitions;
        // group re-reads of the current (hence MRU) block are
        // guaranteed hits, so only the policy hears about them.
        const Addr blk = inst.pc >> block_bits;
        if (blk != curFetchBlock_) {
            MemAccessResult res = hier_.instAccess(inst.pc);
            if (il1Policy_)
                il1Policy_->onAccess(!res.l1Hit, 0);
            curFetchBlock_ = blk;
            groupRemaining_ = fetchWidth_;
        } else if (groupRemaining_ == 0) {
            if (il1Policy_)
                il1Policy_->onAccess(false, 0);
            groupRemaining_ = fetchWidth_;
        }
        --groupRemaining_;

        switch (inst.op) {
          case OpClass::Load:
          case OpClass::Store: {
            MemAccessResult res = hier_.dataAccess(
                inst.effAddr, inst.op == OpClass::Store);
            if (dl1Policy_)
                dl1Policy_->onAccess(!res.l1Hit, 0);
            break;
          }
          case OpClass::Branch: {
            const bool correct = bpred_.predictAndUpdate(
                inst.pc, inst.taken, inst.target);
            // The timing cores redirect on mispredicts and taken
            // branches, breaking the fetch group.
            if (!correct || inst.taken)
                invalidateFetchBlock();
            break;
          }
          default:
            break;
        }
    };

    if (!probe_) {
        forEachBatched(workload, num_insts, body);
    } else {
        // Probed: chunked drain over the same member state —
        // stream-identical to the single drain (telemetry/probe.hh).
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, probe_->sampleInterval());
        std::uint64_t done = 0;
        while (done < num_insts) {
            const std::uint64_t chunk =
                std::min(num_insts - done, stride);
            forEachBatched(workload, chunk, body);
            done += chunk;
            probe_->onWarmupSample(done);
        }
    }
    instsRun_ += num_insts;
}

} // namespace rcache
