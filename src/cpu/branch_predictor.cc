#include "cpu/branch_predictor.hh"

#include "util/logging.hh"

namespace rcache
{

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : params_(params),
      bimodal_(params.bimodalEntries, 1),
      gshare_(params.gshareEntries, 1),
      chooser_(params.chooserEntries, 2),
      btb_(params.btbEntries)
{
    rc_assert(isPowerOfTwo(params.bimodalEntries) &&
              isPowerOfTwo(params.gshareEntries) &&
              isPowerOfTwo(params.chooserEntries) &&
              isPowerOfTwo(params.btbEntries));
}

void
BranchPredictor::reset()
{
    std::fill(bimodal_.begin(), bimodal_.end(), 1);
    std::fill(gshare_.begin(), gshare_.end(), 1);
    std::fill(chooser_.begin(), chooser_.end(), 2);
    for (auto &e : btb_)
        e.valid = false;
    history_ = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace rcache
