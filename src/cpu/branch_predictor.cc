#include "cpu/branch_predictor.hh"

#include "util/logging.hh"

namespace rcache
{

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : params_(params),
      bimodal_(params.bimodalEntries, 1),
      gshare_(params.gshareEntries, 1),
      chooser_(params.chooserEntries, 2),
      btb_(params.btbEntries)
{
    rc_assert(isPowerOfTwo(params.bimodalEntries) &&
              isPowerOfTwo(params.gshareEntries) &&
              isPowerOfTwo(params.chooserEntries) &&
              isPowerOfTwo(params.btbEntries));
}

void
BranchPredictor::bump(std::uint8_t &c, bool taken)
{
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken, Addr target)
{
    ++lookups_;

    const std::uint64_t pc_idx = pc >> 2;
    auto &bim = bimodal_[pc_idx & (params_.bimodalEntries - 1)];
    const std::uint64_t gidx =
        (pc_idx ^ (history_ & lowMask(params_.historyBits))) &
        (params_.gshareEntries - 1);
    auto &gsh = gshare_[gidx];
    auto &cho = chooser_[pc_idx & (params_.chooserEntries - 1)];

    const bool bim_pred = counterTaken(bim);
    const bool gsh_pred = counterTaken(gsh);
    const bool pred = counterTaken(cho) ? gsh_pred : bim_pred;

    // Chooser trains toward whichever component was right.
    if (bim_pred != gsh_pred)
        bump(cho, gsh_pred == taken);
    bump(bim, taken);
    bump(gsh, taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);

    bool correct = pred == taken;

    // BTB: a correctly predicted taken branch still needs the target.
    if (taken) {
        auto &entry = btb_[pc_idx & (params_.btbEntries - 1)];
        const bool btb_hit =
            entry.valid && entry.pc == pc && entry.target == target;
        if (!btb_hit)
            correct = false;
        entry = {pc, target, true};
    }

    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    std::fill(bimodal_.begin(), bimodal_.end(), 1);
    std::fill(gshare_.begin(), gshare_.end(), 1);
    std::fill(chooser_.begin(), chooser_.end(), 2);
    for (auto &e : btb_)
        e.valid = false;
    history_ = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace rcache
