#include "stats/stats.hh"

#include <iomanip>

#include "util/logging.hh"

namespace rcache
{

Histogram::Histogram(double min, double max, unsigned buckets)
    : min_(min), max_(max), counts_(buckets, 0)
{
    rc_assert(max > min && buckets > 0);
}

void
Histogram::sample(double v)
{
    ++samples_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>(
            (v - min_) / (max_ - min_) * counts_.size());
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

std::uint64_t
Histogram::bucketCount(unsigned i) const
{
    rc_assert(i < counts_.size());
    return counts_[i];
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

void
StatGroup::add(Entry e)
{
    rc_assert(index_.find(e.name) == index_.end());
    index_[e.name] = entries_.size();
    entries_.push_back(std::move(e));
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    add({name, desc,
         [c]() { return static_cast<double>(c->value()); }});
}

void
StatGroup::addAverage(const std::string &name, const Average *a,
                      const std::string &desc)
{
    add({name, desc, [a]() { return a->mean(); }});
}

void
StatGroup::addFormula(const std::string &name,
                      std::function<double()> formula,
                      const std::string &desc)
{
    add({name, desc, std::move(formula)});
}

double
StatGroup::value(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        rc_panic("unknown stat: " + name_ + "." + name);
    return entries_[it->second].eval();
}

bool
StatGroup::has(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << std::right << std::setw(16) << e.eval() << "  # " << e.desc
           << '\n';
    }
}

std::vector<std::string>
StatGroup::statNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &e : entries_)
        names.push_back(e.name);
    return names;
}

} // namespace rcache
