/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats.
 *
 * Simulation components register named statistics with a StatGroup; the
 * experiment driver reads them back by name and dumps them as text.
 * Only the kinds the experiments need are provided: scalar counters,
 * averages, distributions, and derived formulas.
 */

#ifndef RCACHE_STATS_STATS_HH
#define RCACHE_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace rcache
{

/** A named scalar event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of samples. */
class Average
{
  public:
    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t samples() const { return count_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0; count_ = 0; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [min, max). */
class Histogram
{
  public:
    /** @param min lowest bucket edge, @param max highest edge,
     *  @param buckets number of equal-width buckets. */
    Histogram(double min = 0, double max = 1, unsigned buckets = 10);

    void sample(double v);

    std::uint64_t bucketCount(unsigned i) const;
    unsigned buckets() const { return counts_.size(); }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    void reset();

  private:
    double min_, max_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, samples_ = 0;
    double sum_ = 0;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register pointers to their counters; formulas are registered as
 * closures evaluated at read time.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register a counter under @p name with a @p desc description. */
    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    /** Register an average. */
    void addAverage(const std::string &name, const Average *a,
                    const std::string &desc);
    /** Register a derived value computed on demand. */
    void addFormula(const std::string &name,
                    std::function<double()> formula,
                    const std::string &desc);

    /** Look up any registered stat's current value by name. */
    double value(const std::string &name) const;
    /** @return true iff a stat named @p name exists. */
    bool has(const std::string &name) const;

    /** Dump all stats, gem5-style "group.name  value  # desc". */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }
    /** Names in registration order. */
    std::vector<std::string> statNames() const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::function<double()> eval;
    };

    std::string name_;
    std::vector<Entry> entries_;
    std::map<std::string, std::size_t> index_;

    void add(Entry e);
};

} // namespace rcache

#endif // RCACHE_STATS_STATS_HH
