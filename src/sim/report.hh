/**
 * @file
 * Human-readable reports for run results: a full single-run summary
 * and a normalized comparison of design points against a baseline
 * (the form every figure in the paper uses).
 */

#ifndef RCACHE_SIM_REPORT_HH
#define RCACHE_SIM_REPORT_HH

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/multi_core_system.hh"
#include "sim/system.hh"

namespace rcache
{

/** Write a full one-run summary (timing, misses, energy, sizes). */
void writeRunReport(std::ostream &os, const RunResult &r);

/**
 * Write a multi-core run: the aggregate summary, one per-core
 * summary each, and the shared-L2 contention table (per-core
 * attribution, occupancy, cross-core evictions).
 */
void writeMultiCoreReport(std::ostream &os, const MultiCoreResult &r);

/** One labelled design point for a comparison report. */
struct ComparisonEntry
{
    std::string label;
    RunResult result;
};

/**
 * Write a comparison table: each entry's cycles, energy and
 * energy-delay normalized to @p baseline, plus average L1 sizes.
 */
void writeComparisonReport(std::ostream &os, const RunResult &baseline,
                           const std::vector<ComparisonEntry> &entries);

/** Format a relative change as "+x.x%" / "-x.x%". */
std::string formatDelta(double ratio);

/**
 * One row of a profiling sweep: the best point found for an (app,
 * org, strategy, side) cell, normalized against its baseline. The
 * rcache-sim CLI and the benches fill these from SearchOutcomes.
 */
struct SweepRecord
{
    /**
     * Global cell index in scenario enumeration order (app-major,
     * then design-point). Unique per row; sharded sweeps interleave
     * on it, so sorting a shard union by cell reproduces the
     * unsharded CSV byte-for-byte.
     */
    std::uint64_t cell = 0;
    std::string app;
    std::string org;
    std::string strategy;
    std::string side;
    /** Axis coordinates that produced the row ("assoc=4;org=ways";
     *  empty for axis-free sweeps). */
    std::string axes;
    /** Static cells: chosen schedule level. */
    unsigned bestLevel = 0;
    /** Dynamic cells: chosen controller parameters (0 otherwise). */
    std::uint64_t intervalAccesses = 0;
    std::uint64_t missBound = 0;
    std::uint64_t sizeBoundBytes = 0;

    double edReductionPct = 0;
    double perfDegradationPct = 0;
    double sizeReductionPct = 0;
    double baselineEdp = 0;
    double bestEdp = 0;
    std::uint64_t baselineCycles = 0;
    std::uint64_t bestCycles = 0;
    double avgIl1Bytes = 0;
    double avgDl1Bytes = 0;
    /**
     * Provenance: which engine produced the cell's runs. Written as a
     * trailing "engine" column so full-detail, sampled, and analytic
     * reports are never byte-indistinguishable (mixing engines in one
     * comparison is invalid — see the README's Engines section).
     */
    EngineMode engine = EngineMode::Full;
    /**
     * Provenance: the L1 replacement policy the cell ran under
     * (cache/replacement.hh registry name). A policy axis lands here
     * too — the axes string already carries it, but the dedicated
     * column keeps policy comparisons greppable without parsing axis
     * coordinates.
     */
    std::string policy = "lru";
};

/**
 * Write @p records as CSV with a header row. The formatting is
 * locale-independent and value-deterministic: equal records always
 * produce byte-identical output.
 */
void writeSweepCsv(std::ostream &os,
                   const std::vector<SweepRecord> &records);

/** The exact header line writeSweepCsv emits (no newline). */
const std::string &sweepCsvHeader();

/** writeSweepCsv without the header row (resumed sweeps append rows
 *  after a verified existing prefix). */
void writeSweepCsvRows(std::ostream &os,
                       const std::vector<SweepRecord> &records);

/**
 * Strict inverse of writeSweepCsv: the header must match
 * sweepCsvHeader() exactly and every row must carry every column.
 * Values round-trip bit-identically (the writer emits
 * shortest-round-trip doubles). On failure returns nullopt and fills
 * @p err with one line. Used by `sweep --resume` and the round-trip
 * tests.
 */
std::optional<std::vector<SweepRecord>>
readSweepCsv(std::istream &is, std::string *err);

/** Write @p records as a JSON array of objects (same fields). */
void writeSweepJson(std::ostream &os,
                    const std::vector<SweepRecord> &records);

/** Write @p records as a human-readable text table. */
void writeSweepTable(std::ostream &os,
                     const std::vector<SweepRecord> &records);

} // namespace rcache

#endif // RCACHE_SIM_REPORT_HH
