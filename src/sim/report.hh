/**
 * @file
 * Human-readable reports for run results: a full single-run summary
 * and a normalized comparison of design points against a baseline
 * (the form every figure in the paper uses).
 */

#ifndef RCACHE_SIM_REPORT_HH
#define RCACHE_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace rcache
{

/** Write a full one-run summary (timing, misses, energy, sizes). */
void writeRunReport(std::ostream &os, const RunResult &r);

/** One labelled design point for a comparison report. */
struct ComparisonEntry
{
    std::string label;
    RunResult result;
};

/**
 * Write a comparison table: each entry's cycles, energy and
 * energy-delay normalized to @p baseline, plus average L1 sizes.
 */
void writeComparisonReport(std::ostream &os, const RunResult &baseline,
                           const std::vector<ComparisonEntry> &entries);

/** Format a relative change as "+x.x%" / "-x.x%". */
std::string formatDelta(double ratio);

} // namespace rcache

#endif // RCACHE_SIM_REPORT_HH
