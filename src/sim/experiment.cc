#include "sim/experiment.hh"

namespace rcache
{

Experiment::Experiment(const SystemConfig &cfg,
                       std::uint64_t num_insts)
    : cfg_(cfg), numInsts_(num_insts)
{
    // Experiments own the org selection; start from a clean slate.
    cfg_.il1Org = Organization::None;
    cfg_.dl1Org = Organization::None;
}

const std::vector<double> &
Experiment::missBoundFractions()
{
    static const std::vector<double> fracs = {0.002, 0.008, 0.025,
                                              0.07};
    return fracs;
}

const std::vector<std::uint64_t> &
Experiment::intervalGrid()
{
    static const std::vector<std::uint64_t> intervals = {1024, 8192};
    return intervals;
}

SystemConfig
Experiment::configFor(CacheSide side, Organization org) const
{
    SystemConfig cfg = cfg_;
    if (side == CacheSide::DCache)
        cfg.dl1Org = org;
    else
        cfg.il1Org = org;
    return cfg;
}

RunResult
Experiment::baseline(const BenchmarkProfile &profile) const
{
    auto it = baselineMemo_.find(profile.name);
    if (it != baselineMemo_.end())
        return it->second;

    SyntheticWorkload wl(profile);
    System sys(cfg_);
    RunResult res = sys.run(wl, numInsts_);
    baselineMemo_[profile.name] = res;
    return res;
}

RunResult
Experiment::runPoint(const BenchmarkProfile &profile,
                     Organization il1_org, Organization dl1_org,
                     const ResizeSetup &il1_setup,
                     const ResizeSetup &dl1_setup) const
{
    SystemConfig cfg = cfg_;
    cfg.il1Org = il1_org;
    cfg.dl1Org = dl1_org;
    SyntheticWorkload wl(profile);
    System sys(cfg);
    return sys.run(wl, numInsts_, il1_setup, dl1_setup);
}

SearchOutcome
Experiment::staticSearch(const BenchmarkProfile &profile,
                         CacheSide side, Organization org) const
{
    SearchOutcome out;
    out.baseline = baseline(profile);

    const SystemConfig cfg = configFor(side, org);
    const auto schedule = buildSchedule(
        org, side == CacheSide::DCache ? cfg.dl1 : cfg.il1);

    bool first = true;
    for (unsigned level = 0; level < schedule.size(); ++level) {
        ResizeSetup setup{Strategy::Static, level, {}};
        SyntheticWorkload wl(profile);
        System sys(cfg);
        RunResult res =
            side == CacheSide::DCache
                ? sys.run(wl, numInsts_, ResizeSetup{}, setup)
                : sys.run(wl, numInsts_, setup, ResizeSetup{});
        if (first || res.edp() < out.best.edp()) {
            out.best = res;
            out.bestLevel = level;
            first = false;
        }
    }
    return out;
}

SearchOutcome
Experiment::dynamicSearch(const BenchmarkProfile &profile,
                          CacheSide side, Organization org) const
{
    SearchOutcome out;
    out.baseline = baseline(profile);

    const SystemConfig cfg = configFor(side, org);
    const CacheGeometry &geom =
        side == CacheSide::DCache ? cfg.dl1 : cfg.il1;

    // Size-bound candidates: unconstrained, quarter, half, and the
    // full size (the last prevents any downsizing — the safe fallback
    // the profiling pass falls back to when resizing always loses).
    const std::vector<std::uint64_t> size_bounds = {
        0, geom.size / 4, geom.size / 2, geom.size};

    bool first = true;
    for (std::uint64_t interval : intervalGrid()) {
        for (double frac : missBoundFractions()) {
            for (std::uint64_t bound : size_bounds) {
                DynamicParams dyn;
                dyn.intervalAccesses = interval;
                dyn.missBound = static_cast<std::uint64_t>(
                    frac * static_cast<double>(interval));
                dyn.sizeBoundBytes = bound;
                ResizeSetup setup{Strategy::Dynamic, 0, dyn};

                SyntheticWorkload wl(profile);
                System sys(cfg);
                RunResult res =
                    side == CacheSide::DCache
                        ? sys.run(wl, numInsts_, ResizeSetup{}, setup)
                        : sys.run(wl, numInsts_, setup,
                                  ResizeSetup{});
                if (first || res.edp() < out.best.edp()) {
                    out.best = res;
                    out.bestParams = dyn;
                    first = false;
                }
            }
        }
    }
    return out;
}

SearchOutcome
Experiment::staticSearchBoth(const BenchmarkProfile &profile,
                             Organization org) const
{
    // Profile each side individually (the paper's decoupled
    // methodology), then apply both chosen sizes together.
    SearchOutcome d = staticSearch(profile, CacheSide::DCache, org);
    SearchOutcome i = staticSearch(profile, CacheSide::ICache, org);

    SearchOutcome out;
    out.baseline = baseline(profile);

    SystemConfig cfg = cfg_;
    cfg.il1Org = org;
    cfg.dl1Org = org;
    SyntheticWorkload wl(profile);
    System sys(cfg);
    out.best = sys.run(
        wl, numInsts_,
        ResizeSetup{Strategy::Static, i.bestLevel, {}},
        ResizeSetup{Strategy::Static, d.bestLevel, {}});
    out.bestLevel = d.bestLevel;
    return out;
}

} // namespace rcache
