#include "sim/experiment.hh"

#include "util/logging.hh"

namespace rcache
{

std::string
cacheSideName(CacheSide side)
{
    return side == CacheSide::DCache ? "dcache" : "icache";
}

Experiment::Experiment(const SystemConfig &cfg,
                       std::uint64_t num_insts)
    : cfg_(cfg), numInsts_(num_insts)
{
    // Experiments own the org selection; start from a clean slate.
    cfg_.il1Org = Organization::None;
    cfg_.dl1Org = Organization::None;
}

void
Experiment::setEngine(const EngineSpec &engine)
{
    engine.validate();
    std::lock_guard<std::mutex> lk(memoMtx_);
    engine_ = engine;
    baselineMemo_.clear();
}

const std::vector<double> &
Experiment::missBoundFractions()
{
    static const std::vector<double> fracs = SearchGrid{}.missFractions;
    return fracs;
}

const std::vector<std::uint64_t> &
Experiment::intervalGrid()
{
    static const std::vector<std::uint64_t> intervals =
        SearchGrid{}.intervals;
    return intervals;
}

SystemConfig
Experiment::configFor(CacheSide side, Organization org) const
{
    SystemConfig cfg = cfg_;
    if (side == CacheSide::DCache)
        cfg.dl1Org = org;
    else
        cfg.il1Org = org;
    return cfg;
}

std::vector<RunResult>
Experiment::execute(const std::vector<RunJob> &jobs) const
{
    return runner_ ? runner_->run(jobs)
                   : SweepRunner::runSerial(jobs);
}

std::pair<RunResult, std::vector<RunResult>>
Experiment::executeWithBaseline(const BenchmarkProfile &profile,
                                std::vector<RunJob> jobs) const
{
    bool have = false;
    RunResult base;
    {
        std::lock_guard<std::mutex> lk(memoMtx_);
        auto it = baselineMemo_.find(profile.name);
        if (it != baselineMemo_.end()) {
            have = true;
            base = it->second;
        }
    }
    if (have)
        return {base, execute(jobs)};

    // Memo miss: the baseline is just one more job in the batch.
    jobs.insert(jobs.begin(), baselineJob(profile));
    std::vector<RunResult> results = execute(jobs);
    base = results.front();
    results.erase(results.begin());
    // A cancelled batch leaves unrun jobs default-constructed
    // (insts == 0); never memoize such a non-result.
    if (base.insts != 0) {
        std::lock_guard<std::mutex> lk(memoMtx_);
        baselineMemo_.emplace(profile.name, base);
    }
    return {base, std::move(results)};
}

RunResult
Experiment::baseline(const BenchmarkProfile &profile) const
{
    // The whole lookup-or-compute is one critical section: a second
    // thread asking for the same profile blocks until the first has
    // filled the memo instead of redundantly simulating it.
    std::lock_guard<std::mutex> lk(memoMtx_);
    auto it = baselineMemo_.find(profile.name);
    if (it != baselineMemo_.end())
        return it->second;

    RunResult res = executeRunJob(baselineJob(profile));
    baselineMemo_[profile.name] = res;
    return res;
}

RunJob
Experiment::baselineJob(const BenchmarkProfile &profile) const
{
    RunJob job;
    job.label = profile.name + "/baseline";
    job.profile = profile;
    job.cfg = cfg_;
    job.insts = numInsts_;
    job.engine = engine_;
    return job;
}

RunResult
Experiment::runPoint(const BenchmarkProfile &profile,
                     Organization il1_org, Organization dl1_org,
                     const ResizeSetup &il1_setup,
                     const ResizeSetup &dl1_setup) const
{
    RunJob job;
    job.label = profile.name + "/point";
    job.profile = profile;
    job.cfg = cfg_;
    job.cfg.il1Org = il1_org;
    job.cfg.dl1Org = dl1_org;
    job.insts = numInsts_;
    job.il1 = il1_setup;
    job.dl1 = dl1_setup;
    job.engine = engine_;
    return executeRunJob(job);
}

std::vector<DynamicParams>
Experiment::dynamicGrid(CacheSide side, Organization org) const
{
    const SystemConfig cfg = configFor(side, org);
    const CacheGeometry &geom =
        side == CacheSide::DCache ? cfg.dl1 : cfg.il1;

    // Size-bound candidates as fractions of the full size; the
    // default grid ends with the full size itself, which prevents any
    // downsizing — the safe fallback the profiling pass falls back to
    // when resizing always loses.
    std::vector<DynamicParams> grid;
    grid.reserve(grid_.intervals.size() *
                 grid_.missFractions.size() *
                 grid_.sizeFractions.size());
    for (std::uint64_t interval : grid_.intervals) {
        for (double frac : grid_.missFractions) {
            for (double size_frac : grid_.sizeFractions) {
                DynamicParams dyn;
                dyn.intervalAccesses = interval;
                dyn.missBound = static_cast<std::uint64_t>(
                    frac * static_cast<double>(interval));
                dyn.sizeBoundBytes = static_cast<std::uint64_t>(
                    size_frac * static_cast<double>(geom.size));
                grid.push_back(dyn);
            }
        }
    }
    return grid;
}

std::vector<SearchCandidate>
Experiment::searchCandidates(CacheSide side, Organization org,
                             Strategy strat) const
{
    std::vector<SearchCandidate> candidates;
    if (strat == Strategy::Static) {
        const SystemConfig cfg = configFor(side, org);
        const auto schedule = buildSchedule(
            org, side == CacheSide::DCache ? cfg.dl1 : cfg.il1);
        candidates.reserve(schedule.size());
        for (unsigned level = 0; level < schedule.size(); ++level) {
            candidates.push_back(
                {ResizeSetup{Strategy::Static, level, {}},
                 "static/L" + std::to_string(level)});
        }
        return candidates;
    }
    rc_assert(strat == Strategy::Dynamic);
    const auto grid = dynamicGrid(side, org);
    candidates.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        candidates.push_back({ResizeSetup{Strategy::Dynamic, 0, grid[i]},
                              "dynamic/G" + std::to_string(i)});
    }
    return candidates;
}

std::vector<RunJob>
Experiment::searchJobs(const BenchmarkProfile &profile, CacheSide side,
                       Organization org, Strategy strat) const
{
    const SystemConfig cfg = configFor(side, org);
    const auto candidates = searchCandidates(side, org, strat);

    std::vector<RunJob> jobs;
    jobs.reserve(candidates.size());
    for (const SearchCandidate &cand : candidates) {
        RunJob job;
        job.label = profile.name + "/" + organizationName(org) + "/" +
                    cacheSideName(side) + "/" + cand.tag;
        job.profile = profile;
        job.cfg = cfg;
        job.insts = numInsts_;
        job.engine = engine_;
        (side == CacheSide::DCache ? job.dl1 : job.il1) = cand.setup;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<RunJob>
Experiment::staticSearchJobs(const BenchmarkProfile &profile,
                             CacheSide side, Organization org) const
{
    return searchJobs(profile, side, org, Strategy::Static);
}

std::vector<RunJob>
Experiment::dynamicSearchJobs(const BenchmarkProfile &profile,
                              CacheSide side, Organization org) const
{
    return searchJobs(profile, side, org, Strategy::Dynamic);
}

SearchOutcome
Experiment::reduceSearch(const RunResult &baseline,
                         const std::vector<SearchCandidate> &candidates,
                         const std::vector<RunResult> &results)
{
    rc_assert(candidates.size() == results.size());
    SearchOutcome out;
    out.baseline = baseline;

    // Strict `<`: the first minimum in candidate order wins, so
    // equal-E.D ties resolve to the larger cache / lower index (see
    // the header's tie-break contract).
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &res = results[i];
        if (res.insts == 0)
            continue; // cancelled before this job ran
        if (first || res.edp() < out.best.edp()) {
            out.best = res;
            out.bestLevel = candidates[i].setup.staticLevel;
            out.bestParams = candidates[i].setup.dyn;
            first = false;
        }
    }
    rc_assert(!first);
    return out;
}

SearchOutcome
Experiment::reduceStatic(const RunResult &baseline,
                         const std::vector<RunResult> &results)
{
    std::vector<SearchCandidate> candidates;
    candidates.reserve(results.size());
    for (unsigned level = 0; level < results.size(); ++level)
        candidates.push_back(
            {ResizeSetup{Strategy::Static, level, {}}, ""});
    return reduceSearch(baseline, candidates, results);
}

SearchOutcome
Experiment::reduceDynamic(const RunResult &baseline,
                          const std::vector<DynamicParams> &grid,
                          const std::vector<RunResult> &results)
{
    std::vector<SearchCandidate> candidates;
    candidates.reserve(grid.size());
    for (const DynamicParams &dyn : grid)
        candidates.push_back(
            {ResizeSetup{Strategy::Dynamic, 0, dyn}, ""});
    return reduceSearch(baseline, candidates, results);
}

SearchOutcome
Experiment::reduceBoth(const RunResult &baseline,
                       const SearchOutcome &dcacheOut,
                       const RunResult &combined)
{
    SearchOutcome out;
    out.baseline = baseline;
    out.best = combined;
    out.bestLevel = dcacheOut.bestLevel;
    return out;
}

RunJob
Experiment::bothStaticJob(const BenchmarkProfile &profile,
                          Organization org, unsigned il1_level,
                          unsigned dl1_level) const
{
    RunJob job;
    job.label = profile.name + "/" + organizationName(org) +
                "/both/static";
    job.profile = profile;
    job.cfg = cfg_;
    job.cfg.il1Org = org;
    job.cfg.dl1Org = org;
    job.insts = numInsts_;
    job.engine = engine_;
    job.il1 = ResizeSetup{Strategy::Static, il1_level, {}};
    job.dl1 = ResizeSetup{Strategy::Static, dl1_level, {}};
    return job;
}

SearchOutcome
Experiment::search(const BenchmarkProfile &profile, CacheSide side,
                   Organization org, Strategy strat) const
{
    auto [base, results] = executeWithBaseline(
        profile, searchJobs(profile, side, org, strat));
    return reduceSearch(base, searchCandidates(side, org, strat),
                        results);
}

SearchOutcome
Experiment::staticSearch(const BenchmarkProfile &profile,
                         CacheSide side, Organization org) const
{
    return search(profile, side, org, Strategy::Static);
}

SearchOutcome
Experiment::dynamicSearch(const BenchmarkProfile &profile,
                          CacheSide side, Organization org) const
{
    return search(profile, side, org, Strategy::Dynamic);
}

SearchOutcome
Experiment::staticSearchBoth(const BenchmarkProfile &profile,
                             Organization org) const
{
    // Profile each side individually (the paper's decoupled
    // methodology), then apply both chosen sizes together. Both
    // sides' sweeps (and the baseline) go into one batch so an
    // attached runner can overlap them.
    auto jobs = staticSearchJobs(profile, CacheSide::DCache, org);
    const std::size_t n_d = jobs.size();
    const auto i_jobs = staticSearchJobs(profile, CacheSide::ICache,
                                         org);
    jobs.insert(jobs.end(), i_jobs.begin(), i_jobs.end());

    auto [base, results] =
        executeWithBaseline(profile, std::move(jobs));
    const SearchOutcome d = reduceStatic(
        base, {results.begin(), results.begin() + n_d});
    const SearchOutcome i = reduceStatic(
        base, {results.begin() + n_d, results.end()});

    SearchOutcome out;
    out.baseline = base;
    out.best = executeRunJob(
        bothStaticJob(profile, org, i.bestLevel, d.bestLevel));
    out.bestLevel = d.bestLevel;
    return out;
}

} // namespace rcache
