/**
 * @file
 * System: one simulated processor+memory configuration, run once.
 *
 * A System wires a core model, the two (possibly resizable) L1s, the
 * L2, the resizing policies, and the energy model. It is single-use:
 * construct, call run() once, read the result. The experiment driver
 * (sim/experiment.hh) constructs one System per design point, which is
 * how the paper's profiling methodology works anyway.
 */

#ifndef RCACHE_SIM_SYSTEM_HH
#define RCACHE_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/dynamic_controller.hh"
#include "core/resizable_cache.hh"
#include "core/static_policy.hh"
#include "cpu/core.hh"
#include "energy/energy_model.hh"
#include "sim/engine.hh"
#include "workload/workload.hh"

namespace rcache
{

struct RunTelemetry;

/** Which CPU timing model to use. */
enum class CoreModel
{
    /** 4-wide OoO, non-blocking d-cache (base config, Table 2). */
    OutOfOrder,
    /** 4-wide in-order, blocking d-cache (Sec 4.2 contrast). */
    InOrder,
};

/** Printable core model name. */
std::string coreModelName(CoreModel m);

/** Full system configuration. */
struct SystemConfig
{
    CoreModel coreModel = CoreModel::OutOfOrder;
    CoreParams core;
    CacheGeometry il1{32 * 1024, 2, 32, 1024};
    CacheGeometry dl1{32 * 1024, 2, 32, 1024};
    CacheGeometry l2{512 * 1024, 4, 32, 8192};
    HierarchyParams lat;
    Organization il1Org = Organization::None;
    Organization dl1Org = Organization::None;
    /**
     * L1 replacement policy, by registry name (replacement.hh): both
     * L1s of every core use it; the shared L2 stays LRU. Seeded
     * policies derive their streams from each cache's identity, so a
     * lane's il1 and dl1 (and the same cache on different cores)
     * never replay one another's decisions.
     */
    std::string policy = "lru";
    EnergyParams energy = EnergyParams::defaults018um();

    /** @name Multi-core extension (sim/multi_core_system.hh)
     * cores == 1 (the default) is the classic single-core System,
     * whose behavior these fields never affect. cores > 1 selects the
     * multi-programmed shared-L2 system: N cores with private L1s
     * (each a copy of il1/dl1 above) over one shared L2 of the l2
     * geometry, advanced in a deterministic round-robin interleave of
     * quantumInsts instructions per turn.
     */
    /// @{
    unsigned cores = 1;
    /** Round-robin interleave granularity in instructions
     *  (full-detail runs only: sampled runs interleave whole
     *  sampling periods instead). */
    std::uint64_t quantumInsts = 50000;
    /**
     * Per-core timing models, cycled when shorter than cores (empty:
     * every core uses coreModel above). Lets one system mix in-order
     * and out-of-order cores.
     */
    std::vector<CoreModel> coreModels;
    /// @}

    /** Timing model of core @p i under the cycling rule above. */
    CoreModel modelOfCore(unsigned i) const
    {
        return coreModels.empty() ? coreModel
                                  : coreModels[i % coreModels.size()];
    }

    /** The paper's Table 2 base system. */
    static SystemConfig base() { return {}; }

    bool operator==(const SystemConfig &o) const = default;
};

/** Per-cache resizing strategy selection for one run. */
struct ResizeSetup
{
    Strategy strategy = Strategy::None;
    /** Schedule level for Strategy::Static. */
    unsigned staticLevel = 0;
    /** Controller parameters for Strategy::Dynamic. */
    DynamicParams dyn;

    bool operator==(const ResizeSetup &o) const = default;
};

/** Everything a run produces. */
struct RunResult
{
    std::string workload;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    CoreActivity activity;
    EnergyBreakdown energy;

    double avgIl1Bytes = 0;
    double avgDl1Bytes = 0;
    double il1MissRatio = 0;
    double dl1MissRatio = 0;
    double l2MissRatio = 0;
    std::uint64_t il1Resizes = 0;
    std::uint64_t dl1Resizes = 0;
    /** Level at each dynamic interval boundary (empty if static). */
    std::vector<unsigned> il1LevelTrace;
    std::vector<unsigned> dl1LevelTrace;

    /** @name Engine provenance
     * Which engine produced this result (sim/engine.hh). Full-detail
     * runs measure every instruction (measuredInsts == insts).
     * Sampled runs report how much of the stream went through the
     * timing core; cycles/energy are extrapolations. Analytic runs
     * never touch a timing core (measuredInsts == 0): counts are
     * exact for LRU, cycles are a CPI model.
     */
    /// @{
    EngineMode engine = EngineMode::Full;
    std::uint64_t measuredInsts = 0;
    std::uint64_t warmupInsts = 0;
    /// @}

    /** @name L1 event counts
     * Exact for full and analytic runs, extrapolated (rounded once)
     * for sampled runs. These are what the analytic exactness gate
     * compares, and they feed the miss ratios above.
     */
    /// @{
    std::uint64_t il1Accesses = 0;
    std::uint64_t il1Misses = 0;
    std::uint64_t dl1Accesses = 0;
    std::uint64_t dl1Misses = 0;
    /// @}

    /** The paper's metric: processor energy x delay. */
    double edp() const { return energy.total() * cycles; }
    double ipc() const { return activity.ipc(); }
};

/** See file comment. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Run @p num_insts instructions of @p workload with the given
     * per-cache resizing setups. Single use.
     *
     * @param engine fully detailed by default; a sampled spec
     *        fast-forwards between measured windows (sim/sampling.hh).
     *        The analytic engine never reaches a System — it is
     *        dispatched in executeRunJob (runner/sweep_runner.hh) and
     *        asking for it here is fatal.
     * @param telemetry optional observation request/output bundle
     *        (telemetry/run_telemetry.hh); null = off, zero impact
     */
    RunResult run(Workload &workload, std::uint64_t num_insts,
                  const ResizeSetup &il1_setup = {},
                  const ResizeSetup &dl1_setup = {},
                  const EngineSpec &engine = {},
                  RunTelemetry *telemetry = nullptr);

    ResizableCache &il1() { return il1_; }
    ResizableCache &dl1() { return dl1_; }
    Hierarchy &hierarchy() { return hier_; }
    const SystemConfig &config() const { return cfg_; }

    /** Dump all cache stat groups (il1, dl1, l2) as text. */
    void dumpStats(std::ostream &os) const;

  private:
    std::unique_ptr<ResizePolicy> makePolicy(ResizableCache &cache,
                                             const ResizeSetup &setup);

    SystemConfig cfg_;
    ResizableCache il1_;
    ResizableCache dl1_;
    Hierarchy hier_;
    bool ran_ = false;
};

} // namespace rcache

#endif // RCACHE_SIM_SYSTEM_HH
