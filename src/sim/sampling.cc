#include "sim/sampling.hh"

#include <cmath>

#include "cpu/functional_core.hh"

namespace rcache
{

const char *
SamplingConfig::shapeError(std::uint64_t interval,
                           std::uint64_t detailed,
                           std::uint64_t warmup)
{
    if (detailed == 0)
        return "sample detail must be > 0";
    // Overflow-safe form of detailed + warmup > interval.
    if (detailed > interval || warmup > interval - detailed)
        return "sample detail + warmup must fit in the sample period";
    return nullptr;
}

SamplingConfig::PeriodShape
SamplingConfig::periodShape(std::uint64_t remaining) const
{
    PeriodShape s;
    if (remaining >= intervalInsts) {
        s.detailed = detailedInsts;
        s.warmup = warmupInsts;
        s.fastForward = intervalInsts - s.warmup - s.detailed;
    } else {
        s.detailed = std::min(detailedInsts, remaining);
        s.warmup = std::min(warmupInsts, remaining - s.detailed);
        s.fastForward = remaining - s.detailed - s.warmup;
    }
    return s;
}

std::uint64_t
SamplingConfig::measuredInsts(std::uint64_t total) const
{
    validate();
    std::uint64_t measured = 0;
    // Full periods all measure detailedInsts; only the tail differs.
    // Collapsing them keeps this O(1) for any total/interval ratio.
    if (total >= intervalInsts) {
        const std::uint64_t full = total / intervalInsts;
        measured += full * detailedInsts;
        total -= full * intervalInsts;
    }
    while (total > 0) {
        const PeriodShape s = periodShape(total);
        measured += s.detailed;
        total -= s.fastForward + s.warmup + s.detailed;
    }
    return measured;
}

void
SamplingConfig::validate() const
{
    if (const char *err =
            shapeError(intervalInsts, detailedInsts, warmupInsts))
        rc_fatal(std::string("bad sampling config: ") + err);
}

SamplingController::SamplingController(const SamplingConfig &cfg,
                                       Hierarchy &hier,
                                       ResizableCache &il1,
                                       ResizableCache &dl1,
                                       ResizePolicy *il1_policy,
                                       ResizePolicy *dl1_policy)
    : cfg_(cfg),
      hier_(hier),
      il1_(il1),
      dl1_(dl1),
      il1Policy_(il1_policy),
      dl1Policy_(dl1_policy)
{
    cfg_.validate();
}

SampledStats
SamplingController::run(Core &core, Workload &workload,
                        std::uint64_t num_insts)
{
    FunctionalCore func(hier_, core.predictor(),
                        core.params().fetchWidth, il1Policy_,
                        dl1Policy_);
    func.setProbe(probe_);

    SampledStats s;
    CacheActivity il1_sum, dl1_sum;
    CoreActivity mix;
    double l2_accesses = 0, l2_misses = 0, mem_accesses = 0;
    std::uint64_t cycles_sum = 0;

    std::uint64_t done = 0;
    while (done < num_insts) {
        const SamplingConfig::PeriodShape shape =
            cfg_.periodShape(num_insts - done);
        const std::uint64_t detail = shape.detailed;
        const std::uint64_t warm = shape.warmup;
        const std::uint64_t ff = shape.fastForward;

        // Fast-forward: workload position only; nothing simulated.
        if (ff)
            workload.skip(ff);

        // Warmup: rebuild cache/predictor/controller state that went
        // stale across the skip, with no timing. Both the functional
        // and the detailed window below drain the workload through
        // fixed-size nextBatch batches (the cores do the batching),
        // so neither pays a virtual next() per instruction.
        if (warm) {
            func.invalidateFetchBlock();
            func.run(workload, warm);
        }

        // A fresh timing window: cycle 0, empty structural pools,
        // byte-cycle integrals re-anchored. Warm state (caches,
        // predictor, controller counters) carries over.
        core.resetTiming();
        il1_.cache().restartTimeAccounting();
        dl1_.cache().restartTimeAccounting();

        const CacheActivity il1_pre = CacheActivity::of(il1_.cache());
        const CacheActivity dl1_pre = CacheActivity::of(dl1_.cache());
        const std::uint64_t l2a_pre = hier_.l2().accesses();
        const std::uint64_t l2m_pre = hier_.l2().misses();
        const std::uint64_t mem_pre =
            hier_.memReads() + hier_.memWrites();

        const CoreActivity act = core.run(workload, detail);
        il1_.cache().accumulateEnabledTime(act.cycles);
        dl1_.cache().accumulateEnabledTime(act.cycles);

        il1_sum += CacheActivity::of(il1_.cache()) - il1_pre;
        dl1_sum += CacheActivity::of(dl1_.cache()) - dl1_pre;
        l2_accesses +=
            static_cast<double>(hier_.l2().accesses() - l2a_pre);
        l2_misses +=
            static_cast<double>(hier_.l2().misses() - l2m_pre);
        mem_accesses += static_cast<double>(
            hier_.memReads() + hier_.memWrites() - mem_pre);

        cycles_sum += act.cycles;
        mix.outOfOrder = act.outOfOrder;
        mix.insts += act.insts;
        mix.intOps += act.intOps;
        mix.fpOps += act.fpOps;
        mix.loads += act.loads;
        mix.stores += act.stores;
        mix.branches += act.branches;
        mix.mispredicts += act.mispredicts;

        s.measuredInsts += detail;
        s.warmupInsts += warm;
        s.fastForwardInsts += ff;
        ++s.windows;
        done += ff + warm + detail;
    }

    // Extrapolate the measured windows to the whole run. Counts are
    // rounded once at the end, never per window, so the estimate is
    // independent of the window count for a fixed measured fraction.
    rc_assert(s.measuredInsts > 0);
    const double scale = static_cast<double>(num_insts) /
                         static_cast<double>(s.measuredInsts);
    auto scaleCount = [scale](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(v) * scale));
    };
    s.activity.outOfOrder = mix.outOfOrder;
    s.activity.insts = num_insts;
    s.activity.cycles = scaleCount(cycles_sum);
    s.activity.intOps = scaleCount(mix.intOps);
    s.activity.fpOps = scaleCount(mix.fpOps);
    s.activity.loads = scaleCount(mix.loads);
    s.activity.stores = scaleCount(mix.stores);
    s.activity.branches = scaleCount(mix.branches);
    s.activity.mispredicts = scaleCount(mix.mispredicts);

    s.il1 = il1_sum.scaled(scale);
    s.dl1 = dl1_sum.scaled(scale);
    s.l2Accesses = l2_accesses * scale;
    s.memAccesses = mem_accesses * scale;

    s.il1MissRatio = il1_sum.missRatio();
    s.dl1MissRatio = dl1_sum.missRatio();
    s.l2MissRatio = l2_accesses > 0 ? l2_misses / l2_accesses : 0.0;
    const double cyc = static_cast<double>(cycles_sum);
    s.avgIl1Bytes = cyc > 0 ? il1_sum.byteCycles / cyc : 0.0;
    s.avgDl1Bytes = cyc > 0 ? dl1_sum.byteCycles / cyc : 0.0;
    return s;
}

} // namespace rcache
