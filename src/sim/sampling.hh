/**
 * @file
 * Sampled simulation: functional fast-forward between short detailed
 * measurement windows (SMARTS-style systematic sampling).
 *
 * A sampled run carves the instruction stream into fixed periods of
 * @c intervalInsts instructions. Each period is simulated as
 *
 *     [ fast-forward | warmup | detailed ]
 *
 * Fast-forward advances only the *workload position* (Workload::skip,
 * O(1) for the synthetic generators) — nothing is simulated, which is
 * where the order-of-magnitude speedup comes from. Warmup runs on the
 * FunctionalCore: caches (tags, LRU, dirty bits), the branch
 * predictor, and the resize controllers' interval/miss counters
 * advance with no timing, rebuilding the state the skip left stale.
 * The detailed window is measured on the timing core: cycles,
 * instruction mix, and per-cache counter deltas accumulate across all
 * windows and are extrapolated (scaled by total/measured
 * instructions) to full-run estimates.
 *
 * The accuracy trade-off is explicit: state inside a skipped span is
 * never observed (a resize controller sleeps through it — see the
 * interval-skip tests), and warmup length bounds how much of the L1/L2
 * working set is re-established before measurement. The accuracy gate
 * in tests/sim/sampling_test.cc pins both effects.
 *
 * The whole procedure is a pure function of (workload, config), so
 * sampled sweeps stay bit-identical across thread counts exactly like
 * full-detail sweeps.
 */

#ifndef RCACHE_SIM_SAMPLING_HH
#define RCACHE_SIM_SAMPLING_HH

#include "core/resizable_cache.hh"
#include "cpu/core.hh"
#include "energy/cache_energy.hh"

namespace rcache
{

/**
 * Shape of one sampling period. Pure shape: whether a run samples at
 * all is the engine's call (EngineSpec in sim/engine.hh, which
 * replaced the old SampleMode enum) — this struct only says how the
 * periods carve up once it does.
 */
struct SamplingConfig
{
    /** Total instructions per period (fast-forward + warmup +
     *  detailed). */
    std::uint64_t intervalInsts = 100000;
    /** Measured instructions at the end of each period. */
    std::uint64_t detailedInsts = 10000;
    /** FunctionalCore instructions warming cache/predictor/controller
     *  state before each detailed window (no timing, not measured). */
    std::uint64_t warmupInsts = 20000;

    bool operator==(const SamplingConfig &o) const = default;

    /**
     * Why (interval, detailed, warmup) is not a valid sampled shape,
     * or nullptr if it is. The single source of the shape rules —
     * validate(), the CLI's --sample parsing, and the benches'
     * RCACHE_SAMPLE knob all call this, so the layers cannot drift.
     * Overflow-safe for any uint64 inputs.
     */
    static const char *shapeError(std::uint64_t interval,
                                  std::uint64_t detailed,
                                  std::uint64_t warmup);

    /** Fatal on a malformed shape. */
    void validate() const;

    /** A config with the given shape. */
    static SamplingConfig sampled(std::uint64_t interval,
                                  std::uint64_t detailed,
                                  std::uint64_t warmup)
    {
        return {interval, detailed, warmup};
    }

    /**
     * How one period carves up when @p remaining instructions are
     * left: full periods use the configured split; a short tail keeps
     * the measurement window at the expense of fast-forward so every
     * period ends measured. Shared by SamplingController and the
     * multi-core system's per-core sampled loop so the two cannot
     * drift (a drift would break the 1-core-vs-single-core accuracy
     * relationship).
     */
    struct PeriodShape
    {
        std::uint64_t fastForward = 0;
        std::uint64_t warmup = 0;
        std::uint64_t detailed = 0;
    };
    PeriodShape periodShape(std::uint64_t remaining) const;

    /**
     * Timing-core instructions a sampled run of @p total
     * instructions measures — the sum of every period's detailed
     * window, walked with periodShape so it equals the controller's
     * SampledStats::measuredInsts exactly. Pure plan-time
     * arithmetic; the adaptive search and benches use it to account
     * detailed-simulation cost without running anything.
     */
    std::uint64_t measuredInsts(std::uint64_t total) const;

    /** @name Derived defaults
     * The single source for the documented `--sample` /
     * `RCACHE_SAMPLE` defaulting rules, shared by the CLI and the
     * benches so the two knobs cannot drift apart.
     */
    /// @{
    /** Default measured window: a tenth of the period, at least 1. */
    static std::uint64_t defaultDetail(std::uint64_t interval)
    {
        return interval / 10 > 0 ? interval / 10 : 1;
    }
    /** Default functional warmup: a fifth of the period. */
    static std::uint64_t defaultWarmup(std::uint64_t interval)
    {
        return interval / 5;
    }
    /// @}
};

/** Everything a sampled run measures or extrapolates. */
struct SampledStats
{
    /** Extrapolated to the full run (cycles, mix, mispredicts). */
    CoreActivity activity;
    /** Extrapolated per-cache event totals. */
    CacheActivity il1, dl1;
    double l2Accesses = 0;
    double memAccesses = 0;

    /** Ratios measured in the detailed windows (scale-free). */
    double il1MissRatio = 0;
    double dl1MissRatio = 0;
    double l2MissRatio = 0;
    double avgIl1Bytes = 0;
    double avgDl1Bytes = 0;

    /** @name Coverage accounting */
    /// @{
    /** Timing-core (measured) instructions. */
    std::uint64_t measuredInsts = 0;
    /** FunctionalCore (warming) instructions. */
    std::uint64_t warmupInsts = 0;
    /** Skipped instructions (never simulated). */
    std::uint64_t fastForwardInsts = 0;
    std::uint64_t windows = 0;
    /// @}
};

/**
 * Orchestrates one sampled run over a System's parts. Single-use,
 * like the System that owns the parts.
 */
class SamplingController
{
  public:
    SamplingController(const SamplingConfig &cfg, Hierarchy &hier,
                       ResizableCache &il1, ResizableCache &dl1,
                       ResizePolicy *il1_policy,
                       ResizePolicy *dl1_policy);

    /**
     * Run @p num_insts instructions of @p workload, alternating
     * fast-forward and detailed windows on @p core.
     */
    SampledStats run(Core &core, Workload &workload,
                     std::uint64_t num_insts);

    /**
     * Attach a telemetry probe: the detailed windows sample through
     * the timing core (the caller attaches it there) and warmup
     * spans sample through the FunctionalCore this controller builds,
     * which is what this hook threads it into.
     */
    void setProbe(CoreProbe *probe) { probe_ = probe; }

  private:
    SamplingConfig cfg_;
    CoreProbe *probe_ = nullptr;
    Hierarchy &hier_;
    ResizableCache &il1_;
    ResizableCache &dl1_;
    ResizePolicy *il1Policy_;
    ResizePolicy *dl1Policy_;
};

} // namespace rcache

#endif // RCACHE_SIM_SAMPLING_HH
