/**
 * @file
 * Engine selection: how a run turns a workload into a RunResult.
 *
 * Three engines share one result contract (RunResult):
 *
 *  - full:     every instruction through the timing core. The
 *              reference semantics; everything else is validated
 *              against it.
 *  - sampled:  fast-forward / warmup / detailed periods
 *              (sim/sampling.hh); cycles and energy are
 *              extrapolations of the measured windows.
 *  - analytic: one stack-distance pass over the workload prices every
 *              LRU sets x ways geometry at once (src/analytic/);
 *              hit/miss counts are exact for LRU, cycles come from an
 *              analytical CPI model.
 *
 * EngineSpec is the single selection surface: the CLI's --engine
 * flag, the scenario [engine] section, RunJob, Experiment, and the
 * System entry points all carry one. The legacy SampleMode enum and
 * the scattered --sample* flags collapsed into this type; [sampling]
 * and --sample* remain as parsed-and-mapped deprecation shims.
 *
 * Canonical-form invariant: `sampling` holds the period shape only
 * when mode == Sampled; full and analytic specs always carry the
 * default-constructed shape. Every factory and parser below maintains
 * this, which is what makes operator== and the scenario round-trip
 * (parse(print(spec)) == spec) behave.
 */

#ifndef RCACHE_SIM_ENGINE_HH
#define RCACHE_SIM_ENGINE_HH

#include <optional>
#include <string>

#include "sim/sampling.hh"

namespace rcache
{

/** See file comment. */
enum class EngineMode
{
    /** Every instruction through the timing core (the default). */
    Full,
    /** Fast-forward / warmup / detailed periods (sim/sampling.hh). */
    Sampled,
    /** Single-pass stack-distance pricing (src/analytic/). */
    Analytic,
};

/** Printable engine name ("full" / "sampled" / "analytic"). The
 *  successor of the retired sampleModeName. */
std::string engineName(EngineMode mode);

/** Parse an engine name; nullopt on an unknown one. */
std::optional<EngineMode> parseEngineModeToken(const std::string &t);

/** See file comment. */
struct EngineSpec
{
    EngineMode mode = EngineMode::Full;
    /** Period shape, meaningful only when mode == Sampled (canonical
     *  form keeps the defaults otherwise; see file comment). */
    SamplingConfig sampling;

    bool sampled() const { return mode == EngineMode::Sampled; }
    bool analytic() const { return mode == EngineMode::Analytic; }

    /**
     * Timing-core instructions a run of @p insts under this engine
     * simulates in detail: all of them (full), the measured windows
     * (sampled; equals RunResult::measuredInsts), or none
     * (analytic). The adaptive search's cost accounting.
     */
    std::uint64_t detailedInstsFor(std::uint64_t insts) const
    {
        if (mode == EngineMode::Full)
            return insts;
        if (mode == EngineMode::Analytic)
            return 0;
        return sampling.measuredInsts(insts);
    }

    bool operator==(const EngineSpec &o) const = default;

    /** Fatal on a malformed spec (sampled with a bad period shape, or
     *  a non-sampled spec smuggling a non-default shape). */
    void validate() const;

    /** A sampled spec with the given period shape. */
    static EngineSpec
    makeSampled(std::uint64_t interval, std::uint64_t detailed,
                std::uint64_t warmup)
    {
        EngineSpec e;
        e.mode = EngineMode::Sampled;
        e.sampling = SamplingConfig::sampled(interval, detailed,
                                             warmup);
        return e;
    }

    /** A sampled spec with an existing shape. */
    static EngineSpec makeSampled(const SamplingConfig &shape)
    {
        EngineSpec e;
        e.mode = EngineMode::Sampled;
        e.sampling = shape;
        return e;
    }

    /** The analytic engine (no parameters). */
    static EngineSpec makeAnalytic()
    {
        EngineSpec e;
        e.mode = EngineMode::Analytic;
        return e;
    }
};

/**
 * Parse the CLI's one engine surface:
 *
 *     full
 *     sampled[:interval=N[,detail=N][,warmup=N]]
 *     analytic
 *
 * `sampled` without options uses the default period shape; detail and
 * warmup default from the interval per SamplingConfig's rules.
 * Options after `full:`/`analytic:` and unknown keys are rejected.
 * On failure returns nullopt and fills @p err with one line.
 */
std::optional<EngineSpec> parseEngineArg(const std::string &text,
                                         std::string *err);

/** Canonical inverse of parseEngineArg ("full", "analytic",
 *  "sampled:interval=N,detail=N,warmup=N"). */
std::string engineArg(const EngineSpec &spec);

} // namespace rcache

#endif // RCACHE_SIM_ENGINE_HH
