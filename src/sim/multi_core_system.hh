/**
 * @file
 * MultiCoreSystem: N single-core pipelines, N private (possibly
 * resizable) L1 hierarchies, one shared L2 — the multi-programmed
 * workload-mix system.
 *
 * Each core runs its own workload in a private address space (a
 * per-core offset in the high address bits keeps the streams disjoint
 * — multi-programmed, no sharing, no coherence), with private L1s and
 * independent resize controllers, while all L2 traffic funnels into
 * one SharedL2 (cache/shared_l2.hh) that attributes hits, misses,
 * memory traffic, and capacity occupancy per core. Contention is
 * therefore modelled at the capacity/conflict level: core A's misses
 * evict core B's L2 blocks. L2 bandwidth and MSHR contention between
 * cores are not modelled (each core keeps its private timing pools),
 * matching the single-core model's purely functional L2.
 *
 * Determinism contract: cores advance in a fixed round-robin
 * interleave — core 0 runs a quantum of cfg.quantumInsts
 * instructions, then core 1, ... until every core has retired its
 * share — so the shared-L2 access order, and with it every counter
 * and energy figure, is a pure function of the configuration and the
 * workload mix. Results are bit-reproducible across runs, --jobs
 * values, shards, and resume points, exactly like single-core runs.
 * Each quantum restarts the core's timing machinery the way the
 * sampling engine restarts detailed windows (warm cache/predictor/
 * controller state carries across quanta; pipeline state does not),
 * so a core's cycle count is the sum of its quantum cycles.
 *
 * Sampled runs (EngineMode::Sampled) interleave at period
 * granularity instead: each round-robin turn executes one full
 * fast-forward/warmup/detailed period of that core's stream, and the
 * per-core measurements extrapolate per core (each core has its own
 * measured-instruction denominator), reusing the exact period shape
 * of the single-core sampling engine.
 *
 * Whole-system metrics in the aggregate result follow the
 * multi-programmed convention: instructions and energy sum over
 * cores; the delay is the makespan (the slowest core's cycles); the
 * shared L2's leakage is charged once over the makespan, while each
 * core's own result charges it over that core's cycles (so per-core
 * EDPs are self-contained but their energies do not sum exactly to
 * the aggregate — the aggregate is authoritative).
 */

#ifndef RCACHE_SIM_MULTI_CORE_SYSTEM_HH
#define RCACHE_SIM_MULTI_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/shared_l2.hh"
#include "sim/system.hh"
#include "workload/profiles.hh"

namespace rcache
{

/** Everything a multi-core run produces. */
struct MultiCoreResult
{
    /**
     * One RunResult per core, in core order: that core's private
     * counters, its attributed share of the shared L2/memory traffic,
     * and an energy breakdown charging the shared L2 over the core's
     * own cycles (see the file comment's attribution convention).
     */
    std::vector<RunResult> perCore;

    /**
     * The whole-system view the sweep machinery reduces on: summed
     * instructions/activity/energy, makespan cycles, capacity-summed
     * average L1 sizes, access-weighted miss ratios. aggregate.edp()
     * is total energy x makespan.
     */
    RunResult aggregate;

    /** Per-core shared-L2 attribution at end of run. */
    std::vector<SharedL2CoreStats> l2PerCore;
    /** Sum of l2PerCore (== the shared cache's own totals). */
    SharedL2CoreStats l2Totals;
};

/** See file comment. */
class MultiCoreSystem
{
  public:
    /** @param cfg requires cfg.cores >= 2 (single-core runs keep the
     *         exact semantics of System; see executeRunJob). */
    explicit MultiCoreSystem(const SystemConfig &cfg);

    /**
     * Run @p insts_per_core instructions on every core. Core i runs
     * the profile mix[i % mix.size()] in a private address space.
     * Every core applies the same resize setups (to its own private
     * controllers). Single use.
     */
    MultiCoreResult run(const std::vector<BenchmarkProfile> &mix,
                        std::uint64_t insts_per_core,
                        const ResizeSetup &il1_setup = {},
                        const ResizeSetup &dl1_setup = {},
                        const EngineSpec &engine = {},
                        RunTelemetry *telemetry = nullptr);

    const SystemConfig &config() const { return cfg_; }
    SharedL2 &sharedL2() { return l2_; }

    /**
     * Address-space offset of core @p i: streams are shifted into
     * disjoint high-address windows (bit 44 and up), leaving the
     * index/alias structure of every stream untouched.
     */
    static Addr addressSpaceBase(unsigned core)
    {
        return static_cast<Addr>(core) << 44;
    }

  private:
    SystemConfig cfg_;
    SharedL2 l2_;
    bool ran_ = false;
};

} // namespace rcache

#endif // RCACHE_SIM_MULTI_CORE_SYSTEM_HH
