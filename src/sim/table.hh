/**
 * @file
 * Fixed-width text tables for the benchmark harness output.
 */

#ifndef RCACHE_SIM_TABLE_HH
#define RCACHE_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace rcache
{

/** Accumulates rows, prints a padded table with a rule under the
 *  header. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Format helpers for table cells. */
    static std::string pct(double v, int precision = 1);
    static std::string num(double v, int precision = 2);
    static std::string bytesKb(double bytes);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rcache

#endif // RCACHE_SIM_TABLE_HH
