#include "sim/system.hh"

#include <cmath>
#include <optional>

#include "cpu/inorder_core.hh"
#include "cpu/ooo_core.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/timeline.hh"

namespace rcache
{

std::string
coreModelName(CoreModel m)
{
    switch (m) {
      case CoreModel::OutOfOrder:
        return "out-of-order/non-blocking";
      case CoreModel::InOrder:
        return "in-order/blocking";
    }
    rc_panic("bad core model");
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      il1_("il1", cfg.il1, cfg.il1Org, cfg.policy),
      dl1_("dl1", cfg.dl1, cfg.dl1Org, cfg.policy),
      hier_(&il1_.cache(), &dl1_.cache(), cfg.l2, cfg.lat)
{
    // Multi-core configs go through MultiCoreSystem; accepting one
    // here would silently simulate only core 0.
    rc_assert(cfg.cores == 1);
}

void
System::dumpStats(std::ostream &os) const
{
    il1_.cache().stats().dump(os);
    dl1_.cache().stats().dump(os);
    hier_.l2().stats().dump(os);
}

std::unique_ptr<ResizePolicy>
System::makePolicy(ResizableCache &cache, const ResizeSetup &setup)
{
    switch (setup.strategy) {
      case Strategy::None:
        return nullptr;
      case Strategy::Static:
        rc_assert(cache.organization() != Organization::None ||
                  setup.staticLevel == 0);
        return std::make_unique<StaticPolicy>(
            cache, hier_.l1WritebackSink(), setup.staticLevel);
      case Strategy::Dynamic:
        rc_assert(cache.organization() != Organization::None);
        return std::make_unique<DynamicMissRatioController>(
            cache, hier_.l1WritebackSink(), setup.dyn);
    }
    rc_panic("bad strategy");
}

RunResult
System::run(Workload &workload, std::uint64_t num_insts,
            const ResizeSetup &il1_setup, const ResizeSetup &dl1_setup,
            const EngineSpec &engine, RunTelemetry *telemetry)
{
    rc_assert(!ran_);
    ran_ = true;
    engine.validate();
    if (engine.analytic())
        rc_fatal("the analytic engine does not run Systems; dispatch "
                 "through executeRunJob");

    auto il1_policy = makePolicy(il1_, il1_setup);
    auto dl1_policy = makePolicy(dl1_, dl1_setup);

    if (telemetry && telemetry->resizeEvents) {
        const ResizeTelemetry sink{&telemetry->events, 0,
                                   cfg_.core.wbDrainLatency};
        if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
                il1_policy.get()))
            dyn->setTelemetry(sink);
        if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
                dl1_policy.get()))
            dyn->setTelemetry(sink);
    }

    std::unique_ptr<Core> core;
    if (cfg_.coreModel == CoreModel::OutOfOrder) {
        core = std::make_unique<OooCore>(cfg_.core, hier_,
                                         il1_policy.get(),
                                         dl1_policy.get());
    } else {
        core = std::make_unique<InOrderCore>(cfg_.core, hier_,
                                             il1_policy.get(),
                                             dl1_policy.get());
    }

    std::optional<TimelineRecorder> recorder;
    if (telemetry && telemetry->wantsTimeline()) {
        TimelineSources src;
        src.core = 0;
        src.il1 = &il1_.cache();
        src.dl1 = &dl1_.cache();
        src.il1ExtraTagBits = il1_.extraTagBits();
        src.dl1ExtraTagBits = dl1_.extraTagBits();
        src.l2Accesses = [this] { return hier_.l2().accesses(); };
        src.l2Misses = [this] { return hier_.l2().misses(); };
        src.memAccesses = [this] {
            return hier_.memReads() + hier_.memWrites();
        };
        src.l2SizeBytes = hier_.l2().geometry().size;
        src.timingCore = core.get();
        src.energy = &cfg_.energy;
        recorder.emplace(src, telemetry->timelineInterval);
        core->setProbe(&*recorder);
    }

    RunResult res;
    res.workload = workload.name();
    ProcessorEnergyModel energy(cfg_.energy);

    if (engine.sampled()) {
        SamplingController sampler(engine.sampling, hier_, il1_,
                                   dl1_, il1_policy.get(),
                                   dl1_policy.get());
        if (recorder)
            sampler.setProbe(&*recorder);
        const SampledStats s =
            sampler.run(*core, workload, num_insts);

        res.engine = EngineMode::Sampled;
        res.measuredInsts = s.measuredInsts;
        res.warmupInsts = s.warmupInsts;
        res.activity = s.activity;
        res.insts = s.activity.insts;
        res.cycles = s.activity.cycles;
        res.energy = energy.compute(
            s.activity, s.il1, il1_.extraTagBits(), s.dl1,
            dl1_.extraTagBits(), s.l2Accesses,
            hier_.l2().geometry().size, s.memAccesses);
        res.avgIl1Bytes = s.avgIl1Bytes;
        res.avgDl1Bytes = s.avgDl1Bytes;
        res.il1MissRatio = s.il1MissRatio;
        res.dl1MissRatio = s.dl1MissRatio;
        res.l2MissRatio = s.l2MissRatio;
        res.il1Accesses = static_cast<std::uint64_t>(
            std::llround(s.il1.accesses));
        res.il1Misses = static_cast<std::uint64_t>(
            std::llround(s.il1.misses));
        res.dl1Accesses = static_cast<std::uint64_t>(
            std::llround(s.dl1.accesses));
        res.dl1Misses = static_cast<std::uint64_t>(
            std::llround(s.dl1.misses));
    } else {
        res.activity = core->run(workload, num_insts);
        res.insts = res.activity.insts;
        res.cycles = res.activity.cycles;
        res.measuredInsts = res.insts;

        // Close the enabled-size integrals over the whole run.
        il1_.cache().accumulateEnabledTime(res.cycles);
        dl1_.cache().accumulateEnabledTime(res.cycles);

        res.energy = energy.compute(
            res.activity, il1_.cache(), il1_.extraTagBits(),
            dl1_.cache(), dl1_.extraTagBits(), hier_.l2(),
            hier_.memReads() + hier_.memWrites());

        res.avgIl1Bytes = il1_.cache().byteCycles() / res.cycles;
        res.avgDl1Bytes = dl1_.cache().byteCycles() / res.cycles;
        res.il1MissRatio = il1_.cache().missRatio();
        res.dl1MissRatio = dl1_.cache().missRatio();
        res.l2MissRatio = hier_.l2().missRatio();
        res.il1Accesses = il1_.cache().accesses();
        res.il1Misses = il1_.cache().misses();
        res.dl1Accesses = dl1_.cache().accesses();
        res.dl1Misses = dl1_.cache().misses();
    }

    res.il1Resizes = il1_.cache().resizes();
    res.dl1Resizes = dl1_.cache().resizes();

    if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
            il1_policy.get())) {
        res.il1LevelTrace = dyn->levelTrace();
    }
    if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
            dl1_policy.get())) {
        res.dl1LevelTrace = dyn->levelTrace();
    }

    if (recorder) {
        auto rows = recorder->takeRows();
        telemetry->timeline.insert(telemetry->timeline.end(),
                                   rows.begin(), rows.end());
    }
    return res;
}

} // namespace rcache
