#include "sim/report.hh"

#include <cmath>
#include <iomanip>
#include <locale>
#include <sstream>

#include "sim/table.hh"

namespace rcache
{

std::string
formatDelta(double ratio)
{
    std::ostringstream ss;
    const double pct = 100.0 * (ratio - 1.0);
    ss << (pct >= 0 ? "+" : "") << std::fixed << std::setprecision(1)
       << pct << '%';
    return ss.str();
}

void
writeRunReport(std::ostream &os, const RunResult &r)
{
    os << "run: " << r.workload << '\n'
       << "  instructions " << r.insts << ", cycles " << r.cycles
       << ", IPC " << TextTable::num(r.ipc()) << '\n'
       << "  branches " << r.activity.branches << " ("
       << r.activity.mispredicts << " mispredicted), loads "
       << r.activity.loads << ", stores " << r.activity.stores
       << '\n'
       << "  miss ratios: i-L1 "
       << TextTable::pct(100 * r.il1MissRatio) << ", d-L1 "
       << TextTable::pct(100 * r.dl1MissRatio) << ", L2 "
       << TextTable::pct(100 * r.l2MissRatio) << '\n'
       << "  avg enabled sizes: i-L1 "
       << TextTable::bytesKb(r.avgIl1Bytes) << " (" << r.il1Resizes
       << " resizes), d-L1 " << TextTable::bytesKb(r.avgDl1Bytes)
       << " (" << r.dl1Resizes << " resizes)\n";
    if (r.sampled) {
        os << "  sampled: " << r.measuredInsts << " measured + "
           << r.warmupInsts << " warmup of " << r.insts
           << " insts; cycles/energy are extrapolated\n";
    }
    os << r.energy << "  energy-delay product: "
       << TextTable::num(r.edp(), 0) << '\n';
}

namespace
{

/**
 * Shortest decimal form that round-trips the double — deterministic
 * for equal values and independent of the global locale (digits,
 * '.', '-', 'e' only), which is what makes sweep CSVs byte-stable
 * across thread counts.
 */
std::string
numField(double v)
{
    // Integral values print as plain integers ("50", not "5e+01").
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::ostringstream ss;
        ss.imbue(std::locale::classic());
        ss << static_cast<long long>(v);
        return ss.str();
    }
    std::ostringstream ss;
    ss.imbue(std::locale::classic());
    ss << std::setprecision(17) << v;
    std::string wide = ss.str();
    for (int prec = 1; prec < 17; ++prec) {
        std::ostringstream probe;
        probe.imbue(std::locale::classic());
        probe << std::setprecision(prec) << v;
        std::istringstream back(probe.str());
        back.imbue(std::locale::classic());
        double parsed = 0;
        back >> parsed;
        if (parsed == v)
            return probe.str();
    }
    return wide;
}

/**
 * Pin @p os to the classic locale for one writer call (restored on
 * destruction), so integer fields are never digit-grouped by a
 * caller's global locale.
 */
class ClassicLocaleGuard
{
  public:
    explicit ClassicLocaleGuard(std::ostream &os)
        : os_(os), old_(os.imbue(std::locale::classic()))
    {
    }
    ~ClassicLocaleGuard() { os_.imbue(old_); }

  private:
    std::ostream &os_;
    std::locale old_;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void
writeSweepCsv(std::ostream &os,
              const std::vector<SweepRecord> &records)
{
    ClassicLocaleGuard locale_guard(os);
    os << "app,org,strategy,side,best_level,interval_accesses,"
          "miss_bound,size_bound_bytes,ed_reduction_pct,"
          "perf_degradation_pct,size_reduction_pct,baseline_edp,"
          "best_edp,baseline_cycles,best_cycles,avg_il1_bytes,"
          "avg_dl1_bytes,mode\n";
    for (const auto &r : records) {
        os << r.app << ',' << r.org << ',' << r.strategy << ','
           << r.side << ',' << r.bestLevel << ','
           << r.intervalAccesses << ',' << r.missBound << ','
           << r.sizeBoundBytes << ',' << numField(r.edReductionPct)
           << ',' << numField(r.perfDegradationPct) << ','
           << numField(r.sizeReductionPct) << ','
           << numField(r.baselineEdp) << ',' << numField(r.bestEdp)
           << ',' << r.baselineCycles << ',' << r.bestCycles << ','
           << numField(r.avgIl1Bytes) << ','
           << numField(r.avgDl1Bytes) << ','
           << (r.sampled ? "sampled" : "full") << '\n';
    }
}

void
writeSweepJson(std::ostream &os,
               const std::vector<SweepRecord> &records)
{
    ClassicLocaleGuard locale_guard(os);
    os << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        os << "  {\"app\": \"" << jsonEscape(r.app)
           << "\", \"org\": \"" << jsonEscape(r.org)
           << "\", \"strategy\": \"" << jsonEscape(r.strategy)
           << "\", \"side\": \"" << jsonEscape(r.side)
           << "\", \"best_level\": " << r.bestLevel
           << ", \"interval_accesses\": " << r.intervalAccesses
           << ", \"miss_bound\": " << r.missBound
           << ", \"size_bound_bytes\": " << r.sizeBoundBytes
           << ", \"ed_reduction_pct\": " << numField(r.edReductionPct)
           << ", \"perf_degradation_pct\": "
           << numField(r.perfDegradationPct)
           << ", \"size_reduction_pct\": "
           << numField(r.sizeReductionPct)
           << ", \"baseline_edp\": " << numField(r.baselineEdp)
           << ", \"best_edp\": " << numField(r.bestEdp)
           << ", \"baseline_cycles\": " << r.baselineCycles
           << ", \"best_cycles\": " << r.bestCycles
           << ", \"avg_il1_bytes\": " << numField(r.avgIl1Bytes)
           << ", \"avg_dl1_bytes\": " << numField(r.avgDl1Bytes)
           << ", \"mode\": \""
           << (r.sampled ? "sampled" : "full") << "\"}"
           << (i + 1 < records.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
writeSweepTable(std::ostream &os,
                const std::vector<SweepRecord> &records)
{
    TextTable t({"app", "org", "strategy", "side", "E*D red",
                 "perf deg", "size red", "avg i-L1", "avg d-L1",
                 "mode"});
    for (const auto &r : records) {
        t.addRow({r.app, r.org, r.strategy, r.side,
                  TextTable::pct(r.edReductionPct),
                  TextTable::pct(r.perfDegradationPct),
                  TextTable::pct(r.sizeReductionPct),
                  TextTable::bytesKb(r.avgIl1Bytes),
                  TextTable::bytesKb(r.avgDl1Bytes),
                  r.sampled ? "sampled" : "full"});
    }
    t.print(os);
}

void
writeComparisonReport(std::ostream &os, const RunResult &baseline,
                      const std::vector<ComparisonEntry> &entries)
{
    TextTable t({"design point", "cycles", "energy", "E*D",
                 "avg i-L1", "avg d-L1"});
    t.addRow({"baseline (" + baseline.workload + ")", "+0.0%",
              "+0.0%", "+0.0%",
              TextTable::bytesKb(baseline.avgIl1Bytes),
              TextTable::bytesKb(baseline.avgDl1Bytes)});
    for (const auto &e : entries) {
        t.addRow({e.label,
                  formatDelta(static_cast<double>(e.result.cycles) /
                              static_cast<double>(baseline.cycles)),
                  formatDelta(e.result.energy.total() /
                              baseline.energy.total()),
                  formatDelta(e.result.edp() / baseline.edp()),
                  TextTable::bytesKb(e.result.avgIl1Bytes),
                  TextTable::bytesKb(e.result.avgDl1Bytes)});
    }
    t.print(os);
}

} // namespace rcache
