#include "sim/report.hh"

#include <iomanip>
#include <locale>
#include <sstream>

#include "cache/replacement.hh"
#include "sim/table.hh"
#include "util/numformat.hh"

namespace rcache
{

std::string
formatDelta(double ratio)
{
    std::ostringstream ss;
    const double pct = 100.0 * (ratio - 1.0);
    ss << (pct >= 0 ? "+" : "") << std::fixed << std::setprecision(1)
       << pct << '%';
    return ss.str();
}

void
writeRunReport(std::ostream &os, const RunResult &r)
{
    os << "run: " << r.workload << '\n'
       << "  instructions " << r.insts << ", cycles " << r.cycles
       << ", IPC " << TextTable::num(r.ipc()) << '\n'
       << "  branches " << r.activity.branches << " ("
       << r.activity.mispredicts << " mispredicted), loads "
       << r.activity.loads << ", stores " << r.activity.stores
       << '\n'
       << "  miss ratios: i-L1 "
       << TextTable::pct(100 * r.il1MissRatio) << ", d-L1 "
       << TextTable::pct(100 * r.dl1MissRatio) << ", L2 "
       << TextTable::pct(100 * r.l2MissRatio) << '\n'
       << "  avg enabled sizes: i-L1 "
       << TextTable::bytesKb(r.avgIl1Bytes) << " (" << r.il1Resizes
       << " resizes), d-L1 " << TextTable::bytesKb(r.avgDl1Bytes)
       << " (" << r.dl1Resizes << " resizes)\n";
    if (r.engine == EngineMode::Sampled) {
        os << "  sampled: " << r.measuredInsts << " measured + "
           << r.warmupInsts << " warmup of " << r.insts
           << " insts; cycles/energy are extrapolated\n";
    } else if (r.engine == EngineMode::Analytic) {
        os << "  analytic: hit/miss counts exact (LRU); "
              "cycles/energy are modelled, not measured\n";
    }
    os << r.energy << "  energy-delay product: "
       << TextTable::num(r.edp(), 0) << '\n';
}

void
writeMultiCoreReport(std::ostream &os, const MultiCoreResult &r)
{
    os << "multi-core run: " << r.aggregate.workload << " on "
       << r.perCore.size() << " cores (shared L2)\n"
       << "  aggregate: " << r.aggregate.insts << " insts, makespan "
       << r.aggregate.cycles << " cycles, total energy "
       << TextTable::num(r.aggregate.energy.total()) << " nJ, E.D "
       << TextTable::num(r.aggregate.edp(), 0) << '\n';

    TextTable l2({"core", "workload", "l2 acc", "l2 miss%",
                  "mem r/w", "resident", "peak", "evicted by others",
                  "evicted others"});
    for (std::size_t c = 0; c < r.l2PerCore.size(); ++c) {
        const SharedL2CoreStats &s = r.l2PerCore[c];
        const double miss_pct =
            s.accesses ? 100.0 * static_cast<double>(s.misses) /
                             static_cast<double>(s.accesses)
                       : 0.0;
        l2.addRow({std::to_string(c), r.perCore[c].workload,
                   std::to_string(s.accesses),
                   TextTable::pct(miss_pct),
                   std::to_string(s.memReads) + "/" +
                       std::to_string(s.memWrites),
                   std::to_string(s.residentBlocks),
                   std::to_string(s.peakResidentBlocks),
                   std::to_string(s.evictionsByOthers),
                   std::to_string(s.evictedOthers)});
    }
    os << "\nshared-L2 contention (total " << r.l2Totals.accesses
       << " accesses, " << r.l2Totals.misses << " misses):\n";
    l2.print(os);

    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        os << "\ncore " << c << ":\n";
        writeRunReport(os, r.perCore[c]);
    }
}

namespace
{

/**
 * Shortest decimal form that round-trips the double (see
 * util/numformat.hh) — deterministic for equal values and independent
 * of the global locale, which is what makes sweep CSVs byte-stable
 * across thread counts and what lets readSweepCsv restore the exact
 * bits.
 */
std::string
numField(double v)
{
    return shortestDouble(v);
}

/**
 * Pin @p os to the classic locale for one writer call (restored on
 * destruction), so integer fields are never digit-grouped by a
 * caller's global locale.
 */
class ClassicLocaleGuard
{
  public:
    explicit ClassicLocaleGuard(std::ostream &os)
        : os_(os), old_(os.imbue(std::locale::classic()))
    {
    }
    ~ClassicLocaleGuard() { os_.imbue(old_); }

  private:
    std::ostream &os_;
    std::locale old_;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

const std::string &
sweepCsvHeader()
{
    static const std::string header =
        "cell,app,org,strategy,side,axes,best_level,"
        "interval_accesses,miss_bound,size_bound_bytes,"
        "ed_reduction_pct,perf_degradation_pct,size_reduction_pct,"
        "baseline_edp,best_edp,baseline_cycles,best_cycles,"
        "avg_il1_bytes,avg_dl1_bytes,engine,policy";
    return header;
}

void
writeSweepCsv(std::ostream &os,
              const std::vector<SweepRecord> &records)
{
    ClassicLocaleGuard locale_guard(os);
    os << sweepCsvHeader() << '\n';
    writeSweepCsvRows(os, records);
}

void
writeSweepCsvRows(std::ostream &os,
                  const std::vector<SweepRecord> &records)
{
    ClassicLocaleGuard locale_guard(os);
    for (const auto &r : records) {
        os << r.cell << ',' << r.app << ',' << r.org << ','
           << r.strategy << ',' << r.side << ',' << r.axes << ','
           << r.bestLevel << ',' << r.intervalAccesses << ','
           << r.missBound << ',' << r.sizeBoundBytes << ','
           << numField(r.edReductionPct) << ','
           << numField(r.perfDegradationPct) << ','
           << numField(r.sizeReductionPct) << ','
           << numField(r.baselineEdp) << ',' << numField(r.bestEdp)
           << ',' << r.baselineCycles << ',' << r.bestCycles << ','
           << numField(r.avgIl1Bytes) << ','
           << numField(r.avgDl1Bytes) << ','
           << engineName(r.engine) << ',' << r.policy << '\n';
    }
}

namespace
{

/** Comma-split preserving empty fields. */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

} // namespace

std::optional<std::vector<SweepRecord>>
readSweepCsv(std::istream &is, std::string *err)
{
    const auto failWith = [&](int line, const std::string &why) {
        if (err)
            *err = "sweep csv line " + std::to_string(line) + ": " +
                   why;
        return std::nullopt;
    };

    std::string line;
    if (!std::getline(is, line))
        return failWith(1, "missing header");
    if (line != sweepCsvHeader())
        return failWith(1, "header does not match this build's sweep "
                           "schema");

    std::vector<SweepRecord> records;
    int line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            return failWith(line_no, "empty row");
        const auto f = splitCsvLine(line);
        if (f.size() != 21)
            return failWith(line_no,
                            "expected 21 fields, got " +
                                std::to_string(f.size()));
        SweepRecord r;
        unsigned long long u = 0;
        double d = 0;
        if (!parseU64Strict(f[0], u))
            return failWith(line_no, "bad cell index '" + f[0] + "'");
        r.cell = u;
        r.app = f[1];
        r.org = f[2];
        r.strategy = f[3];
        r.side = f[4];
        r.axes = f[5];
        if (!parseU64Strict(f[6], u))
            return failWith(line_no, "bad best_level '" + f[6] + "'");
        r.bestLevel = static_cast<unsigned>(u);
        if (!parseU64Strict(f[7], u))
            return failWith(line_no, "bad interval_accesses");
        r.intervalAccesses = u;
        if (!parseU64Strict(f[8], u))
            return failWith(line_no, "bad miss_bound");
        r.missBound = u;
        if (!parseU64Strict(f[9], u))
            return failWith(line_no, "bad size_bound_bytes");
        r.sizeBoundBytes = u;
        struct DoubleField
        {
            int idx;
            double SweepRecord::*field;
        };
        for (const DoubleField df :
             {DoubleField{10, &SweepRecord::edReductionPct},
              DoubleField{11, &SweepRecord::perfDegradationPct},
              DoubleField{12, &SweepRecord::sizeReductionPct},
              DoubleField{13, &SweepRecord::baselineEdp},
              DoubleField{14, &SweepRecord::bestEdp},
              DoubleField{17, &SweepRecord::avgIl1Bytes},
              DoubleField{18, &SweepRecord::avgDl1Bytes}}) {
            if (!parseDoubleStrict(f[df.idx], d))
                return failWith(line_no, "bad numeric field '" +
                                             f[df.idx] + "'");
            r.*(df.field) = d;
        }
        if (!parseU64Strict(f[15], u))
            return failWith(line_no, "bad baseline_cycles");
        r.baselineCycles = u;
        if (!parseU64Strict(f[16], u))
            return failWith(line_no, "bad best_cycles");
        r.bestCycles = u;
        if (const auto mode = parseEngineModeToken(f[19]))
            r.engine = *mode;
        else
            return failWith(line_no, "bad engine '" + f[19] + "'");
        if (!isReplacementPolicyName(f[20]))
            return failWith(line_no, "bad policy '" + f[20] + "'");
        r.policy = f[20];
        records.push_back(std::move(r));
    }
    return records;
}

void
writeSweepJson(std::ostream &os,
               const std::vector<SweepRecord> &records)
{
    ClassicLocaleGuard locale_guard(os);
    os << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        os << "  {\"cell\": " << r.cell << ", \"app\": \""
           << jsonEscape(r.app) << "\", \"org\": \""
           << jsonEscape(r.org) << "\", \"strategy\": \""
           << jsonEscape(r.strategy) << "\", \"side\": \""
           << jsonEscape(r.side) << "\", \"axes\": \""
           << jsonEscape(r.axes) << "\", \"best_level\": "
           << r.bestLevel
           << ", \"interval_accesses\": " << r.intervalAccesses
           << ", \"miss_bound\": " << r.missBound
           << ", \"size_bound_bytes\": " << r.sizeBoundBytes
           << ", \"ed_reduction_pct\": " << numField(r.edReductionPct)
           << ", \"perf_degradation_pct\": "
           << numField(r.perfDegradationPct)
           << ", \"size_reduction_pct\": "
           << numField(r.sizeReductionPct)
           << ", \"baseline_edp\": " << numField(r.baselineEdp)
           << ", \"best_edp\": " << numField(r.bestEdp)
           << ", \"baseline_cycles\": " << r.baselineCycles
           << ", \"best_cycles\": " << r.bestCycles
           << ", \"avg_il1_bytes\": " << numField(r.avgIl1Bytes)
           << ", \"avg_dl1_bytes\": " << numField(r.avgDl1Bytes)
           << ", \"engine\": \"" << engineName(r.engine)
           << "\", \"policy\": \"" << r.policy << "\"}"
           << (i + 1 < records.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
writeSweepTable(std::ostream &os,
                const std::vector<SweepRecord> &records)
{
    TextTable t({"app", "org", "strategy", "side", "axes", "E*D red",
                 "perf deg", "size red", "avg i-L1", "avg d-L1",
                 "engine", "policy"});
    for (const auto &r : records) {
        t.addRow({r.app, r.org, r.strategy, r.side,
                  r.axes.empty() ? "-" : r.axes,
                  TextTable::pct(r.edReductionPct),
                  TextTable::pct(r.perfDegradationPct),
                  TextTable::pct(r.sizeReductionPct),
                  TextTable::bytesKb(r.avgIl1Bytes),
                  TextTable::bytesKb(r.avgDl1Bytes),
                  engineName(r.engine), r.policy});
    }
    t.print(os);
}

void
writeComparisonReport(std::ostream &os, const RunResult &baseline,
                      const std::vector<ComparisonEntry> &entries)
{
    TextTable t({"design point", "cycles", "energy", "E*D",
                 "avg i-L1", "avg d-L1"});
    t.addRow({"baseline (" + baseline.workload + ")", "+0.0%",
              "+0.0%", "+0.0%",
              TextTable::bytesKb(baseline.avgIl1Bytes),
              TextTable::bytesKb(baseline.avgDl1Bytes)});
    for (const auto &e : entries) {
        t.addRow({e.label,
                  formatDelta(static_cast<double>(e.result.cycles) /
                              static_cast<double>(baseline.cycles)),
                  formatDelta(e.result.energy.total() /
                              baseline.energy.total()),
                  formatDelta(e.result.edp() / baseline.edp()),
                  TextTable::bytesKb(e.result.avgIl1Bytes),
                  TextTable::bytesKb(e.result.avgDl1Bytes)});
    }
    t.print(os);
}

} // namespace rcache
