#include "sim/report.hh"

#include <iomanip>
#include <sstream>

#include "sim/table.hh"

namespace rcache
{

std::string
formatDelta(double ratio)
{
    std::ostringstream ss;
    const double pct = 100.0 * (ratio - 1.0);
    ss << (pct >= 0 ? "+" : "") << std::fixed << std::setprecision(1)
       << pct << '%';
    return ss.str();
}

void
writeRunReport(std::ostream &os, const RunResult &r)
{
    os << "run: " << r.workload << '\n'
       << "  instructions " << r.insts << ", cycles " << r.cycles
       << ", IPC " << TextTable::num(r.ipc()) << '\n'
       << "  branches " << r.activity.branches << " ("
       << r.activity.mispredicts << " mispredicted), loads "
       << r.activity.loads << ", stores " << r.activity.stores
       << '\n'
       << "  miss ratios: i-L1 "
       << TextTable::pct(100 * r.il1MissRatio) << ", d-L1 "
       << TextTable::pct(100 * r.dl1MissRatio) << ", L2 "
       << TextTable::pct(100 * r.l2MissRatio) << '\n'
       << "  avg enabled sizes: i-L1 "
       << TextTable::bytesKb(r.avgIl1Bytes) << " (" << r.il1Resizes
       << " resizes), d-L1 " << TextTable::bytesKb(r.avgDl1Bytes)
       << " (" << r.dl1Resizes << " resizes)\n"
       << r.energy << "  energy-delay product: "
       << TextTable::num(r.edp(), 0) << '\n';
}

void
writeComparisonReport(std::ostream &os, const RunResult &baseline,
                      const std::vector<ComparisonEntry> &entries)
{
    TextTable t({"design point", "cycles", "energy", "E*D",
                 "avg i-L1", "avg d-L1"});
    t.addRow({"baseline (" + baseline.workload + ")", "+0.0%",
              "+0.0%", "+0.0%",
              TextTable::bytesKb(baseline.avgIl1Bytes),
              TextTable::bytesKb(baseline.avgDl1Bytes)});
    for (const auto &e : entries) {
        t.addRow({e.label,
                  formatDelta(static_cast<double>(e.result.cycles) /
                              static_cast<double>(baseline.cycles)),
                  formatDelta(e.result.energy.total() /
                              baseline.energy.total()),
                  formatDelta(e.result.edp() / baseline.edp()),
                  TextTable::bytesKb(e.result.avgIl1Bytes),
                  TextTable::bytesKb(e.result.avgDl1Bytes)});
    }
    t.print(os);
}

} // namespace rcache
